package tamp

// An integration test in the spirit of the paper's running example
// (Example 1 / Fig. 2): four workers moving along known trajectories, four
// check-in tasks, and a unique best assignment that prediction-aware
// matching must find.

import (
	"testing"

	"github.com/spatialcrowd/tamp/internal/assign"
)

// scenarioWorkers builds four workers whose future trajectories each pass
// exactly through one task location; every worker could serve several tasks
// with a worse detour, so the matcher must solve the coupling globally.
func scenarioWorkers() []AssignWorker {
	mk := func(id int, pts ...Point) AssignWorker {
		w := AssignWorker{ID: id, Loc: pts[0], Detour: 12, Speed: 1, MR: 0.8}
		for _, p := range pts[1:] {
			w.Predicted = append(w.Predicted, p)
			w.Actual = append(w.Actual, p)
		}
		return w
	}
	return []AssignWorker{
		// w0 moves east along y=0 and passes through (5,0).
		mk(0, pt(0, 0), pt(1, 0), pt(2, 0), pt(3, 0), pt(4, 0), pt(5, 0), pt(6, 0)),
		// w1 moves north along x=0 and passes through (0,5).
		mk(1, pt(0, 0), pt(0, 1), pt(0, 2), pt(0, 3), pt(0, 4), pt(0, 5), pt(0, 6)),
		// w2 moves east along y=10 and passes through (5,10).
		mk(2, pt(0, 10), pt(1, 10), pt(2, 10), pt(3, 10), pt(4, 10), pt(5, 10), pt(6, 10)),
		// w3 moves north along x=10 and passes through (10,5).
		mk(3, pt(10, 0), pt(10, 1), pt(10, 2), pt(10, 3), pt(10, 4), pt(10, 5), pt(10, 6)),
	}
}

func pt(x, y float64) Point { return Point{X: x, Y: y} }

func scenarioTasks() []Task {
	return []Task{
		{ID: 0, Loc: pt(5, 0), Deadline: 30},  // on w0's route
		{ID: 1, Loc: pt(0, 5), Deadline: 30},  // on w1's route
		{ID: 2, Loc: pt(5, 10), Deadline: 30}, // on w2's route
		{ID: 3, Loc: pt(10, 5), Deadline: 30}, // on w3's route
	}
}

// TestRunningExampleOptimalPlan: every assigner that sees trajectories
// (UB on actual, PPI and KM on predicted) should recover the unique
// zero-detour plan task i → worker i.
func TestRunningExampleOptimalPlan(t *testing.T) {
	workers := scenarioWorkers()
	tasks := scenarioTasks()
	for _, a := range []Assigner{NewUB(), NewPPI(), NewKM()} {
		pairs := a.Assign(tasks, workers, 0)
		if len(pairs) != 4 {
			t.Fatalf("%s assigned %d pairs, want 4", a.Name(), len(pairs))
		}
		for _, pr := range pairs {
			if pr.Task != pr.Worker {
				t.Errorf("%s matched task %d to worker %d, want the on-route worker",
					a.Name(), pr.Task, pr.Worker)
			}
		}
	}
}

// TestRunningExampleAcceptance: the optimal plan is accepted with zero
// detour cost by every worker.
func TestRunningExampleAcceptance(t *testing.T) {
	workers := scenarioWorkers()
	tasks := scenarioTasks()
	for i := range tasks {
		d := assign.ServeDist(&workers[i], &tasks[i], 0)
		if d != 0 {
			t.Errorf("worker %d serve distance = %v, want 0", i, d)
		}
	}
	// Cross assignments cost strictly more.
	if d := assign.ServeDist(&workers[0], &tasks[2], 0); d >= 0 && d < 5 {
		t.Errorf("cross assignment suspiciously cheap: %v", d)
	}
}

// TestRunningExampleConfidencePriority mirrors Example 2: when two workers
// can serve the same task, PPI gives it to the one whose |B|·MR confidence
// is higher, not merely the closer one.
func TestRunningExampleConfidencePriority(t *testing.T) {
	task := Task{ID: 0, Loc: pt(5, 0), Deadline: 30}
	reliable := scenarioWorkers()[0] // passes exactly through the task
	reliable.MR = 0.9
	sloppy := scenarioWorkers()[0]
	sloppy.ID = 9
	sloppy.MR = 0.05 // same route, unreliable predictions
	pairs := NewPPI().Assign([]Task{task}, []AssignWorker{sloppy, reliable}, 0)
	if len(pairs) != 1 || pairs[0].Worker != 1 {
		t.Fatalf("PPI chose %+v, want the reliable worker (index 1)", pairs)
	}
}
