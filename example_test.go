package tamp_test

import (
	"context"
	"fmt"

	"github.com/spatialcrowd/tamp"
)

// Example runs the whole pipeline at toy scale: generate a workload, train
// predictors, and simulate batch assignment with PPI. Metric values depend
// on training, so the example prints only structural facts.
func Example() {
	p := tamp.DefaultWorkloadParams(tamp.Workload1)
	p.NumWorkers = 6
	p.NewWorkers = 0
	p.TrainDays = 2
	p.TestDays = 1
	p.TicksPerDay = 40
	p.NumTestTasks = 60
	w := tamp.GenerateWorkload(p)

	ctx := context.Background()
	pred, err := tamp.TrainPredictors(ctx, w, tamp.TrainOptions{MetaIters: 2, Hidden: 4, Seed: 1})
	if err != nil {
		fmt.Println("train failed:", err)
		return
	}
	m, err := tamp.Simulate(ctx, w, pred, tamp.NewPPI())
	if err != nil {
		fmt.Println("simulate failed:", err)
		return
	}
	fmt.Println("models:", len(pred.Models))
	fmt.Println("tasks:", m.TotalTasks)
	fmt.Println("accounting ok:", m.Accepted <= m.Assigned && m.Accepted <= m.TotalTasks)
	// Output:
	// models: 6
	// tasks: 60
	// accounting ok: true
}

// ExampleKMToCells documents the distance convention: one grid cell spans
// 0.2 km, so the paper's default 6 km detour budget is 30 cells.
func ExampleKMToCells() {
	fmt.Println(tamp.KMToCells(6))
	// Output: 30
}
