// Coldstart: the paper's Challenge I in action. A newly arrived worker has
// a single short history on the platform. Training a personal model from
// scratch on that sliver of data is hopeless; GTTAML instead places the
// newcomer's learning task on the trained learning-task tree (post-order
// most-similar node) and adapts from that node's initialization, reaching
// useful accuracy after the same handful of gradient steps.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/spatialcrowd/tamp"
)

func main() {
	p := tamp.DefaultWorkloadParams(tamp.Workload1)
	p.NumWorkers = 20
	p.NewWorkers = 4 // cold-start arrivals with one on-boarding day
	p.TrainDays = 4
	p.TestDays = 1
	p.NumTestTasks = 200
	p.Seed = 5
	w := tamp.GenerateWorkload(p)
	ctx := context.Background()

	fmt.Println("meta-training on 20 established workers (GTTAML)...")
	withTree, err := tamp.TrainPredictors(ctx, w, tamp.TrainOptions{
		MetaIters: 15,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline for comparison: plain MAML initialization — no clustering,
	// so newcomers adapt from a generic shared start.
	opts := tamp.TrainOptions{MetaIters: 15, Seed: 5}
	opts.Algorithm = tamp.AlgMAML
	mamlPred, err := tamp.TrainPredictors(ctx, w, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncold-start workers (one on-boarding day each):")
	fmt.Println("worker  GTTAML-RMSE  MAML-RMSE   (test-day, grid cells)")
	var better int
	for i := range w.Workers {
		wk := &w.Workers[i]
		if !wk.New {
			continue
		}
		g := withTree.Models[wk.ID].EvaluateOnRoutine(wk.TestDays[0], 1.5)
		m := mamlPred.Models[wk.ID].EvaluateOnRoutine(wk.TestDays[0], 1.5)
		marker := ""
		if g.RMSE < m.RMSE {
			better++
			marker = "  <- tree placement wins"
		}
		fmt.Printf("w%-5d  %-11.3f  %-9.3f%s\n", wk.ID, g.RMSE, m.RMSE, marker)
	}
	fmt.Printf("\nGTTAML's tree placement beat the generic MAML start on %d/4 newcomers.\n", better)
	fmt.Println("(Newcomers inherit the initialization of the most similar worker cluster.)")
}
