// Quickstart: the minimal TAMP pipeline — generate a workload, train
// mobility predictors, and run one batch-assignment simulation.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/spatialcrowd/tamp"
)

func main() {
	// A small Porto-style workload: 12 established workers plus 2
	// cold-start arrivals, 300 tasks over one test day.
	p := tamp.DefaultWorkloadParams(tamp.Workload1)
	p.NumWorkers = 12
	p.NewWorkers = 2
	p.TrainDays = 3
	p.TestDays = 1
	p.NumTestTasks = 300
	p.Seed = 42
	w := tamp.GenerateWorkload(p)
	fmt.Printf("workload: %d workers, %d tasks on a %dx%d grid\n",
		len(w.Workers), len(w.TestTasks), p.Grid.Cols, p.Grid.Rows)

	// Offline stage: GTTAML meta-training with the task-assignment-
	// oriented loss.
	ctx := context.Background()
	pred, err := tamp.TrainPredictors(ctx, w, tamp.TrainOptions{
		WeightedLoss: true,
		MetaIters:    10,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction: RMSE %.3f cells, MAE %.3f cells, matching rate %.3f\n",
		pred.Eval.RMSE, pred.Eval.MAE, pred.Eval.MR)

	// Online stage: batch assignment with PPI.
	m, err := tamp.Simulate(ctx, w, pred, tamp.NewPPI())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assignment: completed %d/%d (%.1f%%), rejection %.1f%%, avg detour %.2f km\n",
		m.Accepted, m.TotalTasks, 100*m.CompletionRate(),
		100*m.RejectionRate(), m.AvgCostKM())
}
