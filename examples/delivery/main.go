// Delivery: a food-delivery style dispatch scenario exercising deadline
// pressure and cross-batch task carry-over. Short task validity windows
// force the platform to assign quickly; tasks rejected by workers return to
// the pool and are retried until they expire. The example contrasts tight
// and generous deadlines under the same fleet.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp"
)

func run(ctx context.Context, validUnits int, pred *tamp.Predictors, seed int64) tamp.Metrics {
	p := baseParams(seed)
	p.ValidMin = validUnits
	p.ValidMax = validUnits + 1
	w := tamp.GenerateWorkload(p)
	m, err := tamp.Simulate(ctx, w, pred, tamp.NewPPI())
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func baseParams(seed int64) tamp.WorkloadParams {
	p := tamp.DefaultWorkloadParams(tamp.Workload1)
	p.NumWorkers = 16
	p.NewWorkers = 0
	p.TrainDays = 3
	p.TestDays = 1
	p.NumTestTasks = 500
	p.Seed = seed
	return p
}

func main() {
	const seed = 11
	// Train once (offline stage); the deadline sweep only changes the
	// online task stream, not the workers' mobility.
	ctx := context.Background()
	train := tamp.GenerateWorkload(baseParams(seed))
	fmt.Println("training courier mobility models...")
	pred, err := tamp.TrainPredictors(ctx, train, tamp.TrainOptions{
		WeightedLoss: true,
		MetaIters:    12,
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndeadline pressure sweep (PPI dispatch):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "valid time\tcompletion\trejection\tcost(km)\tassignments |M|")
	for _, valid := range []int{1, 3, 5} {
		m := run(ctx, valid, pred, seed)
		fmt.Fprintf(tw, "[%d,%d] units\t%.3f\t%.3f\t%.3f\t%d\n",
			valid, valid+1, m.CompletionRate(), m.RejectionRate(), m.AvgCostKM(), m.Assigned)
	}
	tw.Flush()
	fmt.Println("\nLonger validity windows give rejected orders more retry batches:")
	fmt.Println("completion rises, rejection falls, and couriers can wait for")
	fmt.Println("closer en-route matches instead of accepting expensive detours.")
}
