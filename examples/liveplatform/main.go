// Liveplatform: drives the HTTP platform end to end — the four-party
// protocol of the paper's Fig. 1 over a real socket. It starts tampserver's
// handler in-process, registers workers that report their locations each
// tick, posts tasks from a requester, runs assignment batches, and lets
// workers accept or reject offers against their private routes.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/server"
)

func main() {
	s, err := server.New(server.Config{
		Grid:     geo.DefaultGrid,
		Assigner: assign.PPI{A: predict.DefaultMatchRadius},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	fmt.Println("platform listening at", srv.URL)

	rng := rand.New(rand.NewSource(7))

	// Three couriers with private straight routes; the platform only ever
	// sees the locations they report.
	type courier struct {
		id       int
		pos, vel geo.Point
	}
	couriers := []*courier{
		{id: 1, pos: geo.Pt(10, 25), vel: geo.Pt(3, 0)},
		{id: 2, pos: geo.Pt(50, 5), vel: geo.Pt(0, 2.5)},
		{id: 3, pos: geo.Pt(90, 40), vel: geo.Pt(-3, -0.5)},
	}
	for _, c := range couriers {
		post(srv.URL+"/api/workers", map[string]any{"id": c.id, "detourKm": 8, "speed": 3, "mr": 0.8})
	}

	accepted, rejected := 0, 0
	for tick := 0; tick < 12; tick++ {
		// Couriers move and report.
		for _, c := range couriers {
			c.pos = c.pos.Add(c.vel)
			post(fmt.Sprintf("%s/api/workers/%d/location", srv.URL, c.id),
				map[string]any{"x": c.pos.X, "y": c.pos.Y})
		}
		// A requester posts a task near a random courier's upcoming path.
		target := couriers[rng.Intn(len(couriers))]
		ahead := target.pos.Add(target.vel.Scale(3 + rng.Float64()*2))
		post(srv.URL+"/api/tasks", map[string]any{
			"x": ahead.X, "y": ahead.Y, "deadline": tick + 15,
		})

		// Platform batch.
		post(srv.URL+"/api/batch", nil)

		// Couriers check offers; they accept tasks within 2 km of their
		// route over the next few ticks.
		for _, c := range couriers {
			var offers []struct {
				OfferID int     `json:"offerId"`
				X       float64 `json:"x"`
				Y       float64 `json:"y"`
			}
			get(fmt.Sprintf("%s/api/workers/%d/offers", srv.URL, c.id), &offers)
			for _, off := range offers {
				serveable := false
				probe := c.pos
				for k := 0; k < 8; k++ {
					probe = probe.Add(c.vel)
					if probe.Dist(geo.Pt(off.X, off.Y)) < geo.KMToCells(2) {
						serveable = true
						break
					}
				}
				action := "reject"
				if serveable {
					action = "accept"
					accepted++
				} else {
					rejected++
				}
				post(fmt.Sprintf("%s/api/offers/%d/%s", srv.URL, off.OfferID, action), nil)
			}
		}
		post(srv.URL+"/api/tick", nil)
	}

	var m struct {
		Tasks    int `json:"tasks"`
		Assigned int `json:"assigned"`
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
		Expired  int `json:"expired"`
	}
	get(srv.URL+"/api/metrics", &m)
	fmt.Printf("\nafter 12 ticks: %d tasks posted, %d offers, %d accepted, %d rejected, %d expired\n",
		m.Tasks, m.Assigned, m.Accepted, m.Rejected, m.Expired)
	fmt.Printf("courier-side accounting agrees: accepted %d, rejected %d\n", accepted, rejected)
}

func post(url string, body any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
