// Ridehailing: the scenario motivating the paper's introduction — check-in
// style tasks (ride pickups) assigned to taxi-like workers moving through a
// city. Compares every assignment algorithm on the same workload and shows
// why prediction-aware assignment (PPI) approaches the oracle (UB) while
// the location-only baseline (LB) lags.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp"
)

func main() {
	p := tamp.DefaultWorkloadParams(tamp.Workload1)
	p.NumWorkers = 20
	p.NewWorkers = 2
	p.TrainDays = 3
	p.TestDays = 1
	p.NumTestTasks = 300
	p.DetourKM = 6
	p.Seed = 7
	w := tamp.GenerateWorkload(p)

	ctx := context.Background()
	fmt.Println("training GTTAML predictors (task-assignment-oriented loss)...")
	pred, err := tamp.TrainPredictors(ctx, w, tamp.TrainOptions{
		WeightedLoss: true,
		MetaIters:    15,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction: RMSE %.3f, MR %.3f\n\n", pred.Eval.RMSE, pred.Eval.MR)

	assigners := []tamp.Assigner{
		tamp.NewUB(), tamp.NewPPI(), tamp.NewKM(), tamp.NewGGPSO(7), tamp.NewLB(),
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tcompletion\trejection\tcost(km)\ttime")
	for _, a := range assigners {
		m, err := tamp.Simulate(ctx, w, pred, a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%v\n",
			a.Name(), m.CompletionRate(), m.RejectionRate(), m.AvgCostKM(),
			m.AssignTime.Round(1e6))
	}
	tw.Flush()
	fmt.Println("\nUB assigns on true trajectories (rejection 0 by construction);")
	fmt.Println("PPI prioritizes high-confidence pairs and should sit closest to UB.")
}
