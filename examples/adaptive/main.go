// Adaptive: the production-style deployment loop. The offline stage trains
// predictors once and persists them; the online stage loads the bundle,
// runs batch assignment, and keeps the models fresh with continual daily
// adaptation on the trajectories the platform observes (the paper's
// "dynamically predicts workers' mobility").
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/spatialcrowd/tamp"
)

func main() {
	p := tamp.DefaultWorkloadParams(tamp.Workload1)
	p.NumWorkers = 16
	p.NewWorkers = 0
	p.TrainDays = 3
	p.TestDays = 2 // two online days so the daily adaptation fires
	p.NumTestTasks = 500
	p.Seed = 21
	w := tamp.GenerateWorkload(p)
	ctx := context.Background()

	// --- Offline: train once and persist the predictor bundle. ---
	fmt.Println("offline: training predictors...")
	pred, err := tamp.TrainPredictors(ctx, w, tamp.TrainOptions{
		WeightedLoss: true, MetaIters: 12, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	var bundle bytes.Buffer
	if err := pred.SaveModels(&bundle); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: saved %d worker models (%d KiB)\n",
		len(pred.Models), bundle.Len()/1024)

	// --- Online: load the bundle; no retraining needed. ---
	data := bundle.Bytes()
	models, err := tamp.LoadModels(bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online: loaded predictor bundle (%d models)\n", len(models))

	run := func(adaptSteps int) tamp.Metrics {
		// Reload models for a fair comparison — adaptation mutates them.
		fresh, err := tamp.LoadModels(bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		sim := tamp.Simulation{
			Workload:        w,
			Models:          fresh,
			Assigner:        tamp.NewPPI(),
			DailyAdaptSteps: adaptSteps,
		}
		m, err := sim.Simulate(ctx)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	static := run(0)
	adaptive := run(5)

	fmt.Println("\n                 completion  rejection  cost(km)")
	fmt.Printf("static models     %.3f       %.3f      %.3f\n",
		static.CompletionRate(), static.RejectionRate(), static.AvgCostKM())
	fmt.Printf("daily adaptation  %.3f       %.3f      %.3f\n",
		adaptive.CompletionRate(), adaptive.RejectionRate(), adaptive.AvgCostKM())
	fmt.Println("\nDaily adaptation fine-tunes each worker's model on the previous")
	fmt.Println("day's observed trace, tracking drift the offline stage never saw.")
}
