// Command tampsim runs one end-to-end platform simulation: generate a
// synthetic workload, train mobility predictors, and simulate the online
// batch assignment stage with a chosen algorithm.
//
// Usage:
//
//	tampsim -workload 1 -assigner PPI -tasks 3000 -detour 6
//	tampsim -workload 2 -assigner KM -loss mse -valid 3
//	tampsim -workers-csv w.csv -tasks-csv t.csv    # externally supplied data
//	tampsim -chaos -chaos-seed 7                   # re-run under fault injection
//	tampsim -record /tmp/run.wal                   # persist the run's event log for offline replay
//
// The CSV formats are the ones cmd/tampgen writes; see internal/ingest.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"github.com/spatialcrowd/tamp"
	"github.com/spatialcrowd/tamp/internal/ingest"
	"github.com/spatialcrowd/tamp/internal/obs"
)

func main() {
	var (
		workload = flag.Int("workload", 1, "workload family: 1 (porto+didi) or 2 (gowalla+foursquare)")
		assigner = flag.String("assigner", "PPI", "assignment algorithm: PPI, KM, UB, LB, GGPSO")
		loss     = flag.String("loss", "weighted", "training loss: weighted (task-assignment-oriented) or mse")
		alg      = flag.String("alg", tamp.AlgGTTAML, "prediction algorithm: MAML, CTML, GTTAML-GT, GTTAML")
		workers  = flag.Int("workers", 30, "number of established workers")
		tasks    = flag.Int("tasks", 1000, "number of test-horizon tasks")
		detour   = flag.Float64("detour", 6, "worker detour budget d in km")
		valid    = flag.Int("valid", 3, "task valid time lower bound, in 10-minute units")
		iters    = flag.Int("iters", 20, "meta-training iterations")
		seed     = flag.Int64("seed", 1, "workload and training seed")
		wcsv     = flag.String("workers-csv", "", "load worker trajectories from a tampgen-format CSV instead of generating")
		tcsv     = flag.String("tasks-csv", "", "load tasks from a tampgen-format CSV (requires -workers-csv)")
		par      = flag.Int("par", 0, "worker pool size for training and simulation (0 = all cores)")
		chaos    = flag.Bool("chaos", false, "also run the simulation under deterministic fault injection and report the degradation")
		chaosSd  = flag.Int64("chaos-seed", 1, "fault-injection schedule seed")
		metrics  = flag.Bool("metrics", false, "collect run metrics in a registry and dump it (Prometheus text) at end of run")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address while the run lasts (e.g. localhost:6060)")
		record   = flag.String("record", "", "write every platform event of the run to this write-ahead-log directory; replay it offline with `tampbench -replay <dir> -assigner <name>`")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		ctx = obs.WithRegistry(ctx, reg)
	}
	if *pprofA != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "tampsim: pprof:", http.ListenAndServe(*pprofA, nil))
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofA)
	}

	kind := tamp.Workload1
	if *workload == 2 {
		kind = tamp.Workload2
	}
	p := tamp.DefaultWorkloadParams(kind)
	p.Seed = *seed
	p.NumWorkers = *workers
	p.NewWorkers = *workers / 10
	p.NumTestTasks = *tasks
	p.DetourKM = *detour
	p.ValidMin = *valid
	p.ValidMax = *valid + 1

	var w *tamp.Workload
	if *wcsv != "" {
		if *tcsv == "" {
			fmt.Fprintln(os.Stderr, "tampsim: -tasks-csv required with -workers-csv")
			os.Exit(2)
		}
		var err error
		w, err = loadWorkload(p, *wcsv, *tcsv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tampsim:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d workers and %d tasks from CSV\n", len(w.Workers), len(w.TestTasks))
	} else {
		fmt.Printf("generating %v: %d workers, %d tasks, d=%.1fkm, valid [%d,%d] units\n",
			kind, p.NumWorkers+p.NewWorkers, p.NumTestTasks, p.DetourKM, p.ValidMin, p.ValidMax)
		w = tamp.GenerateWorkload(p)
	}

	fmt.Printf("training %s predictors (%s loss, %d iters)...\n", *alg, *loss, *iters)
	pred, err := tamp.TrainPredictors(ctx, w, tamp.TrainOptions{
		Algorithm:    *alg,
		WeightedLoss: *loss == "weighted",
		MetaIters:    *iters,
		Seed:         *seed,
		Parallelism:  *par,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tampsim:", err)
		os.Exit(1)
	}
	fmt.Printf("prediction quality: RMSE %.4f  MAE %.4f  MR %.4f  (train %v)\n",
		pred.Eval.RMSE, pred.Eval.MAE, pred.Eval.MR, pred.TrainTime.Round(1e6))

	var a tamp.Assigner
	switch *assigner {
	case "PPI":
		a = tamp.NewPPI()
	case "KM":
		a = tamp.NewKM()
	case "UB":
		a = tamp.NewUB()
	case "LB":
		a = tamp.NewLB()
	case "GGPSO":
		a = tamp.NewGGPSO(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tampsim: unknown assigner %q\n", *assigner)
		os.Exit(2)
	}

	fmt.Printf("simulating online assignment with %s...\n", a.Name())
	var m tamp.Metrics
	if *record != "" {
		m, err = tamp.SimulateRecorded(ctx, w, pred, a, *record)
	} else {
		m, err = tamp.Simulate(ctx, w, pred, a)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tampsim:", err)
		os.Exit(1)
	}
	if *record != "" {
		fmt.Printf("recorded the run's event log to %s (replay: tampbench -replay %s -assigner KM)\n", *record, *record)
	}
	fmt.Println()
	fmt.Printf("tasks arrived:     %d\n", m.TotalTasks)
	fmt.Printf("assignments |M|:   %d\n", m.Assigned)
	fmt.Printf("accepted |M'|:     %d\n", m.Accepted)
	fmt.Printf("completion rate:   %.4f\n", m.CompletionRate())
	fmt.Printf("rejection rate:    %.4f\n", m.RejectionRate())
	fmt.Printf("avg worker cost:   %.4f km\n", m.AvgCostKM())
	fmt.Printf("assignment time:   %v\n", m.AssignTime.Round(1e6))

	if *chaos {
		fc := tamp.FaultConfig{
			Seed:               *chaosSd,
			WorkerChurn:        0.20,
			DropReport:         0.10,
			GPSNoise:           0.10,
			GPSNoiseCells:      1.0,
			PredictorFail:      0.05,
			DecisionDelay:      0.20,
			DecisionDelayTicks: 3,
		}
		fmt.Printf("\nre-running under chaos (seed %d: 20%% churn, 10%% dropped reports, "+
			"10%% GPS noise, 5%% predictor failures, 20%% delayed decisions)...\n", fc.Seed)
		cm, err := tamp.SimulateChaos(ctx, w, pred, a, fc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tampsim:", err)
			os.Exit(1)
		}
		fmt.Printf("chaos completion:  %.4f  (fault-free %.4f, delta %+.4f)\n",
			cm.CompletionRate(), m.CompletionRate(), cm.CompletionRate()-m.CompletionRate())
		fmt.Printf("chaos rejection:   %.4f\n", cm.RejectionRate())
		fmt.Printf("faults absorbed:   offline-ticks %d  dropped %d  noised %d  "+
			"pred-fallbacks %d  deferred-decisions %d\n",
			cm.Faults.OfflineTicks, cm.Faults.DroppedReports, cm.Faults.NoisyReports,
			cm.Faults.PredFallbacks, cm.Faults.DeferredDecisions)
	}

	if reg != nil {
		fmt.Printf("\n== metric registry (Prometheus text) ==\n%s", reg.Dump())
	}
}

// loadWorkload assembles a workload from tampgen-format CSV files.
func loadWorkload(p tamp.WorkloadParams, workersPath, tasksPath string) (*tamp.Workload, error) {
	wf, err := os.Open(workersPath)
	if err != nil {
		return nil, err
	}
	defer wf.Close()
	workers, err := ingest.LoadWorkersCSV(wf)
	if err != nil {
		return nil, err
	}
	tf, err := os.Open(tasksPath)
	if err != nil {
		return nil, err
	}
	defer tf.Close()
	tasks, err := ingest.LoadTasksCSV(tf)
	if err != nil {
		return nil, err
	}
	return ingest.BuildWorkload(p, workers, tasks, nil, nil), nil
}
