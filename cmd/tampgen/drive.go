// Drive mode: instead of dumping the generated workload to CSV, replay it
// live against a serving endpoint (a tamprouter or a single tampserver) —
// concurrent task submissions and worker location reports, offer polling
// and acceptance, with per-operation latency percentiles and an error
// budget summary written as JSON. This is the load half of the cluster
// smoke test: it does not assert, it measures; the caller decides what
// availability is acceptable.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/spatialcrowd/tamp"
	"github.com/spatialcrowd/tamp/internal/geo"
)

// driveReport is the JSON artifact of one drive run.
type driveReport struct {
	Target   string              `json:"target"`
	Seconds  float64             `json:"seconds"`
	Workers  int                 `json:"workers"`
	Tasks    int                 `json:"tasks"`
	Accepted int                 `json:"accepted"`
	Ops      map[string]*opStats `json:"ops"`
	Budget   errorBudget         `json:"errorBudget"`
}

// opStats summarizes one operation class (submit, report, offers, accept,
// batch). Latencies are reported as percentiles in milliseconds — the raw
// histogram the percentiles come from also feeds the router's /metrics, so
// the JSON stays compact.
type opStats struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"` // transport failures and 5xx other than 503
	Sheds  int     `json:"sheds"`  // 503: deliberate load-shedding
	P50ms  float64 `json:"p50Ms"`
	P90ms  float64 `json:"p90Ms"`
	P99ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`

	mu      sync.Mutex
	samples []float64
}

// errorBudget is the run's bottom line: of everything attempted, how much
// was served. Sheds burn budget too — a 503 is still a request the platform
// did not serve — but they are broken out so a degraded-by-design window
// reads differently from a broken one.
type errorBudget struct {
	Total        int     `json:"total"`
	Served       int     `json:"served"`
	Errors       int     `json:"errors"`
	Sheds        int     `json:"sheds"`
	Availability float64 `json:"availability"`
}

type driver struct {
	base string
	hc   *http.Client

	mu  sync.Mutex
	ops map[string]*opStats

	accepted int
}

func (d *driver) stats(op string) *opStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.ops[op]
	if !ok {
		s = &opStats{}
		d.ops[op] = s
	}
	return s
}

// call performs one JSON request and records its latency and outcome under
// op. 2xx and the expected contention statuses (404/409 on offer races) are
// "served"; 503 is a shed; anything else, including transport errors, burns
// the error budget.
func (d *driver) call(ctx context.Context, op, method, path string, in, out any) (int, error) {
	s := d.stats(op)
	var body []byte
	if in != nil {
		body, _ = json.Marshal(in)
	}
	req, err := http.NewRequestWithContext(ctx, method, d.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := d.hc.Do(req)
	ms := float64(time.Since(start).Microseconds()) / 1000
	if err != nil && ctx.Err() != nil {
		// The run is shutting down and cancelled this request mid-flight:
		// that is the driver's doing, not the platform's, so it neither
		// counts nor burns error budget.
		return 0, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.Count++
	s.samples = append(s.samples, ms)
	if err != nil {
		s.Errors++
		return 0, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		s.Sheds++
	case resp.StatusCode >= 500:
		s.Errors++
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

func (s *opStats) finalize() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Float64s(s.samples)
	s.P50ms = percentile(s.samples, 0.50)
	s.P90ms = percentile(s.samples, 0.90)
	s.P99ms = percentile(s.samples, 0.99)
	if n := len(s.samples); n > 0 {
		s.MaxMs = s.samples[n-1]
	}
	s.samples = nil
}

// runDrive replays the workload against base: every established worker
// walks its first test-day routine reporting locations and accepting the
// offers it is granted, a submitter pool posts the test tasks, and a single
// pacer goroutine advances ticks and batches. It returns the report and
// writes it to outDir/drive_report.json.
func runDrive(base string, w *tamp.Workload, conc, nTasks int, outDir string) (*driveReport, error) {
	if conc <= 0 {
		conc = 8
	}
	d := &driver{
		base: base,
		hc:   &http.Client{Timeout: 10 * time.Second},
		ops:  map[string]*opStats{},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Registration is sequential — it is setup, not load.
	workers := w.Workers
	if len(workers) > 64 {
		workers = workers[:64]
	}
	for _, wk := range workers {
		reg := map[string]any{
			"id":       wk.ID + 1, // worker IDs in the workload are 0-based; the platform wants positive
			"detourKm": wk.Detour * geo.CellKM,
			"speed":    wk.Speed,
			"mr":       0.8,
		}
		// 409 means the worker is already on the platform from an earlier
		// drive run against the same fleet — that is fine, keep using it.
		if code, err := d.call(ctx, "register", "POST", "/api/workers", reg, nil); err != nil ||
			(code != http.StatusCreated && code != http.StatusConflict) {
			return nil, fmt.Errorf("register worker %d: status %d, err %v", wk.ID+1, code, err)
		}
	}

	tasks := w.TestTasks
	if nTasks > 0 && nTasks < len(tasks) {
		tasks = tasks[:nTasks]
	}

	start := time.Now()
	var wg sync.WaitGroup

	// Worker loops: walk the routine, poll offers, accept what is granted.
	workCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	for _, wk := range workers {
		if len(wk.TestDays) == 0 || wk.TestDays[0].Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(id int, pts []geo.Point) {
			defer wg.Done()
			for i := 0; workCtx.Err() == nil; i++ {
				p := pts[i%len(pts)]
				d.call(workCtx, "report", "POST", fmt.Sprintf("/api/workers/%d/location", id),
					map[string]float64{"x": p.X, "y": p.Y}, nil)
				var offers []struct {
					OfferID int `json:"offerId"`
				}
				d.call(workCtx, "offers", "GET", fmt.Sprintf("/api/workers/%d/offers", id), nil, &offers)
				for _, o := range offers {
					if code, _ := d.call(workCtx, "accept", "POST",
						fmt.Sprintf("/api/offers/%d/accept", o.OfferID), nil, nil); code == http.StatusOK {
						d.mu.Lock()
						d.accepted++
						d.mu.Unlock()
					}
				}
				select {
				case <-workCtx.Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
		}(wk.ID+1, wk.TestDays[0].Points)
	}

	// Pacer: ticks and batches at a steady cadence while load runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(25 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-workCtx.Done():
				return
			case <-t.C:
				d.call(workCtx, "tick", "POST", "/api/tick", nil, nil)
				d.call(workCtx, "batch", "POST", "/api/batch", nil, nil)
			}
		}
	}()

	// Submitter pool: the measured foreground load.
	taskCh := make(chan int, len(tasks))
	for i := range tasks {
		taskCh <- i
	}
	close(taskCh)
	var subWG sync.WaitGroup
	for g := 0; g < conc; g++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for i := range taskCh {
				tk := tasks[i]
				d.call(ctx, "submit", "POST", "/api/tasks", map[string]any{
					"x": tk.Loc.X, "y": tk.Loc.Y, "deadline": tk.Deadline + 120,
				}, nil)
			}
		}()
	}
	subWG.Wait()

	// Short drain so in-flight offers settle, then stop the background load.
	select {
	case <-time.After(500 * time.Millisecond):
	case <-ctx.Done():
	}
	stopWorkers()
	wg.Wait()

	rep := &driveReport{
		Target:  base,
		Seconds: time.Since(start).Seconds(),
		Workers: len(workers),
		Tasks:   len(tasks),
		Ops:     d.ops,
	}
	d.mu.Lock()
	rep.Accepted = d.accepted
	d.mu.Unlock()
	for _, s := range d.ops {
		s.finalize()
		rep.Budget.Total += s.Count
		rep.Budget.Errors += s.Errors
		rep.Budget.Sheds += s.Sheds
	}
	rep.Budget.Served = rep.Budget.Total - rep.Budget.Errors - rep.Budget.Sheds
	if rep.Budget.Total > 0 {
		rep.Budget.Availability = float64(rep.Budget.Served) / float64(rep.Budget.Total)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(outDir, "drive_report.json"), data, 0o644); err != nil {
		return nil, err
	}
	os.Stdout.Write(data)
	return rep, nil
}
