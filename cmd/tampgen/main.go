// Command tampgen generates a synthetic workload and dumps it for
// inspection: worker routines as CSV, tasks as CSV, and the workload
// summary as JSON.
//
// Usage:
//
//	tampgen -workload 1 -out /tmp/wl1            # writes workers.csv, tasks.csv, summary.json
//	tampgen -workload 2 -tasks 500 -out /tmp/wl2
//
// With -drive the workload is replayed live against a serving endpoint (a
// tamprouter or a bare tampserver) instead of dumped: concurrent task
// submissions, worker location reports, offer accepts, and tick/batch
// pacing, with per-operation latency percentiles and an error-budget
// summary written to drive_report.json and stdout:
//
//	tampgen -tasks 200 -drive http://127.0.0.1:8090 -drive-conc 8 -out /tmp/run
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/spatialcrowd/tamp"
	"github.com/spatialcrowd/tamp/internal/viz"
)

func main() {
	var (
		workload = flag.Int("workload", 1, "workload family: 1 or 2")
		workers  = flag.Int("workers", 30, "number of established workers")
		tasks    = flag.Int("tasks", 1000, "number of test tasks")
		seed     = flag.Int64("seed", 1, "generation seed")
		out      = flag.String("out", ".", "output directory")
		showMap  = flag.Bool("viz", false, "print an ASCII map of the workload (trajectory density, x = tasks, O = hotspots)")
		drive    = flag.String("drive", "", "replay the workload as live load against this base URL (router or server) instead of dumping CSV")
		driveC   = flag.Int("drive-conc", 8, "with -drive, concurrent task submitters")
	)
	flag.Parse()

	kind := tamp.Workload1
	if *workload == 2 {
		kind = tamp.Workload2
	}
	p := tamp.DefaultWorkloadParams(kind)
	p.Seed = *seed
	p.NumWorkers = *workers
	p.NewWorkers = *workers / 10
	p.NumTestTasks = *tasks
	w := tamp.GenerateWorkload(p)

	if *showMap {
		viz.WorkloadMap(w, 100, 30).Render(os.Stdout)
	}

	if *drive != "" {
		if _, err := runDrive(*drive, w, *driveC, *tasks, *out); err != nil {
			fatal(err)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := writeWorkers(filepath.Join(*out, "workers.csv"), w); err != nil {
		fatal(err)
	}
	if err := writeTasks(filepath.Join(*out, "tasks.csv"), w); err != nil {
		fatal(err)
	}
	if err := writeSummary(filepath.Join(*out, "summary.json"), w); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote workers.csv, tasks.csv, summary.json to %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tampgen:", err)
	os.Exit(1)
}

// writeWorkers dumps one row per (worker, day, tick) with the location.
func writeWorkers(path string, w *tamp.Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	defer cw.Flush()
	if err := cw.Write([]string{"worker", "archetype", "new", "split", "day", "tick", "x", "y"}); err != nil {
		return err
	}
	for _, wk := range w.Workers {
		write := func(split string, day int, r tamp.Routine) error {
			for t, pt := range r.Points {
				rec := []string{
					strconv.Itoa(wk.ID),
					strconv.Itoa(wk.Archetype),
					strconv.FormatBool(wk.New),
					split,
					strconv.Itoa(day),
					strconv.Itoa(t),
					strconv.FormatFloat(pt.X, 'f', 3, 64),
					strconv.FormatFloat(pt.Y, 'f', 3, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
			return nil
		}
		for d, r := range wk.TrainDays {
			if err := write("train", d, r); err != nil {
				return err
			}
		}
		for d, r := range wk.TestDays {
			if err := write("test", d, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTasks(path string, w *tamp.Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	defer cw.Flush()
	if err := cw.Write([]string{"task", "x", "y", "arrival", "deadline"}); err != nil {
		return err
	}
	for _, t := range w.TestTasks {
		rec := []string{
			strconv.Itoa(t.ID),
			strconv.FormatFloat(t.Loc.X, 'f', 3, 64),
			strconv.FormatFloat(t.Loc.Y, 'f', 3, 64),
			strconv.Itoa(t.Arrival),
			strconv.Itoa(t.Deadline),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func writeSummary(path string, w *tamp.Workload) error {
	summary := map[string]any{
		"kind":       w.Params.Kind.String(),
		"seed":       w.Params.Seed,
		"workers":    len(w.Workers),
		"newWorkers": w.Params.NewWorkers,
		"tasks":      len(w.TestTasks),
		"histTasks":  len(w.HistTasks),
		"pois":       len(w.POIs),
		"hotspots":   len(w.Hotspots),
		"trainDays":  w.Params.TrainDays,
		"testDays":   w.Params.TestDays,
		"gridCols":   w.Params.Grid.Cols,
		"gridRows":   w.Params.Grid.Rows,
	}
	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
