// Command tampbench regenerates the tables and figures of the paper's
// evaluation (§IV and Appendix C) on the synthetic workloads.
//
// Usage:
//
//	tampbench -list
//	tampbench -exp table4 -scale quick
//	tampbench -exp fig6,fig7 -scale full
//	tampbench -exp all -scale quick
//	tampbench -json BENCH_nn.json
//	tampbench -assign-json BENCH_assign.json
//	tampbench -assign-json BENCH_assign.json -churn 0,1,10   # incremental-session churn levels
//	tampbench -predict-json BENCH_predict.json         # prediction-engine (cache + batched kernels) benchmarks
//	tampbench -check BENCH_nn.json -check-assign BENCH_assign.json -check-predict BENCH_predict.json -tolerance 0.25   # CI regression guard
//	tampbench -matrix                                  # regenerate BENCH_matrix.json + MATRIX.md
//	tampbench -check-matrix BENCH_matrix.json -matrix-scale smoke   # CI matrix gate
//	tampbench -replay /var/lib/tamp/wal -assigner KM   # re-run a recorded log offline
//
// -matrix runs the cross-product of the scenario workload generators
// (internal/scenario: paper, windows, budget) × the full assigner zoo
// (UB, PPI, KM, GGPSO, Greedy, LB) at each -matrix-scale and commits the
// per-cell metrics; -check-matrix diffs a fresh run against the committed
// file with per-metric tolerances and exits 1 on drift.
//
// -replay feeds an event log recorded by a durable server (tampserver
// -wal-dir) or a recording simulation (tampsim -record) through any
// assigner: the replayed state follows the live run event for event, while
// at each batch the chosen assigner produces a counterfactual plan over the
// exact batch input the live platform saw, reported pair-for-pair against
// the live plan. Repeated replays are bit-identical.
//
// Scale "quick" finishes in seconds per experiment; "full" takes minutes
// per experiment and produces the paper-shaped trends recorded in
// EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/experiments"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/perf"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/replay"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		expFlag  = flag.String("exp", "", "comma-separated experiment ids, or 'all'")
		scale    = flag.String("scale", "quick", "experiment scale: quick or full")
		seed     = flag.Int64("seed", 0, "override the workload seed (0 keeps the scale default)")
		csvDir   = flag.String("csv", "", "also write <dir>/<exp>.csv with machine-readable rows")
		seeds    = flag.Int("seeds", 1, "run each experiment over this many seeds and report mean ± std")
		par      = flag.Int("par", 0, "worker pool size for training, simulation, and multi-seed fan-out (0 = all cores)")
		jsonOut  = flag.String("json", "", "run the NN kernel benchmarks and write before/after results to this file")
		check    = flag.String("check", "", "run the NN kernel benchmarks and compare against the baseline in this file; exit 1 on regression")
		assignJ  = flag.String("assign-json", "", "run the batch-assignment benchmarks and write before/after results to this file (a fresh file records the brute-force scan as baseline)")
		checkAsg = flag.String("check-assign", "", "run the batch-assignment benchmarks and compare against the baseline in this file; exit 1 on regression")
		predJ    = flag.String("predict-json", "", "run the prediction-engine benchmarks (forecast cache, batched kernels, stationary simulate) and write before/after results to this file (a fresh file records the uncached/streamed path as baseline)")
		checkPrd = flag.String("check-predict", "", "run the prediction-engine benchmarks and compare against the baseline in this file; exit 1 on regression")
		churnF   = flag.String("churn", "0,1,10", "comma-separated churn percentages for the incremental-session benchmarks run by -assign-json/-check-assign")
		tol      = flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth before -check/-check-assign fails (allocs/op must never grow)")
		metrics  = flag.Bool("metrics", false, "collect experiment metrics in a registry and dump it (Prometheus text) at end of run")
		pprofA   = flag.String("pprof", "", "serve net/http/pprof on this address while the run lasts (e.g. localhost:6060)")
		matrixR  = flag.Bool("matrix", false, "run the scenario-generator × assigner benchmark matrix and write -matrix-json and -matrix-md")
		matrixJ  = flag.String("matrix-json", "BENCH_matrix.json", "matrix output file for -matrix")
		matrixMD = flag.String("matrix-md", "MATRIX.md", "human-readable matrix table for -matrix")
		matrixSc = flag.String("matrix-scale", "", "comma-separated matrix scales: smoke, quick, full (default smoke,quick for -matrix; smoke for -check-matrix)")
		checkMx  = flag.String("check-matrix", "", "run a fresh matrix at -matrix-scale and diff it against this committed file; exit 1 on out-of-tolerance drift")
		matrixFr = flag.String("matrix-fresh", "", "with -check-matrix, also write the fresh cells to this file (CI uploads it on failure)")
		replayD  = flag.String("replay", "", "replay a recorded event log directory (tampserver -wal-dir or tampsim -record) through -assigner and report per-batch plan agreement")
		assignN  = flag.String("assigner", "PPI", "assigner for -replay: PPI, KM, UB, LB, GGPSO")
		modelsF  = flag.String("models", "", "predictor bundle (SaveModels format) for -replay counterfactual batches; omitted = stand-still forecasts")
	)
	flag.Parse()

	if *list {
		experiments.Describe(os.Stdout)
		return
	}
	if *replayD != "" {
		if err := runReplay(*replayD, *assignN, *modelsF, *par, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tampbench:", err)
			os.Exit(1)
		}
		return
	}
	if *matrixR || *checkMx != "" {
		if err := runMatrix(*matrixR, *checkMx, *matrixJ, *matrixMD, *matrixSc, *matrixFr, *par); err != nil {
			fmt.Fprintln(os.Stderr, "tampbench:", err)
			os.Exit(1)
		}
		return
	}
	if *pprofA != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "tampbench: pprof:", http.ListenAndServe(*pprofA, nil))
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofA)
	}
	if *check != "" || *checkAsg != "" || *checkPrd != "" {
		// Each guard runs its suite once, feeding both the verdict and the
		// optional artifact; a regression in either suite fails the process.
		failed := false
		runCheck := func(path string, cur []perf.Result, artifact string, write func(string, []perf.Result) (perf.File, error), guardCurrent bool) {
			base, err := perf.LoadFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			if guardCurrent && len(base.Current) > 0 {
				// BENCH_assign.json's Baseline records the brute-force scan
				// the spatial index replaced — a speedup record a fresh
				// indexed run would beat by orders of magnitude even after a
				// bad regression. Guard against the committed indexed
				// measurements instead.
				base.Baseline = base.Current
			}
			if artifact != "" {
				if _, err := write(artifact, cur); err != nil {
					fmt.Fprintln(os.Stderr, "tampbench:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote %s\n", artifact)
			}
			report, ok := perf.CheckAgainst(base, cur, *tol)
			fmt.Print(report)
			if !ok {
				fmt.Fprintf(os.Stderr, "tampbench: benchmark regression against %s (tolerance %.0f%%)\n", path, *tol*100)
				failed = true
				return
			}
			fmt.Printf("no regression against %s (tolerance %.0f%%)\n", path, *tol*100)
		}
		if *check != "" {
			runCheck(*check, perf.Run(), *jsonOut, perf.WriteJSONWith, false)
		}
		if *checkAsg != "" {
			cur := append(perf.RunAssign(), perf.RunAssignIncremental(churnLevels(*churnF), false)...)
			runCheck(*checkAsg, cur, *assignJ, perf.WriteAssignJSONWith, true)
		}
		if *checkPrd != "" {
			// Like BENCH_assign.json, the Baseline records the replaced path
			// (uncached forecasts, streamed gradients) — guard against the
			// committed Current instead.
			cur, err := perf.RunPredict()
			if err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			runCheck(*checkPrd, cur, *predJ, perf.WritePredictJSONWith, true)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" || *assignJ != "" || *predJ != "" {
		if *jsonOut != "" {
			f, err := perf.WriteJSON(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			fmt.Print(perf.Format(f))
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if *assignJ != "" {
			// Artifact runs (not the CI guard) include the large incremental
			// datapoint; the guard tolerates names present on only one side.
			cur := append(perf.RunAssign(), perf.RunAssignIncremental(churnLevels(*churnF), true)...)
			f, err := perf.WriteAssignJSONWith(*assignJ, cur)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			fmt.Print(perf.Format(f))
			fmt.Printf("wrote %s\n", *assignJ)
		}
		if *predJ != "" {
			f, err := perf.WritePredictJSON(*predJ)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			fmt.Print(perf.Format(f))
			fmt.Printf("wrote %s\n", *predJ)
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "tampbench: -exp required (use -list to see experiments)")
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "tampbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Parallelism = *par
	effective := *par
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("parallelism: %d goroutines (GOMAXPROCS %d)\n", effective, runtime.GOMAXPROCS(0))

	// Ctrl-C abandons the current experiment cleanly instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		ctx = obs.WithRegistry(ctx, reg)
	}

	var ids []string
	if *expFlag == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "tampbench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s (%s scale) ==\n", e.Title, sc.Name)
		start := time.Now()
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			if err := e.RunCSV(ctx, sc, f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", filepath.Join(*csvDir, id+".csv"))
		} else if *seeds > 1 {
			list := make([]int64, *seeds)
			for i := range list {
				list[i] = sc.Seed + int64(i)
			}
			if err := e.RunSeeds(ctx, sc, list, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
		} else {
			if err := e.Run(ctx, sc, os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tampbench:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("[%s finished in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if reg != nil {
		fmt.Printf("== metric registry (Prometheus text) ==\n%s", reg.Dump())
	}
}

// runMatrix is the -matrix / -check-matrix mode: run the scenario-generator
// × assigner cross-product (Ctrl-C cancels between simulations) and either
// persist it as the committed BENCH_matrix.json + MATRIX.md or diff it
// against the committed cells with per-metric tolerances.
func runMatrix(generate bool, checkPath, jsonPath, mdPath, scaleCSV, freshPath string, par int) error {
	if scaleCSV == "" {
		if generate {
			scaleCSV = "smoke,quick"
		} else {
			scaleCSV = "smoke"
		}
	}
	var scales []experiments.Scale
	for _, name := range strings.Split(scaleCSV, ",") {
		sc, err := experiments.MatrixScale(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		sc.Parallelism = par
		scales = append(scales, sc)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	cells, err := experiments.RunMatrix(ctx, scales, os.Stderr)
	if err != nil {
		return err
	}
	experiments.WriteMatrixTable(os.Stdout, cells)
	fmt.Printf("matrix: %d cells in %v\n", len(cells), time.Since(start).Round(time.Millisecond))

	if checkPath != "" {
		if freshPath != "" {
			if err := experiments.WriteMatrixJSON(freshPath, cells); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", freshPath)
		}
		committed, err := experiments.LoadMatrix(checkPath)
		if err != nil {
			return err
		}
		report, ok := experiments.CheckMatrix(committed, cells)
		fmt.Print(report)
		if !ok {
			return fmt.Errorf("matrix drift against %s — if intentional, regenerate with `make matrix`", checkPath)
		}
		fmt.Printf("no drift against %s\n", checkPath)
		return nil
	}
	if err := experiments.WriteMatrixJSON(jsonPath, cells); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	f, err := os.Create(mdPath)
	if err != nil {
		return err
	}
	experiments.WriteMatrixMD(f, cells)
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", mdPath)
	return nil
}

// churnLevels parses the -churn flag; invalid entries abort.
func churnLevels(s string) []int {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil || v < 0 || v > 100 {
			fmt.Fprintf(os.Stderr, "tampbench: bad -churn entry %q (want 0-100)\n", part)
			os.Exit(2)
		}
		levels = append(levels, v)
	}
	return levels
}

// runReplay feeds a recorded platform event log through the named assigner
// and prints the per-batch counterfactual plans against the live run.
func runReplay(dir, assigner, modelsPath string, par int, seed int64) error {
	var a assign.Assigner
	switch assigner {
	case "PPI":
		a = assign.PPI{A: predict.DefaultMatchRadius, Parallelism: par}
	case "KM":
		a = assign.KM{Parallelism: par}
	case "UB":
		a = assign.UB{}
	case "LB":
		a = assign.LB{}
	case "GGPSO":
		a = assign.GGPSO{Seed: seed}
	default:
		return fmt.Errorf("unknown assigner %q", assigner)
	}
	opts := replay.Options{Assigner: a, Parallelism: par}
	if modelsPath != "" {
		f, err := os.Open(modelsPath)
		if err != nil {
			return err
		}
		models, err := predict.LoadModels(f)
		f.Close()
		if err != nil {
			return err
		}
		opts.Models = models
		fmt.Printf("loaded %d worker models from %s\n", len(models), modelsPath)
	}
	rep, err := replay.Run(context.Background(), dir, opts)
	if err != nil {
		return err
	}
	if rep.Torn != nil {
		fmt.Printf("warning: log tail corrupt (%v); replaying the valid prefix\n", rep.Torn)
	}
	fmt.Printf("replayed %d events (from seq %d) through %s in %v\n",
		rep.Events, rep.StartSeq, rep.Assigner, rep.Duration.Round(time.Microsecond))
	for _, bp := range rep.Batches {
		mark := ""
		if bp.Degraded {
			mark = "  [live batch degraded]"
		}
		fmt.Printf("  batch @ seq %-6d tick %-4d live %-3d replay %-3d agreed %-3d%s\n",
			bp.Seq, bp.Tick, len(bp.Live), len(bp.Replay), bp.Agreed, mark)
	}
	fmt.Printf("plan agreement: %d/%d live pairs re-proposed (%.1f%%); replay proposed %d pairs\n",
		rep.AgreedPairs, rep.LivePairs, rep.AgreementRate()*100, rep.ReplayPairs)
	return nil
}
