// Command tamprouter fronts a fleet of region-sharded tampserver processes:
// it terminates the same HTTP API the shards speak, routes every request to
// the shard(s) owning the locations involved, and keeps serving through
// shard failures — capped-backoff retries with deterministic jitter, a
// per-shard circuit breaker, health-probe driven admission, bounded
// queueing for interior traffic, and border-task failover to the neighbor
// shard.
//
// Usage:
//
//	tamprouter -addr :8090 -map shards.json
//	tamprouter -addr :8090 -map shards.json -probe-interval 250ms -queue-limit 512
//
// The shard map file declares the grid, the border width, and one entry per
// shard (name, URL, and the half-open column stripe [xmin, xmax) it owns):
//
//	{
//	  "grid": {"cols": 100, "rows": 50},
//	  "borderKm": 1,
//	  "shards": [
//	    {"name": "west", "url": "http://127.0.0.1:8081", "xmin": 0,  "xmax": 50},
//	    {"name": "east", "url": "http://127.0.0.1:8082", "xmin": 50, "xmax": 100}
//	  ]
//	}
//
// Each shard should run with -offer-base $((ONE_BASED_INDEX * 1000000000))
// so offer IDs are globally unique and route back to their issuing shard,
// and with -wal-dir so a crashed shard rejoins by replaying its log.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/spatialcrowd/tamp/internal/par"
	"github.com/spatialcrowd/tamp/internal/tier"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		mapPath   = flag.String("map", "", "shard map JSON file (required)")
		probe     = flag.Duration("probe-interval", 250*time.Millisecond, "readiness probe cadence per shard")
		threshold = flag.Int("breaker-threshold", 3, "consecutive failures that open a shard's circuit breaker")
		cooldown  = flag.Duration("breaker-cooldown", 2*time.Second, "time an open breaker waits before admitting a half-open trial")
		attemptTO = flag.Duration("attempt-timeout", 2*time.Second, "deadline for each individual shard call attempt")
		attempts  = flag.Int("retry-attempts", 3, "max attempts per shard call (transient failures only)")
		baseDelay = flag.Duration("retry-base", 10*time.Millisecond, "first retry backoff; doubles per retry with deterministic jitter")
		queue     = flag.Int("queue-limit", 256, "interior tasks buffered per down shard before shedding (negative = shed immediately)")
	)
	flag.Parse()
	if *mapPath == "" {
		log.Fatal("tamprouter: -map is required")
	}
	m, err := tier.LoadMap(*mapPath)
	if err != nil {
		log.Fatalf("tamprouter: %v", err)
	}
	rt, err := tier.NewRouter(tier.Config{
		Map:              m,
		Retry:            par.RetryConfig{Attempts: *attempts, BaseDelay: *baseDelay},
		AttemptTimeout:   *attemptTO,
		BreakerThreshold: *threshold,
		BreakerCooldown:  *cooldown,
		ProbeInterval:    *probe,
		QueueLimit:       *queue,
	})
	if err != nil {
		log.Fatalf("tamprouter: %v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("router listening on %s fronting %d shards (map %s)", *addr, m.NumShards(), *mapPath)
	if err := rt.ListenAndServe(ctx, *addr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tamprouter: %v", err)
	}
	log.Printf("shut down cleanly")
}
