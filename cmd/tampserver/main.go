// Command tampserver runs the spatial crowdsourcing platform as an HTTP
// service: requesters POST tasks, workers report locations and accept or
// reject offers, and the platform runs prediction-aware batch assignment
// every tick.
//
// Usage:
//
//	tampserver -addr :8080 -models bundle.json -tick 2s
//	tampserver -addr :8080 -assigner KM -manual   # advance ticks via POST /api/tick
//
// Produce a model bundle with Predictors.SaveModels (see examples/adaptive)
// or run without one: workers without models are forecast as stationary.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		models   = flag.String("models", "", "predictor bundle written by SaveModels (optional)")
		assigner = flag.String("assigner", "PPI", "assignment algorithm: PPI, KM, LB, GGPSO")
		tick     = flag.Duration("tick", 2*time.Second, "wall-clock duration of one platform tick")
		manual   = flag.Bool("manual", false, "disable the background ticker; advance via POST /api/tick and /api/batch")
	)
	flag.Parse()

	cfg := server.Config{Grid: geo.DefaultGrid}
	switch *assigner {
	case "PPI":
		cfg.Assigner = assign.PPI{A: predict.DefaultMatchRadius}
	case "KM":
		cfg.Assigner = assign.KM{}
	case "LB":
		cfg.Assigner = assign.LB{}
	case "GGPSO":
		cfg.Assigner = assign.GGPSO{}
	default:
		fmt.Fprintf(os.Stderr, "tampserver: unknown assigner %q\n", *assigner)
		os.Exit(2)
	}
	if *models != "" {
		f, err := os.Open(*models)
		if err != nil {
			log.Fatalf("tampserver: %v", err)
		}
		loaded, err := predict.LoadModels(f)
		f.Close()
		if err != nil {
			log.Fatalf("tampserver: %v", err)
		}
		cfg.Models = loaded
		log.Printf("loaded %d worker models from %s", len(loaded), *models)
	}

	s := server.New(cfg)
	if !*manual {
		go func() {
			ticker := time.NewTicker(*tick)
			defer ticker.Stop()
			for range ticker.C {
				s.AdvanceTick()
				s.RunBatch()
			}
		}()
		log.Printf("background ticker: 1 tick per %v", *tick)
	}
	log.Printf("platform listening on %s (assigner %s)", *addr, *assigner)
	if err := http.ListenAndServe(*addr, s); err != nil {
		log.Fatalf("tampserver: %v", err)
	}
}
