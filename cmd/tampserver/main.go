// Command tampserver runs the spatial crowdsourcing platform as an HTTP
// service: requesters POST tasks, workers report locations and accept or
// reject offers, and the platform runs prediction-aware batch assignment
// every tick.
//
// Usage:
//
//	tampserver -addr :8080 -models bundle.json -tick 2s
//	tampserver -addr :8080 -assigner KM -manual   # advance ticks via POST /api/tick
//	tampserver -addr :8080 -wal-dir /var/lib/tamp/wal -snapshot-every 1024
//
// With -wal-dir the server is durable: every event (task, report, offer,
// decision, batch) is written to a write-ahead log before it is
// acknowledged, and a restart — clean or after a crash — replays the
// newest snapshot plus the log tail back to the exact pre-crash state. The
// recorded log also drives offline assigner comparison: tampbench -replay.
//
// Produce a model bundle with Predictors.SaveModels (see examples/adaptive)
// or run without one: workers without models are forecast as stationary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		models   = flag.String("models", "", "predictor bundle written by SaveModels (optional)")
		assigner = flag.String("assigner", "PPI", "assignment algorithm: PPI, KM, LB, GGPSO")
		tick     = flag.Duration("tick", 2*time.Second, "wall-clock duration of one platform tick")
		manual   = flag.Bool("manual", false, "disable the background ticker; advance via POST /api/tick and /api/batch")
		par      = flag.Int("par", 0, "worker pool size for batch prediction and matching (0 = all cores)")
		batchTO  = flag.Duration("batch-timeout", 0, "per-batch assignment deadline; on expiry the batch degrades to the greedy fallback (0 = no deadline)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "per-request handling deadline (negative = none)")
		maxBody  = flag.Int64("max-body", 1<<20, "request body cap in bytes (negative = none)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (metrics at GET /metrics are always on)")
		walDir   = flag.String("wal-dir", "", "write-ahead log directory: every platform event is persisted before it is acknowledged, and a restart replays snapshot + log back to the exact pre-crash state (empty = memory-only)")
		snapN    = flag.Int("snapshot-every", 1024, "with -wal-dir, write a state snapshot every N events to bound restart replay")
		offBase  = flag.Int("offer-base", 0, "smallest offer ID this instance issues; shard i of a routed fleet uses (i+1)*1000000000 so offers route by ID range (0 = standalone)")
		deferRec = flag.Bool("defer-recovery", false, "with -wal-dir, recover in the background and answer /readyz 503 until replay completes, so a router admits the shard only once it is caught up")
	)
	flag.Parse()

	cfg := server.Config{
		Grid: geo.DefaultGrid, Parallelism: *par,
		BatchTimeout: *batchTO, RequestTimeout: *reqTO, MaxBodyBytes: *maxBody,
		EnablePprof: *pprofOn,
		WALDir:      *walDir, SnapshotEvery: *snapN,
		OfferBase: *offBase, DeferRecovery: *deferRec,
	}
	switch *assigner {
	case "PPI":
		cfg.Assigner = assign.PPI{A: predict.DefaultMatchRadius, Parallelism: *par}
	case "KM":
		cfg.Assigner = assign.KM{Parallelism: *par}
	case "LB":
		cfg.Assigner = assign.LB{}
	case "GGPSO":
		cfg.Assigner = assign.GGPSO{}
	default:
		fmt.Fprintf(os.Stderr, "tampserver: unknown assigner %q\n", *assigner)
		os.Exit(2)
	}
	if *models != "" {
		f, err := os.Open(*models)
		if err != nil {
			log.Fatalf("tampserver: %v", err)
		}
		loaded, err := predict.LoadModels(f)
		f.Close()
		if err != nil {
			log.Fatalf("tampserver: %v", err)
		}
		cfg.Models = loaded
		log.Printf("loaded %d worker models from %s", len(loaded), *models)
	}

	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("tampserver: %v", err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			log.Printf("tampserver: close wal: %v", err)
		}
	}()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	interval := *tick
	if *manual {
		interval = 0
	} else {
		log.Printf("background ticker: 1 tick per %v", *tick)
	}
	log.Printf("platform listening on %s (assigner %s)", *addr, *assigner)
	err = s.ListenAndServe(ctx, *addr, interval)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tampserver: %v", err)
	}
	log.Printf("shut down cleanly")
}
