// Package replay is the offline bridge between a recorded platform event
// log and the assignment algorithms: it feeds a write-ahead log produced by
// a live server (internal/server with -wal-dir) or a recording simulation
// (platform.Run.EventSink) back through any assigner, without HTTP, clocks,
// or goroutines.
//
// The replayed state always follows the live run — each recorded event is
// applied exactly as logged — while at every batch event the bridge first
// rebuilds the batch input the live platform saw (core.BuildBatch over the
// state the moment before the batch applied) and runs the chosen assigner
// on it. The result is a per-batch counterfactual plan that can be compared
// pair-for-pair against the plan the live run committed: "what would KM
// have offered where PPI ran?". Because core.State transitions and the
// assigners are deterministic, replaying the same log with the same options
// yields bit-identical reports.
package replay

import (
	"context"
	"fmt"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/core"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/wal"
)

// Options configures one replay pass.
type Options struct {
	// Assigner produces the counterfactual plan at each batch event.
	Assigner assign.Assigner
	// Models are the per-worker mobility predictors available to the
	// counterfactual batches; nil degrades every worker to a stand-still
	// forecast, exactly as the live platform would.
	Models map[int]*predict.WorkerModel
	// PredHorizon is the forecast window per worker per batch (default 8,
	// the live platform's default).
	PredHorizon int
	// Parallelism bounds the pool used for per-batch rollout construction
	// (0 = GOMAXPROCS). Plans are bit-identical at every level.
	Parallelism int
	// Registry receives the tamp_replay_duration_seconds gauge and supplies
	// the clock that measures it (nil = obs.Default).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.PredHorizon <= 0 {
		o.PredHorizon = 8
	}
	if o.Registry == nil {
		o.Registry = obs.Default
	}
	return o
}

// BatchPlan compares one live batch against the replay assigner's plan over
// the identical input.
type BatchPlan struct {
	// Seq is the event's sequence number (state Applied count after it).
	Seq uint64
	// Tick is the platform tick the batch ran at.
	Tick int
	// Degraded reports that the live batch fell back to the greedy assigner.
	Degraded bool
	// Live is the plan the recorded run committed; Replay is the plan the
	// replay assigner produced from the same batch input. Replay offer IDs
	// are allocated from the same counter the live run would have used.
	Live, Replay []core.OfferIssued
	// Agreed counts (task, worker) pairs present in both plans.
	Agreed int
}

// Report aggregates one replay pass.
type Report struct {
	// Assigner is the replay assigner's name.
	Assigner string
	// StartSeq is the sequence the replay started from (0 = genesis; a log
	// whose oldest segments were reclaimed starts at its snapshot).
	StartSeq uint64
	// Events is how many recorded events were applied.
	Events int
	// Batches holds one entry per batch event, in log order.
	Batches []BatchPlan
	// LivePairs, ReplayPairs, and AgreedPairs sum the per-batch plans.
	LivePairs, ReplayPairs, AgreedPairs int
	// Torn is the WAL tail corruption ReadLog stopped at, if any; the
	// report covers the longest valid prefix.
	Torn *wal.CorruptionError
	// Duration is the wall-clock cost of the pass (registry clock).
	Duration time.Duration
	// Final is the replayed state after the last event — bit-identical to
	// the live run's state at the same sequence.
	Final *core.State
}

// AgreementRate is AgreedPairs / LivePairs (1 when the live run made no
// offers: an empty plan is trivially agreed with).
func (r *Report) AgreementRate() float64 {
	if r.LivePairs == 0 {
		return 1
	}
	return float64(r.AgreedPairs) / float64(r.LivePairs)
}

// Run reads the event log recorded in dir (preferring full history from
// genesis when the segments allow it) and replays it through opts.Assigner.
func Run(ctx context.Context, dir string, opts Options) (*Report, error) {
	rec, err := wal.ReadLog(dir)
	if err != nil {
		return nil, err
	}
	st := core.NewState()
	if rec.Snapshot != nil {
		if st, err = core.DecodeSnapshot(rec.Snapshot); err != nil {
			return nil, err
		}
	}
	events := make([]core.Event, len(rec.Records))
	for i, b := range rec.Records {
		if events[i], err = core.DecodeEvent(b); err != nil {
			return nil, fmt.Errorf("replay: record %d (seq %d): %w", i, rec.StartSeq+uint64(i), err)
		}
	}
	rep, err := Events(ctx, st, events, opts)
	if err != nil {
		return nil, err
	}
	rep.StartSeq = rec.StartSeq
	rep.Torn = rec.Torn
	return rep, nil
}

// Events replays a decoded event sequence onto st (which it mutates) through
// opts.Assigner. This is Run for callers that already hold the events — a
// recording simulation, or a test comparing plans across assigners.
func Events(ctx context.Context, st *core.State, events []core.Event, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Assigner == nil {
		return nil, fmt.Errorf("replay: no assigner")
	}
	rep := &Report{Assigner: opts.Assigner.Name(), Final: st}
	// One workspace for the whole pass: batches run sequentially, so the
	// spatial index and matcher scratch are rebuilt in place each batch.
	ctx = assign.WithWorkspace(ctx, assign.NewWorkspace())
	// One forecast memo for the whole pass, mirroring the live server's
	// long-lived cache: counterfactual batches replay the same windows the
	// live run saw, so stationary stretches reuse their rollouts.
	fc := predict.NewForecastCache(0)
	fc.Instrument(opts.Registry)
	start := opts.Registry.Now()
	for i, ev := range events {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if live, degraded, isBatch := batchOffers(ev); isBatch {
			plan, err := counterfactual(ctx, st, fc, opts)
			if err != nil {
				return nil, err
			}
			bp := BatchPlan{
				Seq: st.Applied + 1, Tick: st.Tick, Degraded: degraded,
				Live: live, Replay: plan,
				Agreed: agreement(live, plan),
			}
			rep.Batches = append(rep.Batches, bp)
			rep.LivePairs += len(live)
			rep.ReplayPairs += len(plan)
			rep.AgreedPairs += bp.Agreed
		}
		if err := st.Apply(ev); err != nil {
			return nil, fmt.Errorf("replay: event %d: %w", i, err)
		}
		rep.Events++
	}
	rep.Duration = opts.Registry.Now().Sub(start)
	opts.Registry.Gauge("tamp_replay_duration_seconds",
		obs.L("assigner", rep.Assigner)).Set(rep.Duration.Seconds())
	return rep, nil
}

// batchOffers extracts the live plan from a batch event, reporting whether
// ev is one.
func batchOffers(ev core.Event) (live []core.OfferIssued, degraded, isBatch bool) {
	switch e := ev.(type) {
	case core.BatchAssigned:
		return e.Offers, false, true
	case core.DegradedBatch:
		return e.Offers, true, true
	}
	return nil, false, false
}

// counterfactual rebuilds the batch input from the pre-batch state and runs
// the replay assigner on it, allocating offer IDs from the same counter the
// live run would have used.
func counterfactual(ctx context.Context, st *core.State, fc *predict.ForecastCache, opts Options) ([]core.OfferIssued, error) {
	in, err := core.BuildBatch(ctx, st, opts.Models, fc, opts.PredHorizon, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	if len(in.TaskIDs) == 0 {
		return nil, nil
	}
	pairs := assign.Do(ctx, opts.Assigner, in.Tasks, in.Workers, st.Tick)
	if err := ctx.Err(); err != nil {
		// A cancelled matching may be partial; abandon rather than report a
		// truncated plan.
		return nil, err
	}
	plan := make([]core.OfferIssued, len(pairs))
	for k, pr := range pairs {
		plan[k] = core.OfferIssued{
			OfferID:  st.NextOffer + k,
			TaskID:   in.TaskIDs[pr.Task],
			WorkerID: in.Workers[pr.Worker].ID,
		}
	}
	return plan, nil
}

// agreement counts (task, worker) pairs common to both plans.
func agreement(live, replay []core.OfferIssued) int {
	if len(live) == 0 || len(replay) == 0 {
		return 0
	}
	type pair struct{ t, w int }
	set := make(map[pair]bool, len(live))
	for _, o := range live {
		set[pair{o.TaskID, o.WorkerID}] = true
	}
	n := 0
	for _, o := range replay {
		if set[pair{o.TaskID, o.WorkerID}] {
			n++
		}
	}
	return n
}
