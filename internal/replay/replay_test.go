package replay_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/core"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/replay"
	"github.com/spatialcrowd/tamp/internal/server"
	"github.com/spatialcrowd/tamp/internal/wal"
)

// httpJSON posts/gets JSON against the live server, failing on transport
// errors; the status code comes back for protocol assertions.
func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

type offer struct {
	OfferID int `json:"offerId"`
	TaskID  int `json:"taskId"`
}

// recordLiveRun drives a WAL-backed server through several batches of the
// four-party protocol and returns the log directory and the server's final
// state digest.
func recordLiveRun(t *testing.T, liveAssigner assign.Assigner) (dir, digest string) {
	t.Helper()
	dir = t.TempDir()
	s, err := server.New(server.Config{
		Grid:     geo.Grid{Cols: 100, Rows: 50},
		Assigner: liveAssigner,
		WALDir:   dir, SnapshotEvery: 1 << 20, // keep full history in segments
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	u := ts.URL

	for id := 1; id <= 3; id++ {
		httpJSON(t, "POST", u+"/api/workers", map[string]any{
			"id": id, "detourKm": 8, "speed": 1, "mr": 0.8,
		}, nil)
	}
	// Straight eastward walks from separated starting columns.
	starts := []float64{10, 40, 70}
	for step := 0; step < 5; step++ {
		for id := 1; id <= 3; id++ {
			httpJSON(t, "POST", fmt.Sprintf("%s/api/workers/%d/location", u, id),
				map[string]any{"x": starts[id-1] + float64(step), "y": 10.0}, nil)
		}
	}
	// Three rounds: tasks near each worker's projected route, a batch, and
	// alternating accept/reject decisions.
	for round := 0; round < 3; round++ {
		for id := 1; id <= 3; id++ {
			httpJSON(t, "POST", u+"/api/tasks", map[string]any{
				"x": starts[id-1] + 7 + float64(round), "y": 10.0, "deadline": 30,
			}, nil)
		}
		httpJSON(t, "POST", u+"/api/batch", nil, nil)
		for id := 1; id <= 3; id++ {
			var offers []offer
			httpJSON(t, "GET", fmt.Sprintf("%s/api/workers/%d/offers", u, id), nil, &offers)
			for _, off := range offers {
				action := "accept"
				if (id+round)%2 == 0 {
					action = "reject"
				}
				if code := httpJSON(t, "POST", fmt.Sprintf("%s/api/offers/%d/%s", u, off.OfferID, action), nil, nil); code != http.StatusOK {
					t.Fatalf("%s offer %d: status %d", action, off.OfferID, code)
				}
			}
		}
		httpJSON(t, "POST", u+"/api/tick", nil, nil)
	}
	digest = s.StateDigest()
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, digest
}

// TestReplayIsDeterministicAcrossAssigners is the acceptance check for the
// replay bridge: a recorded live run replays through two different assigners,
// and repeating each replay produces identical plans. Replaying with the
// same assigner the live run used reproduces the live plans exactly, and the
// replayed state always lands on the live run's digest regardless of which
// assigner produced the counterfactuals.
func TestReplayIsDeterministicAcrossAssigners(t *testing.T) {
	live := assign.PPI{A: 1.5}
	dir, digest := recordLiveRun(t, live)

	run := func(a assign.Assigner) *replay.Report {
		rep, err := replay.Run(context.Background(), dir, replay.Options{Assigner: a})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ppi1, ppi2 := run(live), run(live)
	km1, km2 := run(assign.KM{}), run(assign.KM{})

	for _, rep := range []*replay.Report{ppi1, ppi2, km1, km2} {
		if rep.Torn != nil {
			t.Fatalf("%s: unexpected torn tail: %v", rep.Assigner, rep.Torn)
		}
		if len(rep.Batches) != 3 {
			t.Fatalf("%s: batches = %d, want 3", rep.Assigner, len(rep.Batches))
		}
		if rep.Final.Digest() != digest {
			t.Errorf("%s: replayed state differs from the live run", rep.Assigner)
		}
	}
	if ppi1.LivePairs == 0 {
		t.Fatal("live run made no offers; scenario is degenerate")
	}
	// Identical plans across repeated replays, for both assigners.
	if !reflect.DeepEqual(ppi1.Batches, ppi2.Batches) {
		t.Error("PPI replays produced different plans")
	}
	if !reflect.DeepEqual(km1.Batches, km2.Batches) {
		t.Error("KM replays produced different plans")
	}
	// Replaying with the live assigner is a full reconstruction: the
	// counterfactual plan at every batch equals the plan the live run
	// committed, offer IDs included.
	for i, bp := range ppi1.Batches {
		if !reflect.DeepEqual(bp.Live, bp.Replay) {
			t.Errorf("batch %d: live plan %+v, PPI replay %+v", i, bp.Live, bp.Replay)
		}
	}
	if ppi1.AgreementRate() != 1 {
		t.Errorf("PPI agreement = %v, want 1", ppi1.AgreementRate())
	}
	// KM sees the same inputs: it proposes the same number of pairs even
	// when it picks different ones.
	if km1.ReplayPairs == 0 {
		t.Error("KM replay proposed no pairs")
	}
}

// smallLog writes a short hand-built event log and returns its events.
func smallLog(t *testing.T, dir string) []core.Event {
	t.Helper()
	events := []core.Event{
		core.WorkerRegistered{WorkerID: 1, Detour: 25, Speed: 1, MR: 0.8},
		core.WorkerReported{WorkerID: 1, X: 10, Y: 10},
		core.TaskSubmitted{TaskID: 1, X: 12, Y: 10, Deadline: 20},
		core.BatchAssigned{Offers: []core.OfferIssued{{OfferID: 1, TaskID: 1, WorkerID: 1}}},
		core.OfferAccepted{OfferID: 1},
		core.TickAdvanced{},
	}
	log, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		b, err := core.EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestReplayTornTailCoversValidPrefix appends garbage to the recorded
// segment: replay must still succeed over the valid prefix and surface the
// corruption in the report instead of failing.
func TestReplayTornTailCoversValidPrefix(t *testing.T) {
	dir := t.TempDir()
	events := smallLog(t, dir)
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rep, err := replay.Run(context.Background(), dir, replay.Options{Assigner: assign.KM{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn == nil {
		t.Error("torn tail not reported")
	}
	if rep.Events != len(events) {
		t.Errorf("replayed %d events, want %d", rep.Events, len(events))
	}
	want := core.NewState()
	for _, ev := range events {
		if err := want.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if rep.Final.Digest() != want.Digest() {
		t.Error("replayed prefix state differs from direct application")
	}
}

// TestReplayDurationGauge pins the replay-duration metric: with a stepped
// injected clock the exporter output is exact.
func TestReplayDurationGauge(t *testing.T) {
	dir := t.TempDir()
	smallLog(t, dir)

	reg := obs.NewRegistry()
	base := time.Unix(1700000000, 0)
	calls := 0
	reg.SetClock(func() time.Time {
		now := base.Add(time.Duration(calls) * 250 * time.Millisecond)
		calls++
		return now
	})
	rep, err := replay.Run(context.Background(), dir, replay.Options{Assigner: assign.KM{}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration != 250*time.Millisecond {
		t.Errorf("duration = %v, want 250ms", rep.Duration)
	}
	dump := reg.Dump()
	for _, want := range []string{
		"# TYPE tamp_replay_duration_seconds gauge",
		`tamp_replay_duration_seconds{assigner="KM"} 0.25`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}
