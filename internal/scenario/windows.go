package scenario

import (
	"math"
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/traj"
)

// AvailabilityWindows is the dynamic-availability workload family: every
// worker is on shift only during per-worker windows, and tasks arrive from a
// time-varying demand process whose diurnal component is known in closed
// form (ExpectedRate) — the forecastable signal a demand-aware platform
// could pre-position workers against.
//
// The base city (workers, routines, POIs, hotspots, historical tasks) is
// exactly the paper workload for the same params, so prediction training is
// unchanged; only availability and task arrival timing differ.
type AvailabilityWindows struct {
	// ShiftsPerDay is how many availability windows each worker gets per
	// test day. If ShiftsPerDay·ShiftTicks == 0 the shift plan is empty:
	// every worker receives one zero-width window and is never available —
	// the degenerate all-off fleet.
	ShiftsPerDay int
	// ShiftTicks is the length of each window in ticks.
	ShiftTicks int
	// DemandAmp is the diurnal amplitude a in λ(t) = base·(1 + a·shape(t)),
	// clamped to [0, 1]; 0 flattens demand to the paper's uniform rate.
	DemandAmp float64
	// DemandPeaks is the number of demand peaks per day (rush hours).
	DemandPeaks int
}

// DefaultWindows is the benchmark-matrix shape: two shifts a day covering
// roughly half of each worker's day, and a two-peak (morning/evening rush)
// demand curve at 0.8 amplitude.
func DefaultWindows() AvailabilityWindows {
	return AvailabilityWindows{ShiftsPerDay: 2, ShiftTicks: -1, DemandAmp: 0.8, DemandPeaks: 2}
}

// Name implements Generator.
func (AvailabilityWindows) Name() string { return "windows" }

// shiftTicks resolves the window length: -1 means a quarter of the day
// (two default shifts then cover ~half of it).
func (g AvailabilityWindows) shiftTicks(ticksPerDay int) int {
	if g.ShiftTicks < 0 {
		return ticksPerDay / 4
	}
	return g.ShiftTicks
}

// shape is the zero-mean diurnal profile: DemandPeaks sinusoidal rushes per
// day, starting from a trough at midnight.
func (g AvailabilityWindows) shape(tickInDay, ticksPerDay int) float64 {
	peaks := g.DemandPeaks
	if peaks <= 0 {
		peaks = 1
	}
	frac := float64(tickInDay) / float64(ticksPerDay)
	return math.Sin(2*math.Pi*float64(peaks)*frac - math.Pi/2)
}

// ExpectedRate is the closed-form arrival intensity λ(tick) of the demand
// process, in tasks per tick — the forecastable diurnal component. The
// realized workload draws Poisson(λ(tick)) arrivals each tick, so summed
// over the horizon ExpectedRate integrates to ≈ p.NumTestTasks. p should be
// the generated workload's (normalized) Params.
func (g AvailabilityWindows) ExpectedRate(p dataset.Params, tick int) float64 {
	horizon := p.TestDays * p.TicksPerDay
	if horizon <= 0 || p.NumTestTasks <= 0 {
		return 0
	}
	amp := math.Min(math.Max(g.DemandAmp, 0), 1)
	base := float64(p.NumTestTasks) / float64(horizon)
	rate := base * (1 + amp*g.shape(tick%p.TicksPerDay, p.TicksPerDay))
	if rate < 0 {
		return 0
	}
	return rate
}

// Generate implements Generator: the paper workload with per-worker shift
// windows attached and TestTasks regenerated from the diurnal demand
// process. Both layers draw from their own salted streams, so the base city
// is bit-identical to Paper's for the same params.
func (g AvailabilityWindows) Generate(p dataset.Params) *dataset.Workload {
	w := dataset.Generate(p)
	p = w.Params // normalized (grid, ticks-per-day, valid-range defaults applied)
	horizon := p.TestDays * p.TicksPerDay

	// Shift windows. Workers are visited in slice order on a dedicated
	// stream; each draws the same number of variates, so one worker's plan
	// never shifts another's.
	shift := g.shiftTicks(p.TicksPerDay)
	wrng := rand.New(rand.NewSource(p.Seed + windowsSalt))
	for i := range w.Workers {
		wk := &w.Workers[i]
		if g.ShiftsPerDay <= 0 || shift <= 0 {
			// Degenerate empty shift plan: explicitly never available
			// (an absent Windows list would mean always-on).
			wk.Windows = []dataset.Window{{}}
			continue
		}
		for d := 0; d < p.TestDays; d++ {
			for s := 0; s < g.ShiftsPerDay; s++ {
				span := p.TicksPerDay - shift
				if span < 1 {
					span = 1
				}
				start := d*p.TicksPerDay + wrng.Intn(span)
				end := start + shift
				if end > horizon {
					end = horizon
				}
				wk.Windows = append(wk.Windows, dataset.Window{Start: start, End: end})
			}
		}
		sortWindows(wk.Windows)
	}

	// Demand-driven arrivals: Poisson(λ(t)) fresh tasks per tick, located
	// with the paper's hotspot mix, with the paper's validity spans.
	trng := rand.New(rand.NewSource(p.Seed + demandSalt))
	bounds := p.Grid.Bounds()
	w.TestTasks = w.TestTasks[:0]
	id := 0
	for tick := 0; tick < horizon; tick++ {
		n := poisson(trng, g.ExpectedRate(p, tick))
		for k := 0; k < n; k++ {
			validTicks := (p.ValidMin + trng.Intn(p.ValidMax-p.ValidMin+1)) * traj.TicksPerTimeUnit
			w.TestTasks = append(w.TestTasks, assign.Task{
				ID:       id,
				Loc:      taskLoc(w.Hotspots, bounds, trng),
				Arrival:  tick,
				Deadline: tick + validTicks,
			})
			id++
		}
	}
	return w
}

// poisson draws Poisson(lambda) by Knuth's product method — exact, and
// cheap at the per-tick rates the demand process produces.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// sortWindows orders a shift plan by start tick (insertion sort; plans are
// a handful of windows).
func sortWindows(ws []dataset.Window) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Start < ws[j-1].Start; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
