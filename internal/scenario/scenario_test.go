package scenario

import (
	"math"
	"reflect"
	"testing"

	"github.com/spatialcrowd/tamp/internal/dataset"
)

func testParams() dataset.Params {
	p := dataset.Defaults(dataset.Workload1)
	p.Seed = 7
	p.NumWorkers = 6
	p.NewWorkers = 0
	p.TrainDays = 2
	p.TestDays = 1
	p.TicksPerDay = 48
	p.NumTestTasks = 80
	return p
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range Suite() {
		if g.Name() == "" {
			t.Fatalf("%T has empty name", g)
		}
		if seen[g.Name()] {
			t.Fatalf("duplicate generator name %q", g.Name())
		}
		seen[g.Name()] = true
	}
}

// Every generator must be a pure function of its params: the same seed
// yields a bit-identical workload, which is what makes the committed
// benchmark matrix a regression contract rather than a snapshot.
func TestGeneratorsSeedStable(t *testing.T) {
	for _, g := range Suite() {
		a := g.Generate(testParams())
		b := g.Generate(testParams())
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same params produced different workloads", g.Name())
		}
	}
}

func TestGeneratorsVaryWithSeed(t *testing.T) {
	for _, g := range Suite() {
		p := testParams()
		a := g.Generate(p)
		p.Seed++
		b := g.Generate(p)
		if reflect.DeepEqual(a.TestTasks, b.TestTasks) {
			t.Errorf("%s: different seeds produced identical test tasks", g.Name())
		}
	}
}

// The demand-aware families layer onto the paper workload without touching
// it: same seed ⇒ same city (workers, POIs, hotspots, historical tasks), so
// prediction training sees identical inputs under every generator.
func TestGeneratorsShareBaseCity(t *testing.T) {
	base := Paper{}.Generate(testParams())
	for _, g := range Suite()[1:] {
		w := g.Generate(testParams())
		if len(w.Workers) != len(base.Workers) {
			t.Fatalf("%s: %d workers, paper has %d", g.Name(), len(w.Workers), len(base.Workers))
		}
		for i := range w.Workers {
			got, want := w.Workers[i], base.Workers[i]
			got.Windows = nil
			want.Windows = nil
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: worker %d diverged from the paper workload", g.Name(), i)
			}
		}
		if !reflect.DeepEqual(w.POIs, base.POIs) || !reflect.DeepEqual(w.Hotspots, base.Hotspots) ||
			!reflect.DeepEqual(w.HistTasks, base.HistTasks) {
			t.Errorf("%s: POIs/hotspots/historical tasks diverged from the paper workload", g.Name())
		}
	}
}

// AvailableAt semantics: windows are half-open [Start, End) absolute test
// ticks; no windows means always available; a zero-width window never is.
func TestWorkerAvailableAt(t *testing.T) {
	always := dataset.Worker{}
	for _, tick := range []int{0, 1, 100} {
		if !always.AvailableAt(tick) {
			t.Fatalf("empty window list should be always-available (tick %d)", tick)
		}
	}
	shifted := dataset.Worker{Windows: []dataset.Window{{Start: 2, End: 5}}}
	for tick, want := range map[int]bool{1: false, 2: true, 4: true, 5: false} {
		if shifted.AvailableAt(tick) != want {
			t.Errorf("AvailableAt(%d) = %v, want %v", tick, !want, want)
		}
	}
	never := dataset.Worker{Windows: []dataset.Window{{}}}
	if never.AvailableAt(0) {
		t.Error("zero-width window should never be available")
	}
}

func TestWindowsShiftPlans(t *testing.T) {
	g := DefaultWindows()
	w := g.Generate(testParams())
	p := w.Params
	horizon := p.TestDays * p.TicksPerDay
	shift := g.shiftTicks(p.TicksPerDay)
	for i := range w.Workers {
		wk := &w.Workers[i]
		if want := g.ShiftsPerDay * p.TestDays; len(wk.Windows) != want {
			t.Fatalf("worker %d: %d windows, want %d", i, len(wk.Windows), want)
		}
		on := 0
		for tick := 0; tick < horizon; tick++ {
			if wk.AvailableAt(tick) {
				on++
			}
		}
		if on == 0 || on == horizon {
			t.Errorf("worker %d: on %d/%d ticks, want a genuine on/off split", i, on, horizon)
		}
		for j, win := range wk.Windows {
			if j > 0 && win.Start < wk.Windows[j-1].Start {
				t.Errorf("worker %d: windows unsorted", i)
			}
			if win.Start < 0 || win.End > horizon || win.End-win.Start > shift {
				t.Errorf("worker %d: window %+v out of bounds (horizon %d, shift %d)", i, win, horizon, shift)
			}
		}
	}
}

// The degenerate empty shift plan (no shifts, or zero-length shifts) must
// mean never-available — not the absent-list always-available default.
func TestWindowsDegenerateShiftPlan(t *testing.T) {
	for _, g := range []AvailabilityWindows{
		{ShiftsPerDay: 0, ShiftTicks: 10, DemandPeaks: 2},
		{ShiftsPerDay: 2, ShiftTicks: 0, DemandPeaks: 2},
	} {
		w := g.Generate(testParams())
		horizon := w.Params.TestDays * w.Params.TicksPerDay
		for i := range w.Workers {
			for tick := 0; tick < horizon; tick++ {
				if w.Workers[i].AvailableAt(tick) {
					t.Fatalf("%+v: worker %d available at tick %d, want never", g, i, tick)
				}
			}
		}
	}
}

// The diurnal intensity must integrate back to the configured task count:
// the sinusoid is zero-mean over each whole day, so summing λ(t) across the
// horizon recovers NumTestTasks exactly (up to float error).
func TestExpectedRateIntegratesToTaskCount(t *testing.T) {
	g := DefaultWindows()
	w := g.Generate(testParams())
	p := w.Params
	horizon := p.TestDays * p.TicksPerDay
	sum := 0.0
	for tick := 0; tick < horizon; tick++ {
		sum += g.ExpectedRate(p, tick)
	}
	if want := float64(p.NumTestTasks); math.Abs(sum-want) > 1e-6*want {
		t.Errorf("Σλ(t) = %v, want %v", sum, want)
	}
	if g.ExpectedRate(dataset.Params{}, 0) != 0 {
		t.Error("zero-horizon params should have zero rate")
	}
}

func TestWindowsArrivalsWellFormed(t *testing.T) {
	w := DefaultWindows().Generate(testParams())
	p := w.Params
	horizon := p.TestDays * p.TicksPerDay
	n := len(w.TestTasks)
	if n < p.NumTestTasks/2 || n > 2*p.NumTestTasks {
		t.Fatalf("realized %d arrivals, expected ≈%d", n, p.NumTestTasks)
	}
	for i, task := range w.TestTasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d, want sequential IDs", i, task.ID)
		}
		if task.Arrival < 0 || task.Arrival >= horizon {
			t.Errorf("task %d arrives at %d, outside [0, %d)", i, task.Arrival, horizon)
		}
		if task.Deadline <= task.Arrival {
			t.Errorf("task %d: deadline %d not after arrival %d", i, task.Deadline, task.Arrival)
		}
		if i > 0 && task.Arrival < w.TestTasks[i-1].Arrival {
			t.Errorf("task %d arrives before its predecessor", i)
		}
	}
}

func TestBudgetRewardsShape(t *testing.T) {
	g := DefaultBudget()
	w := g.Generate(testParams())
	if !w.Budget.Enabled || w.Budget.PerTickKM != g.PerTickKM {
		t.Fatalf("budget spec = %+v, want enabled at %v km/tick", w.Budget, g.PerTickKM)
	}
	for i, task := range w.TestTasks {
		if task.Reward < g.RewardMin || task.Reward > g.RewardMax {
			t.Fatalf("task %d reward %v outside [%v, %v]", i, task.Reward, g.RewardMin, g.RewardMax)
		}
	}
	// RewardMax below RewardMin collapses to constant rewards, not a panic.
	flat := BudgetRewards{RewardMin: 3, RewardMax: 1, PerTickKM: 5}.Generate(testParams())
	for i, task := range flat.TestTasks {
		if task.Reward != 3 {
			t.Fatalf("task %d reward %v, want constant 3", i, task.Reward)
		}
	}
	// The paper workload stays unrewarded and unbudgeted.
	paper := Paper{}.Generate(testParams())
	if paper.Budget.Enabled {
		t.Error("paper workload should not enable the budget")
	}
	for i, task := range paper.TestTasks {
		if task.Reward != 0 {
			t.Fatalf("paper task %d has reward %v, want 0", i, task.Reward)
		}
	}
}

// A fleetless city is a valid (if useless) workload for every generator —
// degenerate inputs must not panic the demand layers.
func TestGeneratorsZeroWorkers(t *testing.T) {
	p := testParams()
	p.NumWorkers = 0
	p.NewWorkers = 0
	for _, g := range Suite() {
		w := g.Generate(p)
		if len(w.Workers) != 0 {
			t.Errorf("%s: %d workers from a zero-worker spec", g.Name(), len(w.Workers))
		}
		if len(w.TestTasks) == 0 {
			t.Errorf("%s: demand should arrive even with no fleet", g.Name())
		}
	}
}
