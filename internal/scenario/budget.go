package scenario

import (
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/dataset"
)

// BudgetRewards is the budget-constrained workload family: the paper
// workload with a per-task reward posted on every task and a per-tick
// platform spend cap. Assigners see the rewards through
// Task.EffectiveReward — every edge weight becomes reward-per-cost — and
// the platform's budget gate issues offers in descending
// reward-per-predicted-detour order until the tick's allowance is spent
// (assignments past the cap stay pending for later batches).
type BudgetRewards struct {
	// RewardMin/RewardMax bound the per-task reward, drawn uniformly.
	// RewardMax below RewardMin collapses to RewardMin (constant rewards).
	RewardMin, RewardMax float64
	// PerTickKM is the platform's per-tick spend allowance in km of
	// predicted detour. Zero is the degenerate no-budget platform: the gate
	// is enabled but can never pay, so no offer is ever issued.
	PerTickKM float64
}

// DefaultBudget is the benchmark-matrix shape: rewards in [1, 5] and a
// 12 km/tick allowance — tight enough that the gate holds offers back every
// rush, loose enough that the platform still serves most of the demand.
func DefaultBudget() BudgetRewards {
	return BudgetRewards{RewardMin: 1, RewardMax: 5, PerTickKM: 12}
}

// Name implements Generator.
func (BudgetRewards) Name() string { return "budget" }

// Generate implements Generator: the paper workload with per-task rewards
// on a salted stream and the budget spec enabled. The base city is
// bit-identical to Paper's for the same params.
func (g BudgetRewards) Generate(p dataset.Params) *dataset.Workload {
	w := dataset.Generate(p)
	lo, hi := g.RewardMin, g.RewardMax
	if hi < lo {
		hi = lo
	}
	rng := rand.New(rand.NewSource(w.Params.Seed + rewardSalt))
	for i := range w.TestTasks {
		w.TestTasks[i].Reward = lo + (hi-lo)*rng.Float64()
	}
	w.Budget = dataset.BudgetSpec{Enabled: true, PerTickKM: g.PerTickKM}
	return w
}
