// Package scenario opens demand-shaped workload families beyond the paper's
// single synthetic setting, behind one seeded Generator interface:
//
//   - Paper: the original Table-III workload (internal/dataset) unchanged —
//     always-on workers, Poisson-ish uniform-in-time task arrivals, no
//     rewards, no budget.
//   - AvailabilityWindows: workers arrive and leave on per-worker shift
//     windows, and tasks arrive from a time-varying demand process with a
//     forecastable diurnal component (in the spirit of DATA-WA's dynamic
//     worker availability and demand-based task-arrival forecasting,
//     arXiv:2503.21458).
//   - BudgetRewards: every task posts a reward and the platform enforces a
//     per-tick spend budget; assigners score edges reward-per-cost and the
//     platform issues offers in descending reward-per-predicted-detour order
//     until the tick's allowance runs out (budget-aware online assignment,
//     arXiv:1807.09920).
//
// Every generator is a pure function of dataset.Params — the same params and
// seed produce a bit-identical workload — and the produced workloads flow
// through the unchanged platform.Run/tamp.Simulate pipeline, so faults,
// recording, and observability compose with all of them. The cross-product
// of Suite() × the assigner zoo is the committed benchmark matrix
// (BENCH_matrix.json / MATRIX.md, internal/experiments.RunMatrix).
package scenario

import (
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/geo"
)

// Generator produces a seeded, deterministic experimental workload. Name is
// the stable identifier used by the benchmark matrix; Generate must return
// bit-identical workloads for identical params.
type Generator interface {
	Name() string
	Generate(p dataset.Params) *dataset.Workload
}

// Seed salts: each generator layer draws from its own stream so adding a
// layer never perturbs another's randomness.
const (
	windowsSalt = int64(0x5c3a9d01)
	demandSalt  = int64(0x2f6b44c3)
	rewardSalt  = int64(0x71e0b8a5)
)

// Paper is the unchanged Table-III workload of the source paper.
type Paper struct{}

// Name implements Generator.
func (Paper) Name() string { return "paper" }

// Generate implements Generator.
func (Paper) Generate(p dataset.Params) *dataset.Workload { return dataset.Generate(p) }

// Suite is the benchmark-matrix generator set: the paper workload plus the
// two demand-aware families at their default shapes.
func Suite() []Generator {
	return []Generator{Paper{}, DefaultWindows(), DefaultBudget()}
}

// taskLoc draws a task location around a random hotspot (80%) or uniformly
// (20%) — the same spatial mix dataset.Generate uses for the paper workload,
// so the demand-aware families differ in *when* tasks arrive, not where.
func taskLoc(hotspots []geo.Point, bounds geo.BBox, rng *rand.Rand) geo.Point {
	if len(hotspots) > 0 && rng.Float64() < 0.8 {
		h := hotspots[rng.Intn(len(hotspots))]
		return bounds.Clamp(h.Add(geo.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3)))
	}
	return geo.Pt(bounds.Min.X+rng.Float64()*bounds.Width(), bounds.Min.Y+rng.Float64()*bounds.Height())
}
