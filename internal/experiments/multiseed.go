package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp/internal/par"
	"github.com/spatialcrowd/tamp/internal/stats"
)

// PredAggRow is one prediction-experiment configuration aggregated over
// several seeds: mean and standard deviation per metric.
type PredAggRow struct {
	Label         string
	SeqIn, SeqOut int
	RMSE, RMSEStd float64
	MAE, MAEStd   float64
	MR, MRStd     float64
	TTSec         float64
}

// AggregatePred combines per-seed prediction rows (each run must produce
// the same configurations in the same order) into mean ± std rows.
// It panics if the runs disagree on configuration order.
func AggregatePred(runs [][]PredRow) []PredAggRow {
	if len(runs) == 0 {
		return nil
	}
	n := len(runs[0])
	out := make([]PredAggRow, n)
	for i := 0; i < n; i++ {
		base := runs[0][i]
		var rmse, mae, mr, tt stats.Accumulator
		for _, run := range runs {
			r := run[i]
			if r.Label != base.Label || r.SeqIn != base.SeqIn || r.SeqOut != base.SeqOut {
				panic("experiments: seed runs disagree on configuration order")
			}
			rmse.Add(r.RMSE)
			mae.Add(r.MAE)
			mr.Add(r.MR)
			tt.Add(r.TTSec)
		}
		out[i] = PredAggRow{
			Label: base.Label, SeqIn: base.SeqIn, SeqOut: base.SeqOut,
			RMSE: rmse.Mean(), RMSEStd: rmse.Std(),
			MAE: mae.Mean(), MAEStd: mae.Std(),
			MR: mr.Mean(), MRStd: mr.Std(),
			TTSec: tt.Mean(),
		}
	}
	return out
}

// AssignAggRow is one (sweep point, algorithm) aggregated over seeds.
type AssignAggRow struct {
	Sweep                     string
	X                         float64
	Algo                      string
	Completion, CompletionStd float64
	Rejection, RejectionStd   float64
	CostKM, CostStd           float64
	TimeSec                   float64
}

// AggregateAssign combines per-seed assignment rows into mean ± std rows.
// It panics if the runs disagree on row order.
func AggregateAssign(runs [][]AssignRow) []AssignAggRow {
	if len(runs) == 0 {
		return nil
	}
	n := len(runs[0])
	out := make([]AssignAggRow, n)
	for i := 0; i < n; i++ {
		base := runs[0][i]
		var comp, rej, cost, tt stats.Accumulator
		for _, run := range runs {
			r := run[i]
			if r.Algo != base.Algo || r.X != base.X {
				panic("experiments: seed runs disagree on row order")
			}
			comp.Add(r.Completion)
			rej.Add(r.Rejection)
			cost.Add(r.CostKM)
			tt.Add(r.TimeSec)
		}
		out[i] = AssignAggRow{
			Sweep: base.Sweep, X: base.X, Algo: base.Algo,
			Completion: comp.Mean(), CompletionStd: comp.Std(),
			Rejection: rej.Mean(), RejectionStd: rej.Std(),
			CostKM: cost.Mean(), CostStd: cost.Std(),
			TimeSec: tt.Mean(),
		}
	}
	return out
}

// RunSeeds executes the experiment once per seed (replacing the scale's
// seed) and writes mean ± std rows. Single-seed calls fall back to the
// plain rendering.
//
// Seed runs are independent end to end (each generates its own workload),
// so they fan out on a pool of sc.Parallelism goroutines via par.Map; the
// per-seed row slices come back in seed order, keeping the aggregation —
// and its floating-point reduction — identical at every parallelism level.
func (e Experiment) RunSeeds(ctx context.Context, sc Scale, seeds []int64, w io.Writer) error {
	if len(seeds) <= 1 {
		if len(seeds) == 1 {
			sc.Seed = seeds[0]
		}
		return e.Run(ctx, sc, w)
	}
	switch {
	case e.predRows != nil:
		runs, err := par.Map(ctx, len(seeds), sc.Parallelism, func(i int) ([]PredRow, error) {
			scs := sc
			scs.Seed = seeds[i]
			return e.predRows(ctx, scs)
		})
		if err != nil {
			return err
		}
		writePredAgg(w, fmt.Sprintf("%s (mean ± std over %d seeds)", e.Title, len(seeds)), AggregatePred(runs))
	case e.assignRows != nil:
		runs, err := par.Map(ctx, len(seeds), sc.Parallelism, func(i int) ([]AssignRow, error) {
			scs := sc
			scs.Seed = seeds[i]
			return e.assignRows(ctx, scs)
		})
		if err != nil {
			return err
		}
		writeAssignAgg(w, fmt.Sprintf("%s (mean ± std over %d seeds)", e.Title, len(seeds)), AggregateAssign(runs))
	}
	return nil
}

func writePredAgg(w io.Writer, title string, rows []PredAggRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tseq_in\tseq_out\tRMSE\tMAE\tMR\tTT(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f±%.4f\t%.4f±%.4f\t%.4f±%.4f\t%.1f\n",
			r.Label, r.SeqIn, r.SeqOut, r.RMSE, r.RMSEStd, r.MAE, r.MAEStd, r.MR, r.MRStd, r.TTSec)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func writeAssignAgg(w io.Writer, title string, rows []AssignAggRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "x\talgo\tcompletion\trejection\tcost(km)\ttime(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%s\t%.3f±%.3f\t%.3f±%.3f\t%.3f±%.3f\t%.3f\n",
			r.X, r.Algo, r.Completion, r.CompletionStd, r.Rejection, r.RejectionStd,
			r.CostKM, r.CostStd, r.TimeSec)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
