package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// WritePredCSV renders prediction rows as CSV with one row per
// (configuration) measurement.
func WritePredCSV(w io.Writer, rows []PredRow) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"config", "seq_in", "seq_out", "rmse", "mae", "mr", "tt_sec"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Label,
			strconv.Itoa(r.SeqIn),
			strconv.Itoa(r.SeqOut),
			fmtF(r.RMSE), fmtF(r.MAE), fmtF(r.MR), fmtF(r.TTSec),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteAssignCSV renders assignment rows as CSV with one row per
// (sweep value, algorithm) measurement.
func WriteAssignCSV(w io.Writer, rows []AssignRow) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"sweep", "x", "algo", "completion", "rejection", "cost_km", "time_sec"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Sweep,
			fmtF(r.X),
			r.Algo,
			fmtF(r.Completion), fmtF(r.Rejection), fmtF(r.CostKM), fmtF(r.TimeSec),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
