package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/meta"
	"github.com/spatialcrowd/tamp/internal/platform"
	"github.com/spatialcrowd/tamp/internal/predict"
)

// AblationRow is one design-choice variant measured at the default
// experimental setting.
type AblationRow struct {
	Group      string // which design choice the variant probes
	Variant    string
	Completion float64
	Rejection  float64
	CostKM     float64
	MR         float64 // prediction MR where the variant retrains; else 0
}

// RunDesignAblations measures the design choices DESIGN.md §5 calls out,
// all at the Table III default point: the task-assignment-oriented loss vs
// MSE, PPI's staged matching vs one global KM, the matching radius a, the
// stage-2 batch size ε, and game-theoretic clustering vs k-means.
func RunDesignAblations(ctx context.Context, kind dataset.Kind, sc Scale) ([]AblationRow, error) {
	w := dataset.Generate(sc.params(kind))
	weighted, err := predict.Train(ctx, w, predict.Options{
		WeightedLoss: true, Hidden: sc.Hidden, MetaIters: sc.MetaIters, Seed: sc.Seed,
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	mse, err := predict.Train(ctx, w, predict.Options{
		WeightedLoss: false, Hidden: sc.Hidden, MetaIters: sc.MetaIters, Seed: sc.Seed,
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	simulate := func(models map[int]*predict.WorkerModel, a assign.Assigner) (platform.Metrics, error) {
		run := platform.Run{Workload: w, Models: models, Assigner: a, Parallelism: sc.Parallelism}
		return run.Simulate(ctx)
	}
	row := func(group, variant string, m platform.Metrics, mr float64) AblationRow {
		return AblationRow{
			Group: group, Variant: variant,
			Completion: m.CompletionRate(), Rejection: m.RejectionRate(),
			CostKM: m.AvgCostKM(), MR: mr,
		}
	}

	var rows []AblationRow
	ppi := assign.PPI{A: predict.DefaultMatchRadius, Parallelism: sc.Parallelism}
	add := func(group, variant string, models map[int]*predict.WorkerModel, a assign.Assigner, mr float64) error {
		m, err := simulate(models, a)
		if err != nil {
			return err
		}
		rows = append(rows, row(group, variant, m, mr))
		return nil
	}

	// Loss function (PPI vs PPI-loss).
	if err := add("loss", "task-oriented (Eq. 6-7)", weighted.Models, ppi, weighted.Eval.MR); err != nil {
		return nil, err
	}
	if err := add("loss", "plain MSE", mse.Models, ppi, mse.Eval.MR); err != nil {
		return nil, err
	}
	// Staged confidence matching vs one global KM.
	if err := add("staging", "staged PPI", weighted.Models, ppi, 0); err != nil {
		return nil, err
	}
	if err := add("staging", "single global KM", weighted.Models, assign.KM{Parallelism: sc.Parallelism}, 0); err != nil {
		return nil, err
	}
	// Matching radius a.
	for _, a := range []float64{0.5, 1.5, 3.0} {
		if err := add("radius", fmt.Sprintf("a=%.1f cells", a), weighted.Models,
			assign.PPI{A: a, Parallelism: sc.Parallelism}, 0); err != nil {
			return nil, err
		}
	}
	// Stage-2 batch size ε.
	for _, eps := range []int{1, 8, 64} {
		if err := add("epsilon", fmt.Sprintf("eps=%d", eps), weighted.Models,
			assign.PPI{A: predict.DefaultMatchRadius, Epsilon: eps, Parallelism: sc.Parallelism}, 0); err != nil {
			return nil, err
		}
	}
	// Game-theoretic clustering vs plain multi-level k-means (MR only; the
	// weighted run above is GTTAML already).
	gt, err := predict.Train(ctx, w, predict.Options{
		Algorithm: meta.AlgGTTAMLGT, WeightedLoss: true,
		Hidden: sc.Hidden, MetaIters: sc.MetaIters, Seed: sc.Seed,
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows,
		AblationRow{Group: "clustering", Variant: "GTMC (game)", MR: weighted.Eval.MR},
		AblationRow{Group: "clustering", Variant: "k-means", MR: gt.Eval.MR},
	)
	return rows, nil
}

// WriteAblationTable renders ablation rows grouped by design choice.
func WriteAblationTable(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design choice\tvariant\tcompletion\trejection\tcost(km)\tMR")
	for _, r := range rows {
		comp, rej, cost, mr := "-", "-", "-", "-"
		if r.Completion > 0 || r.Rejection > 0 || r.CostKM > 0 {
			comp = fmt.Sprintf("%.3f", r.Completion)
			rej = fmt.Sprintf("%.3f", r.Rejection)
			cost = fmt.Sprintf("%.3f", r.CostKM)
		}
		if r.MR > 0 {
			mr = fmt.Sprintf("%.3f", r.MR)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", r.Group, r.Variant, comp, rej, cost, mr)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
