package experiments

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"github.com/spatialcrowd/tamp/internal/dataset"
)

func microScale() Scale {
	return Scale{
		Name:        "micro",
		NumWorkers:  8,
		NewWorkers:  1,
		TrainDays:   2,
		TestDays:    1,
		TicksPerDay: 40,
		TaskUnit:    40,
		Hidden:      6,
		MetaIters:   3,
		Population:  10,
		Generations: 8,
		Seed:        1,
	}
}

func TestRunClusterAblationRows(t *testing.T) {
	rows, err := RunClusterAblation(context.Background(), dataset.Workload1, microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (2 algorithms × 5 factor sets)", len(rows))
	}
	gtmc, kmeans := 0, 0
	for _, r := range rows {
		if r.RMSE <= 0 || r.MAE <= 0 {
			t.Errorf("%s: non-positive errors %v/%v", r.Label, r.RMSE, r.MAE)
		}
		if r.MR < 0 || r.MR > 1 {
			t.Errorf("%s: MR = %v", r.Label, r.MR)
		}
		if r.TTSec <= 0 {
			t.Errorf("%s: TT = %v", r.Label, r.TTSec)
		}
		if strings.HasPrefix(r.Label, "GTMC") {
			gtmc++
		}
		if strings.HasPrefix(r.Label, "k-means") {
			kmeans++
		}
	}
	if gtmc != 5 || kmeans != 5 {
		t.Errorf("split = %d GTMC / %d k-means", gtmc, kmeans)
	}
}

func TestRunSeqSweepRows(t *testing.T) {
	rows, err := RunSeqSweep(context.Background(), dataset.Workload1, microScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 seq_in values + 2 extra seq_out values, × 4 algorithms.
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	seen := map[string]int{}
	for _, r := range rows {
		seen[r.Label]++
	}
	for _, alg := range seqAlgorithms {
		if seen[alg] != 5 {
			t.Errorf("%s appears %d times, want 5", alg, seen[alg])
		}
	}
}

func TestRunAssignmentSweepRows(t *testing.T) {
	rows, err := RunAssignmentSweep(context.Background(), dataset.Workload1, SweepDetour, microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 35 {
		t.Fatalf("rows = %d, want 35 (5 points × 7 algorithms)", len(rows))
	}
	for _, r := range rows {
		if r.Completion < 0 || r.Completion > 1 {
			t.Errorf("%s@%g: completion %v", r.Algo, r.X, r.Completion)
		}
		if r.Rejection < 0 || r.Rejection > 1 {
			t.Errorf("%s@%g: rejection %v", r.Algo, r.X, r.Rejection)
		}
		if r.Algo == "UB" && r.Rejection != 0 {
			t.Errorf("UB rejection = %v at %g", r.Rejection, r.X)
		}
	}
}

func TestSweepValues(t *testing.T) {
	sc := microScale()
	if got := sweepValues(SweepDetour, sc); len(got) != 5 || got[0] != 2 || got[4] != 10 {
		t.Errorf("detour sweep = %v", got)
	}
	if got := sweepValues(SweepTasks, sc); got[0] != float64(sc.TaskUnit) {
		t.Errorf("task sweep = %v", got)
	}
	if got := sweepValues(SweepValid, sc); len(got) != 5 {
		t.Errorf("valid sweep = %v", got)
	}
	if got := sweepValues(SweepKind(9), sc); got != nil {
		t.Errorf("unknown sweep = %v", got)
	}
}

func TestMakeAssignerPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	makeAssigner("bogus", Quick)
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table4", "table5", "table6", "table7",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ablations"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		e, ok := Registry[id]
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		if e.ID != id || e.Title == "" {
			t.Errorf("experiment %s malformed", id)
		}
		producers := 0
		if e.predRows != nil {
			producers++
		}
		if e.assignRows != nil {
			producers++
		}
		if e.ablationRows != nil {
			producers++
		}
		if producers != 1 {
			t.Errorf("experiment %s has %d row producers, want 1", id, producers)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Errorf("IDs() = %v", ids)
	}
	var buf bytes.Buffer
	Describe(&buf)
	if !strings.Contains(buf.String(), "Table IV") {
		t.Error("Describe output missing titles")
	}
}

func TestWriters(t *testing.T) {
	var buf bytes.Buffer
	WritePredTable(&buf, "T", []PredRow{{Label: "X", SeqIn: 5, SeqOut: 1, RMSE: 1, MAE: 0.5, MR: 0.4, TTSec: 2}})
	s := buf.String()
	if !strings.Contains(s, "RMSE") || !strings.Contains(s, "0.4000") {
		t.Errorf("pred table output:\n%s", s)
	}
	buf.Reset()
	WriteAssignSeries(&buf, "F", []AssignRow{
		{Sweep: "d", X: 2, Algo: "PPI", Completion: 0.5, Rejection: 0.1, CostKM: 1, TimeSec: 0.2},
		{Sweep: "d", X: 4, Algo: "PPI", Completion: 0.6, Rejection: 0.1, CostKM: 1.2, TimeSec: 0.25},
	})
	s = buf.String()
	for _, want := range []string{"completion rate", "rejection rate", "worker cost", "running time", "PPI"} {
		if !strings.Contains(s, want) {
			t.Errorf("series output missing %q:\n%s", want, s)
		}
	}
}

// TestRegistrySmokeQuickExperiment runs one registry entry end to end at
// micro scale to catch wiring regressions.
func TestRegistrySmokeQuickExperiment(t *testing.T) {
	var buf bytes.Buffer
	Registry["fig6"].Run(context.Background(), microScale(), &buf)
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Errorf("fig6 output:\n%s", buf.String())
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	err := WritePredCSV(&buf, []PredRow{{Label: "GTMC / Sim_d", SeqIn: 5, SeqOut: 1, RMSE: 1.5, MAE: 1.2, MR: 0.45, TTSec: 3.3}})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "config,seq_in") || !strings.Contains(s, "GTMC / Sim_d,5,1,1.5") {
		t.Errorf("pred CSV:\n%s", s)
	}
	buf.Reset()
	err = WriteAssignCSV(&buf, []AssignRow{{Sweep: "d(km)", X: 6, Algo: "PPI", Completion: 0.6, Rejection: 0.1, CostKM: 2.2, TimeSec: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	s = buf.String()
	if !strings.Contains(s, "sweep,x,algo") || !strings.Contains(s, "d(km),6.000000,PPI") {
		t.Errorf("assign CSV:\n%s", s)
	}
}

func TestRunCSVSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Registry["fig6"].RunCSV(context.Background(), microScale(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PPI") {
		t.Error("fig6 CSV missing algorithms")
	}
	var empty Experiment
	if err := empty.RunCSV(context.Background(), microScale(), &buf); err == nil {
		t.Error("empty experiment should error")
	}
}

func TestAggregatePred(t *testing.T) {
	runs := [][]PredRow{
		{{Label: "A", SeqIn: 5, SeqOut: 1, RMSE: 1, MAE: 0.8, MR: 0.4, TTSec: 2}},
		{{Label: "A", SeqIn: 5, SeqOut: 1, RMSE: 3, MAE: 1.2, MR: 0.6, TTSec: 4}},
	}
	agg := AggregatePred(runs)
	if len(agg) != 1 {
		t.Fatalf("agg rows = %d", len(agg))
	}
	r := agg[0]
	if r.RMSE != 2 || r.MR != 0.5 || r.TTSec != 3 {
		t.Errorf("means = %+v", r)
	}
	if r.RMSEStd == 0 || r.MRStd == 0 {
		t.Error("stds should be nonzero")
	}
	if AggregatePred(nil) != nil {
		t.Error("empty aggregate should be nil")
	}
}

func TestAggregatePredPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AggregatePred([][]PredRow{
		{{Label: "A"}},
		{{Label: "B"}},
	})
}

func TestAggregateAssign(t *testing.T) {
	runs := [][]AssignRow{
		{{Sweep: "d", X: 2, Algo: "PPI", Completion: 0.4, Rejection: 0.2, CostKM: 1, TimeSec: 0.1}},
		{{Sweep: "d", X: 2, Algo: "PPI", Completion: 0.6, Rejection: 0.4, CostKM: 3, TimeSec: 0.3}},
	}
	agg := AggregateAssign(runs)
	if len(agg) != 1 {
		t.Fatalf("agg rows = %d", len(agg))
	}
	r := agg[0]
	if r.Completion != 0.5 || math.Abs(r.Rejection-0.3) > 1e-12 || r.CostKM != 2 {
		t.Errorf("means = %+v", r)
	}
}

func TestRunSeedsMultiSeedSmoke(t *testing.T) {
	var buf bytes.Buffer
	Registry["fig6"].RunSeeds(context.Background(), microScale(), []int64{1, 2}, &buf)
	if !strings.Contains(buf.String(), "mean ± std over 2 seeds") {
		t.Errorf("multi-seed output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "±") {
		t.Error("no ± markers in aggregated output")
	}
	buf.Reset()
	Registry["fig6"].RunSeeds(context.Background(), microScale(), []int64{7}, &buf)
	if !strings.Contains(buf.String(), "Fig. 6") {
		t.Error("single-seed fallback broken")
	}
}

func TestRunDesignAblations(t *testing.T) {
	rows, err := RunDesignAblations(context.Background(), dataset.Workload1, microScale())
	if err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	for _, r := range rows {
		groups[r.Group]++
	}
	want := map[string]int{"loss": 2, "staging": 2, "radius": 3, "epsilon": 3, "clustering": 2}
	for g, n := range want {
		if groups[g] != n {
			t.Errorf("group %s has %d rows, want %d", g, groups[g], n)
		}
	}
	var buf bytes.Buffer
	WriteAblationTable(&buf, "T", rows)
	for _, s := range []string{"design choice", "task-oriented", "GTMC (game)"} {
		if !strings.Contains(buf.String(), s) {
			t.Errorf("ablation table missing %q", s)
		}
	}
}

func TestAblationsViaRegistry(t *testing.T) {
	var buf bytes.Buffer
	Registry["ablations"].Run(context.Background(), microScale(), &buf)
	if !strings.Contains(buf.String(), "epsilon") {
		t.Errorf("ablations output:\n%s", buf.String())
	}
	if err := Registry["ablations"].RunCSV(context.Background(), microScale(), &buf); err == nil {
		t.Log("ablations CSV unexpectedly supported (fine if implemented)")
	}
}
