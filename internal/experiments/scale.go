// Package experiments reproduces every table and figure of the paper's
// evaluation (§IV and Appendix C) on the synthetic workloads: the
// clustering ablations (Tables IV and VI), the seq_in/seq_out sweeps
// (Tables V and VII), and the task assignment sweeps over worker detour,
// task count, and task validity (Figs. 6–11). Each experiment is a plain
// function returning typed rows, shared by cmd/tampbench and the root
// benchmark suite.
package experiments

import (
	"github.com/spatialcrowd/tamp/internal/dataset"
)

// Scale bounds an experiment's size so the suite can run both as a quick
// smoke pass and as the full paper-shaped reproduction.
type Scale struct {
	Name        string
	NumWorkers  int
	NewWorkers  int
	TrainDays   int
	TestDays    int
	TicksPerDay int
	// TaskUnit is what the paper's "1K tasks" maps to; the Figs. 7/10
	// x-axis becomes {1,2,3,4,5}·TaskUnit.
	TaskUnit  int
	Hidden    int
	MetaIters int
	// GGPSO search effort.
	Population, Generations int
	Seed                    int64
	// Parallelism bounds every worker pool the experiment spawns: meta
	// training batches, per-worker adaptation, simulation prediction, PPI/KM
	// edge construction, and multi-seed fan-out (0 = GOMAXPROCS). Rows are
	// bit-identical at every level.
	Parallelism int
}

// Smoke is the CI-gate scale of the benchmark matrix: small enough that the
// full generators × assigners cross-product (training included) finishes in
// well under a minute, large enough that every assigner serves tasks and the
// budget/window mechanics engage.
var Smoke = Scale{
	Name:        "smoke",
	NumWorkers:  8,
	NewWorkers:  1,
	TrainDays:   2,
	TestDays:    1,
	TicksPerDay: 48,
	TaskUnit:    40,
	Hidden:      6,
	MetaIters:   4,
	Population:  12,
	Generations: 10,
	Seed:        1,
}

// Quick is the smoke-test scale: seconds per experiment.
var Quick = Scale{
	Name:        "quick",
	NumWorkers:  12,
	NewWorkers:  2,
	TrainDays:   2,
	TestDays:    1,
	TicksPerDay: 60,
	TaskUnit:    120,
	Hidden:      8,
	MetaIters:   8,
	Population:  20,
	Generations: 25,
	Seed:        1,
}

// Full is the paper-shaped scale: minutes per experiment, large enough for
// the orderings and trends of §IV to emerge.
var Full = Scale{
	Name:        "full",
	NumWorkers:  40,
	NewWorkers:  4,
	TrainDays:   4,
	TestDays:    2,
	TicksPerDay: 120,
	TaskUnit:    600,
	Hidden:      16,
	MetaIters:   25,
	Population:  40,
	Generations: 60,
	Seed:        1,
}

// params builds dataset parameters at this scale with the Table III
// defaults (3 task units, valid time [3,4], detour 6 km).
func (sc Scale) params(kind dataset.Kind) dataset.Params {
	p := dataset.Defaults(kind)
	p.Seed = sc.Seed
	p.NumWorkers = sc.NumWorkers
	p.NewWorkers = sc.NewWorkers
	p.TrainDays = sc.TrainDays
	p.TestDays = sc.TestDays
	p.TicksPerDay = sc.TicksPerDay
	p.NumTestTasks = 3 * sc.TaskUnit
	return p
}
