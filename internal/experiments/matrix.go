package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/platform"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/scenario"
)

// MatrixAssigners is the full assigner zoo the benchmark matrix runs every
// workload generator against, in report order.
var MatrixAssigners = []string{"UB", "PPI", "KM", "GGPSO", "Greedy", "LB"}

// MatrixCell is one (scale, generator, assigner) measurement of the
// benchmark matrix. Everything except AssignMs is a pure function of the
// seed — the committed matrix is a regression contract, and CheckMatrix
// diffs fresh runs against it with per-metric tolerances. AssignMs is
// wall-clock and recorded for the human-readable table only; it is never
// compared.
type MatrixCell struct {
	Scale     string `json:"scale"`
	Generator string `json:"generator"`
	Assigner  string `json:"assigner"`

	TotalTasks int     `json:"total_tasks"`
	Assigned   int     `json:"assigned"`
	Served     int     `json:"served"` // assignments accepted and completed
	Completion float64 `json:"completion_rate"`
	Rejection  float64 `json:"rejection_rate"`
	AvgCostKM  float64 `json:"avg_cost_km"`
	MeanMR     float64 `json:"mean_mr"` // mean predictor matching rate across the fleet

	OffWindow     int     `json:"off_window,omitempty"`      // worker slots outside availability windows
	BudgetDenied  int     `json:"budget_denied,omitempty"`   // offers withheld by the budget gate
	BudgetSpentKM float64 `json:"budget_spent_km,omitempty"` // predicted detour charged to the budget

	AssignMs float64 `json:"assign_ms"` // informational only, never checked
}

// MatrixFile is the on-disk schema of BENCH_matrix.json.
type MatrixFile struct {
	Note  string       `json:"note"`
	Cells []MatrixCell `json:"cells"`
}

const matrixNote = "Benchmark matrix: scenario generators × assigner zoo. " +
	"Regenerate with `make matrix`; CI diffs a fresh smoke-scale run against " +
	"the committed cells with `make matrix-check` (see EXPERIMENTS.md for the " +
	"tolerance policy). assign_ms is informational and never compared."

// MatrixScale resolves a scale name accepted by the matrix harness.
func MatrixScale(name string) (Scale, error) {
	switch name {
	case "smoke":
		return Smoke, nil
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown matrix scale %q (want smoke, quick, or full)", name)
}

// RunMatrix runs the cross-product of scenario generators × MatrixAssigners
// at each given scale: per (scale, generator) the workload is generated and
// the mobility predictors are trained once (task-assignment-oriented loss,
// the paper's offline stage), then every assigner simulates the same online
// horizon. Cells come back in deterministic (scale, generator, assigner)
// order with all seed-derived metrics bit-identical across runs and
// parallelism levels.
func RunMatrix(ctx context.Context, scales []Scale, progress io.Writer) ([]MatrixCell, error) {
	var cells []MatrixCell
	for _, sc := range scales {
		for _, gen := range scenario.Suite() {
			w := gen.Generate(sc.params(dataset.Workload1))
			res, err := predict.Train(ctx, w, predict.Options{
				WeightedLoss: true, Hidden: sc.Hidden, MetaIters: sc.MetaIters, Seed: sc.Seed,
				Parallelism: sc.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			meanMR := 0.0
			if len(res.Models) > 0 {
				for _, m := range res.Models {
					meanMR += m.MR
				}
				meanMR /= float64(len(res.Models))
			}
			for _, name := range MatrixAssigners {
				run := platform.Run{
					Workload:    w,
					Models:      res.Models,
					Assigner:    makeAssigner(name, sc),
					Parallelism: sc.Parallelism,
				}
				m, err := run.Simulate(ctx)
				if err != nil {
					return nil, err
				}
				cells = append(cells, MatrixCell{
					Scale:         sc.Name,
					Generator:     gen.Name(),
					Assigner:      name,
					TotalTasks:    m.TotalTasks,
					Assigned:      m.Assigned,
					Served:        m.Accepted,
					Completion:    m.CompletionRate(),
					Rejection:     m.RejectionRate(),
					AvgCostKM:     m.AvgCostKM(),
					MeanMR:        meanMR,
					OffWindow:     m.OffWindow,
					BudgetDenied:  m.BudgetDenied,
					BudgetSpentKM: m.BudgetSpentKM,
					AssignMs:      float64(m.AssignTime.Milliseconds()),
				})
				if progress != nil {
					fmt.Fprintf(progress, "matrix: %s/%s/%s served %d/%d\n",
						sc.Name, gen.Name(), name, m.Accepted, m.TotalTasks)
				}
			}
		}
	}
	return cells, nil
}

// WriteMatrixJSON persists cells as BENCH_matrix.json.
func WriteMatrixJSON(path string, cells []MatrixCell) error {
	raw, err := json.MarshalIndent(MatrixFile{Note: matrixNote, Cells: cells}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// LoadMatrix reads a matrix file written by WriteMatrixJSON.
func LoadMatrix(path string) (MatrixFile, error) {
	var f MatrixFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("experiments: parse %s: %w", path, err)
	}
	return f, nil
}

// WriteMatrixMD renders the human-readable MATRIX.md: one table per
// (scale, generator) block, assigners as rows.
func WriteMatrixMD(w io.Writer, cells []MatrixCell) {
	fmt.Fprintf(w, "# Benchmark matrix\n\n")
	fmt.Fprintf(w, "Scenario generators × assigner zoo, every cell one seeded deterministic\n")
	fmt.Fprintf(w, "simulation (see EXPERIMENTS.md §matrix). Regenerate with `make matrix`;\n")
	fmt.Fprintf(w, "CI gates smoke-scale drift with `make matrix-check`. `assign` is\n")
	fmt.Fprintf(w, "wall-clock and informational only.\n")
	type key struct{ scale, gen string }
	var order []key
	seen := map[key]bool{}
	for _, c := range cells {
		k := key{c.Scale, c.Generator}
		if !seen[k] {
			seen[k] = true
			order = append(order, k)
		}
	}
	for _, k := range order {
		fmt.Fprintf(w, "\n## %s · %s\n\n", k.scale, k.gen)
		fmt.Fprintf(w, "| assigner | served | total | completion | rejection | cost km | mean MR | off-window | budget denied | spent km | assign |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|---|---|\n")
		for _, c := range cells {
			if c.Scale != k.scale || c.Generator != k.gen {
				continue
			}
			fmt.Fprintf(w, "| %s | %d | %d | %.3f | %.3f | %.3f | %.3f | %d | %d | %.1f | %.0fms |\n",
				c.Assigner, c.Served, c.TotalTasks, c.Completion, c.Rejection,
				c.AvgCostKM, c.MeanMR, c.OffWindow, c.BudgetDenied, c.BudgetSpentKM, c.AssignMs)
		}
	}
}

// Per-metric drift tolerances of CheckMatrix. Counts and rates are fully
// seed-determined, so the slack only absorbs cross-architecture float
// differences (Go may fuse multiply-adds on some platforms); on the same
// architecture a drift is a behaviour change.
const (
	matrixCountRelTol = 0.02 // counts: 2% relative…
	matrixCountAbsTol = 2.0  // …with ±2 absolute slack
	matrixRateAbsTol  = 0.02 // completion/rejection/MR: ±0.02 absolute
	matrixCostRelTol  = 0.05 // cost & spend: 5% relative…
	matrixCostAbsTol  = 0.10 // …with small absolute slack
)

func countDrift(base, cur int) bool {
	d := math.Abs(float64(cur - base))
	return d > matrixCountAbsTol && d > matrixCountRelTol*math.Abs(float64(base))
}

func rateDrift(base, cur float64) bool {
	return math.Abs(cur-base) > matrixRateAbsTol
}

func costDrift(base, cur float64) bool {
	d := math.Abs(cur - base)
	return d > matrixCostAbsTol && d > matrixCostRelTol*math.Abs(base)
}

// CheckMatrix diffs a fresh run against the committed matrix, cell by cell,
// restricted to the scales actually present in fresh. A fresh cell missing
// from the committed file (or vice versa, at a checked scale) fails the
// check: adding a generator or assigner requires regenerating the committed
// matrix in the same change. The report is for humans; ok gates the exit
// code.
func CheckMatrix(committed MatrixFile, fresh []MatrixCell) (report string, ok bool) {
	type key struct{ scale, gen, alg string }
	scales := map[string]bool{}
	for _, c := range fresh {
		scales[c.Scale] = true
	}
	base := map[key]MatrixCell{}
	for _, c := range committed.Cells {
		if scales[c.Scale] {
			base[key{c.Scale, c.Generator, c.Assigner}] = c
		}
	}
	ok = true
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %16s %16s %16s  verdict\n", "cell", "served", "completion", "cost km")
	for _, c := range fresh {
		k := key{c.Scale, c.Generator, c.Assigner}
		bl, have := base[k]
		name := fmt.Sprintf("%s/%s/%s", c.Scale, c.Generator, c.Assigner)
		if !have {
			fmt.Fprintf(&b, "%-28s %16d %16.3f %16.3f  MISSING from committed matrix — run `make matrix`\n",
				name, c.Served, c.Completion, c.AvgCostKM)
			ok = false
			continue
		}
		delete(base, k)
		var drifts []string
		check := func(metric string, drifted bool, base, cur string) {
			if drifted {
				drifts = append(drifts, fmt.Sprintf("%s %s -> %s", metric, base, cur))
			}
		}
		check("total", countDrift(bl.TotalTasks, c.TotalTasks), fmt.Sprint(bl.TotalTasks), fmt.Sprint(c.TotalTasks))
		check("assigned", countDrift(bl.Assigned, c.Assigned), fmt.Sprint(bl.Assigned), fmt.Sprint(c.Assigned))
		check("served", countDrift(bl.Served, c.Served), fmt.Sprint(bl.Served), fmt.Sprint(c.Served))
		check("completion", rateDrift(bl.Completion, c.Completion), fmt.Sprintf("%.3f", bl.Completion), fmt.Sprintf("%.3f", c.Completion))
		check("rejection", rateDrift(bl.Rejection, c.Rejection), fmt.Sprintf("%.3f", bl.Rejection), fmt.Sprintf("%.3f", c.Rejection))
		check("cost", costDrift(bl.AvgCostKM, c.AvgCostKM), fmt.Sprintf("%.3f", bl.AvgCostKM), fmt.Sprintf("%.3f", c.AvgCostKM))
		check("mean_mr", rateDrift(bl.MeanMR, c.MeanMR), fmt.Sprintf("%.3f", bl.MeanMR), fmt.Sprintf("%.3f", c.MeanMR))
		check("off_window", countDrift(bl.OffWindow, c.OffWindow), fmt.Sprint(bl.OffWindow), fmt.Sprint(c.OffWindow))
		check("budget_denied", countDrift(bl.BudgetDenied, c.BudgetDenied), fmt.Sprint(bl.BudgetDenied), fmt.Sprint(c.BudgetDenied))
		check("budget_spent", costDrift(bl.BudgetSpentKM, c.BudgetSpentKM), fmt.Sprintf("%.1f", bl.BudgetSpentKM), fmt.Sprintf("%.1f", c.BudgetSpentKM))
		verdict := "ok"
		if len(drifts) > 0 {
			verdict = "DRIFT: " + strings.Join(drifts, "; ")
			ok = false
		}
		fmt.Fprintf(&b, "%-28s %7d -> %5d %8.3f -> %5.3f %8.3f -> %5.3f  %s\n",
			name, bl.Served, c.Served, bl.Completion, c.Completion, bl.AvgCostKM, c.AvgCostKM, verdict)
	}
	if len(base) > 0 {
		var missing []string
		for k := range base {
			missing = append(missing, fmt.Sprintf("%s/%s/%s", k.scale, k.gen, k.alg))
		}
		sort.Strings(missing)
		fmt.Fprintf(&b, "committed cells not produced by the fresh run: %s\n", strings.Join(missing, ", "))
		ok = false
	}
	return b.String(), ok
}

// WriteMatrixTable renders cells with aligned columns for terminal output.
func WriteMatrixTable(w io.Writer, cells []MatrixCell) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scale\tgenerator\tassigner\tserved\ttotal\tcompletion\trejection\tcost(km)\tmeanMR\toff-window\tdenied\tspent(km)\tassign")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%d\t%d\t%.1f\t%.0fms\n",
			c.Scale, c.Generator, c.Assigner, c.Served, c.TotalTasks, c.Completion,
			c.Rejection, c.AvgCostKM, c.MeanMR, c.OffWindow, c.BudgetDenied, c.BudgetSpentKM, c.AssignMs)
	}
	tw.Flush()
}
