package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/spatialcrowd/tamp/internal/scenario"
)

// tinyScale keeps the matrix cross-product fast enough for the unit suite
// while still training real models and serving real tasks.
var tinyScale = Scale{
	Name:        "smoke",
	NumWorkers:  5,
	NewWorkers:  0,
	TrainDays:   2,
	TestDays:    1,
	TicksPerDay: 36,
	TaskUnit:    15,
	Hidden:      4,
	MetaIters:   2,
	Population:  8,
	Generations: 5,
	Seed:        1,
}

func runTinyMatrix(t *testing.T) []MatrixCell {
	t.Helper()
	cells, err := RunMatrix(context.Background(), []Scale{tinyScale}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestRunMatrixCoversCrossProduct(t *testing.T) {
	cells := runTinyMatrix(t)
	gens := scenario.Suite()
	if want := len(gens) * len(MatrixAssigners); len(cells) != want {
		t.Fatalf("%d cells, want %d (generators × assigners)", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.Generator+"/"+c.Assigner] = true
		if c.Scale != tinyScale.Name {
			t.Errorf("cell %s/%s has scale %q", c.Generator, c.Assigner, c.Scale)
		}
		if c.TotalTasks == 0 {
			t.Errorf("cell %s/%s saw no tasks", c.Generator, c.Assigner)
		}
	}
	for _, g := range gens {
		for _, a := range MatrixAssigners {
			if !seen[g.Name()+"/"+a] {
				t.Errorf("missing cell %s/%s", g.Name(), a)
			}
		}
	}
}

// The committed matrix is a regression contract: two runs at the same scale
// must agree on every compared metric (AssignMs is wall-clock and exempt).
func TestRunMatrixDeterministic(t *testing.T) {
	a := runTinyMatrix(t)
	b := runTinyMatrix(t)
	for i := range a {
		a[i].AssignMs, b[i].AssignMs = 0, 0
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two matrix runs at the same scale disagree")
	}
}

func TestCheckMatrixRoundTrip(t *testing.T) {
	cells := runTinyMatrix(t)
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := WriteMatrixJSON(path, cells); err != nil {
		t.Fatal(err)
	}
	committed, err := LoadMatrix(path)
	if err != nil {
		t.Fatal(err)
	}

	if report, ok := CheckMatrix(committed, cells); !ok {
		t.Fatalf("self-check failed:\n%s", report)
	}

	// A drifted metric must fail with the offending cell named.
	drifted := append([]MatrixCell(nil), cells...)
	drifted[0].Served += 10
	report, ok := CheckMatrix(committed, drifted)
	if ok {
		t.Fatal("served drift of +10 passed the check")
	}
	if !strings.Contains(report, drifted[0].Generator) || !strings.Contains(report, drifted[0].Assigner) {
		t.Errorf("drift report does not name the cell:\n%s", report)
	}

	// A fresh cell missing from the committed file must fail (new
	// generators/assigners force a matrix regeneration)...
	short := MatrixFile{Cells: committed.Cells[1:]}
	if _, ok := CheckMatrix(short, cells); ok {
		t.Error("fresh cell absent from the committed matrix passed the check")
	}
	// ...and so must a committed cell the fresh run no longer produces.
	if _, ok := CheckMatrix(committed, cells[1:]); ok {
		t.Error("committed cell absent from the fresh run passed the check")
	}
}

// Committed scales outside the fresh run (e.g. quick cells during a
// smoke-only CI check) are ignored, not reported missing.
func TestCheckMatrixIgnoresUncheckedScales(t *testing.T) {
	cells := runTinyMatrix(t)
	other := append([]MatrixCell(nil), cells...)
	for i := range other {
		other[i].Scale = "quick"
	}
	committed := MatrixFile{Cells: append(append([]MatrixCell(nil), cells...), other...)}
	if report, ok := CheckMatrix(committed, cells); !ok {
		t.Fatalf("smoke-only check tripped on committed quick cells:\n%s", report)
	}
}

func TestMatrixScaleNames(t *testing.T) {
	for _, name := range []string{"smoke", "quick", "full"} {
		sc, err := MatrixScale(name)
		if err != nil || sc.Name != name {
			t.Errorf("MatrixScale(%q) = %+v, %v", name, sc.Name, err)
		}
	}
	if _, err := MatrixScale("warp"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestWriteMatrixMDListsEveryCell(t *testing.T) {
	cells := runTinyMatrix(t)
	var sb strings.Builder
	WriteMatrixMD(&sb, cells)
	md := sb.String()
	for _, a := range MatrixAssigners {
		if !strings.Contains(md, a) {
			t.Errorf("MATRIX.md output missing assigner %s", a)
		}
	}
	for _, g := range scenario.Suite() {
		if !strings.Contains(md, g.Name()) {
			t.Errorf("MATRIX.md output missing generator %s", g.Name())
		}
	}
}
