package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/platform"
	"github.com/spatialcrowd/tamp/internal/predict"
)

// AssignRow is one (sweep point, algorithm) measurement of a Figs. 6–11
// experiment.
type AssignRow struct {
	Sweep      string  // axis label, e.g. "d(km)"
	X          float64 // sweep value
	Algo       string
	Completion float64
	Rejection  float64
	CostKM     float64
	TimeSec    float64
}

// SweepKind selects the x-axis of an assignment experiment.
type SweepKind int

// The three assignment sweeps of the evaluation.
const (
	SweepDetour SweepKind = iota // Figs. 6 / 9
	SweepTasks                   // Figs. 7 / 10
	SweepValid                   // Figs. 8 / 11
)

// String implements fmt.Stringer.
func (s SweepKind) String() string {
	switch s {
	case SweepDetour:
		return "worker detour d (km)"
	case SweepTasks:
		return "number of spatial tasks"
	case SweepValid:
		return "task valid time (units)"
	default:
		return "sweep(?)"
	}
}

// assignAlgos enumerates the seven compared algorithms of Figs. 6–11.
// PPI/KM/GGPSO use the models trained with the task-assignment-oriented
// loss; the -loss variants use plain-MSE models; UB and LB ignore models.
var assignAlgos = []string{"UB", "PPI", "PPI-loss", "GGPSO", "KM", "KM-loss", "LB"}

// RunAssignmentSweep reproduces one of Figs. 6–8 (workload 1) or Figs. 9–11
// (workload 2). Mobility models are trained once on the default setting —
// the paper's offline stage — and the online assignment is simulated per
// sweep point.
func RunAssignmentSweep(ctx context.Context, kind dataset.Kind, sweep SweepKind, sc Scale) ([]AssignRow, error) {
	base := sc.params(kind)

	// Offline stage: two model sets, one per loss function.
	trainW := dataset.Generate(base)
	weighted, err := predict.Train(ctx, trainW, predict.Options{
		WeightedLoss: true, Hidden: sc.Hidden, MetaIters: sc.MetaIters, Seed: sc.Seed,
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	mse, err := predict.Train(ctx, trainW, predict.Options{
		WeightedLoss: false, Hidden: sc.Hidden, MetaIters: sc.MetaIters, Seed: sc.Seed,
		Parallelism: sc.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	var rows []AssignRow
	for _, x := range sweepValues(sweep, sc) {
		p := base
		label := ""
		switch sweep {
		case SweepDetour:
			p.DetourKM = x
			label = "d(km)"
		case SweepTasks:
			p.NumTestTasks = int(x)
			label = "#tasks"
		case SweepValid:
			p.ValidMin = int(x)
			p.ValidMax = int(x) + 1
			label = "valid"
		}
		w := dataset.Generate(p)
		for _, algo := range assignAlgos {
			models := weighted.Models
			if strings.HasSuffix(algo, "-loss") {
				models = mse.Models
			}
			run := platform.Run{
				Workload:    w,
				Models:      models,
				Assigner:    makeAssigner(algo, sc),
				Parallelism: sc.Parallelism,
			}
			m, err := run.Simulate(ctx)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AssignRow{
				Sweep: label, X: x, Algo: algo,
				Completion: m.CompletionRate(),
				Rejection:  m.RejectionRate(),
				CostKM:     m.AvgCostKM(),
				TimeSec:    m.AssignTime.Seconds(),
			})
		}
	}
	return rows, nil
}

func sweepValues(sweep SweepKind, sc Scale) []float64 {
	switch sweep {
	case SweepDetour:
		return []float64{2, 4, 6, 8, 10}
	case SweepTasks:
		u := float64(sc.TaskUnit)
		return []float64{u, 2 * u, 3 * u, 4 * u, 5 * u}
	case SweepValid:
		return []float64{1, 2, 3, 4, 5}
	default:
		return nil
	}
}

func makeAssigner(algo string, sc Scale) assign.Assigner {
	switch algo {
	case "UB":
		return assign.UB{Parallelism: sc.Parallelism}
	case "LB":
		return assign.LB{}
	case "PPI", "PPI-loss":
		return assign.PPI{A: predict.DefaultMatchRadius, Parallelism: sc.Parallelism}
	case "KM", "KM-loss":
		return assign.KM{Parallelism: sc.Parallelism}
	case "Greedy":
		return assign.Greedy{Parallelism: sc.Parallelism}
	case "GGPSO":
		return assign.GGPSO{Population: sc.Population, Generations: sc.Generations, Seed: sc.Seed}
	default:
		panic("experiments: unknown algorithm " + algo)
	}
}

// WriteAssignSeries renders assignment rows grouped per metric, matching
// the four panels of each evaluation figure.
func WriteAssignSeries(w io.Writer, title string, rows []AssignRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	metrics := []struct {
		name string
		get  func(AssignRow) float64
		fmt  string
	}{
		{"completion rate", func(r AssignRow) float64 { return r.Completion }, "%.3f"},
		{"rejection rate", func(r AssignRow) float64 { return r.Rejection }, "%.3f"},
		{"worker cost (km)", func(r AssignRow) float64 { return r.CostKM }, "%.3f"},
		{"running time (s)", func(r AssignRow) float64 { return r.TimeSec }, "%.3f"},
	}
	// Collect the x axis and algorithms preserving order.
	var xs []float64
	var algos []string
	seenX := map[float64]bool{}
	seenA := map[string]bool{}
	for _, r := range rows {
		if !seenX[r.X] {
			seenX[r.X] = true
			xs = append(xs, r.X)
		}
		if !seenA[r.Algo] {
			seenA[r.Algo] = true
			algos = append(algos, r.Algo)
		}
	}
	get := func(x float64, algo string) (AssignRow, bool) {
		for _, r := range rows {
			if r.X == x && r.Algo == algo {
				return r, true
			}
		}
		return AssignRow{}, false
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "\n[%s]\n", m.name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		header := "algo"
		for _, x := range xs {
			header += fmt.Sprintf("\t%g", x)
		}
		fmt.Fprintln(tw, header)
		for _, a := range algos {
			line := a
			for _, x := range xs {
				if r, ok := get(x, a); ok {
					line += fmt.Sprintf("\t"+m.fmt, m.get(r))
				} else {
					line += "\t-"
				}
			}
			fmt.Fprintln(tw, line)
		}
		tw.Flush()
	}
	fmt.Fprintln(w)
}
