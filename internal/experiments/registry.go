package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/spatialcrowd/tamp/internal/dataset"
)

// Experiment is one runnable table/figure reproduction. Exactly one of the
// row producers is set, depending on whether the experiment measures the
// prediction stage (tables), the assignment stage (figures), or the design
// ablations.
type Experiment struct {
	ID    string
	Title string

	predRows     func(ctx context.Context, sc Scale) ([]PredRow, error)
	assignRows   func(ctx context.Context, sc Scale) ([]AssignRow, error)
	ablationRows func(ctx context.Context, sc Scale) ([]AblationRow, error)
}

// Run executes the experiment and writes the paper-style text rendering.
// Cancelling ctx abandons the run and returns ctx.Err().
func (e Experiment) Run(ctx context.Context, sc Scale, w io.Writer) error {
	switch {
	case e.predRows != nil:
		rows, err := e.predRows(ctx, sc)
		if err != nil {
			return err
		}
		WritePredTable(w, e.Title, rows)
	case e.assignRows != nil:
		rows, err := e.assignRows(ctx, sc)
		if err != nil {
			return err
		}
		WriteAssignSeries(w, e.Title, rows)
	case e.ablationRows != nil:
		rows, err := e.ablationRows(ctx, sc)
		if err != nil {
			return err
		}
		WriteAblationTable(w, e.Title, rows)
	}
	return nil
}

// RunCSV executes the experiment and writes machine-readable CSV.
func (e Experiment) RunCSV(ctx context.Context, sc Scale, w io.Writer) error {
	switch {
	case e.predRows != nil:
		rows, err := e.predRows(ctx, sc)
		if err != nil {
			return err
		}
		return WritePredCSV(w, rows)
	case e.assignRows != nil:
		rows, err := e.assignRows(ctx, sc)
		if err != nil {
			return err
		}
		return WriteAssignCSV(w, rows)
	}
	return fmt.Errorf("experiments: %s has no runner", e.ID)
}

func predExp(id, title string, kind dataset.Kind, run func(context.Context, dataset.Kind, Scale) ([]PredRow, error)) Experiment {
	return Experiment{ID: id, Title: title,
		predRows: func(ctx context.Context, sc Scale) ([]PredRow, error) { return run(ctx, kind, sc) }}
}

func assignExp(id, title string, kind dataset.Kind, sweep SweepKind) Experiment {
	return Experiment{ID: id, Title: title,
		assignRows: func(ctx context.Context, sc Scale) ([]AssignRow, error) {
			return RunAssignmentSweep(ctx, kind, sweep, sc)
		}}
}

// Registry maps experiment ids (table4, fig6, …) to their runners, covering
// every table and figure of the paper's evaluation.
var Registry = map[string]Experiment{
	"table4": predExp("table4",
		"Table IV: clustering algorithm × factor ablation (workload 1)",
		dataset.Workload1, RunClusterAblation),
	"table5": predExp("table5",
		"Table V: effect of seq_in and seq_out (workload 1)",
		dataset.Workload1, RunSeqSweep),
	"table6": predExp("table6",
		"Table VI: clustering algorithm × factor ablation (workload 2)",
		dataset.Workload2, RunClusterAblation),
	"table7": predExp("table7",
		"Table VII: effect of seq_in and seq_out (workload 2)",
		dataset.Workload2, RunSeqSweep),
	"fig6": assignExp("fig6",
		"Fig. 6: effect of worker detour d (workload 1)",
		dataset.Workload1, SweepDetour),
	"fig7": assignExp("fig7",
		"Fig. 7: effect of the number of spatial tasks (workload 1)",
		dataset.Workload1, SweepTasks),
	"fig8": assignExp("fig8",
		"Fig. 8: effect of task valid time (workload 1)",
		dataset.Workload1, SweepValid),
	"fig9": assignExp("fig9",
		"Fig. 9: effect of worker detour d (workload 2)",
		dataset.Workload2, SweepDetour),
	"fig10": assignExp("fig10",
		"Fig. 10: effect of the number of spatial tasks (workload 2)",
		dataset.Workload2, SweepTasks),
	"fig11": assignExp("fig11",
		"Fig. 11: effect of task valid time (workload 2)",
		dataset.Workload2, SweepValid),
	"ablations": {
		ID:    "ablations",
		Title: "Design-choice ablations at the default setting (workload 1)",
		ablationRows: func(ctx context.Context, sc Scale) ([]AblationRow, error) {
			return RunDesignAblations(ctx, dataset.Workload1, sc)
		},
	},
}

// IDs returns the registered experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe writes the experiment catalogue.
func Describe(w io.Writer) {
	for _, id := range IDs() {
		fmt.Fprintf(w, "%-8s %s\n", id, Registry[id].Title)
	}
}
