package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/meta"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/sim"
)

// PredRow is one row of a mobility prediction experiment: the four metrics
// of §IV-A (RMSE and MAE in grid cells, MR, and training time in seconds).
type PredRow struct {
	Label  string
	SeqIn  int
	SeqOut int
	RMSE   float64
	MAE    float64
	MR     float64
	TTSec  float64
}

// factorSet is one clustering-factor configuration of Tables IV/VI.
type factorSet struct {
	label   string
	metrics []sim.Metric
}

var factorSets = []factorSet{
	{"Sim_d", []sim.Metric{sim.Distribution}},
	{"Sim_s", []sim.Metric{sim.Spatial}},
	{"Sim_l", []sim.Metric{sim.LearningPath}},
	{"Sim_d+Sim_s", []sim.Metric{sim.Distribution, sim.Spatial}},
	{"Sim_d+Sim_s+Sim_l", []sim.Metric{sim.Distribution, sim.Spatial, sim.LearningPath}},
}

// RunClusterAblation reproduces Table IV (workload 1) / Table VI
// (workload 2): the {GTMC, k-means} × clustering-factor grid, reporting
// prediction quality and training time. The loss used for evaluation is the
// plain MSE, as in the paper.
func RunClusterAblation(ctx context.Context, kind dataset.Kind, sc Scale) ([]PredRow, error) {
	w := dataset.Generate(sc.params(kind))
	var rows []PredRow
	for _, alg := range []string{meta.AlgGTTAML, meta.AlgGTTAMLGT} {
		algLabel := "GTMC"
		if alg == meta.AlgGTTAMLGT {
			algLabel = "k-means"
		}
		for _, fs := range factorSets {
			res, err := predict.Train(ctx, w, predict.Options{
				Algorithm:   alg,
				Hidden:      sc.Hidden,
				MetaIters:   sc.MetaIters,
				Metrics:     fs.metrics,
				Seed:        sc.Seed,
				Parallelism: sc.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, PredRow{
				Label: algLabel + " / " + fs.label,
				SeqIn: res.Options.SeqIn, SeqOut: res.Options.SeqOut,
				RMSE: res.Eval.RMSE, MAE: res.Eval.MAE, MR: res.Eval.MR,
				TTSec: res.TrainTime.Seconds(),
			})
		}
	}
	return rows, nil
}

// seqAlgorithms is the comparison set of Tables V/VII.
var seqAlgorithms = []string{meta.AlgMAML, meta.AlgCTML, meta.AlgGTTAMLGT, meta.AlgGTTAML}

// RunSeqSweep reproduces Table V (workload 1) / Table VII (workload 2):
// vary seq_in ∈ {1,5,10} at seq_out=1 and seq_out ∈ {1,2,3} at seq_in=5
// for MAML, CTML, GTTAML-GT, and GTTAML.
func RunSeqSweep(ctx context.Context, kind dataset.Kind, sc Scale) ([]PredRow, error) {
	w := dataset.Generate(sc.params(kind))
	var rows []PredRow
	run := func(seqIn, seqOut int) error {
		for _, alg := range seqAlgorithms {
			res, err := predict.Train(ctx, w, predict.Options{
				Algorithm:   alg,
				SeqIn:       seqIn,
				SeqOut:      seqOut,
				Hidden:      sc.Hidden,
				MetaIters:   sc.MetaIters,
				Seed:        sc.Seed,
				Parallelism: sc.Parallelism,
			})
			if err != nil {
				return err
			}
			rows = append(rows, PredRow{
				Label: alg, SeqIn: seqIn, SeqOut: seqOut,
				RMSE: res.Eval.RMSE, MAE: res.Eval.MAE, MR: res.Eval.MR,
				TTSec: res.TrainTime.Seconds(),
			})
		}
		return nil
	}
	for _, seqIn := range []int{1, 5, 10} {
		if err := run(seqIn, 1); err != nil {
			return nil, err
		}
	}
	for _, seqOut := range []int{2, 3} { // seq_out=1 covered by seq_in=5 above
		if err := run(5, seqOut); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// WritePredTable renders prediction rows in the paper's table layout.
func WritePredTable(w io.Writer, title string, rows []PredRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tseq_in\tseq_out\tRMSE\tMAE\tMR\tTT(s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.1f\n",
			r.Label, r.SeqIn, r.SeqOut, r.RMSE, r.MAE, r.MR, r.TTSec)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
