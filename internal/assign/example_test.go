package assign_test

import (
	"fmt"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
)

// ExampleMaxWeightMatching shows the KM subroutine on a tiny bipartite
// graph: the optimal plan sacrifices the single heaviest edge when the
// total is better without it.
func ExampleMaxWeightMatching() {
	pairs := assign.MaxWeightMatching([]assign.Edge{
		{Task: 0, Worker: 0, Weight: 5},
		{Task: 0, Worker: 1, Weight: 6}, // heaviest, but blocks the rest
		{Task: 1, Worker: 1, Weight: 5},
	})
	var total float64
	for _, p := range pairs {
		fmt.Printf("task %d -> worker %d\n", p.Task, p.Worker)
		total += p.Weight
	}
	fmt.Printf("total weight %.0f\n", total)
	// Output:
	// task 0 -> worker 0
	// task 1 -> worker 1
	// total weight 10
}

// ExamplePPI_Assign runs one PPI batch: the task sits on the worker's
// predicted route, so the confident stage matches it immediately.
func ExamplePPI_Assign() {
	worker := assign.Worker{
		ID: 7, Loc: geo.Pt(0, 0), Detour: 10, Speed: 1, MR: 0.8,
		Predicted: []geo.Point{geo.Pt(1, 0), geo.Pt(2, 0), geo.Pt(3, 0)},
	}
	tasks := []assign.Task{{ID: 0, Loc: geo.Pt(2, 0), Deadline: 20}}
	pairs := assign.PPI{A: 1}.Assign(tasks, []assign.Worker{worker}, 0)
	fmt.Println(len(pairs), "assignment; worker", pairs[0].Worker)
	// Output: 1 assignment; worker 0
}
