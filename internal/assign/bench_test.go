package assign

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func benchEdges(nT, nW int, density float64, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for ti := 0; ti < nT; ti++ {
		for wi := 0; wi < nW; wi++ {
			if rng.Float64() < density {
				edges = append(edges, Edge{Task: ti, Worker: wi, Weight: rng.Float64() + 0.01})
			}
		}
	}
	return edges
}

func BenchmarkHungarian32(b *testing.B) {
	edges := benchEdges(32, 32, 0.5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxWeightMatching(edges)
	}
}

func BenchmarkHungarian128(b *testing.B) {
	edges := benchEdges(128, 128, 0.3, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MaxWeightMatching(edges)
	}
}

func benchScenario(nT, nW int, seed int64) ([]Task, []Worker) {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]Task, nT)
	for i := range tasks {
		tasks[i] = Task{ID: i, Loc: geo.Pt(rng.Float64()*50, rng.Float64()*50), Deadline: 40}
	}
	workers := make([]Worker, nW)
	for i := range workers {
		w := straightWorker(i, rng.Float64()*50, rng.Float64()*50, 10, 12, rng.Float64())
		workers[i] = w
	}
	return tasks, workers
}

func BenchmarkPPIBatch(b *testing.B) {
	tasks, workers := benchScenario(60, 30, 3)
	p := PPI{A: 1.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Assign(tasks, workers, 0)
	}
}

func BenchmarkKMBatch(b *testing.B) {
	tasks, workers := benchScenario(60, 30, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		(KM{}).Assign(tasks, workers, 0)
	}
}

func BenchmarkGGPSOBatch(b *testing.B) {
	tasks, workers := benchScenario(60, 30, 3)
	g := GGPSO{Population: 30, Generations: 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Assign(tasks, workers, 0)
	}
}

// assignScales are the batch sizes the BENCH_assign.json guard tracks; the
// perf harness (internal/perf/assign.go) must bench the same shapes.
var assignScales = []struct {
	name   string
	nT, nW int
}{
	{"500x500", 500, 500},
	{"2000x2000", 2000, 2000},
	{"5000x5000", 5000, 5000},
}

func benchAssign(b *testing.B, a Assigner, nT, nW int) {
	tasks, workers := ScaleScenario(nT, nW, 7)
	ctx := WithWorkspace(context.Background(), NewWorkspace())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Do(ctx, a, tasks, workers, 0)
	}
}

func BenchmarkAssignPPI(b *testing.B) {
	for _, s := range assignScales {
		b.Run(s.name, func(b *testing.B) { benchAssign(b, PPI{A: 0.5}, s.nT, s.nW) })
	}
}

func BenchmarkAssignKM(b *testing.B) {
	for _, s := range assignScales {
		b.Run(s.name, func(b *testing.B) { benchAssign(b, KM{}, s.nT, s.nW) })
	}
}

// benchAssignIncremental measures one steady-state Session tick at a given
// churn percentage: the timer covers only Assign (index patch + row
// recompute + merge + warm KM), not the world mutation generating the churn.
// churn 0 is the quiescent floor (identical-stream replay); the from-scratch
// cost of the same batch is BenchmarkAssignPPI at the matching scale.
func benchAssignIncremental(b *testing.B, nT, nW, churnPct int) {
	tasks, workers := ScaleScenario(nT, nW, 7)
	s := NewSession(PPI{A: 0.5})
	for i := range workers {
		s.UpsertWorker(workers[i])
	}
	for i := range tasks {
		s.UpsertTask(tasks[i])
	}
	ctx := context.Background()
	s.Assign(ctx, 0) // cold tick: build index, caches, checkpoints
	ch := NewChurner(99, s)
	frac := float64(churnPct) / 100
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ch.Tick(s, frac)
		b.StartTimer()
		s.Assign(ctx, 0)
	}
}

func BenchmarkAssignIncremental(b *testing.B) {
	for _, s := range assignScales {
		for _, churn := range []int{0, 1, 10} {
			s, churn := s, churn
			b.Run(fmt.Sprintf("%s_churn%d", s.name, churn), func(b *testing.B) {
				benchAssignIncremental(b, s.nT, s.nW, churn)
			})
		}
	}
}
