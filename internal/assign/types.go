package assign

import (
	"context"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/par"
)

// Task is a spatial task τ = (l, t) (Def. 1): check in at Loc before the
// Deadline tick.
type Task struct {
	ID       int
	Loc      geo.Point
	Deadline int // tick by which the task must be reached
	Arrival  int // tick the task was posted (bookkeeping for carry-over)

	// Reward is the payment the requester posts for completing this task,
	// in abstract reward units. Zero means the workload is unrewarded and
	// every task weighs equally (EffectiveReward returns 1), so the paper's
	// reward-free workloads score exactly as before. Budget-constrained
	// workloads (internal/scenario BudgetRewards) set it per task, and every
	// assigner scales its edge weights by it — reward-per-cost scoring.
	Reward float64

	// Excluded lists worker IDs that already rejected this task in earlier
	// batches; the platform never re-proposes a declined pair. All
	// assigners must skip excluded pairs.
	Excluded []int
}

// EffectiveReward is the task's matching reward: Reward when posted,
// otherwise 1 so unrewarded workloads weigh every task equally.
func (t *Task) EffectiveReward() float64 {
	if t.Reward > 0 {
		return t.Reward
	}
	return 1
}

// ExcludedWorker reports whether the worker previously rejected t.
func (t *Task) ExcludedWorker(workerID int) bool {
	for _, id := range t.Excluded {
		if id == workerID {
			return true
		}
	}
	return false
}

// Worker is the assignment-time view of a crowd worker (Def. 2): current
// location, detour budget, speed, the mobility model's predicted future
// trajectory, the true future trajectory (visible only to the UB oracle and
// to the acceptance simulation), and the worker's matching rate MR.
type Worker struct {
	ID     int
	Loc    geo.Point
	Detour float64 // d: maximum acceptable detour, in cells
	Speed  float64 // sp: cells per tick

	Predicted []geo.Point // predicted locations for the coming ticks
	Actual    []geo.Point // ground-truth locations for the coming ticks
	MR        float64     // matching rate of this worker's prediction model
}

// Assigner produces a batch assignment plan from the current task and
// worker pools. tick is the current platform time t_c.
type Assigner interface {
	Name() string
	Assign(tasks []Task, workers []Worker, tick int) []Pair
}

// ContextAssigner is implemented by assigners whose bipartite-graph
// construction runs on a cancellable worker pool (PPI, KM, UB). The matching
// itself stays sequential — KM's augmenting paths are inherently ordered —
// so parallelism only accelerates the O(|tasks|·|workers|·|path|) edge
// generation that dominates large batches.
type ContextAssigner interface {
	Assigner
	AssignContext(ctx context.Context, tasks []Task, workers []Worker, tick int) []Pair
}

// Do runs the assigner on one batch, routing through AssignContext when the
// assigner supports it. A cancelled ctx yields a partial (possibly empty)
// plan; callers are expected to check ctx and discard it.
func Do(ctx context.Context, a Assigner, tasks []Task, workers []Worker, tick int) []Pair {
	if ca, ok := a.(ContextAssigner); ok {
		return ca.AssignContext(ctx, tasks, workers, tick)
	}
	return a.Assign(tasks, workers, tick)
}

// edgeRows builds the bipartite graph with one candidate row per task,
// computed concurrently: fn must return the edges for task ti touching no
// shared state. Rows are index-addressed and concatenated in task order, so
// the edge list — and therefore the matching — is identical at every
// parallelism level.
func edgeRows(ctx context.Context, nTasks, parallelism int, fn func(ti int) []Edge) []Edge {
	rows := make([][]Edge, nTasks)
	par.ForEach(ctx, nTasks, parallelism, func(ti int) error {
		rows[ti] = fn(ti)
		return nil
	})
	var n int
	for _, r := range rows {
		n += len(r)
	}
	edges := make([]Edge, 0, n)
	for _, r := range rows {
		edges = append(edges, r...)
	}
	return edges
}

// reachCap returns min(d/2, d^t) of Theorem 2 for a (worker, task) pair:
// half the worker's detour budget capped by how far the worker can still
// travel before the task's deadline (d^t = sp·(τ.t − t_c)). A task whose
// deadline has already passed yields -1, which no distance satisfies.
func reachCap(w *Worker, t *Task, tick int) float64 {
	if t.Deadline < tick {
		return -1
	}
	dt := w.Speed * float64(t.Deadline-tick)
	half := w.Detour / 2
	if dt < half {
		return dt
	}
	return half
}

// minDistTo returns the minimum distance from any point of path to loc,
// or -1 for an empty path.
func minDistTo(path []geo.Point, loc geo.Point) float64 {
	if len(path) == 0 {
		return -1
	}
	best := path[0].Dist(loc)
	for _, p := range path[1:] {
		if d := p.Dist(loc); d < best {
			best = d
		}
	}
	return best
}

// pairWeight converts a distance into a matching weight: closer tasks get
// larger weights. The small offset keeps weights finite when the task sits
// exactly on the trajectory.
func pairWeight(dist float64) float64 { return 1 / (dist + 0.1) }

// pairWeightFor is the reward-aware edge weight every assigner scores with:
// the task's effective reward per unit of (offset) distance, i.e.
// reward-per-cost. On unrewarded tasks (Reward == 0) it reduces exactly to
// pairWeight, so plans on the paper's workloads are bit-identical to the
// reward-free scoring.
func pairWeightFor(t *Task, dist float64) float64 {
	return t.EffectiveReward() * pairWeight(dist)
}

// EstimatedDetourKM is the platform's predicted out-and-back detour cost of
// assigning t to w, in km: twice the minimum distance from the worker's
// predicted trajectory to the task location (falling back to the current
// location when no forecast exists). The budget gate charges this estimate
// against the per-tick platform budget when deciding which offers to issue.
func EstimatedDetourKM(w *Worker, t *Task) float64 {
	d := minDistTo(w.Predicted, t.Loc)
	if d < 0 {
		d = w.Loc.Dist(t.Loc)
	}
	return geo.CellsToKM(2 * d)
}

// ServeDist is the exact feasibility test a worker applies when deciding to
// accept a task. Crowd workers serve tasks in conjunction with their daily
// routines (§II): walking the true timed itinerary (Actual[i] at tick+i+1),
// is there a point from which the out-and-back detour 2·dis stays within
// the budget d and the task is reached before its deadline? It returns the
// smallest such one-way distance, or -1 when no point qualifies. The real
// detour cost d_c is twice the returned distance.
//
// Note the current location does not count: a worker will not abandon
// their routine to serve a task immediately, which is exactly why the
// location-only LB baseline suffers rejections while the UB oracle —
// assigning with this same predicate — has rejection rate 0 by
// construction (§IV-A).
func ServeDist(w *Worker, t *Task, tick int) float64 {
	best := -1.0
	for i, loc := range w.Actual {
		at := tick + i + 1
		if at > t.Deadline {
			break
		}
		d := loc.Dist(t.Loc)
		if 2*d > w.Detour {
			continue
		}
		if w.Speed <= 0 {
			if d > 0 {
				continue
			}
		} else if float64(at)+d/w.Speed > float64(t.Deadline) {
			continue
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
