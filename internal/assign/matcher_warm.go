package assign

// WarmSlot carries warm-start state for one recurring edge-stream family
// (e.g. PPI stage 1 across ticks): the previous batch's valid-edge stream
// and a ladder of solver checkpoints taken at row boundaries.
//
// The warm start is an exact prefix-resume, not a heuristic reseed. The
// Hungarian solve processes rows in order, and after the sticky-vcap column
// relabelling the solver state after rows 1..r depends only on those rows'
// edges (and the global weight ceiling maxW). So if the next batch's edge
// stream begins with the same rows — byte-identical (task, worker, weight)
// triples — the solve can restore the checkpointed state and re-run only
// the rows past the common prefix. The result is bit-identical to a cold
// Match by construction: it is the same deterministic computation with the
// already-known prefix skipped.
//
// Warm eligibility is gated conservatively; any of the following falls back
// to a cold solve (still through this entry point, so the slot re-arms):
// maxW changed (it enters every reduced cost), the orientation flipped to
// workers-as-rows (the stream is task-grouped, so row blocks are only
// contiguous when tasks are rows), the column capacity grew (labels moved),
// or the stream is not task-grouped.
//
// One fast path sits above all those gates: when the incoming valid-edge
// stream is identical to the previous one, the stored plan is replayed
// outright — the solve is deterministic, so same stream means same matching
// — no matter the orientation or grouping. Quiescent ticks cost O(E) stream
// comparison and nothing else.
type WarmSlot struct {
	valid bool
	maxW  float64
	vcap  int32

	// Previous batch's full result, for the identical-stream replay.
	prevPairs []Pair
	havePairs bool

	// Previous batch's valid-edge stream, task-grouped row-major.
	prevTask, prevWorker []int32
	prevW                []float64

	// Current-batch stream scratch, swapped into prev after each call.
	curTask, curWorker []int32
	curW               []float64

	ckpts  []warmCkpt // increasing rows; entries beyond nCkpts are spare capacity
	nCkpts int
}

// warmCkpt is the solver state after rows 1..rows: the row potentials, plus
// column potentials and matching for every column such a prefix can touch —
// real columns 1..cols (cols = distinct columns in the prefix, dense by
// first-appearance compaction) and virtual columns vcap+1..vcap+rows.
// way/minv/used are per-row scratch, zero at row boundaries.
type warmCkpt struct {
	rows, cols int
	u          []float64 // len rows+1, u[0] unused
	vReal      []float64 // len cols
	pReal      []int32   // len cols
	vVirt      []float64 // len rows
	pVirt      []int32   // len rows
}

// Invalidate drops all warm state; the next MatchWarm runs cold and re-arms.
func (ws *WarmSlot) Invalidate() {
	ws.valid = false
	ws.havePairs = false
	ws.nCkpts = 0
	ws.prevTask = ws.prevTask[:0]
	ws.prevWorker = ws.prevWorker[:0]
	ws.prevW = ws.prevW[:0]
}

// MatchWarm is Match with warm-start bookkeeping through ws: it returns the
// identical matching Match(edges, out) would (the equivalence tests assert
// bit-identity over randomized tick sequences) plus the number of rows
// skipped by checkpoint resume (0 = fully cold). Steady state allocates
// nothing once the slot's buffers have grown to the working set.
func (m *Matcher) MatchWarm(ws *WarmSlot, edges []Edge, out []Pair) ([]Pair, int) {
	mark := len(out)
	if len(edges) == 0 {
		ws.Invalidate()
		return out, 0
	}
	maxW := m.compact(edges)
	if len(m.taskIDs) == 0 {
		ws.Invalidate()
		return out, 0
	}
	transposed := len(m.taskIDs) > len(m.workerIDs)
	nr, nc := m.buildAdjacency(edges, transposed)
	if int32(nc) > m.vcap {
		m.vcap = int32(nc + nc/2 + 8)
	}

	// Record this batch's valid-edge stream and verify it is task-grouped:
	// the k-th distinct task block must hold compaction slot k+1, i.e. rows
	// appear in stream order exactly once.
	ws.curTask = ws.curTask[:0]
	ws.curWorker = ws.curWorker[:0]
	ws.curW = ws.curW[:0]
	grouped := true
	lastTask, rowsSeen := int32(-1), int32(0)
	for i := range edges {
		e := &edges[i]
		if e.Weight <= 0 || e.Task < 0 || e.Worker < 0 {
			continue
		}
		t := int32(e.Task)
		if t != lastTask {
			rowsSeen++
			if m.taskSlot[t] != rowsSeen {
				grouped = false
			}
			lastTask = t
		}
		ws.curTask = append(ws.curTask, t)
		ws.curWorker = append(ws.curWorker, int32(e.Worker))
		ws.curW = append(ws.curW, e.Weight)
	}

	// Identical stream: replay the stored plan without solving. Invalid
	// edges never reach the stream or the solver, so stream equality is
	// result equality; this path needs none of the orientation/grouping
	// gates below.
	if ws.havePairs && ws.sameStream() {
		m.resetSlots()
		ws.prevTask, ws.curTask = ws.curTask, ws.prevTask
		ws.prevWorker, ws.curWorker = ws.curWorker, ws.prevWorker
		ws.prevW, ws.curW = ws.curW, ws.prevW
		return append(out, ws.prevPairs...), int(rowsSeen)
	}

	warmOK := ws.valid && !transposed && grouped &&
		maxW == ws.maxW && m.vcap == ws.vcap
	prefix := 0
	if warmOK {
		prefix = ws.prefixRows()
	}
	// Retain the checkpoints the common prefix keeps valid (they describe
	// identical computations in this batch) and resume from the deepest.
	ws.truncate(prefix)
	m.initPotentials(nr, nc)
	start, maxCol := 1, 0
	if ws.nCkpts > 0 {
		ck := &ws.ckpts[ws.nCkpts-1]
		copy(m.u[1:ck.rows+1], ck.u[1:])
		for j := 1; j <= ck.cols; j++ {
			m.v[j] = ck.vReal[j-1]
			m.p[j] = ck.pReal[j-1]
		}
		for i := 1; i <= ck.rows; i++ {
			jv := int(m.vcap) + i
			m.v[jv] = ck.vVirt[i-1]
			m.p[jv] = ck.pVirt[i-1]
		}
		start = ck.rows + 1
		maxCol = ck.cols
	}
	warmRows := start - 1

	// Run the remaining rows, dropping checkpoints at interval boundaries
	// (and at the final row, so an unchanged batch resumes past everything).
	g := nr / 8
	if g < 16 {
		g = 16
	}
	for i := start; i <= nr; i++ {
		m.runRow(i, maxW)
		for k := m.rowStart[i-1]; k < m.rowEnd[i-1]; k++ {
			if c := int(m.adjCol[k]) + 1; c > maxCol {
				maxCol = c
			}
		}
		if (i%g == 0 || i == nr) && !transposed && grouped {
			ws.pushCkpt(m, i, maxCol)
		}
	}

	out = m.extract(out, nc, transposed)
	m.resetSlots()

	// Re-arm the slot for the next batch: the current stream becomes the
	// comparison baseline (buffer swap, no copy).
	ws.valid = !transposed && grouped
	if !ws.valid {
		ws.nCkpts = 0
	}
	ws.maxW = maxW
	ws.vcap = m.vcap
	ws.prevTask, ws.curTask = ws.curTask, ws.prevTask
	ws.prevWorker, ws.curWorker = ws.curWorker, ws.prevWorker
	ws.prevW, ws.curW = ws.curW, ws.prevW
	ws.prevPairs = append(ws.prevPairs[:0], out[mark:]...)
	ws.havePairs = true
	return out, warmRows
}

// sameStream reports whether the current valid-edge stream equals the
// previous one exactly (NaN weights compare unequal, keeping the replay
// conservative on poisoned batches).
func (ws *WarmSlot) sameStream() bool {
	if len(ws.curTask) != len(ws.prevTask) {
		return false
	}
	for i := range ws.curTask {
		if ws.curTask[i] != ws.prevTask[i] ||
			ws.curWorker[i] != ws.prevWorker[i] || ws.curW[i] != ws.prevW[i] {
			return false
		}
	}
	return true
}

// prefixRows counts the leading rows (task blocks) on which the previous
// and current streams agree exactly. A row counts only when it is complete
// in both streams: a block that one stream extends with more edges of the
// same task is not a common row.
func (ws *WarmSlot) prefixRows() int {
	q, lim := 0, len(ws.curTask)
	if len(ws.prevTask) < lim {
		lim = len(ws.prevTask)
	}
	for q < lim && ws.curTask[q] == ws.prevTask[q] &&
		ws.curWorker[q] == ws.prevWorker[q] && ws.curW[q] == ws.prevW[q] {
		q++
	}
	rows := 0
	for s := 0; s < q; {
		t := ws.curTask[s]
		e := s + 1
		for e < len(ws.curTask) && ws.curTask[e] == t {
			e++
		}
		if e > q {
			break // the divergence falls inside this block
		}
		if e == q {
			// Block ends exactly at the divergence point: complete only if
			// neither stream continues the same task there.
			if (q < len(ws.curTask) && ws.curTask[q] == t) ||
				(q < len(ws.prevTask) && ws.prevTask[q] == t) {
				break
			}
		}
		rows++
		s = e
	}
	return rows
}

// truncate drops checkpoints deeper than the given row prefix.
func (ws *WarmSlot) truncate(prefix int) {
	for ws.nCkpts > 0 && ws.ckpts[ws.nCkpts-1].rows > prefix {
		ws.nCkpts--
	}
}

// pushCkpt snapshots the solver state after rows 1..rows with cols distinct
// real columns, reusing spare entries (and their buffers) past nCkpts.
func (ws *WarmSlot) pushCkpt(m *Matcher, rows, cols int) {
	if ws.nCkpts > 0 && ws.ckpts[ws.nCkpts-1].rows == rows {
		return // identical state already on the ladder (resumed batch)
	}
	if ws.nCkpts == len(ws.ckpts) {
		ws.ckpts = append(ws.ckpts, warmCkpt{})
	}
	ck := &ws.ckpts[ws.nCkpts]
	ws.nCkpts++
	ck.rows, ck.cols = rows, cols
	ck.u = growFloats(ck.u, rows+1)
	copy(ck.u, m.u[:rows+1])
	ck.vReal = growFloats(ck.vReal, cols)
	copy(ck.vReal, m.v[1:cols+1])
	ck.pReal = growInt32s(ck.pReal, cols)
	copy(ck.pReal, m.p[1:cols+1])
	ck.vVirt = growFloats(ck.vVirt, rows)
	ck.pVirt = growInt32s(ck.pVirt, rows)
	for i := 1; i <= rows; i++ {
		jv := int(m.vcap) + i
		ck.vVirt[i-1] = m.v[jv]
		ck.pVirt[i-1] = m.p[jv]
	}
}
