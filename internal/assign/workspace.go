package assign

import (
	"context"
	"math"
	"sync/atomic"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
)

// Workspace owns the reusable per-assigner scratch: the spatial candidate
// index rebuilt each batch and the sparse-KM Matcher. Long-lived callers
// (the platform simulator, which runs one batch per tick for the whole
// horizon) create one Workspace and thread it through the context so index
// buckets and KM arrays are recycled across ticks instead of reallocated;
// assigners invoked without one fall back to a fresh workspace per call.
//
// A Workspace serializes one assignment at a time: the assigner that owns it
// builds the index, then fans out read-only queries. It must not be shared
// between concurrently running assigners.
type Workspace struct {
	idx geo.GridIndex
	m   Matcher
	all []int32
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

type wsCtxKey struct{}

// WithWorkspace returns a context carrying ws; assigners invoked with it
// (via Do/AssignContext) reuse ws's index and matcher buffers.
func WithWorkspace(ctx context.Context, ws *Workspace) context.Context {
	return context.WithValue(ctx, wsCtxKey{}, ws)
}

// workspaceFor returns the context's workspace, or a fresh one.
func workspaceFor(ctx context.Context) *Workspace {
	if ws, ok := ctx.Value(wsCtxKey{}).(*Workspace); ok {
		return ws
	}
	return &Workspace{}
}

// candidateView enumerates, for a task location, the workers whose reach
// disk can intersect it — either every worker (brute-force oracle path) or
// only the grid bucket the task falls in (indexed path). Both enumerate in
// ascending worker order, so downstream edge lists are identical either way.
type candidateView struct {
	idx *geo.GridIndex // nil: no pruning
	all []int32
}

func (cv candidateView) at(loc geo.Point) []int32 {
	if cv.idx == nil || math.IsNaN(loc.X) || math.IsNaN(loc.Y) {
		// A NaN task location defeats every distance comparison, so the brute
		// predicates can accept workers arbitrarily far away; scan them all.
		return cv.all
	}
	return cv.idx.Candidates(loc)
}

// indexMinWorkers is the batch size below which the index rebuild costs more
// than the scan it prunes; smaller batches take the identical-plan brute
// path. The threshold only moves work between equivalent code paths — plans
// are bit-identical on both sides of it.
const indexMinWorkers = 16

// buildCandidateView rebuilds ws's grid index over the workers' reach
// envelopes (envelope(i) pads worker i's point set by its reach radius) and
// returns the pruned view; brute, small batches, cancellation, or a
// non-finite envelope (infinite detour, NaN trajectory points) fall back to
// the full scan. The rebuild fans out on the par pool and records under the
// "index" span.
func buildCandidateView(ctx context.Context, ws *Workspace, nWorkers, parallelism int, brute bool, envelope func(i int) (geo.BBox, bool)) candidateView {
	ws.all = identity(ws.all, nWorkers)
	if brute || nWorkers < indexMinWorkers {
		return candidateView{all: ws.all}
	}
	_, end := obs.Span(ctx, "index")
	defer end()
	var unbounded atomic.Bool
	err := ws.idx.Build(ctx, nWorkers, parallelism, func(i int) (geo.BBox, bool) {
		b, ok := envelope(i)
		if ok && !finiteEnvelope(b) {
			// A worker whose reach disk is unbounded (infinite detour, or NaN
			// points whose sticky comparisons defeat the distance caps) can
			// match anywhere; no grid cell can hold it, so the whole batch
			// must scan.
			unbounded.Store(true)
			return b, false
		}
		return b, ok
	})
	if err != nil || unbounded.Load() {
		return candidateView{all: ws.all}
	}
	return candidateView{idx: &ws.idx, all: ws.all}
}

// pointsEnvelope is the reach envelope of a worker over the given point set:
// the bounding box of its points expanded by detour/2, the ceiling of
// Theorem 2's reach cap min(d/2, dᵗ). Every task a feasibility predicate can
// accept for this worker lies inside the envelope, so pruning to the
// envelope's grid cells never drops a feasible pair. ok=false (no points)
// removes the worker from the index entirely — exactly the pairs the brute
// scan also rejects. A non-finite point poisons the scan predicates through
// sticky NaN comparisons (minDistTo/ServeDist can then accept the worker for
// a task at any distance), so it makes the envelope non-finite, which
// buildCandidateView turns into the whole-batch brute fallback.
func pointsEnvelope(pts []geo.Point, detour float64) (geo.BBox, bool) {
	if len(pts) == 0 {
		return geo.BBox{}, false
	}
	r := detour / 2
	if !(r > 0) { // negative or NaN detour: a zero-radius disk still matches d=0
		r = 0
	}
	b := geo.BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
	}
	b.Min.X -= r
	b.Min.Y -= r
	b.Max.X += r
	b.Max.Y += r
	return b, true
}

func finiteEnvelope(b geo.BBox) bool {
	fin := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	return fin(b.Min.X) && fin(b.Min.Y) && fin(b.Max.X) && fin(b.Max.Y)
}

// predictedEnvelope / actualEnvelope / locEnvelope adapt the three worker
// point sets the assigners prune on.
func predictedEnvelope(workers []Worker) func(i int) (geo.BBox, bool) {
	return func(i int) (geo.BBox, bool) {
		return pointsEnvelope(workers[i].Predicted, workers[i].Detour)
	}
}

func actualEnvelope(workers []Worker) func(i int) (geo.BBox, bool) {
	return func(i int) (geo.BBox, bool) {
		return pointsEnvelope(workers[i].Actual, workers[i].Detour)
	}
}

func locEnvelope(workers []Worker) func(i int) (geo.BBox, bool) {
	return func(i int) (geo.BBox, bool) {
		w := &workers[i]
		pt := [1]geo.Point{w.Loc}
		return pointsEnvelope(pt[:], w.Detour)
	}
}

// identity returns [0, 1, …, n) in buf's storage.
func identity(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}
