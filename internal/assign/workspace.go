package assign

import (
	"context"
	"math"
	"sync/atomic"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
)

// Workspace owns the reusable per-assigner scratch: the spatial candidate
// index rebuilt each batch and the sparse-KM Matcher. Long-lived callers
// (the platform simulator, which runs one batch per tick for the whole
// horizon) create one Workspace and thread it through the context so index
// buckets and KM arrays are recycled across ticks instead of reallocated;
// assigners invoked without one fall back to a fresh workspace per call.
//
// A Workspace serializes one assignment at a time: the assigner that owns it
// builds the index, then fans out read-only queries. It must not be shared
// between concurrently running assigners.
type Workspace struct {
	idx geo.GridIndex
	m   Matcher
	all []int32

	// Warm-start state for the recurring stage-1 KM stream (see WarmSlot):
	// persists row/column potentials and the previous matching across
	// batches, so a long-lived workspace warm-starts ticks whose confident
	// edges mostly survive. One-shot workspaces just run cold.
	warm WarmSlot

	// pending is the stage-2 candidate buffer, reused across batches.
	pending []candidate

	// Warm/cold accounting for the serving tier's /api/metrics.
	lastWarmRows int
	warmBatches  uint64
	coldBatches  uint64
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// noteWarm records one stage-1 solve's warm-start depth.
func (ws *Workspace) noteWarm(rows int) {
	ws.lastWarmRows = rows
	if rows > 0 {
		ws.warmBatches++
	} else {
		ws.coldBatches++
	}
}

// WarmStats reports how deep the last batch's KM warm start reached (rows
// of the confident-edge solve resumed from checkpoints; 0 = cold) and the
// cumulative warm/cold batch split since the workspace was created.
func (ws *Workspace) WarmStats() (lastWarmRows int, warmBatches, coldBatches uint64) {
	return ws.lastWarmRows, ws.warmBatches, ws.coldBatches
}

type wsCtxKey struct{}

// WithWorkspace returns a context carrying ws; assigners invoked with it
// (via Do/AssignContext) reuse ws's index and matcher buffers.
func WithWorkspace(ctx context.Context, ws *Workspace) context.Context {
	return context.WithValue(ctx, wsCtxKey{}, ws)
}

// workspaceFor returns the context's workspace, or a fresh one.
func workspaceFor(ctx context.Context) *Workspace {
	if ws, ok := ctx.Value(wsCtxKey{}).(*Workspace); ok {
		return ws
	}
	return &Workspace{}
}

// candidateView enumerates, for a task location, the workers whose reach
// disk can intersect it — either every worker (brute-force oracle path) or
// only the grid bucket the task falls in (indexed path). Both enumerate in
// ascending worker order, so downstream edge lists are identical either way.
type candidateView struct {
	idx *geo.GridIndex // nil: no pruning
	all []int32
}

// iter returns the candidate iterator for a task location: the grid bucket
// merged with the overflow list (oversize envelopes kept off the grid), in
// ascending worker order — the same order the brute scan walks.
func (cv candidateView) iter(loc geo.Point) candIter {
	if cv.idx == nil || math.IsNaN(loc.X) || math.IsNaN(loc.Y) {
		// A NaN task location defeats every distance comparison, so the brute
		// predicates can accept workers arbitrarily far away; scan them all.
		return candIter{a: cv.all}
	}
	return candIter{a: cv.idx.Candidates(loc), b: cv.idx.Overflow()}
}

// candIter merges two ascending, disjoint id streams (grid bucket and
// overflow list) into one ascending scan without materializing the union.
type candIter struct {
	a, b []int32
	i, j int
}

// next returns the smallest unconsumed id, or ok=false when exhausted.
func (it *candIter) next() (int32, bool) {
	if it.i < len(it.a) {
		if it.j < len(it.b) && it.b[it.j] < it.a[it.i] {
			v := it.b[it.j]
			it.j++
			return v, true
		}
		v := it.a[it.i]
		it.i++
		return v, true
	}
	if it.j < len(it.b) {
		v := it.b[it.j]
		it.j++
		return v, true
	}
	return 0, false
}

// total is the number of ids the full scan will visit (streams are
// disjoint by construction).
func (it candIter) total() int { return len(it.a) + len(it.b) }

// indexMinWorkers is the batch size below which the index rebuild costs more
// than the scan it prunes; smaller batches take the identical-plan brute
// path. The threshold only moves work between equivalent code paths — plans
// are bit-identical on both sides of it.
const indexMinWorkers = 16

// buildCandidateView rebuilds ws's grid index over the workers' reach
// envelopes (envelope(i) pads worker i's point set by its reach radius) and
// returns the pruned view; brute, small batches, cancellation, or a
// non-finite envelope (infinite detour, NaN trajectory points) fall back to
// the full scan. The rebuild fans out on the par pool and records under the
// "index" span.
func buildCandidateView(ctx context.Context, ws *Workspace, nWorkers, parallelism int, brute bool, envelope func(i int) (geo.BBox, bool)) candidateView {
	ws.all = identity(ws.all, nWorkers)
	if brute || nWorkers < indexMinWorkers {
		return candidateView{all: ws.all}
	}
	_, end := obs.Span(ctx, "index")
	defer end()
	var unbounded atomic.Bool
	err := ws.idx.Build(ctx, nWorkers, parallelism, func(i int) (geo.BBox, bool) {
		b, ok := envelope(i)
		if ok && !finiteEnvelope(b) {
			// A worker whose reach disk is unbounded (infinite detour, or NaN
			// points whose sticky comparisons defeat the distance caps) can
			// match anywhere; no grid cell can hold it, so the whole batch
			// must scan.
			unbounded.Store(true)
			return b, false
		}
		return b, ok
	})
	if err != nil || unbounded.Load() {
		return candidateView{all: ws.all}
	}
	edgeCountersFor(obs.RegistryFrom(ctx)).idxRebuilds.Add(1)
	return candidateView{idx: &ws.idx, all: ws.all}
}

// pointsEnvelope is the reach envelope of a worker over the given point set:
// the bounding box of its points expanded by detour/2, the ceiling of
// Theorem 2's reach cap min(d/2, dᵗ). Every task a feasibility predicate can
// accept for this worker lies inside the envelope, so pruning to the
// envelope's grid cells never drops a feasible pair. ok=false (no points)
// removes the worker from the index entirely — exactly the pairs the brute
// scan also rejects. A non-finite point poisons the scan predicates through
// sticky NaN comparisons (minDistTo/ServeDist can then accept the worker for
// a task at any distance), so it makes the envelope non-finite, which
// buildCandidateView turns into the whole-batch brute fallback.
func pointsEnvelope(pts []geo.Point, detour float64) (geo.BBox, bool) {
	if len(pts) == 0 {
		return geo.BBox{}, false
	}
	r := detour / 2
	if !(r > 0) { // negative or NaN detour: a zero-radius disk still matches d=0
		r = 0
	}
	b := geo.BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b.Min.X = math.Min(b.Min.X, p.X)
		b.Min.Y = math.Min(b.Min.Y, p.Y)
		b.Max.X = math.Max(b.Max.X, p.X)
		b.Max.Y = math.Max(b.Max.Y, p.Y)
	}
	b.Min.X -= r
	b.Min.Y -= r
	b.Max.X += r
	b.Max.Y += r
	return b, true
}

func finiteEnvelope(b geo.BBox) bool {
	fin := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	return fin(b.Min.X) && fin(b.Min.Y) && fin(b.Max.X) && fin(b.Max.Y)
}

// predictedEnvelope / actualEnvelope / locEnvelope adapt the three worker
// point sets the assigners prune on.
func predictedEnvelope(workers []Worker) func(i int) (geo.BBox, bool) {
	return func(i int) (geo.BBox, bool) {
		return pointsEnvelope(workers[i].Predicted, workers[i].Detour)
	}
}

func actualEnvelope(workers []Worker) func(i int) (geo.BBox, bool) {
	return func(i int) (geo.BBox, bool) {
		return pointsEnvelope(workers[i].Actual, workers[i].Detour)
	}
}

func locEnvelope(workers []Worker) func(i int) (geo.BBox, bool) {
	return func(i int) (geo.BBox, bool) {
		w := &workers[i]
		pt := [1]geo.Point{w.Loc}
		return pointsEnvelope(pt[:], w.Detour)
	}
}

// identity returns [0, 1, …, n) in buf's storage.
func identity(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}
