package assign

import (
	"context"
	"math/rand"
	"sort"

	"github.com/spatialcrowd/tamp/internal/obs"
)

// KM is the plain prediction-based baseline: build the bipartite graph the
// way PPI's third stage does (every pair whose predicted-trajectory minimum
// distance satisfies the detour and deadline caps) and solve one global
// maximum-weight matching.
type KM struct {
	// Parallelism bounds the edge-construction pool used by AssignContext
	// (0 = GOMAXPROCS).
	Parallelism int
	// BruteForce disables the spatial candidate index (see PPI.BruteForce);
	// the plan is bit-identical either way.
	BruteForce bool
}

// Name implements Assigner.
func (KM) Name() string { return "KM" }

// Assign implements Assigner.
func (k KM) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	return k.AssignContext(context.Background(), tasks, workers, tick)
}

// AssignContext implements ContextAssigner: candidate edges are generated
// one task row per pool goroutine; the matching is sequential.
func (k KM) AssignContext(ctx context.Context, tasks []Task, workers []Worker, tick int) []Pair {
	return matchByPath(ctx, tasks, workers, tick, k.Parallelism, k.BruteForce)
}

// UB is the oracle upper bound: it checks the exact acceptance predicate
// (ServeDist) against the workers' true timed trajectories, so every
// assignment it makes is accepted and its rejection rate is 0 by
// construction.
type UB struct {
	// Parallelism bounds the edge-construction pool used by AssignContext
	// (0 = GOMAXPROCS).
	Parallelism int
	// BruteForce disables the spatial candidate index (see PPI.BruteForce);
	// the plan is bit-identical either way.
	BruteForce bool
}

// Name implements Assigner.
func (UB) Name() string { return "UB" }

// Assign implements Assigner.
func (u UB) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	return u.AssignContext(context.Background(), tasks, workers, tick)
}

// AssignContext implements ContextAssigner. ServeDist accepts a point only
// when the out-and-back detour 2·dis fits the budget d, i.e. dis ≤ d/2 —
// inside the reach envelope of the worker's true trajectory — so the index
// prunes soundly for the oracle too.
func (u UB) AssignContext(ctx context.Context, tasks []Task, workers []Worker, tick int) []Pair {
	ws := workspaceFor(ctx)
	cv := buildCandidateView(ctx, ws, len(workers), u.Parallelism, u.BruteForce, actualEnvelope(workers))
	edges := edgeRows(ctx, len(tasks), u.Parallelism, func(ti int) []Edge {
		var row []Edge
		it := cv.iter(tasks[ti].Loc)
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			if tasks[ti].ExcludedWorker(workers[wi].ID) {
				continue
			}
			d := ServeDist(&workers[wi], &tasks[ti], tick)
			if d >= 0 {
				row = append(row, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(&tasks[ti], 2*d)})
			}
		}
		return row
	})
	return ws.m.Match(edges, nil)
}

// matchByPath builds edges from predicted-trajectory-to-task distances
// under the Theorem-2 feasibility cap and solves one KM matching. The two
// stages — edge construction and the Hungarian matching — are timed as
// separate spans, and the graph size lands in tamp_assign_edges_total.
func matchByPath(ctx context.Context, tasks []Task, workers []Worker, tick, parallelism int, brute bool) []Pair {
	ctx, endKM := obs.Span(ctx, "assign.km")
	defer endKM()
	ec := edgeCountersFor(obs.RegistryFrom(ctx))
	ws := workspaceFor(ctx)
	cv := buildCandidateView(ctx, ws, len(workers), parallelism, brute, predictedEnvelope(workers))
	_, endEdges := obs.Span(ctx, "edges")
	visited := make([]int, len(tasks))
	edges := edgeRows(ctx, len(tasks), parallelism, func(ti int) []Edge {
		var row []Edge
		it := cv.iter(tasks[ti].Loc)
		visited[ti] = it.total()
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			dmin := minDistTo(w.Predicted, tasks[ti].Loc)
			if dmin < 0 {
				continue
			}
			if dmin <= reachCap(w, &tasks[ti], tick) {
				row = append(row, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(&tasks[ti], dmin)})
			}
		}
		return row
	})
	endEdges()
	var nVisited int
	for _, v := range visited {
		nVisited += v
	}
	ec.km.Add(int64(len(edges)))
	ec.kmCandidates.Add(int64(nVisited))
	ec.kmPruned.Add(int64(len(tasks)*len(workers) - nVisited))
	var pairs []Pair
	obs.Time(ctx, "match", func() { pairs = ws.m.Match(edges, nil) })
	return pairs
}

// LB is the lower bound: the bipartite graph is generated only from each
// worker's current location, ignoring mobility entirely.
type LB struct {
	// BruteForce disables the spatial candidate index (see PPI.BruteForce);
	// the plan is bit-identical either way.
	BruteForce bool
}

// Name implements Assigner.
func (LB) Name() string { return "LB" }

// Assign implements Assigner.
func (l LB) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	ctx := context.Background()
	ws := workspaceFor(ctx)
	cv := buildCandidateView(ctx, ws, len(workers), 1, l.BruteForce, locEnvelope(workers))
	edges := edgeRows(ctx, len(tasks), 1, func(ti int) []Edge {
		var row []Edge
		it := cv.iter(tasks[ti].Loc)
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			d := w.Loc.Dist(tasks[ti].Loc)
			if d <= reachCap(w, &tasks[ti], tick) {
				row = append(row, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(&tasks[ti], d)})
			}
		}
		return row
	})
	return ws.m.Match(edges, nil)
}

// GGPSO is the genetic task assignment baseline of Zhang & Zhang [11]: it
// searches the space of assignment plans with iterative crossover, mutation,
// and selection over the prediction-feasible candidate edges.
type GGPSO struct {
	// Population is the number of chromosomes (default 40).
	Population int
	// Generations is the number of evolution rounds (default 60).
	Generations int
	// MutationRate is the per-gene mutation probability (default 0.1).
	MutationRate float64
	// Seed drives the random search; the zero seed is valid.
	Seed int64
	// BruteForce disables the spatial candidate index for the candidate-list
	// construction. The candidate lists — and therefore the rng call
	// sequence and the evolved plan — are identical either way.
	BruteForce bool
}

// Name implements Assigner.
func (GGPSO) Name() string { return "GGPSO" }

// chromosome maps each task index to a worker index (-1 = unassigned).
type chromosome []int

// Assign implements Assigner.
func (g GGPSO) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	pop := g.Population
	if pop <= 0 {
		pop = 40
	}
	gens := g.Generations
	if gens <= 0 {
		gens = 60
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.1
	}
	rng := rand.New(rand.NewSource(g.Seed + 1))

	// Candidate workers (with weights) per task, from the same
	// prediction-feasibility graph the KM baseline uses. The index only
	// skips workers the feasibility cap would reject anyway, so the lists —
	// and the rng draws over them — do not depend on it.
	ctx := context.Background()
	ws := workspaceFor(ctx)
	cv := buildCandidateView(ctx, ws, len(workers), 1, g.BruteForce, predictedEnvelope(workers))
	cands := make([][]Edge, len(tasks))
	for ti := range tasks {
		it := cv.iter(tasks[ti].Loc)
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			dmin := minDistTo(w.Predicted, tasks[ti].Loc)
			if dmin < 0 {
				continue
			}
			if dmin <= reachCap(w, &tasks[ti], tick) {
				cands[ti] = append(cands[ti], Edge{Task: ti, Worker: wi, Weight: pairWeightFor(&tasks[ti], dmin)})
			}
		}
	}

	// One shared occupancy scratch serves newChrom and repair: zeroed on
	// entry instead of reallocated, without touching the rng call sequence.
	used := make([]bool, len(workers))
	clearUsed := func() {
		for i := range used {
			used[i] = false
		}
	}
	newChrom := func(c chromosome) {
		clearUsed()
		for _, ti := range rng.Perm(len(tasks)) {
			c[ti] = -1
			if len(cands[ti]) == 0 {
				continue
			}
			e := cands[ti][rng.Intn(len(cands[ti]))]
			if !used[e.Worker] {
				c[ti] = e.Worker
				used[e.Worker] = true
			}
		}
	}
	fitness := func(c chromosome) float64 {
		var f float64
		for ti, wi := range c {
			if wi < 0 {
				continue
			}
			for _, e := range cands[ti] {
				if e.Worker == wi {
					f += e.Weight
					break
				}
			}
		}
		return f
	}
	repair := func(c chromosome) {
		clearUsed()
		for ti, wi := range c {
			if wi < 0 {
				continue
			}
			if used[wi] {
				c[ti] = -1
				continue
			}
			used[wi] = true
		}
	}

	// Two generation buffers, swapped each round: the search runs without
	// per-generation chromosome allocations.
	popn := make([]chromosome, pop)
	next := make([]chromosome, pop)
	fits := make([]float64, pop)
	for i := range popn {
		popn[i] = make(chromosome, len(tasks))
		next[i] = make(chromosome, len(tasks))
		newChrom(popn[i])
		fits[i] = fitness(popn[i])
	}
	best := append(chromosome(nil), popn[0]...)
	bestFit := fits[0]

	for gen := 0; gen < gens; gen++ {
		for ci := 0; ci < pop; ci++ {
			// Tournament selection of two parents.
			pa := tournament(rng, fits)
			pb := tournament(rng, fits)
			child := next[ci]
			for ti := range child {
				if rng.Intn(2) == 0 {
					child[ti] = popn[pa][ti]
				} else {
					child[ti] = popn[pb][ti]
				}
				// Mutation: re-draw from the candidate list or drop.
				if rng.Float64() < mut {
					if len(cands[ti]) > 0 && rng.Float64() < 0.8 {
						child[ti] = cands[ti][rng.Intn(len(cands[ti]))].Worker
					} else {
						child[ti] = -1
					}
				}
			}
			repair(child)
		}
		popn, next = next, popn
		for i := range popn {
			fits[i] = fitness(popn[i])
			if fits[i] > bestFit {
				bestFit = fits[i]
				best = append(best[:0], popn[i]...)
			}
		}
	}

	var out []Pair
	for ti, wi := range best {
		if wi < 0 {
			continue
		}
		for _, e := range cands[ti] {
			if e.Worker == wi {
				out = append(out, Pair{Task: ti, Worker: wi, Weight: e.Weight})
				break
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Task < out[b].Task })
	return out
}

func tournament(rng *rand.Rand, fits []float64) int {
	a, b := rng.Intn(len(fits)), rng.Intn(len(fits))
	if fits[a] >= fits[b] {
		return a
	}
	return b
}
