package assign

import (
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func TestGreedyFeasibleAndDisjoint(t *testing.T) {
	tasks := []Task{
		{ID: 0, Loc: geo.Pt(5, 0), Deadline: 20},
		{ID: 1, Loc: geo.Pt(6, 0), Deadline: 10},   // tighter deadline: assigned first
		{ID: 2, Loc: geo.Pt(90, 40), Deadline: 20}, // unreachable
	}
	workers := []Worker{
		{ID: 1, Loc: geo.Pt(0, 0), Detour: 8, Speed: 2, Predicted: []geo.Point{geo.Pt(4, 0), geo.Pt(5, 0)}},
		{ID: 2, Loc: geo.Pt(1, 0), Detour: 8, Speed: 2, Predicted: []geo.Point{geo.Pt(6, 0), geo.Pt(7, 0)}},
	}
	pairs := Greedy{}.Assign(tasks, workers, 0)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %+v, want 2", pairs)
	}
	seenW := map[int]bool{}
	seenT := map[int]bool{}
	for _, p := range pairs {
		if seenW[p.Worker] || seenT[p.Task] {
			t.Fatalf("greedy reused a task or worker: %+v", pairs)
		}
		seenW[p.Worker], seenT[p.Task] = true, true
		if p.Task == 2 {
			t.Fatalf("assigned unreachable task: %+v", pairs)
		}
	}
	// The tight-deadline task picked its nearest worker (worker index 1,
	// whose path touches (6,0)).
	for _, p := range pairs {
		if p.Task == 1 && p.Worker != 1 {
			t.Errorf("task 1 matched worker %d, want nearest worker 1", p.Worker)
		}
	}
}

func TestGreedyRespectsExclusions(t *testing.T) {
	tasks := []Task{{ID: 0, Loc: geo.Pt(3, 0), Deadline: 20, Excluded: []int{7}}}
	workers := []Worker{{ID: 7, Loc: geo.Pt(0, 0), Detour: 10, Speed: 2, Predicted: []geo.Point{geo.Pt(3, 0)}}}
	if pairs := (Greedy{}).Assign(tasks, workers, 0); len(pairs) != 0 {
		t.Fatalf("greedy re-offered a declined pair: %+v", pairs)
	}
}

func TestGreedyEmptyInputs(t *testing.T) {
	if pairs := (Greedy{}).Assign(nil, nil, 0); len(pairs) != 0 {
		t.Fatalf("pairs = %+v", pairs)
	}
}
