package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// churnWorld drives a Session through randomized population churn while
// keeping enough regularity (positive speeds, finite detours in the calm
// mode) that row caches have a chance to survive ticks.
type churnWorld struct {
	rng       *rand.Rand
	hostile   bool
	taskIDs   []int
	workerIDs []int
	nextTask  int
	nextWork  int
}

func (cw *churnWorld) newWorker(id int) Worker {
	rng := cw.rng
	x, y := rng.Float64()*100, rng.Float64()*60
	steps := 2 + rng.Intn(8)
	pred := make([]geo.Point, 0, steps)
	act := make([]geo.Point, 0, steps)
	px, py := x, y
	for j := 0; j < steps; j++ {
		px += rng.NormFloat64() * 1.5
		py += rng.NormFloat64() * 1.5
		p := geo.Pt(px, py)
		if cw.hostile && rng.Float64() < 0.02 {
			p = geo.Pt(math.NaN(), py)
		}
		pred = append(pred, p)
		act = append(act, geo.Pt(px+rng.NormFloat64()*0.5, py))
	}
	detour := 2 + rng.Float64()*8
	speed := 0.5 + rng.Float64()*1.5
	if cw.hostile {
		switch rng.Intn(10) {
		case 0:
			detour = math.Inf(1) // flips the whole session into scan mode
		case 1:
			detour = 0
		case 2:
			speed = 0
		}
	}
	return Worker{
		ID: id, Loc: geo.Pt(x, y), Detour: detour, Speed: speed,
		Predicted: pred, Actual: act, MR: rng.Float64() * 1.2,
	}
}

func (cw *churnWorld) newTask(id, tick int) Task {
	rng := cw.rng
	t := Task{
		ID:       id,
		Loc:      geo.Pt(rng.Float64()*100, rng.Float64()*60),
		Deadline: tick + 10 + rng.Intn(30),
	}
	if cw.hostile && rng.Intn(12) == 0 {
		t.Deadline = tick - 1 - rng.Intn(3)
	}
	if cw.hostile && rng.Intn(15) == 0 {
		t.Loc = geo.Pt(math.NaN(), t.Loc.Y)
	}
	for _, wid := range cw.workerIDs {
		if rng.Float64() < 0.03 {
			t.Excluded = append(t.Excluded, wid)
		}
	}
	return t
}

// seedWorld populates the session with an initial batch.
func (cw *churnWorld) seed(s *Session, nT, nW int) {
	for i := 0; i < nW; i++ {
		id := cw.nextWork
		cw.nextWork++
		cw.workerIDs = append(cw.workerIDs, id)
		s.UpsertWorker(cw.newWorker(id))
	}
	for i := 0; i < nT; i++ {
		id := cw.nextTask
		cw.nextTask++
		cw.taskIDs = append(cw.taskIDs, id)
		s.UpsertTask(cw.newTask(id, 0))
	}
}

// churn applies one tick's worth of random mutations: worker moves, worker
// arrivals/departures, task arrivals/completions/edits.
func (cw *churnWorld) churn(s *Session, tick int, ops int) {
	rng := cw.rng
	for k := 0; k < ops; k++ {
		switch rng.Intn(10) {
		case 0: // worker arrives
			id := cw.nextWork
			cw.nextWork++
			cw.workerIDs = append(cw.workerIDs, id)
			s.UpsertWorker(cw.newWorker(id))
		case 1: // worker departs
			if len(cw.workerIDs) > 1 {
				i := rng.Intn(len(cw.workerIDs))
				s.RemoveWorker(cw.workerIDs[i])
				cw.workerIDs[i] = cw.workerIDs[len(cw.workerIDs)-1]
				cw.workerIDs = cw.workerIDs[:len(cw.workerIDs)-1]
			}
		case 2, 3, 4: // worker moves (fresh trajectories, same id)
			if len(cw.workerIDs) > 0 {
				id := cw.workerIDs[rng.Intn(len(cw.workerIDs))]
				s.UpsertWorker(cw.newWorker(id))
			}
		case 5: // task arrives
			id := cw.nextTask
			cw.nextTask++
			cw.taskIDs = append(cw.taskIDs, id)
			s.UpsertTask(cw.newTask(id, tick))
		case 6: // task completes or expires
			if len(cw.taskIDs) > 1 {
				i := rng.Intn(len(cw.taskIDs))
				s.RemoveTask(cw.taskIDs[i])
				cw.taskIDs[i] = cw.taskIDs[len(cw.taskIDs)-1]
				cw.taskIDs = cw.taskIDs[:len(cw.taskIDs)-1]
			}
		case 7: // task edited in place
			if len(cw.taskIDs) > 0 {
				id := cw.taskIDs[rng.Intn(len(cw.taskIDs))]
				s.UpsertTask(cw.newTask(id, tick))
			}
		default: // quiet op — most of the fleet holds still
		}
	}
}

// TestSessionMatchesFromScratchPPI is the incremental engine's contract:
// after every tick of randomized churn, Session.Assign must return exactly
// the plan a from-scratch PPI (fresh workspace: fresh index Build, cold KM)
// produces over the same task/worker arrays — at parallelism 1 and 8, in
// calm and hostile (NaN, infinite-detour, expired, tiny-fleet) regimes.
func TestSessionMatchesFromScratchPPI(t *testing.T) {
	for _, mode := range []struct {
		name    string
		hostile bool
		a       float64
		nT, nW  int
	}{
		{"calm", false, 0.5, 60, 90},
		{"negA", false, -1, 40, 70},
		{"hostile", true, 0.5, 30, 20}, // straddles indexMinWorkers under churn
	} {
		for seed := int64(0); seed < 6; seed++ {
			for _, parallelism := range []int{1, 8} {
				cw := &churnWorld{rng: rand.New(rand.NewSource(seed*31 + 7)), hostile: mode.hostile}
				cfg := PPI{A: mode.a, Parallelism: parallelism}
				s := NewSession(cfg)
				cw.seed(s, mode.nT, mode.nW)
				ctx := context.Background()
				var recomputed, total int
				for tick := 0; tick < 14; tick++ {
					if tick > 0 {
						cw.churn(s, tick, 1+cw.rng.Intn(8))
					}
					got := s.Assign(ctx, tick)
					want := cfg.AssignContext(context.Background(), s.Tasks(), s.Workers(), tick)
					if !plansEqual(got, want) {
						t.Fatalf("%s seed %d par %d tick %d: session plan differs from from-scratch PPI\nsession: %v\nscratch: %v",
							mode.name, seed, parallelism, tick, got, want)
					}
					st := s.Stats()
					recomputed += st.RecomputedRows
					total += st.Tasks
				}
				if !mode.hostile && recomputed >= total {
					t.Fatalf("%s seed %d par %d: no row cache reuse (%d/%d rows recomputed)",
						mode.name, seed, parallelism, recomputed, total)
				}
			}
		}
	}
}

// TestSessionQuiescentTick: with zero churn between ticks (and deadlines far
// enough out to keep every reach cap pinned), the engine must do no
// per-entity work at all — no recomputed rows, no patched cells, no rebuild
// — and still produce the identical plan.
func TestSessionQuiescentTick(t *testing.T) {
	cw := &churnWorld{rng: rand.New(rand.NewSource(42))}
	cfg := PPI{A: 0.5, Parallelism: 4}
	s := NewSession(cfg)
	cw.seed(s, 80, 120)
	ctx := context.Background()
	first := append([]Pair(nil), s.Assign(ctx, 1)...)
	for tick := 2; tick <= 4; tick++ {
		got := s.Assign(ctx, tick)
		st := s.Stats()
		if st.RecomputedRows != 0 || st.PatchedCells != 0 || st.RebuiltIndex {
			t.Fatalf("tick %d: quiescent tick did work: %+v", tick, st)
		}
		want := cfg.AssignContext(context.Background(), s.Tasks(), s.Workers(), tick)
		if !plansEqual(got, want) {
			t.Fatalf("tick %d: quiescent plan diverged from from-scratch", tick)
		}
		if !plansEqual(got, first) {
			t.Fatalf("tick %d: quiescent plan drifted from tick 1", tick)
		}
	}
	if _, warm, cold := s.Workspace().WarmStats(); warm == 0 || cold > 1 {
		t.Fatalf("quiescent ticks should warm-start the KM: warm=%d cold=%d", warm, cold)
	}
}

// TestSessionChurnProportional: under light churn the recomputed-row count
// must track the churn, not the population, and the index must be patched,
// not rebuilt.
func TestSessionChurnProportional(t *testing.T) {
	cw := &churnWorld{rng: rand.New(rand.NewSource(7))}
	cfg := PPI{A: 0.5, Parallelism: 4}
	s := NewSession(cfg)
	cw.seed(s, 300, 400)
	ctx := context.Background()
	s.Assign(ctx, 1)
	for tick := 2; tick <= 8; tick++ {
		// Move 4 workers (1% of the fleet): only rows whose buckets those
		// envelopes touch may recompute.
		for k := 0; k < 4; k++ {
			id := cw.workerIDs[cw.rng.Intn(len(cw.workerIDs))]
			s.UpsertWorker(cw.newWorker(id))
		}
		got := s.Assign(ctx, tick)
		st := s.Stats()
		if st.RebuiltIndex {
			t.Fatalf("tick %d: 1%% churn should patch, not rebuild", tick)
		}
		if st.PatchedCells == 0 {
			t.Fatalf("tick %d: moved workers but no cells patched", tick)
		}
		if st.RecomputedRows > st.Tasks/2 {
			t.Fatalf("tick %d: %d/%d rows recomputed for 4 moved workers", tick, st.RecomputedRows, st.Tasks)
		}
		want := cfg.AssignContext(context.Background(), s.Tasks(), s.Workers(), tick)
		if !plansEqual(got, want) {
			t.Fatalf("tick %d: plan diverged under light churn", tick)
		}
	}
	if s.Stats().TotalRebuilds != 1 {
		t.Fatalf("expected exactly the initial rebuild, got %d", s.Stats().TotalRebuilds)
	}
}

// TestSessionHeavyChurnFallsBack: past the churn threshold the session must
// rebuild rather than patch — and still match from-scratch.
func TestSessionHeavyChurnFallsBack(t *testing.T) {
	cw := &churnWorld{rng: rand.New(rand.NewSource(11))}
	cfg := PPI{A: 0.5, Parallelism: 2}
	s := NewSession(cfg)
	cw.seed(s, 50, 60)
	ctx := context.Background()
	s.Assign(ctx, 1)
	// Rewrite well over 20% of the fleet.
	for k := 0; k < 30; k++ {
		id := cw.workerIDs[cw.rng.Intn(len(cw.workerIDs))]
		s.UpsertWorker(cw.newWorker(id))
	}
	got := s.Assign(ctx, 2)
	if st := s.Stats(); !st.RebuiltIndex || st.PatchedCells != 0 {
		t.Fatalf("heavy churn should trigger a rebuild: %+v", st)
	}
	want := cfg.AssignContext(context.Background(), s.Tasks(), s.Workers(), 2)
	if !plansEqual(got, want) {
		t.Fatal("plan diverged after churn-fallback rebuild")
	}
}

// TestSessionRemoveSemantics covers the id bookkeeping around swap-removal.
func TestSessionRemoveSemantics(t *testing.T) {
	s := NewSession(PPI{})
	if s.RemoveTask(1) || s.RemoveWorker(1) {
		t.Fatal("removing unknown ids must report false")
	}
	s.UpsertTask(Task{ID: 1})
	s.UpsertTask(Task{ID: 2})
	s.UpsertTask(Task{ID: 3})
	if !s.RemoveTask(1) {
		t.Fatal("remove existing task")
	}
	if len(s.Tasks()) != 2 || s.Tasks()[0].ID != 3 {
		t.Fatalf("swap-remove should move the tail into the hole: %v", s.Tasks())
	}
	s.UpsertTask(Task{ID: 3, Deadline: 9})
	if len(s.Tasks()) != 2 || s.Tasks()[0].Deadline != 9 {
		t.Fatalf("upsert should edit in place: %v", s.Tasks())
	}
	s.UpsertWorker(Worker{ID: 7})
	s.UpsertWorker(Worker{ID: 8})
	if !s.RemoveWorker(7) || len(s.Workers()) != 1 || s.Workers()[0].ID != 8 {
		t.Fatalf("worker swap-remove broken: %v", s.Workers())
	}
}

// TestSortPendingAllocFree is the stage-2 satellite gate: the typed sort
// must not allocate once the buffer exists (sort.Slice's closure and
// interface header used to).
func TestSortPendingAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pending := make([]candidate, 512)
	fill := func() {
		for i := range pending {
			pending[i] = candidate{task: rng.Intn(64), worker: rng.Intn(64), conf: rng.Float64()}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		fill()
		sortPending(pending)
	})
	if allocs != 0 {
		t.Fatalf("sortPending allocates %.1f/op, want 0", allocs)
	}
}
