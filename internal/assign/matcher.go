package assign

import "math"

// Matcher solves maximum-weight bipartite matching over sparse candidate
// edge lists with a reusable workspace: compaction tables, the CSR adjacency,
// and the Hungarian potentials/slack arrays all persist across calls, so the
// steady-state KM inner loop allocates nothing no matter how many batches it
// solves (Algorithm 4's stage-2 loop calls KM once per ε candidates).
//
// The algorithm is the potentials-based Kuhn–Munkres method, but run on edge
// lists instead of a dense cost matrix: each row's Dijkstra-style relaxation
// touches only its adjacency, and the delta scan walks the list of columns
// actually reached by the alternating tree instead of every column. Rows that
// should stay unmatched are modelled by one virtual zero-weight column per
// row (adjacent only to that row), which replaces the dense padding matrix —
// there is no O(rows·cols) cost allocation or traversal anywhere.
//
// Column labels: real column c is j = c+1; row i's virtual column is
// j = vcap+i, where vcap is a sticky capacity that only grows (it starts at
// the first batch's column count and is padded on growth). Keeping vcap
// fixed across calls makes every column label independent of how many rows
// and columns a later batch adds, which is what lets MatchWarm resume a
// solve from a mid-stream checkpoint: the labels of a row prefix mean the
// same thing in the next batch. The labelling is otherwise pure bookkeeping
// — the matching is identical to the classic nc-offset formulation.
//
// Ids must be non-negative and slice-index-like (scratch is sized by the
// largest id seen); negative ids and non-positive weights are ignored. A
// Matcher is not safe for concurrent use.
type Matcher struct {
	// id compaction: id → dense index+1 (0 = unseen), reset after each call.
	taskSlot, workerSlot []int32
	taskIDs, workerIDs   []int32

	// CSR adjacency over the smaller side as rows.
	rowStart []int32
	rowEnd   []int32 // end after per-row max-dedupe compaction
	adjCol   []int32
	adjW     []float64
	colPos   []int32 // per-row dedupe scratch: col → adj position+1

	// solver state, 1-based like the classic formulation: columns 1..nc are
	// real, vcap+1..vcap+nr virtual, 0 is the augmenting-tree root.
	vcap     int32
	u, v     []float64
	p, way   []int32
	minv     []float64
	used     []bool
	touched  []int32 // columns with finite minv this row (reset list)
	reach    []int32 // touched ∧ not yet used: the live delta-scan frontier
	pathCols []int32 // used columns this row, root included (potential updates)
}

// Match appends the maximum-weight matching over edges to out and returns
// the extended slice; the appended pairs are sorted by task id. Only out's
// backing array escapes — every internal buffer is reused on the next call,
// so callers may hold the returned pairs as long as they like.
func (m *Matcher) Match(edges []Edge, out []Pair) []Pair {
	if len(edges) == 0 {
		return out
	}
	maxW := m.compact(edges)
	if len(m.taskIDs) == 0 {
		return out
	}
	// Orient the smaller side as rows: the outer loop runs once per row, so
	// batches pooling far more tasks than workers (or vice versa) solve in
	// O(smaller · reached) rather than O(larger · ...).
	transposed := len(m.taskIDs) > len(m.workerIDs)
	nr, nc := m.buildAdjacency(edges, transposed)
	if int32(nc) > m.vcap {
		m.vcap = int32(nc + nc/2 + 8)
	}
	m.initPotentials(nr, nc)
	for i := 1; i <= nr; i++ {
		m.runRow(i, maxW)
	}
	out = m.extract(out, nc, transposed)
	m.resetSlots()
	return out
}

// compact assigns dense indexes to task and worker ids in first-appearance
// order over the valid edges and returns the weight ceiling. m.taskIDs is
// left empty when no edge is valid.
func (m *Matcher) compact(edges []Edge) (maxW float64) {
	m.taskIDs = m.taskIDs[:0]
	m.workerIDs = m.workerIDs[:0]
	for i := range edges {
		e := &edges[i]
		if e.Weight <= 0 || e.Task < 0 || e.Worker < 0 {
			continue
		}
		if e.Task >= len(m.taskSlot) {
			m.taskSlot = growZero(m.taskSlot, e.Task+1)
		}
		if m.taskSlot[e.Task] == 0 {
			m.taskIDs = append(m.taskIDs, int32(e.Task))
			m.taskSlot[e.Task] = int32(len(m.taskIDs))
		}
		if e.Worker >= len(m.workerSlot) {
			m.workerSlot = growZero(m.workerSlot, e.Worker+1)
		}
		if m.workerSlot[e.Worker] == 0 {
			m.workerIDs = append(m.workerIDs, int32(e.Worker))
			m.workerSlot[e.Worker] = int32(len(m.workerIDs))
		}
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	return maxW
}

// buildAdjacency builds the CSR adjacency over the chosen orientation:
// count, prefix, fill, then max-dedupe duplicate (row, col) edges in place
// (first occurrence keeps its slot, heaviest weight wins — the same
// reduction the dense matrix applied).
func (m *Matcher) buildAdjacency(edges []Edge, transposed bool) (nr, nc int) {
	rowSlot, colSlot := m.taskSlot, m.workerSlot
	nr, nc = len(m.taskIDs), len(m.workerIDs)
	if transposed {
		rowSlot, colSlot = m.workerSlot, m.taskSlot
		nr, nc = nc, nr
	}
	m.rowStart = growInt32s(m.rowStart, nr+1)
	m.rowEnd = growInt32s(m.rowEnd, nr)
	for i := 0; i <= nr; i++ {
		m.rowStart[i] = 0
	}
	for i := range edges {
		e := &edges[i]
		if e.Weight <= 0 || e.Task < 0 || e.Worker < 0 {
			continue
		}
		r := rowOf(e, transposed, rowSlot)
		m.rowStart[r+1]++
	}
	for i := 0; i < nr; i++ {
		m.rowStart[i+1] += m.rowStart[i]
	}
	total := int(m.rowStart[nr])
	m.adjCol = growInt32s(m.adjCol, total)
	m.adjW = growFloats(m.adjW, total)
	copy(m.rowEnd[:nr], m.rowStart[1:nr+1])
	// Fill back-to-front per row using rowEnd as cursors.
	for i := len(edges) - 1; i >= 0; i-- {
		e := &edges[i]
		if e.Weight <= 0 || e.Task < 0 || e.Worker < 0 {
			continue
		}
		r := rowOf(e, transposed, rowSlot)
		var c int
		if transposed {
			c = int(colSlot[e.Task]) - 1
		} else {
			c = int(colSlot[e.Worker]) - 1
		}
		m.rowEnd[r]--
		slot := m.rowEnd[r]
		m.adjCol[slot] = int32(c)
		m.adjW[slot] = e.Weight
	}
	// rowEnd cursors have walked back to rowStart; rebuild rowEnd as the
	// post-dedupe end of each row.
	m.colPos = growZero(m.colPos, nc)
	for r := 0; r < nr; r++ {
		start, end := m.rowStart[r], m.rowStart[r+1]
		write := start
		for k := start; k < end; k++ {
			c := m.adjCol[k]
			if pos := m.colPos[c]; pos != 0 {
				if m.adjW[k] > m.adjW[pos-1] {
					m.adjW[pos-1] = m.adjW[k]
				}
				continue
			}
			m.adjCol[write] = c
			m.adjW[write] = m.adjW[k]
			write++
			m.colPos[c] = write // position+1
		}
		for k := start; k < write; k++ {
			m.colPos[m.adjCol[k]] = 0
		}
		m.rowEnd[r] = write
	}
	return nr, nc
}

// initPotentials zeroes the solver state for a fresh solve over nr rows and
// vcap+nr columns.
func (m *Matcher) initPotentials(nr, nc int) {
	M := int(m.vcap) + nr
	m.u = growFloats(m.u, nr+1)
	m.v = growFloats(m.v, M+1)
	m.p = growInt32s(m.p, M+1)
	m.way = growInt32s(m.way, M+1)
	m.minv = growFloats(m.minv, M+1)
	m.used = growBools(m.used, M+1)
	inf := math.Inf(1)
	for i := 0; i <= nr; i++ {
		m.u[i] = 0
	}
	// Only the columns this solve can touch need resetting: the root (0),
	// the compacted real columns 1..nc, and the virtual band vcap+1..vcap+nr.
	// runRow never reads or writes the gap in between, so small batches —
	// the ε-sized stage-2 flushes — pay O(nr+nc), not O(vcap), regardless of
	// how large a previous solve grew the arrays.
	m.resetColRange(0, nc, inf)
	m.resetColRange(int(m.vcap)+1, M, inf)
}

// resetColRange clears the per-column solver state for columns lo..hi.
func (m *Matcher) resetColRange(lo, hi int, inf float64) {
	for j := lo; j <= hi; j++ {
		m.v[j] = 0
		m.p[j] = 0
		m.way[j] = 0
		m.minv[j] = inf
		m.used[j] = false
	}
}

// runRow grows the alternating tree from row i until it augments, updating
// potentials and the matching in place. Rows must be run in order 1..nr;
// the state after row i depends only on rows 1..i (checkpointability).
func (m *Matcher) runRow(i int, maxW float64) {
	inf := math.Inf(1)
	m.p[0] = int32(i)
	m.touched = m.touched[:0]
	m.reach = m.reach[:0]
	m.pathCols = m.pathCols[:0]
	j0 := 0
	for {
		m.used[j0] = true
		m.pathCols = append(m.pathCols, int32(j0))
		i0 := int(m.p[j0])
		// Relax i0's sparse adjacency plus its virtual column.
		row := i0 - 1
		for k := m.rowStart[row]; k < m.rowEnd[row]; k++ {
			j := int(m.adjCol[k]) + 1
			if m.used[j] {
				continue
			}
			cur := (maxW - m.adjW[k]) - m.u[i0] - m.v[j]
			if cur < m.minv[j] {
				if math.IsInf(m.minv[j], 1) {
					m.touched = append(m.touched, int32(j))
					m.reach = append(m.reach, int32(j))
				}
				m.minv[j] = cur
				m.way[j] = int32(j0)
			}
		}
		if jv := int(m.vcap) + i0; !m.used[jv] {
			cur := maxW - m.u[i0] - m.v[jv]
			if cur < m.minv[jv] {
				if math.IsInf(m.minv[jv], 1) {
					m.touched = append(m.touched, int32(jv))
					m.reach = append(m.reach, int32(jv))
				}
				m.minv[jv] = cur
				m.way[jv] = int32(j0)
			}
		}
		// Delta scan over the live frontier, compacting out columns the
		// tree has since absorbed.
		delta, j1, w := inf, -1, 0
		for _, j := range m.reach {
			if m.used[j] {
				continue
			}
			m.reach[w] = j
			w++
			if m.minv[j] < delta {
				delta = m.minv[j]
				j1 = int(j)
			}
		}
		m.reach = m.reach[:w]
		if j1 < 0 {
			// Unreachable only if the virtual columns were exhausted,
			// which the one-virtual-per-row construction rules out; kept
			// as a defensive exit (row stays unmatched).
			break
		}
		for _, j := range m.pathCols {
			m.u[m.p[j]] += delta
			m.v[j] -= delta
		}
		for _, j := range m.reach {
			m.minv[j] -= delta
		}
		j0 = j1
		if m.p[j0] == 0 {
			break
		}
	}
	if m.p[j0] != 0 {
		// Defensive-exit path above: nothing to augment.
		j0 = 0
	}
	for j0 != 0 {
		j1 := int(m.way[j0])
		m.p[j0] = m.p[j1]
		j0 = j1
	}
	// Per-row reset: only the columns this row's tree touched.
	for _, j := range m.touched {
		m.minv[j] = inf
		m.used[j] = false
		m.way[j] = 0
	}
	m.used[0] = false
}

// extract appends the real-column matches to out, sorted by task id;
// virtual columns are unmatched rows.
func (m *Matcher) extract(out []Pair, nc int, transposed bool) []Pair {
	rowIDs, colIDs := m.taskIDs, m.workerIDs
	if transposed {
		rowIDs, colIDs = m.workerIDs, m.taskIDs
	}
	from := len(out)
	for j := 1; j <= nc; j++ {
		r := int(m.p[j])
		if r == 0 {
			continue
		}
		row, col := r-1, j-1
		var w float64
		for k := m.rowStart[row]; k < m.rowEnd[row]; k++ {
			if int(m.adjCol[k]) == col {
				w = m.adjW[k]
				break
			}
		}
		task, worker := int(rowIDs[row]), int(colIDs[col])
		if transposed {
			task, worker = worker, task
		}
		out = append(out, Pair{Task: task, Worker: worker, Weight: w})
	}
	sortPairsByTask(out[from:])
	return out
}

// resetSlots clears the compaction tables for the next call.
func (m *Matcher) resetSlots() {
	for _, id := range m.taskIDs {
		m.taskSlot[id] = 0
	}
	for _, id := range m.workerIDs {
		m.workerSlot[id] = 0
	}
}

func rowOf(e *Edge, transposed bool, rowSlot []int32) int {
	if transposed {
		return int(rowSlot[e.Worker]) - 1
	}
	return int(rowSlot[e.Task]) - 1
}

// sortPairsByTask sorts in place by task id without allocating (tasks are
// unique within a matching, so no tie-break is needed). Insertion sort below
// a small threshold, median-of-three quicksort above it.
func sortPairsByTask(ps []Pair) {
	for len(ps) > 12 {
		// Median-of-three pivot to dodge quadratic behaviour on the
		// nearly-sorted output the extraction loop tends to produce.
		a, b, c := 0, len(ps)/2, len(ps)-1
		if ps[b].Task < ps[a].Task {
			ps[a], ps[b] = ps[b], ps[a]
		}
		if ps[c].Task < ps[b].Task {
			ps[b], ps[c] = ps[c], ps[b]
			if ps[b].Task < ps[a].Task {
				ps[a], ps[b] = ps[b], ps[a]
			}
		}
		pivot := ps[b].Task
		i, j := 0, len(ps)-1
		for i <= j {
			for ps[i].Task < pivot {
				i++
			}
			for ps[j].Task > pivot {
				j--
			}
			if i <= j {
				ps[i], ps[j] = ps[j], ps[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(ps)-i {
			sortPairsByTask(ps[:j+1])
			ps = ps[i:]
		} else {
			sortPairsByTask(ps[i:])
			ps = ps[:j+1]
		}
	}
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Task < ps[j-1].Task; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// growZero grows s to length n, guaranteeing the new tail is zeroed (Go
// zeroes fresh allocations; reslicing within capacity keeps old zeros because
// every user resets its marks before returning).
func growZero(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]int32, n, n+n/2)
	copy(ns, s)
	return ns
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
