package assign

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// randInstance generates one randomized assignment batch exercising the
// index's edge cases: zero/huge/infinite detours, zero speeds, empty and
// long predicted paths, NaN coordinates, excluded workers, expired
// deadlines, and either uniform or clustered geometry.
func randInstance(rng *rand.Rand, clustered bool) ([]Task, []Worker, int) {
	nT := 1 + rng.Intn(50)
	nW := 1 + rng.Intn(90) // straddles indexMinWorkers on both sides
	tick := rng.Intn(4)
	side := 40.0
	cluster := func() (float64, float64) {
		if !clustered {
			return rng.Float64() * side, rng.Float64() * side
		}
		// A handful of dense spots plus background noise.
		cx := float64(rng.Intn(3)) * 15
		cy := float64(rng.Intn(2)) * 20
		return cx + rng.NormFloat64()*2, cy + rng.NormFloat64()*2
	}
	tasks := make([]Task, nT)
	for i := range tasks {
		x, y := cluster()
		t := Task{ID: i, Loc: geo.Pt(x, y), Deadline: rng.Intn(20)}
		if rng.Float64() < 0.2 {
			t.Deadline = tick - 1 - rng.Intn(3) // already expired
		}
		for w := 0; w < nW; w++ {
			if rng.Float64() < 0.05 {
				t.Excluded = append(t.Excluded, w)
			}
		}
		tasks[i] = t
	}
	workers := make([]Worker, nW)
	for i := range workers {
		x, y := cluster()
		steps := rng.Intn(13) // 0..12, empty paths included
		pred := make([]geo.Point, 0, steps)
		act := make([]geo.Point, 0, steps)
		px, py := x, y
		for j := 0; j < steps; j++ {
			px += rng.NormFloat64() * 1.5
			py += rng.NormFloat64() * 1.5
			p := geo.Pt(px, py)
			if rng.Float64() < 0.02 {
				p = geo.Pt(math.NaN(), py)
			}
			pred = append(pred, p)
			act = append(act, geo.Pt(px+rng.NormFloat64()*0.5, py+rng.NormFloat64()*0.5))
		}
		detour := rng.Float64() * 12
		switch rng.Intn(12) {
		case 0:
			detour = 0
		case 1:
			detour = math.Inf(1) // forces the whole-batch brute fallback
		}
		workers[i] = Worker{
			ID:        i,
			Loc:       geo.Pt(x, y),
			Detour:    detour,
			Speed:     rng.Float64() * 3, // 0 included
			Predicted: pred,
			Actual:    act,
			MR:        rng.Float64() * 1.2,
		}
	}
	return tasks, workers, tick
}

// plansEqual is DeepEqual over []Pair except that NaN weights compare equal
// to themselves: a NaN predicted coordinate produces the same NaN-weighted
// pair on both paths, and that still counts as the same plan.
func plansEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Task != b[i].Task || a[i].Worker != b[i].Worker {
			return false
		}
		if a[i].Weight != b[i].Weight && !(math.IsNaN(a[i].Weight) && math.IsNaN(b[i].Weight)) {
			return false
		}
	}
	return true
}

// TestIndexedPlansMatchBruteOracle is the tentpole's contract: for every
// assigner, the indexed path must return the exact same []Pair as the
// retained brute-force scan, at parallelism 1 and 8, across randomized
// instances. Workspaces are reused across instances on the indexed side to
// also prove rebuilds don't leak state between batches.
func TestIndexedPlansMatchBruteOracle(t *testing.T) {
	ws := NewWorkspace()
	ctx := WithWorkspace(context.Background(), ws)
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tasks, workers, tick := randInstance(rng, seed%2 == 0)
		for _, parallelism := range []int{1, 8} {
			assigners := []struct {
				name           string
				indexed, brute Assigner
			}{
				{"PPI", PPI{A: 0.5, Parallelism: parallelism}, PPI{A: 0.5, Parallelism: parallelism, BruteForce: true}},
				{"PPI_negA", PPI{A: -1, Parallelism: parallelism}, PPI{A: -1, Parallelism: parallelism, BruteForce: true}},
				{"KM", KM{Parallelism: parallelism}, KM{Parallelism: parallelism, BruteForce: true}},
				{"UB", UB{Parallelism: parallelism}, UB{Parallelism: parallelism, BruteForce: true}},
				{"Greedy", Greedy{Parallelism: parallelism}, Greedy{Parallelism: parallelism, BruteForce: true}},
				{"LB", LB{}, LB{BruteForce: true}},
				{"GGPSO", GGPSO{Population: 10, Generations: 6, Seed: seed}, GGPSO{Population: 10, Generations: 6, Seed: seed, BruteForce: true}},
			}
			for _, a := range assigners {
				got := Do(ctx, a.indexed, tasks, workers, tick)
				want := Do(context.Background(), a.brute, tasks, workers, tick)
				if !plansEqual(got, want) {
					t.Fatalf("seed %d par %d %s: indexed plan differs from brute oracle\nindexed: %v\nbrute:   %v",
						seed, parallelism, a.name, got, want)
				}
			}
		}
	}
}

// TestCandidateViewSuperset checks the pruning invariant directly: every
// worker the stage-3 feasibility predicate accepts for a task must appear in
// that task's candidate bucket (the index may return more — never fewer).
func TestCandidateViewSuperset(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tasks, workers, tick := randInstance(rng, seed%2 == 0)
		ws := NewWorkspace()
		cv := buildCandidateView(context.Background(), ws, len(workers), 4, false, predictedEnvelope(workers))
		for ti := range tasks {
			var cands []int32
			it := cv.iter(tasks[ti].Loc)
			for c, ok := it.next(); ok; c, ok = it.next() {
				cands = append(cands, c)
			}
			for wi := range workers {
				w := &workers[wi]
				dmin := minDistTo(w.Predicted, tasks[ti].Loc)
				if dmin < 0 || dmin > reachCap(w, &tasks[ti], tick) {
					continue
				}
				found := false
				for _, c := range cands {
					if int(c) == wi {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("seed %d: feasible worker %d pruned from task %d's candidates", seed, wi, ti)
				}
			}
		}
	}
}

// TestIndexedEdgeSetMatchesBrute compares the stage-3/KM candidate edge set
// itself, not just the matching built from it.
func TestIndexedEdgeSetMatchesBrute(t *testing.T) {
	buildEdges := func(tasks []Task, workers []Worker, tick int, cv candidateView) []Edge {
		return edgeRows(context.Background(), len(tasks), 1, func(ti int) []Edge {
			var row []Edge
			it := cv.iter(tasks[ti].Loc)
			for wi32, ok := it.next(); ok; wi32, ok = it.next() {
				wi := int(wi32)
				w := &workers[wi]
				if tasks[ti].ExcludedWorker(w.ID) {
					continue
				}
				dmin := minDistTo(w.Predicted, tasks[ti].Loc)
				if dmin < 0 {
					continue
				}
				if dmin <= reachCap(w, &tasks[ti], tick) {
					row = append(row, Edge{Task: ti, Worker: wi, Weight: pairWeight(dmin)})
				}
			}
			return row
		})
	}
	for seed := int64(200); seed < 230; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tasks, workers, tick := randInstance(rng, seed%3 == 0)
		indexed := buildCandidateView(context.Background(), NewWorkspace(), len(workers), 4, false, predictedEnvelope(workers))
		brute := buildCandidateView(context.Background(), NewWorkspace(), len(workers), 1, true, predictedEnvelope(workers))
		got := buildEdges(tasks, workers, tick, indexed)
		want := buildEdges(tasks, workers, tick, brute)
		equal := len(got) == len(want)
		for i := 0; equal && i < len(got); i++ {
			equal = got[i].Task == want[i].Task && got[i].Worker == want[i].Worker &&
				(got[i].Weight == want[i].Weight || (math.IsNaN(got[i].Weight) && math.IsNaN(want[i].Weight)))
		}
		if !equal {
			t.Fatalf("seed %d: indexed edge set differs from brute\nindexed: %v\nbrute:   %v", seed, got, want)
		}
	}
}
