// Package assign implements the task assignment side of TAMP: the
// Kuhn–Munkres (KM / Hungarian) maximum-weight bipartite matching the paper
// calls as a subroutine [35, 36], the Prediction Performance-Involved
// assignment algorithm (PPI, Algorithm 4), and the compared baselines UB,
// LB, plain KM, and the genetic GGPSO of [11].
package assign

// Edge is one candidate (task, worker) pair with a positive assignment
// weight (larger = more desirable).
type Edge struct {
	Task   int
	Worker int
	Weight float64
}

// Pair is one matched (task, worker) assignment.
type Pair struct {
	Task   int
	Worker int
	Weight float64
}

// MaxWeightMatching solves maximum-weight bipartite matching over the given
// candidate edges: it returns a set of pairs, each task and worker used at
// most once, maximizing the total weight. Edges with non-positive weight
// are ignored. This is the "call KM algorithm" primitive of Algorithm 4.
//
// It is a convenience wrapper that runs a throwaway Matcher; hot paths that
// solve many batches (the assigners, via their shared Workspace) hold a
// Matcher so the compaction tables, sparse adjacency, and potentials/slack
// arrays are reused across calls instead of reallocated.
func MaxWeightMatching(edges []Edge) []Pair {
	var m Matcher
	return m.Match(edges, nil)
}
