// Package assign implements the task assignment side of TAMP: the
// Kuhn–Munkres (KM / Hungarian) maximum-weight bipartite matching the paper
// calls as a subroutine [35, 36], the Prediction Performance-Involved
// assignment algorithm (PPI, Algorithm 4), and the compared baselines UB,
// LB, plain KM, and the genetic GGPSO of [11].
package assign

import (
	"math"
	"sort"
)

// Edge is one candidate (task, worker) pair with a positive assignment
// weight (larger = more desirable).
type Edge struct {
	Task   int
	Worker int
	Weight float64
}

// Pair is one matched (task, worker) assignment.
type Pair struct {
	Task   int
	Worker int
	Weight float64
}

// MaxWeightMatching solves maximum-weight bipartite matching over the given
// candidate edges: it returns a set of pairs, each task and worker used at
// most once, maximizing the total weight. Edges with non-positive weight
// are ignored. This is the "call KM algorithm" primitive of Algorithm 4.
//
// Internally the sparse problem is compacted to the tasks/workers that
// actually appear in edges, padded to a square matrix, and solved with the
// O(n³) Hungarian algorithm; padding matches (weight 0) are dropped.
func MaxWeightMatching(edges []Edge) []Pair {
	if len(edges) == 0 {
		return nil
	}
	// Compact ids.
	taskIdx := map[int]int{}
	workerIdx := map[int]int{}
	var taskIDs, workerIDs []int
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		if _, ok := taskIdx[e.Task]; !ok {
			taskIdx[e.Task] = len(taskIDs)
			taskIDs = append(taskIDs, e.Task)
		}
		if _, ok := workerIdx[e.Worker]; !ok {
			workerIdx[e.Worker] = len(workerIDs)
			workerIDs = append(workerIDs, e.Worker)
		}
	}
	if len(taskIDs) == 0 {
		return nil
	}
	// The rectangular Hungarian algorithm below needs rows ≤ cols; batches
	// routinely pool far more tasks than available workers, so orient the
	// smaller side as rows (O(rows²·cols) instead of O(max³)).
	transposed := len(taskIDs) > len(workerIDs)
	var rowIDs, colIDs []int
	if transposed {
		rowIDs, colIDs = workerIDs, taskIDs
	} else {
		rowIDs, colIDs = taskIDs, workerIDs
	}
	nr, nc := len(rowIDs), len(colIDs)
	w := make([][]float64, nr)
	for i := range w {
		w[i] = make([]float64, nc)
	}
	for _, e := range edges {
		if e.Weight <= 0 {
			continue
		}
		ti, wi := taskIdx[e.Task], workerIdx[e.Worker]
		ri, ci := ti, wi
		if transposed {
			ri, ci = wi, ti
		}
		if e.Weight > w[ri][ci] {
			w[ri][ci] = e.Weight
		}
	}
	// Hungarian minimizes; convert to costs.
	maxW := 0.0
	for i := range w {
		for j := range w[i] {
			if w[i][j] > maxW {
				maxW = w[i][j]
			}
		}
	}
	cost := make([][]float64, nr)
	for i := range cost {
		cost[i] = make([]float64, nc)
		for j := range cost[i] {
			cost[i][j] = maxW - w[i][j]
		}
	}
	rowMatch := hungarianMin(cost)
	var out []Pair
	for i, j := range rowMatch {
		if j < 0 || w[i][j] <= 0 {
			continue
		}
		task, worker := rowIDs[i], colIDs[j]
		if transposed {
			task, worker = colIDs[j], rowIDs[i]
		}
		out = append(out, Pair{Task: task, Worker: worker, Weight: w[i][j]})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Task < out[b].Task })
	return out
}

// hungarianMin solves the rectangular assignment problem (rows ≤ cols)
// minimizing total cost, returning the matched column for every row (-1 if
// a row ends unmatched, which cannot happen when rows ≤ cols). Standard
// potentials-based implementation, O(rows²·cols).
func hungarianMin(cost [][]float64) []int {
	n := len(cost) // rows
	if n == 0 {
		return nil
	}
	m := len(cost[0]) // cols, n ≤ m
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j] = row matched to column j (1-based; 0 = virtual)
	way := make([]int, m+1) // way[j] = previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := 0; j <= m; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	rowMatch := make([]int, n)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowMatch[p[j]-1] = j - 1
		}
	}
	return rowMatch
}
