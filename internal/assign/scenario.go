package assign

import (
	"math"
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// ScaleScenario generates a reproducible assignment batch of nTasks tasks and
// nWorkers workers scattered over a square whose side grows with √nWorkers,
// so spatial density — and with it each task's true candidate count — stays
// roughly constant across scales. Brute-force graph construction is then
// Θ(|T|·|W|) while the indexed path visits O(|T|·density) pairs, which is
// exactly the regime the AssignPPI/AssignKM scale benchmarks and the perf
// harness measure. Every worker walks a short random trajectory (predicted
// and a noisy actual), with mixed detour budgets, speeds, and matching rates
// so all three PPI stages see traffic.
func ScaleScenario(nTasks, nWorkers int, seed int64) ([]Task, []Worker) {
	rng := rand.New(rand.NewSource(seed))
	side := 10 * math.Sqrt(float64(nWorkers)+1)
	tasks := make([]Task, nTasks)
	for i := range tasks {
		tasks[i] = scaleTask(rng, i, side)
	}
	workers := make([]Worker, nWorkers)
	for i := range workers {
		workers[i] = scaleWorker(rng, i, side)
	}
	return tasks, workers
}

// scaleTask draws one task from ScaleScenario's distribution. The deadlines
// (tick 30+) never expire at the benchmark tick, so a steady-state Session
// keeps its rows reach-pinned across iterations.
func scaleTask(rng *rand.Rand, id int, side float64) Task {
	return Task{
		ID:       id,
		Loc:      geo.Pt(rng.Float64()*side, rng.Float64()*side),
		Deadline: 30 + rng.Intn(30),
	}
}

// scaleWorker draws one worker from ScaleScenario's distribution.
func scaleWorker(rng *rand.Rand, id int, side float64) Worker {
	x, y := rng.Float64()*side, rng.Float64()*side
	steps := 8 + rng.Intn(5)
	pred := make([]geo.Point, steps)
	act := make([]geo.Point, steps)
	px, py := x, y
	for j := 0; j < steps; j++ {
		px += rng.Float64()*2 - 1
		py += rng.Float64()*2 - 1
		pred[j] = geo.Pt(px, py)
		act[j] = geo.Pt(px+rng.Float64()-0.5, py+rng.Float64()-0.5)
	}
	return Worker{
		ID:        id,
		Loc:       geo.Pt(x, y),
		Detour:    4 + rng.Float64()*6,
		Speed:     0.5 + rng.Float64(),
		Predicted: pred,
		Actual:    act,
		MR:        rng.Float64(),
	}
}

// Churner drives per-tick churn against a Session in ScaleScenario's
// distribution: a fraction of the fleet moves (same worker id, fresh
// trajectory) and half that fraction of the tasks turns over (completed
// tasks leave, fresh ones arrive — exercising swap-removal and the KM
// stream's hole handling). The churn benchmarks and tampbench -churn both
// drive it, so "churn P%" means the same workload everywhere.
type Churner struct {
	rng      *rand.Rand
	side     float64
	nextTask int
}

// NewChurner derives the arena side from the session's current fleet and
// continues task ids past the largest one present.
func NewChurner(seed int64, s *Session) *Churner {
	next := 0
	for _, t := range s.Tasks() {
		if t.ID >= next {
			next = t.ID + 1
		}
	}
	return &Churner{
		rng:      rand.New(rand.NewSource(seed)),
		side:     10 * math.Sqrt(float64(len(s.Workers())+1)),
		nextTask: next,
	}
}

// Tick applies one tick of churn at the given fraction (0 = quiescent).
func (c *Churner) Tick(s *Session, frac float64) {
	workers := s.Workers()
	moves := int(frac * float64(len(workers)))
	for k := 0; k < moves; k++ {
		id := workers[c.rng.Intn(len(workers))].ID
		s.UpsertWorker(scaleWorker(c.rng, id, c.side))
	}
	turnover := int(frac * float64(len(s.Tasks())) / 2)
	for k := 0; k < turnover; k++ {
		tasks := s.Tasks()
		if len(tasks) == 0 {
			break
		}
		s.RemoveTask(tasks[c.rng.Intn(len(tasks))].ID)
		s.UpsertTask(scaleTask(c.rng, c.nextTask, c.side))
		c.nextTask++
	}
}
