package assign

import (
	"math"
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// ScaleScenario generates a reproducible assignment batch of nTasks tasks and
// nWorkers workers scattered over a square whose side grows with √nWorkers,
// so spatial density — and with it each task's true candidate count — stays
// roughly constant across scales. Brute-force graph construction is then
// Θ(|T|·|W|) while the indexed path visits O(|T|·density) pairs, which is
// exactly the regime the AssignPPI/AssignKM scale benchmarks and the perf
// harness measure. Every worker walks a short random trajectory (predicted
// and a noisy actual), with mixed detour budgets, speeds, and matching rates
// so all three PPI stages see traffic.
func ScaleScenario(nTasks, nWorkers int, seed int64) ([]Task, []Worker) {
	rng := rand.New(rand.NewSource(seed))
	side := 10 * math.Sqrt(float64(nWorkers)+1)
	tasks := make([]Task, nTasks)
	for i := range tasks {
		tasks[i] = Task{
			ID:       i,
			Loc:      geo.Pt(rng.Float64()*side, rng.Float64()*side),
			Deadline: 30 + rng.Intn(30),
		}
	}
	workers := make([]Worker, nWorkers)
	for i := range workers {
		x, y := rng.Float64()*side, rng.Float64()*side
		steps := 8 + rng.Intn(5)
		pred := make([]geo.Point, steps)
		act := make([]geo.Point, steps)
		px, py := x, y
		for j := 0; j < steps; j++ {
			px += rng.Float64()*2 - 1
			py += rng.Float64()*2 - 1
			pred[j] = geo.Pt(px, py)
			act[j] = geo.Pt(px+rng.Float64()-0.5, py+rng.Float64()-0.5)
		}
		workers[i] = Worker{
			ID:        i,
			Loc:       geo.Pt(x, y),
			Detour:    4 + rng.Float64()*6,
			Speed:     0.5 + rng.Float64(),
			Predicted: pred,
			Actual:    act,
			MR:        rng.Float64(),
		}
	}
	return tasks, workers
}
