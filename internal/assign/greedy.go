package assign

import (
	"context"
	"sort"

	"github.com/spatialcrowd/tamp/internal/obs"
)

// Greedy is the degraded-mode fallback assigner: when a batch blows its
// assignment deadline (or the primary assigner fails), the platform still
// owes requesters a plan. Greedy makes one pass — tasks in deadline order,
// each taking its nearest feasible unclaimed worker by predicted-trajectory
// distance under the Theorem-2 reachability cap — with none of PPI's
// matching machinery. The spatial candidate index cuts each task's scan to
// the workers bucketed near it; the plan is worse than a maximum-weight
// matching but arrives in microseconds, deterministically.
type Greedy struct {
	// Parallelism bounds the pool used to rebuild the candidate index
	// (0 = GOMAXPROCS); the assignment pass itself is sequential.
	Parallelism int
	// BruteForce disables the spatial candidate index (see PPI.BruteForce);
	// the plan is bit-identical either way.
	BruteForce bool
}

// Name implements Assigner.
func (Greedy) Name() string { return "Greedy" }

// Assign implements Assigner.
func (g Greedy) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	return g.AssignContext(context.Background(), tasks, workers, tick)
}

// AssignContext implements ContextAssigner. Candidate buckets enumerate in
// ascending worker order — the same order the brute scan walks — and the
// nearest-worker tie-break is strict, so the first of equidistant workers
// wins on both paths and the plan is identical with and without the index.
func (g Greedy) AssignContext(ctx context.Context, tasks []Task, workers []Worker, tick int) []Pair {
	ec := edgeCountersFor(obs.RegistryFrom(ctx))
	ws := workspaceFor(ctx)
	cv := buildCandidateView(ctx, ws, len(workers), g.Parallelism, g.BruteForce, predictedEnvelope(workers))
	// Urgency order: earliest deadline first, task index as the
	// deterministic tie-break.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := &tasks[order[a]], &tasks[order[b]]
		if ta.Deadline != tb.Deadline {
			return ta.Deadline < tb.Deadline
		}
		return order[a] < order[b]
	})
	used := make([]bool, len(workers))
	var out []Pair
	var nVisited int
	for _, ti := range order {
		t := &tasks[ti]
		it := cv.iter(t.Loc)
		nVisited += it.total()
		best, bestDist := -1, 0.0
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			if used[wi] || t.ExcludedWorker(workers[wi].ID) {
				continue
			}
			w := &workers[wi]
			d := minDistTo(w.Predicted, t.Loc)
			if d < 0 || d > reachCap(w, t, tick) {
				continue
			}
			if best < 0 || d < bestDist {
				best, bestDist = wi, d
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, Pair{Task: ti, Worker: best, Weight: pairWeightFor(t, bestDist)})
		}
	}
	ec.greedyCandidates.Add(int64(nVisited))
	ec.greedyPruned.Add(int64(len(tasks)*len(workers) - nVisited))
	sort.Slice(out, func(a, b int) bool { return out[a].Task < out[b].Task })
	return out
}
