package assign

import "sort"

// Greedy is the degraded-mode fallback assigner: when a batch blows its
// assignment deadline (or the primary assigner fails), the platform still
// owes requesters a plan. Greedy makes one O(|tasks|·|workers|) pass —
// tasks in deadline order, each taking its nearest feasible unclaimed
// worker by predicted-trajectory distance under the Theorem-2 reachability
// cap — with none of PPI's matching machinery. The plan is worse than a
// maximum-weight matching but arrives in microseconds, deterministically.
type Greedy struct{}

// Name implements Assigner.
func (Greedy) Name() string { return "Greedy" }

// Assign implements Assigner.
func (Greedy) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	// Urgency order: earliest deadline first, task index as the
	// deterministic tie-break.
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := &tasks[order[a]], &tasks[order[b]]
		if ta.Deadline != tb.Deadline {
			return ta.Deadline < tb.Deadline
		}
		return order[a] < order[b]
	})
	used := make([]bool, len(workers))
	var out []Pair
	for _, ti := range order {
		t := &tasks[ti]
		best, bestDist := -1, 0.0
		for wi := range workers {
			if used[wi] || t.ExcludedWorker(workers[wi].ID) {
				continue
			}
			w := &workers[wi]
			d := minDistTo(w.Predicted, t.Loc)
			if d < 0 || d > reachCap(w, t, tick) {
				continue
			}
			if best < 0 || d < bestDist {
				best, bestDist = wi, d
			}
		}
		if best >= 0 {
			used[best] = true
			out = append(out, Pair{Task: ti, Worker: best, Weight: pairWeight(bestDist)})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Task < out[b].Task })
	return out
}
