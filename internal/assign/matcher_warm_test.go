package assign

import (
	"math/rand"
	"testing"
)

// warmStream generates a task-grouped edge stream like PPI stage 1 emits:
// tasks in ascending index order, each with a few worker edges. The first
// edge pins the weight ceiling so churned ticks keep maxW stable (the warm
// gate requires it; the Session gets the same stability from pairWeight's
// bounded range only when the heaviest pair survives).
func warmStream(rng *rand.Rand, nTasks, nWorkers int) []Edge {
	edges := []Edge{{Task: 0, Worker: 0, Weight: 2}}
	for t := 0; t < nTasks; t++ {
		k := 1 + rng.Intn(4)
		for e := 0; e < k; e++ {
			edges = append(edges, Edge{
				Task:   t,
				Worker: rng.Intn(nWorkers),
				Weight: 0.1 + rng.Float64(),
			})
		}
	}
	return edges
}

// churnStream rewrites a fraction of the TRAILING task rows in place,
// keeping the task-grouped order; leading rows stay byte-identical. This is
// the stream shape the incremental Session produces (clean rows first,
// dirty rows last), which is what makes prefix-resume effective.
func churnStream(rng *rand.Rand, edges []Edge, nWorkers int, frac float64) []Edge {
	rows := 0
	for i := range edges {
		if i == 0 || edges[i].Task != edges[i-1].Task {
			rows++
		}
	}
	cleanRows := rows - int(float64(rows)*frac) - 1
	out := edges[:0:0]
	cur, row := 0, 0
	for cur < len(edges) {
		t := edges[cur].Task
		end := cur + 1
		for end < len(edges) && edges[end].Task == t {
			end++
		}
		row++
		if row > cleanRows && rng.Float64() < 0.5 {
			if rng.Float64() < 0.2 {
				cur = end // task gone
				continue
			}
			k := 1 + rng.Intn(4)
			for e := 0; e < k; e++ {
				out = append(out, Edge{Task: t, Worker: rng.Intn(nWorkers), Weight: 0.1 + rng.Float64()})
			}
		} else {
			out = append(out, edges[cur:end]...)
		}
		cur = end
	}
	return out
}

// MatchWarm must return the exact matching a cold Match produces, across
// randomized tick sequences of partially churned streams, while actually
// resuming from checkpoints on low-churn ticks.
func TestMatchWarmMatchesColdAcrossTicks(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var warm, cold Matcher
		var slot WarmSlot
		// More workers than tasks keeps tasks as rows (the warm
		// orientation), matching the PPI stage-1 shape.
		nT := 30 + rng.Intn(120)
		nW := nT + 50 + rng.Intn(100)
		edges := warmStream(rng, nT, nW)
		totalWarm := 0
		for tick := 0; tick < 12; tick++ {
			got, warmRows := warm.MatchWarm(&slot, edges, nil)
			want := cold.Match(edges, nil)
			if len(got) != len(want) {
				t.Fatalf("seed %d tick %d: %d pairs warm vs %d cold", seed, tick, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d tick %d pair %d: warm %+v cold %+v", seed, tick, i, got[i], want[i])
				}
			}
			totalWarm += warmRows
			edges = churnStream(rng, edges, nW, 0.15)
		}
		if totalWarm == 0 {
			t.Errorf("seed %d: no rows ever resumed warm across 12 low-churn ticks", seed)
		}
	}
}

// An unchanged batch must resume past every row (full prefix skip).
func TestMatchWarmFullSkipOnIdenticalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges := warmStream(rng, 200, 300)
	var m Matcher
	var slot WarmSlot
	m.MatchWarm(&slot, edges, nil)
	got, warmRows := m.MatchWarm(&slot, edges, nil)
	want := new(Matcher).Match(edges, nil)
	if len(got) != len(want) {
		t.Fatalf("%d pairs warm vs %d cold", len(got), len(want))
	}
	rows := 0
	seen := map[int]bool{}
	for _, e := range edges {
		if !seen[e.Task] {
			seen[e.Task] = true
			rows++
		}
	}
	if warmRows != rows {
		t.Fatalf("identical batch resumed only %d of %d rows", warmRows, rows)
	}
}

// Warm equivalence under hostile inputs: invalid edges, duplicate (task,
// worker) pairs, weight ties, and ungrouped streams (which must fall back
// to a cold — still correct — solve).
func TestMatchWarmHostileInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var warm Matcher
	var slot WarmSlot
	for tick := 0; tick < 40; tick++ {
		n := 1 + rng.Intn(60)
		edges := make([]Edge, 0, n)
		for i := 0; i < n; i++ {
			e := Edge{Task: rng.Intn(20) - 1, Worker: rng.Intn(30) - 1, Weight: float64(rng.Intn(6)) / 2}
			if rng.Float64() < 0.1 {
				e.Weight = -e.Weight
			}
			edges = append(edges, e)
		}
		got, _ := warm.MatchWarm(&slot, edges, nil)
		want := new(Matcher).Match(edges, nil)
		if len(got) != len(want) {
			t.Fatalf("tick %d: %d pairs warm vs %d cold", tick, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tick %d pair %d: warm %+v cold %+v", tick, i, got[i], want[i])
			}
		}
	}
}

// The warmed matcher must not allocate once its buffers reach the working
// set — the same steady-state gate the cold Matcher holds.
func TestMatchWarmSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := warmStream(rng, 150, 200)
	var m Matcher
	var slot WarmSlot
	out := make([]Pair, 0, 256)
	for i := 0; i < 3; i++ { // warm the buffers and the checkpoint ladder
		out, _ = m.MatchWarm(&slot, edges, out[:0])
	}
	avg := testing.AllocsPerRun(100, func() {
		out, _ = m.MatchWarm(&slot, edges, out[:0])
	})
	if avg != 0 {
		t.Fatalf("warmed MatchWarm allocates %.1f/op, want 0", avg)
	}
}

// Cold re-solves through MatchWarm (changed maxW every tick) must also stay
// allocation-free once warmed: the slot machinery itself cannot allocate.
func TestMatchWarmColdPathAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := warmStream(rng, 100, 150)
	b := churnStream(rng, append([]Edge(nil), a...), 150, 1.0)
	var m Matcher
	var slot WarmSlot
	out := make([]Pair, 0, 256)
	for i := 0; i < 4; i++ {
		out, _ = m.MatchWarm(&slot, a, out[:0])
		out, _ = m.MatchWarm(&slot, b, out[:0])
	}
	avg := testing.AllocsPerRun(50, func() {
		out, _ = m.MatchWarm(&slot, a, out[:0])
		out, _ = m.MatchWarm(&slot, b, out[:0])
	})
	if avg != 0 {
		t.Fatalf("alternating MatchWarm allocates %.1f/op, want 0", avg)
	}
}
