package assign

import (
	"math/rand"
	"testing"
)

func randBatch(rng *rand.Rand) []Edge {
	n := rng.Intn(120)
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		e := Edge{
			Task:   rng.Intn(40),
			Worker: rng.Intn(40),
			Weight: rng.Float64()*2 - 0.3, // some non-positive, some duplicates
		}
		if rng.Float64() < 0.05 {
			e.Task = -1 // ignored
		}
		if rng.Float64() < 0.1 {
			e.Task += 1000 // sparse ids
		}
		edges = append(edges, e)
	}
	return edges
}

// A Matcher reused across many differently-shaped batches must return the
// same matching as a fresh solver every time — scratch reuse may never leak
// state between calls.
func TestMatcherReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var reused Matcher
	for round := 0; round < 200; round++ {
		edges := randBatch(rng)
		got := reused.Match(edges, nil)
		want := MaxWeightMatching(edges)
		if len(got) != len(want) {
			t.Fatalf("round %d: reused matcher returned %d pairs, fresh returned %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d pair %d: reused %v != fresh %v", round, i, got[i], want[i])
			}
		}
	}
}

// The KM inner loop must be allocation-free once warmed: Algorithm 4's
// stage 2 calls KM once per ε candidates, so per-call allocations would
// scale with batch count. This is the workspace-reuse acceptance check.
func TestMatcherSteadyStateAllocFree(t *testing.T) {
	edges := benchEdges(64, 64, 0.3, 21)
	var m Matcher
	out := m.Match(edges, nil) // warm: grow all scratch once
	allocs := testing.AllocsPerRun(100, func() {
		out = m.Match(edges, out[:0])
	})
	if allocs != 0 {
		t.Fatalf("warmed Matcher allocates %.1f times per Match; want 0", allocs)
	}
}

// Allocations must stay zero across a whole sequence of varied batches, not
// just repeats of one shape — the shape every tick of the simulator produces.
func TestMatcherAllocsDoNotGrowWithBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	batches := make([][]Edge, 16)
	for i := range batches {
		batches[i] = randBatch(rng)
	}
	var m Matcher
	var out []Pair
	for _, b := range batches { // warm across the full shape range
		out = m.Match(b, out)
	}
	buf := out
	allocs := testing.AllocsPerRun(20, func() {
		acc := buf[:0]
		for _, b := range batches {
			acc = m.Match(b, acc)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed Matcher allocates %.1f times per %d-batch sequence; want 0", allocs, len(batches))
	}
}
