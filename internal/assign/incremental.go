package assign

import (
	"context"
	"math"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/par"
)

// Session is the incremental assignment engine: it owns the task and worker
// populations across ticks and makes each Assign cost proportional to the
// churn since the previous one, not to the fleet size. Three caches carry
// the steady state over:
//
//   - the spatial grid index is patched in place (geo.GridIndex.Update) from
//     the envelope deltas of mutated workers, falling back to a full Build
//     only when churn crosses sessionRebuildFrac or the patch itself bails;
//   - every task keeps its stage-1/stage-3 candidate rows (confident edges,
//     pending candidates, fallback edges) and reuses them verbatim while the
//     row's validity conditions hold (see classifyRow); a row invalidated
//     only by an index patch is repaired by splicing the dirty workers'
//     entries (patchRow) instead of rescanned, and a tick with no mutations
//     and no invalid rows replays the previous plan outright;
//   - the stage-2 pending list stays sorted across ticks: surviving rows'
//     candidates are merged with the freshly recomputed rows' instead of
//     re-sorting the whole population (cmpCandidate is a strict total order,
//     so the merge reproduces the full sort exactly), and the confident-edge
//     KM warm-starts from the workspace's checkpoints (Matcher.MatchWarm).
//
// The contract is exact: Assign returns the same plan, bit for bit, that
// running PPI from scratch over Tasks()/Workers() at the same tick would —
// at every parallelism level. The churn-equivalence suite holds it to that.
//
// A Session is not safe for concurrent use, and the returned plan (like the
// slices Tasks/Workers expose) is only valid until the next call. Tasks and
// workers handed to Upsert must not be mutated by the caller afterwards;
// hand in a fresh value (or at least fresh Predicted/Actual/Excluded slices)
// to change one.
type Session struct {
	cfg PPI
	ws  Workspace

	tasks   []Task
	workers []Worker
	taskPos map[int]int // Task.ID -> position in tasks
	workPos map[int]int // Worker.ID -> position in workers

	// Dirty tracking between Assigns. A "position" is dirty when its
	// occupant changed in any way — mutated, inserted, removed, or swapped
	// in from the tail — since the last Assign.
	dirtyT     []bool
	dirtyW     []bool
	dirtyWList []int32
	// workerVer counts every worker mutation; rows computed by a full scan
	// (brute mode, NaN task location, tiny fleets) are valid only while it
	// stands still.
	workerVer uint64

	// Index state. indexEpoch bumps on every rebuild and on every mode flip,
	// invalidating all rows at once; cellVer tracks per-cell patches within
	// an epoch and ovfVer the overflow population (membership or content).
	built      bool
	scanAll    bool
	unbounded  int // workers whose widened envelope is non-finite
	indexEpoch uint64
	cellVer    []uint32
	ovfVer     uint64
	patched    uint64 // cells patched since the last rebuild
	envUnb     []bool // per-position: envelope currently non-finite

	// Per-task row caches, parallel to tasks.
	rows []sessionRow
	gen  uint64 // Assign generation; rows recomputed this tick carry it

	// Sorted stage-2 pending carried across ticks, plus merge scratch.
	pendSorted  []candidate
	pendScratch []candidate
	freshPend   []candidate

	// Reused per-tick buffers.
	deltas    []geo.EnvDelta
	recompute []int32 // rows needing a full rescan
	patchList []int32 // rows needing only a dirty-worker patch
	confident []Edge
	rest      []Edge
	out       []Pair
	batch     []Edge
	aT, aW    []bool

	// Quiescent replay: when nothing mutated and every row replayed valid,
	// the previous plan IS this tick's plan.
	mutated  bool
	havePlan bool

	stats SessionStats
}

// SessionStats reports what the last Assign reused versus recomputed, plus
// session-lifetime totals; benchmarks and the churn suite read it to assert
// the engine actually ran incrementally.
type SessionStats struct {
	// Last tick.
	Tasks, Workers int
	RecomputedRows int  // candidate rows rebuilt from a full rescan
	PatchedRows    int  // candidate rows repaired by a dirty-worker patch
	WarmRows       int  // stage-1 KM rows resumed from checkpoints
	PatchedCells   int  // grid cells patched in place (0 on rebuild ticks)
	RebuiltIndex   bool // this tick fell back to a full Build
	ScanAll        bool // degenerate full-scan mode (brute/tiny/unbounded)
	// Lifetime.
	TotalRebuilds uint64
	TotalPatched  uint64
}

// sessionRow is one task's cached candidate scan. confident/pending are the
// stage-1 outputs, fallback is the unfiltered stage-3 feasibility row (the
// assigned-worker filter is applied at emit time, since it changes every
// tick). need is the reach-constancy bound: the row stays valid at tick t'
// only while deadline−t' ≥ need, which pins every visited worker's reach cap
// at detour/2 so the cached comparisons replay bitwise.
type sessionRow struct {
	valid   bool
	scan    bool // computed against a full worker scan (wVer validity)
	expired bool // deadline < tick at compute time (reach −1 for everyone)
	cell    int32
	epoch   uint64
	gen     uint64
	wVer    uint64
	cellV   uint32
	ovfV    uint64
	need    float64
	visited int

	confident []Edge
	pending   []candidate
	fallback  []Edge
}

// sessionRebuildFrac: when more than 1/sessionRebuildFrac of the fleet is
// dirty, patching cells one by one loses to rebuilding the index outright.
const sessionRebuildFrac = 5 // 20 %

// NewSession returns an empty session configured like cfg (A, Epsilon,
// Parallelism, BruteForce all apply exactly as in PPI.AssignContext).
func NewSession(cfg PPI) *Session {
	return &Session{
		cfg:     cfg,
		taskPos: make(map[int]int),
		workPos: make(map[int]int),
	}
}

// Tasks exposes the current task population in position order. Read-only;
// valid until the next mutation or Assign.
func (s *Session) Tasks() []Task { return s.tasks }

// Workers exposes the current worker population in position order.
func (s *Session) Workers() []Worker { return s.workers }

// Stats reports the last Assign's incremental accounting.
func (s *Session) Stats() SessionStats { return s.stats }

// Workspace exposes the session's workspace for warm/cold KM accounting.
func (s *Session) Workspace() *Workspace { return &s.ws }

// UpsertTask inserts t or replaces the task with the same ID.
func (s *Session) UpsertTask(t Task) {
	s.mutated = true
	if p, ok := s.taskPos[t.ID]; ok {
		s.tasks[p] = t
		s.markTaskDirty(p)
		return
	}
	s.tasks = append(s.tasks, t)
	s.rows = append(s.rows, sessionRow{})
	s.taskPos[t.ID] = len(s.tasks) - 1
	s.markTaskDirty(len(s.tasks) - 1)
}

// RemoveTask deletes the task with the given ID, swapping the tail task into
// its slot. Only the hole and the tail positions go dirty, so every cached
// row before the hole keeps its position — and its cached edges — intact.
func (s *Session) RemoveTask(id int) bool {
	p, ok := s.taskPos[id]
	if !ok {
		return false
	}
	s.mutated = true
	last := len(s.tasks) - 1
	if p != last {
		s.tasks[p] = s.tasks[last]
		// Swap (not copy) so the displaced row's edge buffers stay available
		// for reuse; its content is stale either way and p goes dirty.
		s.rows[p], s.rows[last] = s.rows[last], s.rows[p]
		s.taskPos[s.tasks[p].ID] = p
		s.markTaskDirty(p)
	}
	s.tasks = s.tasks[:last]
	s.rows = s.rows[:last]
	delete(s.taskPos, id)
	return true
}

// UpsertWorker inserts w or replaces the worker with the same ID.
func (s *Session) UpsertWorker(w Worker) {
	s.mutated = true
	if p, ok := s.workPos[w.ID]; ok {
		s.workers[p] = w
		s.markWorkerDirty(p)
		return
	}
	s.workers = append(s.workers, w)
	s.workPos[w.ID] = len(s.workers) - 1
	s.markWorkerDirty(len(s.workers) - 1)
}

// RemoveWorker deletes the worker with the given ID (swap-remove).
func (s *Session) RemoveWorker(id int) bool {
	p, ok := s.workPos[id]
	if !ok {
		return false
	}
	s.mutated = true
	last := len(s.workers) - 1
	if p != last {
		s.workers[p] = s.workers[last]
		s.workPos[s.workers[p].ID] = p
		s.markWorkerDirty(p)
	}
	s.workers = s.workers[:last]
	delete(s.workPos, id)
	s.markWorkerDirty(last)
	return true
}

func (s *Session) markTaskDirty(p int) {
	for len(s.dirtyT) <= p {
		s.dirtyT = append(s.dirtyT, false)
	}
	s.dirtyT[p] = true
}

func (s *Session) markWorkerDirty(p int) {
	for len(s.dirtyW) <= p {
		s.dirtyW = append(s.dirtyW, false)
		s.envUnb = append(s.envUnb, false)
	}
	if !s.dirtyW[p] {
		s.dirtyW[p] = true
		s.dirtyWList = append(s.dirtyWList, int32(p))
	}
	s.workerVer++
}

// envOf mirrors PPI.AssignContext's envelope closure exactly: the predicted
// reach envelope, widened by a negative A.
func (s *Session) envOf(i int) (geo.BBox, bool) {
	b, ok := pointsEnvelope(s.workers[i].Predicted, s.workers[i].Detour)
	if ok && s.cfg.A < 0 {
		b.Min.X += s.cfg.A
		b.Min.Y += s.cfg.A
		b.Max.X -= s.cfg.A
		b.Max.Y -= s.cfg.A
	}
	return b, ok
}

// pinnedNeed returns the smallest x such that for every integer Δ =
// deadline−tick with float64(Δ) ≥ x, reachCap's min(speed·Δ, detour/2)
// resolves to the constant detour/2 branch — i.e. the worker's reach no
// longer depends on the tick. +Inf means the reach varies at every horizon
// (rows touching the worker must recompute each tick). The bound is exact,
// not approximate: the ceil seed is verified against the very comparison
// reachCap performs and bumped by ulps until it holds, so a cached row is
// never replayed at a tick where a float rounding would flip a predicate.
func pinnedNeed(w *Worker) float64 {
	half := w.Detour / 2
	switch {
	case math.IsNaN(half):
		return 0 // dt < NaN is always false: reach is the NaN half forever
	case math.IsNaN(w.Speed):
		return 0 // NaN·Δ < half is always false: reach is half forever
	case w.Speed < 0:
		return math.Inf(1)
	case w.Speed == 0:
		return 0 // reach = min(0, half), constant
	}
	if half <= 0 {
		return 0 // dt ≥ 0 ≥ half: the half branch always wins
	}
	x := math.Ceil(half / w.Speed)
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	for x < math.MaxFloat64 && w.Speed*x < half {
		x = math.Nextafter(x, math.Inf(1))
	}
	return x
}

// Row classification for one tick: fresh rows replay bitwise from cache,
// patch rows are repaired by re-evaluating only the dirty workers, full rows
// rebuild from a complete candidate scan.
const (
	rowFresh = iota
	rowPatch
	rowFull
)

// classifyRow decides how task ti's cached row carries over to tick. A row is
// fresh when every validity condition holds; it is patchable when everything
// holds except the index versions (its bucket or the overflow list was
// patched) — then only dirty workers' entries can differ from a full rescan,
// because bucket membership changes only through deltas within a frozen
// epoch and non-dirty workers' predicates replay bitwise (reach pinned by
// need, or the row expired). Anything else forces a full rebuild.
func (s *Session) classifyRow(ti, tick int, scanTick bool) int {
	r := &s.rows[ti]
	if !r.valid || ti < len(s.dirtyT) && s.dirtyT[ti] {
		return rowFull
	}
	t := &s.tasks[ti]
	expired := t.Deadline < tick
	if expired != r.expired {
		return rowFull
	}
	if !expired && !(float64(t.Deadline-tick) >= r.need) {
		return rowFull // NaN need fails here too, conservatively
	}
	if r.scan {
		// Full-scan rows depend on the entire worker population. They stay
		// valid across mode flips: the feasible set (and so the cached edges)
		// is the same whether the scan was pruned or not, and any flip into
		// or out of scan mode implies a worker mutation bumped workerVer.
		if r.wVer == s.workerVer {
			return rowFresh
		}
		return rowFull
	}
	if scanTick || r.epoch != s.indexEpoch {
		return rowFull
	}
	if r.ovfV == s.ovfVer && (r.cell < 0 || s.cellVer[r.cell] == r.cellV) {
		return rowFresh
	}
	return rowPatch
}

// Assign runs one incremental PPI tick and returns the plan — bit-identical
// to PPI{cfg}.AssignContext over Tasks()/Workers() at the same tick. The
// returned slice is reused by the next call.
func (s *Session) Assign(ctx context.Context, tick int) []Pair {
	ctx, endSpan := obs.Span(ctx, "assign.session")
	defer endSpan()
	ec := edgeCountersFor(obs.RegistryFrom(ctx))
	s.gen++
	s.stats = SessionStats{
		Tasks: len(s.tasks), Workers: len(s.workers),
		TotalRebuilds: s.stats.TotalRebuilds, TotalPatched: s.stats.TotalPatched,
	}

	s.refreshIndex(ctx, ec)
	s.refreshRows(ctx, tick)

	// Quiescent replay: no mutation since the last full Assign and every row
	// replayed valid means every stage would see byte-identical inputs — the
	// pipeline is deterministic, so the previous plan IS this tick's plan.
	// (Ticks advancing is fine: row validity already proves the tick change
	// flips no cached predicate.) Replayed ticks count every row as warm in
	// the workspace accounting; the edge-volume counters are not re-added.
	if !s.mutated && s.havePlan && !s.stats.RebuiltIndex &&
		len(s.recompute) == 0 && len(s.patchList) == 0 {
		s.ws.noteWarm(len(s.tasks))
		ec.kmWarmRows.Add(int64(len(s.tasks)))
		s.stats.WarmRows = len(s.tasks)
		return s.out
	}

	// Stage 1: concatenate cached confident rows in task order (the exact
	// stream the from-scratch scan emits) and warm-start the KM on it.
	eps := s.cfg.Epsilon
	if eps <= 0 {
		eps = 8
	}
	var nConf, nPend, nVisited int
	for i := range s.rows {
		nConf += len(s.rows[i].confident)
		nPend += len(s.rows[i].pending)
		nVisited += s.rows[i].visited
	}
	if cap(s.confident) < nConf {
		s.confident = make([]Edge, 0, nConf+nConf/2)
	}
	s.confident = s.confident[:0]
	for i := range s.rows {
		s.confident = append(s.confident, s.rows[i].confident...)
	}
	ec.confident.Add(int64(nConf))
	ec.pending.Add(int64(nPend))
	ec.ppiCandidates.Add(int64(nVisited))
	ec.ppiPruned.Add(int64(len(s.tasks)*len(s.workers) - nVisited))
	result, warmRows := s.ws.m.MatchWarm(&s.ws.warm, s.confident, s.out[:0])
	s.ws.noteWarm(warmRows)
	ec.kmWarmRows.Add(int64(warmRows))
	s.stats.WarmRows = warmRows

	s.aT = clearedBools(s.aT, len(s.tasks))
	s.aW = clearedBools(s.aW, len(s.workers))
	for _, m := range result {
		s.aT[m.Task] = true
		s.aW[m.Worker] = true
	}

	// Stage 2: merge surviving sorted candidates with the recomputed rows'
	// freshly sorted ones — cmpCandidate is a strict total order over
	// distinct (task, worker) pairs, so the merge IS the full sort — then
	// run the ε-batched KM sweep over it.
	pending := s.mergePending()
	batch := s.batch[:0]
	flush := func() {
		if len(batch) == 0 {
			return
		}
		mark := len(result)
		result = s.ws.m.Match(batch, result)
		for _, m := range result[mark:] {
			s.aT[m.Task] = true
			s.aW[m.Worker] = true
		}
		batch = batch[:0]
	}
	for _, c := range pending {
		if s.aT[c.task] || s.aW[c.worker] {
			continue
		}
		batch = append(batch, Edge{Task: c.task, Worker: c.worker, Weight: pairWeightFor(&s.tasks[c.task], c.minB)})
		if len(batch) == eps {
			flush()
		}
	}
	flush()
	s.batch = batch[:0]

	// Stage 3: emit the cached unfiltered feasibility rows of the still
	// unassigned tasks, dropping assigned workers on the way out — the same
	// edge list the from-scratch scan builds with the filter inline.
	rest := s.rest[:0]
	for ti := range s.rows {
		if s.aT[ti] {
			continue
		}
		for _, e := range s.rows[ti].fallback {
			if !s.aW[e.Worker] {
				rest = append(rest, e)
			}
		}
	}
	s.rest = rest[:0]
	ec.fallback.Add(int64(len(rest)))
	result = s.ws.m.Match(rest, result)

	// Commit: this plan's caches now describe the post-mutation state.
	for _, p := range s.dirtyWList {
		s.dirtyW[p] = false
	}
	s.dirtyWList = s.dirtyWList[:0]
	for i := range s.dirtyT {
		s.dirtyT[i] = false
	}
	s.mutated = false
	s.havePlan = true
	s.out = result
	return result
}

// refreshIndex brings the spatial index in line with the current worker
// population: in-place Update for light churn, full Build past the fallback
// threshold, and the degenerate full-scan mode when the index cannot help
// (brute config, tiny fleets, unbounded envelopes).
func (s *Session) refreshIndex(ctx context.Context, ec *edgeCounters) {
	// Settle the envelopes of dirty positions and the unbounded census.
	nW := len(s.workers)
	for _, p32 := range s.dirtyWList {
		p := int(p32)
		unb := false
		if p < nW {
			if b, ok := s.envOf(p); ok && !finiteEnvelope(b) {
				unb = true
			}
		}
		if unb != s.envUnb[p] {
			if unb {
				s.unbounded++
			} else {
				s.unbounded--
			}
			s.envUnb[p] = unb
		}
	}

	scanAll := s.cfg.BruteForce || nW < indexMinWorkers || s.unbounded > 0
	if scanAll != s.scanAll {
		s.scanAll = scanAll
		s.indexEpoch++
		s.built = false
	}
	s.stats.ScanAll = scanAll
	if scanAll {
		s.ws.all = identity(s.ws.all, nW)
		return
	}

	rebuild := !s.built ||
		sessionRebuildFrac*len(s.dirtyWList) > nW ||
		s.patched > uint64(s.cells())
	if !rebuild && len(s.dirtyWList) > 0 {
		_, end := obs.Span(ctx, "index_update")
		s.deltas = s.deltas[:0]
		ovfDirty := false
		for _, p32 := range s.dirtyWList {
			p := int(p32)
			d := geo.EnvDelta{ID: p32}
			if p < nW {
				d.Env, d.Has = s.envOf(p)
			}
			s.deltas = append(s.deltas, d)
			if !ovfDirty && inSorted(s.ws.idx.Overflow(), p32) {
				ovfDirty = true
			}
		}
		touched, ovfChanged, ok := s.ws.idx.Update(s.deltas)
		if ok {
			for _, c := range touched {
				s.cellVer[c]++
			}
			for _, p32 := range s.dirtyWList {
				if !ovfDirty && inSorted(s.ws.idx.Overflow(), p32) {
					ovfDirty = true
				}
			}
			if ovfChanged || ovfDirty {
				s.ovfVer++
			}
			s.patched += uint64(len(touched))
			s.stats.PatchedCells = len(touched)
			s.stats.TotalPatched += uint64(len(touched))
			ec.idxPatched.Add(int64(len(touched)))
		} else {
			rebuild = true
		}
		end()
	}
	if rebuild {
		_, end := obs.Span(ctx, "index")
		err := s.ws.idx.Build(ctx, nW, s.cfg.Parallelism, s.envOf)
		end()
		s.indexEpoch++
		s.patched = 0
		if err != nil {
			// Cancellation mid-build: serve this tick by full scan (the plan
			// is partial anyway) and let the next tick rebuild from cold.
			s.built = false
			s.stats.ScanAll = true
			s.ws.all = identity(s.ws.all, nW)
			return
		}
		s.built = true
		s.cellVer = growCellVer(s.cellVer, s.cells())
		s.stats.RebuiltIndex = true
		s.stats.TotalRebuilds++
		ec.idxRebuilds.Add(1)
	}
	s.ws.all = identity(s.ws.all, nW)
}

// cells returns the current grid's cell count (0 when gridless).
func (s *Session) cells() int {
	cols, rows := s.ws.idx.Dims()
	return cols * rows
}

// refreshRows repairs every invalidated row on the parallel pool: rows whose
// bucket was merely patched get a dirty-worker splice, everything else a full
// rescan. All surviving rows replay bitwise, so the scan cost of a tick is
// proportional to the churn, not the task population.
func (s *Session) refreshRows(ctx context.Context, tick int) {
	scanTick := s.stats.ScanAll // includes the mid-build cancellation case
	s.recompute = s.recompute[:0]
	s.patchList = s.patchList[:0]
	for ti := range s.rows {
		switch s.classifyRow(ti, tick, scanTick) {
		case rowFresh:
		case rowPatch:
			s.patchList = append(s.patchList, int32(ti))
		default:
			s.rows[ti].valid = false
			s.recompute = append(s.recompute, int32(ti))
		}
	}
	s.stats.RecomputedRows = len(s.recompute)
	s.stats.PatchedRows = len(s.patchList)
	list := s.recompute
	par.ForEach(ctx, len(list), s.cfg.Parallelism, func(k int) error {
		s.computeRow(int(list[k]), tick, scanTick)
		return nil
	})
	plist := s.patchList
	par.ForEach(ctx, len(plist), s.cfg.Parallelism, func(k int) error {
		s.patchRow(int(plist[k]), tick)
		return nil
	})
}

// computeRow rebuilds task ti's cached candidate row: the same scan PPI's
// stages 1 and 3 run, fused into one pass that also derives the row's reach
// pinning bound.
func (s *Session) computeRow(ti, tick int, scanTick bool) {
	r := &s.rows[ti]
	r.confident = r.confident[:0]
	r.pending = r.pending[:0]
	r.fallback = r.fallback[:0]
	t := &s.tasks[ti]

	var it candIter
	scan := scanTick
	cell := -1
	if scanTick || math.IsNaN(t.Loc.X) || math.IsNaN(t.Loc.Y) {
		it = candIter{a: s.ws.all}
		scan = true
	} else {
		cell = s.ws.idx.CellOf(t.Loc)
		it = candIter{a: s.ws.idx.Bucket(cell), b: s.ws.idx.Overflow()}
	}
	r.visited = it.total()

	need := 0.0
	for wi32, ok := it.next(); ok; wi32, ok = it.next() {
		wi := int(wi32)
		w := &s.workers[wi]
		if t.ExcludedWorker(w.ID) {
			continue
		}
		reach := reachCap(w, t, tick)
		var bCount int
		minB, dmin := -1.0, -1.0
		for _, lhat := range w.Predicted {
			d := lhat.Dist(t.Loc)
			if d+s.cfg.A <= reach {
				bCount++
				if minB < 0 || d < minB {
					minB = d
				}
			}
			if dmin < 0 || d < dmin {
				dmin = d
			}
		}
		if len(w.Predicted) > 0 {
			if n := pinnedNeed(w); !(n <= need) {
				need = n // NaN-propagating max
			}
		}
		if bCount > 0 {
			conf := float64(bCount) * w.MR
			if conf >= 1 {
				r.confident = append(r.confident, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(t, minB)})
			} else {
				r.pending = append(r.pending, candidate{task: ti, worker: wi, minB: minB, conf: conf})
			}
		}
		// The stage-3 predicate, minus the per-tick assigned-worker filter
		// (applied at emit). dmin here is exactly minDistTo(w.Predicted, loc):
		// same accumulation order, bitwise-same result, NaN included.
		if dmin >= 0 && dmin <= reach {
			r.fallback = append(r.fallback, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(t, dmin)})
		}
	}

	r.scan = scan
	r.expired = t.Deadline < tick
	r.cell = int32(cell)
	r.epoch = s.indexEpoch
	r.gen = s.gen
	r.wVer = s.workerVer
	r.ovfV = s.ovfVer
	if cell >= 0 {
		r.cellV = s.cellVer[cell]
	}
	r.need = need
	r.valid = true
}

// patchRow repairs task ti's cached row after an index patch touched its
// bucket. Per-(task, worker) edges are independent, so only dirty workers'
// entries can differ from what a full rescan would produce: drop those from
// the three cached lists, re-evaluate the dirty workers present in the
// current candidate set at this tick, and splice the results back in worker
// order (the lists are worker-ascending, like the candidate iteration that
// built them). The result is byte-identical to computeRow's. need only grows
// — departed workers' contributions are kept — which is conservative: an
// inflated bound recomputes the row earlier, never replays it stale.
func (s *Session) patchRow(ti, tick int) {
	r := &s.rows[ti]
	t := &s.tasks[ti]
	it := candIter{a: s.ws.idx.Bucket(int(r.cell)), b: s.ws.idx.Overflow()}
	r.visited = it.total()
	r.confident = s.dropDirtyEdges(r.confident)
	r.pending = s.dropDirtyCands(r.pending)
	r.fallback = s.dropDirtyEdges(r.fallback)

	need := r.need
	for wi32, ok := it.next(); ok; wi32, ok = it.next() {
		wi := int(wi32)
		if wi >= len(s.dirtyW) || !s.dirtyW[wi] {
			continue
		}
		w := &s.workers[wi]
		if t.ExcludedWorker(w.ID) {
			continue
		}
		reach := reachCap(w, t, tick)
		var bCount int
		minB, dmin := -1.0, -1.0
		for _, lhat := range w.Predicted {
			d := lhat.Dist(t.Loc)
			if d+s.cfg.A <= reach {
				bCount++
				if minB < 0 || d < minB {
					minB = d
				}
			}
			if dmin < 0 || d < dmin {
				dmin = d
			}
		}
		if len(w.Predicted) > 0 {
			if n := pinnedNeed(w); !(n <= need) {
				need = n // NaN-propagating max
			}
		}
		if bCount > 0 {
			conf := float64(bCount) * w.MR
			if conf >= 1 {
				r.confident = insertEdgeByWorker(r.confident, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(t, minB)})
			} else {
				r.pending = insertCandByWorker(r.pending, candidate{task: ti, worker: wi, minB: minB, conf: conf})
			}
		}
		if dmin >= 0 && dmin <= reach {
			r.fallback = insertEdgeByWorker(r.fallback, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(t, dmin)})
		}
	}
	r.need = need
	r.gen = s.gen
	r.ovfV = s.ovfVer
	if r.cell >= 0 {
		r.cellV = s.cellVer[r.cell]
	}
}

// dropDirtyEdges removes entries whose worker is dirty, in place, preserving
// order. Positions past the dirty-flag array were never marked.
func (s *Session) dropDirtyEdges(row []Edge) []Edge {
	out := row[:0]
	for _, e := range row {
		if e.Worker < len(s.dirtyW) && s.dirtyW[e.Worker] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// dropDirtyCands is dropDirtyEdges for stage-2 candidates.
func (s *Session) dropDirtyCands(row []candidate) []candidate {
	out := row[:0]
	for _, c := range row {
		if c.worker < len(s.dirtyW) && s.dirtyW[c.worker] {
			continue
		}
		out = append(out, c)
	}
	return out
}

// insertEdgeByWorker splices e into the worker-ascending edge row.
func insertEdgeByWorker(row []Edge, e Edge) []Edge {
	i := len(row)
	for i > 0 && row[i-1].Worker > e.Worker {
		i--
	}
	row = append(row, Edge{})
	copy(row[i+1:], row[i:])
	row[i] = e
	return row
}

// insertCandByWorker splices c into the worker-ascending candidate row.
func insertCandByWorker(row []candidate, c candidate) []candidate {
	i := len(row)
	for i > 0 && row[i-1].worker > c.worker {
		i--
	}
	row = append(row, candidate{})
	copy(row[i+1:], row[i:])
	row[i] = c
	return row
}

// mergePending rebuilds the sorted stage-2 candidate list: the previous
// tick's sorted list minus entries of recomputed (or removed) tasks, merged
// with the recomputed rows' candidates. Cost is O(survivors + fresh·log
// fresh) instead of the from-scratch O(P log P) over the whole population.
func (s *Session) mergePending() []candidate {
	fresh := s.freshPend[:0]
	for _, ti := range s.recompute {
		fresh = append(fresh, s.rows[ti].pending...)
	}
	for _, ti := range s.patchList {
		fresh = append(fresh, s.rows[ti].pending...)
	}
	sortPending(fresh)
	s.freshPend = fresh[:0]

	stale := func(c candidate) bool {
		return c.task >= len(s.tasks) || s.rows[c.task].gen == s.gen
	}
	merged := s.pendScratch[:0]
	prev := s.pendSorted
	i, j := 0, 0
	for {
		for i < len(prev) && stale(prev[i]) {
			i++
		}
		if i >= len(prev) {
			merged = append(merged, fresh[j:]...)
			break
		}
		if j >= len(fresh) {
			for ; i < len(prev); i++ {
				if !stale(prev[i]) {
					merged = append(merged, prev[i])
				}
			}
			break
		}
		if cmpCandidate(prev[i], fresh[j]) <= 0 {
			merged = append(merged, prev[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	s.pendScratch = prev[:0]
	s.pendSorted = merged
	return merged
}

// inSorted reports whether v occurs in the ascending slice a.
func inSorted(a []int32, v int32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == v
}

// clearedBools readies a cleared bool scratch of length n.
func clearedBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// growCellVer returns a zeroed per-cell version array of length n.
func growCellVer(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
