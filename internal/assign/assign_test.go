package assign

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func TestMaxWeightMatchingSimple(t *testing.T) {
	edges := []Edge{
		{Task: 0, Worker: 0, Weight: 1},
		{Task: 0, Worker: 1, Weight: 5},
		{Task: 1, Worker: 0, Weight: 4},
		{Task: 1, Worker: 1, Weight: 2},
	}
	got := MaxWeightMatching(edges)
	if len(got) != 2 {
		t.Fatalf("matches = %v", got)
	}
	// Optimal: 0->1 (5) + 1->0 (4) = 9 rather than 1+2=3.
	var total float64
	for _, m := range got {
		total += m.Weight
	}
	if math.Abs(total-9) > 1e-9 {
		t.Errorf("total = %v, want 9", total)
	}
}

func TestMaxWeightMatchingUnbalanced(t *testing.T) {
	// Three tasks, one worker: only the best edge can match.
	edges := []Edge{
		{Task: 0, Worker: 7, Weight: 1},
		{Task: 1, Worker: 7, Weight: 3},
		{Task: 2, Worker: 7, Weight: 2},
	}
	got := MaxWeightMatching(edges)
	if len(got) != 1 || got[0].Task != 1 || got[0].Worker != 7 {
		t.Fatalf("matches = %v", got)
	}
}

func TestMaxWeightMatchingIgnoresNonPositive(t *testing.T) {
	edges := []Edge{
		{Task: 0, Worker: 0, Weight: 0},
		{Task: 1, Worker: 1, Weight: -2},
	}
	if got := MaxWeightMatching(edges); len(got) != 0 {
		t.Errorf("matches = %v, want none", got)
	}
	if got := MaxWeightMatching(nil); got != nil {
		t.Errorf("nil edges = %v", got)
	}
}

func TestMaxWeightMatchingNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		nT, nW := rng.Intn(6)+1, rng.Intn(6)+1
		var edges []Edge
		for ti := 0; ti < nT; ti++ {
			for wi := 0; wi < nW; wi++ {
				if rng.Float64() < 0.6 {
					edges = append(edges, Edge{Task: ti, Worker: wi, Weight: rng.Float64() + 0.01})
				}
			}
		}
		got := MaxWeightMatching(edges)
		seenT, seenW := map[int]bool{}, map[int]bool{}
		for _, m := range got {
			if seenT[m.Task] || seenW[m.Worker] {
				t.Fatalf("duplicate in %v", got)
			}
			seenT[m.Task] = true
			seenW[m.Worker] = true
		}
	}
}

// bruteForceBest finds the optimal matching weight by enumerating all
// assignments recursively (small instances only).
func bruteForceBest(nT, nW int, w map[[2]int]float64) float64 {
	var rec func(ti int, usedW map[int]bool) float64
	rec = func(ti int, usedW map[int]bool) float64 {
		if ti == nT {
			return 0
		}
		best := rec(ti+1, usedW) // leave task ti unassigned
		for wi := 0; wi < nW; wi++ {
			if usedW[wi] {
				continue
			}
			wt, ok := w[[2]int{ti, wi}]
			if !ok {
				continue
			}
			usedW[wi] = true
			if v := wt + rec(ti+1, usedW); v > best {
				best = v
			}
			delete(usedW, wi)
		}
		return best
	}
	return rec(0, map[int]bool{})
}

func TestMaxWeightMatchingOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		nT, nW := rng.Intn(5)+1, rng.Intn(5)+1
		w := map[[2]int]float64{}
		var edges []Edge
		for ti := 0; ti < nT; ti++ {
			for wi := 0; wi < nW; wi++ {
				if rng.Float64() < 0.7 {
					wt := rng.Float64()*10 + 0.01
					w[[2]int{ti, wi}] = wt
					edges = append(edges, Edge{Task: ti, Worker: wi, Weight: wt})
				}
			}
		}
		want := bruteForceBest(nT, nW, w)
		var got float64
		for _, m := range MaxWeightMatching(edges) {
			got += m.Weight
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: matching weight %v, brute force %v (edges %v)", trial, got, want, edges)
		}
	}
}

// straightWorker builds a worker walking right from (x, y) one cell per
// tick for n ticks, with identical predicted and actual paths.
func straightWorker(id int, x, y float64, n int, detour, mr float64) Worker {
	w := Worker{ID: id, Loc: geo.Pt(x, y), Detour: detour, Speed: 1, MR: mr}
	for i := 0; i < n; i++ {
		p := geo.Pt(x+float64(i+1), y)
		w.Predicted = append(w.Predicted, p)
		w.Actual = append(w.Actual, p)
	}
	return w
}

func TestPPIAssignsConfidentFirst(t *testing.T) {
	// Worker 0 has high MR and its path passes straight through task 0;
	// worker 1 has low MR. A single near task must go to the confident
	// worker even though worker 1 is marginally closer.
	tasks := []Task{{ID: 0, Loc: geo.Pt(5, 0), Deadline: 20}}
	w0 := straightWorker(0, 0, 0, 10, 8, 0.9) // path hits (5,0) exactly
	w1 := straightWorker(1, 0, 0.5, 10, 8, 0.05)
	got := (PPI{A: 0.5, Epsilon: 2}).Assign(tasks, []Worker{w0, w1}, 0)
	if len(got) != 1 {
		t.Fatalf("assignments = %v", got)
	}
	if got[0].Worker != 0 {
		t.Errorf("task went to worker %d, want confident worker 0", got[0].Worker)
	}
}

func TestPPIStagesCoverAllFeasible(t *testing.T) {
	// Four tasks along two workers' paths; everything feasible should be
	// assigned across the three stages.
	tasks := []Task{
		{ID: 0, Loc: geo.Pt(3, 0), Deadline: 30},
		{ID: 1, Loc: geo.Pt(3, 10), Deadline: 30},
	}
	w0 := straightWorker(0, 0, 0, 8, 10, 0.6)
	w1 := straightWorker(1, 0, 10, 8, 10, 0.01) // low MR: lands in stage 3
	got := (PPI{A: 0.5, Epsilon: 1}).Assign(tasks, []Worker{w0, w1}, 0)
	if len(got) != 2 {
		t.Fatalf("assignments = %v, want both tasks assigned", got)
	}
	byTask := map[int]int{}
	for _, m := range got {
		byTask[m.Task] = m.Worker
	}
	if byTask[0] != 0 || byTask[1] != 1 {
		t.Errorf("assignment = %v", byTask)
	}
}

func TestPPIRespectsDeadline(t *testing.T) {
	// Task deadline already passed: no assignment possible.
	tasks := []Task{{ID: 0, Loc: geo.Pt(3, 0), Deadline: 2}}
	w := straightWorker(0, 0, 0, 10, 10, 0.9)
	got := PPI{A: 0.5}.Assign(tasks, []Worker{w}, 5)
	if len(got) != 0 {
		t.Errorf("assignments past deadline = %v", got)
	}
}

func TestPPIRespectsDetour(t *testing.T) {
	// Task 6 cells off the path; detour budget 4 (cap 2) makes it
	// infeasible even though the deadline is generous.
	tasks := []Task{{ID: 0, Loc: geo.Pt(3, 6), Deadline: 100}}
	w := straightWorker(0, 0, 0, 10, 4, 0.9)
	got := PPI{A: 0.5}.Assign(tasks, []Worker{w}, 0)
	if len(got) != 0 {
		t.Errorf("assignments beyond detour = %v", got)
	}
}

func TestPPIUniqueAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var tasks []Task
	for i := 0; i < 12; i++ {
		tasks = append(tasks, Task{ID: i, Loc: geo.Pt(rng.Float64()*20, rng.Float64()*20), Deadline: 40})
	}
	var workers []Worker
	for i := 0; i < 8; i++ {
		workers = append(workers, straightWorker(i, rng.Float64()*20, rng.Float64()*20, 10, 10, rng.Float64()))
	}
	got := (PPI{A: 1, Epsilon: 3}).Assign(tasks, workers, 0)
	seenT, seenW := map[int]bool{}, map[int]bool{}
	for _, m := range got {
		if seenT[m.Task] || seenW[m.Worker] {
			t.Fatalf("duplicate in %v", got)
		}
		seenT[m.Task] = true
		seenW[m.Worker] = true
	}
}

func TestKMBaselineMatchesFeasiblePairs(t *testing.T) {
	tasks := []Task{{ID: 0, Loc: geo.Pt(4, 0), Deadline: 30}}
	w := straightWorker(0, 0, 0, 8, 10, 0.5)
	got := (KM{}).Assign(tasks, []Worker{w}, 0)
	if len(got) != 1 || got[0].Worker != 0 {
		t.Fatalf("KM = %v", got)
	}
}

func TestUBUsesActualTrajectory(t *testing.T) {
	// Prediction is wildly wrong; actual path passes through the task.
	w := Worker{ID: 0, Loc: geo.Pt(0, 0), Detour: 8, Speed: 1, MR: 0.5}
	for i := 0; i < 8; i++ {
		w.Predicted = append(w.Predicted, geo.Pt(0, float64(20+i)))
		w.Actual = append(w.Actual, geo.Pt(float64(i+1), 0))
	}
	tasks := []Task{{ID: 0, Loc: geo.Pt(4, 0), Deadline: 30}}
	if got := (UB{}).Assign(tasks, []Worker{w}, 0); len(got) != 1 {
		t.Errorf("UB should match via actual path, got %v", got)
	}
	if got := (KM{}).Assign(tasks, []Worker{w}, 0); len(got) != 0 {
		t.Errorf("KM should fail via predicted path, got %v", got)
	}
}

func TestLBUsesCurrentLocationOnly(t *testing.T) {
	// Worker currently near task A, path leads to task B. LB must pick A.
	w := straightWorker(0, 0, 0, 10, 10, 0.5)
	tasks := []Task{
		{ID: 0, Loc: geo.Pt(1, 0), Deadline: 30},  // near current location
		{ID: 1, Loc: geo.Pt(9, 0), Deadline: 30},  // near path end
		{ID: 2, Loc: geo.Pt(0, 40), Deadline: 30}, // unreachable
	}
	got := (LB{}).Assign(tasks, []Worker{w}, 0)
	if len(got) != 1 || got[0].Task != 0 {
		t.Errorf("LB = %v, want task 0 only", got)
	}
}

func TestGGPSOFeasibleAndUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var tasks []Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, Task{ID: i, Loc: geo.Pt(rng.Float64()*15, rng.Float64()*15), Deadline: 40})
	}
	var workers []Worker
	for i := 0; i < 6; i++ {
		workers = append(workers, straightWorker(i, rng.Float64()*15, rng.Float64()*15, 12, 10, 0.5))
	}
	g := GGPSO{Population: 20, Generations: 30, Seed: 4}
	got := g.Assign(tasks, workers, 0)
	seenT, seenW := map[int]bool{}, map[int]bool{}
	for _, m := range got {
		if seenT[m.Task] || seenW[m.Worker] {
			t.Fatalf("duplicate in %v", got)
		}
		seenT[m.Task] = true
		seenW[m.Worker] = true
		// Every matched pair must be feasible.
		w := &workers[m.Worker]
		dmin := minDistTo(w.Predicted, tasks[m.Task].Loc)
		if dmin > reachCap(w, &tasks[m.Task], 0) {
			t.Fatalf("infeasible pair in %v", got)
		}
	}
}

func TestGGPSOApproachesKMQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{ID: i, Loc: geo.Pt(rng.Float64()*12, rng.Float64()*12), Deadline: 40})
	}
	var workers []Worker
	for i := 0; i < 8; i++ {
		workers = append(workers, straightWorker(i, rng.Float64()*12, rng.Float64()*12, 14, 10, 0.5))
	}
	var kmW, ggW float64
	for _, m := range (KM{}).Assign(tasks, workers, 0) {
		kmW += m.Weight
	}
	for _, m := range (GGPSO{Population: 60, Generations: 120, Seed: 2}).Assign(tasks, workers, 0) {
		ggW += m.Weight
	}
	if ggW < kmW*0.7 {
		t.Errorf("GGPSO weight %v too far below KM optimum %v", ggW, kmW)
	}
	if ggW > kmW+1e-9 {
		t.Errorf("GGPSO weight %v exceeds the KM optimum %v: matching bug", ggW, kmW)
	}
}

func TestReachCap(t *testing.T) {
	w := Worker{Detour: 10, Speed: 2}
	task := Task{Deadline: 4}
	// d^t = 2*(4-1) = 6 > d/2 = 5 → cap 5.
	if got := reachCap(&w, &task, 1); got != 5 {
		t.Errorf("cap = %v, want 5", got)
	}
	// d^t = 2*1 = 2 < 5 → cap 2.
	if got := reachCap(&w, &task, 3); got != 2 {
		t.Errorf("cap = %v, want 2", got)
	}
	// Past deadline → infeasible sentinel.
	if got := reachCap(&w, &task, 9); got != -1 {
		t.Errorf("cap = %v, want -1", got)
	}
}

func TestMinDistTo(t *testing.T) {
	path := []geo.Point{geo.Pt(0, 0), geo.Pt(3, 0), geo.Pt(6, 0)}
	if got := minDistTo(path, geo.Pt(3, 4)); math.Abs(got-4) > 1e-12 {
		t.Errorf("minDist = %v", got)
	}
	if got := minDistTo(nil, geo.Pt(0, 0)); got != -1 {
		t.Errorf("empty path minDist = %v", got)
	}
}

func TestAssignerNames(t *testing.T) {
	names := map[string]Assigner{
		"PPI":   PPI{},
		"KM":    KM{},
		"UB":    UB{},
		"LB":    LB{},
		"GGPSO": GGPSO{},
	}
	for want, a := range names {
		if a.Name() != want {
			t.Errorf("Name() = %q, want %q", a.Name(), want)
		}
	}
}

// TestMaxWeightMatchingRectangularLarge exercises the tasks >> workers
// orientation the batch pools produce, checking optimality against brute
// force on the worker side.
func TestMaxWeightMatchingRectangularLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		nT, nW := 40+rng.Intn(40), rng.Intn(4)+1
		w := map[[2]int]float64{}
		var edges []Edge
		for ti := 0; ti < nT; ti++ {
			for wi := 0; wi < nW; wi++ {
				if rng.Float64() < 0.3 {
					wt := rng.Float64()*5 + 0.01
					w[[2]int{ti, wi}] = wt
					edges = append(edges, Edge{Task: ti, Worker: wi, Weight: wt})
				}
			}
		}
		// Brute force over worker assignments (≤ 4 workers, each picks a
		// task or none).
		var best func(wi int, used map[int]bool) float64
		best = func(wi int, used map[int]bool) float64 {
			if wi == nW {
				return 0
			}
			b := best(wi+1, used)
			for ti := 0; ti < nT; ti++ {
				if used[ti] {
					continue
				}
				wt, ok := w[[2]int{ti, wi}]
				if !ok {
					continue
				}
				used[ti] = true
				if v := wt + best(wi+1, used); v > b {
					b = v
				}
				delete(used, ti)
			}
			return b
		}
		want := best(0, map[int]bool{})
		var got float64
		for _, m := range MaxWeightMatching(edges) {
			got += m.Weight
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: got %v, want %v (nT=%d nW=%d)", trial, got, want, nT, nW)
		}
	}
}
