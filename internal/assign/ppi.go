package assign

import (
	"sort"
)

// PPI is the Prediction Performance-Involved task assignment algorithm
// (Algorithm 4). It stages the matching by the expected completion
// probability derived from each worker's matching rate (Theorem 2):
//
//  1. pairs whose confidence |B|·MR reaches 1 are matched first by KM;
//  2. the remaining confident pairs are matched in descending |B|·MR order,
//     in KM batches of ε;
//  3. leftover tasks and workers fall back to a plain prediction-based KM.
type PPI struct {
	// A is the matching-rate distance threshold a of Def. 7, in cells:
	// predicted and true locations within A count as matched, and Theorem 2
	// requires dis(l̂, τ.l) + a ≤ min(d/2, d^t) for a confident pair.
	A float64
	// Epsilon is ε, the KM batch size of the second stage. Values ≤ 0
	// default to 8.
	Epsilon int
}

// Name implements Assigner.
func (p PPI) Name() string { return "PPI" }

// candidate records one (B, τ, w) entry of Algorithm 4's first stage.
type candidate struct {
	task, worker int     // indexes into the slices
	minB         float64 // min distance in B
	conf         float64 // |B|·MR
}

// Assign implements Assigner.
func (p PPI) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	eps := p.Epsilon
	if eps <= 0 {
		eps = 8
	}

	// Stage 1 (lines 1–12): collect B for every combination; pairs with
	// |B|·MR ≥ 1 go straight to the first KM; the rest are kept in 𝓑.
	var confident []Edge
	var pending []candidate
	for ti := range tasks {
		for wi := range workers {
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			cap := reachCap(w, &tasks[ti], tick)
			var bCount int
			minB := -1.0
			for _, lhat := range w.Predicted {
				d := lhat.Dist(tasks[ti].Loc)
				if d+p.A <= cap {
					bCount++
					if minB < 0 || d < minB {
						minB = d
					}
				}
			}
			if bCount == 0 {
				continue
			}
			conf := float64(bCount) * w.MR
			if conf >= 1 {
				confident = append(confident, Edge{Task: ti, Worker: wi, Weight: pairWeight(minB)})
			} else {
				pending = append(pending, candidate{task: ti, worker: wi, minB: minB, conf: conf})
			}
		}
	}
	result := MaxWeightMatching(confident)
	assignedT := map[int]bool{}
	assignedW := map[int]bool{}
	for _, m := range result {
		assignedT[m.Task] = true
		assignedW[m.Worker] = true
	}

	// Stage 2 (lines 13–27): traverse 𝓑 in descending |B|·MR, batching ε
	// candidates per KM call; after each call, drop everything touching the
	// matched tasks and workers.
	sort.Slice(pending, func(a, b int) bool { return pending[a].conf > pending[b].conf })
	var batch []Edge
	flush := func() {
		if len(batch) == 0 {
			return
		}
		mf := MaxWeightMatching(batch)
		for _, m := range mf {
			result = append(result, m)
			assignedT[m.Task] = true
			assignedW[m.Worker] = true
		}
		batch = batch[:0]
	}
	for _, c := range pending {
		if assignedT[c.task] || assignedW[c.worker] {
			continue
		}
		batch = append(batch, Edge{Task: c.task, Worker: c.worker, Weight: pairWeight(c.minB)})
		if len(batch) == eps {
			flush()
		}
	}
	flush()

	// Stage 3 (lines 28–34): remaining tasks and workers matched on the
	// plain prediction-feasibility graph.
	var rest []Edge
	for ti := range tasks {
		if assignedT[ti] {
			continue
		}
		for wi := range workers {
			if assignedW[wi] {
				continue
			}
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			dmin := minDistTo(w.Predicted, tasks[ti].Loc)
			if dmin < 0 {
				continue
			}
			if dmin <= reachCap(w, &tasks[ti], tick) {
				rest = append(rest, Edge{Task: ti, Worker: wi, Weight: pairWeight(dmin)})
			}
		}
	}
	for _, m := range MaxWeightMatching(rest) {
		result = append(result, m)
	}
	return result
}
