package assign

import (
	"context"
	"math"
	"slices"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/par"
)

// PPI is the Prediction Performance-Involved task assignment algorithm
// (Algorithm 4). It stages the matching by the expected completion
// probability derived from each worker's matching rate (Theorem 2):
//
//  1. pairs whose confidence |B|·MR reaches 1 are matched first by KM;
//  2. the remaining confident pairs are matched in descending |B|·MR order,
//     in KM batches of ε;
//  3. leftover tasks and workers fall back to a plain prediction-based KM.
type PPI struct {
	// A is the matching-rate distance threshold a of Def. 7, in cells:
	// predicted and true locations within A count as matched, and Theorem 2
	// requires dis(l̂, τ.l) + a ≤ min(d/2, d^t) for a confident pair.
	A float64
	// Epsilon is ε, the KM batch size of the second stage. Values ≤ 0
	// default to 8.
	Epsilon int
	// Parallelism bounds the pool used by AssignContext to build the
	// candidate graphs of stages 1 and 3 (0 = GOMAXPROCS). The staged KM
	// matching itself stays sequential; the plan is identical at every
	// parallelism level.
	Parallelism int
	// BruteForce disables the spatial candidate index and scans every
	// (task, worker) pair, the pre-index behaviour. The plan is bit-identical
	// either way; the flag exists so tests can hold the scan up as the
	// oracle for the indexed path.
	BruteForce bool
}

// Name implements Assigner.
func (p PPI) Name() string { return "PPI" }

// candidate records one (B, τ, w) entry of Algorithm 4's first stage.
type candidate struct {
	task, worker int     // indexes into the slices
	minB         float64 // min distance in B
	conf         float64 // |B|·MR
}

// cmpCandidate is the stage-2 traversal order: descending confidence with
// (task, worker) index as the tie-break — a strict total order, so the
// sorted sequence is unique and, crucially, an incremental merge of
// surviving and fresh candidates reproduces it exactly. NaN confidence
// sorts last (after every real value) to keep the comparator consistent.
func cmpCandidate(a, b candidate) int {
	an, bn := math.IsNaN(a.conf), math.IsNaN(b.conf)
	switch {
	case an && bn:
	case an:
		return 1
	case bn:
		return -1
	case a.conf > b.conf:
		return -1
	case a.conf < b.conf:
		return 1
	}
	if a.task != b.task {
		return a.task - b.task
	}
	return a.worker - b.worker
}

// sortPending orders stage-2 candidates by cmpCandidate. slices.SortFunc on
// the typed slice allocates nothing, unlike the sort.Slice closure it
// replaced (one interface header + closure per batch); the steady-state
// alloc gate covers it.
func sortPending(pending []candidate) {
	slices.SortFunc(pending, cmpCandidate)
}

// growCandidates readies a reusable candidate buffer with capacity n.
func growCandidates(buf []candidate, n int) []candidate {
	if cap(buf) < n {
		return make([]candidate, 0, n)
	}
	return buf[:0]
}

// edgeCounters bundles the tamp_assign_edges_total series the assigners
// bump every batch; resolved once per registry through Memo because a
// labelled lookup per batch would rival a small batch's matching work.
// The candidates/pruned stages expose the index's effect: candidates is
// the number of (task, worker) pairs actually examined after spatial
// pruning, pruned is the all-pairs count minus that.
type edgeCounters struct {
	confident, pending, fallback, km *obs.Counter
	ppiCandidates, ppiPruned         *obs.Counter
	kmCandidates, kmPruned           *obs.Counter
	greedyCandidates, greedyPruned   *obs.Counter

	// Incremental-engine series: rows the warm-started KM resumed without
	// re-solving, index cells patched in place by Update, and full index
	// rebuilds (every from-scratch Build, including churn fallbacks).
	kmWarmRows  *obs.Counter
	idxPatched  *obs.Counter
	idxRebuilds *obs.Counter
}

func edgeCountersFor(reg *obs.Registry) *edgeCounters {
	return reg.Memo("assign.edges", func(r *obs.Registry) any {
		edges := func(alg, stage string) *obs.Counter {
			return r.Counter("tamp_assign_edges_total", obs.L("alg", alg), obs.L("stage", stage))
		}
		return &edgeCounters{
			confident:        edges("PPI", "confident"),
			pending:          edges("PPI", "pending"),
			fallback:         edges("PPI", "fallback"),
			km:               edges("KM", "all"),
			ppiCandidates:    edges("PPI", "candidates"),
			ppiPruned:        edges("PPI", "pruned"),
			kmCandidates:     edges("KM", "candidates"),
			kmPruned:         edges("KM", "pruned"),
			greedyCandidates: edges("Greedy", "candidates"),
			greedyPruned:     edges("Greedy", "pruned"),
			kmWarmRows:       r.Counter("tamp_km_warm_rows_total"),
			idxPatched:       r.Counter("tamp_index_patched_cells_total"),
			idxRebuilds:      r.Counter("tamp_index_rebuilds_total"),
		}
	}).(*edgeCounters)
}

// Assign implements Assigner.
func (p PPI) Assign(tasks []Task, workers []Worker, tick int) []Pair {
	return p.AssignContext(context.Background(), tasks, workers, tick)
}

// AssignContext implements ContextAssigner: the candidate scans of stages 1
// and 3 fan out one task row per pool goroutine, each row writing only its
// own slot; rows merge in task order so the staged matching sees the same
// graph — and returns the same plan — at every parallelism level. Each row
// visits only the workers the spatial index buckets near the task (every
// bucket is sorted ascending, the same order the brute scan walks), so the
// plan is also identical with and without the index. A cancelled ctx yields
// a partial plan the caller should discard.
func (p PPI) AssignContext(ctx context.Context, tasks []Task, workers []Worker, tick int) []Pair {
	eps := p.Epsilon
	if eps <= 0 {
		eps = 8
	}
	// Per-stage wall time lands in tamp_phase_seconds (assign.ppi/stage1..3)
	// and candidate-edge volume in tamp_assign_edges_total — the numbers
	// behind the paper's AssignTime trends, visible per batch.
	ctx, endPPI := obs.Span(ctx, "assign.ppi")
	defer endPPI()
	ec := edgeCountersFor(obs.RegistryFrom(ctx))
	ws := workspaceFor(ctx)
	cv := buildCandidateView(ctx, ws, len(workers), p.Parallelism, p.BruteForce, func(i int) (geo.BBox, bool) {
		b, ok := pointsEnvelope(workers[i].Predicted, workers[i].Detour)
		if ok && p.A < 0 {
			// Stage 1 accepts d ≤ cap − A; a negative A widens the reach disk
			// past detour/2, so widen the envelope to match.
			b.Min.X += p.A
			b.Min.Y += p.A
			b.Max.X -= p.A
			b.Max.Y -= p.A
		}
		return b, ok
	})
	_, endStage1 := obs.Span(ctx, "stage1")

	// Stage 1 (lines 1–12): collect B for every candidate combination; pairs
	// with |B|·MR ≥ 1 go straight to the first KM; the rest are kept in 𝓑.
	type row struct {
		confident []Edge
		pending   []candidate
		visited   int
	}
	rows := make([]row, len(tasks))
	par.ForEach(ctx, len(tasks), p.Parallelism, func(ti int) error {
		r := &rows[ti]
		it := cv.iter(tasks[ti].Loc)
		r.visited = it.total()
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			reach := reachCap(w, &tasks[ti], tick)
			var bCount int
			minB := -1.0
			for _, lhat := range w.Predicted {
				d := lhat.Dist(tasks[ti].Loc)
				if d+p.A <= reach {
					bCount++
					if minB < 0 || d < minB {
						minB = d
					}
				}
			}
			if bCount == 0 {
				continue
			}
			conf := float64(bCount) * w.MR
			if conf >= 1 {
				r.confident = append(r.confident, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(&tasks[ti], minB)})
			} else {
				r.pending = append(r.pending, candidate{task: ti, worker: wi, minB: minB, conf: conf})
			}
		}
		return nil
	})
	var nConf, nPend, nVisited int
	for i := range rows {
		nConf += len(rows[i].confident)
		nPend += len(rows[i].pending)
		nVisited += rows[i].visited
	}
	confident := make([]Edge, 0, nConf)
	pending := growCandidates(ws.pending, nPend)
	for i := range rows {
		confident = append(confident, rows[i].confident...)
		pending = append(pending, rows[i].pending...)
	}
	ws.pending = pending[:0]
	ec.confident.Add(int64(nConf))
	ec.pending.Add(int64(nPend))
	ec.ppiCandidates.Add(int64(nVisited))
	ec.ppiPruned.Add(int64(len(tasks)*len(workers) - nVisited))
	// The confident stream is task-grouped (rows concatenated in task
	// order), so a long-lived workspace warm-starts this solve from the
	// previous batch's checkpoints; the result is bit-identical to a cold
	// Match either way.
	result, warmRows := ws.m.MatchWarm(&ws.warm, confident, nil)
	ws.noteWarm(warmRows)
	ec.kmWarmRows.Add(int64(warmRows))
	endStage1()
	// Dense index sets: both sides are small integer ranges, so []bool beats
	// a map on lookup cost and avoids per-entry allocation.
	assignedT := make([]bool, len(tasks))
	assignedW := make([]bool, len(workers))
	for _, m := range result {
		assignedT[m.Task] = true
		assignedW[m.Worker] = true
	}
	_, endStage2 := obs.Span(ctx, "stage2")

	// Stage 2 (lines 13–27): traverse 𝓑 in descending |B|·MR, batching ε
	// candidates per KM call; after each call, drop everything touching the
	// matched tasks and workers.
	sortPending(pending)
	batch := make([]Edge, 0, eps)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		mark := len(result)
		result = ws.m.Match(batch, result)
		for _, m := range result[mark:] {
			assignedT[m.Task] = true
			assignedW[m.Worker] = true
		}
		batch = batch[:0]
	}
	for _, c := range pending {
		if assignedT[c.task] || assignedW[c.worker] {
			continue
		}
		batch = append(batch, Edge{Task: c.task, Worker: c.worker, Weight: pairWeightFor(&tasks[c.task], c.minB)})
		if len(batch) == eps {
			flush()
		}
	}
	flush()
	endStage2()

	// Stage 3 (lines 28–34): remaining tasks and workers matched on the
	// plain prediction-feasibility graph, again through the candidate view.
	// The pool callbacks only read assignedT/assignedW (all writes happened
	// before the fan-out).
	_, endStage3 := obs.Span(ctx, "stage3")
	defer endStage3()
	rest := edgeRows(ctx, len(tasks), p.Parallelism, func(ti int) []Edge {
		if assignedT[ti] {
			return nil
		}
		var row []Edge
		it := cv.iter(tasks[ti].Loc)
		for wi32, ok := it.next(); ok; wi32, ok = it.next() {
			wi := int(wi32)
			if assignedW[wi] {
				continue
			}
			w := &workers[wi]
			if tasks[ti].ExcludedWorker(w.ID) {
				continue
			}
			dmin := minDistTo(w.Predicted, tasks[ti].Loc)
			if dmin < 0 {
				continue
			}
			if dmin <= reachCap(w, &tasks[ti], tick) {
				row = append(row, Edge{Task: ti, Worker: wi, Weight: pairWeightFor(&tasks[ti], dmin)})
			}
		}
		return row
	})
	ec.fallback.Add(int64(len(rest)))
	result = ws.m.Match(rest, result)
	return result
}
