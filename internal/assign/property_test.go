package assign

import (
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// TestMatchingMonotoneInEdges: adding an edge can never decrease the
// optimal matching weight.
func TestMatchingMonotoneInEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		nT, nW := rng.Intn(5)+2, rng.Intn(5)+2
		var edges []Edge
		for ti := 0; ti < nT; ti++ {
			for wi := 0; wi < nW; wi++ {
				if rng.Float64() < 0.5 {
					edges = append(edges, Edge{Task: ti, Worker: wi, Weight: rng.Float64() + 0.01})
				}
			}
		}
		total := func(es []Edge) float64 {
			var s float64
			for _, m := range MaxWeightMatching(es) {
				s += m.Weight
			}
			return s
		}
		before := total(edges)
		extra := append(append([]Edge(nil), edges...),
			Edge{Task: rng.Intn(nT), Worker: rng.Intn(nW), Weight: rng.Float64() + 0.01})
		if after := total(extra); after+1e-9 < before {
			t.Fatalf("adding an edge reduced weight: %v -> %v", before, after)
		}
	}
}

// TestPPIMatchesOnlyFeasiblePairs: every pair PPI emits satisfies the
// predicted-path feasibility test it is defined over.
func TestPPIMatchesOnlyFeasiblePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		var tasks []Task
		for i := 0; i < 10; i++ {
			tasks = append(tasks, Task{
				ID:       i,
				Loc:      geo.Pt(rng.Float64()*30, rng.Float64()*30),
				Deadline: rng.Intn(40) + 1,
			})
		}
		var workers []Worker
		for i := 0; i < 6; i++ {
			workers = append(workers, straightWorker(i, rng.Float64()*30, rng.Float64()*30, 8, 8+rng.Float64()*8, rng.Float64()))
		}
		for _, pr := range (PPI{A: 1, Epsilon: 2}).Assign(tasks, workers, 0) {
			w := &workers[pr.Worker]
			dmin := minDistTo(w.Predicted, tasks[pr.Task].Loc)
			if dmin < 0 || dmin > reachCap(w, &tasks[pr.Task], 0)+1e-9 {
				t.Fatalf("PPI emitted infeasible pair task %d worker %d (dmin %v)", pr.Task, pr.Worker, dmin)
			}
		}
	}
}

// TestAssignersHonorExclusions: no assigner may emit a pair the worker
// already declined.
func TestAssignersHonorExclusions(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{ID: i, Loc: geo.Pt(rng.Float64()*20, rng.Float64()*20), Deadline: 40})
	}
	var workers []Worker
	for i := 0; i < 5; i++ {
		workers = append(workers, straightWorker(i, rng.Float64()*20, rng.Float64()*20, 10, 14, 0.8))
	}
	// Exclude every worker from task 0 and worker 0 from every task.
	for ti := range tasks {
		tasks[ti].Excluded = append(tasks[ti].Excluded, workers[0].ID)
	}
	for wi := range workers {
		tasks[0].Excluded = append(tasks[0].Excluded, workers[wi].ID)
	}
	for _, a := range []Assigner{PPI{A: 1}, KM{}, UB{}, LB{}, GGPSO{Population: 15, Generations: 10}} {
		for _, pr := range a.Assign(tasks, workers, 0) {
			if pr.Task == 0 {
				t.Errorf("%s assigned fully-excluded task 0", a.Name())
			}
			if workers[pr.Worker].ID == workers[0].ID {
				t.Errorf("%s assigned excluded worker 0", a.Name())
			}
		}
	}
}

// TestAssignersDegenerateInputs: empty pools and zero-speed workers must
// not panic or emit pairs.
func TestAssignersDegenerateInputs(t *testing.T) {
	assigners := []Assigner{PPI{A: 1}, KM{}, UB{}, LB{}, GGPSO{}}
	tasks := []Task{{ID: 0, Loc: geo.Pt(5, 5), Deadline: 10}}
	frozen := Worker{ID: 0, Loc: geo.Pt(20, 20), Detour: 10, Speed: 0,
		Predicted: []geo.Point{geo.Pt(20, 20)}, Actual: []geo.Point{geo.Pt(20, 20)}}
	for _, a := range assigners {
		if got := a.Assign(nil, nil, 0); len(got) != 0 {
			t.Errorf("%s assigned with empty pools", a.Name())
		}
		if got := a.Assign(tasks, nil, 0); len(got) != 0 {
			t.Errorf("%s assigned with no workers", a.Name())
		}
		if got := a.Assign(nil, []Worker{frozen}, 0); len(got) != 0 {
			t.Errorf("%s assigned with no tasks", a.Name())
		}
		// A zero-speed worker far away can never serve the task.
		if got := a.Assign(tasks, []Worker{frozen}, 0); len(got) != 0 {
			t.Errorf("%s assigned a frozen distant worker: %v", a.Name(), got)
		}
	}
}

// TestServeDistZeroSpeedAtTask: a zero-speed worker standing exactly on the
// task location can still serve it.
func TestServeDistZeroSpeedAtTask(t *testing.T) {
	w := Worker{ID: 0, Loc: geo.Pt(5, 5), Detour: 4, Speed: 0,
		Actual: []geo.Point{geo.Pt(5, 5), geo.Pt(5, 5)}}
	task := Task{Loc: geo.Pt(5, 5), Deadline: 10}
	if d := ServeDist(&w, &task, 0); d != 0 {
		t.Errorf("ServeDist = %v, want 0", d)
	}
	task.Loc = geo.Pt(6, 5)
	if d := ServeDist(&w, &task, 0); d != -1 {
		t.Errorf("ServeDist for unreachable = %v, want -1", d)
	}
}
