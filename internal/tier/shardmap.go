// Package tier is the region-sharded serving layer of the platform: a thin
// router process fronting N tampserver shards, each of which owns one
// vertical stripe of the city grid and runs the full event-sourced platform
// (internal/server) for the tasks and workers inside it.
//
// The split follows the same geometry that made assignment sub-quadratic:
// the grid decomposition is the shard key. Task submissions and worker
// reports route by location; tasks whose reach envelope spans a stripe
// boundary are offered to the shards on both sides and reconciled
// first-accept-wins, with the losing copy retracted through the ordinary
// task-cancel path (an idempotent transition of the core event vocabulary).
//
// Resilience is the point of the layer rather than an afterthought: every
// shard call runs under capped exponential backoff with deterministic
// jitter, a per-shard circuit breaker sits in front of the retries, shards
// advertise liveness (/healthz) and readiness (/readyz, gated on WAL
// recovery), and a shard that crashes rejoins by replaying its own log —
// the router re-admits it the moment readiness flips back.
package tier

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// OfferStride partitions the offer-ID space between shards: shard i (zero
// based) issues offers in [(i+1)·OfferStride, (i+2)·OfferStride), configured
// on the shard via server.Config.OfferBase. The router recovers the issuing
// shard from an offer ID alone, so offer decisions route without a lookup
// table that could be lost with the router.
const OfferStride = 1_000_000_000

// OfferBase returns the server.Config.OfferBase for shard i.
func OfferBase(i int) int { return (i + 1) * OfferStride }

// ShardOfOffer maps an offer ID back to the shard index that issued it, or
// -1 if the ID lies outside every configured shard's range.
func ShardOfOffer(id, numShards int) int {
	i := id/OfferStride - 1
	if i < 0 || i >= numShards {
		return -1
	}
	return i
}

// ShardDef is one shard's entry in the shard map: a name for metrics and
// logs, the base URL of its tampserver, and the half-open column stripe
// [XMin, XMax) of the grid it owns, in cell coordinates.
type ShardDef struct {
	Name string  `json:"name"`
	URL  string  `json:"url"`
	XMin float64 `json:"xmin"`
	XMax float64 `json:"xmax"`
}

// MapConfig is the on-disk shard map (JSON), the one file that tells a
// router everything about its fleet.
type MapConfig struct {
	Grid geo.Grid `json:"grid"`
	// BorderKM widens every stripe boundary into a border band: a task
	// within this many kilometres of a boundary can plausibly be served by
	// workers homed on either side (its reach envelope spans the cut), so
	// it is offered to both shards. Zero disables border duplication.
	BorderKM float64    `json:"borderKm"`
	Shards   []ShardDef `json:"shards"`
}

// ShardMap is the validated routing geometry.
type ShardMap struct {
	Grid   geo.Grid
	Border float64 // border half-width in cells
	Shards []ShardDef
}

// LoadMap reads and validates a shard map file.
func LoadMap(path string) (*ShardMap, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tier: shard map: %w", err)
	}
	var cfg MapConfig
	if err := json.Unmarshal(b, &cfg); err != nil {
		return nil, fmt.Errorf("tier: shard map %s: %w", path, err)
	}
	return NewMap(cfg)
}

// NewMap validates a shard map: at least one shard, unique names, non-empty
// URLs, and stripes that tile the grid's X extent exactly — a gap would
// orphan a region, an overlap would double-own one.
func NewMap(cfg MapConfig) (*ShardMap, error) {
	if cfg.Grid.Cols == 0 {
		cfg.Grid = geo.DefaultGrid
	}
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("tier: shard map has no shards")
	}
	shards := make([]ShardDef, len(cfg.Shards))
	copy(shards, cfg.Shards)
	sort.SliceStable(shards, func(i, j int) bool { return shards[i].XMin < shards[j].XMin })
	seen := map[string]bool{}
	for i, sd := range shards {
		if strings.TrimSpace(sd.Name) == "" {
			return nil, fmt.Errorf("tier: shard %d has no name", i)
		}
		if seen[sd.Name] {
			return nil, fmt.Errorf("tier: duplicate shard name %q", sd.Name)
		}
		seen[sd.Name] = true
		if strings.TrimSpace(sd.URL) == "" {
			return nil, fmt.Errorf("tier: shard %q has no url", sd.Name)
		}
		if sd.XMax <= sd.XMin {
			return nil, fmt.Errorf("tier: shard %q stripe [%g, %g) is empty", sd.Name, sd.XMin, sd.XMax)
		}
	}
	if shards[0].XMin != 0 {
		return nil, fmt.Errorf("tier: stripes start at x=%g, want 0", shards[0].XMin)
	}
	for i := 1; i < len(shards); i++ {
		if shards[i].XMin != shards[i-1].XMax {
			return nil, fmt.Errorf("tier: stripes %q and %q do not tile: [..., %g) then [%g, ...)",
				shards[i-1].Name, shards[i].Name, shards[i-1].XMax, shards[i].XMin)
		}
	}
	if last := shards[len(shards)-1].XMax; last != float64(cfg.Grid.Cols) {
		return nil, fmt.Errorf("tier: stripes end at x=%g, want grid width %d", last, cfg.Grid.Cols)
	}
	if cfg.BorderKM < 0 {
		return nil, fmt.Errorf("tier: negative borderKm %g", cfg.BorderKM)
	}
	return &ShardMap{Grid: cfg.Grid, Border: geo.KMToCells(cfg.BorderKM), Shards: shards}, nil
}

// Home returns the index of the shard owning p. Points are clamped to the
// grid first, so every location has exactly one home.
func (m *ShardMap) Home(p geo.Point) int {
	x := m.Grid.Bounds().Clamp(p).X
	for i, sd := range m.Shards {
		if x < sd.XMax {
			return i
		}
	}
	return len(m.Shards) - 1
}

// Spanning returns every shard whose stripe intersects the border envelope
// [p.X−Border, p.X+Border], home first. A single-element result means p is
// interior to its shard; extra elements are the neighbors a border task is
// also offered to.
func (m *ShardMap) Spanning(p geo.Point) []int {
	home := m.Home(p)
	out := []int{home}
	if m.Border <= 0 {
		return out
	}
	x := m.Grid.Bounds().Clamp(p).X
	for i, sd := range m.Shards {
		if i == home {
			continue
		}
		if x+m.Border >= sd.XMin && x-m.Border < sd.XMax {
			out = append(out, i)
		}
	}
	return out
}

// NumShards returns the fleet size.
func (m *ShardMap) NumShards() int { return len(m.Shards) }
