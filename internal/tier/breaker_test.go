package tier

import (
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/obs"
)

// testBreaker returns a breaker on a manual clock the test can advance.
func testBreaker(threshold int, cooldown time.Duration, g *obs.Gauge) (*Breaker, *time.Time) {
	b := NewBreaker(threshold, cooldown, g)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second, nil)
	for i := 0; i < 2; i++ {
		b.Failure()
		if got := b.State(); got != BreakerClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, got)
		}
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before cooldown")
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := testBreaker(3, time.Second, nil)
	b.Failure()
	b.Failure()
	b.Success() // interleaved success: the run is not consecutive anymore
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state %v, want closed (failures were not consecutive)", got)
	}
}

func TestBreakerHalfOpenSingleTrial(t *testing.T) {
	b, now := testBreaker(1, time.Second, nil)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but trial not admitted")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("second request admitted while the trial is in flight")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("trial success: state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := testBreaker(1, time.Second, nil)
	b.Failure()
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("trial not admitted")
	}
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("trial failure: state %v, want open", got)
	}
	// The cooldown restarts from the re-open.
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a request immediately")
	}
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second trial not admitted after fresh cooldown")
	}
}

func TestBreakerGaugeMirrorsState(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("tamp_router_breaker_state", obs.L("shard", "west"))
	b, now := testBreaker(1, time.Second, g)
	if g.Value() != float64(BreakerClosed) {
		t.Fatalf("gauge %g, want closed", g.Value())
	}
	b.Failure()
	if g.Value() != float64(BreakerOpen) {
		t.Fatalf("gauge %g, want open", g.Value())
	}
	*now = now.Add(time.Second)
	b.Allow()
	if g.Value() != float64(BreakerHalfOpen) {
		t.Fatalf("gauge %g, want half-open", g.Value())
	}
	b.Success()
	if g.Value() != float64(BreakerClosed) {
		t.Fatalf("gauge %g, want closed again", g.Value())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open", BreakerState(9): "invalid",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
