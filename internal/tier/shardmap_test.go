package tier

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func twoShardCfg(borderKM float64) MapConfig {
	return MapConfig{
		Grid:     geo.Grid{Cols: 100, Rows: 50},
		BorderKM: borderKM,
		Shards: []ShardDef{
			{Name: "west", URL: "http://west", XMin: 0, XMax: 50},
			{Name: "east", URL: "http://east", XMin: 50, XMax: 100},
		},
	}
}

func TestNewMapValidates(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*MapConfig)
	}{
		{"no shards", func(c *MapConfig) { c.Shards = nil }},
		{"gap", func(c *MapConfig) { c.Shards[1].XMin = 60 }},
		{"overlap", func(c *MapConfig) { c.Shards[1].XMin = 40 }},
		{"not starting at 0", func(c *MapConfig) { c.Shards[0].XMin = 5 }},
		{"not ending at width", func(c *MapConfig) { c.Shards[1].XMax = 90 }},
		{"empty stripe", func(c *MapConfig) { c.Shards[0].XMax = 0 }},
		{"duplicate name", func(c *MapConfig) { c.Shards[1].Name = "west" }},
		{"empty name", func(c *MapConfig) { c.Shards[0].Name = " " }},
		{"empty url", func(c *MapConfig) { c.Shards[1].URL = "" }},
		{"negative border", func(c *MapConfig) { c.BorderKM = -1 }},
	}
	for _, tc := range cases {
		cfg := twoShardCfg(0)
		tc.mutate(&cfg)
		if _, err := NewMap(cfg); err == nil {
			t.Errorf("%s: NewMap accepted an invalid map", tc.name)
		}
	}
	if _, err := NewMap(twoShardCfg(1)); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
}

func TestHomeAndSpanning(t *testing.T) {
	m, err := NewMap(twoShardCfg(1)) // 1 km = 5 cells of border
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Home(geo.Pt(10, 25)); got != 0 {
		t.Errorf("Home(10,25) = %d, want 0", got)
	}
	if got := m.Home(geo.Pt(75, 25)); got != 1 {
		t.Errorf("Home(75,25) = %d, want 1", got)
	}
	// The boundary cell belongs to the east stripe ([50,100)), and clamping
	// gives out-of-grid points a home too.
	if got := m.Home(geo.Pt(50, 25)); got != 1 {
		t.Errorf("Home(50,25) = %d, want 1", got)
	}
	if got := m.Home(geo.Pt(1e9, 25)); got != 1 {
		t.Errorf("Home(+inf,25) = %d, want 1", got)
	}
	if got := m.Home(geo.Pt(-1e9, 25)); got != 0 {
		t.Errorf("Home(-inf,25) = %d, want 0", got)
	}

	if span := m.Spanning(geo.Pt(10, 25)); len(span) != 1 || span[0] != 0 {
		t.Errorf("Spanning(interior west) = %v, want [0]", span)
	}
	if span := m.Spanning(geo.Pt(48, 25)); len(span) != 2 || span[0] != 0 || span[1] != 1 {
		t.Errorf("Spanning(west border) = %v, want [0 1]", span)
	}
	if span := m.Spanning(geo.Pt(52, 25)); len(span) != 2 || span[0] != 1 || span[1] != 0 {
		t.Errorf("Spanning(east border) = %v, want [1 0]", span)
	}

	noBorder, err := NewMap(twoShardCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if span := noBorder.Spanning(geo.Pt(50, 25)); len(span) != 1 {
		t.Errorf("Spanning with zero border = %v, want single shard", span)
	}
}

func TestOfferIDPartition(t *testing.T) {
	if OfferBase(0) != OfferStride || OfferBase(1) != 2*OfferStride {
		t.Fatalf("OfferBase: got %d, %d", OfferBase(0), OfferBase(1))
	}
	for i := 0; i < 3; i++ {
		if got := ShardOfOffer(OfferBase(i)+12345, 3); got != i {
			t.Errorf("ShardOfOffer(base %d + k) = %d, want %d", i, got, i)
		}
	}
	if got := ShardOfOffer(7, 3); got != -1 {
		t.Errorf("ShardOfOffer(7) = %d, want -1 (below every range)", got)
	}
	if got := ShardOfOffer(OfferBase(3), 3); got != -1 {
		t.Errorf("ShardOfOffer beyond fleet = %d, want -1", got)
	}
}

func TestLoadMapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	b, err := json.Marshal(twoShardCfg(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 2 || m.Shards[0].Name != "west" {
		t.Fatalf("loaded map: %+v", m)
	}
	if math.Abs(m.Border-3) > 1e-9 { // 0.6 km / 0.2 km per cell
		t.Errorf("Border = %g cells, want 3", m.Border)
	}

	if _, err := LoadMap(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadMap on a missing file returned nil error")
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMap(path); err == nil {
		t.Error("LoadMap on malformed JSON returned nil error")
	}
}
