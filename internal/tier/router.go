package tier

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/par"
)

// Config parameterizes the Router.
type Config struct {
	// Map is the validated shard map (required).
	Map *ShardMap
	// Retry is the per-request backoff schedule for shard calls; the router
	// stamps a deterministic jitter key per (shard, route) on top. The zero
	// value gives 3 attempts from 10ms.
	Retry par.RetryConfig
	// AttemptTimeout bounds each individual shard call attempt (default 2s).
	AttemptTimeout time.Duration
	// BreakerThreshold consecutive transient failures open a shard's
	// circuit breaker (default 3); BreakerCooldown later it goes half-open.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the health-prober cadence (default 250ms). A shard
	// is only routable while its latest /readyz probe succeeded.
	ProbeInterval time.Duration
	// QueueLimit bounds the per-shard buffer of interior task submissions
	// accepted (202) while the shard is down, flushed on readmission.
	// Default 256; negative disables queueing so everything sheds.
	QueueLimit int
	// RetryAfter is the Retry-After hint stamped on 503 sheds (default 1s).
	RetryAfter time.Duration
	// Registry receives the router metrics; nil gets a private registry.
	Registry *obs.Registry
	// HTTPClient overrides the transport used for shard calls and probes
	// (tests inject short timeouts); nil uses a default client.
	HTTPClient *http.Client
}

// Router is the serving tier's front door: it terminates the same HTTP API
// the shards speak and routes every call to the shard(s) owning the
// locations involved. It holds only soft state — task→shard placement,
// worker homes, and the border-reconciliation table — so a restarted router
// re-learns the world from the shard map file and the shards themselves.
type Router struct {
	cfg    Config
	reg    *obs.Registry
	shards []*shardState
	mux    *http.ServeMux

	mu       sync.Mutex
	nextTask int
	tasks    map[int]*routedTask
	workers  map[int]*routedWorker

	shedsC      *obs.Counter // tamp_router_sheds_total
	failoversC  *obs.Counter // tamp_router_failovers_total
	reconcilesC *obs.Counter // tamp_router_border_reconciled_total
	borderC     *obs.Counter // tamp_router_border_tasks_total
	queuedC     *obs.Counter // tamp_router_queued_total
	routeSec    *obs.Histogram
}

// shardState is the router's view of one shard.
type shardState struct {
	idx     int
	def     ShardDef
	client  *Client
	breaker *Breaker
	ready   atomic.Bool // latest /readyz probe verdict

	queueMu sync.Mutex
	queue   []queuedTask
	depth   *obs.Gauge // tamp_router_queue_depth{shard}
}

type queuedTask struct {
	id  int
	req taskRequest
}

// routable reports whether the router may send ordinary traffic to the
// shard: the last readiness probe passed and the breaker is not open.
func (ss *shardState) routable() bool {
	return ss.ready.Load() && ss.breaker.State() != BreakerOpen
}

// routedTask is the router's placement record for one task.
type routedTask struct {
	mu    sync.Mutex
	home  int  // shard index of the authoritative copy
	ghost int  // neighbor shard holding the border duplicate; -1 = interior
	won   int  // shard whose worker accepted first; -1 = still open
	dead  bool // cancelled via the router
}

// routedWorker pins a worker to the shard of its first location report and
// remembers its registration so late-recovering shards can be backfilled.
type routedWorker struct {
	mu         sync.Mutex
	home       int // -1 until the first location report
	reg        workerRequest
	registered []bool // per shard
}

// Wire types mirrored from the shard API (internal/server keeps its own
// unexported copies; this is the protocol, stated twice on purpose so the
// tier can only depend on the wire contract).
type taskRequest struct {
	ID       int     `json:"id,omitempty"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"`
}

type workerRequest struct {
	ID       int     `json:"id"`
	DetourKM float64 `json:"detourKm"`
	Speed    float64 `json:"speed"`
	MR       float64 `json:"mr"`
}

type locationRequest struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type offerRecord struct {
	OfferID  int `json:"offerId"`
	TaskID   int `json:"taskId"`
	WorkerID int `json:"workerId"`
}

type batchResponse struct {
	Tick   int `json:"tick"`
	Offers int `json:"offers"`
	Open   int `json:"open"`
}

// NewRouter builds a Router over the shard map.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Map == nil || cfg.Map.NumShards() == 0 {
		return nil, fmt.Errorf("tier: router needs a shard map")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.QueueLimit == 0 {
		cfg.QueueLimit = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	rt := &Router{
		cfg: cfg, reg: reg,
		nextTask: 1,
		tasks:    map[int]*routedTask{},
		workers:  map[int]*routedWorker{},

		shedsC:      reg.Counter("tamp_router_sheds_total"),
		failoversC:  reg.Counter("tamp_router_failovers_total"),
		reconcilesC: reg.Counter("tamp_router_border_reconciled_total"),
		borderC:     reg.Counter("tamp_router_border_tasks_total"),
		queuedC:     reg.Counter("tamp_router_queued_total"),
		routeSec:    reg.Histogram("tamp_router_request_seconds", obs.DefRequestBuckets),
	}
	retriesTotal := reg.Counter("tamp_router_retries_total")
	for i, def := range cfg.Map.Shards {
		br := NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
			reg.Gauge("tamp_router_breaker_state", obs.L("shard", def.Name)))
		ss := &shardState{
			idx: i, def: def, breaker: br,
			client: NewClient(def.Name, def.URL, hc, br, cfg.Retry, cfg.AttemptTimeout, retriesTotal),
			depth:  reg.Gauge("tamp_router_queue_depth", obs.L("shard", def.Name)),
		}
		rt.shards = append(rt.shards, ss)
	}
	rt.routes()
	return rt, nil
}

// Registry exposes the router's metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

func (rt *Router) routes() {
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/api/tasks", rt.handleTasks)
	rt.mux.HandleFunc("/api/tasks/", rt.handleTaskByID)
	rt.mux.HandleFunc("/api/workers", rt.handleWorkers)
	rt.mux.HandleFunc("/api/workers/", rt.handleWorkerByID)
	rt.mux.HandleFunc("/api/offers/", rt.handleOfferByID)
	rt.mux.HandleFunc("/api/tick", rt.handleFanout)
	rt.mux.HandleFunc("/api/batch", rt.handleFanout)
	rt.mux.HandleFunc("/api/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	rt.mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		for _, ss := range rt.shards {
			if ss.routable() {
				writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
				return
			}
		}
		httpError(w, http.StatusServiceUnavailable, "no routable shard")
	})
	rt.mux.Handle("/metrics", rt.reg.Handler())
}

// ServeHTTP implements http.Handler with the same panic hardening the
// shards use: one bad request must not take the routing tier down.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		rt.routeSec.Observe(time.Since(start).Seconds())
		if rec := recover(); rec != nil {
			log.Printf("tier: recovered panic in %s %s: %v", r.Method, r.URL.Path, rec)
			httpError(w, http.StatusInternalServerError, "internal error")
		}
	}()
	rt.mux.ServeHTTP(w, r)
}

// Run starts the health probers and blocks until ctx is done. Tests drive
// ProbeOnce directly instead for determinism.
func (rt *Router) Run(ctx context.Context) {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		rt.ProbeOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ProbeOnce probes every shard's /readyz once and updates routability. A
// passing probe counts as the half-open trial success that closes an open
// breaker, re-admitting a recovered shard; it also flushes the shard's
// queued interior tasks. Safe to call concurrently with request traffic.
func (rt *Router) ProbeOnce(ctx context.Context) {
	for _, ss := range rt.shards {
		ss := ss
		up := rt.probeShard(ctx, ss)
		wasReady := ss.ready.Swap(up)
		if up {
			// The shard answered readyz: whatever the breaker thought, the
			// shard is demonstrably serving again.
			ss.breaker.Success()
			if !wasReady {
				log.Printf("tier: shard %s admitted (readyz ok)", ss.def.Name)
			}
			rt.flushQueue(ctx, ss)
		} else if wasReady {
			log.Printf("tier: shard %s removed from rotation (readyz failing)", ss.def.Name)
		}
	}
}

// probeShard is a single bare GET /readyz — no retries, no breaker: the
// prober itself must see the shard exactly as it is.
func (rt *Router) probeShard(ctx context.Context, ss *shardState) bool {
	pctx, cancel := context.WithTimeout(ctx, rt.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, ss.client.URL()+"/readyz", nil)
	if err != nil {
		return false
	}
	hc := rt.cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) probeTimeout() time.Duration {
	if rt.cfg.AttemptTimeout > 0 {
		return rt.cfg.AttemptTimeout
	}
	return 2 * time.Second
}

// flushQueue replays the interior tasks buffered while the shard was down,
// in arrival order. Tasks carry their router-allocated IDs, so a flush after
// several probe cycles is idempotent: a duplicate submit answers 409 and is
// dropped.
func (rt *Router) flushQueue(ctx context.Context, ss *shardState) {
	for {
		ss.queueMu.Lock()
		if len(ss.queue) == 0 {
			ss.queueMu.Unlock()
			return
		}
		qt := ss.queue[0]
		ss.queue = ss.queue[1:]
		ss.depth.Set(float64(len(ss.queue)))
		ss.queueMu.Unlock()
		status, _, err := ss.client.Do(ctx, http.MethodPost, "/api/tasks", qt.req)
		if err != nil {
			// Shard went away again mid-flush: put the task back in front
			// and let the next successful probe resume.
			ss.queueMu.Lock()
			ss.queue = append([]queuedTask{qt}, ss.queue...)
			ss.depth.Set(float64(len(ss.queue)))
			ss.queueMu.Unlock()
			return
		}
		if status != http.StatusCreated && status != http.StatusConflict {
			log.Printf("tier: queued task %d rejected by %s: status %d", qt.id, ss.def.Name, status)
		}
	}
}

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("tier: writeJSON: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// passthrough copies a shard response (status + JSON body) to the client.
func passthrough(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// shed answers 503 with the Retry-After hint and counts it.
func (rt *Router) shed(w http.ResponseWriter, why string) {
	rt.shedsC.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((rt.cfg.RetryAfter+time.Second-1)/time.Second)))
	httpError(w, http.StatusServiceUnavailable, "%s", why)
}

func trailingID(path, prefix string) (int, bool) {
	rest := strings.TrimPrefix(path, prefix)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	id, err := strconv.Atoi(rest)
	return id, err == nil
}

// --- tasks ---

func (rt *Router) handleTasks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		rt.submitTask(w, r)
	case http.MethodGet:
		rt.listTasks(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// submitTask is the heart of the tier: place the task on the shard owning
// its location, duplicate border tasks onto the neighbor, and degrade
// gracefully — failover, queue, or shed — when the home shard is down.
func (rt *Router) submitTask(w http.ResponseWriter, r *http.Request) {
	var req taskRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	loc := rt.cfg.Map.Grid.Bounds().Clamp(geo.Pt(req.X, req.Y))
	span := rt.cfg.Map.Spanning(loc)
	home := span[0]
	ghost := -1
	if len(span) > 1 {
		ghost = span[1]
	}

	rt.mu.Lock()
	if req.ID > 0 {
		if _, dup := rt.tasks[req.ID]; dup {
			rt.mu.Unlock()
			httpError(w, http.StatusConflict, "task %d already exists", req.ID)
			return
		}
		if req.ID >= rt.nextTask {
			rt.nextTask = req.ID + 1
		}
	} else {
		req.ID = rt.nextTask
		rt.nextTask++
	}
	id := req.ID
	rec := &routedTask{home: home, ghost: -1, won: -1}
	rt.tasks[id] = rec
	rt.mu.Unlock()

	homeUp := rt.shards[home].routable()
	if !homeUp {
		switch {
		case ghost >= 0 && rt.shards[ghost].routable():
			// Border failover: the neighbor can plausibly serve the task, so
			// it becomes the (only) home rather than the request failing.
			rec.home, ghost = ghost, -1
			rt.failoversC.Inc()
			home = rec.home
			homeUp = true
		case rt.cfg.QueueLimit > 0:
			ss := rt.shards[home]
			ss.queueMu.Lock()
			if len(ss.queue) < rt.cfg.QueueLimit {
				ss.queue = append(ss.queue, queuedTask{id: id, req: req})
				ss.depth.Set(float64(len(ss.queue)))
				ss.queueMu.Unlock()
				rt.queuedC.Inc()
				writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "status": "queued"})
				return
			}
			ss.queueMu.Unlock()
			fallthrough
		default:
			rt.forgetTask(id)
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
			return
		}
	}

	status, body, err := rt.shards[home].client.Do(r.Context(), http.MethodPost, "/api/tasks", req)
	if err != nil {
		rt.forgetTask(id)
		rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
		return
	}
	if status == http.StatusCreated && ghost >= 0 {
		rt.borderC.Inc()
		// Offer the border task to the neighbor too (same ID — one task, two
		// shards bidding). A failed ghost submit degrades the task to
		// interior; the home copy alone is still a correct outcome.
		if gs, _, gerr := rt.shards[ghost].client.Do(r.Context(), http.MethodPost, "/api/tasks", req); gerr == nil && gs == http.StatusCreated {
			rec.mu.Lock()
			rec.ghost = ghost
			rec.mu.Unlock()
		}
	}
	if status != http.StatusCreated {
		rt.forgetTask(id)
	}
	passthrough(w, status, body)
}

func (rt *Router) forgetTask(id int) {
	rt.mu.Lock()
	delete(rt.tasks, id)
	rt.mu.Unlock()
}

func (rt *Router) lookupTask(id int) *routedTask {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tasks[id]
}

// listTasks fans GET /api/tasks across the routable shards and merges by
// task ID; for a border task both shards answer and the decided copy (or
// the home's) wins.
func (rt *Router) listTasks(w http.ResponseWriter, r *http.Request) {
	merged := map[int]json.RawMessage{}
	decided := map[int]bool{}
	for _, ss := range rt.shards {
		if !ss.routable() {
			continue
		}
		status, body, err := ss.client.Do(r.Context(), http.MethodGet, "/api/tasks", nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var tasks []struct {
			ID     int    `json:"id"`
			Status string `json:"status"`
		}
		if json.Unmarshal(body, &tasks) != nil {
			continue
		}
		var raw []json.RawMessage
		if json.Unmarshal(body, &raw) != nil {
			continue
		}
		for i, t := range tasks {
			isDecided := t.Status == "accepted" || t.Status == "offered"
			if _, seen := merged[t.ID]; !seen || (isDecided && !decided[t.ID]) {
				merged[t.ID] = raw[i]
				decided[t.ID] = isDecided
			}
		}
	}
	out := make([]json.RawMessage, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleTaskByID(w http.ResponseWriter, r *http.Request) {
	id, ok := trailingID(r.URL.Path, "/api/tasks/")
	if !ok {
		httpError(w, http.StatusBadRequest, "bad task id")
		return
	}
	rec := rt.lookupTask(id)
	if rec == nil {
		httpError(w, http.StatusNotFound, "task %d not found", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		rec.mu.Lock()
		target := rec.home
		if rec.won >= 0 {
			target = rec.won
		}
		rec.mu.Unlock()
		status, body, err := rt.shards[target].client.Do(r.Context(), http.MethodGet, r.URL.Path, nil)
		if err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[target].def.Name))
			return
		}
		passthrough(w, status, body)
	case http.MethodDelete:
		// Cancel every copy; the client's answer is the home shard's.
		rec.mu.Lock()
		targets := []int{rec.home}
		if rec.ghost >= 0 {
			targets = append(targets, rec.ghost)
		}
		rec.dead = true
		rec.mu.Unlock()
		var status int
		var body []byte
		var err error
		for i, t := range targets {
			s, b, e := rt.shards[t].client.Do(r.Context(), http.MethodDelete, r.URL.Path, nil)
			if i == 0 {
				status, body, err = s, b, e
			}
		}
		if err != nil {
			rt.shed(w, "home shard down")
			return
		}
		passthrough(w, status, body)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// --- workers ---

func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req workerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		if req.ID <= 0 {
			httpError(w, http.StatusBadRequest, "worker id must be positive")
			return
		}
		rt.mu.Lock()
		if _, dup := rt.workers[req.ID]; dup {
			rt.mu.Unlock()
			httpError(w, http.StatusConflict, "worker %d already registered", req.ID)
			return
		}
		rw := &routedWorker{home: -1, reg: req, registered: make([]bool, len(rt.shards))}
		rt.workers[req.ID] = rw
		rt.mu.Unlock()

		// Register on every shard that is up — the worker's home is decided
		// by its first location report, and a shard that is down now is
		// backfilled lazily when the worker first touches it.
		var status int
		var body []byte
		ok := false
		for i, ss := range rt.shards {
			if !ss.routable() {
				continue
			}
			s, b, err := ss.client.Do(r.Context(), http.MethodPost, "/api/workers", req)
			if err != nil {
				continue
			}
			if s == http.StatusCreated || s == http.StatusConflict {
				rw.mu.Lock()
				rw.registered[i] = true
				rw.mu.Unlock()
			}
			if !ok {
				status, body, ok = s, b, true
			}
		}
		if !ok {
			rt.mu.Lock()
			delete(rt.workers, req.ID)
			rt.mu.Unlock()
			rt.shed(w, "no routable shard")
			return
		}
		passthrough(w, status, body)
	case http.MethodGet:
		rt.listWorkers(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (rt *Router) listWorkers(w http.ResponseWriter, r *http.Request) {
	merged := map[int]json.RawMessage{}
	online := map[int]bool{}
	for _, ss := range rt.shards {
		if !ss.routable() {
			continue
		}
		status, body, err := ss.client.Do(r.Context(), http.MethodGet, "/api/workers", nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		var workers []struct {
			ID     int  `json:"id"`
			Online bool `json:"online"`
		}
		var raw []json.RawMessage
		if json.Unmarshal(body, &workers) != nil || json.Unmarshal(body, &raw) != nil {
			continue
		}
		for i, wk := range workers {
			if _, seen := merged[wk.ID]; !seen || (wk.Online && !online[wk.ID]) {
				merged[wk.ID] = raw[i]
				online[wk.ID] = wk.Online
			}
		}
	}
	out := make([]json.RawMessage, 0, len(merged))
	for _, m := range merged {
		out = append(out, m)
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) lookupWorker(id int) *routedWorker {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.workers[id]
}

// ensureRegistered lazily backfills the worker's registration on a shard
// that was down when the worker registered. 409 means "already there".
func (rt *Router) ensureRegistered(ctx context.Context, rw *routedWorker, shard int) error {
	rw.mu.Lock()
	already := rw.registered[shard]
	req := rw.reg
	rw.mu.Unlock()
	if already {
		return nil
	}
	status, _, err := rt.shards[shard].client.Do(ctx, http.MethodPost, "/api/workers", req)
	if err != nil {
		return err
	}
	if status == http.StatusCreated || status == http.StatusConflict {
		rw.mu.Lock()
		rw.registered[shard] = true
		rw.mu.Unlock()
		return nil
	}
	return fmt.Errorf("tier: register worker %d on shard %d: status %d", req.ID, shard, status)
}

func (rt *Router) handleWorkerByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/workers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad worker id")
		return
	}
	rw := rt.lookupWorker(id)
	if rw == nil {
		httpError(w, http.StatusNotFound, "worker %d not registered", id)
		return
	}
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	switch {
	case r.Method == http.MethodPost && action == "location":
		var req locationRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		// The first report pins the worker to the shard owning that spot;
		// the platform's mobility predictors live where the worker does.
		rw.mu.Lock()
		if rw.home < 0 {
			rw.home = rt.cfg.Map.Home(geo.Pt(req.X, req.Y))
		}
		home := rw.home
		rw.mu.Unlock()
		if !rt.shards[home].routable() {
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
			return
		}
		if err := rt.ensureRegistered(r.Context(), rw, home); err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
			return
		}
		status, body, err := rt.shards[home].client.Do(r.Context(), http.MethodPost, r.URL.Path, req)
		if err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
			return
		}
		passthrough(w, status, body)
	case r.Method == http.MethodGet && (action == "" || action == "offers"):
		rw.mu.Lock()
		home := rw.home
		rw.mu.Unlock()
		if home < 0 {
			// Never reported: no shard owns it yet; answer what is known.
			if action == "offers" {
				writeJSON(w, http.StatusOK, []any{})
			} else {
				writeJSON(w, http.StatusOK, rw.reg)
			}
			return
		}
		if !rt.shards[home].routable() {
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
			return
		}
		status, body, err := rt.shards[home].client.Do(r.Context(), http.MethodGet, r.URL.Path, nil)
		if err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", rt.shards[home].def.Name))
			return
		}
		passthrough(w, status, body)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s %s", r.Method, action)
	}
}

// --- offers: first-accept-wins reconciliation ---

func (rt *Router) handleOfferByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/offers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad offer id")
		return
	}
	shard := ShardOfOffer(id, len(rt.shards))
	if shard < 0 {
		httpError(w, http.StatusNotFound, "offer %d outside every shard's id range", id)
		return
	}
	ss := rt.shards[shard]
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	switch {
	case r.Method == http.MethodGet && action == "":
		status, body, err := ss.client.Do(r.Context(), http.MethodGet, r.URL.Path, nil)
		if err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", ss.def.Name))
			return
		}
		passthrough(w, status, body)
	case r.Method == http.MethodPost && action == "accept":
		rt.acceptOffer(w, r, ss, id)
	case r.Method == http.MethodPost && action == "reject":
		status, body, err := ss.client.Do(r.Context(), http.MethodPost, r.URL.Path, nil)
		if err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", ss.def.Name))
			return
		}
		passthrough(w, status, body)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s %s", r.Method, action)
	}
}

// acceptOffer forwards an accept with border reconciliation: the first
// accept across the task's copies wins, and the losing copy is retracted by
// cancelling the duplicate task — TaskCancelled retracts the pending offer
// inside the same state transition, and re-cancelling is idempotent, so a
// lost retraction is safely retried at the next accept attempt.
func (rt *Router) acceptOffer(w http.ResponseWriter, r *http.Request, ss *shardState, offerID int) {
	// Learn which task the offer would commit before forwarding.
	var rec offerRecord
	status, err := ss.client.DoJSON(r.Context(), http.MethodGet, "/api/offers/"+strconv.Itoa(offerID), nil, &rec)
	if err != nil {
		rt.shed(w, fmt.Sprintf("shard %s down", ss.def.Name))
		return
	}
	if status != http.StatusOK {
		httpError(w, status, "offer %d not found", offerID)
		return
	}
	rtask := rt.lookupTask(rec.TaskID)
	if rtask == nil {
		// Not a router-managed task (shard driven directly): plain forward.
		s, body, err := ss.client.Do(r.Context(), http.MethodPost, r.URL.Path, nil)
		if err != nil {
			rt.shed(w, fmt.Sprintf("shard %s down", ss.def.Name))
			return
		}
		passthrough(w, s, body)
		return
	}

	rtask.mu.Lock()
	defer rtask.mu.Unlock()
	if rtask.won >= 0 && rtask.won != ss.idx {
		// The race is already decided on the other shard. Retract this
		// side's copy (idempotent: cancel of a cancelled task is a no-op
		// transition) and tell the worker the offer is gone.
		rt.retractCopy(r.Context(), ss, rec.TaskID)
		rt.reconcilesC.Inc()
		httpError(w, http.StatusConflict, "task %d already accepted on shard %s",
			rec.TaskID, rt.shards[rtask.won].def.Name)
		return
	}
	s, body, err := ss.client.Do(r.Context(), http.MethodPost, r.URL.Path, nil)
	if err != nil {
		rt.shed(w, fmt.Sprintf("shard %s down", ss.def.Name))
		return
	}
	if s == http.StatusOK {
		rtask.won = ss.idx
		// First accept wins: withdraw the duplicate from the other shard so
		// its worker pool stops bidding on a task that is already committed.
		other := -1
		if rtask.ghost >= 0 && rtask.ghost != ss.idx {
			other = rtask.ghost
		} else if rtask.ghost == ss.idx {
			other = rtask.home
		}
		if other >= 0 {
			rt.retractCopy(r.Context(), rt.shards[other], rec.TaskID)
			rt.reconcilesC.Inc()
		}
	}
	passthrough(w, s, body)
}

// retractCopy cancels a task copy on a shard, best-effort: DELETE on an
// open or offered task cancels it and retracts its offer in one transition;
// on an already-cancelled copy it is a no-op, and a failure leaves the copy
// to be retracted at the next reconciliation touch.
func (rt *Router) retractCopy(ctx context.Context, ss *shardState, taskID int) {
	status, _, err := ss.client.Do(ctx, http.MethodDelete, "/api/tasks/"+strconv.Itoa(taskID), nil)
	if err != nil {
		log.Printf("tier: retract task %d on %s: %v (will retry on next touch)", taskID, ss.def.Name, err)
		return
	}
	if status != http.StatusOK && status != http.StatusConflict && status != http.StatusNotFound {
		log.Printf("tier: retract task %d on %s: status %d", taskID, ss.def.Name, status)
	}
}

// --- fan-out: tick and batch ---

// handleFanout forwards /api/tick and /api/batch to every routable shard
// and aggregates: ticks advance everywhere (max reported), batch offers and
// open counts sum.
func (rt *Router) handleFanout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && !(r.Method == http.MethodGet && r.URL.Path == "/api/tick") {
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	var agg batchResponse
	any := false
	for _, ss := range rt.shards {
		if !ss.routable() {
			continue
		}
		status, body, err := ss.client.Do(r.Context(), r.Method, r.URL.Path, nil)
		if err != nil || status != http.StatusOK {
			continue
		}
		any = true
		var br batchResponse
		if json.Unmarshal(body, &br) == nil {
			if br.Tick > agg.Tick {
				agg.Tick = br.Tick
			}
			agg.Offers += br.Offers
			agg.Open += br.Open
		}
	}
	if !any {
		rt.shed(w, "no routable shard")
		return
	}
	if r.URL.Path == "/api/tick" {
		writeJSON(w, http.StatusOK, map[string]int{"tick": agg.Tick})
		return
	}
	writeJSON(w, http.StatusOK, agg)
}

// --- metrics ---

type shardMetrics struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Ready   bool   `json:"ready"`
	Breaker string `json:"breaker"`
	Queued  int    `json:"queued"`
}

type routerMetrics struct {
	Shards      []shardMetrics `json:"shards"`
	Tasks       int            `json:"tasks"`
	Workers     int            `json:"workers"`
	Sheds       int64          `json:"sheds"`
	Failovers   int64          `json:"failovers"`
	BorderTasks int64          `json:"borderTasks"`
	Reconciled  int64          `json:"reconciled"`
	Queued      int64          `json:"queued"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := routerMetrics{
		Sheds:       rt.shedsC.Value(),
		Failovers:   rt.failoversC.Value(),
		BorderTasks: rt.borderC.Value(),
		Reconciled:  rt.reconcilesC.Value(),
		Queued:      rt.queuedC.Value(),
	}
	rt.mu.Lock()
	m.Tasks, m.Workers = len(rt.tasks), len(rt.workers)
	rt.mu.Unlock()
	for _, ss := range rt.shards {
		ss.queueMu.Lock()
		depth := len(ss.queue)
		ss.queueMu.Unlock()
		m.Shards = append(m.Shards, shardMetrics{
			Name: ss.def.Name, URL: ss.def.URL,
			Ready: ss.ready.Load(), Breaker: ss.breaker.State().String(),
			Queued: depth,
		})
	}
	writeJSON(w, http.StatusOK, m)
}

// ListenAndServe serves the router on addr with the probers running, until
// ctx is cancelled; then it drains in-flight requests.
func (rt *Router) ListenAndServe(ctx context.Context, addr string) error {
	go rt.Run(ctx)
	srv := &http.Server{
		Addr:        addr,
		Handler:     rt,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		<-errc
		return err
	case err := <-errc:
		return err
	}
}
