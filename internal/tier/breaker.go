package tier

import (
	"sync"
	"time"

	"github.com/spatialcrowd/tamp/internal/obs"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

// Breaker states, in escalation order. The numeric values are exported to
// the tamp_router_breaker_state gauge, so keep them stable.
const (
	BreakerClosed   BreakerState = 0 // traffic flows; failures are counted
	BreakerHalfOpen BreakerState = 1 // cooldown elapsed; one trial in flight
	BreakerOpen     BreakerState = 2 // failing fast; no traffic until cooldown
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "invalid"
	}
}

// Breaker is a per-shard circuit breaker. Threshold consecutive failures
// open it; after Cooldown it admits a single trial request (half-open) and
// one success closes it again, one failure re-opens it. All methods are safe
// for concurrent use. The zero value is not usable; construct with
// NewBreaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests
	gauge     *obs.Gauge       // mirrors the state; nil is valid

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	trial    bool      // a half-open trial request is in flight
}

// NewBreaker builds a closed breaker. threshold ≤ 0 defaults to 3 and
// cooldown ≤ 0 to 2s; gauge, when non-nil, tracks the numeric state.
func NewBreaker(threshold int, cooldown time.Duration, gauge *obs.Gauge) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	b := &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now, gauge: gauge}
	b.setState(BreakerClosed)
	return b
}

// setState must be called with b.mu held (or from the constructor).
func (b *Breaker) setState(s BreakerState) {
	b.state = s
	if b.gauge != nil {
		b.gauge.Set(float64(s))
	}
}

// Allow reports whether a request may proceed. In the open state it flips to
// half-open once the cooldown has elapsed and admits exactly one trial; the
// trial's Success or Failure decides what happens to everyone else.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(BreakerHalfOpen)
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// Success records a completed request: it resets the failure run and closes
// a half-open breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.trial = false
	if b.state != BreakerClosed {
		b.setState(BreakerClosed)
	}
}

// Failure records a failed request: the Threshold-th consecutive failure
// opens a closed breaker, and any failure re-opens a half-open one.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	case BreakerOpen:
		// Already failing fast; a straggler's failure restarts nothing.
	}
}

// open must be called with b.mu held.
func (b *Breaker) open() {
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.failures = 0
}

// State returns the current state without mutating it (unlike Allow, which
// may begin the half-open transition).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
