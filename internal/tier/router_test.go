package tier

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/par"
	"github.com/spatialcrowd/tamp/internal/server"
)

// restartableShard runs a real server.Server on a fixed address so tests can
// kill it and bring a replacement back on the same endpoint — exactly what a
// supervised process does in production.
type restartableShard struct {
	t    *testing.T
	addr string
	cfg  server.Config
	srv  *server.Server
	ts   *httptest.Server
}

func newRestartableShard(t *testing.T, cfg server.Config) *restartableShard {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := &restartableShard{t: t, addr: l.Addr().String(), cfg: cfg}
	rs.start(l)
	t.Cleanup(func() { rs.ts.Close() })
	return rs
}

func (rs *restartableShard) start(l net.Listener) {
	rs.t.Helper()
	s, err := server.New(rs.cfg)
	if err != nil {
		rs.t.Fatal(err)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: s}}
	ts.Start()
	rs.srv, rs.ts = s, ts
}

// kill closes the listener and drops live connections: from the router's
// side the shard is simply gone. The server.Server object is closed too so
// its WAL handle releases the directory for the successor.
func (rs *restartableShard) kill() {
	rs.ts.CloseClientConnections()
	rs.ts.Close()
	rs.srv.Close()
}

// restart brings a fresh server up on the shard's original address.
func (rs *restartableShard) restart() {
	rs.t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 200; i++ {
		if l, err = net.Listen("tcp", rs.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		rs.t.Fatalf("re-listen on %s: %v", rs.addr, err)
	}
	rs.start(l)
}

func (rs *restartableShard) url() string { return "http://" + rs.addr }

// testCluster is a 2-shard fleet (west|east split at x=50) plus a router.
type testCluster struct {
	t      *testing.T
	shards []*restartableShard
	router *Router
	front  *httptest.Server
}

func shardConfig(i int) server.Config {
	return server.Config{
		Grid:      geo.Grid{Cols: 100, Rows: 50},
		Assigner:  assign.PPI{A: 1.5},
		OfferBase: OfferBase(i),
	}
}

// noSleep removes wall-clock waits from the retry schedule under test.
func noSleep(context.Context, time.Duration) error { return nil }

func newTestCluster(t *testing.T, borderKM float64, queueLimit int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	for i := 0; i < 2; i++ {
		tc.shards = append(tc.shards, newRestartableShard(t, shardConfig(i)))
	}
	m, err := NewMap(MapConfig{
		Grid:     geo.Grid{Cols: 100, Rows: 50},
		BorderKM: borderKM,
		Shards: []ShardDef{
			{Name: "west", URL: tc.shards[0].url(), XMin: 0, XMax: 50},
			{Name: "east", URL: tc.shards[1].url(), XMin: 50, XMax: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(Config{
		Map:              m,
		Retry:            par.RetryConfig{Attempts: 3, BaseDelay: time.Millisecond, Sleep: noSleep},
		AttemptTimeout:   2 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		QueueLimit:       queueLimit,
		HTTPClient:       &http.Client{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	rt.ProbeOnce(context.Background())
	tc.front = httptest.NewServer(rt)
	t.Cleanup(tc.front.Close)
	return tc
}

// do issues a JSON request against the router front door.
func (tc *testCluster) do(method, path string, body, out any) int {
	tc.t.Helper()
	return doJSON(tc.t, tc.front.URL, method, path, body, out)
}

// doShard issues a JSON request directly against shard i, bypassing the
// router — the test's view of ground truth.
func (tc *testCluster) doShard(i int, method, path string, body, out any) int {
	tc.t.Helper()
	return doJSON(tc.t, tc.shards[i].url(), method, path, body, out)
}

func doJSON(t *testing.T, base, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, base+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

type taskView struct {
	ID       int     `json:"id"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"`
	Status   string  `json:"status"`
	Worker   int     `json:"worker"`
}

type offerView struct {
	OfferID int `json:"offerId"`
	TaskID  int `json:"taskId"`
}

// walk reports a short straight trace through the router so the worker is
// batch-eligible on its home shard.
func (tc *testCluster) walk(worker int, x0, y float64, steps int, dx float64) {
	tc.t.Helper()
	for i := 0; i < steps; i++ {
		code := tc.do("POST", fmt.Sprintf("/api/workers/%d/location", worker),
			locationRequest{X: x0 + float64(i)*dx, Y: y}, nil)
		if code != http.StatusOK {
			tc.t.Fatalf("worker %d location report %d: status %d", worker, i, code)
		}
	}
}

func TestRouterInteriorFlow(t *testing.T) {
	tc := newTestCluster(t, 0, 4)

	if code := tc.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil); code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	tc.walk(1, 10, 10, 6, 1)

	var task taskView
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 18, Y: 10, Deadline: 30}, &task); code != http.StatusCreated {
		t.Fatalf("post task status %d", code)
	}

	// Interior task: on the west shard, absent from the east shard.
	if code := tc.doShard(0, "GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("west shard should hold task %d: status %d", task.ID, code)
	}
	if code := tc.doShard(1, "GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("east shard should not hold interior west task: status %d", code)
	}

	var batch batchResponse
	if code := tc.do("POST", "/api/batch", nil, &batch); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if batch.Offers != 1 {
		t.Fatalf("batch offers = %d, want 1", batch.Offers)
	}

	var offers []offerView
	tc.do("GET", "/api/workers/1/offers", nil, &offers)
	if len(offers) != 1 {
		t.Fatalf("offers = %+v", offers)
	}
	// The offer ID is in the west shard's range, so the router can route
	// the decision without any table.
	if got := ShardOfOffer(offers[0].OfferID, 2); got != 0 {
		t.Fatalf("offer %d maps to shard %d, want 0", offers[0].OfferID, got)
	}
	if code := tc.do("POST", fmt.Sprintf("/api/offers/%d/accept", offers[0].OfferID), nil, nil); code != http.StatusOK {
		t.Fatalf("accept status %d", code)
	}
	var got taskView
	tc.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != string(server.TaskAccepted) || got.Worker != 1 {
		t.Fatalf("task after accept = %+v", got)
	}

	// Aggregated listing sees the task once.
	var all []taskView
	tc.do("GET", "/api/tasks", nil, &all)
	if len(all) != 1 || all[0].ID != task.ID {
		t.Fatalf("GET /api/tasks = %+v", all)
	}
}

func TestRouterBorderFirstAcceptWins(t *testing.T) {
	tc := newTestCluster(t, 1, 4) // 1 km border: x in [45, 55) spans the cut

	for id := 1; id <= 2; id++ {
		if code := tc.do("POST", "/api/workers", workerRequest{ID: id, DetourKM: 8, Speed: 1, MR: 0.8}, nil); code != http.StatusCreated {
			t.Fatalf("register worker %d: status %d", id, code)
		}
	}
	tc.walk(1, 41, 25, 6, 1)  // worker 1 ends at x=46 → home west
	tc.walk(2, 56, 25, 6, -1) // worker 2 ends at x=51 → home east

	var task taskView
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 48, Y: 25, Deadline: 30}, &task); code != http.StatusCreated {
		t.Fatalf("post border task: status %d", code)
	}
	// The border task is live on both shards under one ID.
	for i := 0; i < 2; i++ {
		if code := tc.doShard(i, "GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, nil); code != http.StatusOK {
			t.Fatalf("shard %d should hold border task: status %d", i, code)
		}
	}
	if v := tc.router.borderC.Value(); v != 1 {
		t.Fatalf("border counter = %d, want 1", v)
	}

	var batch batchResponse
	tc.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 2 {
		t.Fatalf("fan-out batch offers = %d, want 2 (one per shard)", batch.Offers)
	}

	var west, east []offerView
	tc.do("GET", "/api/workers/1/offers", nil, &west)
	tc.do("GET", "/api/workers/2/offers", nil, &east)
	if len(west) != 1 || len(east) != 1 {
		t.Fatalf("offers west=%+v east=%+v", west, east)
	}
	if ShardOfOffer(west[0].OfferID, 2) != 0 || ShardOfOffer(east[0].OfferID, 2) != 1 {
		t.Fatalf("offer id ranges wrong: west=%d east=%d", west[0].OfferID, east[0].OfferID)
	}

	// Worker 2 accepts first and wins.
	if code := tc.do("POST", fmt.Sprintf("/api/offers/%d/accept", east[0].OfferID), nil, nil); code != http.StatusOK {
		t.Fatalf("first accept status %d", code)
	}
	// The west copy was retracted: cancelled on the shard, its offer gone.
	var westCopy taskView
	tc.doShard(0, "GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &westCopy)
	if westCopy.Status != string(server.TaskCancelled) {
		t.Fatalf("losing copy status = %s, want cancelled", westCopy.Status)
	}
	// Worker 1's late accept loses cleanly: the retraction already withdrew
	// the west offer, so the shard itself reports it gone.
	if code := tc.do("POST", fmt.Sprintf("/api/offers/%d/accept", west[0].OfferID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("late accept status %d, want 404 (offer retracted)", code)
	}
	var got taskView
	tc.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != string(server.TaskAccepted) || got.Worker != 2 {
		t.Fatalf("task after race = %+v", got)
	}
	if v := tc.router.reconcilesC.Value(); v < 1 {
		t.Fatalf("reconcile counter = %d, want ≥ 1", v)
	}
}

func TestRouterQueueShedAndFlush(t *testing.T) {
	tc := newTestCluster(t, 0, 2)

	tc.shards[0].kill()
	tc.router.ProbeOnce(context.Background())

	// Interior west tasks queue up to the limit, then shed with Retry-After.
	var first, second map[string]any
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 10, Y: 10, Deadline: 30}, &first); code != http.StatusAccepted {
		t.Fatalf("first task during outage: status %d, want 202", code)
	}
	if first["status"] != "queued" {
		t.Fatalf("first task response = %v", first)
	}
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 11, Y: 10, Deadline: 30}, &second); code != http.StatusAccepted {
		t.Fatalf("second task during outage: status %d, want 202", code)
	}

	req, _ := http.NewRequest("POST", tc.front.URL+"/api/tasks",
		bytes.NewReader([]byte(`{"x":12,"y":10,"deadline":30}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit task: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if v := tc.router.shedsC.Value(); v != 1 {
		t.Fatalf("sheds = %d, want 1", v)
	}
	if v := tc.router.queuedC.Value(); v != 2 {
		t.Fatalf("queued = %d, want 2", v)
	}

	// East traffic is untouched by the west outage.
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 80, Y: 10, Deadline: 30}, nil); code != http.StatusCreated {
		t.Fatalf("east task during west outage: status %d", code)
	}

	// The shard returns; the next probe re-admits it and flushes the queue.
	tc.shards[0].restart()
	tc.router.ProbeOnce(context.Background())

	id1 := int(first["id"].(float64))
	var got taskView
	if code := tc.do("GET", fmt.Sprintf("/api/tasks/%d", id1), nil, &got); code != http.StatusOK {
		t.Fatalf("queued task after flush: status %d", code)
	}
	if got.Status != string(server.TaskOpen) {
		t.Fatalf("flushed task status = %s", got.Status)
	}
	var m routerMetrics
	tc.do("GET", "/api/metrics", nil, &m)
	if m.Shards[0].Queued != 0 {
		t.Fatalf("west queue depth after flush = %d", m.Shards[0].Queued)
	}
}

func TestRouterBorderFailover(t *testing.T) {
	tc := newTestCluster(t, 1, 2)

	tc.shards[0].kill()
	tc.router.ProbeOnce(context.Background())

	// A border task whose home (west) is down fails over to east instead of
	// queueing: a neighbor that can serve it is better than a buffer.
	var task taskView
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 48, Y: 25, Deadline: 30}, &task); code != http.StatusCreated {
		t.Fatalf("border task during west outage: status %d, want 201", code)
	}
	if code := tc.doShard(1, "GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("east shard should hold the failed-over task: status %d", code)
	}
	if v := tc.router.failoversC.Value(); v != 1 {
		t.Fatalf("failovers = %d, want 1", v)
	}

	// An interior west task still queues — no neighbor can serve it.
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 10, Y: 25, Deadline: 30}, nil); code != http.StatusAccepted {
		t.Fatalf("interior task during outage: status %d, want 202", code)
	}
}

// TestRouterClosedShardTripsBreaker is the shutdown-robustness check from
// the shard's side: a server that was Close()d keeps answering probes (503)
// instead of hanging, so the router's breaker opens and traffic degrades
// fast rather than waiting out timeouts.
func TestRouterClosedShardTripsBreaker(t *testing.T) {
	tc := newTestCluster(t, 0, -1) // queueing disabled: outage traffic sheds

	// Close the server object but keep its listener serving: every /api call
	// now answers 503 "not ready", the readiness probe fails, but nothing
	// blocks.
	if err := tc.shards[0].srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Without a fresh probe the router still believes the shard is up; the
	// first request's retries must trip the breaker, not hang.
	start := time.Now()
	code := tc.do("POST", "/api/tasks", taskRequest{X: 10, Y: 10, Deadline: 30}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("task against closed shard: status %d, want 503", code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("request against closed shard took %v — the tier hung instead of degrading", elapsed)
	}
	if got := tc.router.shards[0].breaker.State(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open after retries exhausted", got)
	}
	// The next request fails fast on the open breaker: no network attempts.
	start = time.Now()
	if code := tc.do("POST", "/api/tasks", taskRequest{X: 10, Y: 10, Deadline: 30}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("second task: status %d, want 503", code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("breaker-open request took %v, want immediate", elapsed)
	}

	// A probe pass marks the shard unready; /readyz on the router reflects
	// the east shard still being up.
	tc.router.ProbeOnce(context.Background())
	if tc.router.shards[0].ready.Load() {
		t.Fatal("closed shard still marked ready after probe")
	}
	if code := tc.do("GET", "/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("router readyz = %d, want 200 (east is up)", code)
	}
}

func TestRouterRejectsUnknownOfferRange(t *testing.T) {
	tc := newTestCluster(t, 0, 0)
	if code := tc.do("POST", "/api/offers/7/accept", nil, nil); code != http.StatusNotFound {
		t.Fatalf("offer outside every shard range: status %d, want 404", code)
	}
	if code := tc.do("GET", "/api/offers/999999999999/", nil, nil); code != http.StatusNotFound {
		t.Fatalf("offer beyond fleet: status %d, want 404", code)
	}
}

func TestRouterHealthAndMetricsEndpoints(t *testing.T) {
	tc := newTestCluster(t, 0, 0)
	if code := tc.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := tc.do("GET", "/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	var m routerMetrics
	if code := tc.do("GET", "/api/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("api/metrics = %d", code)
	}
	if len(m.Shards) != 2 || !m.Shards[0].Ready || m.Shards[0].Breaker != "closed" {
		t.Fatalf("metrics shards = %+v", m.Shards)
	}

	resp, err := http.Get(tc.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus export = %d", resp.StatusCode)
	}
}
