package tier

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/fault"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/par"
	"github.com/spatialcrowd/tamp/internal/server"
	"github.com/spatialcrowd/tamp/internal/wal"
)

// crash drops the shard without closing the server object — the listener
// disappears and in-flight connections die, exactly like a kill -9. WAL
// appends are fsynced before their responses (WALSyncEvery 1), so every op
// the client saw acked is on disk regardless.
func (rs *restartableShard) crash() {
	rs.ts.CloseClientConnections()
	rs.ts.Close()
}

// durableShardConfig is shardConfig plus a per-test WAL, with Parallelism 1
// so an oracle replaying the same ops computes bit-identical plans.
func durableShardConfig(t *testing.T, i int) server.Config {
	cfg := shardConfig(i)
	cfg.WALDir = t.TempDir()
	cfg.WALSyncEvery = 1
	cfg.Parallelism = 1
	return cfg
}

// TestClusterChaosFailoverDigest is the tier's headline guarantee, asserted
// end to end: kill a durable shard under traffic, let the router degrade
// (breaker opens, interior traffic sheds, the rest of the fleet keeps
// serving), bring the shard back on the same address, and the WAL-recovered
// state must be byte-identical — same SHA-256 digest — to a never-killed
// oracle fed exactly the acknowledged operations. No acked op is lost, no
// unacked op resurrects.
func TestClusterChaosFailoverDigest(t *testing.T) {
	west := newRestartableShard(t, durableShardConfig(t, 0))
	east := newRestartableShard(t, durableShardConfig(t, 1))

	// The oracle is a memory-only twin of the west shard: same grid,
	// assigner, and offer base, driven only with ops the real west acked.
	oracleCfg := shardConfig(0)
	oracleCfg.Parallelism = 1
	oracle, err := server.New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(oracle)
	t.Cleanup(ots.Close)
	mirror := func(method, path string, body any) {
		t.Helper()
		if code := doJSON(t, ots.URL, method, path, body, nil); code >= 300 {
			t.Fatalf("oracle diverged: %s %s -> %d (the real shard acked this op)", method, path, code)
		}
	}

	m, err := NewMap(MapConfig{
		Grid: geo.Grid{Cols: 100, Rows: 50},
		Shards: []ShardDef{
			{Name: "west", URL: west.url(), XMin: 0, XMax: 50},
			{Name: "east", URL: east.url(), XMin: 50, XMax: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(Config{
		Map:              m,
		Retry:            par.RetryConfig{Attempts: 3, BaseDelay: time.Millisecond, Sleep: noSleep},
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
		QueueLimit:       -1, // shed during the outage: acked == applied, cleanly mirrorable
		HTTPClient:       &http.Client{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(context.Background())
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	do := func(method, path string, body, out any) int {
		t.Helper()
		return doJSON(t, front.URL, method, path, body, out)
	}

	// --- phase 1: normal traffic, mirrored into the oracle ---

	// Registration broadcasts to every shard, so each register is a west op.
	for id := 1; id <= 3; id++ {
		w := workerRequest{ID: id, DetourKM: 8, Speed: 1, MR: 0.8}
		if code := do("POST", "/api/workers", w, nil); code != http.StatusCreated {
			t.Fatalf("register worker %d: status %d", id, code)
		}
		mirror("POST", "/api/workers", w)
	}
	// Workers 1 and 2 live west (their reports land there and get mirrored);
	// worker 3 lives east and never touches west state beyond registration.
	walkMirrored := func(worker int, x0, y float64) {
		t.Helper()
		for i := 0; i < 6; i++ {
			loc := locationRequest{X: x0 + float64(i), Y: y}
			path := fmt.Sprintf("/api/workers/%d/location", worker)
			if code := do("POST", path, loc, nil); code != http.StatusOK {
				t.Fatalf("worker %d report %d: status %d", worker, i, code)
			}
			mirror("POST", path, loc)
		}
	}
	walkMirrored(1, 10, 10)
	walkMirrored(2, 30, 20)
	for i := 0; i < 6; i++ {
		if code := do("POST", "/api/workers/3/location", locationRequest{X: 80 + float64(i), Y: 10}, nil); code != http.StatusOK {
			t.Fatalf("worker 3 report %d: status %d", i, code)
		}
	}

	submitMirrored := func(x, y float64) int {
		t.Helper()
		var task taskView
		if code := do("POST", "/api/tasks", taskRequest{X: x, Y: y, Deadline: 60}, &task); code != http.StatusCreated {
			t.Fatalf("task at (%g,%g): status %d", x, y, code)
		}
		// The router allocated the global ID; the oracle must reuse it so
		// both copies of the state name the task identically.
		mirror("POST", "/api/tasks", taskRequest{ID: task.ID, X: x, Y: y, Deadline: 60})
		return task.ID
	}
	taskA := submitMirrored(18, 10)
	if code := do("POST", "/api/tasks", taskRequest{X: 88, Y: 10, Deadline: 60}, nil); code != http.StatusCreated {
		t.Fatal("east task failed")
	}
	taskC := submitMirrored(33, 20)

	if code := do("POST", "/api/tick", nil, nil); code != http.StatusOK {
		t.Fatal("tick failed")
	}
	mirror("POST", "/api/tick", nil)
	var batch batchResponse
	if code := do("POST", "/api/batch", nil, &batch); code != http.StatusOK {
		t.Fatal("batch failed")
	}
	mirror("POST", "/api/batch", nil)
	if batch.Offers == 0 {
		t.Fatal("pre-kill batch made no offers")
	}

	var offers []offerView
	do("GET", "/api/workers/1/offers", nil, &offers)
	if len(offers) != 1 || offers[0].TaskID != taskA {
		t.Fatalf("worker 1 offers = %+v, want one for task %d", offers, taskA)
	}
	acceptPath := fmt.Sprintf("/api/offers/%d/accept", offers[0].OfferID)
	if code := do("POST", acceptPath, nil, nil); code != http.StatusOK {
		t.Fatalf("accept: status %d", code)
	}
	mirror("POST", acceptPath, nil)

	// --- phase 2: kill west, degraded service ---

	west.crash()
	rt.ProbeOnce(context.Background())
	if rt.shards[0].ready.Load() {
		t.Fatal("crashed shard still marked ready after probe")
	}

	// Interior west traffic sheds; the op is NOT acked and NOT mirrored.
	if code := do("POST", "/api/tasks", taskRequest{X: 12, Y: 10, Deadline: 60}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("west task during outage: status %d, want 503", code)
	}
	// The rest of the fleet keeps serving.
	if code := do("POST", "/api/tasks", taskRequest{X: 90, Y: 12, Deadline: 60}, nil); code != http.StatusCreated {
		t.Fatal("east task during outage failed")
	}
	if code := do("GET", "/readyz", nil, nil); code != http.StatusOK {
		t.Fatal("router readyz failed while east is up")
	}
	if code := do("POST", "/api/batch", nil, nil); code != http.StatusOK {
		t.Fatal("batch during outage failed")
	}
	if v := rt.shedsC.Value(); v == 0 {
		t.Fatal("no sheds counted during the outage")
	}

	// --- phase 3: rejoin via WAL replay, then more mirrored traffic ---

	west.restart()
	rt.ProbeOnce(context.Background())
	if !rt.shards[0].ready.Load() {
		t.Fatal("recovered shard not readmitted")
	}

	taskD := submitMirrored(14, 10)
	if code := do("POST", "/api/tick", nil, nil); code != http.StatusOK {
		t.Fatal("post-rejoin tick failed")
	}
	mirror("POST", "/api/tick", nil)
	if code := do("POST", "/api/batch", nil, nil); code != http.StatusOK {
		t.Fatal("post-rejoin batch failed")
	}
	mirror("POST", "/api/batch", nil)

	// --- the guarantee ---

	if got, want := west.srv.StateDigest(), oracle.StateDigest(); got != want {
		t.Fatalf("rejoined shard diverged from the never-killed oracle:\n got %s\nwant %s", got, want)
	}
	// Every acked op is visible through the router after the rejoin.
	var a taskView
	if code := do("GET", fmt.Sprintf("/api/tasks/%d", taskA), nil, &a); code != http.StatusOK {
		t.Fatalf("acked task %d lost: status %d", taskA, code)
	}
	if a.Status != string(server.TaskAccepted) || a.Worker != 1 {
		t.Fatalf("accepted task survived wrong: %+v", a)
	}
	for _, id := range []int{taskC, taskD} {
		if code := do("GET", fmt.Sprintf("/api/tasks/%d", id), nil, nil); code != http.StatusOK {
			t.Fatalf("acked task %d lost: status %d", id, code)
		}
	}
}

// TestShardCrashMidAppendRejoins injects a crash in the middle of a WAL
// frame write — the sharpest possible kill — and asserts the recovered
// shard serves exactly the acked prefix: the torn op is gone, everything
// before it survives, and the router readmits the shard on readiness.
func TestShardCrashMidAppendRejoins(t *testing.T) {
	cfg := durableShardConfig(t, 0)
	crasher := fault.NewCrasher(wal.HookAppendFrame, 3)
	cfg.WALHook = crasher.Hit
	shard := newRestartableShard(t, cfg)

	m, err := NewMap(MapConfig{
		Grid:   geo.Grid{Cols: 100, Rows: 50},
		Shards: []ShardDef{{Name: "solo", URL: shard.url(), XMin: 0, XMax: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(Config{
		Map:              m,
		Retry:            par.RetryConfig{Attempts: 2, BaseDelay: time.Millisecond, Sleep: noSleep},
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		QueueLimit:       -1,
		HTTPClient:       &http.Client{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.ProbeOnce(context.Background())
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// Two acked appends, then a digest checkpoint of "what the world saw".
	for i := 0; i < 2; i++ {
		if code := doJSON(t, front.URL, "POST", "/api/tasks", taskRequest{X: 10 + float64(i), Y: 10, Deadline: 60}, nil); code != http.StatusCreated {
			t.Fatalf("task %d: status %d", i, code)
		}
	}
	ackedDigest := shard.srv.StateDigest()

	// The third append crashes mid-frame, straight at the shard (one plain
	// attempt — a retry would hammer a half-dead process). The connection
	// dies or a 5xx comes back; either way the op was never acked.
	resp, err := http.Post(shard.url()+"/api/tasks", "application/json",
		strings.NewReader(`{"x":30,"y":10,"deadline":60}`))
	if err == nil {
		if resp.StatusCode < 500 {
			t.Fatalf("torn append was acked with status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if !crasher.Fired() {
		t.Fatalf("crash point never fired (hits=%d)", crasher.Hits())
	}
	shard.crash() // the panic killed the process; drop its listener too

	rt.ProbeOnce(context.Background())
	if code := doJSON(t, front.URL, "GET", "/readyz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("router readyz with the only shard down: %d, want 503", code)
	}

	// Restart without the crasher: replay truncates the torn frame.
	shard.cfg.WALHook = nil
	shard.restart()
	rt.ProbeOnce(context.Background())

	if got := shard.srv.StateDigest(); got != ackedDigest {
		t.Fatalf("recovered digest != acked prefix:\n got %s\nwant %s", got, ackedDigest)
	}
	if code := doJSON(t, front.URL, "GET", "/api/tasks/1", nil, nil); code != http.StatusOK {
		t.Fatalf("acked task lost after crash recovery: status %d", code)
	}
	// The torn task never happened — and the ID is reusable by new traffic.
	if code := doJSON(t, shard.url(), "GET", "/api/tasks/3", nil, nil); code != http.StatusNotFound {
		t.Fatalf("torn task resurrected: status %d", code)
	}
	if code := doJSON(t, front.URL, "POST", "/api/tasks", taskRequest{X: 40, Y: 10, Deadline: 60}, nil); code != http.StatusCreated {
		t.Fatalf("post-recovery task via router: status %d", code)
	}
}
