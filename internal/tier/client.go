package tier

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/par"
)

// ErrShardDown reports that the shard's circuit breaker refused the request
// before any network traffic: the shard is known-bad and the router should
// degrade (fail over, queue, or shed) instead of waiting out another
// timeout.
var ErrShardDown = errors.New("tier: shard unavailable (circuit breaker open)")

// Client is the router's HTTP client for one shard: every call propagates
// the caller's deadline, runs capped exponential backoff with deterministic
// per-request jitter (par.RetryConfig), and consults the shard's circuit
// breaker before each attempt. Transient failures — network errors and
// 502/503/504 — are retried and feed the breaker; any other response is the
// shard's answer and returns as-is.
type Client struct {
	name    string
	base    string // shard base URL, no trailing slash
	hc      *http.Client
	breaker *Breaker
	retry   par.RetryConfig
	// attemptTimeout bounds each individual attempt so one black-holed
	// connection cannot eat the whole request deadline; the caller's ctx
	// still caps the total.
	attemptTimeout time.Duration

	retriesC *obs.Counter // tamp_router_retries_total{shard}
}

// NewClient builds a shard client. hc nil uses a private client; retry's
// zero value gives the par defaults (3 attempts, 10ms base); attemptTimeout
// ≤ 0 defaults to 2s.
func NewClient(name, baseURL string, hc *http.Client, breaker *Breaker, retry par.RetryConfig, attemptTimeout time.Duration, retriesC *obs.Counter) *Client {
	if hc == nil {
		hc = &http.Client{}
	}
	if attemptTimeout <= 0 {
		attemptTimeout = 2 * time.Second
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &Client{
		name: name, base: baseURL, hc: hc, breaker: breaker,
		retry: retry, attemptTimeout: attemptTimeout, retriesC: retriesC,
	}
}

// URL returns the shard base URL.
func (c *Client) URL() string { return c.base }

// transientStatus reports responses worth retrying: the shard (or something
// between us and it) says "not right now", not "no".
func transientStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// Do issues method path against the shard and returns the final status and
// body. in, when non-nil, is marshalled to JSON once and replayed on every
// attempt. The error is non-nil only when no response was obtained at all
// (breaker open, retries exhausted, or ctx done) — HTTP error statuses are
// returned to the caller to interpret.
func (c *Client) Do(ctx context.Context, method, path string, in any) (status int, body []byte, err error) {
	var reqBody []byte
	if in != nil {
		if reqBody, err = json.Marshal(in); err != nil {
			return 0, nil, fmt.Errorf("tier: marshal %s %s: %w", method, path, err)
		}
	}
	cfg := c.retry
	// One jitter key per (shard, route): two routers hammering the same
	// recovering shard back off on different schedules, deterministically.
	cfg.JitterKey = c.name + " " + method + " " + path
	var final struct {
		status int
		body   []byte
		down   bool
	}
	rerr := par.Retry(ctx, cfg, func(attempt int) error {
		if attempt > 0 && c.retriesC != nil {
			c.retriesC.Inc()
		}
		if !c.breaker.Allow() {
			// Not an attempt worth retrying: the breaker holds longer than
			// any backoff budget. Report success to stop the retry loop and
			// let the outer error say why.
			final.down = true
			return nil
		}
		actx := ctx
		if c.attemptTimeout > 0 {
			var cancel context.CancelFunc
			actx, cancel = context.WithTimeout(ctx, c.attemptTimeout)
			defer cancel()
		}
		req, err := http.NewRequestWithContext(actx, method, c.base+path, bytes.NewReader(reqBody))
		if err != nil {
			final.down = true // malformed target: retrying cannot fix it
			return nil
		}
		if reqBody != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			c.breaker.Failure()
			if ctx.Err() != nil {
				return ctx.Err() // caller gave up; par.Retry stops on it
			}
			return fmt.Errorf("tier: %s %s%s: %w", method, c.name, path, err)
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			c.breaker.Failure()
			return fmt.Errorf("tier: %s %s%s: read body: %w", method, c.name, path, rerr)
		}
		if transientStatus(resp.StatusCode) {
			c.breaker.Failure()
			return fmt.Errorf("tier: %s %s%s: status %d", method, c.name, path, resp.StatusCode)
		}
		c.breaker.Success()
		final.status, final.body, final.down = resp.StatusCode, b, false
		return nil
	})
	switch {
	case final.down:
		return 0, nil, ErrShardDown
	case rerr != nil:
		return 0, nil, rerr
	default:
		return final.status, final.body, nil
	}
}

// DoJSON is Do plus decoding of a 2xx response body into out (out nil skips
// decoding). Non-2xx responses return the status with out untouched.
func (c *Client) DoJSON(ctx context.Context, method, path string, in, out any) (int, error) {
	status, body, err := c.Do(ctx, method, path, in)
	if err != nil {
		return 0, err
	}
	if out != nil && status >= 200 && status < 300 {
		if err := json.Unmarshal(body, out); err != nil {
			return status, fmt.Errorf("tier: %s %s%s: decode: %w", method, c.name, path, err)
		}
	}
	return status, nil
}
