package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40) + 2
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
			acc.Add(xs[i])
		}
		if acc.N() != n {
			t.Fatalf("N = %d", acc.N())
		}
		if math.Abs(acc.Mean()-Mean(xs)) > 1e-9 {
			t.Fatalf("mean %v vs %v", acc.Mean(), Mean(xs))
		}
		if math.Abs(acc.Std()-Std(xs)) > 1e-9 {
			t.Fatalf("std %v vs %v", acc.Std(), Std(xs))
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Std() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
	a.Add(5)
	if a.Var() != 0 {
		t.Error("single sample variance should be 0")
	}
	if a.Mean() != 5 {
		t.Errorf("mean = %v", a.Mean())
	}
}

func TestMeanStdKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v", got)
	}
	// Sample std with n-1: variance = 32/7.
	want := math.Sqrt(32.0 / 7.0)
	if got := Std(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("std = %v, want %v", got, want)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate cases should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
