// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate multi-seed runs: means, standard deviations,
// quantiles, and Welford-style online accumulation.
package stats

import (
	"math"
	"sort"
)

// Accumulator collects samples online (Welford's algorithm), giving mean
// and variance without storing the series. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of samples recorded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.Std() / math.Sqrt(float64(a.n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation of the sorted values. Empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }
