package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/sim"
)

func TestSilhouetteSeparatedBlocks(t *testing.T) {
	m, truth := blockMatrix(3, 6, 51)
	// Truth clustering scores high.
	var good [][]int
	for b := 0; b < 3; b++ {
		var g []int
		for i, tb := range truth {
			if tb == b {
				g = append(g, i)
			}
		}
		good = append(good, g)
	}
	sGood := Silhouette(m, good)
	if sGood < 0.6 {
		t.Errorf("truth silhouette = %v, want high", sGood)
	}
	// A random split scores clearly lower.
	rng := rand.New(rand.NewSource(3))
	bad := make([][]int, 3)
	for i := range truth {
		c := rng.Intn(3)
		bad[c] = append(bad[c], i)
	}
	if sBad := Silhouette(m, bad); sBad >= sGood {
		t.Errorf("random silhouette %v >= truth %v", sBad, sGood)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	m, _ := blockMatrix(1, 4, 53)
	if got := Silhouette(m, nil); got != 0 {
		t.Errorf("empty clustering silhouette = %v", got)
	}
	// One big cluster: no b term, silhouette 0.
	if got := Silhouette(m, [][]int{allItems(4)}); got != 0 {
		t.Errorf("single cluster silhouette = %v", got)
	}
	// All singletons: defined as 0.
	if got := Silhouette(m, [][]int{{0}, {1}, {2}, {3}}); got != 0 {
		t.Errorf("singleton silhouette = %v", got)
	}
}

func TestSilhouetteBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(10) + 4
		m := sim.NewMatrix(n, func(i, j int) float64 { return rng.Float64() })
		k := rng.Intn(3) + 2
		clusters := KMedoids(m, allItems(n), k, rng)
		s := Silhouette(m, clusters)
		if math.IsNaN(s) || s < -1-1e-9 || s > 1+1e-9 {
			t.Fatalf("silhouette out of range: %v", s)
		}
	}
}

func TestChooseKRecoversBlockCount(t *testing.T) {
	m, _ := blockMatrix(4, 8, 57)
	rng := rand.New(rand.NewSource(5))
	k, score := ChooseK(m, allItems(32), 2, 8, rng)
	if k != 4 {
		t.Errorf("ChooseK = %d (score %v), want 4", k, score)
	}
	if score < 0.5 {
		t.Errorf("best score = %v, want high", score)
	}
}

func TestChooseKClamps(t *testing.T) {
	m, _ := blockMatrix(2, 3, 59)
	rng := rand.New(rand.NewSource(1))
	k, _ := ChooseK(m, allItems(6), 0, 100, rng)
	if k < 2 || k > 6 {
		t.Errorf("k = %d outside clamped range", k)
	}
}
