package cluster

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/spatialcrowd/tamp/internal/nn"
	"github.com/spatialcrowd/tamp/internal/sim"
)

// TreeNode is one node of the learning task tree (Def. 6): the tuple
// T^t = (G, CH, fr, θ). Members holds the learning-task indexes of the
// node's cluster G, Children the list CH, Parent the father fr, and Theta
// the initialization weights θ of the mobility prediction model attached to
// this node (filled in by meta-training, nil until then).
type TreeNode struct {
	Members  []int
	Children []*TreeNode
	Parent   *TreeNode
	Theta    nn.Vector

	// Level records which similarity function F^s_j produced this node's
	// split from its parent (-1 for the root).
	Level int
}

// IsLeaf reports whether n has no children. Only leaves carry training data
// during TAML; interior nodes store initialization parameters only.
func (n *TreeNode) IsLeaf() bool { return len(n.Children) == 0 }

// Leaves appends all leaf nodes under n in depth-first order.
func (n *TreeNode) Leaves() []*TreeNode {
	if n.IsLeaf() {
		return []*TreeNode{n}
	}
	var out []*TreeNode
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// Nodes returns every node under n (including n) in depth-first preorder.
func (n *TreeNode) Nodes() []*TreeNode {
	out := []*TreeNode{n}
	for _, c := range n.Children {
		out = append(out, c.Nodes()...)
	}
	return out
}

// PostOrder visits every node under n in depth-first post-order, the
// traversal used when placing a newly arrived worker's learning task.
func (n *TreeNode) PostOrder(visit func(*TreeNode)) {
	for _, c := range n.Children {
		c.PostOrder(visit)
	}
	visit(n)
}

// Depth returns the height of the subtree rooted at n (a leaf has depth 1).
func (n *TreeNode) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// String renders the subtree structure for debugging.
func (n *TreeNode) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *TreeNode) render(b *strings.Builder, indent int) {
	fmt.Fprintf(b, "%s[lvl %d] %d tasks\n", strings.Repeat("  ", indent), n.Level, len(n.Members))
	for _, c := range n.Children {
		c.render(b, indent+1)
	}
}

// Config parameterizes GTMC (Algorithm 1).
type Config struct {
	// K is the number of clusters k-medoids seeds at each level.
	K int
	// Gamma is the singleton cluster utility γ of Eq. 4.
	Gamma float64
	// Metrics is the ordered similarity function list F^s. The paper's
	// best order is [Distribution, Spatial, LearningPath].
	Metrics []sim.Metric
	// Thresholds is Θ: a node whose cluster quality under its split metric
	// stays below Thresholds[j] is clustered further with metric j+1.
	// Must have len(Metrics) entries (the last is unused but kept for
	// symmetry with the paper's notation).
	Thresholds []float64
	// UseGame enables the best-response refinement after k-medoids. With
	// UseGame=false the builder degenerates to the multi-level k-means
	// baseline (the GTTAML-GT variant of §IV).
	UseGame bool
	// MinSize stops further clustering of nodes smaller than this: a leaf
	// must retain enough learning tasks for its meta-trained
	// initialization to be meaningful (0 = default 6).
	MinSize int
	// MaxSweeps bounds best-response sweeps (0 = default).
	MaxSweeps int
	// Rng drives k-medoids seeding. Required.
	Rng *rand.Rand
}

// DefaultConfig returns the configuration matching the paper's final
// experimental setting: k=4, γ=0.2, all three metrics in the order
// Sim_d, Sim_s, Sim_l, game refinement on.
func DefaultConfig(rng *rand.Rand) Config {
	return Config{
		K:          4,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution, sim.Spatial, sim.LearningPath},
		Thresholds: []float64{0.6, 0.6, 0.6},
		UseGame:    true,
		MinSize:    6,
		Rng:        rng,
	}
}

// BuildTree runs GTMC (Algorithm 1): multi-level clustering of the learning
// tasks whose pairwise similarities under metric j are given by
// matrices[j] (indexed parallel to cfg.Metrics). It returns the root of the
// learning task tree covering items 0..n-1 where n = matrices[0].N.
func BuildTree(matrices []*sim.Matrix, cfg Config) *TreeNode {
	if len(matrices) == 0 || len(matrices) != len(cfg.Metrics) {
		panic("cluster: BuildTree needs one similarity matrix per metric")
	}
	n := matrices[0].N
	root := &TreeNode{Level: -1}
	for i := 0; i < n; i++ {
		root.Members = append(root.Members, i)
	}
	minSize := cfg.MinSize
	if minSize <= 0 {
		minSize = 6
	}

	type queueEntry struct {
		node *TreeNode
		j    int
	}
	queue := []queueEntry{{root, 0}}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		node, j := e.node, e.j
		if len(node.Members) < 2 || (node != root && len(node.Members) < minSize) {
			continue
		}
		m := matrices[j]
		subs := KMedoids(m, node.Members, cfg.K, cfg.Rng)
		if cfg.UseGame {
			subs, _ = BestResponse(m, subs, cfg.Gamma, cfg.MaxSweeps)
		}
		if len(subs) <= 1 {
			// The level-j metric finds no structure here; the node stays a
			// leaf of this branch.
			continue
		}
		for _, g := range subs {
			child := &TreeNode{Members: g, Parent: node, Level: j}
			node.Children = append(node.Children, child)
			if j+1 < len(cfg.Metrics) && sim.Quality(m, g, cfg.Gamma) < cfg.Thresholds[j] {
				queue = append(queue, queueEntry{child, j + 1})
			}
		}
	}
	return root
}
