package cluster

import (
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/sim"
)

// Silhouette computes the mean silhouette coefficient of a clustering under
// a similarity matrix (dissimilarity taken as 1−sim). Values near 1 mean
// tight, well-separated clusters; near 0, overlapping ones; negative,
// misassigned items. Singleton clusters contribute 0, matching the common
// convention. An empty clustering yields 0.
func Silhouette(m *sim.Matrix, clusters [][]int) float64 {
	where := map[int]int{}
	for ci, g := range clusters {
		for _, it := range g {
			where[it] = ci
		}
	}
	var sum float64
	var n int
	for ci, g := range clusters {
		for _, it := range g {
			n++
			if len(g) == 1 {
				continue // silhouette of a singleton is defined as 0
			}
			// a: mean dissimilarity to own cluster.
			var a float64
			for _, other := range g {
				if other != it {
					a += 1 - m.At(it, other)
				}
			}
			a /= float64(len(g) - 1)
			// b: min over other clusters of mean dissimilarity.
			b := -1.0
			for cj, h := range clusters {
				if cj == ci || len(h) == 0 {
					continue
				}
				var d float64
				for _, other := range h {
					d += 1 - m.At(it, other)
				}
				d /= float64(len(h))
				if b < 0 || d < b {
					b = d
				}
			}
			if b < 0 {
				continue // single cluster overall
			}
			den := a
			if b > den {
				den = b
			}
			if den > 0 {
				sum += (b - a) / den
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ChooseK selects the number of clusters in [kMin, kMax] that maximizes the
// silhouette of a k-medoids clustering under m, breaking ties toward the
// smaller k. It is a practical helper for workloads whose archetype count
// is unknown (the paper fixes k; real deployments rarely can).
func ChooseK(m *sim.Matrix, items []int, kMin, kMax int, rng *rand.Rand) (bestK int, bestScore float64) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax < kMin {
		kMax = kMin
	}
	if kMax > len(items) {
		kMax = len(items)
	}
	bestK = kMin
	bestScore = -2
	for k := kMin; k <= kMax; k++ {
		clusters := KMedoids(m, items, k, rng)
		if s := Silhouette(m, clusters); s > bestScore {
			bestScore, bestK = s, k
		}
	}
	return bestK, bestScore
}
