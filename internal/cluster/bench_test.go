package cluster

import (
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/sim"
)

func BenchmarkKMedoids(b *testing.B) {
	m, _ := blockMatrix(4, 15, 1)
	items := allItems(60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		KMedoids(m, items, 4, rand.New(rand.NewSource(int64(i))))
	}
}

func BenchmarkBestResponse(b *testing.B) {
	m, _ := blockMatrix(4, 15, 2)
	init := KMedoids(m, allItems(60), 4, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cp := make([][]int, len(init))
		for j := range init {
			cp[j] = append([]int(nil), init[j]...)
		}
		BestResponse(m, cp, 0.2, 0)
	}
}

func BenchmarkBuildTree(b *testing.B) {
	m0, _ := blockMatrix(4, 15, 3)
	m1, _ := blockMatrix(12, 5, 4)
	cfg := Config{
		K:          4,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution, sim.Spatial},
		Thresholds: []float64{0.95, 0.95},
		UseGame:    true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Rng = rand.New(rand.NewSource(int64(i)))
		BuildTree([]*sim.Matrix{m0, m1}, cfg)
	}
}
