package cluster

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/nn"
	"github.com/spatialcrowd/tamp/internal/sim"
)

// blockMatrix builds a similarity matrix with nBlocks groups of blockSize
// items: within-group similarity high (0.9 ± noise), across-group low
// (0.1 ± noise).
func blockMatrix(nBlocks, blockSize int, seed int64) (*sim.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := nBlocks * blockSize
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / blockSize
	}
	m := sim.NewMatrix(n, func(i, j int) float64 {
		base := 0.1
		if truth[i] == truth[j] {
			base = 0.9
		}
		return clamp01(base + rng.NormFloat64()*0.03)
	})
	return m, truth
}

func clamp01(x float64) float64 { return math.Max(0, math.Min(1, x)) }

func coversExactly(t *testing.T, clusters [][]int, items []int) {
	t.Helper()
	seen := map[int]int{}
	for _, g := range clusters {
		if len(g) == 0 {
			t.Fatal("empty cluster returned")
		}
		for _, it := range g {
			seen[it]++
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("clusters cover %d items, want %d", len(seen), len(items))
	}
	for _, it := range items {
		if seen[it] != 1 {
			t.Fatalf("item %d appears %d times", it, seen[it])
		}
	}
}

func allItems(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestKMedoidsRecoverBlocks(t *testing.T) {
	m, truth := blockMatrix(3, 8, 1)
	rng := rand.New(rand.NewSource(2))
	clusters := KMedoids(m, allItems(24), 3, rng)
	coversExactly(t, clusters, allItems(24))
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
	// Every cluster should be pure.
	for _, g := range clusters {
		for _, it := range g[1:] {
			if truth[it] != truth[g[0]] {
				t.Errorf("cluster mixes blocks %d and %d", truth[g[0]], truth[it])
			}
		}
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	m, _ := blockMatrix(1, 4, 3)
	if got := KMedoids(m, nil, 3, rand.New(rand.NewSource(1))); got != nil {
		t.Errorf("empty items = %v", got)
	}
	// k >= n: singletons.
	cs := KMedoids(m, allItems(4), 10, rand.New(rand.NewSource(1)))
	if len(cs) != 4 {
		t.Errorf("k>n clusters = %d, want 4", len(cs))
	}
	// k <= 0 treated as 1.
	cs = KMedoids(m, allItems(4), 0, rand.New(rand.NewSource(1)))
	coversExactly(t, cs, allItems(4))
}

func TestBestResponseImprovesPotential(t *testing.T) {
	m, _ := blockMatrix(3, 6, 5)
	rng := rand.New(rand.NewSource(7))
	// Deliberately bad initial clustering: random split into 3.
	initial := make([][]int, 3)
	for _, it := range allItems(18) {
		c := rng.Intn(3)
		initial[c] = append(initial[c], it)
	}
	before := Potential(m, initial, 0.2)
	refined, sweeps := BestResponse(m, initial, 0.2, 0)
	after := Potential(m, refined, 0.2)
	if after+1e-9 < before {
		t.Errorf("potential decreased: %v -> %v", before, after)
	}
	if sweeps == 0 {
		t.Error("expected at least one sweep")
	}
	coversExactly(t, refined, allItems(18))
}

func TestBestResponseNashStability(t *testing.T) {
	// After convergence, re-running from the equilibrium must not move
	// anyone (the definition of Nash equilibrium under best response).
	m, _ := blockMatrix(2, 6, 11)
	initial := KMedoids(m, allItems(12), 2, rand.New(rand.NewSource(3)))
	eq, _ := BestResponse(m, initial, 0.2, 0)
	again, sweeps := BestResponse(m, eq, 0.2, 0)
	if sweeps > 1 {
		t.Errorf("equilibrium was not stable: %d extra sweeps", sweeps)
	}
	if Potential(m, again, 0.2) != Potential(m, eq, 0.2) {
		t.Error("potential changed when re-running from equilibrium")
	}
}

func TestBestResponseSeparatesOutlier(t *testing.T) {
	// Items 0..3 mutually similar; item 4 dissimilar to everyone. The
	// outlier's marginal utility in the big cluster is negative, so with a
	// small positive γ it moves to the empty slot; block members have
	// positive marginal utility and stay.
	n := 5
	m := sim.NewMatrix(n, func(i, j int) float64 {
		if i < 4 && j < 4 {
			return 0.9
		}
		return 0.05
	})
	initial := [][]int{allItems(5), {}}
	refined, _ := BestResponse(m, initial, 0.05, 0)
	coversExactly(t, refined, allItems(5))
	foundSingleton := false
	for _, g := range refined {
		if len(g) == 1 && g[0] == 4 {
			foundSingleton = true
		}
	}
	if !foundSingleton {
		t.Errorf("outlier not separated: %v", refined)
	}
}

func TestPotentialMatchesQualitySum(t *testing.T) {
	m, _ := blockMatrix(2, 3, 13)
	clusters := [][]int{{0, 1}, {2}, {3, 4, 5}}
	want := sim.Quality(m, clusters[0], 0.2) + sim.Quality(m, clusters[1], 0.2) + sim.Quality(m, clusters[2], 0.2)
	if got := Potential(m, clusters, 0.2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Potential = %v, want %v", got, want)
	}
}

func TestBuildTreeStructure(t *testing.T) {
	m, truth := blockMatrix(3, 6, 17)
	cfg := Config{
		K:          3,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.6},
		UseGame:    true,
		Rng:        rand.New(rand.NewSource(2)),
	}
	root := BuildTree([]*sim.Matrix{m}, cfg)
	if len(root.Members) != 18 {
		t.Fatalf("root members = %d", len(root.Members))
	}
	leaves := root.Leaves()
	var leafItems []int
	for _, l := range leaves {
		leafItems = append(leafItems, l.Members...)
	}
	coversExactly(t, [][]int{leafItems}, allItems(18))
	if len(root.Children) != 3 {
		t.Fatalf("root children = %d, want 3 blocks", len(root.Children))
	}
	for _, c := range root.Children {
		for _, it := range c.Members[1:] {
			if truth[it] != truth[c.Members[0]] {
				t.Error("child mixes blocks")
			}
		}
		if c.Parent != root {
			t.Error("parent pointer wrong")
		}
	}
}

func TestBuildTreeMultiLevel(t *testing.T) {
	// Two metrics: metric 0 separates {0..8} vs {9..17} weakly (quality
	// below threshold so children are re-clustered); metric 1 separates
	// finer blocks of 3.
	n := 18
	m0 := sim.NewMatrix(n, func(i, j int) float64 {
		if (i < 9) == (j < 9) {
			return 0.5 // deliberately below the 0.6 threshold
		}
		return 0.05
	})
	m1 := sim.NewMatrix(n, func(i, j int) float64 {
		if i/3 == j/3 {
			return 0.95
		}
		return 0.05
	})
	cfg := Config{
		K:          3,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution, sim.Spatial},
		Thresholds: []float64{0.6, 0.6},
		UseGame:    true,
		MinSize:    2,
		Rng:        rand.New(rand.NewSource(5)),
	}
	root := BuildTree([]*sim.Matrix{m0, m1}, cfg)
	if root.Depth() < 3 {
		t.Fatalf("tree depth = %d, want >= 3 (root, level-0 split, level-1 split)\n%s", root.Depth(), root)
	}
	var leafItems []int
	for _, l := range root.Leaves() {
		leafItems = append(leafItems, l.Members...)
	}
	coversExactly(t, [][]int{leafItems}, allItems(n))
	// Leaves of the second level should be the fine blocks of 3.
	fine := 0
	for _, l := range root.Leaves() {
		if l.Level == 1 {
			fine++
			for _, it := range l.Members[1:] {
				if it/3 != l.Members[0]/3 {
					t.Errorf("level-1 leaf mixes fine blocks: %v", l.Members)
				}
			}
		}
	}
	if fine == 0 {
		t.Error("no level-1 leaves; second metric never applied")
	}
}

func TestBuildTreeNoGameVariant(t *testing.T) {
	m, _ := blockMatrix(2, 5, 23)
	cfg := Config{
		K:          2,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.6},
		UseGame:    false,
		Rng:        rand.New(rand.NewSource(4)),
	}
	root := BuildTree([]*sim.Matrix{m}, cfg)
	var leafItems []int
	for _, l := range root.Leaves() {
		leafItems = append(leafItems, l.Members...)
	}
	coversExactly(t, [][]int{leafItems}, allItems(10))
}

func TestBuildTreePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BuildTree(nil, DefaultConfig(rand.New(rand.NewSource(1))))
}

func TestTreeTraversals(t *testing.T) {
	root := &TreeNode{Members: []int{0, 1, 2}}
	c1 := &TreeNode{Members: []int{0}, Parent: root}
	c2 := &TreeNode{Members: []int{1, 2}, Parent: root}
	c21 := &TreeNode{Members: []int{1}, Parent: c2}
	root.Children = []*TreeNode{c1, c2}
	c2.Children = []*TreeNode{c21}

	if got := len(root.Nodes()); got != 4 {
		t.Errorf("Nodes = %d", got)
	}
	leaves := root.Leaves()
	if len(leaves) != 2 || leaves[0] != c1 || leaves[1] != c21 {
		t.Errorf("Leaves = %v", leaves)
	}
	var order []*TreeNode
	root.PostOrder(func(n *TreeNode) { order = append(order, n) })
	if len(order) != 4 || order[len(order)-1] != root || order[0] != c1 {
		t.Error("post-order wrong")
	}
	if root.Depth() != 3 {
		t.Errorf("Depth = %d", root.Depth())
	}
	if s := root.String(); len(s) == 0 {
		t.Error("String empty")
	}
}

func TestSoftKMeansSeparatesGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var x []nn.Vector
	for i := 0; i < 30; i++ {
		cx := 0.0
		if i >= 15 {
			cx = 10
		}
		x = append(x, nn.Vector{cx + rng.NormFloat64()*0.5, rng.NormFloat64() * 0.5})
	}
	assign, centers := SoftKMeans(x, 2, 2, 50, rng)
	if len(centers) != 2 {
		t.Fatalf("centers = %d", len(centers))
	}
	// All of the first 15 should share a label distinct from the last 15.
	for i := 1; i < 15; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("first block split: %v", assign)
		}
	}
	for i := 16; i < 30; i++ {
		if assign[i] != assign[15] {
			t.Fatalf("second block split: %v", assign)
		}
	}
	if assign[0] == assign[15] {
		t.Error("blocks merged")
	}
}

func TestSoftKMeansEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, c := SoftKMeans(nil, 3, 2, 10, rng)
	if a != nil || c != nil {
		t.Error("empty input should return nils")
	}
	x := []nn.Vector{{1}, {2}}
	a, c = SoftKMeans(x, 5, 2, 10, rng) // k clamped to n
	if len(c) != 2 || len(a) != 2 {
		t.Errorf("clamped k: %d centers", len(c))
	}
	a, _ = SoftKMeans(x, 0, 0, 0, rng) // all defaults
	if len(a) != 2 {
		t.Error("defaulted params failed")
	}
}

func TestGroups(t *testing.T) {
	gs := Groups([]int{0, 1, 0, 2}, 3)
	if len(gs) != 3 {
		t.Fatalf("groups = %v", gs)
	}
	if len(gs[0]) != 2 || gs[0][0] != 0 || gs[0][1] != 2 {
		t.Errorf("group 0 = %v", gs[0])
	}
	// Empty clusters dropped.
	gs = Groups([]int{0, 0}, 3)
	if len(gs) != 1 {
		t.Errorf("groups with empties = %v", gs)
	}
}
