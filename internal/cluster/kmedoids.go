// Package cluster implements the clustering machinery behind GTMC
// (Algorithm 1): k-medoids initialization, the best-response potential-game
// refinement that reaches a Nash equilibrium (Theorem 1), the multi-level
// learning-task tree (Def. 6), and the soft k-means used by the CTML
// baseline.
//
// All hard-clustering routines operate on item indexes against a
// pre-computed pairwise similarity matrix (higher = more similar); the
// paper's k-medoids distance 1/Sim corresponds to assigning each item to its
// maximum-similarity medoid.
package cluster

import (
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/sim"
)

// KMedoids partitions items into at most k clusters using a PAM-style
// alternation: assign every item to its most similar medoid, then move each
// medoid to the member maximizing total within-cluster similarity. It is the
// initialization step of GTMC (Algorithm 1, line 5) and, run on its own, the
// plain "k-means" multi-level baseline of the Table IV ablation.
//
// The returned clusters are non-empty and cover items exactly. If k exceeds
// the number of items, each item forms its own cluster.
func KMedoids(m *sim.Matrix, items []int, k int, rng *rand.Rand) [][]int {
	n := len(items)
	if n == 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k >= n {
		out := make([][]int, n)
		for i, it := range items {
			out[i] = []int{it}
		}
		return out
	}
	// Greedy max-min seeding (deterministic given rng): first medoid random,
	// each next medoid is the item least similar to its closest medoid.
	medoids := make([]int, 0, k)
	medoids = append(medoids, items[rng.Intn(n)])
	for len(medoids) < k {
		best, bestScore := -1, 2.0
		for _, it := range items {
			if containsInt(medoids, it) {
				continue
			}
			closest := -1.0
			for _, md := range medoids {
				if s := m.At(it, md); s > closest {
					closest = s
				}
			}
			if closest < bestScore {
				bestScore, best = closest, it
			}
		}
		if best < 0 {
			break
		}
		medoids = append(medoids, best)
	}

	assign := make(map[int]int, n) // item -> medoid slot
	const maxIters = 50
	for iter := 0; iter < maxIters; iter++ {
		// Assignment step.
		changed := false
		for _, it := range items {
			best, bestSim := 0, -1.0
			for s, md := range medoids {
				if v := m.At(it, md); v > bestSim {
					bestSim, best = v, s
				}
			}
			if assign[it] != best {
				assign[it] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Update step: medoid = member with max total similarity to peers.
		groups := make([][]int, len(medoids))
		for _, it := range items {
			groups[assign[it]] = append(groups[assign[it]], it)
		}
		for s, g := range groups {
			if len(g) == 0 {
				continue
			}
			best, bestSum := g[0], -1.0
			for _, cand := range g {
				var sum float64
				for _, other := range g {
					sum += m.At(cand, other)
				}
				if sum > bestSum {
					bestSum, best = sum, cand
				}
			}
			medoids[s] = best
		}
	}

	groups := make([][]int, len(medoids))
	for _, it := range items {
		groups[assign[it]] = append(groups[assign[it]], it)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
