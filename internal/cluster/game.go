package cluster

import "github.com/spatialcrowd/tamp/internal/sim"

// BestResponse refines an initial clustering by playing the n-player
// strategy game 𝒫 of §III-B to a Nash equilibrium (Algorithm 1, lines 6–11).
// The strategy set of every player (learning task) is the fixed set of
// cluster slots created by the k-medoids initialization; each player
// repeatedly moves to the slot where its marginal utility
// u(Γ_i, G) = Q(G∪{Γ_i}) − Q(G) (Eq. 5) is maximal.
// Slots may empty out and be re-entered (entering an empty slot is worth the
// singleton utility γ). Because the game is an exact potential game with
// potential Σ_G Q(G) (Theorem 1), this dynamic terminates.
//
// It returns the equilibrium clusters (empties removed) and the number of
// full best-response sweeps performed. maxSweeps bounds runtime defensively;
// the potential argument guarantees termination long before sensible bounds.
func BestResponse(m *sim.Matrix, initial [][]int, gamma float64, maxSweeps int) ([][]int, int) {
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	clusters := make([][]int, len(initial))
	where := map[int]int{}
	for ci, g := range initial {
		clusters[ci] = append([]int(nil), g...)
		for _, it := range g {
			where[it] = ci
		}
	}
	items := make([]int, 0, len(where))
	for _, g := range initial {
		items = append(items, g...)
	}

	sweeps := 0
	for ; sweeps < maxSweeps; sweeps++ {
		moved := false
		for _, it := range items {
			cur := where[it]
			// Utility of staying put.
			bestC, bestU := cur, utilityIn(m, clusters[cur], it, gamma, true)
			for ci := range clusters {
				if ci == cur {
					continue
				}
				if u := utilityIn(m, clusters[ci], it, gamma, false); u > bestU+1e-12 {
					bestU, bestC = u, ci
				}
			}
			if bestC != cur {
				clusters[cur] = removeInt(clusters[cur], it)
				clusters[bestC] = append(clusters[bestC], it)
				where[it] = bestC
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	var out [][]int
	for _, g := range clusters {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out, sweeps
}

// utilityIn computes u(Γ_item, G): the quality gain of the cluster from
// item's membership. When member is true, the item is already in g;
// otherwise the gain is evaluated as if it joined.
func utilityIn(m *sim.Matrix, g []int, item int, gamma float64, member bool) float64 {
	if member {
		return sim.Utility(m, g, item, gamma)
	}
	with := make([]int, len(g)+1)
	copy(with, g)
	with[len(g)] = item
	return sim.Quality(m, with, gamma) - sim.Quality(m, g, gamma)
}

// Potential returns the potential function F_p = Σ_G Q(G) of the clustering
// game (Appendix A-A). Best-response moves never decrease it, which the
// tests exploit as the correctness invariant of the equilibrium search.
func Potential(m *sim.Matrix, clusters [][]int, gamma float64) float64 {
	var sum float64
	for _, g := range clusters {
		sum += sim.Quality(m, g, gamma)
	}
	return sum
}

func removeInt(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}
