package cluster

import (
	"math"
	"math/rand"

	"github.com/spatialcrowd/tamp/internal/nn"
)

// SoftKMeans clusters real-valued feature vectors with soft assignments,
// as the CTML baseline [41] does over input-data features concatenated with
// parameter-update learning paths. beta is the inverse temperature of the
// softmax responsibilities (larger = harder assignments).
//
// It returns the hard argmax assignment per item and the final centroids.
// Empty input yields (nil, nil). k is clamped to [1, len(x)].
func SoftKMeans(x []nn.Vector, k int, beta float64, iters int, rng *rand.Rand) (assign []int, centers []nn.Vector) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 30
	}
	if beta <= 0 {
		beta = 2
	}
	dim := len(x[0])

	// Seed centroids with distinct random items.
	perm := rng.Perm(n)
	centers = make([]nn.Vector, k)
	for c := 0; c < k; c++ {
		centers[c] = x[perm[c]].Clone()
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	for it := 0; it < iters; it++ {
		// E-step: responsibilities ∝ exp(−β·‖x − μ_c‖²).
		for i, xi := range x {
			maxNegD := math.Inf(-1)
			negD := resp[i]
			for c := range centers {
				d2 := sqDist(xi, centers[c])
				negD[c] = -beta * d2
				if negD[c] > maxNegD {
					maxNegD = negD[c]
				}
			}
			var z float64
			for c := range negD {
				negD[c] = math.Exp(negD[c] - maxNegD)
				z += negD[c]
			}
			for c := range negD {
				negD[c] /= z
			}
		}
		// M-step: centroids = responsibility-weighted means.
		for c := range centers {
			acc := nn.NewVector(dim)
			var w float64
			for i, xi := range x {
				r := resp[i][c]
				acc.Axpy(r, xi)
				w += r
			}
			if w > 1e-12 {
				acc.Scale(1 / w)
				centers[c] = acc
			}
		}
	}

	assign = make([]int, n)
	for i := range x {
		best, bestR := 0, -1.0
		for c := range centers {
			if resp[i][c] > bestR {
				bestR, best = resp[i][c], c
			}
		}
		assign[i] = best
	}
	return assign, centers
}

func sqDist(a, b nn.Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Groups converts a hard assignment vector into index groups, dropping
// empty clusters.
func Groups(assign []int, k int) [][]int {
	gs := make([][]int, k)
	for i, c := range assign {
		if c >= 0 && c < k {
			gs[c] = append(gs[c], i)
		}
	}
	var out [][]int
	for _, g := range gs {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}
