package nn

// Model is the contract the meta-learning stack requires of a mobility
// prediction network: the paper's algorithms are model-agnostic and work
// with "any machine learning model that can be updated via gradient
// descent" (§III-B Discussion). All parameters live in one flat Vector.
//
// Models own a reusable scratch workspace, which makes the hot path
// steady-state allocation-free but also means a model value is NOT safe for
// concurrent use: share models across goroutines by cloning (CloneModel),
// as internal/par and internal/meta do.
type Model interface {
	// Predict runs the model on one input sequence, emitting seqOut steps.
	// The returned rows are workspace-owned: valid until the next
	// Predict/Grad/BatchLoss/BatchGrad call on the same model; copy to
	// retain.
	Predict(in [][]float64, seqOut int) [][]float64
	// Grad accumulates dLoss/dWeights for one sample into grad and returns
	// the loss.
	Grad(in, target [][]float64, loss Loss, grad Vector) float64
	// BatchLoss returns the mean loss over a batch.
	BatchLoss(batch []Sample, loss Loss) float64
	// BatchGrad zeroes grad, accumulates the mean gradient over the batch,
	// and returns the mean loss.
	BatchGrad(batch []Sample, loss Loss, grad Vector) float64
	// Weights returns the live flat parameter vector.
	Weights() Vector
	// SetWeights copies w into the model.
	SetWeights(w Vector)
	// NumParams returns the parameter count.
	NumParams() int
	// CloneModel returns an independent copy.
	CloneModel() Model
	// ArchName identifies the architecture for serialization ("lstm",
	// "gru").
	ArchName() string
}

// Architecture names.
const (
	ArchLSTM = "lstm"
	ArchGRU  = "gru"
)

// CloneModel implements Model.
func (m *Seq2Seq) CloneModel() Model { return m.Clone() }

// ArchName implements Model.
func (m *Seq2Seq) ArchName() string { return ArchLSTM }
