package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestGRUGradCheck validates the GRU encoder–decoder's analytic gradient
// against central finite differences over every parameter.
func TestGRUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := NewGRUSeq2Seq(2, 2, 4, rng)
	// Give the zero head signal so its gradient path is exercised.
	w := m.Weights()
	for i := m.outOff; i < len(w); i++ {
		w[i] = rng.NormFloat64() * 0.1
	}
	s := randSample(rng, 2, 2, 3, 2)
	loss := MSE{}

	grad := NewVector(m.NumParams())
	m.Grad(s.In, s.Out, loss, grad)

	const eps = 1e-5
	maxRel := 0.0
	for i := 0; i < m.NumParams(); i++ {
		orig := w[i]
		w[i] = orig + eps
		lp := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig - eps
		lm := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig
		num := (lp - lm) / (2 * eps)
		denom := math.Max(math.Abs(num)+math.Abs(grad[i]), 1e-6)
		rel := math.Abs(num-grad[i]) / denom
		if rel > maxRel {
			maxRel = rel
		}
		if rel > 1e-3 && math.Abs(num-grad[i]) > 1e-6 {
			t.Fatalf("param %d: analytic %v vs numeric %v (rel %v)", i, grad[i], num, rel)
		}
	}
	t.Logf("max relative gradient error: %.2e", maxRel)
}

func TestGRULearnsLinearMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m := NewGRUSeq2Seq(2, 2, 8, rng)
	var batch []Sample
	for i := 0; i < 32; i++ {
		x0, y0 := rng.Float64()-0.5, rng.Float64()-0.5
		vx, vy := rng.NormFloat64()*0.05, rng.NormFloat64()*0.05
		var s Sample
		for k := 0; k < 4; k++ {
			s.In = append(s.In, []float64{x0 + vx*float64(k), y0 + vy*float64(k)})
		}
		s.Out = append(s.Out, []float64{x0 + vx*4, y0 + vy*4})
		batch = append(batch, s)
	}
	grad := NewVector(m.NumParams())
	before := m.BatchLoss(batch, MSE{})
	opt := NewAdam(0.01)
	for it := 0; it < 200; it++ {
		m.BatchGrad(batch, MSE{}, grad)
		opt.Step(m.Weights(), grad)
	}
	after := m.BatchLoss(batch, MSE{})
	if after > before*0.3 {
		t.Errorf("GRU training did not converge: %v -> %v", before, after)
	}
}

func TestGRUModelInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	var m Model = NewGRUSeq2Seq(3, 2, 4, rng)
	if m.ArchName() != ArchGRU {
		t.Errorf("arch = %q", m.ArchName())
	}
	cp := m.CloneModel()
	cp.Weights()[0] += 5
	if m.Weights()[0] == cp.Weights()[0] {
		t.Error("CloneModel shares storage")
	}
	var l Model = NewSeq2Seq(3, 2, 4, rng)
	if l.ArchName() != ArchLSTM {
		t.Errorf("lstm arch = %q", l.ArchName())
	}
}

func TestGRUZeroHeadPredictsStandStill(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := NewGRUSeq2Seq(2, 2, 4, rng)
	in := [][]float64{{0.1, 0.2}, {0.15, 0.25}}
	preds := m.Predict(in, 3)
	for _, p := range preds {
		if p[0] != 0.15 || p[1] != 0.25 {
			t.Fatalf("untrained GRU should predict the last input, got %v", p)
		}
	}
}

func TestGRUSetWeightsPanics(t *testing.T) {
	m := NewGRUSeq2Seq(2, 2, 3, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.SetWeights(NewVector(1))
}
