package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one supervised sequence pair in model space: In is the observed
// trajectory (seq_in steps of InDim values), Out the continuation to predict
// (seq_out steps of OutDim values).
type Sample struct {
	In  [][]float64
	Out [][]float64
}

// Seq2Seq is the LSTM-Encoder-Decoder mobility prediction model of §III-B:
// an encoder LSTM consumes the input trajectory, its final state seeds a
// decoder LSTM that autoregressively emits the predicted continuation, one
// point per step, through a linear output head.
//
// The head is residual: each step predicts the displacement from the
// previous position, y_t = y_{t−1} + W_o·h_t (+ b_o), with y_{−1} the last
// observed input point. Trajectories move a little per tick, so a
// zero-initialized displacement head starts at the strong "stand still"
// baseline and only has to learn the motion.
//
// All parameters live in a single flat Vector (Weights), enabling the
// meta-learning machinery to treat the model as a point in parameter space.
type Seq2Seq struct {
	InDim  int // input feature size per step (2: x, y)
	OutDim int // output feature size per step (2: x, y)
	Hidden int

	enc lstmCell
	dec lstmCell
	out linear

	w Vector

	encOff, decOff, outOff int
}

// NewSeq2Seq constructs a model with small random weights drawn from rng.
func NewSeq2Seq(inDim, outDim, hidden int, rng *rand.Rand) *Seq2Seq {
	m := &Seq2Seq{
		InDim:  inDim,
		OutDim: outDim,
		Hidden: hidden,
		enc:    lstmCell{in: inDim, hidden: hidden},
		dec:    lstmCell{in: outDim, hidden: hidden},
		out:    linear{in: hidden, out: outDim},
	}
	m.encOff = 0
	m.decOff = m.enc.numParams()
	m.outOff = m.decOff + m.dec.numParams()
	n := m.outOff + m.out.numParams()
	// Xavier-style scale keeps gate pre-activations in the linear regime.
	scale := 1 / math.Sqrt(float64(hidden+inDim))
	m.w = RandomVector(n, scale, rng)
	// Zero displacement head: the untrained model predicts "no movement",
	// the natural baseline the residual architecture improves upon.
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = 0
	}
	return m
}

// NumParams returns the size of the flat parameter vector.
func (m *Seq2Seq) NumParams() int { return len(m.w) }

// Weights returns the live parameter vector. Mutating it mutates the model.
func (m *Seq2Seq) Weights() Vector { return m.w }

// SetWeights copies w into the model. It panics if the length differs.
func (m *Seq2Seq) SetWeights(w Vector) {
	if len(w) != len(m.w) {
		panic(fmt.Sprintf("nn: SetWeights length %d != %d", len(w), len(m.w)))
	}
	copy(m.w, w)
}

// Clone returns a structurally identical model with copied weights.
func (m *Seq2Seq) Clone() *Seq2Seq {
	cp := *m
	cp.w = m.w.Clone()
	return &cp
}

func (m *Seq2Seq) encW() Vector { return m.w[m.encOff:m.decOff] }
func (m *Seq2Seq) decW() Vector { return m.w[m.decOff:m.outOff] }
func (m *Seq2Seq) outW() Vector { return m.w[m.outOff:] }

// Predict runs the model on one input sequence and returns seqOut predicted
// steps of OutDim values each.
func (m *Seq2Seq) Predict(in [][]float64, seqOut int) [][]float64 {
	preds, _, _ := m.forward(in, seqOut)
	return preds
}

type seq2seqTrace struct {
	encSteps []lstmStep
	decSteps []lstmStep
	decIn    [][]float64 // decoder inputs per step
	preds    [][]float64
}

func (m *Seq2Seq) forward(in [][]float64, seqOut int) ([][]float64, []float64, *seq2seqTrace) {
	h := make([]float64, m.Hidden)
	c := make([]float64, m.Hidden)
	tr := &seq2seqTrace{}
	for _, x := range in {
		st := m.enc.forward(m.encW(), x, h, c)
		tr.encSteps = append(tr.encSteps, st)
		h, c = st.h, st.cNew
	}
	// The decoder's first input is the last observed point (projected to
	// OutDim); afterwards it consumes its own previous prediction.
	prev := make([]float64, m.OutDim)
	if len(in) > 0 {
		copy(prev, in[len(in)-1])
	}
	for t := 0; t < seqOut; t++ {
		tr.decIn = append(tr.decIn, prev)
		st := m.dec.forward(m.decW(), prev, h, c)
		tr.decSteps = append(tr.decSteps, st)
		h, c = st.h, st.cNew
		y := m.out.forward(m.outW(), st.h)
		for d := range y {
			y[d] += prev[d] // residual: displacement from previous position
		}
		tr.preds = append(tr.preds, y)
		prev = y
	}
	return tr.preds, h, tr
}

// Grad computes the loss of the model on (in, target) under loss and
// accumulates dLoss/dWeights into grad (which must have NumParams length).
// The autoregressive decoder input path is differentiated exactly: the
// gradient of step t's prediction includes its effect on steps t+1….
func (m *Seq2Seq) Grad(in, target [][]float64, loss Loss, grad Vector) float64 {
	if len(grad) != len(m.w) {
		panic(fmt.Sprintf("nn: Grad vector length %d != %d", len(grad), len(m.w)))
	}
	preds, _, tr := m.forward(in, len(target))
	dPreds := make([][]float64, len(preds))
	for i := range dPreds {
		dPreds[i] = make([]float64, m.OutDim)
	}
	lossVal := loss.LossGrad(preds, target, dPreds)

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]

	dh := make([]float64, m.Hidden)
	dc := make([]float64, m.Hidden)
	// dNextIn carries the gradient of the next step's decoder input, which
	// is this step's prediction.
	var dNextIn []float64
	for t := len(tr.decSteps) - 1; t >= 0; t-- {
		dy := make([]float64, m.OutDim)
		copy(dy, dPreds[t])
		if dNextIn != nil {
			for i := range dy {
				dy[i] += dNextIn[i]
			}
		}
		dhOut := m.out.backward(m.outW(), outG, tr.decSteps[t].h, dy)
		for i := range dh {
			dh[i] += dhOut[i]
		}
		var dx []float64
		dh, dc, dx = m.dec.backward(m.decW(), decG, tr.decSteps[t], dh, dc)
		// The previous prediction feeds step t twice: as the decoder input
		// (dx) and through the residual head (dy).
		for i := range dx {
			dx[i] += dy[i]
		}
		dNextIn = dx
	}
	// The first decoder input is the last encoder input (data), so dNextIn
	// stops here. Continue BPTT through the encoder.
	for t := len(tr.encSteps) - 1; t >= 0; t-- {
		dh, dc, _ = m.enc.backward(m.encW(), encG, tr.encSteps[t], dh, dc)
	}
	return lossVal
}

// BatchLoss returns the mean loss of the model over batch without computing
// gradients.
func (m *Seq2Seq) BatchLoss(batch []Sample, loss Loss) float64 {
	if len(batch) == 0 {
		return 0
	}
	var sum float64
	for _, s := range batch {
		preds := m.Predict(s.In, len(s.Out))
		d := make([][]float64, len(preds))
		for i := range d {
			d[i] = make([]float64, m.OutDim)
		}
		sum += loss.LossGrad(preds, s.Out, d)
	}
	return sum / float64(len(batch))
}

// BatchGrad accumulates the mean gradient of the loss over batch into grad
// and returns the mean loss. grad is zeroed first.
func (m *Seq2Seq) BatchGrad(batch []Sample, loss Loss, grad Vector) float64 {
	grad.Zero()
	if len(batch) == 0 {
		return 0
	}
	var sum float64
	for _, s := range batch {
		sum += m.Grad(s.In, s.Out, loss, grad)
	}
	grad.Scale(1 / float64(len(batch)))
	return sum / float64(len(batch))
}
