package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one supervised sequence pair in model space: In is the observed
// trajectory (seq_in steps of InDim values), Out the continuation to predict
// (seq_out steps of OutDim values).
type Sample struct {
	In  [][]float64
	Out [][]float64
}

// Seq2Seq is the LSTM-Encoder-Decoder mobility prediction model of §III-B:
// an encoder LSTM consumes the input trajectory, its final state seeds a
// decoder LSTM that autoregressively emits the predicted continuation, one
// point per step, through a linear output head.
//
// The head is residual: each step predicts the displacement from the
// previous position, y_t = y_{t−1} + W_o·h_t (+ b_o), with y_{−1} the last
// observed input point. Trajectories move a little per tick, so a
// zero-initialized displacement head starts at the strong "stand still"
// baseline and only has to learn the motion.
//
// All parameters live in a single flat Vector (Weights), enabling the
// meta-learning machinery to treat the model as a point in parameter space.
//
// A model owns a reusable scratch workspace (see workspace.go), so Predict,
// Grad, BatchLoss, and BatchGrad are steady-state allocation-free — and a
// model must not be shared between goroutines without external
// synchronization. Clones get independent workspaces.
type Seq2Seq struct {
	InDim  int // input feature size per step (2: x, y)
	OutDim int // output feature size per step (2: x, y)
	Hidden int

	enc lstmCell
	dec lstmCell
	out linear

	w Vector

	encOff, decOff, outOff int

	ws *lstmWS // lazily built scratch arena; nil after Clone
}

// NewSeq2Seq constructs a model with small random weights drawn from rng.
func NewSeq2Seq(inDim, outDim, hidden int, rng *rand.Rand) *Seq2Seq {
	m := &Seq2Seq{
		InDim:  inDim,
		OutDim: outDim,
		Hidden: hidden,
		enc:    lstmCell{in: inDim, hidden: hidden},
		dec:    lstmCell{in: outDim, hidden: hidden},
		out:    linear{in: hidden, out: outDim},
	}
	m.encOff = 0
	m.decOff = m.enc.numParams()
	m.outOff = m.decOff + m.dec.numParams()
	n := m.outOff + m.out.numParams()
	// Xavier-style scale keeps gate pre-activations in the linear regime.
	scale := 1 / math.Sqrt(float64(hidden+inDim))
	m.w = RandomVector(n, scale, rng)
	// Zero displacement head: the untrained model predicts "no movement",
	// the natural baseline the residual architecture improves upon.
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = 0
	}
	return m
}

// NumParams returns the size of the flat parameter vector.
func (m *Seq2Seq) NumParams() int { return len(m.w) }

// Weights returns the live parameter vector. Mutating it mutates the model.
func (m *Seq2Seq) Weights() Vector { return m.w }

// SetWeights copies w into the model. It panics if the length differs.
func (m *Seq2Seq) SetWeights(w Vector) {
	if len(w) != len(m.w) {
		panic(fmt.Sprintf("nn: SetWeights length %d != %d", len(w), len(m.w)))
	}
	copy(m.w, w)
}

// Clone returns a structurally identical model with copied weights and a
// private (lazily built) workspace.
func (m *Seq2Seq) Clone() *Seq2Seq {
	cp := *m
	cp.w = m.w.Clone()
	cp.ws = nil
	return &cp
}

func (m *Seq2Seq) encW() Vector { return m.w[m.encOff:m.decOff] }
func (m *Seq2Seq) decW() Vector { return m.w[m.decOff:m.outOff] }
func (m *Seq2Seq) outW() Vector { return m.w[m.outOff:] }

// Predict runs the model on one input sequence and returns seqOut predicted
// steps of OutDim values each. The returned rows are owned by the model's
// workspace: they stay valid until the next Predict/Grad/BatchLoss/BatchGrad
// call on this model, so copy them if you need to retain them.
func (m *Seq2Seq) Predict(in [][]float64, seqOut int) [][]float64 {
	return m.forward(in, seqOut)
}

// forward runs the encoder–decoder, recording the step tape in the
// workspace, and returns the workspace-owned prediction rows.
func (m *Seq2Seq) forward(in [][]float64, seqOut int) [][]float64 {
	ws := m.workspace()
	ws.encTape = growLSTMTape(ws.encTape, len(in), m.enc)
	ws.decTape = growLSTMTape(ws.decTape, seqOut, m.dec)
	ws.preds = growRows(ws.preds, seqOut, m.OutDim)
	zeroFloats(ws.h0)
	zeroFloats(ws.c0)
	h, c := ws.h0, ws.c0
	for t := range in {
		st := &ws.encTape[t]
		m.enc.forward(m.encW(), in[t], h, c, st)
		h, c = st.h, st.cNew
	}
	// The decoder's first input is the last observed point (projected to
	// OutDim); afterwards it consumes its own previous prediction.
	prev := ws.dec0
	zeroFloats(prev)
	if len(in) > 0 {
		copy(prev, in[len(in)-1])
	}
	for t := 0; t < seqOut; t++ {
		st := &ws.decTape[t]
		m.dec.forward(m.decW(), prev, h, c, st)
		h, c = st.h, st.cNew
		y := ws.preds[t]
		m.out.forward(m.outW(), st.h, y)
		for d := range y {
			y[d] += prev[d] // residual: displacement from previous position
		}
		prev = y
	}
	return ws.preds[:seqOut]
}

// Grad computes the loss of the model on (in, target) under loss and
// accumulates dLoss/dWeights into grad (which must have NumParams length).
// The autoregressive decoder input path is differentiated exactly: the
// gradient of step t's prediction includes its effect on steps t+1….
func (m *Seq2Seq) Grad(in, target [][]float64, loss Loss, grad Vector) float64 {
	if len(grad) != len(m.w) {
		panic(fmt.Sprintf("nn: Grad vector length %d != %d", len(grad), len(m.w)))
	}
	seqOut := len(target)
	preds := m.forward(in, seqOut)
	ws := m.ws
	ws.dPreds = growRows(ws.dPreds, seqOut, m.OutDim)
	dPreds := ws.dPreds[:seqOut]
	lossVal := loss.LossGrad(preds, target, dPreds)

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]

	zeroFloats(ws.dh)
	zeroFloats(ws.dc)
	dh, dc, dcPrev := ws.dh, ws.dc, ws.dcPrev
	// ws.dNext carries the gradient of the next step's decoder input, which
	// is this step's prediction.
	for t := seqOut - 1; t >= 0; t-- {
		st := &ws.decTape[t]
		dy := ws.dy
		copy(dy, dPreds[t])
		if t < seqOut-1 {
			for i := range dy {
				dy[i] += ws.dNext[i]
			}
		}
		m.out.backward(m.outW(), outG, st.h, dy, ws.dhOut)
		for i := range dh {
			dh[i] += ws.dhOut[i]
		}
		m.dec.backward(m.decW(), decG, st, dh, dc, dcPrev, ws.dxhDec, ws.dz)
		// The previous prediction feeds step t twice: as the decoder input
		// (dx, the first OutDim entries of the packed dxh) and through the
		// residual head (dy).
		for i := range ws.dNext {
			ws.dNext[i] = ws.dxhDec[i] + dy[i]
		}
		copy(dh, ws.dxhDec[m.dec.in:])
		dc, dcPrev = dcPrev, dc
	}
	// The first decoder input is the last encoder input (data), so the input
	// gradient stops here. Continue BPTT through the encoder.
	for t := len(in) - 1; t >= 0; t-- {
		m.enc.backward(m.encW(), encG, &ws.encTape[t], dh, dc, dcPrev, ws.dxhEnc, ws.dz)
		copy(dh, ws.dxhEnc[m.enc.in:])
		dc, dcPrev = dcPrev, dc
	}
	return lossVal
}

// BatchLoss returns the mean loss of the model over batch without computing
// gradients. Uniform-shape batches of ≥2 samples take the batched
// step-synchronous kernels (batch.go); the result is bit-identical either
// way.
func (m *Seq2Seq) BatchLoss(batch []Sample, loss Loss) float64 {
	if len(batch) == 0 {
		return 0
	}
	if len(batch) >= 2 && batchUniform(batch) {
		return m.batchLoss(batch, loss) / float64(len(batch))
	}
	var sum float64
	for i := range batch {
		s := &batch[i]
		preds := m.forward(s.In, len(s.Out))
		ws := m.ws
		ws.dPreds = growRows(ws.dPreds, len(s.Out), m.OutDim)
		sum += loss.LossGrad(preds, s.Out, ws.dPreds[:len(s.Out)])
	}
	return sum / float64(len(batch))
}

// BatchGrad accumulates the mean gradient of the loss over batch into grad
// and returns the mean loss. grad is zeroed first. Uniform-shape batches of
// ≥2 samples take the batched kernels (batch.go), which reuse each weight
// and gradient row across the whole batch while preserving the per-sample
// floating-point reduction order exactly — mixed-shape batches stream
// through Grad sample by sample, and both paths are bit-identical.
func (m *Seq2Seq) BatchGrad(batch []Sample, loss Loss, grad Vector) float64 {
	grad.Zero()
	if len(batch) == 0 {
		return 0
	}
	if len(grad) != len(m.w) {
		panic(fmt.Sprintf("nn: BatchGrad vector length %d != %d", len(grad), len(m.w)))
	}
	if len(batch) >= 2 && batchUniform(batch) {
		sum := m.batchGrad(batch, loss, grad)
		grad.Scale(1 / float64(len(batch)))
		return sum / float64(len(batch))
	}
	var sum float64
	for i := range batch {
		sum += m.Grad(batch[i].In, batch[i].Out, loss, grad)
	}
	grad.Scale(1 / float64(len(batch)))
	return sum / float64(len(batch))
}
