package nn

import (
	"math"
	"math/rand"
	"testing"
)

// This file preserves the pre-workspace scalar kernels as an executable
// reference. The fused, allocation-free kernels must produce predictions and
// gradients identical to these (the tests below assert 1e-9 agreement; in
// practice the floating-point op order is unchanged, so they match bitwise).

type refLSTMStep struct {
	x          []float64
	hPrev      []float64
	cPrev      []float64
	i, f, g, o []float64
	cNew       []float64
	tanhC      []float64
	h          []float64
}

func refLSTMForward(c lstmCell, w Vector, x, hPrev, cPrev []float64) refLSTMStep {
	h := c.hidden
	cols := c.cols()
	st := refLSTMStep{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float64, h), f: make([]float64, h),
		g: make([]float64, h), o: make([]float64, h),
		cNew: make([]float64, h), tanhC: make([]float64, h), h: make([]float64, h),
	}
	for r := 0; r < 4*h; r++ {
		row := w[r*cols : (r+1)*cols]
		z := row[c.in+h]
		for j, xv := range x {
			z += row[j] * xv
		}
		for j, hv := range hPrev {
			z += row[c.in+j] * hv
		}
		gate, idx := r/h, r%h
		switch gate {
		case 0:
			st.i[idx] = sigmoid(z)
		case 1:
			st.f[idx] = sigmoid(z)
		case 2:
			st.g[idx] = math.Tanh(z)
		case 3:
			st.o[idx] = sigmoid(z)
		}
	}
	for k := 0; k < h; k++ {
		st.cNew[k] = st.f[k]*cPrev[k] + st.i[k]*st.g[k]
		st.tanhC[k] = math.Tanh(st.cNew[k])
		st.h[k] = st.o[k] * st.tanhC[k]
	}
	return st
}

func refLSTMBackward(c lstmCell, w, grad Vector, st refLSTMStep, dh, dc []float64) (dhPrev, dcPrev, dx []float64) {
	h := c.hidden
	cols := c.cols()
	dhPrev = make([]float64, h)
	dcPrev = make([]float64, h)
	dx = make([]float64, c.in)

	dz := make([]float64, 4*h)
	for k := 0; k < h; k++ {
		do := dh[k] * st.tanhC[k]
		dcT := dh[k]*st.o[k]*(1-st.tanhC[k]*st.tanhC[k]) + dc[k]
		di := dcT * st.g[k]
		df := dcT * st.cPrev[k]
		dg := dcT * st.i[k]
		dcPrev[k] = dcT * st.f[k]
		dz[0*h+k] = di * st.i[k] * (1 - st.i[k])
		dz[1*h+k] = df * st.f[k] * (1 - st.f[k])
		dz[2*h+k] = dg * (1 - st.g[k]*st.g[k])
		dz[3*h+k] = do * st.o[k] * (1 - st.o[k])
	}
	for r := 0; r < 4*h; r++ {
		d := dz[r]
		if d == 0 {
			continue
		}
		row := w[r*cols : (r+1)*cols]
		grow := grad[r*cols : (r+1)*cols]
		for j, xv := range st.x {
			grow[j] += d * xv
			dx[j] += d * row[j]
		}
		for j, hv := range st.hPrev {
			grow[c.in+j] += d * hv
			dhPrev[j] += d * row[c.in+j]
		}
		grow[c.in+h] += d
	}
	return dhPrev, dcPrev, dx
}

func refLinearForward(l linear, w Vector, x []float64) []float64 {
	y := make([]float64, l.out)
	cols := l.in + 1
	for r := 0; r < l.out; r++ {
		row := w[r*cols : (r+1)*cols]
		z := row[l.in]
		for j, xv := range x {
			z += row[j] * xv
		}
		y[r] = z
	}
	return y
}

func refLinearBackward(l linear, w, grad Vector, x, dy []float64) (dx []float64) {
	dx = make([]float64, l.in)
	cols := l.in + 1
	for r := 0; r < l.out; r++ {
		d := dy[r]
		if d == 0 {
			continue
		}
		row := w[r*cols : (r+1)*cols]
		grow := grad[r*cols : (r+1)*cols]
		for j, xv := range x {
			grow[j] += d * xv
			dx[j] += d * row[j]
		}
		grow[l.in] += d
	}
	return dx
}

// refSeq2SeqGrad is the pre-workspace Seq2Seq forward+backward: it runs the
// encoder–decoder with per-step allocations and exact autoregressive BPTT,
// returning the loss, predictions, and accumulating into grad.
func refSeq2SeqGrad(m *Seq2Seq, in, target [][]float64, loss Loss, grad Vector) (float64, [][]float64) {
	h := make([]float64, m.Hidden)
	c := make([]float64, m.Hidden)
	var encSteps, decSteps []refLSTMStep
	var preds [][]float64
	for _, x := range in {
		st := refLSTMForward(m.enc, m.encW(), x, h, c)
		encSteps = append(encSteps, st)
		h, c = st.h, st.cNew
	}
	prev := make([]float64, m.OutDim)
	if len(in) > 0 {
		copy(prev, in[len(in)-1])
	}
	for t := 0; t < len(target); t++ {
		st := refLSTMForward(m.dec, m.decW(), prev, h, c)
		decSteps = append(decSteps, st)
		h, c = st.h, st.cNew
		y := refLinearForward(m.out, m.outW(), st.h)
		for d := range y {
			y[d] += prev[d]
		}
		preds = append(preds, y)
		prev = y
	}

	dPreds := make([][]float64, len(preds))
	for i := range dPreds {
		dPreds[i] = make([]float64, m.OutDim)
	}
	lossVal := loss.LossGrad(preds, target, dPreds)

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]

	dh := make([]float64, m.Hidden)
	dc := make([]float64, m.Hidden)
	var dNextIn []float64
	for t := len(decSteps) - 1; t >= 0; t-- {
		dy := make([]float64, m.OutDim)
		copy(dy, dPreds[t])
		if dNextIn != nil {
			for i := range dy {
				dy[i] += dNextIn[i]
			}
		}
		dhOut := refLinearBackward(m.out, m.outW(), outG, decSteps[t].h, dy)
		for i := range dh {
			dh[i] += dhOut[i]
		}
		var dx []float64
		dh, dc, dx = refLSTMBackward(m.dec, m.decW(), decG, decSteps[t], dh, dc)
		for i := range dx {
			dx[i] += dy[i]
		}
		dNextIn = dx
	}
	for t := len(encSteps) - 1; t >= 0; t-- {
		dh, dc, _ = refLSTMBackward(m.enc, m.encW(), encG, encSteps[t], dh, dc)
	}
	return lossVal, preds
}

// TestFusedLSTMMatchesReference checks the fused workspace kernels against
// the preserved pre-refactor implementation: identical predictions, loss,
// and full-parameter gradients (within 1e-9; op order is unchanged, so the
// match is expected to be exact).
func TestFusedLSTMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		inDim := 2 + rng.Intn(3)
		outDim := 2
		hidden := 3 + rng.Intn(6)
		seqIn := 1 + rng.Intn(5)
		seqOut := 1 + rng.Intn(4)
		m := NewSeq2Seq(inDim, outDim, hidden, rng)
		// A non-zero head exercises every backward path.
		for i := m.outOff; i < len(m.w); i++ {
			m.w[i] = rng.NormFloat64() * 0.2
		}
		s := randSample(rng, inDim, outDim, seqIn, seqOut)
		loss := MSE{}

		refGrad := NewVector(m.NumParams())
		refLoss, refPreds := refSeq2SeqGrad(m, s.In, s.Out, loss, refGrad)

		grad := NewVector(m.NumParams())
		preds := m.Predict(s.In, seqOut)
		for ti := range refPreds {
			for d := range refPreds[ti] {
				if diff := math.Abs(preds[ti][d] - refPreds[ti][d]); diff > 1e-9 {
					t.Fatalf("trial %d: pred[%d][%d] differs by %g", trial, ti, d, diff)
				}
			}
		}
		gotLoss := m.Grad(s.In, s.Out, loss, grad)
		if math.Abs(gotLoss-refLoss) > 1e-9 {
			t.Fatalf("trial %d: loss %v vs reference %v", trial, gotLoss, refLoss)
		}
		for i := range grad {
			if diff := math.Abs(grad[i] - refGrad[i]); diff > 1e-9 {
				t.Fatalf("trial %d: grad[%d] = %v vs reference %v (diff %g)",
					trial, i, grad[i], refGrad[i], diff)
			}
		}
	}
}

// TestFusedGRUGradCheck validates the fused GRU kernels against central
// finite differences over every parameter — the GRU analogue of
// TestSeq2SeqGradCheck, pinning the rewritten candidate/update/reset
// backward blocks.
func TestFusedGRUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewGRUSeq2Seq(2, 2, 4, rng)
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = rng.NormFloat64() * 0.2
	}
	s := randSample(rng, 2, 2, 3, 2)
	loss := MSE{}

	grad := NewVector(m.NumParams())
	m.Grad(s.In, s.Out, loss, grad)

	const eps = 1e-5
	w := m.Weights()
	for i := 0; i < m.NumParams(); i++ {
		orig := w[i]
		w[i] = orig + eps
		lp := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig - eps
		lm := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig
		num := (lp - lm) / (2 * eps)
		denom := math.Max(math.Abs(num)+math.Abs(grad[i]), 1e-6)
		if rel := math.Abs(num-grad[i]) / denom; rel > 1e-3 && math.Abs(num-grad[i]) > 1e-6 {
			t.Fatalf("param %d: analytic %v vs numeric %v", i, grad[i], num)
		}
	}
}
