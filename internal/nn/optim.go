package nn

import "math"

// Optimizer updates a parameter vector in place given its gradient.
type Optimizer interface {
	Step(w, grad Vector)
}

// SGD is plain stochastic gradient descent with optional gradient clipping,
// used for the inner-loop adaptation steps of MAML (Algorithm 3, line 7).
type SGD struct {
	LR       float64
	ClipNorm float64 // 0 disables clipping
}

// Step implements Optimizer.
func (o SGD) Step(w, grad Vector) {
	if o.ClipNorm > 0 {
		grad.ClipNorm(o.ClipNorm)
	}
	w.Axpy(-o.LR, grad)
}

// Adam is the Adam optimizer, used for the outer meta-updates where noisy
// per-cluster gradients benefit from adaptive step sizes.
type Adam struct {
	LR       float64
	Beta1    float64 // default 0.9
	Beta2    float64 // default 0.999
	Eps      float64 // default 1e-8
	ClipNorm float64 // 0 disables clipping

	m, v Vector
	t    int
}

// NewAdam returns an Adam optimizer with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(w, grad Vector) {
	if o.Beta1 == 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 == 0 {
		o.Beta2 = 0.999
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	if o.m == nil {
		o.m = NewVector(len(w))
		o.v = NewVector(len(w))
	}
	if o.ClipNorm > 0 {
		grad.ClipNorm(o.ClipNorm)
	}
	o.t++
	b1c := 1 - math.Pow(o.Beta1, float64(o.t))
	b2c := 1 - math.Pow(o.Beta2, float64(o.t))
	// Fully fused single-pass update: the first-moment recurrence, the
	// second-moment recurrence, and the weight step in one sweep, so m, v,
	// grad, and w each stream through the cache once per Step instead of m
	// and grad being read twice (AddScaled pass + update pass). The
	// per-element arithmetic matches the previous two-pass version exactly,
	// so updates are bit-identical.
	mv := o.m[:len(w)]
	vv := o.v[:len(w)]
	g := grad[:len(w)]
	b1, omb1 := o.Beta1, 1-o.Beta1
	b2, omb2 := o.Beta2, 1-o.Beta2
	lr, eps := o.LR, o.Eps
	for i := range w {
		gi := g[i]
		mi := b1*mv[i] + omb1*gi
		mv[i] = mi
		vi := b2*vv[i] + omb2*gi*gi
		vv[i] = vi
		w[i] -= lr * (mi / b1c) / (math.Sqrt(vi/b2c) + eps)
	}
}

// Reset clears Adam's moment estimates, e.g. when reusing the optimizer for
// a fresh model.
func (o *Adam) Reset() {
	o.m, o.v, o.t = nil, nil, 0
}

// AdamState is the serializable snapshot of an Adam optimizer's mutable
// state — the two moment vectors and the step counter. Together with the
// weight vector it makes an optimization run resumable bit-identically:
// restore both and the next Step produces exactly the update an
// uninterrupted run would have.
type AdamState struct {
	M Vector `json:"m"`
	V Vector `json:"v"`
	T int    `json:"t"`
}

// State returns a deep copy of the optimizer's mutable state. A never-
// stepped optimizer yields zero-value state (nil moments, T = 0).
func (o *Adam) State() AdamState {
	s := AdamState{T: o.t}
	if o.m != nil {
		s.M = o.m.Clone()
		s.V = o.v.Clone()
	}
	return s
}

// SetState restores state captured by State, deep-copying so the snapshot
// stays immutable across further steps.
func (o *Adam) SetState(s AdamState) {
	o.t = s.T
	if s.M == nil {
		o.m, o.v = nil, nil
		return
	}
	o.m = s.M.Clone()
	o.v = s.V.Clone()
}
