package nn

// Loss scores a predicted sequence against its target and produces the
// gradient of the loss with respect to the prediction.
type Loss interface {
	// LossGrad returns the scalar loss and writes dLoss/dPred into grad,
	// which has the same shape as pred. Implementations must ADD into grad
	// is not required — they own it per call and may overwrite.
	LossGrad(pred, target, grad [][]float64) float64
}

// MSE is the plain mean-squared-error loss used by the -loss algorithm
// variants (KM-loss, PPI-loss) and by prediction-quality evaluation:
// L = (1/T) Σ_t ‖pred_t − target_t‖².
type MSE struct{}

// LossGrad implements Loss.
func (MSE) LossGrad(pred, target, grad [][]float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	inv := 1 / float64(len(pred))
	var sum float64
	for t := range pred {
		for d := range pred[t] {
			diff := pred[t][d] - target[t][d]
			sum += diff * diff
			grad[t][d] = 2 * diff * inv
		}
	}
	return sum * inv
}

// WeightFn returns the loss weight f_w(l_i) for one target point of a
// training sample (Eq. 7). step is the output-step index; target is the
// ground-truth point in model space. Implementations typically denormalize
// the point and consult a historical-task density index.
type WeightFn func(step int, target []float64) float64

// WeightedMSE is the task-assignment-oriented loss of Eq. 6:
// L = (1/T) Σ_t f_w(l_t)·‖pred_t − target_t‖², where f_w up-weights
// trajectory points around which historical spatial tasks concentrate.
type WeightedMSE struct {
	Weight WeightFn
}

// LossGrad implements Loss.
func (l WeightedMSE) LossGrad(pred, target, grad [][]float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	inv := 1 / float64(len(pred))
	var sum float64
	for t := range pred {
		w := l.Weight(t, target[t])
		for d := range pred[t] {
			diff := pred[t][d] - target[t][d]
			sum += w * diff * diff
			grad[t][d] = 2 * w * diff * inv
		}
	}
	return sum * inv
}

// ConstWeight returns a WeightFn that ignores its inputs, useful in tests:
// WeightedMSE with ConstWeight(1) must coincide with MSE.
func ConstWeight(w float64) WeightFn {
	return func(int, []float64) float64 { return w }
}

// Scaled multiplies another loss (and its gradient) by a constant factor.
// Models train on unit-normalized coordinates where per-step displacements
// are tiny; scaling the loss back to physical units (factor = scale²) keeps
// SGD gradient magnitudes in a healthy range without changing the optimum.
type Scaled struct {
	Inner  Loss
	Factor float64
}

// LossGrad implements Loss.
func (l Scaled) LossGrad(pred, target, grad [][]float64) float64 {
	v := l.Inner.LossGrad(pred, target, grad)
	for t := range grad {
		for d := range grad[t] {
			grad[t][d] *= l.Factor
		}
	}
	return v * l.Factor
}
