package nn

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// TestAdamStateResumeBitIdentical interrupts an Adam run mid-stream,
// round-trips the optimizer state through JSON (the checkpoint path), and
// checks the resumed trajectory is exactly the uninterrupted one.
func TestAdamStateResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	grads := make([]Vector, 40)
	for i := range grads {
		grads[i] = NewVector(n)
		for j := range grads[i] {
			grads[i][j] = rng.NormFloat64()
		}
	}
	run := func(w Vector, opt *Adam, from, to int) {
		for i := from; i < to; i++ {
			g := grads[i].Clone() // Step clips in place
			opt.Step(w, g)
		}
	}

	// Uninterrupted reference.
	wRef := NewVector(n)
	optRef := NewAdam(0.01)
	optRef.ClipNorm = 5
	run(wRef, optRef, 0, len(grads))

	// Interrupted at step 17: snapshot, serialize, restore, resume.
	w := NewVector(n)
	opt := NewAdam(0.01)
	opt.ClipNorm = 5
	run(w, opt, 0, 17)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(opt.State()); err != nil {
		t.Fatal(err)
	}
	var s AdamState
	if err := json.NewDecoder(&buf).Decode(&s); err != nil {
		t.Fatal(err)
	}
	opt2 := NewAdam(0.01)
	opt2.ClipNorm = 5
	opt2.SetState(s)
	run(w, opt2, 17, len(grads))

	for i := range wRef {
		if w[i] != wRef[i] {
			t.Fatalf("w[%d]: resumed %v != uninterrupted %v", i, w[i], wRef[i])
		}
	}
}

func TestAdamStateFreshOptimizer(t *testing.T) {
	opt := NewAdam(0.1)
	s := opt.State()
	if s.M != nil || s.V != nil || s.T != 0 {
		t.Fatalf("fresh state = %+v", s)
	}
	opt2 := NewAdam(0.1)
	w := NewVector(3)
	opt2.Step(w, Vector{1, 1, 1})
	opt2.SetState(s) // restore to fresh
	if opt2.t != 0 || opt2.m != nil {
		t.Fatalf("SetState(zero) did not reset: t=%d", opt2.t)
	}
}
