package nn

import (
	"math/rand"
	"testing"
)

func benchModel(hidden int) (*Seq2Seq, Sample) {
	rng := rand.New(rand.NewSource(1))
	m := NewSeq2Seq(4, 2, hidden, rng)
	return m, randSample(rng, 4, 2, 5, 1)
}

func BenchmarkSeq2SeqPredict(b *testing.B) {
	m, s := benchModel(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(s.In, 1)
	}
}

func BenchmarkSeq2SeqGrad(b *testing.B) {
	m, s := benchModel(16)
	grad := NewVector(m.NumParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		grad.Zero()
		m.Grad(s.In, s.Out, MSE{}, grad)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	w := RandomVector(4096, 0.1, rand.New(rand.NewSource(1)))
	g := RandomVector(4096, 0.1, rand.New(rand.NewSource(2)))
	opt := NewAdam(0.001)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt.Step(w, g)
	}
}

func BenchmarkVectorAxpy(b *testing.B) {
	v := NewVector(4096)
	x := RandomVector(4096, 1, rand.New(rand.NewSource(3)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Axpy(0.5, x)
	}
}
