package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelFile is the on-disk representation of a Seq2Seq model.
type modelFile struct {
	Format  string `json:"format"`
	InDim   int    `json:"inDim"`
	OutDim  int    `json:"outDim"`
	Hidden  int    `json:"hidden"`
	Weights Vector `json:"weights"`
}

const modelFormat = "tamp-seq2seq-v1"

// Save writes the model architecture and weights as JSON.
func (m *Seq2Seq) Save(w io.Writer) error {
	f := modelFile{
		Format:  modelFormat,
		InDim:   m.InDim,
		OutDim:  m.OutDim,
		Hidden:  m.Hidden,
		Weights: m.w,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// LoadSeq2Seq reads a model previously written by Save.
func LoadSeq2Seq(r io.Reader) (*Seq2Seq, error) {
	var f modelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("nn: decode model: %w", err)
	}
	if f.Format != modelFormat {
		return nil, fmt.Errorf("nn: unsupported model format %q", f.Format)
	}
	if f.InDim <= 0 || f.OutDim <= 0 || f.Hidden <= 0 {
		return nil, fmt.Errorf("nn: invalid model dims %d/%d/%d", f.InDim, f.OutDim, f.Hidden)
	}
	m := &Seq2Seq{
		InDim:  f.InDim,
		OutDim: f.OutDim,
		Hidden: f.Hidden,
		enc:    lstmCell{in: f.InDim, hidden: f.Hidden},
		dec:    lstmCell{in: f.OutDim, hidden: f.Hidden},
		out:    linear{in: f.Hidden, out: f.OutDim},
	}
	m.encOff = 0
	m.decOff = m.enc.numParams()
	m.outOff = m.decOff + m.dec.numParams()
	n := m.outOff + m.out.numParams()
	if len(f.Weights) != n {
		return nil, fmt.Errorf("nn: weight count %d, want %d", len(f.Weights), n)
	}
	m.w = f.Weights
	return m, nil
}
