package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// gruCell is a single-layer GRU with a packed weight layout: rows = 3*hidden
// for the update (z), reset (r), and candidate (h̃) blocks, cols = in +
// hidden + 1 (bias last). Update rule:
//
//	z = σ(W_z·[x; hPrev] + b_z)
//	r = σ(W_r·[x; hPrev] + b_r)
//	h̃ = tanh(W_h·[x; r⊙hPrev] + b_h)
//	h = (1−z)⊙hPrev + z⊙h̃
//
// Like lstmCell, the kernels are allocation-free: forward and backward write
// into caller-provided step/scratch buffers, sweeping each weight row once
// over a packed input ([x; hPrev] for the gate blocks, [x; r⊙hPrev] for the
// candidate) with hoisted slices.
type gruCell struct {
	in, hidden int
}

func (c gruCell) numParams() int { return 3 * c.hidden * (c.in + c.hidden + 1) }
func (c gruCell) cols() int      { return c.in + c.hidden + 1 }

// gruStep caches one time step for BPTT. Buffers are workspace-owned.
type gruStep struct {
	xh    []float64 // packed [x; hPrev]
	xrh   []float64 // packed [x; r⊙hPrev], the candidate's input
	z, r  []float64
	hCand []float64
	h     []float64
}

// gruRowDot returns row r's pre-activation over the packed input in:
// bias + Σ_j W[r][j]·in[j], with in covering x and the recurrent part.
func gruRowDot(w Vector, r, cols, nin int, in []float64) float64 {
	base := r * cols
	row := w[base : base+cols]
	s := row[nin]
	row = row[:nin]
	for j, rv := range row {
		s += rv * in[j]
	}
	return s
}

// forward computes one GRU step into the caller's step record.
func (c gruCell) forward(w Vector, x, hPrev []float64, st *gruStep) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	xh := st.xh[:nin]
	copy(xh, x)
	copy(xh[c.in:], hPrev)
	for k := 0; k < h; k++ {
		st.z[k] = sigmoid(gruRowDot(w, k, cols, nin, xh))
		st.r[k] = sigmoid(gruRowDot(w, h+k, cols, nin, xh))
	}
	xrh := st.xrh[:nin]
	copy(xrh, x)
	for k := 0; k < h; k++ {
		xrh[c.in+k] = st.r[k] * hPrev[k]
	}
	for k := 0; k < h; k++ {
		st.hCand[k] = math.Tanh(gruRowDot(w, 2*h+k, cols, nin, xrh))
		st.h[k] = (1-st.z[k])*hPrev[k] + st.z[k]*st.hCand[k]
	}
}

// blockBackward accumulates one gate block's gradients for rows with inputs
// [x; hPrev]: parameter gradients from the packed xh, and the downstream
// gradients directly into dx and dhPrev (which already carry contributions
// from earlier blocks, so the accumulation order of the reference kernel is
// preserved exactly).
func (c gruCell) blockBackward(w, grad Vector, block int, dPre, xh, dx, dhPrev []float64) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	for k := 0; k < h; k++ {
		d := dPre[k]
		if d == 0 {
			continue
		}
		base := (block*h + k) * cols
		grow := grad[base : base+cols]
		growv := grow[:nin]
		row := w[base : base+nin]
		rowX := row[:c.in]
		for j, rv := range rowX {
			growv[j] += d * xh[j]
			dx[j] += d * rv
		}
		rowH := row[c.in:]
		xhH := xh[c.in:nin]
		growH := growv[c.in:]
		for j, rv := range rowH {
			growH[j] += d * xhH[j]
			dhPrev[j] += d * rv
		}
		grow[nin] += d
	}
}

// backward accumulates gradients for one step given dh, writing the
// propagated gradients into the caller's dhPrev (hidden) and dx (in)
// buffers. sc holds the reusable intermediates.
func (c gruCell) backward(w, grad Vector, st *gruStep, dh, dhPrev, dx []float64, sc *gruScratch) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	hPrev := st.xh[c.in:nin]
	zeroFloats(dx)

	for k := 0; k < h; k++ {
		dz := dh[k] * (st.hCand[k] - hPrev[k])
		dc := dh[k] * st.z[k]
		dhPrev[k] = dh[k] * (1 - st.z[k])
		sc.dzPre[k] = dz * st.z[k] * (1 - st.z[k])
		sc.dcPre[k] = dc * (1 - st.hCand[k]*st.hCand[k])
	}
	// Candidate block: inputs [x; r⊙hPrev]. dx and d(r⊙hPrev) both start at
	// zero here, so accumulating them in the packed buffer and splitting
	// afterwards reproduces the reference kernel's op order bit for bit.
	dxrh := sc.dxrh[:nin]
	zeroFloats(dxrh)
	xrh := st.xrh[:nin]
	for k := 0; k < h; k++ {
		d := sc.dcPre[k]
		if d == 0 {
			continue
		}
		base := (2*h + k) * cols
		grow := grad[base : base+cols]
		growv := grow[:nin]
		row := w[base : base+nin]
		for j, rv := range row {
			growv[j] += d * xrh[j]
			dxrh[j] += d * rv
		}
		grow[nin] += d
	}
	copy(dx, dxrh[:c.in])
	drh := sc.drh
	copy(drh, dxrh[c.in:])
	for k := 0; k < h; k++ {
		dr := drh[k] * hPrev[k]
		dhPrev[k] += drh[k] * st.r[k]
		sc.drPre[k] = dr * st.r[k] * (1 - st.r[k])
	}
	// Update and reset blocks: inputs [x; hPrev].
	c.blockBackward(w, grad, 0, sc.dzPre, st.xh[:nin], dx, dhPrev)
	c.blockBackward(w, grad, 1, sc.drPre, st.xh[:nin], dx, dhPrev)
}

// GRUSeq2Seq is the GRU variant of the encoder–decoder mobility model,
// matching the RNN encoder–decoder of Cho et al. [27] that the paper cites.
// Structure mirrors Seq2Seq: encoder GRU, decoder GRU seeded by the encoder
// state, and a residual displacement head. Like Seq2Seq, a model owns a
// reusable workspace and is not safe for concurrent use.
type GRUSeq2Seq struct {
	InDim  int
	OutDim int
	Hidden int

	enc gruCell
	dec gruCell
	out linear

	w Vector

	encOff, decOff, outOff int

	ws *gruWS // lazily built scratch arena; nil after CloneModel
}

// NewGRUSeq2Seq constructs a GRU encoder–decoder with small random weights
// and a zero displacement head.
func NewGRUSeq2Seq(inDim, outDim, hidden int, rng *rand.Rand) *GRUSeq2Seq {
	m := &GRUSeq2Seq{
		InDim:  inDim,
		OutDim: outDim,
		Hidden: hidden,
		enc:    gruCell{in: inDim, hidden: hidden},
		dec:    gruCell{in: outDim, hidden: hidden},
		out:    linear{in: hidden, out: outDim},
	}
	m.encOff = 0
	m.decOff = m.enc.numParams()
	m.outOff = m.decOff + m.dec.numParams()
	n := m.outOff + m.out.numParams()
	scale := 1 / math.Sqrt(float64(hidden+inDim))
	m.w = RandomVector(n, scale, rng)
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = 0
	}
	return m
}

// NumParams implements Model.
func (m *GRUSeq2Seq) NumParams() int { return len(m.w) }

// Weights implements Model.
func (m *GRUSeq2Seq) Weights() Vector { return m.w }

// SetWeights implements Model.
func (m *GRUSeq2Seq) SetWeights(w Vector) {
	if len(w) != len(m.w) {
		panic(fmt.Sprintf("nn: SetWeights length %d != %d", len(w), len(m.w)))
	}
	copy(m.w, w)
}

// CloneModel implements Model. The clone builds its own workspace on first
// use.
func (m *GRUSeq2Seq) CloneModel() Model {
	cp := *m
	cp.w = m.w.Clone()
	cp.ws = nil
	return &cp
}

// ArchName implements Model.
func (m *GRUSeq2Seq) ArchName() string { return ArchGRU }

func (m *GRUSeq2Seq) encW() Vector { return m.w[m.encOff:m.decOff] }
func (m *GRUSeq2Seq) decW() Vector { return m.w[m.decOff:m.outOff] }
func (m *GRUSeq2Seq) outW() Vector { return m.w[m.outOff:] }

// forward runs the encoder–decoder, recording the step tape in the
// workspace, and returns the workspace-owned prediction rows.
func (m *GRUSeq2Seq) forward(in [][]float64, seqOut int) [][]float64 {
	ws := m.workspace()
	ws.encTape = growGRUTape(ws.encTape, len(in), m.enc)
	ws.decTape = growGRUTape(ws.decTape, seqOut, m.dec)
	ws.preds = growRows(ws.preds, seqOut, m.OutDim)
	zeroFloats(ws.h0)
	h := ws.h0
	for t := range in {
		st := &ws.encTape[t]
		m.enc.forward(m.encW(), in[t], h, st)
		h = st.h
	}
	prev := ws.dec0
	zeroFloats(prev)
	if len(in) > 0 {
		copy(prev, in[len(in)-1])
	}
	for t := 0; t < seqOut; t++ {
		st := &ws.decTape[t]
		m.dec.forward(m.decW(), prev, h, st)
		h = st.h
		y := ws.preds[t]
		m.out.forward(m.outW(), st.h, y)
		for d := range y {
			y[d] += prev[d]
		}
		prev = y
	}
	return ws.preds[:seqOut]
}

// Predict implements Model. The returned rows are owned by the model's
// workspace: they stay valid until the next Predict/Grad/BatchLoss/BatchGrad
// call on this model, so copy them if you need to retain them.
func (m *GRUSeq2Seq) Predict(in [][]float64, seqOut int) [][]float64 {
	return m.forward(in, seqOut)
}

// Grad implements Model.
func (m *GRUSeq2Seq) Grad(in, target [][]float64, loss Loss, grad Vector) float64 {
	if len(grad) != len(m.w) {
		panic(fmt.Sprintf("nn: Grad vector length %d != %d", len(grad), len(m.w)))
	}
	seqOut := len(target)
	preds := m.forward(in, seqOut)
	ws := m.ws
	ws.dPreds = growRows(ws.dPreds, seqOut, m.OutDim)
	dPreds := ws.dPreds[:seqOut]
	lossVal := loss.LossGrad(preds, target, dPreds)

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]

	zeroFloats(ws.dh)
	dh, dhPrev := ws.dh, ws.dhPrev
	for t := seqOut - 1; t >= 0; t-- {
		st := &ws.decTape[t]
		dy := ws.dy
		copy(dy, dPreds[t])
		if t < seqOut-1 {
			for i := range dy {
				dy[i] += ws.dNext[i]
			}
		}
		m.out.backward(m.outW(), outG, st.h, dy, ws.dhOut)
		for i := range dh {
			dh[i] += ws.dhOut[i]
		}
		m.dec.backward(m.decW(), decG, st, dh, dhPrev, ws.dxDec, &ws.sc)
		for i := range ws.dNext {
			ws.dNext[i] = ws.dxDec[i] + dy[i] // residual path
		}
		dh, dhPrev = dhPrev, dh
	}
	for t := len(in) - 1; t >= 0; t-- {
		m.enc.backward(m.encW(), encG, &ws.encTape[t], dh, dhPrev, ws.dxEnc, &ws.sc)
		dh, dhPrev = dhPrev, dh
	}
	return lossVal
}

// BatchLoss implements Model. Uniform-shape batches of ≥2 samples take the
// batched step-synchronous kernels (batch_gru.go); bit-identical either way.
func (m *GRUSeq2Seq) BatchLoss(batch []Sample, loss Loss) float64 {
	if len(batch) == 0 {
		return 0
	}
	if len(batch) >= 2 && batchUniform(batch) {
		return m.batchLoss(batch, loss) / float64(len(batch))
	}
	var sum float64
	for i := range batch {
		s := &batch[i]
		preds := m.forward(s.In, len(s.Out))
		ws := m.ws
		ws.dPreds = growRows(ws.dPreds, len(s.Out), m.OutDim)
		sum += loss.LossGrad(preds, s.Out, ws.dPreds[:len(s.Out)])
	}
	return sum / float64(len(batch))
}

// BatchGrad implements Model. Uniform-shape batches of ≥2 samples take the
// batched kernels (batch_gru.go), which sweep each weight and gradient row
// once across the whole batch while preserving the per-sample
// floating-point reduction order — bit-identical to streaming through Grad.
func (m *GRUSeq2Seq) BatchGrad(batch []Sample, loss Loss, grad Vector) float64 {
	grad.Zero()
	if len(batch) == 0 {
		return 0
	}
	if len(grad) != len(m.w) {
		panic(fmt.Sprintf("nn: BatchGrad vector length %d != %d", len(grad), len(m.w)))
	}
	if len(batch) >= 2 && batchUniform(batch) {
		sum := m.batchGrad(batch, loss, grad)
		grad.Scale(1 / float64(len(batch)))
		return sum / float64(len(batch))
	}
	var sum float64
	for i := range batch {
		sum += m.Grad(batch[i].In, batch[i].Out, loss, grad)
	}
	grad.Scale(1 / float64(len(batch)))
	return sum / float64(len(batch))
}
