package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// gruCell is a single-layer GRU with a packed weight layout: rows = 3*hidden
// for the update (z), reset (r), and candidate (h̃) blocks, cols = in +
// hidden + 1 (bias last). Update rule:
//
//	z = σ(W_z·[x; hPrev] + b_z)
//	r = σ(W_r·[x; hPrev] + b_r)
//	h̃ = tanh(W_h·[x; r⊙hPrev] + b_h)
//	h = (1−z)⊙hPrev + z⊙h̃
type gruCell struct {
	in, hidden int
}

func (c gruCell) numParams() int { return 3 * c.hidden * (c.in + c.hidden + 1) }
func (c gruCell) cols() int      { return c.in + c.hidden + 1 }

type gruStep struct {
	x     []float64
	hPrev []float64
	z, r  []float64
	hCand []float64
	rh    []float64 // r ⊙ hPrev, the recurrent input of the candidate
	h     []float64
}

func (c gruCell) forward(w Vector, x, hPrev []float64) gruStep {
	h := c.hidden
	cols := c.cols()
	st := gruStep{
		x: x, hPrev: hPrev,
		z: make([]float64, h), r: make([]float64, h),
		hCand: make([]float64, h), rh: make([]float64, h), h: make([]float64, h),
	}
	rowDot := func(r int, rec []float64) float64 {
		row := w[r*cols : (r+1)*cols]
		s := row[c.in+h]
		for j, xv := range x {
			s += row[j] * xv
		}
		for j, hv := range rec {
			s += row[c.in+j] * hv
		}
		return s
	}
	for k := 0; k < h; k++ {
		st.z[k] = sigmoid(rowDot(k, hPrev))
		st.r[k] = sigmoid(rowDot(h+k, hPrev))
	}
	for k := 0; k < h; k++ {
		st.rh[k] = st.r[k] * hPrev[k]
	}
	for k := 0; k < h; k++ {
		st.hCand[k] = math.Tanh(rowDot(2*h+k, st.rh))
		st.h[k] = (1-st.z[k])*hPrev[k] + st.z[k]*st.hCand[k]
	}
	return st
}

func (c gruCell) backward(w, grad Vector, st gruStep, dh []float64) (dhPrev, dx []float64) {
	h := c.hidden
	cols := c.cols()
	dhPrev = make([]float64, h)
	dx = make([]float64, c.in)

	dzPre := make([]float64, h) // pre-activation grad of z
	drPre := make([]float64, h) // pre-activation grad of r
	dcPre := make([]float64, h) // pre-activation grad of h̃
	drh := make([]float64, h)   // grad of r⊙hPrev

	for k := 0; k < h; k++ {
		dz := dh[k] * (st.hCand[k] - st.hPrev[k])
		dc := dh[k] * st.z[k]
		dhPrev[k] += dh[k] * (1 - st.z[k])
		dzPre[k] = dz * st.z[k] * (1 - st.z[k])
		dcPre[k] = dc * (1 - st.hCand[k]*st.hCand[k])
	}
	// Candidate block: inputs [x; rh].
	for k := 0; k < h; k++ {
		d := dcPre[k]
		if d == 0 {
			continue
		}
		r := 2*h + k
		row := w[r*cols : (r+1)*cols]
		grow := grad[r*cols : (r+1)*cols]
		for j, xv := range st.x {
			grow[j] += d * xv
			dx[j] += d * row[j]
		}
		for j, hv := range st.rh {
			grow[c.in+j] += d * hv
			drh[j] += d * row[c.in+j]
		}
		grow[c.in+h] += d
	}
	for k := 0; k < h; k++ {
		dr := drh[k] * st.hPrev[k]
		dhPrev[k] += drh[k] * st.r[k]
		drPre[k] = dr * st.r[k] * (1 - st.r[k])
	}
	// Update and reset blocks: inputs [x; hPrev].
	apply := func(block int, dPre []float64) {
		for k := 0; k < h; k++ {
			d := dPre[k]
			if d == 0 {
				continue
			}
			r := block*h + k
			row := w[r*cols : (r+1)*cols]
			grow := grad[r*cols : (r+1)*cols]
			for j, xv := range st.x {
				grow[j] += d * xv
				dx[j] += d * row[j]
			}
			for j, hv := range st.hPrev {
				grow[c.in+j] += d * hv
				dhPrev[j] += d * row[c.in+j]
			}
			grow[c.in+h] += d
		}
	}
	apply(0, dzPre)
	apply(1, drPre)
	return dhPrev, dx
}

// GRUSeq2Seq is the GRU variant of the encoder–decoder mobility model,
// matching the RNN encoder–decoder of Cho et al. [27] that the paper cites.
// Structure mirrors Seq2Seq: encoder GRU, decoder GRU seeded by the encoder
// state, and a residual displacement head.
type GRUSeq2Seq struct {
	InDim  int
	OutDim int
	Hidden int

	enc gruCell
	dec gruCell
	out linear

	w Vector

	encOff, decOff, outOff int
}

// NewGRUSeq2Seq constructs a GRU encoder–decoder with small random weights
// and a zero displacement head.
func NewGRUSeq2Seq(inDim, outDim, hidden int, rng *rand.Rand) *GRUSeq2Seq {
	m := &GRUSeq2Seq{
		InDim:  inDim,
		OutDim: outDim,
		Hidden: hidden,
		enc:    gruCell{in: inDim, hidden: hidden},
		dec:    gruCell{in: outDim, hidden: hidden},
		out:    linear{in: hidden, out: outDim},
	}
	m.encOff = 0
	m.decOff = m.enc.numParams()
	m.outOff = m.decOff + m.dec.numParams()
	n := m.outOff + m.out.numParams()
	scale := 1 / math.Sqrt(float64(hidden+inDim))
	m.w = RandomVector(n, scale, rng)
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = 0
	}
	return m
}

// NumParams implements Model.
func (m *GRUSeq2Seq) NumParams() int { return len(m.w) }

// Weights implements Model.
func (m *GRUSeq2Seq) Weights() Vector { return m.w }

// SetWeights implements Model.
func (m *GRUSeq2Seq) SetWeights(w Vector) {
	if len(w) != len(m.w) {
		panic(fmt.Sprintf("nn: SetWeights length %d != %d", len(w), len(m.w)))
	}
	copy(m.w, w)
}

// CloneModel implements Model.
func (m *GRUSeq2Seq) CloneModel() Model {
	cp := *m
	cp.w = m.w.Clone()
	return &cp
}

// ArchName implements Model.
func (m *GRUSeq2Seq) ArchName() string { return ArchGRU }

func (m *GRUSeq2Seq) encW() Vector { return m.w[m.encOff:m.decOff] }
func (m *GRUSeq2Seq) decW() Vector { return m.w[m.decOff:m.outOff] }
func (m *GRUSeq2Seq) outW() Vector { return m.w[m.outOff:] }

type gruTrace struct {
	encSteps []gruStep
	decSteps []gruStep
	preds    [][]float64
}

func (m *GRUSeq2Seq) forward(in [][]float64, seqOut int) *gruTrace {
	h := make([]float64, m.Hidden)
	tr := &gruTrace{}
	for _, x := range in {
		st := m.enc.forward(m.encW(), x, h)
		tr.encSteps = append(tr.encSteps, st)
		h = st.h
	}
	prev := make([]float64, m.OutDim)
	if len(in) > 0 {
		copy(prev, in[len(in)-1])
	}
	for t := 0; t < seqOut; t++ {
		st := m.dec.forward(m.decW(), prev, h)
		tr.decSteps = append(tr.decSteps, st)
		h = st.h
		y := m.out.forward(m.outW(), st.h)
		for d := range y {
			y[d] += prev[d]
		}
		tr.preds = append(tr.preds, y)
		prev = y
	}
	return tr
}

// Predict implements Model.
func (m *GRUSeq2Seq) Predict(in [][]float64, seqOut int) [][]float64 {
	return m.forward(in, seqOut).preds
}

// Grad implements Model.
func (m *GRUSeq2Seq) Grad(in, target [][]float64, loss Loss, grad Vector) float64 {
	if len(grad) != len(m.w) {
		panic(fmt.Sprintf("nn: Grad vector length %d != %d", len(grad), len(m.w)))
	}
	tr := m.forward(in, len(target))
	dPreds := make([][]float64, len(tr.preds))
	for i := range dPreds {
		dPreds[i] = make([]float64, m.OutDim)
	}
	lossVal := loss.LossGrad(tr.preds, target, dPreds)

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]

	dh := make([]float64, m.Hidden)
	var dNextIn []float64
	for t := len(tr.decSteps) - 1; t >= 0; t-- {
		dy := make([]float64, m.OutDim)
		copy(dy, dPreds[t])
		if dNextIn != nil {
			for i := range dy {
				dy[i] += dNextIn[i]
			}
		}
		dhOut := m.out.backward(m.outW(), outG, tr.decSteps[t].h, dy)
		for i := range dh {
			dh[i] += dhOut[i]
		}
		var dx []float64
		dh, dx = m.dec.backward(m.decW(), decG, tr.decSteps[t], dh)
		for i := range dx {
			dx[i] += dy[i] // residual path
		}
		dNextIn = dx
	}
	for t := len(tr.encSteps) - 1; t >= 0; t-- {
		dh, _ = m.enc.backward(m.encW(), encG, tr.encSteps[t], dh)
	}
	return lossVal
}

// BatchLoss implements Model.
func (m *GRUSeq2Seq) BatchLoss(batch []Sample, loss Loss) float64 {
	if len(batch) == 0 {
		return 0
	}
	var sum float64
	for _, s := range batch {
		preds := m.Predict(s.In, len(s.Out))
		d := make([][]float64, len(preds))
		for i := range d {
			d[i] = make([]float64, m.OutDim)
		}
		sum += loss.LossGrad(preds, s.Out, d)
	}
	return sum / float64(len(batch))
}

// BatchGrad implements Model.
func (m *GRUSeq2Seq) BatchGrad(batch []Sample, loss Loss, grad Vector) float64 {
	grad.Zero()
	if len(batch) == 0 {
		return 0
	}
	var sum float64
	for _, s := range batch {
		sum += m.Grad(s.In, s.Out, loss, grad)
	}
	grad.Scale(1 / float64(len(batch)))
	return sum / float64(len(batch))
}
