package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestSeq2SeqSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewSeq2Seq(4, 2, 6, rng)
	// Give the zero-initialized head some non-trivial weights.
	w := m.Weights()
	for i := range w {
		w[i] = rng.NormFloat64() * 0.2
	}
	s := randSample(rng, 4, 2, 3, 2)
	want := m.Predict(s.In, 2)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSeq2Seq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InDim != 4 || loaded.OutDim != 2 || loaded.Hidden != 6 {
		t.Fatalf("dims lost: %d/%d/%d", loaded.InDim, loaded.OutDim, loaded.Hidden)
	}
	got := loaded.Predict(s.In, 2)
	for i := range want {
		for d := range want[i] {
			if want[i][d] != got[i][d] {
				t.Fatalf("prediction differs after round trip at %d,%d", i, d)
			}
		}
	}
}

func TestLoadSeq2SeqErrors(t *testing.T) {
	if _, err := LoadSeq2Seq(strings.NewReader("{")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := LoadSeq2Seq(strings.NewReader(`{"format":"nope"}`)); err == nil {
		t.Error("expected format error")
	}
	if _, err := LoadSeq2Seq(strings.NewReader(
		`{"format":"tamp-seq2seq-v1","inDim":0,"outDim":2,"hidden":4,"weights":[]}`)); err == nil {
		t.Error("expected dim error")
	}
	if _, err := LoadSeq2Seq(strings.NewReader(
		`{"format":"tamp-seq2seq-v1","inDim":2,"outDim":2,"hidden":4,"weights":[1,2]}`)); err == nil {
		t.Error("expected weight-count error")
	}
}
