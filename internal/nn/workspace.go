package nn

// This file implements the per-model scratch arenas that make the train /
// predict hot path steady-state allocation-free. Every buffer the forward
// and backward passes need — gate activations, the BPTT step tape, loss
// gradients, packed input rows — is owned by a workspace that is grown once
// (to the longest sequence seen) and reused for every subsequent sample.
//
// Ownership rules (see DESIGN.md §9):
//
//   - A workspace belongs to exactly one model value and is reached only
//     through that model's methods. Models are not safe for concurrent use;
//     the concurrency layer (internal/par, internal/meta) clones one model
//     per shard, so each goroutine owns a private workspace and no locking
//     is needed.
//   - Clone/CloneModel never copies a workspace: clones start with a nil
//     workspace and lazily build their own on first use.
//   - Buffers returned to callers (Predict's prediction rows) remain owned
//     by the workspace: they are valid until the next Predict / Grad /
//     BatchLoss / BatchGrad call on the same model.

// zeroFloats sets every element of s to zero.
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// growRows extends rows to at least n rows of the given width, reusing
// existing rows' backing arrays.
func growRows(rows [][]float64, n, width int) [][]float64 {
	for len(rows) < n {
		rows = append(rows, make([]float64, width))
	}
	return rows
}

// growLSTMTape extends the step tape to at least n steps with every step's
// buffers allocated for cell c. Existing steps keep their storage.
func growLSTMTape(tape []lstmStep, n int, c lstmCell) []lstmStep {
	for len(tape) < n {
		h := c.hidden
		tape = append(tape, lstmStep{
			xh:    make([]float64, c.in+h),
			i:     make([]float64, h),
			f:     make([]float64, h),
			g:     make([]float64, h),
			o:     make([]float64, h),
			cNew:  make([]float64, h),
			tanhC: make([]float64, h),
			h:     make([]float64, h),
		})
	}
	return tape
}

// growGRUTape is the GRU analogue of growLSTMTape.
func growGRUTape(tape []gruStep, n int, c gruCell) []gruStep {
	for len(tape) < n {
		h := c.hidden
		tape = append(tape, gruStep{
			xh:    make([]float64, c.in+h),
			xrh:   make([]float64, c.in+h),
			z:     make([]float64, h),
			r:     make([]float64, h),
			hCand: make([]float64, h),
			h:     make([]float64, h),
		})
	}
	return tape
}

// lstmWS is the scratch arena of one Seq2Seq model: encoder/decoder step
// tapes, prediction and loss-gradient rows, and the backward-pass
// accumulators. Step tapes grow to the longest sequence seen and are reused
// across samples.
type lstmWS struct {
	encTape []lstmStep
	decTape []lstmStep
	preds   [][]float64 // decoder output rows, one per step
	dPreds  [][]float64 // dLoss/dPred rows

	h0, c0 []float64 // initial encoder state (zeroed per forward)
	dec0   []float64 // first decoder input

	dh, dc []float64 // gradients flowing into a step's h and c outputs
	dcPrev []float64 // double buffer swapped with dc each step
	dz     []float64 // gate pre-activation gradients, 4*hidden
	dy     []float64 // gradient of one prediction row
	dNext  []float64 // gradient of the next step's decoder input
	dhOut  []float64 // dL/dh from the output head
	dxhEnc []float64 // packed [dx; dhPrev] for the encoder cell
	dxhDec []float64 // packed [dx; dhPrev] for the decoder cell

	bws *lstmBatchWS // batched-kernel arena (batch.go), lazily built
}

func newLSTMWS(m *Seq2Seq) *lstmWS {
	h := m.Hidden
	return &lstmWS{
		h0:     make([]float64, h),
		c0:     make([]float64, h),
		dec0:   make([]float64, m.OutDim),
		dh:     make([]float64, h),
		dc:     make([]float64, h),
		dcPrev: make([]float64, h),
		dz:     make([]float64, 4*h),
		dy:     make([]float64, m.OutDim),
		dNext:  make([]float64, m.OutDim),
		dhOut:  make([]float64, h),
		dxhEnc: make([]float64, m.InDim+h),
		dxhDec: make([]float64, m.OutDim+h),
	}
}

// workspace returns the model's arena, building it on first use.
func (m *Seq2Seq) workspace() *lstmWS {
	if m.ws == nil {
		m.ws = newLSTMWS(m)
	}
	return m.ws
}

// gruScratch holds the gruCell backward-pass intermediates.
type gruScratch struct {
	dzPre []float64 // pre-activation grad of the update gate
	drPre []float64 // pre-activation grad of the reset gate
	dcPre []float64 // pre-activation grad of the candidate
	drh   []float64 // grad of r⊙hPrev
	dxrh  []float64 // packed [dx; d(r⊙hPrev)] of the candidate block
}

// gruWS is the scratch arena of one GRUSeq2Seq model.
type gruWS struct {
	encTape []gruStep
	decTape []gruStep
	preds   [][]float64
	dPreds  [][]float64

	h0   []float64
	dec0 []float64

	dh, dhPrev []float64 // double-buffered step gradients
	dy         []float64
	dNext      []float64
	dhOut      []float64
	dxEnc      []float64
	dxDec      []float64
	sc         gruScratch

	bws *gruBatchWS // batched-kernel arena (batch_gru.go), lazily built
}

func newGRUWS(m *GRUSeq2Seq) *gruWS {
	h := m.Hidden
	maxIn := m.InDim
	if m.OutDim > maxIn {
		maxIn = m.OutDim
	}
	return &gruWS{
		h0:     make([]float64, h),
		dec0:   make([]float64, m.OutDim),
		dh:     make([]float64, h),
		dhPrev: make([]float64, h),
		dy:     make([]float64, m.OutDim),
		dNext:  make([]float64, m.OutDim),
		dhOut:  make([]float64, h),
		dxEnc:  make([]float64, m.InDim),
		dxDec:  make([]float64, m.OutDim),
		sc: gruScratch{
			dzPre: make([]float64, h),
			drPre: make([]float64, h),
			dcPre: make([]float64, h),
			drh:   make([]float64, h),
			dxrh:  make([]float64, maxIn+h),
		},
	}
}

// workspace returns the model's arena, building it on first use.
func (m *GRUSeq2Seq) workspace() *gruWS {
	if m.ws == nil {
		m.ws = newGRUWS(m)
	}
	return m.ws
}
