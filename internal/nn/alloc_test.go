package nn

import (
	"math/rand"
	"testing"
)

// The tentpole guarantee of the workspace refactor: once a model has seen a
// sequence shape, running Predict/Grad/BatchGrad on that shape allocates
// nothing. These tests warm the workspace and then assert zero allocations
// with testing.AllocsPerRun.

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm: grow tapes and scratch to this shape
	if n := testing.AllocsPerRun(20, f); n != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, n)
	}
}

func TestSeq2SeqSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewSeq2Seq(4, 2, 16, rng)
	s := randSample(rng, 4, 2, 6, 3)
	grad := NewVector(m.NumParams())
	loss := MSE{}
	batch := []Sample{s, randSample(rng, 4, 2, 6, 3)}

	requireZeroAllocs(t, "Seq2Seq.Predict", func() { m.Predict(s.In, 3) })
	requireZeroAllocs(t, "Seq2Seq.Grad", func() { m.Grad(s.In, s.Out, loss, grad) })
	requireZeroAllocs(t, "Seq2Seq.BatchLoss", func() { m.BatchLoss(batch, loss) })
	requireZeroAllocs(t, "Seq2Seq.BatchGrad", func() { m.BatchGrad(batch, loss, grad) })
}

func TestGRUSeq2SeqSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewGRUSeq2Seq(4, 2, 16, rng)
	s := randSample(rng, 4, 2, 6, 3)
	grad := NewVector(m.NumParams())
	loss := MSE{}
	batch := []Sample{s, randSample(rng, 4, 2, 6, 3)}

	requireZeroAllocs(t, "GRUSeq2Seq.Predict", func() { m.Predict(s.In, 3) })
	requireZeroAllocs(t, "GRUSeq2Seq.Grad", func() { m.Grad(s.In, s.Out, loss, grad) })
	requireZeroAllocs(t, "GRUSeq2SeqBatchLoss", func() { m.BatchLoss(batch, loss) })
	requireZeroAllocs(t, "GRUSeq2Seq.BatchGrad", func() { m.BatchGrad(batch, loss, grad) })
}

// TestAdamStepAllocFree pins the optimizer step: after the first call
// initializes the moment vectors, Step must not allocate.
func TestAdamStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := RandomVector(4096, 0.1, rng)
	grad := RandomVector(4096, 0.1, rng)
	opt := NewAdam(1e-3)
	requireZeroAllocs(t, "Adam.Step", func() { opt.Step(w, grad) })
}

// TestWorkspaceReusableAcrossShapes checks the grow-don't-shrink contract:
// the same model handles longer, then shorter, sequences without corrupting
// results (tapes are re-sliced, never assumed to match the last shape).
func TestWorkspaceReusableAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewSeq2Seq(3, 2, 8, rng)
	fresh := m.Clone() // fresh workspace for cross-checks

	for _, shape := range [][2]int{{2, 1}, {7, 4}, {1, 2}, {5, 3}} {
		s := randSample(rng, 3, 2, shape[0], shape[1])
		got := m.Predict(s.In, shape[1])
		want := fresh.Predict(s.In, shape[1])
		for ti := range want {
			for d := range want[ti] {
				if got[ti][d] != want[ti][d] {
					t.Fatalf("shape %v: pred[%d][%d] = %v, fresh model says %v",
						shape, ti, d, got[ti][d], want[ti][d])
				}
			}
		}
	}
}
