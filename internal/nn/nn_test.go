package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	x := Vector{4, 5, 6}
	c := v.Clone()
	c.Axpy(2, x)
	want := Vector{9, 12, 15}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Axpy = %v", c)
		}
	}
	if v[0] != 1 {
		t.Error("Clone aliased original")
	}
	c.Zero()
	for _, e := range c {
		if e != 0 {
			t.Fatalf("Zero left %v", c)
		}
	}
	if got := v.Dot(x); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestVectorCosineSim(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{0, 1}
	if got := a.CosineSim(b); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal cos = %v", got)
	}
	if got := a.CosineSim(Vector{2, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel cos = %v", got)
	}
	if got := a.CosineSim(Vector{-3, 0}); math.Abs(got+1) > 1e-12 {
		t.Errorf("antiparallel cos = %v", got)
	}
	if got := a.CosineSim(Vector{0, 0}); got != 0 {
		t.Errorf("zero-vector cos = %v", got)
	}
}

func TestVectorCosineSimBounded(t *testing.T) {
	f := func(a0, a1, a2, b0, b1, b2 float64) bool {
		for _, x := range []float64{a0, a1, a2, b0, b1, b2} {
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
		}
		c := Vector{a0, a1, a2}.CosineSim(Vector{b0, b1, b2})
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorClipNorm(t *testing.T) {
	v := Vector{3, 4}
	if before := v.ClipNorm(2.5); before != 5 {
		t.Errorf("returned norm = %v", before)
	}
	if got := v.Norm(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("clipped norm = %v", got)
	}
	w := Vector{0.3, 0.4}
	w.ClipNorm(10)
	if got := w.Norm(); math.Abs(got-0.5) > 1e-12 {
		t.Error("clip should not grow small vectors")
	}
}

func TestMean(t *testing.T) {
	got := Mean([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
}

func TestSigmoid(t *testing.T) {
	if got := sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", got)
	}
	if got := sigmoid(1000); got != 1 {
		t.Errorf("sigmoid(+inf) = %v", got)
	}
	if got := sigmoid(-1000); got != 0 {
		t.Errorf("sigmoid(-inf) = %v", got)
	}
	// Symmetry: σ(−x) = 1 − σ(x).
	for _, x := range []float64{0.1, 1, 5, 37} {
		if d := sigmoid(-x) + sigmoid(x) - 1; math.Abs(d) > 1e-12 {
			t.Errorf("sigmoid symmetry broken at %v: %v", x, d)
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := [][]float64{{1, 2}, {3, 4}}
	target := [][]float64{{1, 1}, {1, 1}}
	grad := [][]float64{{0, 0}, {0, 0}}
	got := MSE{}.LossGrad(pred, target, grad)
	want := (0.0 + 1 + 4 + 9) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MSE = %v, want %v", got, want)
	}
	if math.Abs(grad[1][1]-3) > 1e-12 { // 2*(4-1)/2
		t.Errorf("grad[1][1] = %v, want 3", grad[1][1])
	}
}

func TestWeightedMSEMatchesMSEUnderUnitWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		T := rng.Intn(4) + 1
		pred := make([][]float64, T)
		target := make([][]float64, T)
		g1 := make([][]float64, T)
		g2 := make([][]float64, T)
		for i := 0; i < T; i++ {
			pred[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			target[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			g1[i] = make([]float64, 2)
			g2[i] = make([]float64, 2)
		}
		l1 := MSE{}.LossGrad(pred, target, g1)
		l2 := WeightedMSE{Weight: ConstWeight(1)}.LossGrad(pred, target, g2)
		if math.Abs(l1-l2) > 1e-12 {
			t.Fatalf("losses differ: %v vs %v", l1, l2)
		}
		for i := range g1 {
			for d := range g1[i] {
				if math.Abs(g1[i][d]-g2[i][d]) > 1e-12 {
					t.Fatalf("grads differ at %d,%d", i, d)
				}
			}
		}
	}
}

func TestWeightedMSEScalesWithWeight(t *testing.T) {
	pred := [][]float64{{2, 0}}
	target := [][]float64{{0, 0}}
	grad := [][]float64{{0, 0}}
	l := WeightedMSE{Weight: ConstWeight(3)}.LossGrad(pred, target, grad)
	if math.Abs(l-12) > 1e-12 { // 3 * 4
		t.Errorf("weighted loss = %v, want 12", l)
	}
	if math.Abs(grad[0][0]-12) > 1e-12 { // 2*3*2
		t.Errorf("weighted grad = %v, want 12", grad[0][0])
	}
}

func TestEmptyLoss(t *testing.T) {
	if got := (MSE{}).LossGrad(nil, nil, nil); got != 0 {
		t.Errorf("empty MSE = %v", got)
	}
	if got := (WeightedMSE{Weight: ConstWeight(1)}).LossGrad(nil, nil, nil); got != 0 {
		t.Errorf("empty weighted = %v", got)
	}
}

func randSample(rng *rand.Rand, inDim, outDim, seqIn, seqOut int) Sample {
	s := Sample{}
	for i := 0; i < seqIn; i++ {
		row := make([]float64, inDim)
		for d := range row {
			row[d] = rng.NormFloat64() * 0.5
		}
		s.In = append(s.In, row)
	}
	for i := 0; i < seqOut; i++ {
		row := make([]float64, outDim)
		for d := range row {
			row[d] = rng.NormFloat64() * 0.5
		}
		s.Out = append(s.Out, row)
	}
	return s
}

// TestSeq2SeqGradCheck validates the analytic BPTT gradient against central
// finite differences over every parameter of a small model. This covers the
// LSTM cell backward, the linear head, and the autoregressive decoder-input
// path in one shot.
func TestSeq2SeqGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewSeq2Seq(2, 2, 4, rng)
	s := randSample(rng, 2, 2, 3, 2)
	loss := MSE{}

	grad := NewVector(m.NumParams())
	m.Grad(s.In, s.Out, loss, grad)

	const eps = 1e-5
	w := m.Weights()
	maxRel := 0.0
	for i := 0; i < m.NumParams(); i++ {
		orig := w[i]
		w[i] = orig + eps
		lp := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig - eps
		lm := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig
		num := (lp - lm) / (2 * eps)
		denom := math.Max(math.Abs(num)+math.Abs(grad[i]), 1e-6)
		rel := math.Abs(num-grad[i]) / denom
		if rel > maxRel {
			maxRel = rel
		}
		if rel > 1e-3 && math.Abs(num-grad[i]) > 1e-6 {
			t.Fatalf("param %d: analytic %v vs numeric %v (rel %v)", i, grad[i], num, rel)
		}
	}
	t.Logf("max relative gradient error: %.2e", maxRel)
}

// TestSeq2SeqGradCheckWeighted repeats the gradient check under the
// task-assignment-oriented loss with a non-trivial weight function.
func TestSeq2SeqGradCheckWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewSeq2Seq(2, 2, 3, rng)
	s := randSample(rng, 2, 2, 2, 3)
	loss := WeightedMSE{Weight: func(step int, target []float64) float64 {
		return 0.5 + float64(step) + math.Abs(target[0])
	}}

	grad := NewVector(m.NumParams())
	m.Grad(s.In, s.Out, loss, grad)

	const eps = 1e-5
	w := m.Weights()
	for i := 0; i < m.NumParams(); i += 7 { // spot check every 7th param
		orig := w[i]
		w[i] = orig + eps
		lp := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig - eps
		lm := m.BatchLoss([]Sample{s}, loss)
		w[i] = orig
		num := (lp - lm) / (2 * eps)
		denom := math.Max(math.Abs(num)+math.Abs(grad[i]), 1e-6)
		if rel := math.Abs(num-grad[i]) / denom; rel > 1e-3 && math.Abs(num-grad[i]) > 1e-6 {
			t.Fatalf("param %d: analytic %v vs numeric %v", i, grad[i], num)
		}
	}
}

func TestSeq2SeqPredictShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewSeq2Seq(2, 2, 5, rng)
	s := randSample(rng, 2, 2, 4, 3)
	out := m.Predict(s.In, 3)
	if len(out) != 3 {
		t.Fatalf("predicted %d steps", len(out))
	}
	for _, row := range out {
		if len(row) != 2 {
			t.Fatalf("output dim = %d", len(row))
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite prediction %v", row)
			}
		}
	}
}

func TestSeq2SeqDeterministic(t *testing.T) {
	m1 := NewSeq2Seq(2, 2, 4, rand.New(rand.NewSource(5)))
	m2 := NewSeq2Seq(2, 2, 4, rand.New(rand.NewSource(5)))
	s := randSample(rand.New(rand.NewSource(9)), 2, 2, 3, 2)
	a := m1.Predict(s.In, 2)
	b := m2.Predict(s.In, 2)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("same seed produced different predictions")
			}
		}
	}
}

func TestSeq2SeqCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewSeq2Seq(2, 2, 3, rng)
	c := m.Clone()
	c.Weights()[0] += 100
	if m.Weights()[0] == c.Weights()[0] {
		t.Error("Clone shares weight storage")
	}
}

func TestSeq2SeqSetWeightsPanicsOnMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewSeq2Seq(2, 2, 3, rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.SetWeights(NewVector(3))
}

// TestSeq2SeqLearnsLinearMotion trains a small model on constant-velocity
// trajectories and checks the loss drops substantially — an end-to-end
// sanity check that forward, backward, and the optimizer cooperate.
func TestSeq2SeqLearnsLinearMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewSeq2Seq(2, 2, 8, rng)
	var batch []Sample
	for i := 0; i < 32; i++ {
		x0, y0 := rng.Float64()-0.5, rng.Float64()-0.5
		vx, vy := rng.NormFloat64()*0.05, rng.NormFloat64()*0.05
		var s Sample
		for k := 0; k < 4; k++ {
			s.In = append(s.In, []float64{x0 + vx*float64(k), y0 + vy*float64(k)})
		}
		s.Out = append(s.Out, []float64{x0 + vx*4, y0 + vy*4})
		batch = append(batch, s)
	}
	loss := MSE{}
	grad := NewVector(m.NumParams())
	before := m.BatchLoss(batch, loss)
	opt := NewAdam(0.01)
	for it := 0; it < 220; it++ {
		m.BatchGrad(batch, loss, grad)
		opt.Step(m.Weights(), grad)
	}
	after := m.BatchLoss(batch, loss)
	if after > before*0.3 {
		t.Errorf("training did not converge: before %v, after %v", before, after)
	}
}

func TestSGDStep(t *testing.T) {
	w := Vector{1, 2}
	g := Vector{10, -10}
	SGD{LR: 0.1}.Step(w, g)
	if w[0] != 0 || w[1] != 3 {
		t.Errorf("SGD step = %v", w)
	}
}

func TestSGDClip(t *testing.T) {
	w := Vector{0, 0}
	g := Vector{30, 40} // norm 50
	SGD{LR: 1, ClipNorm: 5}.Step(w, g)
	if math.Abs(w[0]+3) > 1e-12 || math.Abs(w[1]+4) > 1e-12 {
		t.Errorf("clipped SGD step = %v", w)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w_i - target_i)².
	target := Vector{3, -1, 0.5}
	w := Vector{0, 0, 0}
	opt := NewAdam(0.1)
	g := NewVector(3)
	for it := 0; it < 500; it++ {
		for i := range g {
			g[i] = 2 * (w[i] - target[i])
		}
		opt.Step(w, g)
	}
	for i := range w {
		if math.Abs(w[i]-target[i]) > 0.01 {
			t.Errorf("Adam w[%d] = %v, want %v", i, w[i], target[i])
		}
	}
}

func TestAdamReset(t *testing.T) {
	opt := NewAdam(0.1)
	w, g := Vector{1}, Vector{1}
	opt.Step(w, g)
	opt.Reset()
	if opt.m != nil || opt.t != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestBatchGradEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewSeq2Seq(2, 2, 3, rng)
	grad := NewVector(m.NumParams())
	grad[0] = 99
	if got := m.BatchGrad(nil, MSE{}, grad); got != 0 {
		t.Errorf("empty BatchGrad = %v", got)
	}
	if grad[0] != 0 {
		t.Error("BatchGrad should zero the gradient")
	}
	if got := m.BatchLoss(nil, MSE{}); got != 0 {
		t.Errorf("empty BatchLoss = %v", got)
	}
}

func TestRandomVectorRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := RandomVector(1000, 0.3, rng)
	for _, x := range v {
		if x < -0.3 || x > 0.3 {
			t.Fatalf("value %v outside scale", x)
		}
	}
}
