package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestScaledLossMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		T := rng.Intn(3) + 1
		pred := make([][]float64, T)
		target := make([][]float64, T)
		g1 := make([][]float64, T)
		g2 := make([][]float64, T)
		for i := 0; i < T; i++ {
			pred[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			target[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			g1[i] = make([]float64, 2)
			g2[i] = make([]float64, 2)
		}
		const factor = 2500.0
		base := MSE{}.LossGrad(pred, target, g1)
		scaled := Scaled{Inner: MSE{}, Factor: factor}.LossGrad(pred, target, g2)
		if math.Abs(scaled-base*factor) > 1e-9*math.Abs(scaled) {
			t.Fatalf("scaled loss %v != %v * %v", scaled, base, factor)
		}
		for i := range g1 {
			for d := range g1[i] {
				if math.Abs(g2[i][d]-g1[i][d]*factor) > 1e-9*math.Abs(g2[i][d])+1e-12 {
					t.Fatalf("scaled grad mismatch at %d,%d", i, d)
				}
			}
		}
	}
}

func TestScaledLossSameOptimum(t *testing.T) {
	// Scaling the loss must not move the optimum: train two identical
	// models, one on MSE and one on Scaled MSE with lr adjusted by the
	// factor; they should take identical trajectories.
	m1 := NewSeq2Seq(2, 2, 4, rand.New(rand.NewSource(2)))
	m2 := NewSeq2Seq(2, 2, 4, rand.New(rand.NewSource(2)))
	s := randSample(rand.New(rand.NewSource(3)), 2, 2, 3, 1)
	g1 := NewVector(m1.NumParams())
	g2 := NewVector(m2.NumParams())
	const factor = 100.0
	for it := 0; it < 5; it++ {
		m1.BatchGrad([]Sample{s}, MSE{}, g1)
		SGD{LR: 0.1}.Step(m1.Weights(), g1)
		m2.BatchGrad([]Sample{s}, Scaled{Inner: MSE{}, Factor: factor}, g2)
		SGD{LR: 0.1 / factor}.Step(m2.Weights(), g2)
	}
	w1, w2 := m1.Weights(), m2.Weights()
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-9 {
			t.Fatalf("weights diverged at %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}

func TestScaledWeightedComposition(t *testing.T) {
	pred := [][]float64{{1, 0}}
	target := [][]float64{{0, 0}}
	grad := [][]float64{{0, 0}}
	l := Scaled{Inner: WeightedMSE{Weight: ConstWeight(2)}, Factor: 10}.LossGrad(pred, target, grad)
	if math.Abs(l-20) > 1e-12 { // 2 * 1 * 10
		t.Errorf("composed loss = %v, want 20", l)
	}
	if math.Abs(grad[0][0]-40) > 1e-12 { // 2*2*1*10
		t.Errorf("composed grad = %v, want 40", grad[0][0])
	}
}
