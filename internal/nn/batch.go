package nn

import "math"

// Batch-of-samples kernels for the Seq2Seq LSTM. The streamed BatchGrad path
// runs every sample through the matrix–vector kernels independently,
// re-reading the full weight matrices once per sample per step. The batched
// path processes all samples of a uniform-shape batch step-synchronously, so
// each weight row is loaded once and swept across the whole batch — the
// GEMM-shaped blocking that training, daily adaptation, and meta-training
// batches want.
//
// The contract is bit-identical output. Floating-point addition is not
// associative, so the batched kernels preserve the exact reduction order of
// the per-sample path for every memory cell they write:
//
//   - Forward: each gate pre-activation z is an independent reduction
//     (bias, then the packed [x; hPrev] sweep in ascending j). Batching
//     across samples hoists the weight-row load but leaves each element's
//     reduction untouched, so the forward is trivially bit-identical.
//   - Backward, propagation: dxh[j] accumulates row contributions in
//     ascending row order within one (sample, step) — the same order the
//     fused per-sample kernel uses. Samples are independent, so running the
//     row sweep batched (row outer, sample inner) changes nothing per sample.
//   - Backward, weight gradients: the streamed path accumulates into each
//     gradient element in (sample ascending; step descending) order. The
//     batched path defers gradient accumulation to a second pass ordered
//     (row; sample ascending; step descending), which visits every gradient
//     element with exactly the same contribution sequence — while keeping
//     each gradient row register/L1-resident across the whole batch instead
//     of re-streaming the full gradient block per sample per step.
//
// TestBatchGradMatchesStreamed / TestBatchForwardMatchesPredict property-test
// the equivalence against the per-sample path (itself pinned to the naive
// reference kernels in reference_test.go).

// batchUniform reports whether every sample shares the first sample's
// sequence lengths — the shape the step-synchronous kernels require. The
// callers fall back to the streamed path otherwise.
func batchUniform(batch []Sample) bool {
	if len(batch) == 0 {
		return false
	}
	tin, tout := len(batch[0].In), len(batch[0].Out)
	if tin == 0 || tout == 0 {
		return false
	}
	for i := 1; i < len(batch); i++ {
		if len(batch[i].In) != tin || len(batch[i].Out) != tout {
			return false
		}
	}
	return true
}

// growBatchRows extends a [sample][step][dim] tape to S samples of n rows.
func growBatchRows(rows [][][]float64, S, n, width int) [][][]float64 {
	for len(rows) < S {
		rows = append(rows, nil)
	}
	for s := 0; s < S; s++ {
		rows[s] = growRows(rows[s], n, width)
	}
	return rows
}

// growBatchVecs extends a [sample][dim] buffer set to S vectors of width n.
func growBatchVecs(vecs [][]float64, S, n int) [][]float64 {
	for len(vecs) < S {
		vecs = append(vecs, nil)
	}
	for s := 0; s < S; s++ {
		if len(vecs[s]) < n {
			vecs[s] = make([]float64, n)
		}
	}
	return vecs
}

// lstmBatchWS is the batched-kernel arena of one Seq2Seq model: per-sample
// step tapes plus the per-sample backward state, grown once to the largest
// (batch, shape) seen and reused — the batched path is steady-state
// allocation-free just like the per-sample one.
type lstmBatchWS struct {
	encTapes [][]lstmStep // [sample][step]
	decTapes [][]lstmStep
	preds    [][][]float64 // [sample][step][OutDim]
	dPreds   [][][]float64
	h0s, c0s [][]float64
	dec0s    [][]float64

	dzEnc  [][][]float64 // [sample][step][4*hidden] gate pre-activation grads
	dzDec  [][][]float64
	dyTape [][][]float64 // [sample][step][OutDim] output-head row grads

	dh, dc, dcPrev [][]float64
	dNext, dhOut   [][]float64
	dxh            [][]float64 // packed [dx; dhPrev], max(in,out)+hidden

	hs, cs []([]float64) // current forward state per sample (tape aliases)
	prevs  [][]float64   // current decoder input per sample
}

func (bw *lstmBatchWS) grow(m *Seq2Seq, S, tin, tout int) {
	h := m.Hidden
	for len(bw.encTapes) < S {
		bw.encTapes = append(bw.encTapes, nil)
	}
	for len(bw.decTapes) < S {
		bw.decTapes = append(bw.decTapes, nil)
	}
	for s := 0; s < S; s++ {
		bw.encTapes[s] = growLSTMTape(bw.encTapes[s], tin, m.enc)
		bw.decTapes[s] = growLSTMTape(bw.decTapes[s], tout, m.dec)
	}
	bw.preds = growBatchRows(bw.preds, S, tout, m.OutDim)
	bw.dPreds = growBatchRows(bw.dPreds, S, tout, m.OutDim)
	bw.dzEnc = growBatchRows(bw.dzEnc, S, tin, 4*h)
	bw.dzDec = growBatchRows(bw.dzDec, S, tout, 4*h)
	bw.dyTape = growBatchRows(bw.dyTape, S, tout, m.OutDim)
	bw.h0s = growBatchVecs(bw.h0s, S, h)
	bw.c0s = growBatchVecs(bw.c0s, S, h)
	bw.dec0s = growBatchVecs(bw.dec0s, S, m.OutDim)
	bw.dh = growBatchVecs(bw.dh, S, h)
	bw.dc = growBatchVecs(bw.dc, S, h)
	bw.dcPrev = growBatchVecs(bw.dcPrev, S, h)
	bw.dNext = growBatchVecs(bw.dNext, S, m.OutDim)
	bw.dhOut = growBatchVecs(bw.dhOut, S, h)
	maxIn := m.InDim
	if m.OutDim > maxIn {
		maxIn = m.OutDim
	}
	bw.dxh = growBatchVecs(bw.dxh, S, maxIn+h)
	bw.hs = growBatchVecs(bw.hs, S, 0)
	bw.cs = growBatchVecs(bw.cs, S, 0)
	bw.prevs = growBatchVecs(bw.prevs, S, 0)
}

// batchWorkspace returns the model's batched arena, building it on first use.
func (m *Seq2Seq) batchWorkspace() *lstmBatchWS {
	ws := m.workspace()
	if ws.bws == nil {
		ws.bws = &lstmBatchWS{}
	}
	return ws.bws
}

// batchGates computes one step's gate activations for every sample: row
// outer, sample inner, so each weight row is loaded once per step instead of
// once per (sample, step). Samples are processed four at a time with four
// independent accumulators — each z still reduces in the per-sample order
// (bias first, then the packed [x; hPrev] sweep in ascending j), but the
// four serial FP-add chains overlap instead of waiting on one another. This
// cross-sample ILP, not cache blocking, is where batching beats streaming at
// production model sizes (the whole weight matrix already fits in L1).
func batchGates(c lstmCell, w Vector, tapes [][]lstmStep, t, S int) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	for k := 0; k < h; k++ {
		// Gate rows for this k share the same xh inputs. Two rows × two
		// samples = four independent reductions per pass — enough ILP to
		// hide the FP-add latency without spilling accumulators. Each z
		// still reduces in the per-sample order (bias, then ascending j).
		ri := w[k*cols : k*cols+cols]
		rf := w[(h+k)*cols : (h+k)*cols+cols]
		rg := w[(2*h+k)*cols : (2*h+k)*cols+cols]
		ro := w[(3*h+k)*cols : (3*h+k)*cols+cols]
		s := 0
		for ; s+1 < S; s += 2 {
			st0, st1 := &tapes[s][t], &tapes[s+1][t]
			xh0, xh1 := st0.xh[:nin], st1.xh[:nin]
			zi0, zi1, zf0, zf1 := rowPair2(ri, rf, xh0, xh1, nin)
			zg0, zg1, zo0, zo1 := rowPair2(rg, ro, xh0, xh1, nin)
			st0.i[k] = sigmoid(zi0)
			st1.i[k] = sigmoid(zi1)
			st0.f[k] = sigmoid(zf0)
			st1.f[k] = sigmoid(zf1)
			st0.g[k] = math.Tanh(zg0)
			st1.g[k] = math.Tanh(zg1)
			st0.o[k] = sigmoid(zo0)
			st1.o[k] = sigmoid(zo1)
		}
		for ; s < S; s++ {
			st := &tapes[s][t]
			xh := st.xh[:nin]
			zi, zf := rowPair1(ri, rf, xh, nin)
			zg, zo := rowPair1(rg, ro, xh, nin)
			st.i[k] = sigmoid(zi)
			st.f[k] = sigmoid(zf)
			st.g[k] = math.Tanh(zg)
			st.o[k] = sigmoid(zo)
		}
	}
}

// rowPair2 reduces two weight rows (bias at index nin) against two inputs:
// four independent accumulator chains, each in bias-then-ascending-j order.
func rowPair2(ra, rb, x0, x1 []float64, nin int) (a0, a1, b0, b1 float64) {
	a0, a1 = ra[nin], ra[nin]
	b0, b1 = rb[nin], rb[nin]
	rav, rbv := ra[:nin], rb[:nin]
	for j, av := range rav {
		v0, v1 := x0[j], x1[j]
		bv := rbv[j]
		a0 += av * v0
		a1 += av * v1
		b0 += bv * v0
		b1 += bv * v1
	}
	return
}

// rowPair1 is rowPair2 for a single input.
func rowPair1(ra, rb, x []float64, nin int) (a, b float64) {
	a, b = ra[nin], rb[nin]
	rav, rbv := ra[:nin], rb[:nin]
	for j, av := range rav {
		v := x[j]
		a += av * v
		b += rbv[j] * v
	}
	return
}

// batchForward runs the encoder–decoder over a uniform batch
// step-synchronously, filling the per-sample tapes and prediction rows.
// Outputs are bit-identical to running forward on each sample alone.
func (m *Seq2Seq) batchForward(batch []Sample, tin, tout int) {
	bw := m.batchWorkspace()
	S := len(batch)
	bw.grow(m, S, tin, tout)
	h := m.Hidden
	encW, decW, outW := m.encW(), m.decW(), m.outW()

	// Encoder, step-synchronous.
	for s := 0; s < S; s++ {
		zeroFloats(bw.h0s[s])
		zeroFloats(bw.c0s[s])
		bw.hs[s] = bw.h0s[s]
		bw.cs[s] = bw.c0s[s]
	}
	encNin := m.enc.in + h
	for t := 0; t < tin; t++ {
		for s := 0; s < S; s++ {
			st := &bw.encTapes[s][t]
			xh := st.xh[:encNin]
			copy(xh, batch[s].In[t])
			copy(xh[m.enc.in:], bw.hs[s])
			st.cPrev = bw.cs[s]
		}
		batchGates(m.enc, encW, bw.encTapes, t, S)
		for s := 0; s < S; s++ {
			st := &bw.encTapes[s][t]
			cPrev := st.cPrev
			for k := 0; k < h; k++ {
				st.cNew[k] = st.f[k]*cPrev[k] + st.i[k]*st.g[k]
				st.tanhC[k] = math.Tanh(st.cNew[k])
				st.h[k] = st.o[k] * st.tanhC[k]
			}
			bw.hs[s] = st.h
			bw.cs[s] = st.cNew
		}
	}

	// Decoder: autoregressive per sample, still step-synchronous across the
	// batch. The first input is the last observed point projected to OutDim.
	for s := 0; s < S; s++ {
		prev := bw.dec0s[s]
		zeroFloats(prev)
		copy(prev, batch[s].In[tin-1])
		bw.prevs[s] = prev
	}
	decNin := m.dec.in + h
	outCols := m.out.in + 1
	for t := 0; t < tout; t++ {
		for s := 0; s < S; s++ {
			st := &bw.decTapes[s][t]
			xh := st.xh[:decNin]
			copy(xh, bw.prevs[s])
			copy(xh[m.dec.in:], bw.hs[s])
			st.cPrev = bw.cs[s]
		}
		batchGates(m.dec, decW, bw.decTapes, t, S)
		for s := 0; s < S; s++ {
			st := &bw.decTapes[s][t]
			cPrev := st.cPrev
			for k := 0; k < h; k++ {
				st.cNew[k] = st.f[k]*cPrev[k] + st.i[k]*st.g[k]
				st.tanhC[k] = math.Tanh(st.cNew[k])
				st.h[k] = st.o[k] * st.tanhC[k]
			}
			bw.hs[s] = st.h
			bw.cs[s] = st.cNew
		}
		// Output head, row outer so each head row is loaded once per step
		// (samples four at a time, same cross-sample ILP as batchGates),
		// then the residual add against the previous position.
		for r := 0; r < m.out.out; r++ {
			base := r * outCols
			row := outW[base : base+outCols]
			bias := row[m.out.in]
			rowv := row[:m.out.in]
			s := 0
			for ; s+3 < S; s += 4 {
				x0 := bw.decTapes[s][t].h[:m.out.in]
				x1 := bw.decTapes[s+1][t].h[:m.out.in]
				x2 := bw.decTapes[s+2][t].h[:m.out.in]
				x3 := bw.decTapes[s+3][t].h[:m.out.in]
				z0, z1, z2, z3 := bias, bias, bias, bias
				for j, rv := range rowv {
					z0 += rv * x0[j]
					z1 += rv * x1[j]
					z2 += rv * x2[j]
					z3 += rv * x3[j]
				}
				bw.preds[s][t][r] = z0
				bw.preds[s+1][t][r] = z1
				bw.preds[s+2][t][r] = z2
				bw.preds[s+3][t][r] = z3
			}
			for ; s < S; s++ {
				x := bw.decTapes[s][t].h[:m.out.in]
				z := bias
				for j, rv := range rowv {
					z += rv * x[j]
				}
				bw.preds[s][t][r] = z
			}
		}
		for s := 0; s < S; s++ {
			y := bw.preds[s][t]
			prev := bw.prevs[s]
			for d := range y {
				y[d] += prev[d]
			}
			bw.prevs[s] = y
		}
	}
}

// batchPropagate runs the backward propagation sweep for one step's cell
// over all samples: per-sample gate pre-activation gradients into the dz
// tape, then the weight-row sweep (row outer, sample inner) accumulating the
// packed [dx; dhPrev] — exactly the ascending-row order of the per-sample
// kernel, without touching the weight gradients (those are deferred).
func batchPropagate(c lstmCell, w Vector, tapes [][]lstmStep, dzTape [][][]float64, t, S int, bw *lstmBatchWS) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	for s := 0; s < S; s++ {
		st := &tapes[s][t]
		dh, dc := bw.dh[s], bw.dc[s]
		dcPrev := bw.dcPrev[s]
		dz := dzTape[s][t]
		for k := 0; k < h; k++ {
			do := dh[k] * st.tanhC[k]
			dcT := dh[k]*st.o[k]*(1-st.tanhC[k]*st.tanhC[k]) + dc[k]
			di := dcT * st.g[k]
			df := dcT * st.cPrev[k]
			dg := dcT * st.i[k]
			dcPrev[k] = dcT * st.f[k]
			dz[0*h+k] = di * st.i[k] * (1 - st.i[k])
			dz[1*h+k] = df * st.f[k] * (1 - st.f[k])
			dz[2*h+k] = dg * (1 - st.g[k]*st.g[k])
			dz[3*h+k] = do * st.o[k] * (1 - st.o[k])
		}
		zeroFloats(bw.dxh[s][:nin])
	}
	// Row pairs × sample pairs: each dxh element takes its row-(r) and
	// row-(r+1) contributions as two sequential adds — the ascending-row
	// per-element order of the per-sample kernel — while one pass serves
	// four (row, sample) combinations. The d == 0 skip stays per (row,
	// sample) — the streamed kernel skips zero rows, and += 0·w is not
	// always a bit-level no-op. 4h is even, so there is no remainder row.
	for r := 0; r < 4*h; r += 2 {
		rowA := w[r*cols : r*cols+nin]
		rowB := w[(r+1)*cols : (r+1)*cols+nin]
		s := 0
		for ; s+1 < S; s += 2 {
			dA0, dB0 := dzTape[s][t][r], dzTape[s][t][r+1]
			dA1, dB1 := dzTape[s+1][t][r], dzTape[s+1][t][r+1]
			if dA0 != 0 && dB0 != 0 && dA1 != 0 && dB1 != 0 {
				dxh0 := bw.dxh[s][:nin]
				dxh1 := bw.dxh[s+1][:nin]
				for j, ra := range rowA {
					rb := rowB[j]
					v0 := dxh0[j]
					v0 += dA0 * ra
					v0 += dB0 * rb
					dxh0[j] = v0
					v1 := dxh1[j]
					v1 += dA1 * ra
					v1 += dB1 * rb
					dxh1[j] = v1
				}
			} else {
				rowPairInto(rowA, rowB, dA0, dB0, bw.dxh[s][:nin])
				rowPairInto(rowA, rowB, dA1, dB1, bw.dxh[s+1][:nin])
			}
		}
		for ; s < S; s++ {
			rowPairInto(rowA, rowB, dzTape[s][t][r], dzTape[s][t][r+1], bw.dxh[s][:nin])
		}
	}
}

// rowPairInto accumulates one sample's contributions from two consecutive
// weight rows into dst, row A's before row B's per element, skipping a row
// whose gradient is exactly zero just as the streamed kernel does.
func rowPairInto(rowA, rowB []float64, dA, dB float64, dst []float64) {
	switch {
	case dA != 0 && dB != 0:
		for j, ra := range rowA {
			v := dst[j]
			v += dA * ra
			v += dB * rowB[j]
			dst[j] = v
		}
	case dA != 0:
		for j, ra := range rowA {
			dst[j] += dA * ra
		}
	case dB != 0:
		for j, rb := range rowB {
			dst[j] += dB * rb
		}
	}
}

// batchAccumulate is the deferred weight-gradient pass for one cell: each
// gradient row is swept once over the whole (sample, step) tape in (sample
// ascending; step descending) order — the exact per-element contribution
// sequence of the streamed path, with the gradient row kept hot instead of
// re-streamed per sample.
func batchAccumulate(c lstmCell, grad Vector, tapes [][]lstmStep, dzTape [][][]float64, T, S int) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	// Gradient rows in pairs: one sweep of the (sample, step) tape feeds two
	// rows, halving xh traffic. Each row's elements still see their
	// contributions in exactly (sample ascending; step descending) order, and
	// the streamed path's d == 0 row skip is preserved per row. 4h is even,
	// so there is no remainder row.
	for r := 0; r < 4*h; r += 2 {
		grow0 := grad[r*cols : r*cols+cols]
		grow1 := grad[(r+1)*cols : (r+1)*cols+cols]
		g0 := grow0[:nin]
		g1 := grow1[:nin]
		for s := 0; s < S; s++ {
			tape := tapes[s]
			dzs := dzTape[s]
			for t := T - 1; t >= 0; t-- {
				d0, d1 := dzs[t][r], dzs[t][r+1]
				if d0 == 0 && d1 == 0 {
					continue
				}
				xh := tape[t].xh[:nin]
				if d0 != 0 && d1 != 0 {
					for j, xv := range xh {
						g0[j] += d0 * xv
						g1[j] += d1 * xv
					}
					grow0[nin] += d0
					grow1[nin] += d1
				} else if d0 != 0 {
					for j, xv := range xh {
						g0[j] += d0 * xv
					}
					grow0[nin] += d0
				} else {
					for j, xv := range xh {
						g1[j] += d1 * xv
					}
					grow1[nin] += d1
				}
			}
		}
	}
}

// batchGrad is the batched BatchGrad engine: forward the whole batch
// step-synchronously, backpropagate with deferred weight-gradient
// accumulation, and add the summed gradient into grad. It returns the
// summed (not yet averaged) loss. Outputs are bit-identical to streaming
// the batch through Grad sample by sample.
func (m *Seq2Seq) batchGrad(batch []Sample, loss Loss, grad Vector) float64 {
	tin, tout := len(batch[0].In), len(batch[0].Out)
	m.batchForward(batch, tin, tout)
	bw := m.ws.bws
	S := len(batch)
	h := m.Hidden

	// Loss rows, in sample order (the streamed path computes them per
	// sample; values are independent, the sum order matches).
	var lossSum float64
	for s := 0; s < S; s++ {
		lossSum += loss.LossGrad(bw.preds[s][:tout], batch[s].Out, bw.dPreds[s][:tout])
	}

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]
	encW, decW, outW := m.encW(), m.decW(), m.outW()
	outCols := m.out.in + 1

	for s := 0; s < S; s++ {
		zeroFloats(bw.dh[s])
		zeroFloats(bw.dc[s])
	}
	// Decoder steps, newest first. The output-head gradient rows (dy) are
	// taped for the deferred outG pass; only the propagation (dhOut, dxh)
	// runs here.
	for t := tout - 1; t >= 0; t-- {
		for s := 0; s < S; s++ {
			dy := bw.dyTape[s][t]
			copy(dy, bw.dPreds[s][t])
			if t < tout-1 {
				dNext := bw.dNext[s]
				for i := range dy {
					dy[i] += dNext[i]
				}
			}
			dhOut := bw.dhOut[s]
			zeroFloats(dhOut)
			for r := 0; r < m.out.out; r++ {
				d := dy[r]
				if d == 0 {
					continue
				}
				row := outW[r*outCols : r*outCols+m.out.in]
				for j, rv := range row {
					dhOut[j] += d * rv
				}
			}
			dh := bw.dh[s]
			for i := range dh {
				dh[i] += dhOut[i]
			}
		}
		batchPropagate(m.dec, decW, bw.decTapes, bw.dzDec, t, S, bw)
		for s := 0; s < S; s++ {
			dxh := bw.dxh[s]
			dy := bw.dyTape[s][t]
			dNext := bw.dNext[s]
			// The previous prediction feeds step t twice: as the decoder
			// input and through the residual head.
			for i := range dNext {
				dNext[i] = dxh[i] + dy[i]
			}
			copy(bw.dh[s], dxh[m.dec.in:m.dec.in+h])
			bw.dc[s], bw.dcPrev[s] = bw.dcPrev[s], bw.dc[s]
		}
	}
	// Encoder BPTT.
	for t := tin - 1; t >= 0; t-- {
		batchPropagate(m.enc, encW, bw.encTapes, bw.dzEnc, t, S, bw)
		for s := 0; s < S; s++ {
			dxh := bw.dxh[s]
			copy(bw.dh[s], dxh[m.enc.in:m.enc.in+h])
			bw.dc[s], bw.dcPrev[s] = bw.dcPrev[s], bw.dc[s]
		}
	}

	// Deferred weight-gradient accumulation: decoder and encoder cells via
	// the taped dz, the output head via the taped dy rows against the taped
	// decoder hidden states.
	batchAccumulate(m.dec, decG, bw.decTapes, bw.dzDec, tout, S)
	batchAccumulate(m.enc, encG, bw.encTapes, bw.dzEnc, tin, S)
	for r := 0; r < m.out.out; r++ {
		base := r * outCols
		grow := outG[base : base+outCols]
		growv := grow[:m.out.in]
		for s := 0; s < S; s++ {
			for t := tout - 1; t >= 0; t-- {
				d := bw.dyTape[s][t][r]
				if d == 0 {
					continue
				}
				x := bw.decTapes[s][t].h[:m.out.in]
				for j, rv := range x {
					growv[j] += d * rv
				}
				grow[m.out.in] += d
			}
		}
	}
	return lossSum
}

// batchLoss is the batched BatchLoss engine: one step-synchronous forward,
// then the per-sample loss in sample order. Returns the summed loss.
func (m *Seq2Seq) batchLoss(batch []Sample, loss Loss) float64 {
	tin, tout := len(batch[0].In), len(batch[0].Out)
	m.batchForward(batch, tin, tout)
	bw := m.ws.bws
	var sum float64
	for s := range batch {
		sum += loss.LossGrad(bw.preds[s][:tout], batch[s].Out, bw.dPreds[s][:tout])
	}
	return sum
}
