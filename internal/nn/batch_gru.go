package nn

import "math"

// Batched kernels for the GRU encoder–decoder — the same step-synchronous /
// deferred-accumulation design as the LSTM batch engine (batch.go). The GRU
// backward touches each weight row exactly once per (sample, step) — the
// update and reset blocks against the packed [x; hPrev], the candidate block
// against [x; r⊙hPrev] — so taping the three blocks' pre-activation
// gradients and deferring the weight-gradient accumulation to a (row; sample
// ascending; step descending) pass reproduces the streamed path's
// per-element contribution order bit for bit.

// gruBatchWS is the batched-kernel arena of one GRUSeq2Seq model.
type gruBatchWS struct {
	encTapes [][]gruStep
	decTapes [][]gruStep
	preds    [][][]float64
	dPreds   [][][]float64
	h0s      [][]float64
	dec0s    [][]float64

	// dPre tapes: [sample][step][3*hidden] pre-activation gradients, laid
	// out [update; reset; candidate] to mirror the weight blocks.
	dPreEnc [][][]float64
	dPreDec [][][]float64
	dyTape  [][][]float64

	dh, dhPrev   [][]float64
	dNext, dhOut [][]float64
	dxrh         [][]float64 // packed [dx; d(r⊙hPrev)] per sample
	dx           [][]float64 // max(in,out) per sample

	hs    [][]float64
	prevs [][]float64
}

func (bw *gruBatchWS) grow(m *GRUSeq2Seq, S, tin, tout int) {
	h := m.Hidden
	for len(bw.encTapes) < S {
		bw.encTapes = append(bw.encTapes, nil)
	}
	for len(bw.decTapes) < S {
		bw.decTapes = append(bw.decTapes, nil)
	}
	for s := 0; s < S; s++ {
		bw.encTapes[s] = growGRUTape(bw.encTapes[s], tin, m.enc)
		bw.decTapes[s] = growGRUTape(bw.decTapes[s], tout, m.dec)
	}
	bw.preds = growBatchRows(bw.preds, S, tout, m.OutDim)
	bw.dPreds = growBatchRows(bw.dPreds, S, tout, m.OutDim)
	bw.dPreEnc = growBatchRows(bw.dPreEnc, S, tin, 3*h)
	bw.dPreDec = growBatchRows(bw.dPreDec, S, tout, 3*h)
	bw.dyTape = growBatchRows(bw.dyTape, S, tout, m.OutDim)
	bw.h0s = growBatchVecs(bw.h0s, S, h)
	bw.dec0s = growBatchVecs(bw.dec0s, S, m.OutDim)
	bw.dh = growBatchVecs(bw.dh, S, h)
	bw.dhPrev = growBatchVecs(bw.dhPrev, S, h)
	bw.dNext = growBatchVecs(bw.dNext, S, m.OutDim)
	bw.dhOut = growBatchVecs(bw.dhOut, S, h)
	maxIn := m.InDim
	if m.OutDim > maxIn {
		maxIn = m.OutDim
	}
	bw.dxrh = growBatchVecs(bw.dxrh, S, maxIn+h)
	bw.dx = growBatchVecs(bw.dx, S, maxIn)
	bw.hs = growBatchVecs(bw.hs, S, 0)
	bw.prevs = growBatchVecs(bw.prevs, S, 0)
}

// batchWorkspace returns the model's batched arena, building it on first use.
func (m *GRUSeq2Seq) batchWorkspace() *gruBatchWS {
	ws := m.workspace()
	if ws.bws == nil {
		ws.bws = &gruBatchWS{}
	}
	return ws.bws
}

// gruBatchStep runs one GRU step for every sample with each weight row
// loaded once: the update and reset rows over the packed [x; hPrev], then
// the per-sample [x; r⊙hPrev] build, then the candidate rows. Each
// pre-activation keeps the per-sample reduction order of gruRowDot; samples
// are blocked so the independent per-sample FP-add chains overlap (the
// cross-sample ILP that makes batching pay — see batchGates).
func gruBatchStep(c gruCell, w Vector, tapes [][]gruStep, t, S int, bw *gruBatchWS) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	for k := 0; k < h; k++ {
		baseZ := k * cols
		rowZ := w[baseZ : baseZ+cols]
		biasZ := rowZ[nin]
		rowZv := rowZ[:nin]
		baseR := (h + k) * cols
		rowR := w[baseR : baseR+cols]
		biasR := rowR[nin]
		rowRv := rowR[:nin]
		s := 0
		// Sample pairs × the (z, r) row pair: four independent reductions
		// per xh load.
		for ; s+1 < S; s += 2 {
			st0, st1 := &tapes[s][t], &tapes[s+1][t]
			xh0, xh1 := st0.xh[:nin], st1.xh[:nin]
			z0, z1 := biasZ, biasZ
			r0, r1 := biasR, biasR
			for j := 0; j < nin; j++ {
				x0, x1 := xh0[j], xh1[j]
				zv, rv := rowZv[j], rowRv[j]
				z0 += zv * x0
				z1 += zv * x1
				r0 += rv * x0
				r1 += rv * x1
			}
			st0.z[k] = sigmoid(z0)
			st1.z[k] = sigmoid(z1)
			st0.r[k] = sigmoid(r0)
			st1.r[k] = sigmoid(r1)
		}
		for ; s < S; s++ {
			st := &tapes[s][t]
			xh := st.xh[:nin]
			z := biasZ
			for j, rv := range rowZv {
				z += rv * xh[j]
			}
			st.z[k] = sigmoid(z)
			r := biasR
			for j, rv := range rowRv {
				r += rv * xh[j]
			}
			st.r[k] = sigmoid(r)
		}
	}
	for s := 0; s < S; s++ {
		st := &tapes[s][t]
		xh := st.xh[:nin]
		xrh := st.xrh[:nin]
		copy(xrh, xh[:c.in])
		hPrev := xh[c.in:]
		for k := 0; k < h; k++ {
			xrh[c.in+k] = st.r[k] * hPrev[k]
		}
	}
	for k := 0; k < h; k++ {
		base := (2*h + k) * cols
		row := w[base : base+cols]
		bias := row[nin]
		rowv := row[:nin]
		s := 0
		for ; s+3 < S; s += 4 {
			xr0 := tapes[s][t].xrh[:nin]
			xr1 := tapes[s+1][t].xrh[:nin]
			xr2 := tapes[s+2][t].xrh[:nin]
			xr3 := tapes[s+3][t].xrh[:nin]
			z0, z1, z2, z3 := bias, bias, bias, bias
			for j, rv := range rowv {
				z0 += rv * xr0[j]
				z1 += rv * xr1[j]
				z2 += rv * xr2[j]
				z3 += rv * xr3[j]
			}
			tapes[s][t].hCand[k] = math.Tanh(z0)
			tapes[s+1][t].hCand[k] = math.Tanh(z1)
			tapes[s+2][t].hCand[k] = math.Tanh(z2)
			tapes[s+3][t].hCand[k] = math.Tanh(z3)
		}
		for ; s < S; s++ {
			st := &tapes[s][t]
			xrh := st.xrh[:nin]
			z := bias
			for j, rv := range rowv {
				z += rv * xrh[j]
			}
			st.hCand[k] = math.Tanh(z)
		}
	}
	for s := 0; s < S; s++ {
		st := &tapes[s][t]
		hPrev := st.xh[c.in:nin]
		for k := 0; k < h; k++ {
			st.h[k] = (1-st.z[k])*hPrev[k] + st.z[k]*st.hCand[k]
		}
		bw.hs[s] = st.h
	}
}

// batchForward runs the GRU encoder–decoder over a uniform batch
// step-synchronously, bit-identical to per-sample forward.
func (m *GRUSeq2Seq) batchForward(batch []Sample, tin, tout int) {
	bw := m.batchWorkspace()
	S := len(batch)
	bw.grow(m, S, tin, tout)
	encW, decW, outW := m.encW(), m.decW(), m.outW()

	for s := 0; s < S; s++ {
		zeroFloats(bw.h0s[s])
		bw.hs[s] = bw.h0s[s]
	}
	encNin := m.enc.in + m.Hidden
	for t := 0; t < tin; t++ {
		for s := 0; s < S; s++ {
			st := &bw.encTapes[s][t]
			xh := st.xh[:encNin]
			copy(xh, batch[s].In[t])
			copy(xh[m.enc.in:], bw.hs[s])
		}
		gruBatchStep(m.enc, encW, bw.encTapes, t, S, bw)
	}

	for s := 0; s < S; s++ {
		prev := bw.dec0s[s]
		zeroFloats(prev)
		copy(prev, batch[s].In[tin-1])
		bw.prevs[s] = prev
	}
	decNin := m.dec.in + m.Hidden
	outCols := m.out.in + 1
	for t := 0; t < tout; t++ {
		for s := 0; s < S; s++ {
			st := &bw.decTapes[s][t]
			xh := st.xh[:decNin]
			copy(xh, bw.prevs[s])
			copy(xh[m.dec.in:], bw.hs[s])
		}
		gruBatchStep(m.dec, decW, bw.decTapes, t, S, bw)
		for r := 0; r < m.out.out; r++ {
			base := r * outCols
			row := outW[base : base+outCols]
			bias := row[m.out.in]
			rowv := row[:m.out.in]
			s := 0
			for ; s+3 < S; s += 4 {
				x0 := bw.decTapes[s][t].h[:m.out.in]
				x1 := bw.decTapes[s+1][t].h[:m.out.in]
				x2 := bw.decTapes[s+2][t].h[:m.out.in]
				x3 := bw.decTapes[s+3][t].h[:m.out.in]
				z0, z1, z2, z3 := bias, bias, bias, bias
				for j, rv := range rowv {
					z0 += rv * x0[j]
					z1 += rv * x1[j]
					z2 += rv * x2[j]
					z3 += rv * x3[j]
				}
				bw.preds[s][t][r] = z0
				bw.preds[s+1][t][r] = z1
				bw.preds[s+2][t][r] = z2
				bw.preds[s+3][t][r] = z3
			}
			for ; s < S; s++ {
				x := bw.decTapes[s][t].h[:m.out.in]
				z := bias
				for j, rv := range rowv {
					z += rv * x[j]
				}
				bw.preds[s][t][r] = z
			}
		}
		for s := 0; s < S; s++ {
			y := bw.preds[s][t]
			prev := bw.prevs[s]
			for d := range y {
				y[d] += prev[d]
			}
			bw.prevs[s] = y
		}
	}
}

// gruBatchPropagate runs one step's backward propagation for every sample,
// following the reference kernel's phase order exactly — combine split,
// candidate row sweep, reset split, then the update and reset blocks' x/h
// sweeps — while writing the three blocks' pre-activation gradients to the
// dPre tape and never touching the weight gradients.
func gruBatchPropagate(c gruCell, w Vector, tapes [][]gruStep, dPreTape [][][]float64, t, S int, bw *gruBatchWS) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	for s := 0; s < S; s++ {
		st := &tapes[s][t]
		hPrev := st.xh[c.in:nin]
		dh, dhPrev := bw.dh[s], bw.dhPrev[s]
		dPre := dPreTape[s][t]
		for k := 0; k < h; k++ {
			dz := dh[k] * (st.hCand[k] - hPrev[k])
			dc := dh[k] * st.z[k]
			dhPrev[k] = dh[k] * (1 - st.z[k])
			dPre[k] = dz * st.z[k] * (1 - st.z[k])
			dPre[2*h+k] = dc * (1 - st.hCand[k]*st.hCand[k])
		}
		zeroFloats(bw.dxrh[s][:nin])
	}
	// Candidate rows: propagate into the packed [dx; d(r⊙hPrev)], row pairs
	// × sample pairs (see batchPropagate) — each dxrh element takes its two
	// row contributions as sequential adds in ascending-row order, with the
	// streamed kernel's per-(row, sample) d == 0 skip.
	k := 0
	for ; k+1 < h; k += 2 {
		rowA := w[(2*h+k)*cols : (2*h+k)*cols+nin]
		rowB := w[(2*h+k+1)*cols : (2*h+k+1)*cols+nin]
		s := 0
		for ; s+1 < S; s += 2 {
			dA0, dB0 := dPreTape[s][t][2*h+k], dPreTape[s][t][2*h+k+1]
			dA1, dB1 := dPreTape[s+1][t][2*h+k], dPreTape[s+1][t][2*h+k+1]
			if dA0 != 0 && dB0 != 0 && dA1 != 0 && dB1 != 0 {
				dxrh0 := bw.dxrh[s][:nin]
				dxrh1 := bw.dxrh[s+1][:nin]
				for j, ra := range rowA {
					rb := rowB[j]
					v0 := dxrh0[j]
					v0 += dA0 * ra
					v0 += dB0 * rb
					dxrh0[j] = v0
					v1 := dxrh1[j]
					v1 += dA1 * ra
					v1 += dB1 * rb
					dxrh1[j] = v1
				}
			} else {
				rowPairInto(rowA, rowB, dA0, dB0, bw.dxrh[s][:nin])
				rowPairInto(rowA, rowB, dA1, dB1, bw.dxrh[s+1][:nin])
			}
		}
		for ; s < S; s++ {
			rowPairInto(rowA, rowB, dPreTape[s][t][2*h+k], dPreTape[s][t][2*h+k+1], bw.dxrh[s][:nin])
		}
	}
	for ; k < h; k++ {
		base := (2*h + k) * cols
		row := w[base : base+nin]
		for s := 0; s < S; s++ {
			d := dPreTape[s][t][2*h+k]
			if d == 0 {
				continue
			}
			dxrh := bw.dxrh[s][:nin]
			for j, rv := range row {
				dxrh[j] += d * rv
			}
		}
	}
	for s := 0; s < S; s++ {
		st := &tapes[s][t]
		hPrev := st.xh[c.in:nin]
		dxrh := bw.dxrh[s][:nin]
		copy(bw.dx[s][:c.in], dxrh[:c.in])
		drh := dxrh[c.in:]
		dhPrev := bw.dhPrev[s]
		dPre := dPreTape[s][t]
		for k := 0; k < h; k++ {
			dr := drh[k] * hPrev[k]
			dhPrev[k] += drh[k] * st.r[k]
			dPre[h+k] = dr * st.r[k] * (1 - st.r[k])
		}
	}
	// Update then reset blocks: dx and dhPrev row sweeps (x part, then h
	// part, as in blockBackward), weight gradients deferred. Row pairs ×
	// sample pairs as above; per element each target takes its two row
	// contributions in ascending-row order, d == 0 skip per (row, sample).
	for block := 0; block < 2; block++ {
		k := 0
		for ; k+1 < h; k += 2 {
			baseA := (block*h + k) * cols
			baseB := (block*h + k + 1) * cols
			rowAX, rowAH := w[baseA:baseA+c.in], w[baseA+c.in:baseA+nin]
			rowBX, rowBH := w[baseB:baseB+c.in], w[baseB+c.in:baseB+nin]
			s := 0
			for ; s+1 < S; s += 2 {
				dA0, dB0 := dPreTape[s][t][block*h+k], dPreTape[s][t][block*h+k+1]
				dA1, dB1 := dPreTape[s+1][t][block*h+k], dPreTape[s+1][t][block*h+k+1]
				if dA0 != 0 && dB0 != 0 && dA1 != 0 && dB1 != 0 {
					dx0, dx1 := bw.dx[s][:c.in], bw.dx[s+1][:c.in]
					for j, ra := range rowAX {
						rb := rowBX[j]
						v0 := dx0[j]
						v0 += dA0 * ra
						v0 += dB0 * rb
						dx0[j] = v0
						v1 := dx1[j]
						v1 += dA1 * ra
						v1 += dB1 * rb
						dx1[j] = v1
					}
					dhPrev0, dhPrev1 := bw.dhPrev[s], bw.dhPrev[s+1]
					for j, ra := range rowAH {
						rb := rowBH[j]
						v0 := dhPrev0[j]
						v0 += dA0 * ra
						v0 += dB0 * rb
						dhPrev0[j] = v0
						v1 := dhPrev1[j]
						v1 += dA1 * ra
						v1 += dB1 * rb
						dhPrev1[j] = v1
					}
				} else {
					gruBlockRowPair(rowAX, rowAH, rowBX, rowBH, dA0, dB0, bw.dx[s][:c.in], bw.dhPrev[s])
					gruBlockRowPair(rowAX, rowAH, rowBX, rowBH, dA1, dB1, bw.dx[s+1][:c.in], bw.dhPrev[s+1])
				}
			}
			for ; s < S; s++ {
				dA := dPreTape[s][t][block*h+k]
				dB := dPreTape[s][t][block*h+k+1]
				gruBlockRowPair(rowAX, rowAH, rowBX, rowBH, dA, dB, bw.dx[s][:c.in], bw.dhPrev[s])
			}
		}
		for ; k < h; k++ {
			base := (block*h + k) * cols
			rowX := w[base : base+c.in]
			rowH := w[base+c.in : base+nin]
			for s := 0; s < S; s++ {
				d := dPreTape[s][t][block*h+k]
				if d == 0 {
					continue
				}
				gruBlockRow(rowX, rowH, d, bw.dx[s][:c.in], bw.dhPrev[s])
			}
		}
	}
}

// gruBlockRow propagates one update/reset row into a single sample's dx and
// dhPrev, in the x-then-h order of blockBackward.
func gruBlockRow(rowX, rowH []float64, d float64, dx, dhPrev []float64) {
	for j, rv := range rowX {
		dx[j] += d * rv
	}
	for j, rv := range rowH {
		dhPrev[j] += d * rv
	}
}

// gruBlockRowPair propagates two consecutive update/reset rows into one
// sample's dx and dhPrev: row A's contribution before row B's per element,
// x part before h part per row phase, zero rows skipped as in the streamed
// kernel.
func gruBlockRowPair(rowAX, rowAH, rowBX, rowBH []float64, dA, dB float64, dx, dhPrev []float64) {
	switch {
	case dA != 0 && dB != 0:
		rowPairInto(rowAX, rowBX, dA, dB, dx)
		rowPairInto(rowAH, rowBH, dA, dB, dhPrev)
	case dA != 0:
		gruBlockRow(rowAX, rowAH, dA, dx, dhPrev)
	case dB != 0:
		gruBlockRow(rowBX, rowBH, dB, dx, dhPrev)
	}
}

// gruBatchAccumulate is the deferred weight-gradient pass: every row swept
// once over the whole tape in (sample ascending; step descending) order —
// the update and reset rows against the taped xh, the candidate rows
// against the taped xrh.
func gruBatchAccumulate(c gruCell, grad Vector, tapes [][]gruStep, dPreTape [][][]float64, T, S int) {
	h := c.hidden
	// Update+reset rows ([0, 2h), always an even count) read the xh tape;
	// candidate rows ([2h, 3h)) read the xrh tape. Each range is swept in row
	// pairs so one tape pass feeds two gradient rows.
	gruAccumRange(c, grad, tapes, dPreTape, T, S, 0, 2*h, false)
	gruAccumRange(c, grad, tapes, dPreTape, T, S, 2*h, 3*h, true)
}

// gruAccumRange accumulates the gradient rows [lo, hi) in pairs, preserving
// the streamed path's per-element (sample ascending; step descending)
// contribution order and its d == 0 row skip.
func gruAccumRange(c gruCell, grad Vector, tapes [][]gruStep, dPreTape [][][]float64, T, S, lo, hi int, cand bool) {
	cols := c.cols()
	nin := c.in + c.hidden
	r := lo
	for ; r+1 < hi; r += 2 {
		grow0 := grad[r*cols : r*cols+cols]
		grow1 := grad[(r+1)*cols : (r+1)*cols+cols]
		g0 := grow0[:nin]
		g1 := grow1[:nin]
		for s := 0; s < S; s++ {
			tape := tapes[s]
			dps := dPreTape[s]
			for t := T - 1; t >= 0; t-- {
				d0, d1 := dps[t][r], dps[t][r+1]
				if d0 == 0 && d1 == 0 {
					continue
				}
				var in []float64
				if cand {
					in = tape[t].xrh[:nin]
				} else {
					in = tape[t].xh[:nin]
				}
				if d0 != 0 && d1 != 0 {
					for j, iv := range in {
						g0[j] += d0 * iv
						g1[j] += d1 * iv
					}
					grow0[nin] += d0
					grow1[nin] += d1
				} else if d0 != 0 {
					for j, iv := range in {
						g0[j] += d0 * iv
					}
					grow0[nin] += d0
				} else {
					for j, iv := range in {
						g1[j] += d1 * iv
					}
					grow1[nin] += d1
				}
			}
		}
	}
	for ; r < hi; r++ {
		grow := grad[r*cols : r*cols+cols]
		growv := grow[:nin]
		for s := 0; s < S; s++ {
			for t := T - 1; t >= 0; t-- {
				d := dPreTape[s][t][r]
				if d == 0 {
					continue
				}
				var in []float64
				if cand {
					in = tapes[s][t].xrh[:nin]
				} else {
					in = tapes[s][t].xh[:nin]
				}
				for j, iv := range in {
					growv[j] += d * iv
				}
				grow[nin] += d
			}
		}
	}
}

// batchGrad is the batched BatchGrad engine for the GRU model; see the LSTM
// batchGrad for the structure. Returns the summed (not yet averaged) loss.
func (m *GRUSeq2Seq) batchGrad(batch []Sample, loss Loss, grad Vector) float64 {
	tin, tout := len(batch[0].In), len(batch[0].Out)
	m.batchForward(batch, tin, tout)
	bw := m.ws.bws
	S := len(batch)

	var lossSum float64
	for s := 0; s < S; s++ {
		lossSum += loss.LossGrad(bw.preds[s][:tout], batch[s].Out, bw.dPreds[s][:tout])
	}

	encG := grad[m.encOff:m.decOff]
	decG := grad[m.decOff:m.outOff]
	outG := grad[m.outOff:]
	encW, decW, outW := m.encW(), m.decW(), m.outW()
	outCols := m.out.in + 1

	for s := 0; s < S; s++ {
		zeroFloats(bw.dh[s])
	}
	for t := tout - 1; t >= 0; t-- {
		for s := 0; s < S; s++ {
			dy := bw.dyTape[s][t]
			copy(dy, bw.dPreds[s][t])
			if t < tout-1 {
				dNext := bw.dNext[s]
				for i := range dy {
					dy[i] += dNext[i]
				}
			}
			dhOut := bw.dhOut[s]
			zeroFloats(dhOut)
			for r := 0; r < m.out.out; r++ {
				d := dy[r]
				if d == 0 {
					continue
				}
				row := outW[r*outCols : r*outCols+m.out.in]
				for j, rv := range row {
					dhOut[j] += d * rv
				}
			}
			dh := bw.dh[s]
			for i := range dh {
				dh[i] += dhOut[i]
			}
		}
		gruBatchPropagate(m.dec, decW, bw.decTapes, bw.dPreDec, t, S, bw)
		for s := 0; s < S; s++ {
			dx := bw.dx[s]
			dy := bw.dyTape[s][t]
			dNext := bw.dNext[s]
			for i := range dNext {
				dNext[i] = dx[i] + dy[i] // residual path
			}
			bw.dh[s], bw.dhPrev[s] = bw.dhPrev[s], bw.dh[s]
		}
	}
	for t := tin - 1; t >= 0; t-- {
		gruBatchPropagate(m.enc, encW, bw.encTapes, bw.dPreEnc, t, S, bw)
		for s := 0; s < S; s++ {
			bw.dh[s], bw.dhPrev[s] = bw.dhPrev[s], bw.dh[s]
		}
	}

	gruBatchAccumulate(m.dec, decG, bw.decTapes, bw.dPreDec, tout, S)
	gruBatchAccumulate(m.enc, encG, bw.encTapes, bw.dPreEnc, tin, S)
	for r := 0; r < m.out.out; r++ {
		base := r * outCols
		grow := outG[base : base+outCols]
		growv := grow[:m.out.in]
		for s := 0; s < S; s++ {
			for t := tout - 1; t >= 0; t-- {
				d := bw.dyTape[s][t][r]
				if d == 0 {
					continue
				}
				x := bw.decTapes[s][t].h[:m.out.in]
				for j, rv := range x {
					growv[j] += d * rv
				}
				grow[m.out.in] += d
			}
		}
	}
	return lossSum
}

// batchLoss is the batched BatchLoss engine for the GRU model.
func (m *GRUSeq2Seq) batchLoss(batch []Sample, loss Loss) float64 {
	tin, tout := len(batch[0].In), len(batch[0].Out)
	m.batchForward(batch, tin, tout)
	bw := m.ws.bws
	var sum float64
	for s := range batch {
		sum += loss.LossGrad(bw.preds[s][:tout], batch[s].Out, bw.dPreds[s][:tout])
	}
	return sum
}
