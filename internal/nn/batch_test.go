package nn

import (
	"math"
	"math/rand"
	"testing"
)

// streamedBatchGrad is the pre-batching BatchGrad path: stream every sample
// through Grad, then average. The batched kernels must reproduce it to the
// bit.
func streamedBatchGrad(m *Seq2Seq, batch []Sample, loss Loss, grad Vector) float64 {
	grad.Zero()
	if len(batch) == 0 {
		return 0
	}
	var sum float64
	for i := range batch {
		sum += m.Grad(batch[i].In, batch[i].Out, loss, grad)
	}
	grad.Scale(1 / float64(len(batch)))
	return sum / float64(len(batch))
}

func streamedBatchLoss(m *Seq2Seq, batch []Sample, loss Loss) float64 {
	var sum float64
	for i := range batch {
		s := &batch[i]
		preds := m.forward(s.In, len(s.Out))
		ws := m.ws
		ws.dPreds = growRows(ws.dPreds, len(s.Out), m.OutDim)
		sum += loss.LossGrad(preds, s.Out, ws.dPreds[:len(s.Out)])
	}
	return sum / float64(len(batch))
}

func randUniformBatch(rng *rand.Rand, size, inDim, outDim, seqIn, seqOut int) []Sample {
	batch := make([]Sample, 0, size)
	for i := 0; i < size; i++ {
		batch = append(batch, randSample(rng, inDim, outDim, seqIn, seqOut))
	}
	return batch
}

// TestBatchGradMatchesStreamed property-tests the batched GEMM-shaped
// BatchGrad against the streamed per-sample path: identical loss and
// identical gradient, bit for bit, across random shapes, batch sizes, and
// losses. Floating-point addition is not associative, so bit equality here
// proves the batched kernels preserve the per-sample reduction order
// exactly — the contract everything downstream (meta-training determinism,
// checkpoint digests, replay equivalence) relies on.
func TestBatchGradMatchesStreamed(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	losses := []Loss{MSE{}, Scaled{Inner: MSE{}, Factor: 3.7}}
	for trial := 0; trial < 30; trial++ {
		inDim := 2 + rng.Intn(3)
		outDim := 2
		hidden := 3 + rng.Intn(6)
		seqIn := 1 + rng.Intn(6)
		seqOut := 1 + rng.Intn(4)
		size := 2 + rng.Intn(7)
		loss := losses[trial%len(losses)]

		m := NewSeq2Seq(inDim, outDim, hidden, rng)
		for i := m.outOff; i < len(m.w); i++ {
			m.w[i] = rng.NormFloat64() * 0.2
		}
		batch := randUniformBatch(rng, size, inDim, outDim, seqIn, seqOut)

		ref := m.Clone()
		wantGrad := NewVector(m.NumParams())
		wantLoss := streamedBatchGrad(ref, batch, loss, wantGrad)

		gotGrad := NewVector(m.NumParams())
		gotLoss := m.BatchGrad(batch, loss, gotGrad)

		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("trial %d: batched loss %v != streamed %v", trial, gotLoss, wantLoss)
		}
		for i := range gotGrad {
			if math.Float64bits(gotGrad[i]) != math.Float64bits(wantGrad[i]) {
				t.Fatalf("trial %d: grad[%d] = %v (bits %x) != streamed %v (bits %x)",
					trial, i, gotGrad[i], math.Float64bits(gotGrad[i]),
					wantGrad[i], math.Float64bits(wantGrad[i]))
			}
		}

		// Repeat on the same (now warm) workspace: reuse must not drift.
		gotLoss2 := m.BatchGrad(batch, loss, gotGrad)
		if math.Float64bits(gotLoss2) != math.Float64bits(wantLoss) {
			t.Fatalf("trial %d: warm batched loss %v != streamed %v", trial, gotLoss2, wantLoss)
		}
	}
}

// TestBatchGradMatchesReference pins the batched path to the naive
// pre-refactor reference kernels (the same oracle TestFusedLSTMMatchesReference
// uses for the per-sample path).
func TestBatchGradMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	for trial := 0; trial < 10; trial++ {
		inDim := 2 + rng.Intn(2)
		hidden := 3 + rng.Intn(4)
		seqIn := 1 + rng.Intn(5)
		seqOut := 1 + rng.Intn(3)
		size := 2 + rng.Intn(5)
		m := NewSeq2Seq(inDim, 2, hidden, rng)
		for i := m.outOff; i < len(m.w); i++ {
			m.w[i] = rng.NormFloat64() * 0.2
		}
		batch := randUniformBatch(rng, size, inDim, 2, seqIn, seqOut)
		loss := MSE{}

		refGrad := NewVector(m.NumParams())
		var refLoss float64
		for i := range batch {
			l, _ := refSeq2SeqGrad(m, batch[i].In, batch[i].Out, loss, refGrad)
			refLoss += l
		}
		refGrad.Scale(1 / float64(len(batch)))
		refLoss /= float64(len(batch))

		grad := NewVector(m.NumParams())
		gotLoss := m.BatchGrad(batch, loss, grad)
		if math.Abs(gotLoss-refLoss) > 1e-9 {
			t.Fatalf("trial %d: loss %v vs reference %v", trial, gotLoss, refLoss)
		}
		for i := range grad {
			if diff := math.Abs(grad[i] - refGrad[i]); diff > 1e-9 {
				t.Fatalf("trial %d: grad[%d] = %v vs reference %v (diff %g)",
					trial, i, grad[i], refGrad[i], diff)
			}
		}
	}
}

// TestBatchLossMatchesStreamed checks the batched forward + loss against the
// per-sample path, bit for bit.
func TestBatchLossMatchesStreamed(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		inDim := 2 + rng.Intn(3)
		hidden := 3 + rng.Intn(6)
		seqIn := 1 + rng.Intn(6)
		seqOut := 1 + rng.Intn(4)
		size := 2 + rng.Intn(7)
		m := NewSeq2Seq(inDim, 2, hidden, rng)
		for i := m.outOff; i < len(m.w); i++ {
			m.w[i] = rng.NormFloat64() * 0.2
		}
		batch := randUniformBatch(rng, size, inDim, 2, seqIn, seqOut)
		loss := MSE{}

		want := streamedBatchLoss(m.Clone(), batch, loss)
		got := m.BatchLoss(batch, loss)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: batched loss %v != streamed %v", trial, got, want)
		}
	}
}

// TestBatchForwardMatchesPredict checks the step-synchronous batched forward
// produces every sample's prediction rows bit-identical to Predict run on
// that sample alone.
func TestBatchForwardMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewSeq2Seq(4, 2, 8, rng)
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = rng.NormFloat64() * 0.2
	}
	batch := randUniformBatch(rng, 6, 4, 2, 5, 3)
	seqOut := len(batch[0].Out)

	m.batchForward(batch, len(batch[0].In), seqOut)
	bw := m.ws.bws
	single := m.Clone()
	for s := range batch {
		want := single.Predict(batch[s].In, seqOut)
		for t2 := 0; t2 < seqOut; t2++ {
			for d := 0; d < m.OutDim; d++ {
				if math.Float64bits(bw.preds[s][t2][d]) != math.Float64bits(want[t2][d]) {
					t.Fatalf("sample %d pred[%d][%d]: batched %v != single %v",
						s, t2, d, bw.preds[s][t2][d], want[t2][d])
				}
			}
		}
	}
}

// TestBatchGradMixedShapes checks the non-uniform fallback: a ragged batch
// takes the streamed path and still matches the manual stream exactly.
func TestBatchGradMixedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewSeq2Seq(3, 2, 5, rng)
	for i := m.outOff; i < len(m.w); i++ {
		m.w[i] = rng.NormFloat64() * 0.2
	}
	batch := []Sample{
		randSample(rng, 3, 2, 4, 2),
		randSample(rng, 3, 2, 2, 3),
		randSample(rng, 3, 2, 5, 1),
	}
	loss := MSE{}
	wantGrad := NewVector(m.NumParams())
	wantLoss := streamedBatchGrad(m.Clone(), batch, loss, wantGrad)
	grad := NewVector(m.NumParams())
	gotLoss := m.BatchGrad(batch, loss, grad)
	if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
		t.Fatalf("mixed-shape loss %v != streamed %v", gotLoss, wantLoss)
	}
	for i := range grad {
		if math.Float64bits(grad[i]) != math.Float64bits(wantGrad[i]) {
			t.Fatalf("mixed-shape grad[%d] differs", i)
		}
	}
}

// streamedGRUBatchGrad is the pre-batching GRU BatchGrad path.
func streamedGRUBatchGrad(m *GRUSeq2Seq, batch []Sample, loss Loss, grad Vector) float64 {
	grad.Zero()
	var sum float64
	for i := range batch {
		sum += m.Grad(batch[i].In, batch[i].Out, loss, grad)
	}
	grad.Scale(1 / float64(len(batch)))
	return sum / float64(len(batch))
}

// TestGRUBatchGradMatchesStreamed is the GRU analogue of
// TestBatchGradMatchesStreamed: batched vs streamed, bit for bit.
func TestGRUBatchGradMatchesStreamed(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	losses := []Loss{MSE{}, Scaled{Inner: MSE{}, Factor: 2.1}}
	for trial := 0; trial < 30; trial++ {
		inDim := 2 + rng.Intn(3)
		hidden := 3 + rng.Intn(6)
		seqIn := 1 + rng.Intn(6)
		seqOut := 1 + rng.Intn(4)
		size := 2 + rng.Intn(7)
		loss := losses[trial%len(losses)]

		m := NewGRUSeq2Seq(inDim, 2, hidden, rng)
		for i := m.outOff; i < len(m.w); i++ {
			m.w[i] = rng.NormFloat64() * 0.2
		}
		batch := randUniformBatch(rng, size, inDim, 2, seqIn, seqOut)

		ref := m.CloneModel().(*GRUSeq2Seq)
		wantGrad := NewVector(m.NumParams())
		wantLoss := streamedGRUBatchGrad(ref, batch, loss, wantGrad)

		gotGrad := NewVector(m.NumParams())
		gotLoss := m.BatchGrad(batch, loss, gotGrad)

		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("trial %d: batched loss %v != streamed %v", trial, gotLoss, wantLoss)
		}
		for i := range gotGrad {
			if math.Float64bits(gotGrad[i]) != math.Float64bits(wantGrad[i]) {
				t.Fatalf("trial %d: grad[%d] = %v != streamed %v",
					trial, i, gotGrad[i], wantGrad[i])
			}
		}
	}
}

// TestGRUBatchLossMatchesStreamed checks the batched GRU forward + loss.
func TestGRUBatchLossMatchesStreamed(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		inDim := 2 + rng.Intn(3)
		hidden := 3 + rng.Intn(6)
		m := NewGRUSeq2Seq(inDim, 2, hidden, rng)
		for i := m.outOff; i < len(m.w); i++ {
			m.w[i] = rng.NormFloat64() * 0.2
		}
		batch := randUniformBatch(rng, 2+rng.Intn(7), inDim, 2, 1+rng.Intn(6), 1+rng.Intn(4))
		loss := MSE{}

		single := m.CloneModel().(*GRUSeq2Seq)
		var want float64
		for i := range batch {
			s := &batch[i]
			preds := single.forward(s.In, len(s.Out))
			ws := single.ws
			ws.dPreds = growRows(ws.dPreds, len(s.Out), single.OutDim)
			want += loss.LossGrad(preds, s.Out, ws.dPreds[:len(s.Out)])
		}
		want /= float64(len(batch))
		got := m.BatchLoss(batch, loss)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: batched GRU loss %v != streamed %v", trial, got, want)
		}
	}
}

// TestBatchedKernelsSteadyStateAllocFree gates the batched engines at 0
// allocs/op once the arenas are warm — same contract as the per-sample path.
func TestBatchedKernelsSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	batch := randUniformBatch(rng, 6, 4, 2, 6, 3)
	loss := MSE{}

	m := NewSeq2Seq(4, 2, 16, rng)
	grad := NewVector(m.NumParams())
	requireZeroAllocs(t, "Seq2Seq.BatchGrad(batched)", func() { m.BatchGrad(batch, loss, grad) })
	requireZeroAllocs(t, "Seq2Seq.BatchLoss(batched)", func() { m.BatchLoss(batch, loss) })

	g := NewGRUSeq2Seq(4, 2, 16, rng)
	ggrad := NewVector(g.NumParams())
	requireZeroAllocs(t, "GRUSeq2Seq.BatchGrad(batched)", func() { g.BatchGrad(batch, loss, ggrad) })
	requireZeroAllocs(t, "GRUSeq2Seq.BatchLoss(batched)", func() { g.BatchLoss(batch, loss) })
}

// TestBatchUniform covers the shape guard directly.
func TestBatchUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randSample(rng, 2, 2, 3, 2)
	b := randSample(rng, 2, 2, 3, 2)
	c := randSample(rng, 2, 2, 4, 2)
	if !batchUniform([]Sample{a, b}) {
		t.Fatal("uniform batch reported non-uniform")
	}
	if batchUniform([]Sample{a, c}) {
		t.Fatal("ragged batch reported uniform")
	}
	if batchUniform(nil) {
		t.Fatal("empty batch reported uniform")
	}
	if batchUniform([]Sample{{In: nil, Out: a.Out}}) {
		t.Fatal("empty-input sample reported uniform")
	}
}
