package nn

import "math"

// lstmCell is a single-layer LSTM with a packed weight layout.
//
// The weight matrix for the four gates (input i, forget f, cell g, output o)
// is stored row-major as rows = 4*hidden, cols = in + hidden + 1; the final
// column is the bias. Gate pre-activations for gate block k of row r are
//
//	z[k*h+r] = Σ_j W[k*h+r][j]·x[j] + Σ_j W[k*h+r][in+j]·hPrev[j] + W[k*h+r][in+h]
//
// The cell does not own parameter storage: weights are a view into the
// model's flat Vector so meta-learning can manipulate all parameters at once.
//
// Kernels are allocation-free: forward and backward write into
// caller-provided step/scratch buffers (see workspace.go), and both fuse the
// x and hPrev passes into a single loop over a packed [x; hPrev] row so each
// weight row is swept once with hoisted, bounds-check-free slices.
type lstmCell struct {
	in, hidden int
}

func (c lstmCell) numParams() int { return 4 * c.hidden * (c.in + c.hidden + 1) }

func (c lstmCell) cols() int { return c.in + c.hidden + 1 }

// lstmStep caches everything the backward pass needs for one time step. Its
// buffers are owned by the model workspace and reused across samples.
type lstmStep struct {
	xh         []float64 // packed input [x; hPrev], copied at forward time
	cPrev      []float64 // reference to the previous step's cNew (or c0)
	i, f, g, o []float64 // gate activations
	cNew       []float64
	tanhC      []float64
	h          []float64
}

// forward computes one LSTM step into the caller's step record. st's buffers
// must be sized for this cell (growLSTMTape).
func (c lstmCell) forward(w Vector, x, hPrev, cPrev []float64, st *lstmStep) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	xh := st.xh[:nin]
	copy(xh, x)
	copy(xh[c.in:], hPrev)
	st.cPrev = cPrev
	for gate := 0; gate < 4; gate++ {
		var dst []float64
		switch gate {
		case 0:
			dst = st.i
		case 1:
			dst = st.f
		case 2:
			dst = st.g
		default:
			dst = st.o
		}
		for k := 0; k < h; k++ {
			base := (gate*h + k) * cols
			row := w[base : base+cols]
			z := row[nin] // bias
			row = row[:nin]
			for j, rv := range row {
				z += rv * xh[j]
			}
			if gate == 2 {
				dst[k] = math.Tanh(z)
			} else {
				dst[k] = sigmoid(z)
			}
		}
	}
	for k := 0; k < h; k++ {
		st.cNew[k] = st.f[k]*cPrev[k] + st.i[k]*st.g[k]
		st.tanhC[k] = math.Tanh(st.cNew[k])
		st.h[k] = st.o[k] * st.tanhC[k]
	}
}

// backward accumulates gradients for one step. dh and dc are the gradients
// flowing into this step's h and c outputs. The gradients to propagate are
// written into caller buffers: dcPrev (length hidden) and the packed dxh
// (length in+hidden, holding [dx; dhPrev]). dz is 4*hidden scratch. grad
// views the cell's slice of the flat gradient vector.
//
// dx and dhPrev both start from zero and receive their row contributions in
// the same order as the pre-workspace scalar kernel, so accumulating them in
// the packed buffer is bit-identical to the reference implementation.
func (c lstmCell) backward(w, grad Vector, st *lstmStep, dh, dc, dcPrev, dxh, dz []float64) {
	h := c.hidden
	cols := c.cols()
	nin := c.in + h
	for k := 0; k < h; k++ {
		do := dh[k] * st.tanhC[k]
		dcT := dh[k]*st.o[k]*(1-st.tanhC[k]*st.tanhC[k]) + dc[k]
		di := dcT * st.g[k]
		df := dcT * st.cPrev[k]
		dg := dcT * st.i[k]
		dcPrev[k] = dcT * st.f[k]
		// Through the gate nonlinearities.
		dz[0*h+k] = di * st.i[k] * (1 - st.i[k])
		dz[1*h+k] = df * st.f[k] * (1 - st.f[k])
		dz[2*h+k] = dg * (1 - st.g[k]*st.g[k])
		dz[3*h+k] = do * st.o[k] * (1 - st.o[k])
	}
	dxh = dxh[:nin]
	zeroFloats(dxh)
	xh := st.xh[:nin]
	for r := 0; r < 4*h; r++ {
		d := dz[r]
		if d == 0 {
			continue
		}
		base := r * cols
		grow := grad[base : base+cols]
		growv := grow[:nin]
		row := w[base : base+nin]
		for j, rv := range row {
			growv[j] += d * xh[j]
			dxh[j] += d * rv
		}
		grow[nin] += d
	}
}

// linear is a dense layer y = W·x + b with packed layout rows = out,
// cols = in + 1 (bias last).
type linear struct {
	in, out int
}

func (l linear) numParams() int { return l.out * (l.in + 1) }

// forward writes W·x + b into the caller's y (length out).
func (l linear) forward(w Vector, x, y []float64) {
	cols := l.in + 1
	x = x[:l.in]
	for r := 0; r < l.out; r++ {
		base := r * cols
		row := w[base : base+cols]
		z := row[l.in]
		row = row[:l.in]
		for j, rv := range row {
			z += rv * x[j]
		}
		y[r] = z
	}
}

// backward accumulates parameter gradients and writes dL/dx into the
// caller's dx (length in) given dL/dy.
func (l linear) backward(w, grad Vector, x, dy, dx []float64) {
	zeroFloats(dx)
	cols := l.in + 1
	x = x[:l.in]
	dx = dx[:l.in]
	for r := 0; r < l.out; r++ {
		d := dy[r]
		if d == 0 {
			continue
		}
		base := r * cols
		grow := grad[base : base+cols]
		growv := grow[:l.in]
		row := w[base : base+l.in]
		for j, rv := range row {
			growv[j] += d * x[j]
			dx[j] += d * rv
		}
		grow[l.in] += d
	}
}
