package nn

import "math"

// lstmCell is a single-layer LSTM with a packed weight layout.
//
// The weight matrix for the four gates (input i, forget f, cell g, output o)
// is stored row-major as rows = 4*hidden, cols = in + hidden + 1; the final
// column is the bias. Gate pre-activations for gate block k of row r are
//
//	z[k*h+r] = Σ_j W[k*h+r][j]·x[j] + Σ_j W[k*h+r][in+j]·hPrev[j] + W[k*h+r][in+h]
//
// The cell does not own parameter storage: weights are a view into the
// model's flat Vector so meta-learning can manipulate all parameters at once.
type lstmCell struct {
	in, hidden int
}

func (c lstmCell) numParams() int { return 4 * c.hidden * (c.in + c.hidden + 1) }

func (c lstmCell) cols() int { return c.in + c.hidden + 1 }

// lstmStep caches everything the backward pass needs for one time step.
type lstmStep struct {
	x          []float64 // input at this step
	hPrev      []float64
	cPrev      []float64
	i, f, g, o []float64 // gate activations
	cNew       []float64
	tanhC      []float64
	h          []float64
}

// forward computes one LSTM step, returning the cached step record.
func (c lstmCell) forward(w Vector, x, hPrev, cPrev []float64) lstmStep {
	h := c.hidden
	cols := c.cols()
	st := lstmStep{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float64, h), f: make([]float64, h),
		g: make([]float64, h), o: make([]float64, h),
		cNew: make([]float64, h), tanhC: make([]float64, h), h: make([]float64, h),
	}
	for r := 0; r < 4*h; r++ {
		row := w[r*cols : (r+1)*cols]
		z := row[c.in+h] // bias
		for j, xv := range x {
			z += row[j] * xv
		}
		for j, hv := range hPrev {
			z += row[c.in+j] * hv
		}
		gate, idx := r/h, r%h
		switch gate {
		case 0:
			st.i[idx] = sigmoid(z)
		case 1:
			st.f[idx] = sigmoid(z)
		case 2:
			st.g[idx] = math.Tanh(z)
		case 3:
			st.o[idx] = sigmoid(z)
		}
	}
	for k := 0; k < h; k++ {
		st.cNew[k] = st.f[k]*cPrev[k] + st.i[k]*st.g[k]
		st.tanhC[k] = math.Tanh(st.cNew[k])
		st.h[k] = st.o[k] * st.tanhC[k]
	}
	return st
}

// backward accumulates gradients for one step. dh and dc are the gradients
// flowing into this step's h and c outputs; it returns the gradients to
// propagate to hPrev, cPrev, and the step's input x. grad views the cell's
// slice of the flat gradient vector.
func (c lstmCell) backward(w, grad Vector, st lstmStep, dh, dc []float64) (dhPrev, dcPrev, dx []float64) {
	h := c.hidden
	cols := c.cols()
	dhPrev = make([]float64, h)
	dcPrev = make([]float64, h)
	dx = make([]float64, c.in)

	dz := make([]float64, 4*h)
	for k := 0; k < h; k++ {
		do := dh[k] * st.tanhC[k]
		dcT := dh[k]*st.o[k]*(1-st.tanhC[k]*st.tanhC[k]) + dc[k]
		di := dcT * st.g[k]
		df := dcT * st.cPrev[k]
		dg := dcT * st.i[k]
		dcPrev[k] = dcT * st.f[k]
		// Through the gate nonlinearities.
		dz[0*h+k] = di * st.i[k] * (1 - st.i[k])
		dz[1*h+k] = df * st.f[k] * (1 - st.f[k])
		dz[2*h+k] = dg * (1 - st.g[k]*st.g[k])
		dz[3*h+k] = do * st.o[k] * (1 - st.o[k])
	}
	for r := 0; r < 4*h; r++ {
		d := dz[r]
		if d == 0 {
			continue
		}
		row := w[r*cols : (r+1)*cols]
		grow := grad[r*cols : (r+1)*cols]
		for j, xv := range st.x {
			grow[j] += d * xv
			dx[j] += d * row[j]
		}
		for j, hv := range st.hPrev {
			grow[c.in+j] += d * hv
			dhPrev[j] += d * row[c.in+j]
		}
		grow[c.in+h] += d
	}
	return dhPrev, dcPrev, dx
}

// linear is a dense layer y = W·x + b with packed layout rows = out,
// cols = in + 1 (bias last).
type linear struct {
	in, out int
}

func (l linear) numParams() int { return l.out * (l.in + 1) }

func (l linear) forward(w Vector, x []float64) []float64 {
	y := make([]float64, l.out)
	cols := l.in + 1
	for r := 0; r < l.out; r++ {
		row := w[r*cols : (r+1)*cols]
		z := row[l.in]
		for j, xv := range x {
			z += row[j] * xv
		}
		y[r] = z
	}
	return y
}

// backward accumulates parameter gradients and returns dL/dx given dL/dy.
func (l linear) backward(w, grad Vector, x, dy []float64) (dx []float64) {
	dx = make([]float64, l.in)
	cols := l.in + 1
	for r := 0; r < l.out; r++ {
		d := dy[r]
		if d == 0 {
			continue
		}
		row := w[r*cols : (r+1)*cols]
		grow := grad[r*cols : (r+1)*cols]
		for j, xv := range x {
			grow[j] += d * xv
			dx[j] += d * row[j]
		}
		grow[l.in] += d
	}
	return dx
}
