// Package nn is a compact, dependency-free neural-network substrate built
// for the TAMP mobility prediction models: dense vector math, an LSTM cell
// with full backpropagation through time, an encoder–decoder sequence model
// (the paper's LSTM-Encoder-Decoder), plain and task-assignment-oriented
// losses (Eqs. 6–7), and SGD/Adam optimizers.
//
// All parameters of a model live in one flat Vector so that meta-learning
// can clone, blend, and update initializations with simple vector ops.
package nn

import (
	"math"
	"math/rand"
)

// Vector is a flat slice of parameters or gradients.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Axpy adds a*x to v element-wise. x must have the same length as v.
func (v Vector) Axpy(a float64, x Vector) {
	x = x[:len(v)] // hoist the length for bounds-check elimination
	for i, xv := range x {
		v[i] += a * xv
	}
}

// AddScaled sets v = a·v + b·x element-wise in one fused pass. It is the
// moment-update primitive of the Adam step: m = β₁·m + (1−β₁)·g.
func (v Vector) AddScaled(a, b float64, x Vector) {
	x = x[:len(v)]
	for i, xv := range x {
		v[i] = a*v[i] + b*xv
	}
}

// Scale multiplies every element of v by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Set copies x into v. x must have at least v's length.
func (v Vector) Set(x Vector) { copy(v, x[:len(v)]) }

// Dot returns the inner product of v and x.
func (v Vector) Dot(x Vector) float64 {
	x = x[:len(v)]
	var s float64
	for i, xv := range x {
		s += v[i] * xv
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// CosineSim returns the cosine similarity between v and x, or 0 when either
// vector is (numerically) zero. It is the cos(·,·) of Eq. 2.
func (v Vector) CosineSim(x Vector) float64 {
	nv, nx := v.Norm(), x.Norm()
	if nv < 1e-12 || nx < 1e-12 {
		return 0
	}
	return v.Dot(x) / (nv * nx)
}

// ClipNorm rescales v in place so its norm does not exceed maxNorm.
// It returns the norm before clipping.
func (v Vector) ClipNorm(maxNorm float64) float64 {
	n := v.Norm()
	if maxNorm > 0 && n > maxNorm {
		v.Scale(maxNorm / n)
	}
	return n
}

// RandomVector returns a vector of n values drawn uniformly from
// [-scale, scale] using rng.
func RandomVector(n int, scale float64, rng *rand.Rand) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

// Mean returns the element-wise mean of the given vectors, all of which
// must share a length. It returns nil for an empty input.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		return nil
	}
	out := NewVector(len(vs[0]))
	for _, v := range vs {
		out.Axpy(1, v)
	}
	out.Scale(1 / float64(len(vs)))
	return out
}

func sigmoid(x float64) float64 {
	// Guard against overflow in exp for large negative inputs.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
