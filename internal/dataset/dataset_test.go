package dataset

import (
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func smallParams(kind Kind) Params {
	p := Defaults(kind)
	p.NumWorkers = 12
	p.NewWorkers = 2
	p.TrainDays = 3
	p.TestDays = 1
	p.TicksPerDay = 60
	p.NumTestTasks = 200
	p.NumPOIs = 80
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallParams(Workload1))
	b := Generate(smallParams(Workload1))
	if len(a.Workers) != len(b.Workers) || len(a.TestTasks) != len(b.TestTasks) {
		t.Fatal("sizes differ across identical seeds")
	}
	for i := range a.Workers {
		ra, rb := a.Workers[i].TrainDays[0], b.Workers[i].TrainDays[0]
		for j := range ra.Points {
			if ra.Points[j] != rb.Points[j] {
				t.Fatalf("worker %d routine differs at %d", i, j)
			}
		}
	}
	for i := range a.TestTasks {
		ta, tb := a.TestTasks[i], b.TestTasks[i]
		if ta.ID != tb.ID || ta.Loc != tb.Loc || ta.Arrival != tb.Arrival || ta.Deadline != tb.Deadline {
			t.Fatalf("task %d differs", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	p := smallParams(Workload1)
	a := Generate(p)
	p.Seed = 99
	b := Generate(p)
	same := true
	for i := range a.TestTasks {
		if a.TestTasks[i].Loc != b.TestTasks[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tasks")
	}
}

func TestGenerateCounts(t *testing.T) {
	p := smallParams(Workload1)
	w := Generate(p)
	if len(w.Workers) != p.NumWorkers+p.NewWorkers {
		t.Errorf("workers = %d", len(w.Workers))
	}
	if len(w.TestTasks) != p.NumTestTasks {
		t.Errorf("tasks = %d", len(w.TestTasks))
	}
	if len(w.POIs) != p.NumPOIs {
		t.Errorf("POIs = %d", len(w.POIs))
	}
	if len(w.Hotspots) != p.NumHotspots {
		t.Errorf("hotspots = %d", len(w.Hotspots))
	}
	wantHist := (p.NumTestTasks / p.TestDays) * p.TrainDays
	if len(w.HistTasks) != wantHist {
		t.Errorf("hist tasks = %d, want %d", len(w.HistTasks), wantHist)
	}
}

func TestWorkerStructure(t *testing.T) {
	p := smallParams(Workload1)
	w := Generate(p)
	for _, wk := range w.Workers {
		if wk.New {
			if len(wk.TrainDays) != 1 {
				t.Errorf("new worker %d has %d train days, want 1", wk.ID, len(wk.TrainDays))
			}
		} else if len(wk.TrainDays) != p.TrainDays {
			t.Errorf("worker %d train days = %d", wk.ID, len(wk.TrainDays))
		}
		if len(wk.TestDays) != p.TestDays {
			t.Errorf("worker %d test days = %d", wk.ID, len(wk.TestDays))
		}
		if got := wk.TrainDays[0].Len(); got != p.TicksPerDay {
			t.Errorf("routine length = %d, want %d", got, p.TicksPerDay)
		}
		if wk.Speed <= 0 || wk.Detour <= 0 {
			t.Errorf("worker %d speed/detour = %v/%v", wk.ID, wk.Speed, wk.Detour)
		}
	}
	newCount := 0
	for _, wk := range w.Workers {
		if wk.New {
			newCount++
		}
	}
	if newCount != p.NewWorkers {
		t.Errorf("new workers = %d, want %d", newCount, p.NewWorkers)
	}
}

func TestRoutinesInsideGrid(t *testing.T) {
	for _, kind := range []Kind{Workload1, Workload2} {
		w := Generate(smallParams(kind))
		b := w.Params.Grid.Bounds()
		for _, wk := range w.Workers {
			for _, day := range wk.TrainDays {
				for _, pt := range day.Points {
					if !b.Contains(pt) {
						t.Fatalf("%v: point %v outside grid", kind, pt)
					}
				}
			}
		}
		for _, task := range w.TestTasks {
			if !b.Contains(task.Loc) {
				t.Fatalf("%v: task %v outside grid", kind, task.Loc)
			}
		}
	}
}

func TestRoutineMovementIsPhysical(t *testing.T) {
	// Per-tick displacement must stay near the archetype speed plus noise;
	// no teleporting.
	w := Generate(smallParams(Workload1))
	for _, wk := range w.Workers {
		r := wk.TrainDays[0]
		for i := 1; i < len(r.Points); i++ {
			d := r.Points[i].Dist(r.Points[i-1])
			if d > wk.Speed+2.5 {
				t.Fatalf("worker %d jumped %v cells in one tick (speed %v)", wk.ID, d, wk.Speed)
			}
		}
	}
}

func TestTasksSortedAndValid(t *testing.T) {
	p := smallParams(Workload1)
	w := Generate(p)
	horizon := p.TestDays * p.TicksPerDay
	for i, task := range w.TestTasks {
		if i > 0 && task.Arrival < w.TestTasks[i-1].Arrival {
			t.Fatal("tasks not sorted by arrival")
		}
		if task.Arrival < 0 || task.Arrival >= horizon {
			t.Errorf("task arrival %d outside horizon", task.Arrival)
		}
		valid := task.Deadline - task.Arrival
		if valid < p.ValidMin*5 || valid > p.ValidMax*5 {
			t.Errorf("task validity %d ticks outside [%d,%d]", valid, p.ValidMin*5, p.ValidMax*5)
		}
	}
}

func TestArchetypeStructureVisible(t *testing.T) {
	// Same-archetype workers should roam nearer each other than
	// cross-archetype workers on average — the property GTMC exploits.
	w := Generate(smallParams(Workload1))
	centroid := func(wk *Worker) geo.Point {
		var sx, sy float64
		pts := wk.TrainDays[0].Points
		for _, p := range pts {
			sx += p.X
			sy += p.Y
		}
		return geo.Pt(sx/float64(len(pts)), sy/float64(len(pts)))
	}
	var same, cross float64
	var ns, nc int
	for i := range w.Workers {
		for j := i + 1; j < len(w.Workers); j++ {
			d := centroid(&w.Workers[i]).Dist(centroid(&w.Workers[j]))
			if w.Workers[i].Archetype == w.Workers[j].Archetype {
				same += d
				ns++
			} else {
				cross += d
				nc++
			}
		}
	}
	if ns == 0 || nc == 0 {
		t.Skip("not enough workers")
	}
	if same/float64(ns) >= cross/float64(nc) {
		t.Errorf("same-archetype mean centroid distance %.2f >= cross %.2f",
			same/float64(ns), cross/float64(nc))
	}
}

func TestWorkload2TasksNearWorkers(t *testing.T) {
	// The paper attributes workload 2's smaller cost gaps to task and
	// worker distributions being more similar; verify tasks sit closer to
	// worker anchors under Workload2 than Workload1 (same seed).
	meanTaskToAnchor := func(kind Kind) float64 {
		w := Generate(smallParams(kind))
		var sum float64
		var n int
		for _, task := range w.TestTasks[:100] {
			best := -1.0
			for _, wk := range w.Workers {
				for _, a := range wk.Anchors {
					if d := a.Dist(task.Loc); best < 0 || d < best {
						best = d
					}
				}
			}
			sum += best
			n++
		}
		return sum / float64(n)
	}
	d1, d2 := meanTaskToAnchor(Workload1), meanTaskToAnchor(Workload2)
	if d2 >= d1 {
		t.Errorf("workload2 task-anchor distance %.2f >= workload1 %.2f", d2, d1)
	}
}

func TestNearbyPOIs(t *testing.T) {
	w := Generate(smallParams(Workload1))
	pts := w.Workers[0].TrainDays[0].Points
	near := w.NearbyPOIs(pts, 5)
	all := w.NearbyPOIs(pts, 1e9)
	if len(all) != len(w.POIs) {
		t.Errorf("infinite radius returned %d of %d POIs", len(all), len(w.POIs))
	}
	if len(near) > len(all) {
		t.Error("near > all")
	}
	for _, poi := range near {
		found := false
		for _, p := range pts {
			if poi.Loc.Dist(p) <= 5 {
				found = true
				break
			}
		}
		if !found {
			t.Error("POI outside radius returned")
		}
	}
}

func TestDensityIndexFromWorkload(t *testing.T) {
	w := Generate(smallParams(Workload1))
	d := w.DensityIndex()
	if d.Total() != len(w.HistTasks) {
		t.Errorf("density total = %d, want %d", d.Total(), len(w.HistTasks))
	}
}

func TestKindString(t *testing.T) {
	if Workload1.String() == "" || Workload2.String() == "" || Kind(9).String() == "" {
		t.Error("empty kind strings")
	}
}
