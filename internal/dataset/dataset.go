// Package dataset generates the seeded synthetic workloads that stand in
// for the paper's real datasets (see DESIGN.md §2 for the substitution
// rationale):
//
//   - Workload 1 ("porto-like"): taxi-style workers with dense continuous
//     routines driven by per-archetype movement patterns, plus ride-hailing
//     tasks arriving at spatial hotspots (Porto + Didi).
//   - Workload 2 ("gowalla-like"): check-in-style workers that dwell at
//     venues and hop between them, with tasks drawn near the same venue set
//     so worker and task distributions are deliberately similar
//     (Gowalla + Foursquare).
//
// Every quantity is produced deterministically from Params.Seed.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/traj"
)

// Kind selects the workload family.
type Kind int

// The two experimental workloads of Table II.
const (
	Workload1 Kind = iota + 1 // Porto workers + Didi tasks analogue
	Workload2                 // Gowalla workers + Foursquare tasks analogue
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Workload1:
		return "workload1(porto+didi)"
	case Workload2:
		return "workload2(gowalla+foursquare)"
	default:
		return fmt.Sprintf("workload(%d)", int(k))
	}
}

// Params configures workload generation. Zero values are filled with the
// defaults of Defaults().
type Params struct {
	Kind Kind
	Grid geo.Grid
	Seed int64

	NumWorkers  int
	NewWorkers  int // workers that appear only in the test horizon (cold start)
	TrainDays   int
	TestDays    int
	TicksPerDay int

	// NumTestTasks is the number of spatial tasks arriving during the test
	// horizon (the paper sweeps 1K–5K); train-horizon historical tasks are
	// generated at the same daily rate.
	NumTestTasks int

	// ValidMin/ValidMax bound each task's validity period in the paper's
	// 10-minute time units (Table III sweeps [1,2]..[5,6]).
	ValidMin, ValidMax int

	// DetourKM is the worker detour budget d in kilometres.
	DetourKM float64

	// NumHotspots controls the spatial skew of task arrivals.
	NumHotspots int
	// NumPOIs is the size of the synthetic city POI map.
	NumPOIs int
}

// Defaults returns the default experimental setting of Table III scaled to
// laptop size: 60 workers over 8 train + 2 test days, 3K test tasks,
// valid time [3,4] units, detour 6 km.
func Defaults(kind Kind) Params {
	return Params{
		Kind:         kind,
		Grid:         geo.DefaultGrid,
		Seed:         1,
		NumWorkers:   60,
		NewWorkers:   6,
		TrainDays:    8,
		TestDays:     2,
		TicksPerDay:  120,
		NumTestTasks: 3000,
		ValidMin:     3,
		ValidMax:     4,
		DetourKM:     6,
		NumHotspots:  6,
		NumPOIs:      300,
	}
}

// Window is one half-open availability interval [Start, End) in absolute
// test-horizon ticks: the worker is on shift and eligible for assignment
// while Start ≤ tick < End. A zero-width window (Start == End) covers
// nothing.
type Window struct {
	Start, End int
}

// Contains reports whether tick falls inside the window.
func (w Window) Contains(tick int) bool { return tick >= w.Start && tick < w.End }

// Worker is one synthetic crowd worker with per-day routines split into the
// train and test horizons. Test-day routines are the ground truth the
// platform never sees in advance.
type Worker struct {
	ID        int
	Archetype int
	Detour    float64 // cells
	Speed     float64 // cells per tick
	Anchors   []geo.Point
	TrainDays []traj.Routine
	TestDays  []traj.Routine
	// New marks cold-start workers that have no train-horizon history on
	// the platform (their TrainDays hold only the short on-boarding sample
	// used for few-shot adaptation).
	New bool
	// Windows lists the worker's availability shifts over the test horizon,
	// in absolute ticks. The paper's always-on fleets carry none: an empty
	// list means the worker is available the whole horizon. A non-empty list
	// restricts eligibility to the listed intervals (internal/scenario's
	// AvailabilityWindows workloads populate it).
	Windows []Window
}

// AvailableAt reports whether the worker is on shift at the absolute test
// tick. Workers without windows are always available.
func (w *Worker) AvailableAt(tick int) bool {
	if len(w.Windows) == 0 {
		return true
	}
	for _, win := range w.Windows {
		if win.Contains(tick) {
			return true
		}
	}
	return false
}

// BudgetSpec caps what the platform may spend on worker detours per
// assignment batch. When Enabled, the platform charges each issued offer its
// predicted out-and-back detour (assign.EstimatedDetourKM) against a fresh
// PerTickKM allowance every tick, issuing offers in descending
// reward-per-predicted-cost order and holding back the assignments that
// would blow the cap (they stay pending for later batches). The zero value
// disables budgeting entirely.
type BudgetSpec struct {
	Enabled   bool
	PerTickKM float64 // per-tick spend allowance, km of predicted detour
}

// Workload bundles everything an experiment consumes.
type Workload struct {
	Params   Params
	Workers  []Worker
	POIs     []geo.POI
	Hotspots []geo.Point
	// HistTasks are the train-horizon historical task locations that feed
	// the task-assignment-oriented loss (𝒯 of Eq. 7).
	HistTasks []geo.Point
	// TestTasks arrive during the test horizon, ordered by arrival tick.
	TestTasks []assign.Task
	// Budget, when enabled, bounds per-tick platform spend during
	// simulation (internal/scenario's BudgetRewards workloads enable it).
	Budget BudgetSpec
}

// archetype describes one mobility pattern family shared by a subset of
// workers, giving the clustering algorithms real structure to find.
type archetype struct {
	name     string
	speed    float64 // cells/tick
	nAnchors int
	spread   float64 // anchor scatter around the district centre, cells
	noise    float64 // per-tick positional noise, cells
	dwell    int     // ticks spent at an anchor before moving on
}

func archetypes(kind Kind) []archetype {
	if kind == Workload2 {
		// Check-in style: long dwells, slower transitions, tight venues.
		return []archetype{
			{name: "homebody", speed: 0.8, nAnchors: 2, spread: 5, noise: 0.12, dwell: 18},
			{name: "socialite", speed: 1.0, nAnchors: 4, spread: 7, noise: 0.12, dwell: 12},
			{name: "explorer", speed: 1.4, nAnchors: 5, spread: 10, noise: 0.15, dwell: 8},
			{name: "regular", speed: 0.9, nAnchors: 3, spread: 6, noise: 0.12, dwell: 15},
		}
	}
	// Taxi style: fast continuous movement (≈5 cells per 2-minute tick is
	// ~30 km/h), short stops, wide coverage. Speed is what separates the
	// location-only LB baseline from prediction-aware assignment: a fast
	// worker's current location goes stale within a batch or two.
	return []archetype{
		{name: "commuter", speed: 3.5, nAnchors: 3, spread: 8, noise: 0.35, dwell: 4},
		{name: "courier", speed: 6.0, nAnchors: 6, spread: 12, noise: 0.45, dwell: 1},
		{name: "roamer", speed: 4.5, nAnchors: 5, spread: 15, noise: 0.50, dwell: 2},
		{name: "local", speed: 2.5, nAnchors: 4, spread: 6, noise: 0.30, dwell: 3},
	}
}

// Generate builds the workload deterministically from p.Seed.
func Generate(p Params) *Workload {
	if p.Grid.Cols == 0 {
		p.Grid = geo.DefaultGrid
	}
	if p.TicksPerDay <= 0 {
		p.TicksPerDay = 120
	}
	if p.ValidMax < p.ValidMin {
		p.ValidMax = p.ValidMin
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := &Workload{Params: p}

	bounds := p.Grid.Bounds()
	// District centres: one per archetype, spread across the city.
	arcs := archetypes(p.Kind)
	centres := make([]geo.Point, len(arcs))
	for i := range centres {
		centres[i] = geo.Pt(
			bounds.Width()*(0.15+0.7*rng.Float64()),
			bounds.Height()*(0.15+0.7*rng.Float64()),
		)
	}

	// Hotspots: where tasks concentrate. For workload 2 they coincide with
	// the worker districts (similar distributions, per the paper's
	// observation); for workload 1 they are independent city hotspots.
	for i := 0; i < p.NumHotspots; i++ {
		if p.Kind == Workload2 {
			c := centres[i%len(centres)]
			w.Hotspots = append(w.Hotspots, bounds.Clamp(c.Add(geo.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3))))
		} else {
			w.Hotspots = append(w.Hotspots, geo.Pt(
				bounds.Width()*(0.1+0.8*rng.Float64()),
				bounds.Height()*(0.1+0.8*rng.Float64()),
			))
		}
	}

	// POI map: clustered around districts and hotspots with type mixture.
	for i := 0; i < p.NumPOIs; i++ {
		var c geo.Point
		if rng.Float64() < 0.5 && len(w.Hotspots) > 0 {
			c = w.Hotspots[rng.Intn(len(w.Hotspots))]
		} else {
			c = centres[rng.Intn(len(centres))]
		}
		w.POIs = append(w.POIs, geo.POI{
			Loc:  bounds.Clamp(c.Add(geo.Pt(rng.NormFloat64()*4, rng.NormFloat64()*4))),
			Type: geo.POIType(rng.Intn(int(geo.NumPOITypes))),
		})
	}

	// Workers.
	total := p.NumWorkers + p.NewWorkers
	for id := 0; id < total; id++ {
		ai := id % len(arcs)
		arc := arcs[ai]
		wk := Worker{
			ID:        id,
			Archetype: ai,
			Detour:    geo.KMToCells(p.DetourKM),
			Speed:     arc.speed,
			New:       id >= p.NumWorkers,
		}
		for a := 0; a < arc.nAnchors; a++ {
			wk.Anchors = append(wk.Anchors, bounds.Clamp(centres[ai].Add(
				geo.Pt(rng.NormFloat64()*arc.spread, rng.NormFloat64()*arc.spread))))
		}
		trainDays := p.TrainDays
		if wk.New {
			// Cold-start workers contribute only one short on-boarding day.
			trainDays = 1
		}
		for d := 0; d < trainDays; d++ {
			wk.TrainDays = append(wk.TrainDays, dayRoutine(&wk, arc, p, d, rng))
		}
		for d := 0; d < p.TestDays; d++ {
			wk.TestDays = append(wk.TestDays, dayRoutine(&wk, arc, p, p.TrainDays+d, rng))
		}
		w.Workers = append(w.Workers, wk)
	}

	// Historical tasks over the train horizon at the test-horizon daily
	// rate, used only as the loss-weighting distribution 𝒯.
	perDay := 0
	if p.TestDays > 0 {
		perDay = p.NumTestTasks / p.TestDays
	}
	nHist := perDay * p.TrainDays
	for i := 0; i < nHist; i++ {
		w.HistTasks = append(w.HistTasks, taskLocation(w.Hotspots, bounds, rng))
	}

	// Test tasks with Poisson-ish arrivals across the test horizon.
	horizon := p.TestDays * p.TicksPerDay
	for i := 0; i < p.NumTestTasks; i++ {
		arrival := rng.Intn(maxInt(horizon, 1))
		validTicks := (p.ValidMin + rng.Intn(p.ValidMax-p.ValidMin+1)) * traj.TicksPerTimeUnit
		w.TestTasks = append(w.TestTasks, assign.Task{
			ID:       i,
			Loc:      taskLocation(w.Hotspots, bounds, rng),
			Arrival:  arrival,
			Deadline: arrival + validTicks,
		})
	}
	sortTasksByArrival(w.TestTasks)
	return w
}

// dayRoutine simulates one worker-day: visit the worker's anchors in a
// jittered order, dwelling and moving at the archetype's speed with noise.
// day seeds small day-to-day variation so test days are predictable from
// train days without being identical.
func dayRoutine(wk *Worker, arc archetype, p Params, day int, rng *rand.Rand) traj.Routine {
	bounds := p.Grid.Bounds()
	r := traj.Routine{StartTick: 0}
	// Visit order: anchors in base order with occasional swaps.
	order := make([]int, len(wk.Anchors))
	for i := range order {
		order[i] = i
	}
	if len(order) > 2 && rng.Float64() < 0.3 {
		i := 1 + rng.Intn(len(order)-1)
		order[0], order[i] = order[i], order[0]
	}
	pos := wk.Anchors[order[0]].Add(geo.Pt(rng.NormFloat64(), rng.NormFloat64()))
	pos = bounds.Clamp(pos)
	target := 0
	dwell := arc.dwell
	for t := 0; t < p.TicksPerDay; t++ {
		r.Points = append(r.Points, pos)
		goal := wk.Anchors[order[target%len(order)]]
		if pos.Dist(goal) < 1.5 {
			if dwell > 0 {
				dwell--
			} else {
				target++
				dwell = arc.dwell
			}
		} else {
			dir := goal.Sub(pos)
			n := dir.Norm()
			if n > 0 {
				step := wk.Speed
				if step > n {
					step = n
				}
				pos = pos.Add(dir.Scale(step / n))
			}
		}
		pos = bounds.Clamp(pos.Add(geo.Pt(rng.NormFloat64()*arc.noise, rng.NormFloat64()*arc.noise)))
	}
	return r
}

// taskLocation draws a task location around a random hotspot (80%) or
// uniformly (20%).
func taskLocation(hotspots []geo.Point, bounds geo.BBox, rng *rand.Rand) geo.Point {
	if len(hotspots) > 0 && rng.Float64() < 0.8 {
		h := hotspots[rng.Intn(len(hotspots))]
		return bounds.Clamp(h.Add(geo.Pt(rng.NormFloat64()*3, rng.NormFloat64()*3)))
	}
	return geo.Pt(bounds.Min.X+rng.Float64()*bounds.Width(), bounds.Min.Y+rng.Float64()*bounds.Height())
}

func sortTasksByArrival(ts []assign.Task) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Arrival != ts[j].Arrival {
			return ts[i].Arrival < ts[j].Arrival
		}
		return ts[i].ID < ts[j].ID
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NearbyPOIs returns the POIs within radius cells of any point in pts,
// the 𝕍 spatial feature of a worker's learning task.
func (w *Workload) NearbyPOIs(pts []geo.Point, radius float64) []geo.POI {
	var out []geo.POI
	for _, poi := range w.POIs {
		for _, p := range pts {
			if poi.Loc.Dist(p) <= radius {
				out = append(out, poi)
				break
			}
		}
	}
	return out
}

// DensityIndex builds the historical-task density index backing the
// task-assignment-oriented loss.
func (w *Workload) DensityIndex() *geo.DensityIndex {
	d := geo.NewDensityIndex(w.Params.Grid)
	d.AddAll(w.HistTasks)
	return d
}
