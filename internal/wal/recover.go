package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/spatialcrowd/tamp/internal/ckpt"
)

// fileInfo is one segment or snapshot file: its parsed sequence number and
// full path.
type fileInfo struct {
	seq  uint64
	path string
}

// dirScan is the result of walking a log directory once: every valid record
// from the oldest segment on, plus where (if anywhere) the log stops being
// decodable and what repair would fix it.
type dirScan struct {
	dir     string
	segs    []fileInfo // segment files, ascending base sequence
	snaps   []fileInfo // snapshot files, ascending sequence
	minBase uint64     // segs[0] base; 0 when there are no segments
	records [][]byte   // valid records minBase, minBase+1, ...

	torn     *CorruptionError
	tornFile string   // segment to truncate ("" when nothing to truncate)
	tornOff  int64    // length of tornFile's valid prefix
	shelve   []string // files past the corruption, to rename *.corrupt
}

func (s *dirScan) endSeq() uint64 { return s.minBase + uint64(len(s.records)) }

// parseSeqName extracts the sequence number from a "%020d<suffix>" file
// name; ok is false for anything else (temp files, .corrupt shelved files).
func parseSeqName(name, suffix string) (uint64, bool) {
	base, found := strings.CutSuffix(name, suffix)
	if !found || len(base) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scanDir walks every segment of a log directory in sequence order and
// decodes frames until the first byte that fails validation. It never
// returns an error for corruption — only for I/O failures reading the
// directory itself.
func scanDir(dir string) (*dirScan, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return &dirScan{dir: dir}, nil
		}
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	s := &dirScan{dir: dir}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), segSuffix); ok {
			s.segs = append(s.segs, fileInfo{seq, filepath.Join(dir, e.Name())})
		} else if seq, ok := parseSeqName(e.Name(), snapSuffix); ok {
			s.snaps = append(s.snaps, fileInfo{seq, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].seq < s.segs[j].seq })
	sort.Slice(s.snaps, func(i, j int) bool { return s.snaps[i].seq < s.snaps[j].seq })
	if len(s.segs) == 0 {
		return s, nil
	}
	s.minBase = s.segs[0].seq

	next := s.minBase // sequence the next decoded record will get
	for i, seg := range s.segs {
		if seg.seq != next {
			// A hole in the sequence space: everything from here on is
			// unreachable, even if the files themselves parse.
			s.torn = &CorruptionError{File: seg.path, Seq: next,
				Reason: fmt.Sprintf("segment gap: want base %d, found %d", next, seg.seq)}
			s.markShelved(i)
			return s, nil
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		var off int64
		for int(off) < len(data) {
			payload, n, reason := decodeFrame(data[off:])
			if reason != "" {
				s.torn = &CorruptionError{File: seg.path, Offset: off, Seq: next, Reason: reason}
				s.tornFile, s.tornOff = seg.path, off
				s.markShelved(i + 1)
				return s, nil
			}
			s.records = append(s.records, payload)
			next++
			off += n
		}
	}
	return s, nil
}

// decodeFrame validates one [len][crc][payload] frame at the start of data,
// returning the payload copy and bytes consumed, or a non-empty reason why
// the bytes are not a complete valid frame.
func decodeFrame(data []byte) (payload []byte, n int64, reason string) {
	if len(data) < frameHeader {
		return nil, 0, "torn frame header"
	}
	ln := binary.LittleEndian.Uint32(data[0:4])
	crc := binary.LittleEndian.Uint32(data[4:8])
	if ln > maxRecord {
		return nil, 0, fmt.Sprintf("implausible record length %d", ln)
	}
	if uint64(len(data)-frameHeader) < uint64(ln) {
		return nil, 0, "torn record payload"
	}
	body := data[frameHeader : frameHeader+int(ln)]
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, 0, "checksum mismatch"
	}
	return append([]byte(nil), body...), frameHeader + int64(ln), ""
}

// markShelved queues segments from index i on, and the torn segment itself
// when its valid prefix is empty, for renaming out of the sequence space so
// fresh appends cannot collide with their names.
func (s *dirScan) markShelved(i int) {
	if s.tornFile != "" && s.tornOff == 0 {
		s.shelve = append(s.shelve, s.tornFile)
		s.tornFile = ""
	}
	for _, seg := range s.segs[i:] {
		s.shelve = append(s.shelve, seg.path)
	}
}

// readSnapshot decodes a snapshot file, which must hold exactly one valid
// frame. ok is false for torn, corrupt, or trailing-garbage files.
func readSnapshot(path string) (payload []byte, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	payload, n, reason := decodeFrame(data)
	if reason != "" || int(n) != len(data) {
		return nil, false
	}
	return payload, true
}

// recovery assembles a Recovery from the scan. latest selects the newest
// usable snapshot for fast server restart; otherwise the oldest usable
// starting point wins so offline replay sees the longest history.
func (s *dirScan) recovery(latest bool) (*Recovery, error) {
	end := s.endSeq()
	rec := &Recovery{Torn: s.torn}
	if !latest && s.minBase == 0 {
		// Full history is on disk: replay from genesis, no snapshot needed.
		rec.Records = s.records
		return rec, nil
	}
	// Usable snapshots splice onto the retained records: their sequence must
	// fall inside [minBase, end].
	var candidates []fileInfo
	for _, sn := range s.snaps {
		if sn.seq >= s.minBase && sn.seq <= end {
			candidates = append(candidates, sn)
		}
	}
	pick := func(order []fileInfo) bool {
		for _, sn := range order {
			if payload, ok := readSnapshot(sn.path); ok {
				rec.Snapshot = payload
				rec.StartSeq = sn.seq
				rec.Records = s.records[sn.seq-s.minBase:]
				return true
			}
		}
		return false
	}
	if latest {
		rev := make([]fileInfo, len(candidates))
		for i, sn := range candidates {
			rev[len(candidates)-1-i] = sn
		}
		if pick(rev) {
			return rec, nil
		}
	} else if pick(candidates) {
		return rec, nil
	}
	if s.minBase == 0 {
		rec.Records = s.records
		return rec, nil
	}
	return nil, fmt.Errorf("wal: no usable snapshot covers log start (oldest segment base %d)", s.minBase)
}

// repair makes the directory safely appendable after corruption: the torn
// segment is truncated to its valid prefix and unreachable files are
// renamed aside with a .corrupt suffix (kept for postmortems, invisible to
// future scans).
func (s *dirScan) repair() error {
	if s.torn == nil {
		return nil
	}
	if s.tornFile != "" {
		if err := os.Truncate(s.tornFile, s.tornOff); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	for _, path := range s.shelve {
		if err := os.Rename(path, path+".corrupt"); err != nil {
			return fmt.Errorf("wal: shelve corrupt file: %w", err)
		}
	}
	return ckpt.SyncDir(s.dir)
}
