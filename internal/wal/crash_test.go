package wal

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/core"
	"github.com/spatialcrowd/tamp/internal/fault"
)

// crashEvents builds a long valid event sequence: each round registers a
// worker, reports it, submits a task, assigns it, decides the offer, and
// advances the tick.
func crashEvents(rounds int) []core.Event {
	var evs []core.Event
	for i := 1; i <= rounds; i++ {
		evs = append(evs,
			core.WorkerRegistered{WorkerID: i, Detour: 10, Speed: 1, MR: 0.5},
			core.WorkerReported{WorkerID: i, X: float64(i), Y: float64(i % 7)},
			core.TaskSubmitted{TaskID: i, X: float64(i) + 0.5, Y: 1, Deadline: 10 * rounds},
			core.BatchAssigned{Offers: []core.OfferIssued{{OfferID: i, TaskID: i, WorkerID: i}}},
		)
		if i%2 == 0 {
			evs = append(evs, core.OfferAccepted{OfferID: i})
		} else {
			evs = append(evs, core.OfferRejected{OfferID: i})
		}
		evs = append(evs, core.TickAdvanced{})
	}
	return evs
}

func encodeAll(t *testing.T, evs []core.Event) [][]byte {
	t.Helper()
	out := make([][]byte, len(evs))
	for i, ev := range evs {
		b, err := core.EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// stateFrom rebuilds a core.State from a Recovery: decode the snapshot (or
// start fresh) and apply the tail records.
func stateFrom(t *testing.T, rec *Recovery) *core.State {
	t.Helper()
	st := core.NewState()
	if rec.Snapshot != nil {
		var err error
		st, err = core.DecodeSnapshot(rec.Snapshot)
		if err != nil {
			t.Fatalf("decode snapshot: %v", err)
		}
	}
	for i, p := range rec.Records {
		ev, err := core.DecodeEvent(p)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if err := st.Apply(ev); err != nil {
			t.Fatalf("apply recovered record %d: %v", i, err)
		}
	}
	return st
}

// TestCrashReplayEquivalence is the durability contract: kill the process
// at a randomized point inside append or snapshot, restart, and the
// recovered state must be bit-identical (by snapshot digest) to the state
// at the durable prefix; finishing the remaining events must then land on
// exactly the digest an uninterrupted run produces.
func TestCrashReplayEquivalence(t *testing.T) {
	events := crashEvents(30)
	encoded := encodeAll(t, events)

	// Reference digests after every prefix of the event sequence.
	digests := make([]string, len(events)+1)
	ref := core.NewState()
	digests[0] = ref.Digest()
	for i, ev := range events {
		if err := ref.Apply(ev); err != nil {
			t.Fatalf("reference apply %d: %v", i, err)
		}
		digests[i+1] = ref.Digest()
	}
	baseline := digests[len(events)]

	points := []string{HookAppendFrame, HookAppendSync, HookSnapshotWrite, HookSnapshotRename}
	rng := rand.New(rand.NewSource(7))

	for trial := 0; trial < 30; trial++ {
		point := points[rng.Intn(len(points))]
		after := 1 + rng.Intn(len(events))
		snapEvery := 5 + rng.Intn(20)
		t.Run(fmt.Sprintf("trial%02d_%s_hit%d", trial, point, after), func(t *testing.T) {
			dir := t.TempDir()
			crasher := fault.NewCrasher(point, after)

			// Phase 1: run until the injected kill (or clean completion).
			func() {
				defer func() {
					if r := recover(); r != nil && !fault.IsCrash(r) {
						panic(r)
					}
				}()
				l, rec, err := Open(dir, Options{SegmentBytes: 512, Hook: crasher.Hit})
				if err != nil {
					t.Fatal(err)
				}
				st := stateFrom(t, rec)
				for seq := rec.EndSeq(); seq < uint64(len(events)); seq++ {
					if _, err := l.Append(encoded[seq]); err != nil {
						t.Fatalf("append %d: %v", seq, err)
					}
					if err := st.Apply(events[seq]); err != nil {
						t.Fatalf("apply %d: %v", seq, err)
					}
					if (seq+1)%uint64(snapEvery) == 0 {
						if err := l.Snapshot(st.EncodeSnapshot(), seq+1); err != nil {
							t.Fatalf("snapshot @%d: %v", seq+1, err)
						}
					}
				}
				l.Close()
			}()

			// Phase 2: restart. The recovered state must sit exactly at the
			// durable prefix of the event sequence.
			l, rec, err := Open(dir, Options{SegmentBytes: 512})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			end := rec.EndSeq()
			if end > uint64(len(events)) {
				t.Fatalf("recovered %d events, only %d written", end, len(events))
			}
			st := stateFrom(t, rec)
			if got := st.Digest(); got != digests[end] {
				t.Fatalf("recovered state at seq %d diverges from reference prefix", end)
			}
			if l.Seq() != st.Applied {
				t.Fatalf("log seq %d != state applied %d", l.Seq(), st.Applied)
			}

			// Phase 3: finish the run; final state must be bit-identical to
			// the uninterrupted baseline.
			for seq := end; seq < uint64(len(events)); seq++ {
				if _, err := l.Append(encoded[seq]); err != nil {
					t.Fatalf("resume append %d: %v", seq, err)
				}
				if err := st.Apply(events[seq]); err != nil {
					t.Fatalf("resume apply %d: %v", seq, err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if st.Digest() != baseline {
				t.Fatal("resumed run diverged from uninterrupted baseline")
			}

			// And a cold rebuild purely from disk agrees too.
			cold, err := ReadLog(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got := stateFrom(t, cold).Digest(); got != baseline {
				t.Fatal("cold replay from disk diverged from baseline")
			}
		})
	}
}
