package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/obs"
)

// payloads builds n distinct record payloads of varied sizes.
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%37)))
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return l, rec
}

func appendAll(t *testing.T, l *Log, recs [][]byte) {
	t.Helper()
	for i, p := range recs {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		_ = seq
	}
}

func sameRecords(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(25)

	l, rec := mustOpen(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Torn != nil {
		t.Fatalf("fresh log recovery = %+v", rec)
	}
	appendAll(t, l, recs[:10])
	if l.Seq() != 10 {
		t.Fatalf("seq = %d, want 10", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("after close")); err == nil {
		t.Fatal("append after close succeeded")
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	if rec2.Torn != nil {
		t.Fatalf("clean log reported torn: %v", rec2.Torn)
	}
	if rec2.StartSeq != 0 || l2.Seq() != 10 {
		t.Fatalf("start=%d seq=%d", rec2.StartSeq, l2.Seq())
	}
	sameRecords(t, rec2.Records, recs[:10])
	appendAll(t, l2, recs[10:])
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := ReadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, rd.Records, recs)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(40)
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	_, rec := mustOpen(t, dir, Options{SegmentBytes: 128})
	sameRecords(t, rec.Records, recs)
}

func TestSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(15)
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, recs[:10])
	if err := l.Snapshot([]byte("state@10"), 10); err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, recs[10:])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Open prefers the newest snapshot: recovery is snapshot + 5-record tail.
	l2, rec := mustOpen(t, dir, Options{})
	if string(rec.Snapshot) != "state@10" || rec.StartSeq != 10 {
		t.Fatalf("snapshot = %q @ %d", rec.Snapshot, rec.StartSeq)
	}
	sameRecords(t, rec.Records, recs[10:])
	if l2.Seq() != 15 {
		t.Fatalf("seq = %d", l2.Seq())
	}
	l2.Close()

	// ReadLog prefers full history: genesis segment is present, so replay
	// sees every record and no snapshot.
	rd, err := ReadLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Snapshot != nil || rd.StartSeq != 0 {
		t.Fatalf("readlog start = %q @ %d", rd.Snapshot, rd.StartSeq)
	}
	sameRecords(t, rd.Records, recs)

	// Snapshot ahead of the log is refused.
	l3, _ := mustOpen(t, dir, Options{})
	if err := l3.Snapshot([]byte("bogus"), 99); err == nil {
		t.Fatal("snapshot ahead of log accepted")
	}
	l3.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(8)
	l, _ := mustOpen(t, dir, Options{})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	// Simulate a crash mid-append: a frame header with no payload.
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec := mustOpen(t, dir, Options{})
	if rec.Torn == nil {
		t.Fatal("torn tail not reported")
	}
	if rec.Torn.Seq != 8 || rec.Torn.Reason != "torn frame header" {
		t.Fatalf("torn = %+v", rec.Torn)
	}
	sameRecords(t, rec.Records, recs)
	// The log is appendable again and a further reopen is clean.
	appendAll(t, l2, [][]byte{[]byte("after repair")})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := mustOpen(t, dir, Options{})
	if rec3.Torn != nil {
		t.Fatalf("repair did not stick: %v", rec3.Torn)
	}
	sameRecords(t, rec3.Records, append(append([][]byte{}, recs...), []byte("after repair")))
}

// TestWALMetricsGolden pins the exported names and shapes of the WAL
// metrics: append counter, fsync histogram, snapshot size gauge.
func TestWALMetricsGolden(t *testing.T) {
	reg := obs.NewRegistry()
	epoch := time.Unix(1700000000, 0)
	reg.SetClock(func() time.Time { return epoch })

	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Registry: reg})
	appendAll(t, l, payloads(3))
	if err := l.Snapshot([]byte("snapshot-bytes!"), 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	dump := reg.Dump()
	for _, line := range []string{
		`# TYPE tamp_wal_appends_total counter`,
		`tamp_wal_appends_total 3`,
		`# TYPE tamp_wal_fsync_seconds histogram`,
		`tamp_wal_fsync_seconds_count 3`,
		`tamp_wal_fsync_seconds_sum 0`,
		`# TYPE tamp_wal_snapshot_bytes gauge`,
		`tamp_wal_snapshot_bytes 15`,
	} {
		if !strings.Contains(dump, line+"\n") {
			t.Fatalf("exposition missing %q:\n%s", line, dump)
		}
	}
}
