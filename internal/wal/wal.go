// Package wal is a write-ahead event log with snapshots: the durability
// layer under the platform server's state machine (internal/core) and the
// trace format behind offline assigner replay (internal/replay).
//
// Layout: a log directory holds append-only segment files named
// %020d.wal — the number is the sequence of the segment's first record —
// plus snapshot files named %020d.snap, where the number is how many events
// the snapshotted state had applied (i.e. the sequence recovery resumes
// from). Every record and snapshot payload is framed as
//
//	[u32le length][u32le CRC-32C of payload][payload]
//
// so recovery can always tell a complete record from a torn tail without
// trusting file sizes. Snapshots are written with the internal/ckpt
// temp-file + atomic-rename idiom and the directory is fsynced after every
// rename or segment creation, so a crash at any instant leaves either the
// old durable state or the new one — never a half-written file that parses.
//
// Recovery never panics on a damaged log: it returns the longest valid
// prefix and a typed *CorruptionError describing the first bad byte. Open
// additionally repairs the directory (truncates the torn tail, shelves
// unreachable segments as .corrupt) so subsequent appends extend the valid
// prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/spatialcrowd/tamp/internal/ckpt"
	"github.com/spatialcrowd/tamp/internal/obs"
)

// Crash-point names for fault injection (see internal/fault.Crasher). The
// append hooks fire inside the frame write — between header and payload, and
// between the full frame and its fsync — and the snapshot hooks bracket the
// temp-file write and the atomic rename.
const (
	HookAppendFrame    = "wal.append.frame"
	HookAppendSync     = "wal.append.sync"
	HookSnapshotWrite  = "wal.snapshot.write"
	HookSnapshotRename = "wal.snapshot.rename"
)

const (
	frameHeader = 8
	// maxRecord bounds a frame's declared length so a corrupt header cannot
	// drive a giant allocation.
	maxRecord = 64 << 20

	segSuffix  = ".wal"
	snapSuffix = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// putFrameHeader fills an 8-byte [len][crc] header for payload.
func putFrameHeader(hdr []byte, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
}

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one exceeds this
	// size (default 4 MiB).
	SegmentBytes int64
	// SyncEvery fsyncs the active segment every N appends (default 1: every
	// append is durable before it is acknowledged). Close and Snapshot always
	// flush regardless.
	SyncEvery int
	// Registry receives the WAL metrics (tamp_wal_appends_total,
	// tamp_wal_fsync_seconds, tamp_wal_snapshot_bytes). Nil uses obs.Default.
	Registry *obs.Registry
	// Hook, when non-nil, is called at the named crash points; the
	// fault-injection tests arm a fault.Crasher here to kill the process at
	// exact positions inside append and snapshot.
	Hook func(point string)
}

// CorruptionError describes the first undecodable byte of a log — a torn
// tail after a crash, a flipped bit, or a missing segment. Recovery data up
// to Seq is intact.
type CorruptionError struct {
	File   string // offending file (or the file a gap follows)
	Offset int64  // byte offset of the bad frame within File
	Seq    uint64 // first sequence number lost
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: %s at %s+%d (seq %d)", e.Reason, filepath.Base(e.File), e.Offset, e.Seq)
}

// Recovery is what a log directory yields: the newest usable snapshot (nil
// when recovery starts from genesis), the records from StartSeq on, and a
// description of the torn tail if the log did not end cleanly.
type Recovery struct {
	Snapshot []byte
	StartSeq uint64   // sequence of Records[0]; equals the snapshot's seq
	Records  [][]byte // event payloads StartSeq, StartSeq+1, ...
	Torn     *CorruptionError
}

// EndSeq is the sequence number one past the last recovered record.
func (r *Recovery) EndSeq() uint64 { return r.StartSeq + uint64(len(r.Records)) }

// Log is an open write-ahead log. Methods are not safe for concurrent use;
// the owner serializes (the server appends under its state mutex).
type Log struct {
	dir  string
	opts Options

	f        *os.File // active segment (nil until the first append)
	size     int64
	seq      uint64 // next sequence number to assign
	unsynced int
	closed   bool

	appendsC   *obs.Counter
	fsyncH     *obs.Histogram
	snapBytesG *obs.Gauge
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 1
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	return opts
}

func (l *Log) hook(point string) {
	if l.opts.Hook != nil {
		l.opts.Hook(point)
	}
}

// Open opens (creating if needed) the log in dir, recovers its contents,
// and repairs any damage so the log is appendable: the torn tail of the
// last valid segment is truncated away and segments past a corruption are
// renamed to <name>.corrupt. The returned Recovery holds everything needed
// to rebuild state: snapshot + tail records. A damaged log is not an error
// — Recovery.Torn reports what was dropped.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	scan, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	rec, err := scan.recovery(true)
	if err != nil {
		return nil, nil, err
	}
	if err := scan.repair(); err != nil {
		return nil, nil, err
	}
	o := opts.withDefaults()
	l := &Log{
		dir:        dir,
		opts:       o,
		seq:        scan.endSeq(),
		appendsC:   o.Registry.Counter("tamp_wal_appends_total"),
		fsyncH:     o.Registry.Histogram("tamp_wal_fsync_seconds", obs.DefSecondsBuckets),
		snapBytesG: o.Registry.Gauge("tamp_wal_snapshot_bytes"),
	}
	// Re-open the last segment for appending only when the log ended
	// cleanly; after a repair (or on a fresh log) the next append starts a
	// new segment based at the recovered end sequence.
	if n := len(scan.segs); n > 0 && scan.torn == nil {
		last := scan.segs[n-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		l.f, l.size = f, st.Size()
	}
	return l, rec, nil
}

// ReadLog reads a log directory without modifying it, preferring the
// longest available history: when the segment containing sequence 0 is
// still present the whole run is returned with no snapshot, so offline
// replay sees every batch from genesis.
func ReadLog(dir string) (*Recovery, error) {
	scan, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	return scan.recovery(false)
}

// Seq returns the next sequence number Append will assign — equivalently,
// the number of records durably recovered plus those appended since.
func (l *Log) Seq() uint64 { return l.seq }

// Append writes one record and returns its sequence number. With the
// default SyncEvery=1 the record is fsynced before Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, errors.New("wal: append to closed log")
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), maxRecord)
	}
	if l.f == nil || (l.size > 0 && l.size+frameHeader+int64(len(payload)) > l.opts.SegmentBytes) {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeader]byte
	putFrameHeader(hdr[:], payload)
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.hook(HookAppendFrame)
	if _, err := l.f.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.hook(HookAppendSync)
	l.size += frameHeader + int64(len(payload))
	seq := l.seq
	l.seq++
	l.unsynced++
	l.appendsC.Inc()
	if l.unsynced >= l.opts.SyncEvery {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync fsyncs the active segment.
func (l *Log) Sync() error {
	if l.f == nil || l.unsynced == 0 {
		return nil
	}
	start := l.opts.Registry.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncH.Observe(l.opts.Registry.Now().Sub(start).Seconds())
	l.unsynced = 0
	return nil
}

// rotate seals the active segment and starts a new one whose base is the
// next sequence number.
func (l *Log) rotate() error {
	if l.f != nil {
		if err := l.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
	}
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", l.seq, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := ckpt.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, 0
	return nil
}

// Snapshot records the state that has applied the first seq records. The
// log is synced first so a snapshot never claims records the log could
// still lose; the snapshot file lands via temp-file + atomic rename, so a
// crash mid-snapshot leaves the previous one intact.
func (l *Log) Snapshot(payload []byte, seq uint64) error {
	if l.closed {
		return errors.New("wal: snapshot on closed log")
	}
	if seq > l.seq {
		return fmt.Errorf("wal: snapshot seq %d ahead of log seq %d", seq, l.seq)
	}
	if err := l.Sync(); err != nil {
		return err
	}
	l.hook(HookSnapshotWrite)
	path := filepath.Join(l.dir, fmt.Sprintf("%020d%s", seq, snapSuffix))
	err := ckpt.WriteFileAtomicPre(path, func(w io.Writer) error {
		var hdr [frameHeader]byte
		putFrameHeader(hdr[:], payload)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	}, func() { l.hook(HookSnapshotRename) })
	if err != nil {
		return err
	}
	l.snapBytesG.Set(float64(len(payload)))
	return nil
}

// Close flushes and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	err := l.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
