package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment frames the given payloads the way Append would.
func buildSegment(recs [][]byte) []byte {
	var out []byte
	for _, p := range recs {
		var hdr [frameHeader]byte
		putFrameHeader(hdr[:], p)
		out = append(out, hdr[:]...)
		out = append(out, p...)
	}
	return out
}

// openRaw writes data as segment 0 of a fresh directory and recovers it.
func openRaw(t testing.TB, data []byte) (*Log, *Recovery, string) {
	t.Helper()
	dir := t.TempDir()
	seg := filepath.Join(dir, fmt.Sprintf("%020d%s", 0, segSuffix))
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec, dir
}

// TestCorruptionBitFlips flips every bit of a valid multi-record segment,
// one at a time, and requires recovery to (a) never panic, (b) return a
// prefix of the original records, and (c) report a typed corruption error
// whenever anything was lost.
func TestCorruptionBitFlips(t *testing.T) {
	recs := payloads(12)
	clean := buildSegment(recs)
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit += 3 {
			data := append([]byte(nil), clean...)
			data[off] ^= 1 << bit
			l, rec, _ := openRaw(t, data)
			if len(rec.Records) > len(recs) {
				t.Fatalf("flip @%d.%d: produced %d records from %d", off, bit, len(rec.Records), len(recs))
			}
			for i, p := range rec.Records {
				// A flip inside record i's payload that still checksums is
				// impossible; every surviving record must match the original.
				if string(p) != string(recs[i]) {
					t.Fatalf("flip @%d.%d: record %d altered silently", off, bit, i)
				}
			}
			if len(rec.Records) < len(recs) && rec.Torn == nil {
				t.Fatalf("flip @%d.%d: lost records without a corruption report", off, bit)
			}
			l.Close()
		}
	}
}

// TestCorruptionTruncations cuts a valid segment at every byte length and
// requires recovery of exactly the records that fit.
func TestCorruptionTruncations(t *testing.T) {
	recs := payloads(10)
	clean := buildSegment(recs)
	for cut := 0; cut <= len(clean); cut++ {
		// How many complete frames fit in the first cut bytes, and whether
		// the cut lands exactly on a frame boundary.
		complete, end := 0, 0
		for _, p := range recs {
			if next := end + frameHeader + len(p); next <= cut {
				end = next
				complete++
			} else {
				break
			}
		}
		l, rec, _ := openRaw(t, clean[:cut])
		if len(rec.Records) != complete {
			t.Fatalf("cut @%d: recovered %d records, want %d", cut, len(rec.Records), complete)
		}
		if cut == end && rec.Torn != nil {
			t.Fatalf("cut @%d: clean boundary reported torn: %v", cut, rec.Torn)
		}
		if cut != end && rec.Torn == nil {
			t.Fatalf("cut @%d: torn tail not reported", cut)
		}
		l.Close()
	}
}

// FuzzRecover feeds arbitrary bytes to recovery as a segment file. The
// invariants: Open never panics, never errors on corrupt contents, the log
// stays appendable, and a second Open of the repaired directory is clean
// and agrees on the record count.
func FuzzRecover(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildSegment(payloads(3)))
	f.Add(buildSegment(payloads(3))[:20])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	func() {
		seg := buildSegment(payloads(2))
		seg[5] ^= 0x40
		f.Add(seg)
	}()
	f.Fuzz(func(t *testing.T, data []byte) {
		l, rec, dir := openRaw(t, data)
		n := len(rec.Records)
		if rec.StartSeq != 0 {
			t.Fatalf("no snapshot present but start = %d", rec.StartSeq)
		}
		if _, err := l.Append([]byte("still appendable")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rec2.Torn != nil {
			t.Fatalf("second open still torn: %v", rec2.Torn)
		}
		if len(rec2.Records) != n+1 {
			t.Fatalf("second open: %d records, want %d", len(rec2.Records), n+1)
		}
		if string(rec2.Records[n]) != "still appendable" {
			t.Fatal("appended record lost")
		}
		l2.Close()
	})
}
