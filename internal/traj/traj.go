// Package traj models worker mobility routines and the fixed-length
// trajectory samples the mobility prediction models are trained on.
//
// A Routine (Def. 2) is a series of locations with timestamps describing one
// worker's movement. Time is discrete: one tick is the platform's batch
// window (2 minutes in the paper's setting), and routines carry one location
// per tick.
package traj

import (
	"fmt"
	"math"

	"github.com/spatialcrowd/tamp/internal/geo"
)

// TicksPerTimeUnit converts the paper's "time unit" (10 minutes) into ticks
// (one 2-minute assignment batch per tick).
const TicksPerTimeUnit = 5

// Stop is one timestamped location on a routine.
type Stop struct {
	Loc  geo.Point
	Tick int
}

// Routine is a worker's movement trace: locations at consecutive ticks
// beginning at StartTick. It is the r = {(l₁,t₁), …} of Def. 2 with the
// timestamps made implicit by regular sampling.
type Routine struct {
	StartTick int
	Points    []geo.Point
}

// Len returns the number of points on r.
func (r Routine) Len() int { return len(r.Points) }

// EndTick returns the tick of the last point, or StartTick-1 when empty.
func (r Routine) EndTick() int { return r.StartTick + len(r.Points) - 1 }

// At returns the location at the given tick. Ticks before the routine start
// clamp to the first point and ticks past the end clamp to the last, which
// models a worker idling at their endpoint.
func (r Routine) At(tick int) geo.Point {
	if len(r.Points) == 0 {
		return geo.Point{}
	}
	i := tick - r.StartTick
	if i < 0 {
		i = 0
	}
	if i >= len(r.Points) {
		i = len(r.Points) - 1
	}
	return r.Points[i]
}

// Slice returns the sub-routine covering ticks [from, to).
// Out-of-range ticks are clipped.
func (r Routine) Slice(from, to int) Routine {
	lo := from - r.StartTick
	hi := to - r.StartTick
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.Points) {
		hi = len(r.Points)
	}
	if lo >= hi {
		return Routine{StartTick: from}
	}
	return Routine{StartTick: r.StartTick + lo, Points: r.Points[lo:hi]}
}

// Length returns the total travelled distance along r in cells.
func (r Routine) Length() float64 {
	var d float64
	for i := 1; i < len(r.Points); i++ {
		d += r.Points[i].Dist(r.Points[i-1])
	}
	return d
}

// Stops materialises the implicit timestamps of r.
func (r Routine) Stops() []Stop {
	out := make([]Stop, len(r.Points))
	for i, p := range r.Points {
		out[i] = Stop{Loc: p, Tick: r.StartTick + i}
	}
	return out
}

// String implements fmt.Stringer.
func (r Routine) String() string {
	return fmt.Sprintf("routine[t=%d..%d, %d pts]", r.StartTick, r.EndTick(), len(r.Points))
}

// Sample is one supervised training pair for mobility prediction (Def. 3):
// In holds seq_in consecutive locations and Out the seq_out locations that
// immediately follow.
type Sample struct {
	In  []geo.Point
	Out []geo.Point
}

// ExtractSamples slides a window over r and returns every
// (seq_in, seq_out) pair, advancing by stride points between samples.
// A stride of 0 is treated as 1.
func ExtractSamples(r Routine, seqIn, seqOut, stride int) []Sample {
	return ExtractSamplesInto(nil, r, seqIn, seqOut, stride)
}

// ExtractSamplesInto appends the routine's samples to dst and returns it,
// letting per-worker hot loops (adaptation, evaluation) reuse one sample
// slice instead of reallocating it every call. Samples reference r.Points
// directly, exactly like ExtractSamples.
func ExtractSamplesInto(dst []Sample, r Routine, seqIn, seqOut, stride int) []Sample {
	if seqIn <= 0 || seqOut <= 0 || len(r.Points) < seqIn+seqOut {
		return dst
	}
	if stride <= 0 {
		stride = 1
	}
	for i := 0; i+seqIn+seqOut <= len(r.Points); i += stride {
		dst = append(dst, Sample{
			In:  r.Points[i : i+seqIn],
			Out: r.Points[i+seqIn : i+seqIn+seqOut],
		})
	}
	return dst
}

// ExtractSamplesMulti extracts samples from several routines (e.g. one per
// historical day) and concatenates them.
func ExtractSamplesMulti(rs []Routine, seqIn, seqOut, stride int) []Sample {
	var out []Sample
	for _, r := range rs {
		out = append(out, ExtractSamples(r, seqIn, seqOut, stride)...)
	}
	return out
}

// Dataset is the per-worker training set 𝔻 of Def. 3 split into the support
// and query halves that meta-learning adapts and evaluates on.
type Dataset struct {
	Support []Sample
	Query   []Sample
}

// Split partitions samples into a Dataset, placing the given fraction
// (clamped to [0,1]) into Support using an interleaved assignment so both
// halves cover the whole time range rather than disjoint prefixes.
func Split(samples []Sample, supportFrac float64) Dataset {
	if supportFrac < 0 {
		supportFrac = 0
	}
	if supportFrac > 1 {
		supportFrac = 1
	}
	var d Dataset
	if len(samples) == 0 {
		return d
	}
	// Interleave: keep a running quota so the split is deterministic and
	// proportional for any length.
	var taken float64
	for i, s := range samples {
		want := supportFrac * float64(i+1)
		if taken+0.5 < want {
			d.Support = append(d.Support, s)
			taken++
		} else {
			d.Query = append(d.Query, s)
		}
	}
	// Never leave a non-empty dataset with an empty side when both are
	// requested: adaptation and evaluation each need at least one sample.
	if supportFrac > 0 && len(d.Support) == 0 {
		d.Support = append(d.Support, d.Query[0])
		d.Query = d.Query[1:]
	}
	if supportFrac < 1 && len(d.Query) == 0 && len(d.Support) > 1 {
		d.Query = append(d.Query, d.Support[len(d.Support)-1])
		d.Support = d.Support[:len(d.Support)-1]
	}
	return d
}

// Size returns the total number of samples in d.
func (d Dataset) Size() int { return len(d.Support) + len(d.Query) }

// AllPoints returns every input and output location in d, used for
// distribution similarity between learning tasks.
func (d Dataset) AllPoints() []geo.Point {
	var out []geo.Point
	for _, s := range d.Support {
		out = append(out, s.In...)
		out = append(out, s.Out...)
	}
	for _, s := range d.Query {
		out = append(out, s.In...)
		out = append(out, s.Out...)
	}
	return out
}

// Normalizer maps grid coordinates to the zero-centred unit scale the
// neural models train on, and back. Scaling by the grid half-extent keeps
// inputs roughly in [-1, 1], which the LSTM gates need to avoid saturation.
type Normalizer struct {
	CenterX, CenterY float64
	Scale            float64
}

// NewNormalizer builds a Normalizer for grid g.
func NewNormalizer(g geo.Grid) Normalizer {
	b := g.Bounds()
	scale := math.Max(b.Width(), b.Height()) / 2
	if scale == 0 {
		scale = 1
	}
	c := b.Center()
	return Normalizer{CenterX: c.X, CenterY: c.Y, Scale: scale}
}

// Norm maps a grid point to model space.
func (n Normalizer) Norm(p geo.Point) geo.Point {
	return geo.Point{X: (p.X - n.CenterX) / n.Scale, Y: (p.Y - n.CenterY) / n.Scale}
}

// Denorm maps a model-space point back to grid coordinates.
func (n Normalizer) Denorm(p geo.Point) geo.Point {
	return geo.Point{X: p.X*n.Scale + n.CenterX, Y: p.Y*n.Scale + n.CenterY}
}

// NormSample maps both sides of s to model space.
func (n Normalizer) NormSample(s Sample) Sample {
	in := make([]geo.Point, len(s.In))
	for i, p := range s.In {
		in[i] = n.Norm(p)
	}
	out := make([]geo.Point, len(s.Out))
	for i, p := range s.Out {
		out[i] = n.Norm(p)
	}
	return Sample{In: in, Out: out}
}
