package traj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func line(start int, pts ...float64) Routine {
	r := Routine{StartTick: start}
	for i := 0; i+1 < len(pts); i += 2 {
		r.Points = append(r.Points, geo.Pt(pts[i], pts[i+1]))
	}
	return r
}

func TestRoutineAtClamping(t *testing.T) {
	r := line(10, 0, 0, 1, 0, 2, 0)
	if got := r.At(9); got != geo.Pt(0, 0) {
		t.Errorf("At before start = %v", got)
	}
	if got := r.At(10); got != geo.Pt(0, 0) {
		t.Errorf("At(10) = %v", got)
	}
	if got := r.At(11); got != geo.Pt(1, 0) {
		t.Errorf("At(11) = %v", got)
	}
	if got := r.At(12); got != geo.Pt(2, 0) {
		t.Errorf("At(12) = %v", got)
	}
	if got := r.At(100); got != geo.Pt(2, 0) {
		t.Errorf("At past end = %v", got)
	}
}

func TestRoutineAtEmpty(t *testing.T) {
	var r Routine
	if got := r.At(5); got != (geo.Point{}) {
		t.Errorf("empty At = %v", got)
	}
	if r.Len() != 0 || r.EndTick() != -1 {
		t.Errorf("empty Len/EndTick = %d/%d", r.Len(), r.EndTick())
	}
}

func TestRoutineSlice(t *testing.T) {
	r := line(5, 0, 0, 1, 1, 2, 2, 3, 3)
	s := r.Slice(6, 8)
	if s.StartTick != 6 || s.Len() != 2 {
		t.Fatalf("Slice = %v", s)
	}
	if s.Points[0] != geo.Pt(1, 1) || s.Points[1] != geo.Pt(2, 2) {
		t.Errorf("Slice points = %v", s.Points)
	}
	if got := r.Slice(0, 100); got.Len() != 4 {
		t.Errorf("over-wide slice len = %d", got.Len())
	}
	if got := r.Slice(100, 200); got.Len() != 0 {
		t.Errorf("out-of-range slice len = %d", got.Len())
	}
	if got := r.Slice(8, 6); got.Len() != 0 {
		t.Errorf("inverted slice len = %d", got.Len())
	}
}

func TestRoutineLength(t *testing.T) {
	r := line(0, 0, 0, 3, 4, 3, 4)
	if got := r.Length(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := (Routine{}).Length(); got != 0 {
		t.Errorf("empty Length = %v", got)
	}
}

func TestRoutineStops(t *testing.T) {
	r := line(7, 1, 2, 3, 4)
	stops := r.Stops()
	if len(stops) != 2 {
		t.Fatalf("Stops len = %d", len(stops))
	}
	if stops[0] != (Stop{Loc: geo.Pt(1, 2), Tick: 7}) {
		t.Errorf("stop 0 = %v", stops[0])
	}
	if stops[1] != (Stop{Loc: geo.Pt(3, 4), Tick: 8}) {
		t.Errorf("stop 1 = %v", stops[1])
	}
}

func TestExtractSamples(t *testing.T) {
	r := line(0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0)
	got := ExtractSamples(r, 2, 1, 1)
	if len(got) != 3 {
		t.Fatalf("samples = %d, want 3", len(got))
	}
	s := got[1]
	if s.In[0] != geo.Pt(1, 0) || s.In[1] != geo.Pt(2, 0) || s.Out[0] != geo.Pt(3, 0) {
		t.Errorf("sample 1 = %+v", s)
	}
}

func TestExtractSamplesStride(t *testing.T) {
	r := line(0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0)
	if got := ExtractSamples(r, 1, 1, 2); len(got) != 3 {
		t.Errorf("stride-2 samples = %d, want 3", len(got))
	}
	// Stride 0 behaves as stride 1.
	if a, b := ExtractSamples(r, 1, 1, 0), ExtractSamples(r, 1, 1, 1); len(a) != len(b) {
		t.Errorf("stride-0 samples = %d, stride-1 = %d", len(a), len(b))
	}
}

func TestExtractSamplesDegenerate(t *testing.T) {
	r := line(0, 0, 0, 1, 0)
	if got := ExtractSamples(r, 2, 1, 1); got != nil {
		t.Errorf("too-short routine produced %d samples", len(got))
	}
	if got := ExtractSamples(r, 0, 1, 1); got != nil {
		t.Errorf("seqIn=0 produced samples")
	}
	if got := ExtractSamples(r, 1, 0, 1); got != nil {
		t.Errorf("seqOut=0 produced samples")
	}
}

func TestExtractSamplesMulti(t *testing.T) {
	rs := []Routine{
		line(0, 0, 0, 1, 0, 2, 0),
		line(0, 5, 5, 6, 6, 7, 7),
	}
	got := ExtractSamplesMulti(rs, 1, 1, 1)
	if len(got) != 4 {
		t.Errorf("multi samples = %d, want 4", len(got))
	}
}

func TestSplitProportions(t *testing.T) {
	samples := make([]Sample, 100)
	d := Split(samples, 0.7)
	if len(d.Support) != 70 || len(d.Query) != 30 {
		t.Errorf("split = %d/%d, want 70/30", len(d.Support), len(d.Query))
	}
	if d.Size() != 100 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestSplitNeverEmptySides(t *testing.T) {
	f := func(n uint8, frac float64) bool {
		if math.IsNaN(frac) {
			return true
		}
		samples := make([]Sample, int(n%50)+2)
		d := Split(samples, frac)
		if d.Size() != len(samples) {
			return false
		}
		ef := frac
		if ef < 0 {
			ef = 0
		}
		if ef > 1 {
			ef = 1
		}
		if ef > 0 && len(d.Support) == 0 {
			return false
		}
		if ef < 1 && len(d.Query) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitEmpty(t *testing.T) {
	d := Split(nil, 0.5)
	if d.Size() != 0 {
		t.Errorf("empty split size = %d", d.Size())
	}
}

func TestDatasetAllPoints(t *testing.T) {
	d := Dataset{
		Support: []Sample{{In: []geo.Point{geo.Pt(1, 1)}, Out: []geo.Point{geo.Pt(2, 2)}}},
		Query:   []Sample{{In: []geo.Point{geo.Pt(3, 3)}, Out: []geo.Point{geo.Pt(4, 4)}}},
	}
	pts := d.AllPoints()
	if len(pts) != 4 {
		t.Fatalf("AllPoints len = %d", len(pts))
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n := NewNormalizer(geo.DefaultGrid)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		p := geo.Pt(rng.Float64()*100, rng.Float64()*50)
		q := n.Denorm(n.Norm(p))
		if p.Dist(q) > 1e-9 {
			t.Fatalf("round trip moved %v to %v", p, q)
		}
	}
}

func TestNormalizerRange(t *testing.T) {
	n := NewNormalizer(geo.DefaultGrid)
	corners := []geo.Point{geo.Pt(0, 0), geo.Pt(100, 50), geo.Pt(0, 50), geo.Pt(100, 0)}
	for _, c := range corners {
		q := n.Norm(c)
		if math.Abs(q.X) > 1.0001 || math.Abs(q.Y) > 1.0001 {
			t.Errorf("Norm(%v) = %v outside [-1,1]", c, q)
		}
	}
}

func TestNormSample(t *testing.T) {
	n := NewNormalizer(geo.DefaultGrid)
	s := Sample{In: []geo.Point{geo.Pt(50, 25)}, Out: []geo.Point{geo.Pt(100, 50)}}
	ns := n.NormSample(s)
	if ns.In[0].Dist(geo.Pt(0, 0)) > 1e-12 {
		t.Errorf("centre should map to origin, got %v", ns.In[0])
	}
	if ns.Out[0].Dist(geo.Pt(1, 0.5)) > 1e-12 {
		t.Errorf("corner mapped to %v", ns.Out[0])
	}
	// Original untouched.
	if s.In[0] != geo.Pt(50, 25) {
		t.Error("NormSample mutated input")
	}
}
