package traj

import "github.com/spatialcrowd/tamp/internal/geo"

// Simplify reduces a routine's points with the Ramer–Douglas–Peucker
// algorithm: points farther than epsilon (cells) from the chord between
// kept neighbours are retained. Useful when ingesting dense GPS exports
// before feature extraction. The first and last points are always kept;
// routines of fewer than three points return unchanged copies.
//
// Note the result is no longer regularly sampled; use it for spatial
// features (Sim_d, POI lookups), not as model training input.
func Simplify(r Routine, epsilon float64) Routine {
	out := Routine{StartTick: r.StartTick}
	if len(r.Points) < 3 || epsilon <= 0 {
		out.Points = append(out.Points, r.Points...)
		return out
	}
	keep := make([]bool, len(r.Points))
	keep[0], keep[len(r.Points)-1] = true, true
	rdp(r.Points, 0, len(r.Points)-1, epsilon, keep)
	for i, k := range keep {
		if k {
			out.Points = append(out.Points, r.Points[i])
		}
	}
	return out
}

func rdp(pts []geo.Point, lo, hi int, eps float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	var maxD float64
	maxI := -1
	for i := lo + 1; i < hi; i++ {
		if d := perpDist(pts[i], pts[lo], pts[hi]); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD > eps {
		keep[maxI] = true
		rdp(pts, lo, maxI, eps, keep)
		rdp(pts, maxI, hi, eps, keep)
	}
}

// perpDist is the distance from p to the segment a-b.
func perpDist(p, a, b geo.Point) float64 {
	ab := b.Sub(a)
	den := ab.Norm()
	if den == 0 {
		return p.Dist(a)
	}
	t := (p.Sub(a).X*ab.X + p.Sub(a).Y*ab.Y) / (den * den)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return p.Dist(a.Add(ab.Scale(t)))
}

// Smooth applies a centred moving average of the given window (odd,
// clamped to ≥1) to the routine, damping GPS jitter before training.
// Window 1 returns an unchanged copy.
func Smooth(r Routine, window int) Routine {
	out := Routine{StartTick: r.StartTick, Points: make([]geo.Point, len(r.Points))}
	if window < 1 {
		window = 1
	}
	if window%2 == 0 {
		window++
	}
	half := window / 2
	for i := range r.Points {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(r.Points) {
			hi = len(r.Points) - 1
		}
		var sx, sy float64
		for j := lo; j <= hi; j++ {
			sx += r.Points[j].X
			sy += r.Points[j].Y
		}
		n := float64(hi - lo + 1)
		out.Points[i] = geo.Pt(sx/n, sy/n)
	}
	return out
}

// StayPoint is a dwell detected on a routine: the worker stayed within
// Radius cells for at least the configured number of ticks.
type StayPoint struct {
	Center    geo.Point
	StartTick int
	EndTick   int
}

// StayPoints detects dwells: maximal runs of at least minTicks consecutive
// points within radius of their centroid. Dwells are where check-in style
// workers meet tasks; the workload-2 generator produces them by design.
func StayPoints(r Routine, radius float64, minTicks int) []StayPoint {
	if minTicks < 1 {
		minTicks = 1
	}
	var out []StayPoint
	i := 0
	for i < len(r.Points) {
		j := i
		var cx, cy float64
		n := 0.0
		for j < len(r.Points) {
			// Tentatively include point j and test the radius invariant.
			ncx, ncy := (cx*n+r.Points[j].X)/(n+1), (cy*n+r.Points[j].Y)/(n+1)
			ok := true
			for k := i; k <= j; k++ {
				if r.Points[k].Dist(geo.Pt(ncx, ncy)) > radius {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			cx, cy, n = ncx, ncy, n+1
			j++
		}
		if j-i >= minTicks {
			out = append(out, StayPoint{
				Center:    geo.Pt(cx, cy),
				StartTick: r.StartTick + i,
				EndTick:   r.StartTick + j - 1,
			})
			i = j
		} else {
			i++
		}
	}
	return out
}
