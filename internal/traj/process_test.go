package traj

import (
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
)

func TestSimplifyStraightLine(t *testing.T) {
	// A perfectly straight line collapses to its endpoints.
	r := Routine{}
	for i := 0; i < 20; i++ {
		r.Points = append(r.Points, geo.Pt(float64(i), 0))
	}
	s := Simplify(r, 0.5)
	if s.Len() != 2 {
		t.Fatalf("straight line simplified to %d points, want 2", s.Len())
	}
	if s.Points[0] != geo.Pt(0, 0) || s.Points[1] != geo.Pt(19, 0) {
		t.Errorf("endpoints = %v", s.Points)
	}
}

func TestSimplifyKeepsCorners(t *testing.T) {
	// An L-shape keeps the corner.
	r := Routine{}
	for i := 0; i <= 10; i++ {
		r.Points = append(r.Points, geo.Pt(float64(i), 0))
	}
	for i := 1; i <= 10; i++ {
		r.Points = append(r.Points, geo.Pt(10, float64(i)))
	}
	s := Simplify(r, 0.5)
	if s.Len() != 3 {
		t.Fatalf("L-shape simplified to %d points, want 3", s.Len())
	}
	if s.Points[1] != geo.Pt(10, 0) {
		t.Errorf("corner = %v", s.Points[1])
	}
}

func TestSimplifyErrorBound(t *testing.T) {
	// Every dropped point must lie within epsilon of the simplified chain.
	rng := rand.New(rand.NewSource(3))
	r := Routine{}
	pos := geo.Pt(50, 25)
	for i := 0; i < 200; i++ {
		pos = pos.Add(geo.Pt(rng.NormFloat64(), rng.NormFloat64()))
		r.Points = append(r.Points, pos)
	}
	const eps = 2.0
	s := Simplify(r, eps)
	if s.Len() >= r.Len() {
		t.Fatalf("no reduction: %d -> %d", r.Len(), s.Len())
	}
	for _, p := range r.Points {
		best := math.Inf(1)
		for i := 1; i < s.Len(); i++ {
			if d := perpDist(p, s.Points[i-1], s.Points[i]); d < best {
				best = d
			}
		}
		if best > eps+1e-9 {
			t.Fatalf("point %v is %v from the simplified chain (eps %v)", p, best, eps)
		}
	}
}

func TestSimplifyDegenerate(t *testing.T) {
	r := Routine{Points: []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2)}}
	if got := Simplify(r, 1); got.Len() != 2 {
		t.Errorf("two-point simplify = %d", got.Len())
	}
	if got := Simplify(Routine{}, 1); got.Len() != 0 {
		t.Errorf("empty simplify = %d", got.Len())
	}
	// Zero epsilon keeps everything.
	r3 := Routine{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(1, 5), geo.Pt(2, 0)}}
	if got := Simplify(r3, 0); got.Len() != 3 {
		t.Errorf("eps=0 simplify = %d", got.Len())
	}
}

func TestSmoothDampsJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := Routine{}
	for i := 0; i < 100; i++ {
		r.Points = append(r.Points, geo.Pt(float64(i)+rng.NormFloat64()*0.5, rng.NormFloat64()*0.5))
	}
	s := Smooth(r, 5)
	if s.Len() != r.Len() {
		t.Fatalf("smoothing changed length")
	}
	// Jitter (per-step second difference) should shrink.
	wiggle := func(r Routine) float64 {
		var sum float64
		for i := 2; i < r.Len(); i++ {
			a := r.Points[i].Sub(r.Points[i-1])
			b := r.Points[i-1].Sub(r.Points[i-2])
			sum += a.Sub(b).Norm()
		}
		return sum
	}
	if wiggle(s) >= wiggle(r) {
		t.Errorf("smoothing did not damp jitter: %v -> %v", wiggle(r), wiggle(s))
	}
}

func TestSmoothWindowHandling(t *testing.T) {
	r := Routine{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(2, 0), geo.Pt(4, 0)}}
	// Window 1 (and anything < 1) is identity.
	for _, w := range []int{0, 1} {
		s := Smooth(r, w)
		for i := range r.Points {
			if s.Points[i] != r.Points[i] {
				t.Fatalf("window %d modified points", w)
			}
		}
	}
	// Even windows round up to odd.
	s := Smooth(r, 2)
	if s.Points[1] != geo.Pt(2, 0) {
		t.Errorf("window-2 centre = %v", s.Points[1])
	}
}

func TestStayPoints(t *testing.T) {
	r := Routine{StartTick: 10}
	// Dwell at (5,5) for 6 ticks, travel, dwell at (20,5) for 4 ticks.
	for i := 0; i < 6; i++ {
		r.Points = append(r.Points, geo.Pt(5+0.1*float64(i%2), 5))
	}
	for i := 1; i <= 5; i++ {
		r.Points = append(r.Points, geo.Pt(5+3*float64(i), 5))
	}
	for i := 0; i < 4; i++ {
		r.Points = append(r.Points, geo.Pt(20+0.1*float64(i%2), 5))
	}
	sps := StayPoints(r, 1.0, 3)
	if len(sps) != 2 {
		t.Fatalf("stay points = %d, want 2: %+v", len(sps), sps)
	}
	if sps[0].StartTick != 10 || sps[0].EndTick != 15 {
		t.Errorf("first dwell ticks = %d..%d", sps[0].StartTick, sps[0].EndTick)
	}
	if sps[0].Center.Dist(geo.Pt(5.05, 5)) > 0.1 {
		t.Errorf("first dwell centre = %v", sps[0].Center)
	}
	if sps[1].Center.Dist(geo.Pt(20.05, 5)) > 0.1 {
		t.Errorf("second dwell centre = %v", sps[1].Center)
	}
}

func TestStayPointsNone(t *testing.T) {
	r := Routine{}
	for i := 0; i < 10; i++ {
		r.Points = append(r.Points, geo.Pt(float64(i*5), 0))
	}
	if sps := StayPoints(r, 1, 2); len(sps) != 0 {
		t.Errorf("moving trace produced dwells: %+v", sps)
	}
	if sps := StayPoints(Routine{}, 1, 2); sps != nil {
		t.Errorf("empty trace produced dwells")
	}
}

func TestStayPointsWorkload2Style(t *testing.T) {
	// minTicks clamps to 1: every point is then trivially a dwell run.
	r := Routine{Points: []geo.Point{geo.Pt(0, 0), geo.Pt(10, 10)}}
	sps := StayPoints(r, 0.5, 0)
	if len(sps) != 2 {
		t.Errorf("minTicks clamp: %+v", sps)
	}
}
