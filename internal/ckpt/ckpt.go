// Package ckpt holds the low-level machinery behind training checkpoints:
// a restorable counting RNG source whose position can be captured and
// replayed, and atomic file writes (temp file + rename) so a checkpoint on
// disk is always either the previous complete snapshot or the new one,
// never a torn write.
//
// The position-tracking trick makes resume-from-checkpoint bit-identical
// without serializing math/rand internals: a Source records its seed and
// how many values it has produced, and Restore rebuilds the stream by
// reseeding and discarding exactly that many draws. Every consumer of the
// stream (task sampling, clustering, soft k-means) therefore sees the same
// values a never-interrupted run would have seen.
package ckpt

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
)

// Source is a math/rand Source64 that counts the values it hands out, so
// its exact stream position can be checkpointed and restored. It produces
// the same stream as rand.NewSource(seed): wrapping is observation, not
// perturbation. Not safe for concurrent use — like every rand.Source, a
// Source belongs to one goroutine (or behind the caller's lock).
type Source struct {
	seed  int64
	src   rand.Source64
	draws uint64
}

// NewSource returns a counting source seeded like rand.NewSource(seed).
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.src = rand.NewSource(seed).(rand.Source64)
	s.draws = 0
}

// State returns the seed and the number of values drawn so far — together
// they identify the stream position exactly.
func (s *Source) State() (seed int64, draws uint64) { return s.seed, s.draws }

// Restore rewinds or fast-forwards the source to the given position by
// reseeding and discarding draws. The underlying generator advances one
// step per value regardless of whether it was read via Int63 or Uint64, so
// the replay lands on the identical position.
func (s *Source) Restore(seed int64, draws uint64) {
	s.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}

// WriteFileAtomic writes a file via a same-directory temp file and rename,
// so readers never observe a partially written checkpoint and an existing
// file survives a crash mid-write. The write callback receives the temp
// file's writer; any error aborts and removes the temp file.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	return WriteFileAtomicPre(path, write, nil)
}

// WriteFileAtomicPre is WriteFileAtomic with a callback between the temp
// file's durable write and the rename that publishes it — the exact crash
// window fault-injection tests aim at.
func WriteFileAtomicPre(path string, write func(w io.Writer) error, preRename func()) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("ckpt: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", path, err)
	}
	if preRename != nil {
		preRename()
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	// The rename itself must survive a crash: sync the directory so the new
	// entry is durable, not just the file contents.
	if err = SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// SyncDir fsyncs a directory, making recent renames and file creations in it
// durable. Rename-based atomic-write schemes (checkpoints, WAL segments,
// snapshots) need this: without the directory sync a crash can forget the
// rename even though the file's blocks reached disk.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync dir %s: %w", dir, err)
	}
	return nil
}
