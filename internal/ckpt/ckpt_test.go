package ckpt

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSourceMatchesPlainStream(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(NewSource(42))
	for i := 0; i < 200; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
	// Mixed-width draws too (Perm uses Int31n/Int63n internally).
	a2 := rand.New(rand.NewSource(7))
	b2 := rand.New(NewSource(7))
	for i := 0; i < 50; i++ {
		if x, y := a2.Perm(13)[0], b2.Perm(13)[0]; x != y {
			t.Fatalf("perm %d: %d != %d", i, x, y)
		}
	}
}

func TestSourceRestoreResumesStream(t *testing.T) {
	src := NewSource(99)
	r := rand.New(src)
	for i := 0; i < 137; i++ {
		r.Float64()
		r.Intn(17)
	}
	seed, draws := src.State()
	// Continue the uninterrupted stream.
	var want []float64
	for i := 0; i < 40; i++ {
		want = append(want, r.Float64())
	}
	// A fresh source restored to the captured position must continue
	// identically.
	src2 := NewSource(0)
	src2.Restore(seed, draws)
	r2 := rand.New(src2)
	for i, w := range want {
		if g := r2.Float64(); g != w {
			t.Fatalf("resumed draw %d: %v != %v", i, g, w)
		}
	}
	if _, d2 := src2.State(); d2 <= draws {
		t.Errorf("draw counter did not advance: %d", d2)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing write must leave the previous file intact and no temp
	// litter behind.
	boom := errors.New("disk full")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		fmt.Fprint(w, "torn")
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v1" {
		t.Fatalf("file after failed write = %q, %v", b, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("temp files left behind: %v", entries)
	}
}
