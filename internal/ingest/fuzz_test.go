package ingest

import (
	"strings"
	"testing"
)

// FuzzLoadWorkersCSV: arbitrary input must never panic; it either parses
// or returns an error.
func FuzzLoadWorkersCSV(f *testing.F) {
	f.Add(workersCSV)
	f.Add("")
	f.Add("worker,split,day,tick,x,y\n1,train,0,0,1,1\n")
	f.Add("worker,split,day,tick,x,y\n1,train,zero,0,1,1\n")
	f.Add("a,b\n1\n")
	f.Fuzz(func(t *testing.T, data string) {
		ws, err := LoadWorkersCSV(strings.NewReader(data))
		if err == nil {
			for _, w := range ws {
				if w.ID < 0 && len(w.TrainDays)+len(w.TestDays) == 0 {
					t.Error("parsed worker with no routines")
				}
			}
		}
	})
}

// FuzzLoadTasksCSV: arbitrary input must never panic, and successful
// parses must satisfy the arrival ≤ deadline invariant.
func FuzzLoadTasksCSV(f *testing.F) {
	f.Add(tasksCSV)
	f.Add("")
	f.Add("task,x,y,arrival,deadline\n0,1,1,5,2\n")
	f.Add("task,x,y,arrival,deadline\n0,nan,inf,5,9\n")
	f.Fuzz(func(t *testing.T, data string) {
		ts, err := LoadTasksCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		for i, task := range ts {
			if task.Deadline < task.Arrival {
				t.Errorf("task %d violates arrival<=deadline", i)
			}
			if i > 0 && ts[i-1].Arrival > task.Arrival {
				t.Error("tasks not sorted by arrival")
			}
		}
	})
}
