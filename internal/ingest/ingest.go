// Package ingest loads externally supplied mobility data into TAMP
// workloads: CSV trajectory and task files (the formats cmd/tampgen
// writes), WGS84 latitude/longitude projection onto the city grid, and
// resampling of irregular GPS pings into the per-tick routines the
// prediction models train on.
//
// The paper evaluates on proprietary datasets (Porto taxi, Didi orders,
// Gowalla, Foursquare) that cannot be redistributed; this package is the
// adapter a downstream user needs to run the pipeline on their own copies.
package ingest

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/traj"
)

// GeoMapper projects WGS84 coordinates onto the grid by linear scaling of
// a bounding box — the same gridding the paper applies to Porto
// (100×50 cells over the city extent). Points outside the box clamp to the
// border.
type GeoMapper struct {
	MinLat, MaxLat float64
	MinLng, MaxLng float64
	Grid           geo.Grid
}

// ToGrid maps (lat, lng) to continuous grid coordinates: longitude spans
// the X axis, latitude the Y axis.
func (g GeoMapper) ToGrid(lat, lng float64) geo.Point {
	b := g.Grid.Bounds()
	x := b.Min.X
	if g.MaxLng > g.MinLng {
		x = (lng - g.MinLng) / (g.MaxLng - g.MinLng) * b.Width()
	}
	y := b.Min.Y
	if g.MaxLat > g.MinLat {
		y = (lat - g.MinLat) / (g.MaxLat - g.MinLat) * b.Height()
	}
	return b.Clamp(geo.Pt(x, y))
}

// Ping is one raw GPS observation.
type Ping struct {
	UnixSec int64
	Lat     float64
	Lng     float64
}

// ResamplePings converts irregular timestamped pings into a per-tick
// routine: ticks are tickSeconds long starting at startUnix; each tick's
// location linearly interpolates between the surrounding pings (clamping
// beyond the ends). Pings are sorted by time first; fewer than one ping
// yields an empty routine.
func ResamplePings(pings []Ping, m GeoMapper, startUnix int64, tickSeconds, numTicks int) traj.Routine {
	r := traj.Routine{StartTick: 0}
	if len(pings) == 0 || tickSeconds <= 0 || numTicks <= 0 {
		return r
	}
	ps := append([]Ping(nil), pings...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].UnixSec < ps[j].UnixSec })

	locOf := func(p Ping) geo.Point { return m.ToGrid(p.Lat, p.Lng) }
	j := 0
	for t := 0; t < numTicks; t++ {
		at := startUnix + int64(t)*int64(tickSeconds)
		for j+1 < len(ps) && ps[j+1].UnixSec <= at {
			j++
		}
		switch {
		case at <= ps[0].UnixSec:
			r.Points = append(r.Points, locOf(ps[0]))
		case j+1 >= len(ps):
			r.Points = append(r.Points, locOf(ps[len(ps)-1]))
		default:
			a, b := ps[j], ps[j+1]
			span := float64(b.UnixSec - a.UnixSec)
			frac := 0.0
			if span > 0 {
				frac = float64(at-a.UnixSec) / span
			}
			r.Points = append(r.Points, locOf(a).Lerp(locOf(b), frac))
		}
	}
	return r
}

// LoadWorkersCSV reads the worker trajectory format written by cmd/tampgen:
// a header row followed by
//
//	worker,archetype,new,split,day,tick,x,y
//
// rows (extra columns ignored). It returns one dataset.Worker per distinct
// worker id with routines grouped by (split, day) and ordered by tick.
// Speed and detour fields are left zero for the caller to fill.
func LoadWorkersCSV(r io.Reader) ([]dataset.Worker, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: read header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"worker", "split", "day", "tick", "x", "y"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("ingest: workers CSV missing column %q", need)
		}
	}

	type dayKey struct {
		split string
		day   int
	}
	type rowPoint struct {
		tick int
		pt   geo.Point
	}
	days := map[int]map[dayKey][]rowPoint{}
	arch := map[int]int{}
	isNew := map[int]bool{}

	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		id, err := atoi(rec, col, "worker")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		day, err := atoi(rec, col, "day")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		tick, err := atoi(rec, col, "tick")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		x, err := atof(rec, col, "x")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		y, err := atof(rec, col, "y")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		if c, ok := col["archetype"]; ok && c < len(rec) {
			if v, err := strconv.Atoi(rec[c]); err == nil {
				arch[id] = v
			}
		}
		if c, ok := col["new"]; ok && c < len(rec) {
			isNew[id] = rec[c] == "true"
		}
		if days[id] == nil {
			days[id] = map[dayKey][]rowPoint{}
		}
		k := dayKey{split: rec[col["split"]], day: day}
		days[id][k] = append(days[id][k], rowPoint{tick: tick, pt: geo.Pt(x, y)})
	}

	var ids []int
	for id := range days {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []dataset.Worker
	for _, id := range ids {
		wk := dataset.Worker{ID: id, Archetype: arch[id], New: isNew[id]}
		var keys []dayKey
		for k := range days[id] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].split != keys[j].split {
				// "train" < "test" chronologically; sort reverse-alpha.
				return keys[i].split > keys[j].split
			}
			return keys[i].day < keys[j].day
		})
		for _, k := range keys {
			pts := days[id][k]
			sort.Slice(pts, func(i, j int) bool { return pts[i].tick < pts[j].tick })
			r := traj.Routine{StartTick: 0}
			for _, rp := range pts {
				r.Points = append(r.Points, rp.pt)
			}
			if k.split == "test" {
				wk.TestDays = append(wk.TestDays, r)
			} else {
				wk.TrainDays = append(wk.TrainDays, r)
			}
		}
		out = append(out, wk)
	}
	return out, nil
}

// LoadTasksCSV reads the task format written by cmd/tampgen: a header row
// followed by task,x,y,arrival,deadline rows. Tasks are returned sorted by
// arrival.
func LoadTasksCSV(r io.Reader) ([]assign.Task, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: read header: %w", err)
	}
	col := indexColumns(header)
	for _, need := range []string{"task", "x", "y", "arrival", "deadline"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("ingest: tasks CSV missing column %q", need)
		}
	}
	var out []assign.Task
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		id, err := atoi(rec, col, "task")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		x, err := atof(rec, col, "x")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		y, err := atof(rec, col, "y")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		arr, err := atoi(rec, col, "arrival")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		dl, err := atoi(rec, col, "deadline")
		if err != nil {
			return nil, fmt.Errorf("ingest: line %d: %w", line, err)
		}
		if dl < arr {
			return nil, fmt.Errorf("ingest: line %d: deadline %d before arrival %d", line, dl, arr)
		}
		out = append(out, assign.Task{ID: id, Loc: geo.Pt(x, y), Arrival: arr, Deadline: dl})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// BuildWorkload assembles a workload from externally loaded pieces. Worker
// speed defaults to the median per-tick displacement of their own routines
// when zero; detour defaults to p.DetourKM. Historical task locations (for
// the weighted loss) default to the test task locations when hist is nil.
func BuildWorkload(p dataset.Params, workers []dataset.Worker, tasks []assign.Task, hist []geo.Point, pois []geo.POI) *dataset.Workload {
	if p.Grid.Cols == 0 {
		p.Grid = geo.DefaultGrid
	}
	for i := range workers {
		if workers[i].Speed <= 0 {
			workers[i].Speed = medianSpeed(&workers[i])
		}
		if workers[i].Detour <= 0 {
			workers[i].Detour = geo.KMToCells(p.DetourKM)
		}
	}
	if hist == nil {
		for _, t := range tasks {
			hist = append(hist, t.Loc)
		}
	}
	return &dataset.Workload{
		Params:    p,
		Workers:   workers,
		POIs:      pois,
		HistTasks: hist,
		TestTasks: tasks,
	}
}

// medianSpeed estimates a worker's speed as the median per-tick step over
// all their routines; it falls back to 1 cell/tick for immobile traces.
func medianSpeed(wk *dataset.Worker) float64 {
	var steps []float64
	collect := func(rs []traj.Routine) {
		for _, r := range rs {
			for i := 1; i < len(r.Points); i++ {
				if d := r.Points[i].Dist(r.Points[i-1]); d > 1e-9 {
					steps = append(steps, d)
				}
			}
		}
	}
	collect(wk.TrainDays)
	collect(wk.TestDays)
	if len(steps) == 0 {
		return 1
	}
	sort.Float64s(steps)
	return steps[len(steps)/2]
}

func indexColumns(header []string) map[string]int {
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	return col
}

func atoi(rec []string, col map[string]int, name string) (int, error) {
	c := col[name]
	if c >= len(rec) {
		return 0, fmt.Errorf("missing %s", name)
	}
	v, err := strconv.Atoi(rec[c])
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, rec[c])
	}
	return v, nil
}

func atof(rec []string, col map[string]int, name string) (float64, error) {
	c := col[name]
	if c >= len(rec) {
		return 0, fmt.Errorf("missing %s", name)
	}
	v, err := strconv.ParseFloat(rec[c], 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, rec[c])
	}
	return v, nil
}
