package ingest

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/geo"
)

func TestGeoMapperCorners(t *testing.T) {
	m := GeoMapper{MinLat: 41.0, MaxLat: 41.5, MinLng: -8.7, MaxLng: -8.2, Grid: geo.DefaultGrid}
	sw := m.ToGrid(41.0, -8.7)
	if sw.Dist(geo.Pt(0, 0)) > 1e-9 {
		t.Errorf("SW corner = %v", sw)
	}
	ne := m.ToGrid(41.5, -8.2)
	if ne.X < 99.9 || ne.Y < 49.9 {
		t.Errorf("NE corner = %v", ne)
	}
	mid := m.ToGrid(41.25, -8.45)
	if mid.Dist(geo.Pt(50, 25)) > 1e-9 {
		t.Errorf("centre = %v", mid)
	}
	// Out-of-box points clamp.
	if p := m.ToGrid(99, 99); !m.Grid.Bounds().Contains(p) {
		t.Errorf("clamped point %v outside grid", p)
	}
}

func TestGeoMapperDegenerateBox(t *testing.T) {
	m := GeoMapper{MinLat: 41, MaxLat: 41, MinLng: -8, MaxLng: -8, Grid: geo.DefaultGrid}
	p := m.ToGrid(41, -8)
	if !m.Grid.Bounds().Contains(p) {
		t.Errorf("degenerate box mapped outside: %v", p)
	}
}

func TestResamplePingsInterpolation(t *testing.T) {
	m := GeoMapper{MinLat: 0, MaxLat: 1, MinLng: 0, MaxLng: 1, Grid: geo.Grid{Cols: 100, Rows: 100}}
	pings := []Ping{
		{UnixSec: 100, Lat: 0.0, Lng: 0.0},
		{UnixSec: 200, Lat: 0.0, Lng: 1.0}, // move east over 100s
	}
	r := ResamplePings(pings, m, 100, 25, 5)
	if r.Len() != 5 {
		t.Fatalf("resampled length = %d", r.Len())
	}
	// Tick 0 at t=100 → west edge; tick 4 at t=200 → east edge.
	if r.Points[0].X > 1e-9 {
		t.Errorf("tick 0 = %v", r.Points[0])
	}
	if math.Abs(r.Points[2].X-50) > 1e-6 {
		t.Errorf("midpoint = %v, want x=50", r.Points[2])
	}
	if r.Points[4].X < 99.9 {
		t.Errorf("tick 4 = %v", r.Points[4])
	}
}

func TestResamplePingsClampsAndSorts(t *testing.T) {
	m := GeoMapper{MinLat: 0, MaxLat: 1, MinLng: 0, MaxLng: 1, Grid: geo.Grid{Cols: 10, Rows: 10}}
	pings := []Ping{
		{UnixSec: 300, Lat: 0.5, Lng: 0.9}, // out of order on purpose
		{UnixSec: 200, Lat: 0.5, Lng: 0.1},
	}
	r := ResamplePings(pings, m, 0, 100, 6)
	if r.Len() != 6 {
		t.Fatalf("length = %d", r.Len())
	}
	// Ticks before the first ping clamp to it; after the last, to the last.
	if r.Points[0] != r.Points[1] || math.Abs(r.Points[0].X-1) > 1e-9 {
		t.Errorf("pre-clamp = %v %v", r.Points[0], r.Points[1])
	}
	if math.Abs(r.Points[5].X-9) > 1e-9 {
		t.Errorf("post-clamp = %v", r.Points[5])
	}
	if got := ResamplePings(nil, m, 0, 10, 5); got.Len() != 0 {
		t.Error("empty pings should yield empty routine")
	}
}

const workersCSV = `worker,archetype,new,split,day,tick,x,y
1,0,false,train,0,0,1.0,2.0
1,0,false,train,0,1,1.5,2.0
1,0,false,test,0,0,2.0,2.0
0,1,true,train,0,1,5.5,6.0
0,1,true,train,0,0,5.0,6.0
`

func TestLoadWorkersCSV(t *testing.T) {
	ws, err := LoadWorkersCSV(strings.NewReader(workersCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("workers = %d", len(ws))
	}
	// Sorted by id.
	if ws[0].ID != 0 || ws[1].ID != 1 {
		t.Fatalf("order = %d,%d", ws[0].ID, ws[1].ID)
	}
	w0 := ws[0]
	if !w0.New || w0.Archetype != 1 {
		t.Errorf("worker 0 meta = new:%v arch:%d", w0.New, w0.Archetype)
	}
	// Points ordered by tick even though rows were shuffled.
	if w0.TrainDays[0].Points[0] != geo.Pt(5, 6) {
		t.Errorf("worker 0 first point = %v", w0.TrainDays[0].Points[0])
	}
	w1 := ws[1]
	if len(w1.TrainDays) != 1 || len(w1.TestDays) != 1 {
		t.Fatalf("worker 1 days = %d/%d", len(w1.TrainDays), len(w1.TestDays))
	}
	if w1.TrainDays[0].Len() != 2 || w1.TestDays[0].Len() != 1 {
		t.Errorf("worker 1 routine lengths = %d/%d", w1.TrainDays[0].Len(), w1.TestDays[0].Len())
	}
}

func TestLoadWorkersCSVErrors(t *testing.T) {
	if _, err := LoadWorkersCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := LoadWorkersCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("missing columns should fail")
	}
	bad := "worker,split,day,tick,x,y\nnope,train,0,0,1,1\n"
	if _, err := LoadWorkersCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad integer should fail")
	}
}

const tasksCSV = `task,x,y,arrival,deadline
1,3.0,4.0,10,30
0,1.0,2.0,5,25
`

func TestLoadTasksCSV(t *testing.T) {
	ts, err := LoadTasksCSV(strings.NewReader(tasksCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tasks = %d", len(ts))
	}
	if ts[0].ID != 0 || ts[1].ID != 1 {
		t.Errorf("not sorted by arrival: %v", ts)
	}
	if ts[0].Loc != geo.Pt(1, 2) || ts[0].Deadline != 25 {
		t.Errorf("task 0 = %+v", ts[0])
	}
}

func TestLoadTasksCSVErrors(t *testing.T) {
	if _, err := LoadTasksCSV(strings.NewReader("task,x,y\n1,1,1\n")); err == nil {
		t.Error("missing columns should fail")
	}
	bad := "task,x,y,arrival,deadline\n0,1,1,20,10\n"
	if _, err := LoadTasksCSV(strings.NewReader(bad)); err == nil {
		t.Error("deadline before arrival should fail")
	}
}

func TestBuildWorkloadDefaults(t *testing.T) {
	ws, err := LoadWorkersCSV(strings.NewReader(workersCSV))
	if err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTasksCSV(strings.NewReader(tasksCSV))
	if err != nil {
		t.Fatal(err)
	}
	p := dataset.Defaults(dataset.Workload1)
	p.DetourKM = 4
	w := BuildWorkload(p, ws, ts, nil, nil)
	if len(w.Workers) != 2 || len(w.TestTasks) != 2 {
		t.Fatalf("workload sizes wrong")
	}
	for _, wk := range w.Workers {
		if wk.Speed <= 0 {
			t.Errorf("worker %d speed = %v", wk.ID, wk.Speed)
		}
		if wk.Detour != geo.KMToCells(4) {
			t.Errorf("worker %d detour = %v", wk.ID, wk.Detour)
		}
	}
	// Hist tasks default to test task locations.
	if len(w.HistTasks) != 2 {
		t.Errorf("hist tasks = %d", len(w.HistTasks))
	}
	// Worker 1 moved 0.5 cells/tick → median speed 0.5.
	if math.Abs(w.Workers[1].Speed-0.5) > 1e-9 {
		t.Errorf("worker 1 speed = %v", w.Workers[1].Speed)
	}
	// Immobile worker falls back to 1 cell/tick... worker 0 moved too.
	if w.Workers[0].Speed <= 0 {
		t.Error("worker 0 speed missing")
	}
}

// TestRoundTripThroughTampgenFormat generates a synthetic workload, writes
// it in the tampgen CSV formats, reloads it, and checks the reloaded
// workload simulates.
func TestRoundTripThroughGeneratedCSV(t *testing.T) {
	p := dataset.Defaults(dataset.Workload1)
	p.NumWorkers = 4
	p.NewWorkers = 1
	p.TrainDays = 2
	p.TestDays = 1
	p.TicksPerDay = 30
	p.NumTestTasks = 40
	src := dataset.Generate(p)

	var wcsv strings.Builder
	wcsv.WriteString("worker,archetype,new,split,day,tick,x,y\n")
	for _, wk := range src.Workers {
		write := func(split string, d int, pts []geo.Point) {
			for tk, pt := range pts {
				wcsv.WriteString(
					itoa(wk.ID) + "," + itoa(wk.Archetype) + "," + boolStr(wk.New) + "," +
						split + "," + itoa(d) + "," + itoa(tk) + "," +
						ftoa(pt.X) + "," + ftoa(pt.Y) + "\n")
			}
		}
		for d, r := range wk.TrainDays {
			write("train", d, r.Points)
		}
		for d, r := range wk.TestDays {
			write("test", d, r.Points)
		}
	}
	ws, err := LoadWorkersCSV(strings.NewReader(wcsv.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != len(src.Workers) {
		t.Fatalf("reloaded %d workers, want %d", len(ws), len(src.Workers))
	}
	for i := range ws {
		if ws[i].TrainDays[0].Len() != src.Workers[i].TrainDays[0].Len() {
			t.Fatalf("worker %d routine length mismatch", i)
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
