package sim

import (
	"math"
	"testing"
)

// FuzzWasserstein1D checks the metric's core invariants (symmetry,
// non-negativity, identity) on arbitrary small inputs.
func FuzzWasserstein1D(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-5.0, 5.0, 1e9, -1e9)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return
			}
		}
		xs := []float64{a, b}
		ys := []float64{c, d}
		w1 := Wasserstein1D(xs, ys)
		w2 := Wasserstein1D(ys, xs)
		if math.Abs(w1-w2) > 1e-6*(1+math.Abs(w1)) {
			t.Errorf("asymmetric: %v vs %v", w1, w2)
		}
		if w1 < 0 {
			t.Errorf("negative distance %v", w1)
		}
		if self := Wasserstein1D(xs, xs); self > 1e-9*(1+math.Abs(a)+math.Abs(b)) {
			t.Errorf("d(x,x) = %v", self)
		}
	})
}
