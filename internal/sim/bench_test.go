package sim

import (
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/nn"
)

func benchPoints(n int, seed int64) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Pt(rng.Float64()*100, rng.Float64()*50)
	}
	return out
}

func BenchmarkWasserstein1D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 150)
	ys := make([]float64, 150)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Wasserstein1D(xs, ys)
	}
}

func BenchmarkSlicedWasserstein(b *testing.B) {
	pa := benchPoints(150, 1)
	pb := benchPoints(150, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SlicedWasserstein(pa, pb, DefaultProjections)
	}
}

func BenchmarkSpatialSim(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	mk := func() []geo.POI {
		out := make([]geo.POI, 40)
		for i := range out {
			out[i] = geo.POI{Loc: geo.Pt(rng.Float64()*100, rng.Float64()*50), Type: geo.POIType(rng.Intn(6))}
		}
		return out
	}
	pa, pb := mk(), mk()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SpatialSim(pa, pb)
	}
}

func BenchmarkLearningPathSim(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	mk := func() []nn.Vector {
		out := make([]nn.Vector, 3)
		for i := range out {
			out[i] = nn.RandomVector(2600, 1, rng)
		}
		return out
	}
	pa, pb := mk(), mk()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LearningPathSim(pa, pb)
	}
}

func BenchmarkSimilarityMatrix40(b *testing.B) {
	feats := make([]*Features, 40)
	for i := range feats {
		feats[i] = &Features{Points: benchPoints(150, int64(i))}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewMatrix(len(feats), func(a, c int) float64 {
			return DistributionSim(feats[a].Points, feats[c].Points)
		})
	}
}
