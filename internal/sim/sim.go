// Package sim implements the learning-task similarity measures of §III-B:
// kernel-based spatial feature similarity over POI sequences (Eq. 1),
// average-cosine learning-path similarity over k-step adaptation gradients
// (Eq. 2), Wasserstein-distance-based distribution similarity (Eq. 3), and
// the cluster quality function Q(G) (Eq. 4) with the player utility (Eq. 5)
// built from it.
//
// Every similarity is normalized into [0, 1] (0 = completely dissimilar,
// 1 = identical) so that the quality thresholds Θ and the singleton utility
// γ are interpretable uniformly across metrics:
//
//   - Spatial already lands in [0, 1] because the kernel is bounded by 1.
//   - LearningPath maps mean cosine c ∈ [−1, 1] to (1+c)/2.
//   - Distribution maps Wasserstein distance W ∈ [0, ∞) to 1/(1+W), a
//     bounded monotone variant of the paper's 1/W that avoids the
//     singularity at W = 0 while inducing the same similarity ordering.
package sim

import (
	"math"
	"sort"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/nn"
)

// Metric selects one of the three learning-task similarity factors.
type Metric int

// The three clustering factors of §III-B, in the order the paper uses them
// in the multi-level similarity function list F^s.
const (
	Distribution Metric = iota // Sim_d, Eq. 3
	Spatial                    // Sim_s, Eq. 1
	LearningPath               // Sim_l, Eq. 2
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Distribution:
		return "Sim_d"
	case Spatial:
		return "Sim_s"
	case LearningPath:
		return "Sim_l"
	default:
		return "Sim(?)"
	}
}

// Features carries the per-learning-task representations the similarity
// metrics consume: the POI sequence 𝕍 (spatial feature), the k-step gradient
// path ℤ (learning path), and the raw location distribution.
type Features struct {
	POIs   []geo.POI
	Path   []nn.Vector
	Points []geo.Point
}

// Similarity computes the chosen metric between two feature sets.
func Similarity(m Metric, a, b *Features) float64 {
	switch m {
	case Distribution:
		return DistributionSim(a.Points, b.Points)
	case Spatial:
		return SpatialSim(a.POIs, b.POIs)
	case LearningPath:
		return LearningPathSim(a.Path, b.Path)
	default:
		return 0
	}
}

// SpatialKernelBandwidth is the bandwidth h of the Gaussian kernel K_h in
// Eq. 1, in grid cells.
const SpatialKernelBandwidth = 8.0

// spatialTypeFactor discounts kernel mass between POIs of different types,
// following the mixed geographic/type kernel of Liu et al. [24].
const spatialTypeFactor = 0.5

// SpatialSim is Sim_s of Eq. 1: the mean kernel density between every POI
// pair of the two sequences, normalized to [0, 1]. Either side being empty
// yields 0.
func SpatialSim(a, b []geo.POI) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inv2h2 := 1 / (2 * SpatialKernelBandwidth * SpatialKernelBandwidth)
	var sum float64
	for _, va := range a {
		for _, vb := range b {
			k := math.Exp(-va.Loc.DistSq(vb.Loc) * inv2h2)
			if va.Type != vb.Type {
				k *= spatialTypeFactor
			}
			sum += k
		}
	}
	s := sum / float64(len(a)*len(b))
	return clamp01(s)
}

// LearningPathSim is Sim_l of Eq. 2: the average cosine similarity between
// the step-aligned gradients of two adaptation paths, mapped into [0, 1].
// Paths of unequal length compare over their common prefix; an empty common
// prefix yields 0.
func LearningPathSim(a, b []nn.Vector) float64 {
	k := len(a)
	if len(b) < k {
		k = len(b)
	}
	if k == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += a[i].CosineSim(b[i])
	}
	return clamp01((1 + sum/float64(k)) / 2)
}

// DistributionScale is the characteristic Wasserstein distance (in cells)
// at which two location distributions count as half-similar. It calibrates
// Sim_d so that same-neighbourhood workers land around 0.4–0.7 and
// cross-city pairs near 0 — the range the quality thresholds Θ and the
// singleton utility γ are expressed in.
const DistributionScale = 8.0

// DistributionSim is Sim_d of Eq. 3: similarity inversely proportional to
// the Wasserstein distance between the two tasks' location distributions,
// computed as 1/(1+W/DistributionScale) with W the sliced 2-D
// Wasserstein-1 distance.
func DistributionSim(a, b []geo.Point) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	w := SlicedWasserstein(a, b, DefaultProjections)
	return clamp01(1 / (1 + w/DistributionScale))
}

// DefaultProjections is the number of fixed projection directions used by
// SlicedWasserstein. Eight evenly spaced angles are plenty for 2-D.
const DefaultProjections = 8

// Wasserstein1D returns the exact 1-Wasserstein (earth mover's) distance
// between the empirical distributions of xs and ys. Inputs need not share a
// length; the distance is ∫|F_x⁻¹(q) − F_y⁻¹(q)| dq computed by sweeping the
// merged quantile breakpoints. Either side being empty yields 0.
func Wasserstein1D(xs, ys []float64) float64 {
	if len(xs) == 0 || len(ys) == 0 {
		return 0
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	var dist, q float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		qa := float64(i+1) / na
		qb := float64(j+1) / nb
		qNext := math.Min(qa, qb)
		dist += (qNext - q) * math.Abs(a[i]-b[j])
		q = qNext
		if qa <= qb {
			i++
		}
		if qb <= qa {
			j++
		}
	}
	return dist
}

// SlicedWasserstein approximates the 2-D Wasserstein-1 distance between two
// point sets by averaging the exact 1-D distance over nProj evenly spaced
// projection directions in [0, π).
func SlicedWasserstein(a, b []geo.Point, nProj int) float64 {
	if nProj <= 0 {
		nProj = DefaultProjections
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	pa := make([]float64, len(a))
	pb := make([]float64, len(b))
	var sum float64
	for k := 0; k < nProj; k++ {
		theta := math.Pi * float64(k) / float64(nProj)
		c, s := math.Cos(theta), math.Sin(theta)
		for i, p := range a {
			pa[i] = c*p.X + s*p.Y
		}
		for i, p := range b {
			pb[i] = c*p.X + s*p.Y
		}
		sum += Wasserstein1D(pa, pb)
	}
	return sum / float64(nProj)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
