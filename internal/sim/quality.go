package sim

// Matrix is a symmetric pairwise-similarity matrix over n items, stored as
// the full square for O(1) access. Diagonal entries are 1.
type Matrix struct {
	N int
	v []float64
}

// NewMatrix computes the symmetric similarity matrix for n items from f,
// evaluating f only on the upper triangle.
func NewMatrix(n int, f func(i, j int) float64) *Matrix {
	m := &Matrix{N: n, v: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		m.v[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			s := f(i, j)
			m.v[i*n+j] = s
			m.v[j*n+i] = s
		}
	}
	return m
}

// At returns the similarity between items i and j.
func (m *Matrix) At(i, j int) float64 { return m.v[i*m.N+j] }

// Quality is Q(G) of Eq. 4 for the cluster holding the given member indexes:
// the mean pairwise similarity for clusters of two or more, the singleton
// utility γ for clusters of one, and 0 for empty clusters.
func Quality(m *Matrix, members []int, gamma float64) float64 {
	switch len(members) {
	case 0:
		return 0
	case 1:
		return gamma
	}
	var sum float64
	for a, i := range members {
		for b, j := range members {
			if a == b {
				continue
			}
			sum += m.At(i, j)
		}
	}
	n := float64(len(members))
	return sum / (n * (n - 1))
}

// Utility is u(Γ_i, G) of Eq. 5: the marginal quality the item contributes
// by joining the cluster whose members are given including the item itself.
// It equals Q(G) − Q(G \ {item}).
func Utility(m *Matrix, membersWithItem []int, item int, gamma float64) float64 {
	with := Quality(m, membersWithItem, gamma)
	without := make([]int, 0, len(membersWithItem)-1)
	for _, j := range membersWithItem {
		if j != item {
			without = append(without, j)
		}
	}
	return with - Quality(m, without, gamma)
}

// MeanSimTo returns the average similarity between item i and the given
// members, used when placing a newly arrived worker's learning task onto the
// most similar tree node. An empty member list yields 0.
func MeanSimTo(m *Matrix, i int, members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	var sum float64
	for _, j := range members {
		sum += m.At(i, j)
	}
	return sum / float64(len(members))
}
