package sim

import (
	"context"

	"github.com/spatialcrowd/tamp/internal/par"
)

// Matrix is a symmetric pairwise-similarity matrix over n items, stored as
// the full square for O(1) access. Diagonal entries are 1.
type Matrix struct {
	N int
	v []float64
}

// NewMatrix computes the symmetric similarity matrix for n items from f,
// evaluating f only on the upper triangle.
func NewMatrix(n int, f func(i, j int) float64) *Matrix {
	return NewMatrixCtx(context.Background(), n, 1, f)
}

// NewMatrixCtx builds the similarity matrix with the upper triangle's rows
// computed concurrently on a par pool (parallelism ≤ 0 means GOMAXPROCS).
// f must be a pure function of (i, j); each row writes a disjoint slice
// segment and the symmetric mirror runs sequentially afterwards, so the
// result is identical at every parallelism level. Cancelling ctx abandons
// the remaining rows (the caller is expected to check ctx and discard the
// partial matrix).
func NewMatrixCtx(ctx context.Context, n, parallelism int, f func(i, j int) float64) *Matrix {
	m := &Matrix{N: n, v: make([]float64, n*n)}
	par.ForEach(ctx, n, parallelism, func(i int) error {
		m.v[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			m.v[i*n+j] = f(i, j)
		}
		return nil
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.v[j*n+i] = m.v[i*n+j]
		}
	}
	return m
}

// At returns the similarity between items i and j.
func (m *Matrix) At(i, j int) float64 { return m.v[i*m.N+j] }

// Quality is Q(G) of Eq. 4 for the cluster holding the given member indexes:
// the mean pairwise similarity for clusters of two or more, the singleton
// utility γ for clusters of one, and 0 for empty clusters.
func Quality(m *Matrix, members []int, gamma float64) float64 {
	switch len(members) {
	case 0:
		return 0
	case 1:
		return gamma
	}
	var sum float64
	for a, i := range members {
		for b, j := range members {
			if a == b {
				continue
			}
			sum += m.At(i, j)
		}
	}
	n := float64(len(members))
	return sum / (n * (n - 1))
}

// Utility is u(Γ_i, G) of Eq. 5: the marginal quality the item contributes
// by joining the cluster whose members are given including the item itself.
// It equals Q(G) − Q(G \ {item}).
func Utility(m *Matrix, membersWithItem []int, item int, gamma float64) float64 {
	with := Quality(m, membersWithItem, gamma)
	without := make([]int, 0, len(membersWithItem)-1)
	for _, j := range membersWithItem {
		if j != item {
			without = append(without, j)
		}
	}
	return with - Quality(m, without, gamma)
}

// MeanSimTo returns the average similarity between item i and the given
// members, used when placing a newly arrived worker's learning task onto the
// most similar tree node. An empty member list yields 0.
func MeanSimTo(m *Matrix, i int, members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	var sum float64
	for _, j := range members {
		sum += m.At(i, j)
	}
	return sum / float64(len(members))
}
