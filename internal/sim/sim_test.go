package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/nn"
)

func pois(ty geo.POIType, pts ...float64) []geo.POI {
	var out []geo.POI
	for i := 0; i+1 < len(pts); i += 2 {
		out = append(out, geo.POI{Loc: geo.Pt(pts[i], pts[i+1]), Type: ty})
	}
	return out
}

func TestSpatialSimIdentical(t *testing.T) {
	a := pois(geo.POIRetail, 5, 5, 6, 6)
	if got := SpatialSim(a, a); got < 0.9 {
		t.Errorf("identical POIs similarity = %v, want near 1", got)
	}
}

func TestSpatialSimDistanceDecay(t *testing.T) {
	a := pois(geo.POIRetail, 0, 0)
	near := pois(geo.POIRetail, 1, 0)
	far := pois(geo.POIRetail, 80, 0)
	sn, sf := SpatialSim(a, near), SpatialSim(a, far)
	if sn <= sf {
		t.Errorf("near sim %v should exceed far sim %v", sn, sf)
	}
	if sf > 0.01 {
		t.Errorf("far sim = %v, want near 0", sf)
	}
}

func TestSpatialSimTypeDiscount(t *testing.T) {
	a := pois(geo.POIRetail, 10, 10)
	same := pois(geo.POIRetail, 10, 10)
	diff := pois(geo.POIBusiness, 10, 10)
	if SpatialSim(a, same) <= SpatialSim(a, diff) {
		t.Error("same-type POIs should be more similar than cross-type")
	}
}

func TestSpatialSimEmpty(t *testing.T) {
	if got := SpatialSim(nil, pois(geo.POIRetail, 1, 1)); got != 0 {
		t.Errorf("empty side sim = %v", got)
	}
}

func TestSpatialSimSymmetricBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var a, b []geo.POI
		for i := 0; i < rng.Intn(5)+1; i++ {
			a = append(a, geo.POI{Loc: geo.Pt(rng.Float64()*100, rng.Float64()*50), Type: geo.POIType(rng.Intn(int(geo.NumPOITypes)))})
		}
		for i := 0; i < rng.Intn(5)+1; i++ {
			b = append(b, geo.POI{Loc: geo.Pt(rng.Float64()*100, rng.Float64()*50), Type: geo.POIType(rng.Intn(int(geo.NumPOITypes)))})
		}
		s1, s2 := SpatialSim(a, b), SpatialSim(b, a)
		if math.Abs(s1-s2) > 1e-12 {
			t.Fatalf("asymmetric: %v vs %v", s1, s2)
		}
		if s1 < 0 || s1 > 1 {
			t.Fatalf("out of range: %v", s1)
		}
	}
}

func path(vs ...nn.Vector) []nn.Vector { return vs }

func TestLearningPathSim(t *testing.T) {
	a := path(nn.Vector{1, 0}, nn.Vector{0, 1})
	if got := LearningPathSim(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical path sim = %v", got)
	}
	opp := path(nn.Vector{-1, 0}, nn.Vector{0, -1})
	if got := LearningPathSim(a, opp); math.Abs(got) > 1e-12 {
		t.Errorf("opposite path sim = %v, want 0", got)
	}
	orth := path(nn.Vector{0, 1}, nn.Vector{1, 0})
	if got := LearningPathSim(a, orth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("orthogonal path sim = %v, want 0.5", got)
	}
}

func TestLearningPathSimUnequalLengths(t *testing.T) {
	a := path(nn.Vector{1, 0}, nn.Vector{0, 1}, nn.Vector{1, 1})
	b := path(nn.Vector{1, 0})
	if got := LearningPathSim(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("prefix sim = %v, want 1", got)
	}
	if got := LearningPathSim(a, nil); got != 0 {
		t.Errorf("empty path sim = %v", got)
	}
}

func TestWasserstein1DBasics(t *testing.T) {
	if got := Wasserstein1D([]float64{0, 1}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("identical dists W = %v", got)
	}
	// Point masses at 0 and at 3: distance is the shift.
	if got := Wasserstein1D([]float64{0}, []float64{3}); math.Abs(got-3) > 1e-12 {
		t.Errorf("point mass W = %v, want 3", got)
	}
	// Shifting a whole distribution by c moves W by exactly c.
	xs := []float64{1, 2, 5, 9}
	ys := []float64{4, 5, 8, 12}
	if got := Wasserstein1D(xs, ys); math.Abs(got-3) > 1e-12 {
		t.Errorf("shifted W = %v, want 3", got)
	}
}

func TestWasserstein1DUnequalSizes(t *testing.T) {
	// {0,0} vs {0} are the same distribution.
	if got := Wasserstein1D([]float64{0, 0}, []float64{0}); math.Abs(got) > 1e-12 {
		t.Errorf("duplicated mass W = %v", got)
	}
	// Uniform{0,1} vs point at 0: W = mean |x| = 0.5.
	if got := Wasserstein1D([]float64{0, 1}, []float64{0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("W = %v, want 0.5", got)
	}
}

func TestWasserstein1DMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sample := func() []float64 {
		n := rng.Intn(6) + 1
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64() * 10
		}
		return out
	}
	for trial := 0; trial < 200; trial++ {
		a, b, c := sample(), sample(), sample()
		dab, dba := Wasserstein1D(a, b), Wasserstein1D(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", dab, dba)
		}
		if dab < 0 {
			t.Fatalf("negative distance %v", dab)
		}
		if Wasserstein1D(a, a) > 1e-9 {
			t.Fatal("d(a,a) != 0")
		}
		dac, dbc := Wasserstein1D(a, c), Wasserstein1D(b, c)
		if dab > dac+dbc+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", dab, dac, dbc)
		}
	}
}

func TestSlicedWassersteinTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var a, b []geo.Point
	for i := 0; i < 40; i++ {
		p := geo.Pt(rng.Float64()*10, rng.Float64()*10)
		a = append(a, p)
		b = append(b, p.Add(geo.Pt(5, 0)))
	}
	got := SlicedWasserstein(a, b, 16)
	// Projections of a +5 x-shift give |5 cosθ| averaged over θ ∈ [0,π):
	// (2/π)·5 ≈ 3.183.
	want := 2 / math.Pi * 5
	if math.Abs(got-want) > 0.2 {
		t.Errorf("sliced W = %v, want about %v", got, want)
	}
}

func TestSlicedWassersteinIdentity(t *testing.T) {
	a := []geo.Point{geo.Pt(1, 2), geo.Pt(3, 4)}
	if got := SlicedWasserstein(a, a, 8); got > 1e-9 {
		t.Errorf("self distance = %v", got)
	}
	if got := SlicedWasserstein(nil, a, 8); got != 0 {
		t.Errorf("empty distance = %v", got)
	}
	if got := SlicedWasserstein(a, a, 0); got > 1e-9 {
		t.Errorf("default projections self distance = %v", got)
	}
}

func TestDistributionSim(t *testing.T) {
	a := []geo.Point{geo.Pt(0, 0), geo.Pt(1, 1)}
	if got := DistributionSim(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical distribution sim = %v", got)
	}
	far := []geo.Point{geo.Pt(90, 45), geo.Pt(91, 44)}
	if got := DistributionSim(a, far); got > 0.2 {
		t.Errorf("far distribution sim = %v, want small", got)
	}
	if got := DistributionSim(nil, a); got != 0 {
		t.Errorf("empty distribution sim = %v", got)
	}
}

func TestSimilarityDispatch(t *testing.T) {
	a := &Features{
		POIs:   pois(geo.POIRetail, 1, 1),
		Path:   path(nn.Vector{1, 0}),
		Points: []geo.Point{geo.Pt(1, 1)},
	}
	for _, m := range []Metric{Distribution, Spatial, LearningPath} {
		got := Similarity(m, a, a)
		if got < 0.5 {
			t.Errorf("%v self-similarity = %v", m, got)
		}
	}
	if got := Similarity(Metric(99), a, a); got != 0 {
		t.Errorf("unknown metric sim = %v", got)
	}
}

func TestMetricString(t *testing.T) {
	if Distribution.String() != "Sim_d" || Spatial.String() != "Sim_s" || LearningPath.String() != "Sim_l" {
		t.Error("metric names wrong")
	}
	if Metric(9).String() != "Sim(?)" {
		t.Error("unknown metric name wrong")
	}
}

func TestMatrixSymmetric(t *testing.T) {
	m := NewMatrix(4, func(i, j int) float64 { return float64(i + j) })
	for i := 0; i < 4; i++ {
		if m.At(i, i) != 1 {
			t.Errorf("diagonal At(%d,%d) = %v", i, i, m.At(i, i))
		}
		for j := 0; j < 4; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Errorf("asymmetric at %d,%d", i, j)
			}
		}
	}
	if m.At(1, 2) != 3 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
}

func TestQuality(t *testing.T) {
	// Three items: 0 and 1 similar (0.8), 2 dissimilar to both (0.2).
	s := [][]float64{
		{1, 0.8, 0.2},
		{0.8, 1, 0.2},
		{0.2, 0.2, 1},
	}
	m := NewMatrix(3, func(i, j int) float64 { return s[i][j] })
	const gamma = 0.3
	if got := Quality(m, nil, gamma); got != 0 {
		t.Errorf("empty quality = %v", got)
	}
	if got := Quality(m, []int{1}, gamma); got != gamma {
		t.Errorf("singleton quality = %v", got)
	}
	if got := Quality(m, []int{0, 1}, gamma); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("pair quality = %v", got)
	}
	q3 := Quality(m, []int{0, 1, 2}, gamma)
	want := (0.8 + 0.2 + 0.2) * 2 / 6
	if math.Abs(q3-want) > 1e-12 {
		t.Errorf("triple quality = %v, want %v", q3, want)
	}
}

func TestUtilityMarginal(t *testing.T) {
	s := [][]float64{
		{1, 0.9, 0.1},
		{0.9, 1, 0.1},
		{0.1, 0.1, 1},
	}
	m := NewMatrix(3, func(i, j int) float64 { return s[i][j] })
	const gamma = 0.3
	// Item 2 joining {0,1} drags quality down: utility should be negative.
	u := Utility(m, []int{0, 1, 2}, 2, gamma)
	if u >= 0 {
		t.Errorf("bad join utility = %v, want negative", u)
	}
	// Item 1 joining {0}: quality goes γ→0.9.
	u = Utility(m, []int{0, 1}, 1, gamma)
	if math.Abs(u-(0.9-gamma)) > 1e-12 {
		t.Errorf("good join utility = %v", u)
	}
}

func TestUtilityPotentialProperty(t *testing.T) {
	// Exactness of the potential game (Thm. 1) relies on
	// u(Γ,G) = Q(G) − Q(G∖Γ) for every configuration; verify on random
	// matrices that the utility equals that quality difference.
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(5) + 2
		m := NewMatrix(n, func(i, j int) float64 { return r.Float64() })
		size := r.Intn(n) + 1
		members := r.Perm(n)[:size]
		item := members[r.Intn(size)]
		got := Utility(m, members, item, 0.25)
		var rest []int
		for _, x := range members {
			if x != item {
				rest = append(rest, x)
			}
		}
		want := Quality(m, members, 0.25) - Quality(m, rest, 0.25)
		return math.Abs(got-want) < 1e-12
	}
	for i := 0; i < 100; i++ {
		if !f(rng.Int63()) {
			t.Fatal("utility != marginal quality")
		}
	}
}

func TestMeanSimTo(t *testing.T) {
	m := NewMatrix(3, func(i, j int) float64 { return 0.5 })
	if got := MeanSimTo(m, 0, []int{1, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanSimTo = %v", got)
	}
	if got := MeanSimTo(m, 0, nil); got != 0 {
		t.Errorf("empty MeanSimTo = %v", got)
	}
}

func TestQualityBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6) + 1
		m := NewMatrix(n, func(i, j int) float64 { return r.Float64() })
		members := r.Perm(n)[:r.Intn(n)+1]
		q := Quality(m, members, 0.2)
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWasserstein1DHomogeneity(t *testing.T) {
	// W(aX, aY) = |a|·W(X, Y).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n1, n2 := rng.Intn(6)+1, rng.Intn(6)+1
		xs := make([]float64, n1)
		ys := make([]float64, n2)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 5
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() * 5
		}
		a := rng.NormFloat64() * 3
		sx := make([]float64, n1)
		sy := make([]float64, n2)
		for i := range xs {
			sx[i] = xs[i] * a
		}
		for i := range ys {
			sy[i] = ys[i] * a
		}
		w1 := Wasserstein1D(xs, ys)
		w2 := Wasserstein1D(sx, sy)
		if math.Abs(w2-math.Abs(a)*w1) > 1e-9*(1+w2) {
			t.Fatalf("homogeneity violated: a=%v W=%v scaled=%v", a, w1, w2)
		}
	}
}

func TestSlicedWassersteinRotationInvariance(t *testing.T) {
	// With many projections, rotating both point sets by the same angle
	// leaves the sliced distance (approximately) unchanged.
	rng := rand.New(rand.NewSource(19))
	var a, b []geo.Point
	for i := 0; i < 30; i++ {
		a = append(a, geo.Pt(rng.NormFloat64()*4, rng.NormFloat64()*4))
		b = append(b, geo.Pt(rng.NormFloat64()*4+3, rng.NormFloat64()*4))
	}
	rot := func(ps []geo.Point, th float64) []geo.Point {
		c, s := math.Cos(th), math.Sin(th)
		out := make([]geo.Point, len(ps))
		for i, p := range ps {
			out[i] = geo.Pt(c*p.X-s*p.Y, s*p.X+c*p.Y)
		}
		return out
	}
	w1 := SlicedWasserstein(a, b, 64)
	w2 := SlicedWasserstein(rot(a, 0.7), rot(b, 0.7), 64)
	if math.Abs(w1-w2) > 0.05*(w1+1e-9) {
		t.Errorf("rotation changed sliced W: %v vs %v", w1, w2)
	}
}
