package core

import (
	"context"
	"errors"
	"testing"
)

// lifecycle drives a canonical event sequence: two workers, two tasks, one
// batch, one accept, one reject, expiry.
func lifecycle(t *testing.T) *State {
	t.Helper()
	st := NewState()
	evs := []Event{
		WorkerRegistered{WorkerID: 1, Detour: 10, Speed: 1, MR: 0.8},
		WorkerRegistered{WorkerID: 2, Detour: 10, Speed: 1, MR: 0.9},
		WorkerReported{WorkerID: 1, X: 10, Y: 10},
		WorkerReported{WorkerID: 2, X: 40, Y: 10},
		TaskSubmitted{TaskID: 1, X: 12, Y: 10, Deadline: 20},
		TaskSubmitted{TaskID: 2, X: 42, Y: 10, Deadline: 3},
		BatchAssigned{Offers: []OfferIssued{
			{OfferID: 1, TaskID: 1, WorkerID: 1},
			{OfferID: 2, TaskID: 2, WorkerID: 2},
		}},
		OfferAccepted{OfferID: 1},
		OfferRejected{OfferID: 2},
		TickAdvanced{}, TickAdvanced{}, TickAdvanced{}, TickAdvanced{},
	}
	for i, ev := range evs {
		if err := st.Apply(ev); err != nil {
			t.Fatalf("apply event %d (%s): %v", i, ev.Kind(), err)
		}
	}
	return st
}

func TestLifecycleCounts(t *testing.T) {
	st := lifecycle(t)
	want := Counts{Offers: 2, Accepts: 1, Rejects: 1, Expired: 1, Batches: 1}
	if st.Counts != want {
		t.Fatalf("counts = %+v, want %+v", st.Counts, want)
	}
	if st.Tick != 4 || st.Applied != 13 {
		t.Fatalf("tick=%d applied=%d", st.Tick, st.Applied)
	}
	if st.Tasks[1].Status != StatusAccepted || st.Tasks[1].Accepted != 1 {
		t.Fatalf("task 1 = %+v", st.Tasks[1])
	}
	// Task 2 was rejected back to open, then expired at tick 4.
	if st.Tasks[2].Status != StatusExpired {
		t.Fatalf("task 2 = %+v", st.Tasks[2])
	}
	if !st.Tasks[2].Task.ExcludedWorker(2) {
		t.Fatal("rejected pair not excluded")
	}
	if len(st.Offers) != 0 {
		t.Fatalf("offers left over: %v", st.Offers)
	}
}

func TestApplyRejectsInvalidTransitions(t *testing.T) {
	st := NewState()
	must := func(ev Event) {
		t.Helper()
		if err := st.Apply(ev); err != nil {
			t.Fatalf("apply %s: %v", ev.Kind(), err)
		}
	}
	reject := func(ev Event, why string) {
		t.Helper()
		before := st.Digest()
		applied := st.Applied
		err := st.Apply(ev)
		var ae *ApplyError
		if err == nil || !errors.As(err, &ae) {
			t.Fatalf("%s: err = %v, want *ApplyError", why, err)
		}
		if st.Digest() != before || st.Applied != applied {
			t.Fatalf("%s: failed apply mutated state", why)
		}
	}

	reject(WorkerReported{WorkerID: 9, X: 1, Y: 1}, "report for unknown worker")
	reject(TaskSubmitted{TaskID: 0, X: 1, Y: 1, Deadline: 5}, "task id zero")
	must(WorkerRegistered{WorkerID: 1, Detour: 5, Speed: 1})
	reject(WorkerRegistered{WorkerID: 1, Detour: 5, Speed: 1}, "duplicate worker")
	must(TaskSubmitted{TaskID: 1, X: 1, Y: 1, Deadline: 5})
	reject(TaskSubmitted{TaskID: 1, X: 1, Y: 1, Deadline: 5}, "duplicate task")
	must(TickAdvanced{})
	reject(TaskSubmitted{TaskID: 2, X: 1, Y: 1, Deadline: 0}, "deadline before tick")
	reject(OfferAccepted{OfferID: 7}, "accept unknown offer")
	reject(BatchAssigned{Offers: []OfferIssued{{OfferID: 1, TaskID: 1, WorkerID: 9}}},
		"grant to unknown worker")
	must(WorkerReported{WorkerID: 1, X: 1, Y: 1})
	must(BatchAssigned{Offers: []OfferIssued{{OfferID: 1, TaskID: 1, WorkerID: 1}}})
	reject(BatchAssigned{Offers: []OfferIssued{{OfferID: 2, TaskID: 1, WorkerID: 1}}},
		"grant on offered task")
	reject(TaskCancelled{TaskID: 9}, "cancel unknown task")
	must(OfferAccepted{OfferID: 1})
	reject(OfferAccepted{OfferID: 1}, "double accept")
	reject(TaskCancelled{TaskID: 1}, "cancel accepted task")
}

func TestSnapshotRoundTripAndDigest(t *testing.T) {
	st := lifecycle(t)
	b := st.EncodeSnapshot()
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != st.Digest() {
		t.Fatalf("round-trip digest mismatch:\n%s\n%s", got.Digest(), st.Digest())
	}
	if string(got.EncodeSnapshot()) != string(b) {
		t.Fatal("re-encoded snapshot bytes differ")
	}
	// An independent replay of the same events digests identically.
	st2 := lifecycle(t)
	if st2.Digest() != st.Digest() {
		t.Fatal("same event sequence produced different digests")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	events := []Event{
		TaskSubmitted{TaskID: 3, X: 1.5, Y: 2.5, Deadline: 9},
		TaskCancelled{TaskID: 3},
		WorkerRegistered{WorkerID: 4, Detour: 7.5, Speed: 2, MR: 0.77},
		WorkerReported{WorkerID: 4, X: 0.25, Y: 0.75},
		TickAdvanced{},
		BatchAssigned{Offers: []OfferIssued{{OfferID: 1, TaskID: 3, WorkerID: 4}}, PredFallbacks: 2},
		DegradedBatch{Offers: []OfferIssued{{OfferID: 2, TaskID: 3, WorkerID: 4}}},
		OfferAccepted{OfferID: 1},
		OfferRejected{OfferID: 2},
		OfferRetracted{OfferID: 3},
	}
	for _, ev := range events {
		b, err := EncodeEvent(ev)
		if err != nil {
			t.Fatalf("encode %s: %v", ev.Kind(), err)
		}
		got, err := DecodeEvent(b)
		if err != nil {
			t.Fatalf("decode %s: %v", ev.Kind(), err)
		}
		b2, err := EncodeEvent(got)
		if err != nil || string(b2) != string(b) {
			t.Fatalf("%s: round trip %s != %s (%v)", ev.Kind(), b2, b, err)
		}
	}
	if _, err := DecodeEvent([]byte(`{"k":"martian"}`)); err == nil {
		t.Fatal("unknown kind decoded")
	} else {
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %T, want *CodecError", err)
		}
	}
	if _, err := DecodeEvent([]byte(`not json`)); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestBuildBatchDeterministicAndSorted(t *testing.T) {
	st := NewState()
	for id := 1; id <= 20; id++ {
		if err := st.Apply(WorkerRegistered{WorkerID: id, Detour: 10, Speed: 1, MR: 0.5}); err != nil {
			t.Fatal(err)
		}
		if err := st.Apply(WorkerReported{WorkerID: id, X: float64(id), Y: 5}); err != nil {
			t.Fatal(err)
		}
	}
	for id := 1; id <= 15; id++ {
		if err := st.Apply(TaskSubmitted{TaskID: id, X: float64(id), Y: 6, Deadline: 30}); err != nil {
			t.Fatal(err)
		}
	}
	in, err := BuildBatch(context.Background(), st, nil, nil, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tasks) != 15 || len(in.Workers) != 20 {
		t.Fatalf("batch = %d tasks, %d workers", len(in.Tasks), len(in.Workers))
	}
	for i := 1; i < len(in.TaskIDs); i++ {
		if in.TaskIDs[i-1] >= in.TaskIDs[i] {
			t.Fatal("task ids not sorted")
		}
	}
	for i := 1; i < len(in.Workers); i++ {
		if in.Workers[i-1].ID >= in.Workers[i].ID {
			t.Fatal("worker ids not sorted")
		}
	}
	// Stand-still forecast fills the horizon.
	if len(in.Workers[0].Predicted) != 4 {
		t.Fatalf("predicted horizon = %d", len(in.Workers[0].Predicted))
	}
	in8, err := BuildBatch(context.Background(), st, nil, nil, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(in8.Workers) != len(in.Workers) {
		t.Fatal("parallelism changed the batch")
	}
	for i := range in8.Workers {
		if in8.Workers[i].ID != in.Workers[i].ID || in8.Workers[i].Loc != in.Workers[i].Loc {
			t.Fatalf("worker slot %d differs across parallelism", i)
		}
	}
}
