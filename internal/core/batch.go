package core

import (
	"context"
	"math"
	"sort"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/par"
	"github.com/spatialcrowd/tamp/internal/predict"
)

// BatchInput is the assignment-ready view of the state for one batch: open,
// unexpired tasks and online, offer-free workers with at least one reported
// location, both in ascending ID order so the plan is independent of map
// iteration order. Workers[i] corresponds to no fixed slot in the state;
// TaskIDs[i] is the state task behind Tasks[i].
type BatchInput struct {
	Tasks   []assign.Task
	TaskIDs []int
	Workers []assign.Worker
	// PredFallbacks counts workers whose model forecast failed (panic or
	// non-finite output) and were degraded to a stand-still prediction.
	PredFallbacks int
}

// BuildBatch assembles the assignment input from the current state. The
// per-worker trajectory rollouts — the expensive part of a batch — fan out
// on the pool; every slot is index-addressed, so the result is bit-identical
// at any parallelism level. A cancelled ctx abandons the build.
//
// This is the single batch-input path shared by the live server and the
// offline replay bridge: replaying a recorded log rebuilds exactly the
// candidate sets the live run saw.
//
// fc memoizes the rollouts across batches (stationary workers reuse their
// forecasts bit-identically); a nil fc recomputes every forecast, with
// identical results either way.
func BuildBatch(ctx context.Context, st *State, models map[int]*predict.WorkerModel, fc *predict.ForecastCache, predHorizon, parallelism int) (BatchInput, error) {
	var in BatchInput
	for id, t := range st.Tasks {
		if t.Status == StatusOpen && t.Task.Deadline >= st.Tick {
			in.TaskIDs = append(in.TaskIDs, id)
		}
	}
	sort.Ints(in.TaskIDs)
	var workerIDs []int
	for id, w := range st.Workers {
		if !w.Online || w.OfferID != 0 || len(w.Trace) == 0 {
			continue
		}
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	if len(in.TaskIDs) == 0 || len(workerIDs) == 0 {
		in.TaskIDs = nil
		return in, nil
	}
	in.Tasks = make([]assign.Task, len(in.TaskIDs))
	for i, id := range in.TaskIDs {
		in.Tasks[i] = st.Tasks[id].Task
	}
	in.Workers = make([]assign.Worker, len(workerIDs))
	// fellBack is index-addressed per worker and reduced after the pool
	// joins, so the counter needs no synchronization inside the closure.
	fellBack := make([]bool, len(workerIDs))
	if err := par.ForEach(ctx, len(workerIDs), parallelism, func(i int) error {
		w := st.Workers[workerIDs[i]]
		cur := w.Trace[len(w.Trace)-1]
		aw := assign.Worker{
			ID: w.ID, Loc: cur, Detour: w.Detour, Speed: w.Speed, MR: w.MR,
		}
		if m := models[w.ID]; m != nil {
			aw.Predicted = SafeForecast(fc, m, w.Trace, predHorizon)
			if aw.Predicted == nil {
				fellBack[i] = true
			}
		}
		if aw.Predicted == nil {
			// No model, or its forecast failed: the worker stands still
			// rather than dropping out of the batch.
			for j := 0; j < predHorizon; j++ {
				aw.Predicted = append(aw.Predicted, cur)
			}
		}
		in.Workers[i] = aw
		return nil
	}); err != nil {
		return BatchInput{}, err
	}
	for _, fb := range fellBack {
		if fb {
			in.PredFallbacks++
		}
	}
	return in, nil
}

// SafeForecast isolates one worker's predictor: a panic or a non-finite
// forecast yields nil, and the caller degrades that worker — and only that
// worker — to a stand-still prediction. Forecasts go through fc when
// non-nil; a panicking rollout publishes no cache entry and a cached
// non-finite forecast is re-rejected on every hit, so caching never changes
// the outcome.
func SafeForecast(fc *predict.ForecastCache, m *predict.WorkerModel, trace []geo.Point, horizon int) (pred []geo.Point) {
	defer func() {
		if rec := recover(); rec != nil {
			pred = nil
		}
	}()
	pred = fc.Forecast(m, trace, horizon)
	for _, pt := range pred {
		if math.IsNaN(pt.X) || math.IsNaN(pt.Y) || math.IsInf(pt.X, 0) || math.IsInf(pt.Y, 0) {
			return nil
		}
	}
	return pred
}
