package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
)

// envelope is the wire form of one event: a kind tag plus the event's own
// JSON. Compact field names keep log records small; the payload is still
// human-readable with standard tools.
type envelope struct {
	K string          `json:"k"`
	D json.RawMessage `json:"d,omitempty"`
}

// CodecError reports an event payload that cannot be decoded — an unknown
// kind (a log written by a newer build) or malformed JSON (corruption that
// slipped past the WAL checksum, which protects frames, not semantics).
type CodecError struct {
	Kind   string
	Reason string
}

func (e *CodecError) Error() string {
	if e.Kind == "" {
		return fmt.Sprintf("core: decode event: %s", e.Reason)
	}
	return fmt.Sprintf("core: decode event %q: %s", e.Kind, e.Reason)
}

// EncodeEvent renders ev to its wire form.
func EncodeEvent(ev Event) ([]byte, error) {
	d, err := json.Marshal(ev)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{K: ev.Kind(), D: d})
}

// DecodeEvent parses one wire-form event. Unknown kinds yield a *CodecError
// rather than a silent skip: a log is either fully understood or the caller
// decides what to drop.
func DecodeEvent(b []byte) (Event, error) {
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, &CodecError{Reason: err.Error()}
	}
	var ev Event
	switch env.K {
	case KindTaskSubmitted:
		ev = &TaskSubmitted{}
	case KindTaskCancelled:
		ev = &TaskCancelled{}
	case KindWorkerRegistered:
		ev = &WorkerRegistered{}
	case KindWorkerReported:
		ev = &WorkerReported{}
	case KindTickAdvanced:
		return TickAdvanced{}, nil
	case KindBatchAssigned:
		ev = &BatchAssigned{}
	case KindDegradedBatch:
		ev = &DegradedBatch{}
	case KindOfferAccepted:
		ev = &OfferAccepted{}
	case KindOfferRejected:
		ev = &OfferRejected{}
	case KindOfferRetracted:
		ev = &OfferRetracted{}
	default:
		return nil, &CodecError{Kind: env.K, Reason: "unknown event kind"}
	}
	if len(env.D) > 0 {
		if err := json.Unmarshal(env.D, ev); err != nil {
			return nil, &CodecError{Kind: env.K, Reason: err.Error()}
		}
	}
	// Return by value so Apply's type switch sees the same concrete types
	// live callers construct.
	switch e := ev.(type) {
	case *TaskSubmitted:
		return *e, nil
	case *TaskCancelled:
		return *e, nil
	case *WorkerRegistered:
		return *e, nil
	case *WorkerReported:
		return *e, nil
	case *BatchAssigned:
		return *e, nil
	case *DegradedBatch:
		return *e, nil
	case *OfferAccepted:
		return *e, nil
	case *OfferRejected:
		return *e, nil
	case *OfferRetracted:
		return *e, nil
	}
	return nil, &CodecError{Kind: env.K, Reason: "unreachable"}
}

// snapshotVersion guards the snapshot layout; bump on incompatible change.
const snapshotVersion = 1

// Snapshot DTOs: maps become ID-sorted slices so the encoding — and
// therefore Digest — is byte-deterministic.
type taskSnap struct {
	ID       int        `json:"id"`
	X        float64    `json:"x"`
	Y        float64    `json:"y"`
	Arrival  int        `json:"arrival"`
	Deadline int        `json:"deadline"`
	Excluded []int      `json:"excluded,omitempty"`
	Status   TaskStatus `json:"status"`
	Offered  int        `json:"offered,omitempty"`
	Accepted int        `json:"accepted,omitempty"`
	OfferID  int        `json:"offerId,omitempty"`
}

type workerSnap struct {
	ID      int         `json:"id"`
	Detour  float64     `json:"detour"`
	Speed   float64     `json:"speed"`
	MR      float64     `json:"mr"`
	Online  bool        `json:"online,omitempty"`
	Trace   []geo.Point `json:"trace,omitempty"`
	OfferID int         `json:"offerId,omitempty"`
}

type offerSnap struct {
	ID       int `json:"id"`
	TaskID   int `json:"taskId"`
	WorkerID int `json:"workerId"`
}

type snapshotFile struct {
	Version   int          `json:"version"`
	Tick      int          `json:"tick"`
	NextTask  int          `json:"nextTask"`
	NextOffer int          `json:"nextOffer"`
	Applied   uint64       `json:"applied"`
	Tasks     []taskSnap   `json:"tasks"`
	Workers   []workerSnap `json:"workers"`
	Offers    []offerSnap  `json:"offers"`
	Counts    Counts       `json:"counts"`
}

// EncodeSnapshot renders the full state to deterministic bytes: the same
// state always encodes to the same bytes regardless of map iteration order
// or the event order that produced it.
func (s *State) EncodeSnapshot() []byte {
	f := snapshotFile{
		Version: snapshotVersion, Tick: s.Tick,
		NextTask: s.NextTask, NextOffer: s.NextOffer, Applied: s.Applied,
		Tasks:   make([]taskSnap, 0, len(s.Tasks)),
		Workers: make([]workerSnap, 0, len(s.Workers)),
		Offers:  make([]offerSnap, 0, len(s.Offers)),
		Counts:  s.Counts,
	}
	for _, t := range s.Tasks {
		f.Tasks = append(f.Tasks, taskSnap{
			ID: t.Task.ID, X: t.Task.Loc.X, Y: t.Task.Loc.Y,
			Arrival: t.Task.Arrival, Deadline: t.Task.Deadline,
			Excluded: t.Task.Excluded, Status: t.Status,
			Offered: t.Offered, Accepted: t.Accepted, OfferID: t.OfferID,
		})
	}
	sort.Slice(f.Tasks, func(i, j int) bool { return f.Tasks[i].ID < f.Tasks[j].ID })
	for _, w := range s.Workers {
		f.Workers = append(f.Workers, workerSnap{
			ID: w.ID, Detour: w.Detour, Speed: w.Speed, MR: w.MR,
			Online: w.Online, Trace: w.Trace, OfferID: w.OfferID,
		})
	}
	sort.Slice(f.Workers, func(i, j int) bool { return f.Workers[i].ID < f.Workers[j].ID })
	for _, o := range s.Offers {
		f.Offers = append(f.Offers, offerSnap{ID: o.ID, TaskID: o.TaskID, WorkerID: o.WorkerID})
	}
	sort.Slice(f.Offers, func(i, j int) bool { return f.Offers[i].ID < f.Offers[j].ID })
	b, err := json.Marshal(f)
	if err != nil {
		// Every field is a plain value; marshal cannot fail.
		panic(fmt.Sprintf("core: encode snapshot: %v", err))
	}
	return b
}

// DecodeSnapshot rebuilds a State from EncodeSnapshot bytes.
func DecodeSnapshot(b []byte) (*State, error) {
	var f snapshotFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", f.Version, snapshotVersion)
	}
	s := NewState()
	s.Tick, s.NextTask, s.NextOffer, s.Applied = f.Tick, f.NextTask, f.NextOffer, f.Applied
	s.Counts = f.Counts
	for _, t := range f.Tasks {
		s.Tasks[t.ID] = &Task{
			Task: assignTask(t), Status: t.Status,
			Offered: t.Offered, Accepted: t.Accepted, OfferID: t.OfferID,
		}
	}
	for _, w := range f.Workers {
		s.Workers[w.ID] = &Worker{
			ID: w.ID, Detour: w.Detour, Speed: w.Speed, MR: w.MR,
			Online: w.Online, Trace: w.Trace, OfferID: w.OfferID,
		}
	}
	for _, o := range f.Offers {
		s.Offers[o.ID] = &Offer{ID: o.ID, TaskID: o.TaskID, WorkerID: o.WorkerID}
	}
	return s, nil
}

func assignTask(t taskSnap) assign.Task {
	return assign.Task{
		ID: t.ID, Loc: geo.Pt(t.X, t.Y),
		Arrival: t.Arrival, Deadline: t.Deadline, Excluded: t.Excluded,
	}
}

// Digest is the hex SHA-256 of the deterministic snapshot encoding — two
// states are bit-identical exactly when their digests match, which is what
// the crash-replay equivalence tests assert.
func (s *State) Digest() string {
	h := sha256.Sum256(s.EncodeSnapshot())
	return hex.EncodeToString(h[:])
}
