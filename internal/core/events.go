// Package core is the deterministic, transport-agnostic state machine of
// the online platform. Every mutation of platform state — tasks arriving,
// workers reporting, offers moving through their lifecycle — is a typed
// Event, and the only mutation path is State.Apply. The HTTP server
// (internal/server) reduces each handler to decode → validate → append the
// event to a write-ahead log → Apply → respond; the deterministic simulator
// (internal/platform) can emit the same events, and the offline replay
// bridge (internal/replay) re-runs a recorded log through any assigner.
//
// Determinism is the contract: applying the same event sequence to a fresh
// State always yields the same state, and EncodeSnapshot renders it to the
// same bytes (maps are serialized as ID-sorted slices), so recovery and
// replay can be checked bit for bit via Digest. The package imports no
// net/http and holds no clocks, sockets, or goroutines.
package core

// Event is one atomic state transition. Events are immutable once created;
// IDs they carry (task, worker, offer) are allocated by the caller reading
// the state under its lock before Apply, so a recorded event sequence is
// self-contained and replays without consulting any allocator.
type Event interface {
	// Kind returns the stable wire name of the event type (see codec.go).
	Kind() string
}

// TaskSubmitted posts a new spatial task. X, Y are grid coordinates already
// clamped to the grid by the transport layer; Deadline is an absolute tick.
// TaskID must be unused (the server allocates NextTaskID, the simulator uses
// workload IDs).
type TaskSubmitted struct {
	TaskID   int     `json:"taskId"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"`
}

// TaskCancelled withdraws an open or offered task; a pending offer on it is
// retracted as part of the same transition.
type TaskCancelled struct {
	TaskID int `json:"taskId"`
}

// WorkerRegistered adds a worker with its effective parameters (defaults and
// model-derived MR already resolved by the caller). Detour is in grid cells.
type WorkerRegistered struct {
	WorkerID int     `json:"workerId"`
	Detour   float64 `json:"detour"`
	Speed    float64 `json:"speed"`
	MR       float64 `json:"mr"`
}

// WorkerReported appends one location report to the worker's trace and
// marks the worker online. Coordinates are pre-clamped grid points.
type WorkerReported struct {
	WorkerID int     `json:"workerId"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
}

// TickAdvanced moves the platform clock forward one tick. Tasks whose
// deadline has passed expire as part of the same transition, retracting
// their pending offers — expiry is derived deterministically from the clock
// rather than recorded as separate events.
type TickAdvanced struct{}

// OfferIssued is one granted (task, worker) pair inside a batch event. It
// is not a standalone event: offers are only ever issued by a batch.
type OfferIssued struct {
	OfferID  int `json:"offerId"`
	TaskID   int `json:"taskId"`
	WorkerID int `json:"workerId"`
}

// BatchAssigned records the plan one assignment batch produced: the offers
// granted (possibly none — empty batches still count) and how many worker
// forecasts degraded to stand-still while building the batch input.
type BatchAssigned struct {
	Offers        []OfferIssued `json:"offers,omitempty"`
	PredFallbacks int           `json:"predFallbacks,omitempty"`
}

// DegradedBatch is BatchAssigned for a batch that fell back to the greedy
// assigner (deadline blown or primary assigner panicked). It applies
// identically but additionally counts as a degraded batch.
type DegradedBatch struct {
	Offers        []OfferIssued `json:"offers,omitempty"`
	PredFallbacks int           `json:"predFallbacks,omitempty"`
}

// OfferAccepted commits the offer's worker to its task.
type OfferAccepted struct {
	OfferID int `json:"offerId"`
}

// OfferRejected declines the offer; the task returns to the open pool and
// the (task, worker) pair is excluded from all future batches.
type OfferRejected struct {
	OfferID int `json:"offerId"`
}

// OfferRetracted withdraws an offer outside the accept/reject path — the
// defensive cleanup when a decision arrives for an offer whose task has
// moved on.
type OfferRetracted struct {
	OfferID int `json:"offerId"`
}

// Wire names. These are persisted in write-ahead logs; never renumber or
// reuse them.
const (
	KindTaskSubmitted    = "task_submitted"
	KindTaskCancelled    = "task_cancelled"
	KindWorkerRegistered = "worker_registered"
	KindWorkerReported   = "worker_reported"
	KindTickAdvanced     = "tick_advanced"
	KindBatchAssigned    = "batch_assigned"
	KindDegradedBatch    = "degraded_batch"
	KindOfferAccepted    = "offer_accepted"
	KindOfferRejected    = "offer_rejected"
	KindOfferRetracted   = "offer_retracted"
)

// Kind implements Event.
func (TaskSubmitted) Kind() string    { return KindTaskSubmitted }
func (TaskCancelled) Kind() string    { return KindTaskCancelled }
func (WorkerRegistered) Kind() string { return KindWorkerRegistered }
func (WorkerReported) Kind() string   { return KindWorkerReported }
func (TickAdvanced) Kind() string     { return KindTickAdvanced }
func (BatchAssigned) Kind() string    { return KindBatchAssigned }
func (DegradedBatch) Kind() string    { return KindDegradedBatch }
func (OfferAccepted) Kind() string    { return KindOfferAccepted }
func (OfferRejected) Kind() string    { return KindOfferRejected }
func (OfferRetracted) Kind() string   { return KindOfferRetracted }
