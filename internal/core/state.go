package core

import (
	"fmt"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
)

// TaskStatus enumerates a task's lifecycle.
type TaskStatus string

// Task lifecycle states. (Status* naming keeps them clear of the event
// types: StatusCancelled is the state a TaskCancelled event leads to.)
const (
	StatusOpen      TaskStatus = "open"      // waiting for assignment
	StatusOffered   TaskStatus = "offered"   // offered to a worker, awaiting decision
	StatusAccepted  TaskStatus = "accepted"  // worker committed to serve it
	StatusExpired   TaskStatus = "expired"   // deadline passed unserved
	StatusCancelled TaskStatus = "cancelled" // withdrawn by the requester
)

// maxTrace caps each worker's reported-location history; predictors only
// ever consume a bounded window.
const maxTrace = 256

// Task is a task's full platform-side record.
type Task struct {
	Task     assign.Task
	Status   TaskStatus
	Offered  int // worker id of the pending offer
	Accepted int // worker id that accepted
	OfferID  int // id of the pending offer (0 = none); mirrors Status == StatusOffered
}

// Worker is a worker's full platform-side record.
type Worker struct {
	ID      int
	Detour  float64 // cells
	Speed   float64 // cells/tick
	MR      float64
	Online  bool
	Trace   []geo.Point // reported locations, most recent last
	OfferID int         // 0 = none pending
}

// Offer is one outstanding (task, worker) proposal.
type Offer struct {
	ID       int
	TaskID   int
	WorkerID int
}

// Counts are the monotonic event tallies of a run. They live inside the
// state machine so recovery restores them bit-identically; the server
// mirrors them into its obs registry.
type Counts struct {
	Offers          int64 `json:"offers"`
	Accepts         int64 `json:"accepts"`
	Rejects         int64 `json:"rejects"`
	Expired         int64 `json:"expired"`
	Retracted       int64 `json:"retracted"`
	Batches         int64 `json:"batches"`
	DegradedBatches int64 `json:"degradedBatches"`
	PredFallbacks   int64 `json:"predFallbacks"`
}

// State is the platform state machine. The zero value is not usable;
// construct with NewState. State is not safe for concurrent use — the owner
// serializes access (the server holds its mutex, replay is single-threaded).
type State struct {
	Tick      int
	NextTask  int
	NextOffer int
	// Applied counts events applied since genesis; it equals the write-ahead
	// log's next sequence number when every appended event is applied.
	Applied uint64

	Tasks   map[int]*Task
	Workers map[int]*Worker
	Offers  map[int]*Offer
	Counts  Counts
}

// NewState returns an empty platform state at tick 0.
func NewState() *State {
	return &State{
		NextTask:  1,
		NextOffer: 1,
		Tasks:     map[int]*Task{},
		Workers:   map[int]*Worker{},
		Offers:    map[int]*Offer{},
	}
}

// ApplyError reports an event that violates a state invariant. Apply leaves
// the state untouched when it returns one, so a caller that validated before
// appending can treat it as a programming error, and replay can surface the
// exact sequence position that diverged.
type ApplyError struct {
	Event  Event
	Reason string
}

func (e *ApplyError) Error() string {
	return fmt.Sprintf("core: cannot apply %s: %s", e.Event.Kind(), e.Reason)
}

func applyErr(ev Event, format string, args ...any) error {
	return &ApplyError{Event: ev, Reason: fmt.Sprintf(format, args...)}
}

// Apply executes one state transition. It validates the event against the
// current state first and mutates only if the transition is legal, so a
// failed Apply never leaves partial effects. Every legal mutation of the
// platform flows through here — there is no other write path.
func (s *State) Apply(ev Event) error {
	var err error
	switch e := ev.(type) {
	case TaskSubmitted:
		err = s.applyTaskSubmitted(e)
	case TaskCancelled:
		err = s.applyTaskCancelled(e)
	case WorkerRegistered:
		err = s.applyWorkerRegistered(e)
	case WorkerReported:
		err = s.applyWorkerReported(e)
	case TickAdvanced:
		s.applyTickAdvanced()
	case BatchAssigned:
		err = s.applyBatch(ev, e.Offers, e.PredFallbacks, false)
	case DegradedBatch:
		err = s.applyBatch(ev, e.Offers, e.PredFallbacks, true)
	case OfferAccepted:
		err = s.applyDecision(ev, e.OfferID, true)
	case OfferRejected:
		err = s.applyDecision(ev, e.OfferID, false)
	case OfferRetracted:
		err = s.applyOfferRetracted(e)
	default:
		err = applyErr(ev, "unknown event type %T", ev)
	}
	if err != nil {
		return err
	}
	s.Applied++
	return nil
}

func (s *State) applyTaskSubmitted(e TaskSubmitted) error {
	if e.TaskID <= 0 {
		return applyErr(e, "task id %d not positive", e.TaskID)
	}
	if _, dup := s.Tasks[e.TaskID]; dup {
		return applyErr(e, "task %d already exists", e.TaskID)
	}
	if e.Deadline < s.Tick {
		return applyErr(e, "deadline %d before current tick %d", e.Deadline, s.Tick)
	}
	s.Tasks[e.TaskID] = &Task{
		Task: assign.Task{
			ID: e.TaskID, Loc: geo.Pt(e.X, e.Y),
			Arrival: s.Tick, Deadline: e.Deadline,
		},
		Status: StatusOpen,
	}
	if e.TaskID >= s.NextTask {
		s.NextTask = e.TaskID + 1
	}
	return nil
}

func (s *State) applyTaskCancelled(e TaskCancelled) error {
	t, ok := s.Tasks[e.TaskID]
	if !ok {
		return applyErr(e, "task %d not found", e.TaskID)
	}
	if t.Status == StatusAccepted {
		return applyErr(e, "task %d already accepted", e.TaskID)
	}
	s.retractOffer(t)
	t.Status = StatusCancelled
	return nil
}

func (s *State) applyWorkerRegistered(e WorkerRegistered) error {
	if e.WorkerID <= 0 {
		return applyErr(e, "worker id %d not positive", e.WorkerID)
	}
	if _, dup := s.Workers[e.WorkerID]; dup {
		return applyErr(e, "worker %d already registered", e.WorkerID)
	}
	s.Workers[e.WorkerID] = &Worker{
		ID: e.WorkerID, Detour: e.Detour, Speed: e.Speed, MR: e.MR,
	}
	return nil
}

func (s *State) applyWorkerReported(e WorkerReported) error {
	w, ok := s.Workers[e.WorkerID]
	if !ok {
		return applyErr(e, "worker %d not registered", e.WorkerID)
	}
	w.Online = true
	w.Trace = append(w.Trace, geo.Pt(e.X, e.Y))
	if len(w.Trace) > maxTrace {
		w.Trace = w.Trace[len(w.Trace)-maxTrace:]
	}
	return nil
}

func (s *State) applyTickAdvanced() {
	s.Tick++
	// Expiry iterates the task map; each expiry is independent, so the final
	// state does not depend on iteration order.
	for _, t := range s.Tasks {
		if (t.Status == StatusOpen || t.Status == StatusOffered) && t.Task.Deadline < s.Tick {
			s.retractOffer(t)
			t.Status = StatusExpired
			s.Counts.Expired++
		}
	}
}

func (s *State) applyBatch(ev Event, offers []OfferIssued, predFallbacks int, degraded bool) error {
	// Validate every grant before mutating anything: a batch applies as a
	// unit or not at all.
	usedTask := make(map[int]bool, len(offers))
	usedWorker := make(map[int]bool, len(offers))
	usedOffer := make(map[int]bool, len(offers))
	for _, g := range offers {
		if g.OfferID <= 0 {
			return applyErr(ev, "offer id %d not positive", g.OfferID)
		}
		if _, dup := s.Offers[g.OfferID]; dup || usedOffer[g.OfferID] {
			return applyErr(ev, "offer id %d already in use", g.OfferID)
		}
		t, ok := s.Tasks[g.TaskID]
		if !ok {
			return applyErr(ev, "offer %d: task %d not found", g.OfferID, g.TaskID)
		}
		if t.Status != StatusOpen || usedTask[g.TaskID] {
			return applyErr(ev, "offer %d: task %d not open", g.OfferID, g.TaskID)
		}
		w, ok := s.Workers[g.WorkerID]
		if !ok {
			return applyErr(ev, "offer %d: worker %d not registered", g.OfferID, g.WorkerID)
		}
		if w.OfferID != 0 || usedWorker[g.WorkerID] {
			return applyErr(ev, "offer %d: worker %d already has a pending offer", g.OfferID, g.WorkerID)
		}
		usedTask[g.TaskID], usedWorker[g.WorkerID], usedOffer[g.OfferID] = true, true, true
	}
	for _, g := range offers {
		s.Offers[g.OfferID] = &Offer{ID: g.OfferID, TaskID: g.TaskID, WorkerID: g.WorkerID}
		t := s.Tasks[g.TaskID]
		t.Status = StatusOffered
		t.Offered = g.WorkerID
		t.OfferID = g.OfferID
		s.Workers[g.WorkerID].OfferID = g.OfferID
		if g.OfferID >= s.NextOffer {
			s.NextOffer = g.OfferID + 1
		}
	}
	s.Counts.Offers += int64(len(offers))
	s.Counts.Batches++
	if degraded {
		s.Counts.DegradedBatches++
	}
	s.Counts.PredFallbacks += int64(predFallbacks)
	return nil
}

func (s *State) applyDecision(ev Event, offerID int, accept bool) error {
	off, ok := s.Offers[offerID]
	if !ok {
		return applyErr(ev, "offer %d not found", offerID)
	}
	t := s.Tasks[off.TaskID]
	if t == nil || t.Status != StatusOffered || t.OfferID != offerID {
		return applyErr(ev, "offer %d is stale", offerID)
	}
	delete(s.Offers, offerID)
	if w := s.Workers[off.WorkerID]; w != nil {
		w.OfferID = 0
	}
	t.OfferID = 0
	if accept {
		t.Status = StatusAccepted
		t.Accepted = off.WorkerID
		s.Counts.Accepts++
	} else {
		t.Status = StatusOpen
		t.Offered = 0
		// Never re-offer a declined pair.
		t.Task.Excluded = append(t.Task.Excluded, off.WorkerID)
		s.Counts.Rejects++
	}
	return nil
}

func (s *State) applyOfferRetracted(e OfferRetracted) error {
	off, ok := s.Offers[e.OfferID]
	if !ok {
		return applyErr(e, "offer %d not found", e.OfferID)
	}
	delete(s.Offers, e.OfferID)
	if w := s.Workers[off.WorkerID]; w != nil && w.OfferID == e.OfferID {
		w.OfferID = 0
	}
	if t := s.Tasks[off.TaskID]; t != nil && t.OfferID == e.OfferID {
		t.OfferID = 0
		t.Offered = 0
		if t.Status == StatusOffered {
			t.Status = StatusOpen
		}
	}
	s.Counts.Retracted++
	return nil
}

// retractOffer withdraws the task's pending offer, if any, freeing the
// worker. Internal helper of cancel and expiry transitions.
func (s *State) retractOffer(t *Task) {
	if t.OfferID == 0 {
		return
	}
	if off := s.Offers[t.OfferID]; off != nil {
		if w := s.Workers[off.WorkerID]; w != nil {
			w.OfferID = 0
		}
		delete(s.Offers, off.ID)
	}
	t.OfferID = 0
	t.Offered = 0
}

// OpenTasks reports how many tasks are currently waiting for assignment.
func (s *State) OpenTasks() int {
	n := 0
	for _, t := range s.Tasks {
		if t.Status == StatusOpen {
			n++
		}
	}
	return n
}
