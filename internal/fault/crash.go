package fault

import (
	"fmt"
	"sync/atomic"
)

// Crash is the panic value a Crasher raises, so tests can tell an injected
// crash apart from a genuine bug.
type Crash struct {
	Point string // the crash point that fired
	Hit   int    // how many times the point had been reached, inclusive
}

func (c Crash) Error() string {
	return fmt.Sprintf("fault: injected crash at %q (hit %d)", c.Point, c.Hit)
}

// IsCrash reports whether a recovered panic value is an injected crash.
func IsCrash(v any) bool {
	_, ok := v.(Crash)
	return ok
}

// Crasher panics the Nth time a named crash point is reached, simulating a
// process kill at an exact position inside a durability-critical section
// (mid-append, between a snapshot write and its rename, ...). Components
// expose crash points by calling Hit at each one; production passes a nil
// *Crasher, which is valid and never fires. Hit is safe for concurrent use.
type Crasher struct {
	point string
	after int64
	hits  atomic.Int64
}

// NewCrasher arms a crash at the after-th hit (1 = first) of point.
func NewCrasher(point string, after int) *Crasher {
	if after <= 0 {
		after = 1
	}
	return &Crasher{point: point, after: int64(after)}
}

// Hit reports one arrival at a crash point and panics with a Crash value if
// this is the armed occurrence. A nil Crasher never fires.
func (c *Crasher) Hit(point string) {
	if c == nil || point != c.point {
		return
	}
	if n := c.hits.Add(1); n == c.after {
		panic(Crash{Point: point, Hit: int(n)})
	}
}

// Fired reports whether the armed crash has gone off — the test-side check
// that an injected kill actually happened before asserting on recovery.
func (c *Crasher) Fired() bool {
	if c == nil {
		return false
	}
	return c.hits.Load() >= c.after
}

// Hits returns how many times the armed point has been reached.
func (c *Crasher) Hits() int {
	if c == nil {
		return 0
	}
	return int(c.hits.Load())
}
