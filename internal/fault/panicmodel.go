package fault

import (
	"fmt"

	"github.com/spatialcrowd/tamp/internal/nn"
)

// PanicModel wraps an nn.Model and panics on Predict once more than After
// calls have been made. It stands in for a predictor with a latent bug
// (index out of range, NaN explosion) so tests can prove the platform's
// isolation story: the panic is captured by the surrounding par pool or
// recovery guard and never kills the process.
//
// The wrapper is not safe for concurrent use, matching the contract that
// each worker owns its model exclusively.
type PanicModel struct {
	nn.Model
	// After is how many Predict calls succeed before the panic (0 = panic
	// on the first call).
	After int
	calls int
}

// Predict panics once the call budget is spent; otherwise it delegates.
func (p *PanicModel) Predict(in [][]float64, seqOut int) [][]float64 {
	p.calls++
	if p.calls > p.After {
		panic(fmt.Sprintf("fault.PanicModel: injected predictor panic (call %d)", p.calls))
	}
	return p.Model.Predict(in, seqOut)
}

// Calls returns how many Predict calls the wrapper has seen.
func (p *PanicModel) Calls() int { return p.calls }
