// Package fault is a deterministic fault injector for chaos-testing the
// platform. Every decision — is this worker offline at tick t, is this
// location report dropped, does this predictor call fail — is a pure
// function of (seed, entity id, tick, channel) through a splitmix64-style
// hash. No state, no mutexes, no call-order dependence: the same seed
// produces the same fault schedule whether the platform asks from one
// goroutine or sixteen, in any order, which keeps chaos runs bit-for-bit
// reproducible at every parallelism level.
package fault

import "math"

// Config sets the fault rates. All probabilities are in [0, 1]; zero
// disables that fault class. The zero value injects nothing.
type Config struct {
	// Seed namespaces the whole schedule; two seeds give independent runs.
	Seed int64
	// WorkerChurn is the per-worker-per-tick probability of being offline
	// (invisible to the matcher, as if the app lost connectivity).
	WorkerChurn float64
	// DropReport is the per-report probability that a worker's location
	// ping never reaches the platform.
	DropReport float64
	// GPSNoise is the per-report probability that a ping is perturbed;
	// GPSNoiseCells is the Gaussian σ of that perturbation in grid cells.
	GPSNoise      float64
	GPSNoiseCells float64
	// PredictorFail is the per-worker-per-batch probability that the
	// mobility predictor errors out and the platform must fall back to a
	// stand-still forecast.
	PredictorFail float64
	// DecisionDelay is the per-assignment probability that the worker's
	// accept/reject lands late; the delay is 1..DecisionDelayTicks ticks
	// (DecisionDelayTicks defaults to 3 when the rate is set).
	DecisionDelay      float64
	DecisionDelayTicks int
}

// Injector answers fault queries for one Config. A nil *Injector is valid
// and injects nothing, so callers never need to branch.
type Injector struct {
	cfg Config
}

// New returns an injector for cfg.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's configuration (zero value when nil).
func (f *Injector) Config() Config {
	if f == nil {
		return Config{}
	}
	return f.cfg
}

// Hash channels: each fault class draws from its own independent stream so
// that, e.g., raising the churn rate does not reshuffle which reports drop.
const (
	chChurn uint64 = 1 + iota
	chDrop
	chNoise
	chNoiseU1
	chNoiseU2
	chPredFail
	chDelayHit
	chDelayLen
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds (seed, channel, entity, tick) into one 64-bit draw.
func (f *Injector) hash(ch uint64, entity, tick int) uint64 {
	h := mix64(uint64(f.cfg.Seed) ^ mix64(ch))
	h = mix64(h ^ mix64(uint64(int64(entity))))
	return mix64(h ^ mix64(uint64(int64(tick))))
}

// uniform maps a draw to [0, 1) using the top 53 bits.
func (f *Injector) uniform(ch uint64, entity, tick int) float64 {
	return float64(f.hash(ch, entity, tick)>>11) / (1 << 53)
}

// Offline reports whether the worker is churned out for this tick.
func (f *Injector) Offline(workerID, tick int) bool {
	if f == nil || f.cfg.WorkerChurn <= 0 {
		return false
	}
	return f.uniform(chChurn, workerID, tick) < f.cfg.WorkerChurn
}

// DropReport reports whether the worker's location ping at this tick was
// lost in transit.
func (f *Injector) DropReport(workerID, tick int) bool {
	if f == nil || f.cfg.DropReport <= 0 {
		return false
	}
	return f.uniform(chDrop, workerID, tick) < f.cfg.DropReport
}

// GPSNoise returns the (dx, dy) perturbation for the worker's ping at this
// tick, and whether one applies at all. The offset is Gaussian with
// σ = GPSNoiseCells via Box–Muller on two hash-derived uniforms.
func (f *Injector) GPSNoise(workerID, tick int) (dx, dy float64, ok bool) {
	if f == nil || f.cfg.GPSNoise <= 0 || f.cfg.GPSNoiseCells <= 0 {
		return 0, 0, false
	}
	if f.uniform(chNoise, workerID, tick) >= f.cfg.GPSNoise {
		return 0, 0, false
	}
	u1 := f.uniform(chNoiseU1, workerID, tick)
	u2 := f.uniform(chNoiseU2, workerID, tick)
	if u1 < 1e-300 { // guard log(0)
		u1 = 1e-300
	}
	r := math.Sqrt(-2*math.Log(u1)) * f.cfg.GPSNoiseCells
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2), true
}

// PredictorFails reports whether the worker's mobility predictor errors out
// for this batch.
func (f *Injector) PredictorFails(workerID, tick int) bool {
	if f == nil || f.cfg.PredictorFail <= 0 {
		return false
	}
	return f.uniform(chPredFail, workerID, tick) < f.cfg.PredictorFail
}

// DecisionDelay returns how many ticks the accept/reject for taskID,
// assigned at tick, arrives late (0 = on time).
func (f *Injector) DecisionDelay(taskID, tick int) int {
	if f == nil || f.cfg.DecisionDelay <= 0 {
		return 0
	}
	if f.uniform(chDelayHit, taskID, tick) >= f.cfg.DecisionDelay {
		return 0
	}
	maxTicks := f.cfg.DecisionDelayTicks
	if maxTicks <= 0 {
		maxTicks = 3
	}
	return 1 + int(f.hash(chDelayLen, taskID, tick)%uint64(maxTicks))
}
