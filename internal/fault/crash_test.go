package fault

import "testing"

func TestCrasherFiresOnceAtArmedHit(t *testing.T) {
	c := NewCrasher("wal.append.sync", 3)
	c.Hit("wal.append.sync")
	c.Hit("other.point") // different point never counts
	c.Hit("wal.append.sync")
	fired := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if !IsCrash(r) {
					t.Fatalf("panic value = %#v, want Crash", r)
				}
				fired = true
			}
		}()
		c.Hit("wal.append.sync")
	}()
	if !fired {
		t.Fatal("crasher did not fire on armed hit")
	}
	// Subsequent hits do not re-fire: the "process" is already dead, and a
	// recovered test harness must be able to keep calling hooks.
	c.Hit("wal.append.sync")
	if c.Hits() != 4 {
		t.Fatalf("hits = %d, want 4", c.Hits())
	}
}

func TestNilCrasherIsInert(t *testing.T) {
	var c *Crasher
	c.Hit("anything")
	if c.Hits() != 0 {
		t.Fatal("nil crasher counted")
	}
	if c.Fired() {
		t.Fatal("nil crasher reports fired")
	}
}

func TestFiredTracksTheArmedHit(t *testing.T) {
	c := NewCrasher("p", 2)
	if c.Fired() {
		t.Fatal("fired before any hit")
	}
	c.Hit("p")
	if c.Fired() {
		t.Fatal("fired one hit early")
	}
	func() {
		defer func() { recover() }()
		c.Hit("p")
	}()
	if !c.Fired() {
		t.Fatal("not fired after the armed hit")
	}
}
