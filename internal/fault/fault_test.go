package fault

import (
	"math"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var f *Injector
	if f.Offline(1, 2) || f.DropReport(1, 2) || f.PredictorFails(1, 2) {
		t.Fatal("nil injector reported a fault")
	}
	if _, _, ok := f.GPSNoise(1, 2); ok {
		t.Fatal("nil injector produced noise")
	}
	if d := f.DecisionDelay(1, 2); d != 0 {
		t.Fatalf("nil injector delayed a decision by %d", d)
	}
}

func TestDeterministicAcrossCallOrder(t *testing.T) {
	f := New(Config{Seed: 42, WorkerChurn: 0.3, DropReport: 0.2,
		GPSNoise: 0.5, GPSNoiseCells: 1.5, PredictorFail: 0.1,
		DecisionDelay: 0.4, DecisionDelayTicks: 5})
	// Query the same (entity, tick) grid twice in opposite orders: a
	// stateless injector must answer identically.
	type obs struct {
		off, drop, pf bool
		dx, dy        float64
		noisy         bool
		delay         int
	}
	grid := func(forward bool) map[[2]int]obs {
		out := map[[2]int]obs{}
		for i := 0; i < 20; i++ {
			for tk := 0; tk < 20; tk++ {
				w, tick := i, tk
				if !forward {
					w, tick = 19-i, 19-tk
				}
				var o obs
				o.off = f.Offline(w, tick)
				o.drop = f.DropReport(w, tick)
				o.pf = f.PredictorFails(w, tick)
				o.dx, o.dy, o.noisy = f.GPSNoise(w, tick)
				o.delay = f.DecisionDelay(w, tick)
				out[[2]int{w, tick}] = o
			}
		}
		return out
	}
	a, b := grid(true), grid(false)
	for k, va := range a {
		if vb := b[k]; va != vb {
			t.Fatalf("injector answers depend on call order at %v: %+v vs %+v", k, va, vb)
		}
	}
}

func TestRatesRoughlyMatchConfig(t *testing.T) {
	f := New(Config{Seed: 7, WorkerChurn: 0.2, DropReport: 0.1, PredictorFail: 0.05})
	const n = 200 * 200
	var off, drop, pf int
	for w := 0; w < 200; w++ {
		for tick := 0; tick < 200; tick++ {
			if f.Offline(w, tick) {
				off++
			}
			if f.DropReport(w, tick) {
				drop++
			}
			if f.PredictorFails(w, tick) {
				pf++
			}
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / n
		if math.Abs(rate-want) > 0.02 {
			t.Errorf("%s rate = %.3f, want ~%.2f", name, rate, want)
		}
	}
	check("churn", off, 0.2)
	check("drop", drop, 0.1)
	check("predfail", pf, 0.05)
}

func TestSeedsGiveIndependentSchedules(t *testing.T) {
	a := New(Config{Seed: 1, WorkerChurn: 0.5})
	b := New(Config{Seed: 2, WorkerChurn: 0.5})
	same := 0
	for w := 0; w < 100; w++ {
		for tick := 0; tick < 100; tick++ {
			if a.Offline(w, tick) == b.Offline(w, tick) {
				same++
			}
		}
	}
	// Independent 0.5 coins agree ~50% of the time; identical schedules
	// would agree 100%.
	if same > 6000 {
		t.Fatalf("seeds 1 and 2 agree on %d/10000 draws; schedules look correlated", same)
	}
}

func TestGPSNoiseIsBoundedAndCentered(t *testing.T) {
	f := New(Config{Seed: 3, GPSNoise: 1.0, GPSNoiseCells: 2.0})
	var sumX, sumY, sumR2 float64
	n := 0
	for w := 0; w < 100; w++ {
		for tick := 0; tick < 100; tick++ {
			dx, dy, ok := f.GPSNoise(w, tick)
			if !ok {
				t.Fatalf("rate 1.0 skipped a report (%d,%d)", w, tick)
			}
			if math.IsNaN(dx) || math.IsNaN(dy) || math.IsInf(dx, 0) || math.IsInf(dy, 0) {
				t.Fatalf("non-finite noise (%v,%v)", dx, dy)
			}
			sumX += dx
			sumY += dy
			sumR2 += dx*dx + dy*dy
			n++
		}
	}
	if mx, my := sumX/float64(n), sumY/float64(n); math.Abs(mx) > 0.1 || math.Abs(my) > 0.1 {
		t.Errorf("noise mean (%.3f, %.3f), want ~(0,0)", mx, my)
	}
	// E[dx²+dy²] = 2σ² = 8 for σ = 2.
	if v := sumR2 / float64(n); math.Abs(v-8) > 0.5 {
		t.Errorf("noise E[r²] = %.3f, want ~8", v)
	}
}

func TestDecisionDelayRange(t *testing.T) {
	f := New(Config{Seed: 9, DecisionDelay: 1.0, DecisionDelayTicks: 4})
	for task := 0; task < 500; task++ {
		d := f.DecisionDelay(task, 3)
		if d < 1 || d > 4 {
			t.Fatalf("delay %d outside [1,4]", d)
		}
	}
	// Default tick cap applies when unset.
	g := New(Config{Seed: 9, DecisionDelay: 1.0})
	for task := 0; task < 500; task++ {
		if d := g.DecisionDelay(task, 3); d < 1 || d > 3 {
			t.Fatalf("default-cap delay %d outside [1,3]", d)
		}
	}
}
