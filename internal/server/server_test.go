package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
)

// client wraps an httptest server with JSON helpers.
type client struct {
	t   *testing.T
	srv *httptest.Server
}

func newClient(t *testing.T, cfg Config) *client {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return &client{t: t, srv: ts}
}

func (c *client) do(method, path string, body any, out any) int {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.srv.URL+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func testConfig() Config {
	return Config{
		Grid:     geo.Grid{Cols: 100, Rows: 50},
		Assigner: assign.PPI{A: 1.5},
	}
}

// walkWorker reports a straight eastward trace for the worker.
func walkWorker(c *client, id, steps int, x0, y float64) {
	for i := 0; i < steps; i++ {
		code := c.do("POST", fmt.Sprintf("/api/workers/%d/location", id),
			locationRequest{X: x0 + float64(i), Y: y}, nil)
		if code != http.StatusOK {
			c.t.Fatalf("location report status %d", code)
		}
	}
}

func TestFullProtocolAcceptFlow(t *testing.T) {
	c := newClient(t, testConfig())

	// Worker registers and reports a moving trace (step "online").
	if code := c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil); code != http.StatusCreated {
		t.Fatalf("register status %d", code)
	}
	walkWorker(c, 1, 6, 10, 10)

	// Requester posts a task on the worker's projected route (step 1).
	var task taskResponse
	if code := c.do("POST", "/api/tasks", taskRequest{X: 18, Y: 10, Deadline: 30}, &task); code != http.StatusCreated {
		t.Fatalf("post task status %d", code)
	}
	if task.Status != TaskOpen {
		t.Fatalf("task status = %s", task.Status)
	}

	// Platform batch (step 2) creates an offer.
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d, want 1", batch.Offers)
	}

	// Worker fetches and accepts the offer (step 3).
	var offers []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers)
	if len(offers) != 1 || offers[0].TaskID != task.ID {
		t.Fatalf("offers = %+v", offers)
	}
	if code := c.do("POST", fmt.Sprintf("/api/offers/%d/accept", offers[0].OfferID), nil, nil); code != http.StatusOK {
		t.Fatalf("accept status %d", code)
	}

	// Requester sees the acceptance (step 4).
	var got taskResponse
	c.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != TaskAccepted || got.Worker != 1 {
		t.Fatalf("task after accept = %+v", got)
	}

	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.Assigned != 1 || m.Accepted != 1 || m.Rejected != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRejectExcludesPairForever(t *testing.T) {
	c := newClient(t, testConfig())
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	var task taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 18, Y: 10, Deadline: 40}, &task)

	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d", batch.Offers)
	}
	var offers []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers)
	c.do("POST", fmt.Sprintf("/api/offers/%d/reject", offers[0].OfferID), nil, nil)

	// Task returns to the pool but the same worker is never re-offered it.
	var got taskResponse
	c.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != TaskOpen {
		t.Fatalf("task after reject = %+v", got)
	}
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 0 {
		t.Fatalf("re-offered a declined pair: %+v", batch)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.Rejected != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestTickExpiry(t *testing.T) {
	c := newClient(t, testConfig())
	var task taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 5, Y: 5, Deadline: 2}, &task)
	for i := 0; i < 3; i++ {
		c.do("POST", "/api/tick", nil, nil)
	}
	var got taskResponse
	c.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != TaskExpired {
		t.Fatalf("task after deadline = %+v", got)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.Expired != 1 || m.Tick != 3 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestTaskValidationAndCancel(t *testing.T) {
	c := newClient(t, testConfig())
	// Deadline in the past rejected.
	if code := c.do("POST", "/api/tasks", taskRequest{X: 1, Y: 1, Deadline: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("past deadline accepted: %d", code)
	}
	var task taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 1, Y: 1, Deadline: 10}, &task)
	if code := c.do("DELETE", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &task); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	if task.Status != TaskCancelled {
		t.Fatalf("status after cancel = %s", task.Status)
	}
	// Unknown task 404s.
	if code := c.do("GET", "/api/tasks/999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing task status %d", code)
	}
}

func TestWorkerValidation(t *testing.T) {
	c := newClient(t, testConfig())
	if code := c.do("POST", "/api/workers", workerRequest{ID: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero id accepted: %d", code)
	}
	c.do("POST", "/api/workers", workerRequest{ID: 5}, nil)
	if code := c.do("POST", "/api/workers", workerRequest{ID: 5}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate registration status %d", code)
	}
	if code := c.do("POST", "/api/workers/99/location", locationRequest{X: 1, Y: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("unregistered location status %d", code)
	}
	// Defaults applied.
	var ws workerResponse
	c.do("GET", "/api/workers/5", nil, &ws)
	if ws.DetourKM != 6 || ws.Speed != 3 {
		t.Fatalf("defaults = %+v", ws)
	}
}

func TestOneOfferPerWorkerAtATime(t *testing.T) {
	c := newClient(t, testConfig())
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 10, Speed: 1, MR: 0.9}, nil)
	walkWorker(c, 1, 6, 10, 10)
	// Two nearby tasks; only one offer may be pending for the worker.
	c.do("POST", "/api/tasks", taskRequest{X: 17, Y: 10, Deadline: 40}, nil)
	c.do("POST", "/api/tasks", taskRequest{X: 19, Y: 10, Deadline: 40}, nil)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d, want 1 (worker busy deciding)", batch.Offers)
	}
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 0 {
		t.Fatalf("second batch made %d offers while one is pending", batch.Offers)
	}
}

func TestListEndpoints(t *testing.T) {
	c := newClient(t, testConfig())
	c.do("POST", "/api/workers", workerRequest{ID: 1}, nil)
	c.do("POST", "/api/tasks", taskRequest{X: 1, Y: 1, Deadline: 5}, nil)
	var tasks []taskResponse
	c.do("GET", "/api/tasks", nil, &tasks)
	if len(tasks) != 1 {
		t.Fatalf("task list = %v", tasks)
	}
	var workers []workerResponse
	c.do("GET", "/api/workers", nil, &workers)
	if len(workers) != 1 {
		t.Fatalf("worker list = %v", workers)
	}
}
