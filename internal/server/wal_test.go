package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"github.com/spatialcrowd/tamp/internal/fault"
	"github.com/spatialcrowd/tamp/internal/wal"
)

// newDurableClient starts a WAL-backed server and returns the client plus
// the Server itself, so tests can close and restart it on the same log.
func newDurableClient(t *testing.T, cfg Config) (*client, *Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	return &client{t: t, srv: ts}, s, ts
}

// TestWALRecoveryResumesExactState drives the full protocol against a
// durable server, restarts it on the same log directory, and requires the
// recovered state to be bit-identical — down to an offer issued before the
// restart still being decidable after it.
func TestWALRecoveryResumesExactState(t *testing.T) {
	cfg := testConfig()
	cfg.WALDir = t.TempDir()
	cfg.SnapshotEvery = 4 // several snapshots over the run

	c, s1, ts1 := newDurableClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	c.do("POST", "/api/workers", workerRequest{ID: 2, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 4, 10, 10)
	walkWorker(c, 2, 4, 40, 10)
	c.do("POST", "/api/tasks", taskRequest{X: 15, Y: 10, Deadline: 30}, nil)
	c.do("POST", "/api/tasks", taskRequest{X: 45, Y: 10, Deadline: 30}, nil)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 2 {
		t.Fatalf("offers = %d, want 2", batch.Offers)
	}
	var offers1 []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers1)
	if len(offers1) != 1 {
		t.Fatalf("worker 1 offers = %+v", offers1)
	}
	c.do("POST", fmt.Sprintf("/api/offers/%d/accept", offers1[0].OfferID), nil, nil)
	c.do("POST", "/api/tick", nil, nil)

	var offers2 []offerResponse
	c.do("GET", "/api/workers/2/offers", nil, &offers2)
	if len(offers2) != 1 {
		t.Fatalf("worker 2 offers = %+v", offers2)
	}
	var m1 metricsResponse
	c.do("GET", "/api/metrics", nil, &m1)
	digest := s1.StateDigest()

	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if snaps, _ := filepath.Glob(filepath.Join(cfg.WALDir, "*.snap")); len(snaps) == 0 {
		t.Fatal("no snapshots written")
	}

	// Restart on the same log. The state machine must come back
	// bit-identical, not merely similar.
	c2, s2, _ := newDurableClient(t, cfg)
	t.Cleanup(c2.srv.Close)
	if got := s2.StateDigest(); got != digest {
		t.Fatalf("recovered digest differs:\n%s\n%s", got, digest)
	}
	var m2 metricsResponse
	c2.do("GET", "/api/metrics", nil, &m2)
	// The KM workspace counters are process-local (like Panics), not part of
	// the durable state; only the state-machine tallies must survive.
	m2.LastWarmRows, m2.WarmBatches, m2.ColdBatches = m1.LastWarmRows, m1.WarmBatches, m1.ColdBatches
	if m1 != m2 {
		t.Fatalf("metrics after restart = %+v, want %+v", m2, m1)
	}

	// The offer issued before the restart is still live: worker 2 can
	// reject it, and the exclusion sticks.
	if code := c2.do("POST", fmt.Sprintf("/api/offers/%d/reject", offers2[0].OfferID), nil, nil); code != http.StatusOK {
		t.Fatalf("reject recovered offer: status %d", code)
	}
	var m3 metricsResponse
	c2.do("GET", "/api/metrics", nil, &m3)
	if m3.Rejected != m1.Rejected+1 {
		t.Fatalf("rejected = %d, want %d", m3.Rejected, m1.Rejected+1)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// crashScript drives a fixed op sequence against a durable server, capturing
// the state digest before and after every op, until an op dies with a 500
// (the injected crash) or the script ends. It reports the digest of the
// state just before the failed op and just after it.
func crashScript(t *testing.T, c *client, s *Server) (crashed bool, before, after string) {
	t.Helper()
	ops := []func() int{
		func() int { return c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1}, nil) },
		func() int { return c.do("POST", "/api/workers/1/location", locationRequest{X: 10, Y: 10}, nil) },
		func() int { return c.do("POST", "/api/workers/1/location", locationRequest{X: 11, Y: 10}, nil) },
		func() int { return c.do("POST", "/api/tasks", taskRequest{X: 13, Y: 10, Deadline: 30}, nil) },
		func() int { return c.do("POST", "/api/batch", nil, nil) },
		func() int { return c.do("POST", "/api/offers/1/accept", nil, nil) },
		func() int { return c.do("POST", "/api/tick", nil, nil) },
		func() int { return c.do("POST", "/api/tasks", taskRequest{X: 20, Y: 10, Deadline: 30}, nil) },
		func() int { return c.do("POST", "/api/tick", nil, nil) },
	}
	for _, op := range ops {
		before = s.StateDigest()
		code := op()
		after = s.StateDigest()
		if code == http.StatusInternalServerError {
			return true, before, after
		}
	}
	return false, before, after
}

// TestCrashMidAppendLosesOnlyTheUnackedOp kills the WAL mid-frame (header
// written, payload not) on a live HTTP op. The op is answered 500 — never
// acknowledged — so losing it is correct; everything acknowledged before it
// must come back bit-identically.
func TestCrashMidAppendLosesOnlyTheUnackedOp(t *testing.T) {
	for hit := 2; hit <= 6; hit++ {
		t.Run(fmt.Sprintf("hit%d", hit), func(t *testing.T) {
			cfg := testConfig()
			cfg.WALDir = t.TempDir()
			crasher := fault.NewCrasher(wal.HookAppendFrame, hit)
			cfg.WALHook = crasher.Hit

			c, s1, ts1 := newDurableClient(t, cfg)
			crashed, before, _ := crashScript(t, c, s1)
			ts1.Close()
			if !crashed {
				t.Fatalf("crasher never fired (hits=%d)", crasher.Hits())
			}

			// "Restart the process": a fresh server on the same directory.
			cfg.WALHook = nil
			s2, err := New(cfg)
			if err != nil {
				t.Fatalf("restart after crash: %v", err)
			}
			if got := s2.StateDigest(); got != before {
				t.Fatalf("recovered state != state before the unacked op:\n%s\n%s", got, before)
			}
			// The revived server still serves and commits durably.
			ts2 := httptest.NewServer(s2)
			t.Cleanup(ts2.Close)
			c2 := &client{t: t, srv: ts2}
			if code := c2.do("POST", "/api/tasks", taskRequest{X: 5, Y: 5, Deadline: 90}, nil); code != http.StatusCreated {
				t.Fatalf("post-recovery task: status %d", code)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashDuringSnapshotKeepsAppendedEvents kills the process between the
// snapshot temp-file write and its rename. The event that triggered the
// snapshot was already appended and fsynced, so recovery must include it —
// the crash costs the snapshot, never the log.
func TestCrashDuringSnapshotKeepsAppendedEvents(t *testing.T) {
	cfg := testConfig()
	cfg.WALDir = t.TempDir()
	cfg.SnapshotEvery = 3
	crasher := fault.NewCrasher(wal.HookSnapshotRename, 1)
	cfg.WALHook = crasher.Hit

	c, s1, ts1 := newDurableClient(t, cfg)
	crashed, _, after := crashScript(t, c, s1)
	ts1.Close()
	if !crashed {
		t.Fatal("snapshot crasher never fired")
	}

	cfg.WALHook = nil
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after snapshot crash: %v", err)
	}
	if got := s2.StateDigest(); got != after {
		t.Fatalf("recovered state lost an appended event:\n%s\n%s", got, after)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}
