package server

import (
	"context"
	"net/http"
	"runtime"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
)

func TestCloseIsIdempotent(t *testing.T) {
	cfg := testConfig()
	cfg.WALDir = t.TempDir()
	c, s, _ := newDurableClient(t, cfg)
	t.Cleanup(c.srv.Close)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1}, nil)

	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close must be a no-op, got %v", err)
	}
	if s.Ready() {
		t.Fatal("server still ready after Close")
	}
	// The mux stays mounted: probes answer (reporting down), platform
	// traffic is refused instead of hitting a log-less state machine.
	if code := c.do("GET", "/readyz", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("readyz status %d after Close, want 503", code)
	}
	if code := c.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz status %d after Close, want 200", code)
	}
	if code := c.do("POST", "/api/tick", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("api status %d after Close, want 503", code)
	}
}

func TestCloseIsIdempotentMemoryOnly(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
}

// gateAssigner blocks inside Assign until released, so a test can hold a
// batch in flight at an exact point.
type gateAssigner struct {
	started chan struct{}
	release chan struct{}
}

func (g *gateAssigner) Name() string { return "gate" }

func (g *gateAssigner) Assign(tasks []assign.Task, workers []assign.Worker, tick int) []assign.Pair {
	close(g.started)
	<-g.release
	return nil
}

// Close racing an in-flight batch must wait for the batch, close the log
// exactly once, and leave no goroutine behind.
func TestCloseDuringInFlightBatchLeaksNothing(t *testing.T) {
	gate := &gateAssigner{started: make(chan struct{}), release: make(chan struct{})}
	cfg := testConfig()
	cfg.WALDir = t.TempDir()
	cfg.Assigner = gate
	c, s, ts := newDurableClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1}, nil)
	walkWorker(c, 1, 4, 10, 10)
	c.do("POST", "/api/tasks", taskRequest{X: 12, Y: 10, Deadline: 30}, nil)
	ts.Close() // all further traffic is programmatic

	before := runtime.NumGoroutine()
	batchDone := make(chan int)
	go func() { batchDone <- s.RunBatchContext(context.Background()) }()
	<-gate.started

	closeDone := make(chan error)
	go func() { closeDone <- s.Close() }()
	// Close is blocked on the state lock the batch holds; the batch must
	// still be running.
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned %v while a batch held the state lock", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate.release)
	if err := <-closeDone; err != nil {
		t.Fatalf("Close after batch: %v", err)
	}
	offers := <-batchDone
	if offers != 0 {
		t.Fatalf("gate assigner made %d offers", offers)
	}

	// Goroutine accounting: everything the batch and Close spawned must be
	// gone. Brief grace for runtime bookkeeping, as in the shutdown test.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
