package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/core"
	"github.com/spatialcrowd/tamp/internal/wal"
)

func TestHealthzAndReadyzOnLiveServer(t *testing.T) {
	c := newClient(t, testConfig())
	var body map[string]string
	if code := c.do("GET", "/healthz", nil, &body); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if body["status"] != "ok" {
		t.Errorf("healthz body = %v", body)
	}
	if code := c.do("GET", "/readyz", nil, &body); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if body["status"] != "ready" {
		t.Errorf("readyz body = %v", body)
	}
}

// Probes must answer while the state lock is held by a wedged batch —
// that is the difference between "liveness" and "every other endpoint".
func TestProbesAnswerWhileStateLockHeld(t *testing.T) {
	c, s, _ := newDurableClient(t, testConfig())
	t.Cleanup(c.srv.Close)
	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(chan int, 2)
	for _, path := range []string{"/healthz", "/readyz"} {
		go func(p string) { done <- c.do("GET", p, nil, nil) }(path)
	}
	for i := 0; i < 2; i++ {
		select {
		case code := <-done:
			if code != http.StatusOK {
				t.Fatalf("probe status %d with lock held", code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("probe blocked on the state lock")
		}
	}
}

// The hardening middleware must not put a deadline on the probe endpoints
// (like pprof), while the /api routes keep theirs.
func TestProbeEndpointsExemptFromRequestTimeout(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = time.Minute
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in a capture mux under the real middleware: the routes are not
	// under test here, the deadline decision is.
	var hasDeadline bool
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		_, hasDeadline = r.Context().Deadline()
		w.WriteHeader(http.StatusOK)
	})
	for path, want := range map[string]bool{
		"/healthz":             false,
		"/readyz":              false,
		"/debug/pprof/profile": false,
		"/api/tick":            true,
	} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if hasDeadline != want {
			t.Errorf("%s: request deadline = %v, want %v", path, hasDeadline, want)
		}
	}
}

// seedWAL writes a short, valid event history into dir.
func seedWAL(t *testing.T, dir string, evs ...core.Event) {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, ev := range evs {
		b, err := core.EncodeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeferredRecoveryFlipsReadyz(t *testing.T) {
	cfg := testConfig()
	cfg.WALDir = t.TempDir()
	seedWAL(t, cfg.WALDir,
		core.WorkerRegistered{WorkerID: 7, Detour: 10, Speed: 1},
		core.WorkerReported{WorkerID: 7, X: 3, Y: 3},
		core.TaskSubmitted{TaskID: 1, X: 4, Y: 3, Deadline: 20},
	)
	cfg.DeferRecovery = true
	c, s, _ := newDurableClient(t, cfg)
	t.Cleanup(c.srv.Close)
	t.Cleanup(func() { s.Close() })
	// Liveness holds throughout; readiness flips once the replay completes.
	if code := c.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz status %d during recovery", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("deferred recovery never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	if code := c.do("GET", "/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz status %d after recovery", code)
	}
	var task taskResponse
	if code := c.do("GET", "/api/tasks/1", nil, &task); code != http.StatusOK {
		t.Fatalf("recovered task status %d", code)
	}
	if task.Status != TaskOpen {
		t.Errorf("recovered task status = %s", task.Status)
	}
}

func TestDeferredRecoveryFailureStaysUnready(t *testing.T) {
	cfg := testConfig()
	cfg.WALDir = t.TempDir()
	// An offer decision with no offer behind it can never apply: the log is
	// structurally intact but semantically divergent, the one recovery error
	// that must not be papered over.
	seedWAL(t, cfg.WALDir, core.OfferAccepted{OfferID: 99})
	cfg.DeferRecovery = true
	c, s, _ := newDurableClient(t, cfg)
	t.Cleanup(c.srv.Close)
	t.Cleanup(func() { s.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for s.recoverErr.Load() == nil {
		if time.Now().After(deadline) {
			t.Fatal("recovery error never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	var body map[string]string
	if code := c.do("GET", "/readyz", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d after failed recovery, want 503", code)
	}
	if body["error"] == "" {
		t.Errorf("readyz body carries no reason: %v", body)
	}
	// Platform routes are refused rather than served from a broken state.
	if code := c.do("POST", "/api/tick", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("api status %d on unready server, want 503", code)
	}
	if code := c.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz status %d, liveness must survive a failed recovery", code)
	}
}

func TestExplicitTaskIDAndOfferLookup(t *testing.T) {
	c := newClient(t, testConfig())
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.9}, nil)
	walkWorker(c, 1, 4, 10, 10)

	var task taskResponse
	if code := c.do("POST", "/api/tasks", taskRequest{ID: 5001, X: 12, Y: 10, Deadline: 30}, &task); code != http.StatusCreated {
		t.Fatalf("explicit-id submit status %d", code)
	}
	if task.ID != 5001 {
		t.Fatalf("task id = %d, want the caller-chosen 5001", task.ID)
	}
	if code := c.do("POST", "/api/tasks", taskRequest{ID: 5001, X: 12, Y: 10, Deadline: 30}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate explicit id status %d, want 409", code)
	}

	c.do("POST", "/api/batch", nil, nil)
	var offers []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers)
	if len(offers) != 1 {
		t.Fatalf("offers = %+v", offers)
	}
	var rec offerRecord
	if code := c.do("GET", fmt.Sprintf("/api/offers/%d", offers[0].OfferID), nil, &rec); code != http.StatusOK {
		t.Fatalf("offer lookup status %d", code)
	}
	if rec.TaskID != 5001 || rec.WorkerID != 1 {
		t.Errorf("offer record = %+v", rec)
	}
	if code := c.do("GET", "/api/offers/424242", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing offer lookup status %d, want 404", code)
	}
}

func TestOfferBaseDisjointsIDSpace(t *testing.T) {
	cfg := testConfig()
	cfg.OfferBase = 2_000_000_000
	c := newClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.9}, nil)
	walkWorker(c, 1, 4, 10, 10)
	c.do("POST", "/api/tasks", taskRequest{X: 12, Y: 10, Deadline: 30}, nil)
	c.do("POST", "/api/batch", nil, nil)
	var offers []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers)
	if len(offers) != 1 || offers[0].OfferID != 2_000_000_000 {
		t.Fatalf("offers = %+v, want a single offer with id 2000000000", offers)
	}
}
