// Package server hosts the online stage of the spatial crowdsourcing
// platform over HTTP, implementing the four-party protocol of Fig. 1:
//
//  1. task requesters POST /api/tasks;
//  2. the platform runs batch assignment (POST /api/batch or the
//     background ticker) using each worker's mobility predictor;
//  3. workers GET their offers and POST accept or reject decisions;
//  4. requesters GET /api/tasks/{id} for status.
//
// Workers never upload route plans — they only report their current
// location (POST /api/workers/{id}/location), exactly as §II specifies;
// the platform forecasts their trajectories from the reported trace with
// the trained models. Rejected (task, worker) pairs are never re-offered.
//
// The HTTP layer here is a thin shell: every handler decodes its request,
// validates it against the current state, and commits typed events to the
// transport-agnostic state machine in internal/core — decode, append,
// apply, respond. When Config.WALDir is set, each event is framed into the
// write-ahead log (internal/wal) before the response is sent, so a killed
// server replays snapshot + log tail on restart and resumes with the exact
// pre-crash state, offers and counters included. The same event log drives
// offline assigner replay (internal/replay).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/core"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/wal"
)

// TaskStatus enumerates a task's lifecycle (re-exported from the state
// machine so API clients keep a stable vocabulary).
type TaskStatus = core.TaskStatus

// Task lifecycle states.
const (
	TaskOpen      = core.StatusOpen      // waiting for assignment
	TaskOffered   = core.StatusOffered   // offered to a worker, awaiting decision
	TaskAccepted  = core.StatusAccepted  // worker committed to serve it
	TaskExpired   = core.StatusExpired   // deadline passed unserved
	TaskCancelled = core.StatusCancelled // withdrawn by the requester
)

// Config parameterizes the platform server.
type Config struct {
	Grid geo.Grid
	// Assigner runs each batch (default PPI).
	Assigner assign.Assigner
	// Models supplies per-worker predictors (nil entries degrade to
	// stand-still forecasts).
	Models map[int]*predict.WorkerModel
	// PredHorizon is the forecast window per batch, in ticks (default 8).
	PredHorizon int
	// DefaultDetourKM/DefaultSpeed apply to workers that register without
	// their own values.
	DefaultDetourKM float64
	DefaultSpeed    float64
	// Parallelism bounds the pool used for per-batch trajectory prediction
	// and, when the default PPI assigner is constructed, its edge-building
	// pool (0 = GOMAXPROCS).
	Parallelism int
	// MaxBodyBytes caps every request body via http.MaxBytesReader
	// (default 1 MiB; negative disables the cap).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's handling; the request context
	// is cancelled at the deadline (default 30s; negative disables).
	RequestTimeout time.Duration
	// BatchTimeout is the per-batch assignment deadline. When the
	// configured assigner has not produced a plan by then, its (possibly
	// partial) output is discarded and the batch falls back to the cheap
	// greedy assigner — degraded mode, counted in /api/metrics. Zero
	// disables the deadline.
	BatchTimeout time.Duration
	// Registry receives every server counter, batch timing, and the phase
	// spans of batches run through this server; GET /metrics exports it in
	// Prometheus text format. Nil gets a private registry per Server, so
	// two instances in one process never mix series.
	Registry *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and hold connections
	// open, so deployments must opt in.
	EnablePprof bool

	// WALDir enables durability: every committed event is appended to a
	// write-ahead log in this directory before the response is sent, and
	// New replays snapshot + log tail back to the exact pre-crash state.
	// Empty runs the platform memory-only (tests, benchmarks).
	WALDir string
	// SnapshotEvery writes a state snapshot after every N applied events
	// (default 1024), bounding restart replay work. Only used with WALDir.
	SnapshotEvery int
	// WALSyncEvery fsyncs the log every N appends (default 1: an event is
	// durable before its response). Only used with WALDir.
	WALSyncEvery int
	// WALHook, when non-nil, receives the WAL's crash-point callbacks; the
	// fault-injection tests arm an internal/fault.Crasher here.
	WALHook func(point string)
	// DeferRecovery runs WAL recovery in the background instead of inside
	// New: the server binds and answers /healthz immediately, /readyz and
	// every /api route answer 503 until the replay finishes, and the router
	// tier only re-admits the shard once /readyz flips. Only used with
	// WALDir; the default (synchronous recovery) keeps New's contract that a
	// returned server is fully recovered.
	DeferRecovery bool

	// OfferBase is the smallest offer ID this instance may issue (0 keeps
	// the default dense allocation from 1). In the sharded tier every shard
	// gets a disjoint base (shard i uses (i+1)·tier.OfferStride) so a router
	// can route an offer decision to the issuing shard from the ID alone.
	OfferBase int
}

// Server is the HTTP platform. The zero value is not usable; construct
// with New.
type Server struct {
	cfg Config
	reg *obs.Registry

	// ready gates /readyz and the /api routes: it flips true once WAL
	// recovery has completed and the batch workspace is wired, and false
	// again on Close. The router tier probes it before routing traffic.
	ready atomic.Bool
	// recoverErr records a failed deferred recovery so /readyz can report
	// why the shard will never become ready.
	recoverErr atomic.Pointer[string]

	mu     sync.Mutex
	st     *core.State
	closed bool     // Close ran; mutations are rejected and readyz stays 503
	log    *wal.Log // nil when WALDir is unset or after a disk failure

	// One long-lived assignment workspace shared by every batch (guarded by
	// s.mu like the state): the spatial index, matcher arrays, and KM warm
	// checkpoints persist across batches, so steady-state batches warm-start
	// instead of rebuilding from scratch.
	ws *assign.Workspace
	// Long-lived forecast memo shared by every batch, same lifecycle as ws:
	// a worker whose context window hasn't changed since the last batch (the
	// common stationary case) reuses its rollout bit-identically instead of
	// re-running the model. Instrumented as predict_cache_* in reg.
	fc *predict.ForecastCache

	// Every counter lives in reg; commitLocked mirrors the state machine's
	// monotonic tallies into them (single code path), and both /api/metrics
	// (JSON) and /metrics (Prometheus) read the same series. Counter
	// updates are atomic, so the recovery middleware can bump panicsC
	// outside s.mu.
	offersC, acceptsC, rejectsC, expiredC *obs.Counter
	batchesC                              *obs.Counter
	// degraded-mode fault counters, labelled tamp_server_faults_total{kind=...}:
	// recovered handler panics, batches that fell back to greedy after the
	// assignment deadline, and forecasts degraded to stand-still.
	panicsC, degradedC, fallbackC *obs.Counter
	batchSec                      *obs.Histogram
	mux                           *http.ServeMux
}

// New builds a Server ready to mount on an http.Server. With Config.WALDir
// set it first recovers the previous run's state from snapshot + log tail;
// a torn log tail (crash mid-append) is repaired and logged, but a log
// whose events no longer apply cleanly is an error — serving from a state
// that silently diverged from the durable history would be worse than not
// serving.
func New(cfg Config) (*Server, error) {
	if cfg.Grid.Cols == 0 {
		cfg.Grid = geo.DefaultGrid
	}
	if cfg.Assigner == nil {
		cfg.Assigner = assign.PPI{A: predict.DefaultMatchRadius, Parallelism: cfg.Parallelism}
	}
	if cfg.PredHorizon <= 0 {
		cfg.PredHorizon = 8
	}
	if cfg.DefaultDetourKM <= 0 {
		cfg.DefaultDetourKM = 6
	}
	if cfg.DefaultSpeed <= 0 {
		cfg.DefaultSpeed = 3
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1024
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg: cfg,
		reg: reg,
		st:  core.NewState(),
		ws:  assign.NewWorkspace(),
		fc:  predict.NewForecastCache(0),
	}
	s.fc.Instrument(reg)
	fault := func(kind string) *obs.Counter {
		return reg.Counter("tamp_server_faults_total", obs.L("kind", kind))
	}
	s.offersC = reg.Counter("tamp_server_offers_total")
	s.acceptsC = reg.Counter("tamp_server_accepts_total")
	s.rejectsC = reg.Counter("tamp_server_rejects_total")
	s.expiredC = reg.Counter("tamp_server_expired_total")
	s.batchesC = reg.Counter("tamp_server_batches_total")
	s.panicsC = fault("panic")
	s.degradedC = fault("degraded_batch")
	s.fallbackC = fault("pred_fallback")
	s.batchSec = reg.Histogram("tamp_server_batch_seconds", obs.DefSecondsBuckets)
	s.routes()
	switch {
	case cfg.WALDir != "" && cfg.DeferRecovery:
		// Serve /healthz (and 503 everything gated on readiness) while the
		// log replays in the background; readiness flips when it completes.
		go func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.closed {
				return
			}
			if err := s.recoverWAL(); err != nil {
				msg := err.Error()
				s.recoverErr.Store(&msg)
				log.Printf("server: deferred wal recovery failed, staying unready: %v", err)
				return
			}
			s.ready.Store(true)
		}()
	case cfg.WALDir != "":
		if err := s.recoverWAL(); err != nil {
			return nil, err
		}
		s.ready.Store(true)
	default:
		s.ready.Store(true)
	}
	return s, nil
}

// recoverWAL opens the write-ahead log and rebuilds the state machine from
// its newest snapshot plus the tail of events after it.
func (s *Server) recoverWAL() error {
	l, rec, err := wal.Open(s.cfg.WALDir, wal.Options{
		SyncEvery: s.cfg.WALSyncEvery,
		Registry:  s.reg,
		Hook:      s.cfg.WALHook,
	})
	if err != nil {
		return fmt.Errorf("server: open wal: %w", err)
	}
	if rec.Torn != nil {
		log.Printf("server: wal repaired after unclean shutdown: %v", rec.Torn)
	}
	st := core.NewState()
	if rec.Snapshot != nil {
		if st, err = core.DecodeSnapshot(rec.Snapshot); err != nil {
			l.Close()
			return fmt.Errorf("server: wal snapshot: %w", err)
		}
	}
	for i, p := range rec.Records {
		ev, err := core.DecodeEvent(p)
		if err != nil {
			l.Close()
			return fmt.Errorf("server: wal record %d: %w", rec.StartSeq+uint64(i), err)
		}
		if err := st.Apply(ev); err != nil {
			l.Close()
			return fmt.Errorf("server: wal record %d: %w", rec.StartSeq+uint64(i), err)
		}
	}
	s.st, s.log = st, l
	// The obs counters start from zero on every process start; seed them
	// with the recovered tallies so /api/metrics and /metrics continue the
	// pre-crash series instead of resetting.
	c := st.Counts
	s.offersC.Add(c.Offers)
	s.acceptsC.Add(c.Accepts)
	s.rejectsC.Add(c.Rejects)
	s.expiredC.Add(c.Expired)
	s.batchesC.Add(c.Batches)
	s.degradedC.Add(c.DegradedBatches)
	s.fallbackC.Add(c.PredFallbacks)
	if rec.Records != nil || rec.Snapshot != nil {
		log.Printf("server: recovered state at seq %d (tick %d, %d tasks, %d workers)",
			st.Applied, st.Tick, len(st.Tasks), len(st.Workers))
	}
	return nil
}

// commitLocked is the single mutation path of the server: append each event
// to the write-ahead log, apply it to the state machine, and mirror the
// state's tally deltas into the obs counters. Handlers validate against the
// state before committing, so a failed Apply is a programming error and
// panics into the recovery middleware (no partial state: Apply rejects
// atomically, and nothing is appended for the failed event).
func (s *Server) commitLocked(evs ...core.Event) {
	before := s.st.Counts
	for _, ev := range evs {
		if err := s.st.Apply(ev); err != nil {
			panic(err)
		}
		if s.log != nil {
			b, err := core.EncodeEvent(ev)
			if err != nil {
				panic(err)
			}
			if _, err := s.log.Append(b); err != nil {
				// Disk trouble: keep serving memory-only rather than take the
				// platform down, but stop appending so the log on disk stays a
				// clean prefix of history instead of gaining holes.
				log.Printf("server: wal append failed, durability disabled: %v", err)
				s.log.Close()
				s.log = nil
			}
		}
	}
	s.bumpCountersLocked(before)
	s.maybeSnapshotLocked()
}

func (s *Server) bumpCountersLocked(before core.Counts) {
	c := s.st.Counts
	s.offersC.Add(c.Offers - before.Offers)
	s.acceptsC.Add(c.Accepts - before.Accepts)
	s.rejectsC.Add(c.Rejects - before.Rejects)
	s.expiredC.Add(c.Expired - before.Expired)
	s.batchesC.Add(c.Batches - before.Batches)
	s.degradedC.Add(c.DegradedBatches - before.DegradedBatches)
	s.fallbackC.Add(c.PredFallbacks - before.PredFallbacks)
}

func (s *Server) maybeSnapshotLocked() {
	if s.log == nil || s.st.Applied == 0 || s.st.Applied%uint64(s.cfg.SnapshotEvery) != 0 {
		return
	}
	if err := s.log.Snapshot(s.st.EncodeSnapshot(), s.st.Applied); err != nil {
		log.Printf("server: wal snapshot failed: %v", err)
	}
}

// Registry exposes the server's metric registry, e.g. for an end-of-run
// dump by the embedding process.
func (s *Server) Registry() *obs.Registry { return s.reg }

// StateDigest returns the hex SHA-256 of the state machine's canonical
// snapshot encoding — the bit-identity check used by crash-recovery tests
// and operational replay audits.
func (s *Server) StateDigest() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st.Digest()
}

// Ready reports whether the server would answer /readyz with 200: WAL
// recovery has completed, the batch workspace is wired, and Close has not
// run. The router tier only routes traffic to ready shards.
func (s *Server) Ready() bool { return s.ready.Load() }

// Close marks the server unready, then flushes and closes the write-ahead
// log (a no-op for memory-only servers). It is idempotent — a second Close
// returns nil — and safe to race an in-flight batch: Close waits for the
// batch to release the state lock before tearing the log down. The HTTP mux
// stays mounted so health probes keep answering (readyz reports 503),
// letting a router tier observe the shard as down instead of hanging.
func (s *Server) Close() error {
	s.ready.Store(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// headerTracker remembers whether a handler already committed the response,
// so the recovery middleware knows if a 500 can still be sent.
type headerTracker struct {
	http.ResponseWriter
	wrote bool
}

func (h *headerTracker) WriteHeader(status int) {
	h.wrote = true
	h.ResponseWriter.WriteHeader(status)
}

func (h *headerTracker) Write(b []byte) (int, error) {
	h.wrote = true
	return h.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler. It is the hardening middleware for
// every route: request bodies are capped, each request gets a deadline, and
// a panicking handler is recovered into a 500 — one bad request never takes
// the platform down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ht := &headerTracker{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.panicsC.Inc()
			log.Printf("server: recovered panic in %s %s: %v", r.Method, r.URL.Path, rec)
			if !ht.wrote {
				httpError(ht, http.StatusInternalServerError, "internal error")
			}
		}
	}()
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(ht, r.Body, s.cfg.MaxBodyBytes)
	}
	// An unready server (WAL still replaying, or closed) refuses platform
	// traffic outright instead of serving from a half-recovered state; the
	// probe and metrics endpoints stay up so operators and the router tier
	// can watch the recovery progress.
	if !s.ready.Load() && strings.HasPrefix(r.URL.Path, "/api/") {
		ht.Header().Set("Retry-After", "1")
		httpError(ht, http.StatusServiceUnavailable, "not ready")
		return
	}
	// pprof endpoints stream for as long as the client asks (?seconds=N) and
	// the health probes must answer even when a wedged batch would blow the
	// deadline; neither gets the request timeout.
	if s.cfg.RequestTimeout > 0 && !strings.HasPrefix(r.URL.Path, "/debug/pprof/") &&
		r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(ht, r)
}

// handleHealthz is the liveness probe: the process is up and the handler
// stack responds. It says nothing about recovery — a replaying shard is
// alive but not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only once WAL recovery has
// completed and the batch workspace is wired, 503 while recovering, after a
// failed recovery (with the reason), and after Close. Routers gate
// (re-)admission of a shard on this endpoint.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	if msg := s.recoverErr.Load(); msg != nil {
		httpError(w, http.StatusServiceUnavailable, "recovery failed: %s", *msg)
		return
	}
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, "not ready")
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/api/tasks", s.handleTasks)
	s.mux.HandleFunc("/api/tasks/", s.handleTaskByID)
	s.mux.HandleFunc("/api/workers", s.handleWorkers)
	s.mux.HandleFunc("/api/workers/", s.handleWorkerByID)
	s.mux.HandleFunc("/api/offers/", s.handleOfferByID)
	s.mux.HandleFunc("/api/batch", s.handleBatch)
	s.mux.HandleFunc("/api/tick", s.handleTick)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// encodeErrOnce rate-limits encoder-failure logging: the first failure is
// worth a line (it usually means a broken client connection or an
// unmarshalable value), every subsequent one would just flood the log.
var encodeErrOnce sync.Once

// writeJSON commits headers before any body bytes — Content-Type first,
// then the status line — so handlers can never interleave a late header
// with a partial body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		encodeErrOnce.Do(func() { log.Printf("server: writeJSON: %v", err) })
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- tasks ---

type taskRequest struct {
	// ID, when positive, is a caller-chosen task id (the router tier
	// allocates globally unique ids so a border task keeps one identity on
	// both shards it is offered to). Zero lets the server allocate.
	ID       int     `json:"id,omitempty"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"` // absolute tick
}

type taskResponse struct {
	ID       int        `json:"id"`
	X        float64    `json:"x"`
	Y        float64    `json:"y"`
	Deadline int        `json:"deadline"`
	Status   TaskStatus `json:"status"`
	Worker   int        `json:"worker,omitempty"`
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req taskRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if req.Deadline <= s.st.Tick {
			httpError(w, http.StatusBadRequest, "deadline %d not after current tick %d", req.Deadline, s.st.Tick)
			return
		}
		loc := s.cfg.Grid.Bounds().Clamp(geo.Pt(req.X, req.Y))
		id := s.st.NextTask
		if req.ID > 0 {
			if _, dup := s.st.Tasks[req.ID]; dup {
				httpError(w, http.StatusConflict, "task %d already exists", req.ID)
				return
			}
			id = req.ID
		}
		s.commitLocked(core.TaskSubmitted{TaskID: id, X: loc.X, Y: loc.Y, Deadline: req.Deadline})
		writeJSON(w, http.StatusCreated, s.taskResponseLocked(id))
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]taskResponse, 0, len(s.st.Tasks))
		for id := range s.st.Tasks {
			out = append(out, s.taskResponseLocked(id))
		}
		writeJSON(w, http.StatusOK, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) taskResponseLocked(id int) taskResponse {
	t := s.st.Tasks[id]
	resp := taskResponse{
		ID: id, X: t.Task.Loc.X, Y: t.Task.Loc.Y,
		Deadline: t.Task.Deadline, Status: t.Status,
	}
	switch t.Status {
	case TaskOffered:
		resp.Worker = t.Offered
	case TaskAccepted:
		resp.Worker = t.Accepted
	}
	return resp
}

func (s *Server) handleTaskByID(w http.ResponseWriter, r *http.Request) {
	id, ok := trailingID(r.URL.Path, "/api/tasks/")
	if !ok {
		httpError(w, http.StatusBadRequest, "bad task id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, exists := s.st.Tasks[id]
	if !exists {
		httpError(w, http.StatusNotFound, "task %d not found", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.taskResponseLocked(id))
	case http.MethodDelete:
		if t.Status == TaskAccepted {
			httpError(w, http.StatusConflict, "task %d already accepted", id)
			return
		}
		// Cancelling an offered task retracts the outstanding offer too, so
		// the worker is immediately matchable again and a late accept on
		// the dead offer cannot resurrect the task.
		s.commitLocked(core.TaskCancelled{TaskID: id})
		writeJSON(w, http.StatusOK, s.taskResponseLocked(id))
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// --- workers ---

type workerRequest struct {
	ID       int     `json:"id"`
	DetourKM float64 `json:"detourKm"`
	Speed    float64 `json:"speed"` // cells per tick
	MR       float64 `json:"mr"`    // optional override of the model's MR
}

type workerResponse struct {
	ID       int     `json:"id"`
	DetourKM float64 `json:"detourKm"`
	Speed    float64 `json:"speed"`
	MR       float64 `json:"mr"`
	Online   bool    `json:"online"`
	HasModel bool    `json:"hasModel"`
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req workerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if req.ID <= 0 {
			httpError(w, http.StatusBadRequest, "worker id must be positive")
			return
		}
		if _, dup := s.st.Workers[req.ID]; dup {
			httpError(w, http.StatusConflict, "worker %d already registered", req.ID)
			return
		}
		// Defaults are resolved here, so the committed event carries the
		// effective values and replay does not depend on server config.
		detour := geo.KMToCells(s.cfg.DefaultDetourKM)
		if req.DetourKM > 0 {
			detour = geo.KMToCells(req.DetourKM)
		}
		speed := s.cfg.DefaultSpeed
		if req.Speed > 0 {
			speed = req.Speed
		}
		mr := 0.0
		if m := s.cfg.Models[req.ID]; m != nil {
			mr = m.MR
		}
		if req.MR > 0 {
			mr = req.MR
		}
		s.commitLocked(core.WorkerRegistered{WorkerID: req.ID, Detour: detour, Speed: speed, MR: mr})
		writeJSON(w, http.StatusCreated, s.workerResponseLocked(s.st.Workers[req.ID]))
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]workerResponse, 0, len(s.st.Workers))
		for _, ws := range s.st.Workers {
			out = append(out, s.workerResponseLocked(ws))
		}
		writeJSON(w, http.StatusOK, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) workerResponseLocked(ws *core.Worker) workerResponse {
	return workerResponse{
		ID: ws.ID, DetourKM: geo.CellsToKM(ws.Detour), Speed: ws.Speed,
		MR: ws.MR, Online: ws.Online, HasModel: s.cfg.Models[ws.ID] != nil,
	}
}

type locationRequest struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type offerResponse struct {
	OfferID  int     `json:"offerId"`
	TaskID   int     `json:"taskId"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"`
}

func (s *Server) handleWorkerByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/workers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad worker id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, exists := s.st.Workers[id]
	if !exists {
		httpError(w, http.StatusNotFound, "worker %d not registered", id)
		return
	}
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	switch {
	case r.Method == http.MethodGet && action == "":
		writeJSON(w, http.StatusOK, s.workerResponseLocked(ws))
	case r.Method == http.MethodPost && action == "location":
		var req locationRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		loc := s.cfg.Grid.Bounds().Clamp(geo.Pt(req.X, req.Y))
		s.commitLocked(core.WorkerReported{WorkerID: id, X: loc.X, Y: loc.Y})
		writeJSON(w, http.StatusOK, map[string]int{"traceLen": len(ws.Trace)})
	case r.Method == http.MethodGet && action == "offers":
		var out []offerResponse
		if ws.OfferID != 0 {
			off := s.st.Offers[ws.OfferID]
			t := s.st.Tasks[off.TaskID]
			out = append(out, offerResponse{
				OfferID: off.ID, TaskID: off.TaskID,
				X: t.Task.Loc.X, Y: t.Task.Loc.Y, Deadline: t.Task.Deadline,
			})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s %s", r.Method, action)
	}
}

// --- offers ---

type offerRecord struct {
	OfferID  int `json:"offerId"`
	TaskID   int `json:"taskId"`
	WorkerID int `json:"workerId"`
}

func (s *Server) handleOfferByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/offers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, "use /api/offers/{id}/accept or /reject")
		return
	}
	// GET /api/offers/{id}: the pending offer's (task, worker) pair — the
	// router tier reads it to learn which task an accept is about to commit.
	if r.Method == http.MethodGet && (len(parts) == 1 || parts[1] == "") {
		s.mu.Lock()
		defer s.mu.Unlock()
		off, exists := s.st.Offers[id]
		if !exists {
			httpError(w, http.StatusNotFound, "offer %d not found", id)
			return
		}
		writeJSON(w, http.StatusOK, offerRecord{OfferID: off.ID, TaskID: off.TaskID, WorkerID: off.WorkerID})
		return
	}
	if len(parts) < 2 {
		httpError(w, http.StatusBadRequest, "use /api/offers/{id}/accept or /reject")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	off, exists := s.st.Offers[id]
	if !exists {
		httpError(w, http.StatusNotFound, "offer %d not found", id)
		return
	}
	// The offer is only actionable while its task is still in the offered
	// state: a decision racing task expiry or cancellation must not flip an
	// expired/cancelled task to accepted. The stale offer is retracted (a
	// recorded transition, so replay sees it too) and the worker becomes
	// matchable again.
	t := s.st.Tasks[off.TaskID]
	if t == nil || t.Status != TaskOffered || t.OfferID != id {
		s.commitLocked(core.OfferRetracted{OfferID: id})
		if t == nil {
			httpError(w, http.StatusConflict, "offer %d is stale: task gone", id)
		} else {
			httpError(w, http.StatusConflict, "offer %d is stale: task %d is %s", id, off.TaskID, t.Status)
		}
		return
	}
	switch parts[1] {
	case "accept":
		s.commitLocked(core.OfferAccepted{OfferID: id})
		writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
	case "reject":
		s.commitLocked(core.OfferRejected{OfferID: id})
		writeJSON(w, http.StatusOK, map[string]string{"status": "rejected"})
	default:
		// Unknown action: nothing committed, the offer stays pending.
		httpError(w, http.StatusBadRequest, "unknown action %q", parts[1])
	}
}

// --- batch loop ---

type batchResponse struct {
	Tick   int `json:"tick"`
	Offers int `json:"offers"`
	Open   int `json:"open"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	made := s.runBatchLocked(r.Context())
	writeJSON(w, http.StatusOK, batchResponse{Tick: s.st.Tick, Offers: made, Open: s.st.OpenTasks()})
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.mu.Lock()
		s.commitLocked(core.TickAdvanced{})
		tick := s.st.Tick
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"tick": tick})
	case http.MethodGet:
		s.mu.Lock()
		tick := s.st.Tick
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"tick": tick})
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// runBatchLocked builds the assignment input from the state (open tasks and
// online, offer-free workers, model rollouts fanned out on the pool), runs
// the configured assigner, and commits the plan as one BatchAssigned (or
// DegradedBatch) event. It returns the number of offers made. A cancelled
// ctx (e.g. the requester of POST /api/batch hung up) abandons the batch
// without committing anything.
func (s *Server) runBatchLocked(ctx context.Context) int {
	// Route the batch's phase spans (assign.ppi/stage1..3 etc.) into this
	// server's registry, reuse the server's long-lived workspace (we hold
	// s.mu, which serializes batches), and time the batch end to end — empty
	// batches included, so the histogram matches "batches the platform ran".
	ctx = obs.WithRegistry(ctx, s.reg)
	ctx = assign.WithWorkspace(ctx, s.ws)
	batchStart := time.Now()
	defer func() {
		s.batchSec.Observe(time.Since(batchStart).Seconds())
	}()
	in, err := core.BuildBatch(ctx, s.st, s.cfg.Models, s.fc, s.cfg.PredHorizon, s.cfg.Parallelism)
	if err != nil {
		return 0
	}
	if len(in.TaskIDs) == 0 {
		// Nothing to match; still a recorded batch so replayed tallies agree.
		s.commitLocked(core.BatchAssigned{})
		return 0
	}
	pairs, degraded := s.assignWithDeadline(ctx, in.Tasks, in.Workers)
	if ctx.Err() != nil {
		// The matching may be partial; make no offers from it.
		return 0
	}
	// Offer IDs are allocated here, in plan order, and carried inside the
	// event — the log is self-contained and replays to identical IDs. With
	// OfferBase set the allocation starts in this shard's disjoint range.
	next := s.st.NextOffer
	if next < s.cfg.OfferBase {
		next = s.cfg.OfferBase
	}
	grants := make([]core.OfferIssued, len(pairs))
	for i, pr := range pairs {
		grants[i] = core.OfferIssued{
			OfferID:  next + i,
			TaskID:   in.TaskIDs[pr.Task],
			WorkerID: in.Workers[pr.Worker].ID,
		}
	}
	if degraded {
		s.commitLocked(core.DegradedBatch{Offers: grants, PredFallbacks: in.PredFallbacks})
	} else {
		s.commitLocked(core.BatchAssigned{Offers: grants, PredFallbacks: in.PredFallbacks})
	}
	return len(pairs)
}

// assignWithDeadline runs the configured assigner under the batch deadline.
// When the deadline fires before the assigner finishes, its (possibly
// partial) plan is discarded and the batch degrades to the greedy fallback:
// a worse matching delivered on time beats a perfect one delivered late. A
// panicking assigner degrades the same way. Degraded batches are counted
// for /api/metrics.
func (s *Server) assignWithDeadline(ctx context.Context, tasks []assign.Task, workers []assign.Worker) (pairs []assign.Pair, degraded bool) {
	bctx := ctx
	if s.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		bctx, cancel = context.WithTimeout(ctx, s.cfg.BatchTimeout)
		defer cancel()
	}
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("server: assigner %s panicked: %v", s.cfg.Assigner.Name(), rec)
				degraded = true
			}
		}()
		pairs = assign.Do(bctx, s.cfg.Assigner, tasks, workers, s.st.Tick)
	}()
	if bctx.Err() != nil && ctx.Err() == nil {
		degraded = true // deadline hit, not a client hang-up: fall back
	}
	if degraded {
		pairs = (assign.Greedy{}).Assign(tasks, workers, s.st.Tick)
	}
	return pairs, degraded
}

// AdvanceTick moves the platform clock forward one tick and expires
// overdue tasks. The background ticker of cmd/tampserver calls this; tests
// and manual deployments use POST /api/tick.
func (s *Server) AdvanceTick() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitLocked(core.TickAdvanced{})
	return s.st.Tick
}

// RunBatch executes one assignment batch programmatically, returning the
// number of offers made.
func (s *Server) RunBatch() int {
	return s.RunBatchContext(context.Background())
}

// RunBatchContext is RunBatch under an explicit context; cancellation
// abandons the batch without making offers.
func (s *Server) RunBatchContext(ctx context.Context) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runBatchLocked(ctx)
}

// ListenAndServe serves the platform API on addr until ctx is cancelled,
// then drains in-flight requests through http.Server.Shutdown. When tick is
// positive a background ticker advances the platform clock and runs one
// assignment batch per interval (the batch-mode loop of Fig. 1); the ticker
// stops with ctx. Request handlers inherit ctx as their base context, so
// cancelling it also cancels in-flight batch pools.
func (s *Server) ListenAndServe(ctx context.Context, addr string, tick time.Duration) error {
	srv := &http.Server{
		Addr:        addr,
		Handler:     s,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	if tick > 0 {
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s.AdvanceTick()
					s.RunBatchContext(ctx)
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		<-errc // joins the serve goroutine (ErrServerClosed after Shutdown)
		return err
	case err := <-errc:
		return err
	}
}

// --- metrics ---

type metricsResponse struct {
	Tick     int `json:"tick"`
	Tasks    int `json:"tasks"`
	Assigned int `json:"assigned"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Expired  int `json:"expired"`
	Workers  int `json:"workers"`
	// Degraded-mode accounting: requests answered 500 after a recovered
	// handler panic, batches that fell back to the greedy assigner, and
	// forecasts degraded to stand-still.
	Panics          int64 `json:"panics"`
	DegradedBatches int   `json:"degradedBatches"`
	PredFallbacks   int   `json:"predFallbacks"`
	// KM warm-start accounting from the server's long-lived assignment
	// workspace: how deep the last batch's confident-edge solve resumed, and
	// the cumulative warm/cold batch split since the server started.
	LastWarmRows int    `json:"lastWarmRows"`
	WarmBatches  uint64 `json:"warmBatches"`
	ColdBatches  uint64 `json:"coldBatches"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The JSON view reads the state machine's recovered-durable tallies
	// (panics excepted — a recovered panic is a process fact, not a state
	// transition); the Prometheus endpoint exports the mirrored series.
	c := s.st.Counts
	lastWarm, warmB, coldB := s.ws.WarmStats()
	writeJSON(w, http.StatusOK, metricsResponse{
		Tick: s.st.Tick, Tasks: len(s.st.Tasks),
		Assigned: int(c.Offers), Accepted: int(c.Accepts),
		Rejected: int(c.Rejects), Expired: int(c.Expired),
		Workers: len(s.st.Workers),
		Panics:  s.panicsC.Value(), DegradedBatches: int(c.DegradedBatches),
		PredFallbacks: int(c.PredFallbacks),
		LastWarmRows:  lastWarm, WarmBatches: warmB, ColdBatches: coldB,
	})
}

func trailingID(path, prefix string) (int, bool) {
	rest := strings.TrimPrefix(path, prefix)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	id, err := strconv.Atoi(rest)
	return id, err == nil
}
