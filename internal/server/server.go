// Package server hosts the online stage of the spatial crowdsourcing
// platform over HTTP, implementing the four-party protocol of Fig. 1:
//
//  1. task requesters POST /api/tasks;
//  2. the platform runs batch assignment (POST /api/batch or the
//     background ticker) using each worker's mobility predictor;
//  3. workers GET their offers and POST accept or reject decisions;
//  4. requesters GET /api/tasks/{id} for status.
//
// Workers never upload route plans — they only report their current
// location (POST /api/workers/{id}/location), exactly as §II specifies;
// the platform forecasts their trajectories from the reported trace with
// the trained models. Rejected (task, worker) pairs are never re-offered.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/obs"
	"github.com/spatialcrowd/tamp/internal/par"
	"github.com/spatialcrowd/tamp/internal/predict"
)

// TaskStatus enumerates a task's lifecycle.
type TaskStatus string

// Task lifecycle states.
const (
	TaskOpen      TaskStatus = "open"      // waiting for assignment
	TaskOffered   TaskStatus = "offered"   // offered to a worker, awaiting decision
	TaskAccepted  TaskStatus = "accepted"  // worker committed to serve it
	TaskExpired   TaskStatus = "expired"   // deadline passed unserved
	TaskCancelled TaskStatus = "cancelled" // withdrawn by the requester
)

// Config parameterizes the platform server.
type Config struct {
	Grid geo.Grid
	// Assigner runs each batch (default PPI).
	Assigner assign.Assigner
	// Models supplies per-worker predictors (nil entries degrade to
	// stand-still forecasts).
	Models map[int]*predict.WorkerModel
	// PredHorizon is the forecast window per batch, in ticks (default 8).
	PredHorizon int
	// DefaultDetourKM/DefaultSpeed apply to workers that register without
	// their own values.
	DefaultDetourKM float64
	DefaultSpeed    float64
	// Parallelism bounds the pool used for per-batch trajectory prediction
	// and, when the default PPI assigner is constructed, its edge-building
	// pool (0 = GOMAXPROCS).
	Parallelism int
	// MaxBodyBytes caps every request body via http.MaxBytesReader
	// (default 1 MiB; negative disables the cap).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's handling; the request context
	// is cancelled at the deadline (default 30s; negative disables).
	RequestTimeout time.Duration
	// BatchTimeout is the per-batch assignment deadline. When the
	// configured assigner has not produced a plan by then, its (possibly
	// partial) output is discarded and the batch falls back to the cheap
	// greedy assigner — degraded mode, counted in /api/metrics. Zero
	// disables the deadline.
	BatchTimeout time.Duration
	// Registry receives every server counter, batch timing, and the phase
	// spans of batches run through this server; GET /metrics exports it in
	// Prometheus text format. Nil gets a private registry per Server, so
	// two instances in one process never mix series.
	Registry *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and hold connections
	// open, so deployments must opt in.
	EnablePprof bool
}

type workerState struct {
	ID      int
	Detour  float64 // cells
	Speed   float64 // cells/tick
	MR      float64
	Online  bool
	Trace   []geo.Point // reported locations, most recent last
	OfferID int         // 0 = none pending
}

type taskState struct {
	Task     assign.Task
	Status   TaskStatus
	Offered  int // worker id of the pending offer
	Accepted int // worker id that accepted
	OfferID  int // id of the pending offer (0 = none); mirrors Status == TaskOffered
}

type offer struct {
	ID     int
	TaskID int
	Worker int
}

// Server is the HTTP platform. The zero value is not usable; construct
// with New.
type Server struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	tick     int
	nextTask int
	nextOff  int
	tasks    map[int]*taskState
	workers  map[int]*workerState
	offers   map[int]*offer

	// Every counter lives in reg; these handles are the single code path
	// for bumps, and both /api/metrics (JSON) and /metrics (Prometheus)
	// read the same series. Counter updates are atomic, so the recovery
	// middleware can bump panicsC outside s.mu.
	offersC, acceptsC, rejectsC, expiredC *obs.Counter
	batchesC                              *obs.Counter
	// degraded-mode fault counters, labelled tamp_server_faults_total{kind=...}:
	// recovered handler panics, batches that fell back to greedy after the
	// assignment deadline, and forecasts degraded to stand-still.
	panicsC, degradedC, fallbackC *obs.Counter
	batchSec                      *obs.Histogram
	mux                           *http.ServeMux
}

// New builds a Server ready to mount on an http.Server.
func New(cfg Config) *Server {
	if cfg.Grid.Cols == 0 {
		cfg.Grid = geo.DefaultGrid
	}
	if cfg.Assigner == nil {
		cfg.Assigner = assign.PPI{A: predict.DefaultMatchRadius, Parallelism: cfg.Parallelism}
	}
	if cfg.PredHorizon <= 0 {
		cfg.PredHorizon = 8
	}
	if cfg.DefaultDetourKM <= 0 {
		cfg.DefaultDetourKM = 6
	}
	if cfg.DefaultSpeed <= 0 {
		cfg.DefaultSpeed = 3
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		nextTask: 1,
		nextOff:  1,
		tasks:    map[int]*taskState{},
		workers:  map[int]*workerState{},
		offers:   map[int]*offer{},
	}
	fault := func(kind string) *obs.Counter {
		return reg.Counter("tamp_server_faults_total", obs.L("kind", kind))
	}
	s.offersC = reg.Counter("tamp_server_offers_total")
	s.acceptsC = reg.Counter("tamp_server_accepts_total")
	s.rejectsC = reg.Counter("tamp_server_rejects_total")
	s.expiredC = reg.Counter("tamp_server_expired_total")
	s.batchesC = reg.Counter("tamp_server_batches_total")
	s.panicsC = fault("panic")
	s.degradedC = fault("degraded_batch")
	s.fallbackC = fault("pred_fallback")
	s.batchSec = reg.Histogram("tamp_server_batch_seconds", obs.DefSecondsBuckets)
	s.routes()
	return s
}

// Registry exposes the server's metric registry, e.g. for an end-of-run
// dump by the embedding process.
func (s *Server) Registry() *obs.Registry { return s.reg }

// headerTracker remembers whether a handler already committed the response,
// so the recovery middleware knows if a 500 can still be sent.
type headerTracker struct {
	http.ResponseWriter
	wrote bool
}

func (h *headerTracker) WriteHeader(status int) {
	h.wrote = true
	h.ResponseWriter.WriteHeader(status)
}

func (h *headerTracker) Write(b []byte) (int, error) {
	h.wrote = true
	return h.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler. It is the hardening middleware for
// every route: request bodies are capped, each request gets a deadline, and
// a panicking handler is recovered into a 500 — one bad request never takes
// the platform down.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ht := &headerTracker{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.panicsC.Inc()
			log.Printf("server: recovered panic in %s %s: %v", r.Method, r.URL.Path, rec)
			if !ht.wrote {
				httpError(ht, http.StatusInternalServerError, "internal error")
			}
		}
	}()
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(ht, r.Body, s.cfg.MaxBodyBytes)
	}
	// pprof endpoints stream for as long as the client asks (?seconds=N);
	// the request deadline would truncate any profile longer than it.
	if s.cfg.RequestTimeout > 0 && !strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(ht, r)
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/api/tasks", s.handleTasks)
	s.mux.HandleFunc("/api/tasks/", s.handleTaskByID)
	s.mux.HandleFunc("/api/workers", s.handleWorkers)
	s.mux.HandleFunc("/api/workers/", s.handleWorkerByID)
	s.mux.HandleFunc("/api/offers/", s.handleOfferByID)
	s.mux.HandleFunc("/api/batch", s.handleBatch)
	s.mux.HandleFunc("/api/tick", s.handleTick)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	s.mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// encodeErrOnce rate-limits encoder-failure logging: the first failure is
// worth a line (it usually means a broken client connection or an
// unmarshalable value), every subsequent one would just flood the log.
var encodeErrOnce sync.Once

// writeJSON commits headers before any body bytes — Content-Type first,
// then the status line — so handlers can never interleave a late header
// with a partial body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		encodeErrOnce.Do(func() { log.Printf("server: writeJSON: %v", err) })
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// --- tasks ---

type taskRequest struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"` // absolute tick
}

type taskResponse struct {
	ID       int        `json:"id"`
	X        float64    `json:"x"`
	Y        float64    `json:"y"`
	Deadline int        `json:"deadline"`
	Status   TaskStatus `json:"status"`
	Worker   int        `json:"worker,omitempty"`
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req taskRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if req.Deadline <= s.tick {
			httpError(w, http.StatusBadRequest, "deadline %d not after current tick %d", req.Deadline, s.tick)
			return
		}
		loc := s.cfg.Grid.Bounds().Clamp(geo.Pt(req.X, req.Y))
		id := s.nextTask
		s.nextTask++
		s.tasks[id] = &taskState{
			Task:   assign.Task{ID: id, Loc: loc, Arrival: s.tick, Deadline: req.Deadline},
			Status: TaskOpen,
		}
		writeJSON(w, http.StatusCreated, s.taskResponseLocked(id))
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]taskResponse, 0, len(s.tasks))
		for id := range s.tasks {
			out = append(out, s.taskResponseLocked(id))
		}
		writeJSON(w, http.StatusOK, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) taskResponseLocked(id int) taskResponse {
	t := s.tasks[id]
	resp := taskResponse{
		ID: id, X: t.Task.Loc.X, Y: t.Task.Loc.Y,
		Deadline: t.Task.Deadline, Status: t.Status,
	}
	switch t.Status {
	case TaskOffered:
		resp.Worker = t.Offered
	case TaskAccepted:
		resp.Worker = t.Accepted
	}
	return resp
}

func (s *Server) handleTaskByID(w http.ResponseWriter, r *http.Request) {
	id, ok := trailingID(r.URL.Path, "/api/tasks/")
	if !ok {
		httpError(w, http.StatusBadRequest, "bad task id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, exists := s.tasks[id]
	if !exists {
		httpError(w, http.StatusNotFound, "task %d not found", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.taskResponseLocked(id))
	case http.MethodDelete:
		if t.Status == TaskAccepted {
			httpError(w, http.StatusConflict, "task %d already accepted", id)
			return
		}
		// Cancelling an offered task retracts the outstanding offer too, so
		// the worker is immediately matchable again and a late accept on
		// the dead offer cannot resurrect the task.
		s.retractOfferLocked(t)
		t.Status = TaskCancelled
		writeJSON(w, http.StatusOK, s.taskResponseLocked(id))
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

// --- workers ---

type workerRequest struct {
	ID       int     `json:"id"`
	DetourKM float64 `json:"detourKm"`
	Speed    float64 `json:"speed"` // cells per tick
	MR       float64 `json:"mr"`    // optional override of the model's MR
}

type workerResponse struct {
	ID       int     `json:"id"`
	DetourKM float64 `json:"detourKm"`
	Speed    float64 `json:"speed"`
	MR       float64 `json:"mr"`
	Online   bool    `json:"online"`
	HasModel bool    `json:"hasModel"`
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req workerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if req.ID <= 0 {
			httpError(w, http.StatusBadRequest, "worker id must be positive")
			return
		}
		if _, dup := s.workers[req.ID]; dup {
			httpError(w, http.StatusConflict, "worker %d already registered", req.ID)
			return
		}
		ws := &workerState{ID: req.ID, Detour: geo.KMToCells(s.cfg.DefaultDetourKM), Speed: s.cfg.DefaultSpeed}
		if req.DetourKM > 0 {
			ws.Detour = geo.KMToCells(req.DetourKM)
		}
		if req.Speed > 0 {
			ws.Speed = req.Speed
		}
		if m := s.cfg.Models[req.ID]; m != nil {
			ws.MR = m.MR
		}
		if req.MR > 0 {
			ws.MR = req.MR
		}
		s.workers[req.ID] = ws
		writeJSON(w, http.StatusCreated, s.workerResponseLocked(ws))
	case http.MethodGet:
		s.mu.Lock()
		defer s.mu.Unlock()
		out := make([]workerResponse, 0, len(s.workers))
		for _, ws := range s.workers {
			out = append(out, s.workerResponseLocked(ws))
		}
		writeJSON(w, http.StatusOK, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) workerResponseLocked(ws *workerState) workerResponse {
	return workerResponse{
		ID: ws.ID, DetourKM: geo.CellsToKM(ws.Detour), Speed: ws.Speed,
		MR: ws.MR, Online: ws.Online, HasModel: s.cfg.Models[ws.ID] != nil,
	}
}

type locationRequest struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type offerResponse struct {
	OfferID  int     `json:"offerId"`
	TaskID   int     `json:"taskId"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Deadline int     `json:"deadline"`
}

func (s *Server) handleWorkerByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/workers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad worker id")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, exists := s.workers[id]
	if !exists {
		httpError(w, http.StatusNotFound, "worker %d not registered", id)
		return
	}
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	switch {
	case r.Method == http.MethodGet && action == "":
		writeJSON(w, http.StatusOK, s.workerResponseLocked(ws))
	case r.Method == http.MethodPost && action == "location":
		var req locationRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad json: %v", err)
			return
		}
		ws.Online = true
		ws.Trace = append(ws.Trace, s.cfg.Grid.Bounds().Clamp(geo.Pt(req.X, req.Y)))
		if len(ws.Trace) > 256 {
			ws.Trace = ws.Trace[len(ws.Trace)-256:]
		}
		writeJSON(w, http.StatusOK, map[string]int{"traceLen": len(ws.Trace)})
	case r.Method == http.MethodGet && action == "offers":
		var out []offerResponse
		if ws.OfferID != 0 {
			off := s.offers[ws.OfferID]
			t := s.tasks[off.TaskID]
			out = append(out, offerResponse{
				OfferID: off.ID, TaskID: off.TaskID,
				X: t.Task.Loc.X, Y: t.Task.Loc.Y, Deadline: t.Task.Deadline,
			})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s %s", r.Method, action)
	}
}

// --- offers ---

func (s *Server) handleOfferByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/offers/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil || len(parts) < 2 {
		httpError(w, http.StatusBadRequest, "use /api/offers/{id}/accept or /reject")
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	off, exists := s.offers[id]
	if !exists {
		httpError(w, http.StatusNotFound, "offer %d not found", id)
		return
	}
	t := s.tasks[off.TaskID]
	// The offer is only actionable while its task is still in the offered
	// state: a decision racing task expiry or cancellation must not flip an
	// expired/cancelled task to accepted. The stale offer is discarded so
	// the worker becomes matchable again.
	if t == nil || t.Status != TaskOffered || t.OfferID != id {
		if ws := s.workers[off.Worker]; ws != nil && ws.OfferID == id {
			ws.OfferID = 0
		}
		delete(s.offers, id)
		if t == nil {
			httpError(w, http.StatusConflict, "offer %d is stale: task gone", id)
		} else {
			httpError(w, http.StatusConflict, "offer %d is stale: task %d is %s", id, off.TaskID, t.Status)
		}
		return
	}
	ws := s.workers[off.Worker]
	delete(s.offers, id)
	ws.OfferID = 0
	t.OfferID = 0
	switch parts[1] {
	case "accept":
		t.Status = TaskAccepted
		t.Accepted = off.Worker
		s.acceptsC.Inc()
		writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
	case "reject":
		t.Status = TaskOpen
		t.Offered = 0
		// Never re-offer a declined pair.
		t.Task.Excluded = append(t.Task.Excluded, off.Worker)
		s.rejectsC.Inc()
		writeJSON(w, http.StatusOK, map[string]string{"status": "rejected"})
	default:
		// Unknown action: the offer stays pending.
		s.offers[id] = off
		ws.OfferID = id
		t.OfferID = id
		httpError(w, http.StatusBadRequest, "unknown action %q", parts[1])
	}
}

// --- batch loop ---

type batchResponse struct {
	Tick   int `json:"tick"`
	Offers int `json:"offers"`
	Open   int `json:"open"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	made := s.runBatchLocked(r.Context())
	open := 0
	for _, t := range s.tasks {
		if t.Status == TaskOpen {
			open++
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{Tick: s.tick, Offers: made, Open: open})
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.mu.Lock()
		s.tick++
		s.expireLocked()
		tick := s.tick
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"tick": tick})
	case http.MethodGet:
		s.mu.Lock()
		tick := s.tick
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]int{"tick": tick})
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s", r.Method)
	}
}

func (s *Server) expireLocked() {
	for _, t := range s.tasks {
		if (t.Status == TaskOpen || t.Status == TaskOffered) && t.Task.Deadline < s.tick {
			s.retractOfferLocked(t)
			t.Status = TaskExpired
			s.expiredC.Inc()
		}
	}
}

// retractOfferLocked withdraws the task's pending offer, if any, freeing
// the worker for the next batch. The task's pending offer id is stored on
// taskState, so retraction is O(1) per task instead of a scan over every
// outstanding offer.
func (s *Server) retractOfferLocked(t *taskState) {
	if t.OfferID == 0 {
		return
	}
	if off := s.offers[t.OfferID]; off != nil {
		if ws := s.workers[off.Worker]; ws != nil {
			ws.OfferID = 0
		}
		delete(s.offers, off.ID)
	}
	t.OfferID = 0
	t.Offered = 0
}

// runBatchLocked builds the assignment input from open tasks and online,
// offer-free workers, runs the configured assigner, and converts the plan
// into pending offers. It returns the number of offers made. The per-worker
// trajectory rollouts — the expensive part of a batch — fan out on the
// pool; a cancelled ctx (e.g. the requester of POST /api/batch hung up)
// abandons the batch without making offers.
func (s *Server) runBatchLocked(ctx context.Context) int {
	// Route the batch's phase spans (assign.ppi/stage1..3 etc.) into this
	// server's registry, and time the batch end to end — empty batches
	// included, so the counter matches "batches the platform ran".
	ctx = obs.WithRegistry(ctx, s.reg)
	batchStart := time.Now()
	defer func() {
		s.batchesC.Inc()
		s.batchSec.Observe(time.Since(batchStart).Seconds())
	}()
	var tasks []assign.Task
	var taskIDs []int
	for id, t := range s.tasks {
		if t.Status == TaskOpen && t.Task.Deadline >= s.tick {
			tasks = append(tasks, t.Task)
			taskIDs = append(taskIDs, id)
		}
	}
	// Candidate workers first (sorted so the batch order is stable across
	// map iteration), then the model rollouts concurrently.
	var workerIDs []int
	for id, ws := range s.workers {
		if !ws.Online || ws.OfferID != 0 || len(ws.Trace) == 0 {
			continue
		}
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	if len(tasks) == 0 || len(workerIDs) == 0 {
		return 0
	}
	workers := make([]assign.Worker, len(workerIDs))
	// fellBack is index-addressed per worker and reduced after the pool
	// joins, so the counter needs no synchronization inside the closure.
	fellBack := make([]bool, len(workerIDs))
	if err := par.ForEach(ctx, len(workerIDs), s.cfg.Parallelism, func(i int) error {
		id := workerIDs[i]
		ws := s.workers[id]
		cur := ws.Trace[len(ws.Trace)-1]
		aw := assign.Worker{
			ID: id, Loc: cur, Detour: ws.Detour, Speed: ws.Speed, MR: ws.MR,
		}
		if m := s.cfg.Models[id]; m != nil {
			aw.Predicted = safeServerForecast(m, ws.Trace, s.cfg.PredHorizon)
			if aw.Predicted == nil {
				fellBack[i] = true
			}
		}
		if aw.Predicted == nil {
			// No model, or its forecast failed: the worker stands still
			// rather than dropping out of the batch.
			for j := 0; j < s.cfg.PredHorizon; j++ {
				aw.Predicted = append(aw.Predicted, cur)
			}
		}
		workers[i] = aw
		return nil
	}); err != nil {
		return 0
	}
	for _, fb := range fellBack {
		if fb {
			s.fallbackC.Inc()
		}
	}
	pairs := s.assignWithDeadline(ctx, tasks, workers)
	if ctx.Err() != nil {
		// The matching may be partial; make no offers from it.
		return 0
	}
	for _, pr := range pairs {
		tid := taskIDs[pr.Task]
		wid := workers[pr.Worker].ID
		off := &offer{ID: s.nextOff, TaskID: tid, Worker: wid}
		s.nextOff++
		s.offers[off.ID] = off
		s.tasks[tid].Status = TaskOffered
		s.tasks[tid].Offered = wid
		s.tasks[tid].OfferID = off.ID
		s.workers[wid].OfferID = off.ID
		s.offersC.Inc()
	}
	return len(pairs)
}

// assignWithDeadline runs the configured assigner under the batch deadline.
// When the deadline fires before the assigner finishes, its (possibly
// partial) plan is discarded and the batch degrades to the greedy fallback:
// a worse matching delivered on time beats a perfect one delivered late. A
// panicking assigner degrades the same way. Degraded batches are counted
// for /api/metrics.
func (s *Server) assignWithDeadline(ctx context.Context, tasks []assign.Task, workers []assign.Worker) (pairs []assign.Pair) {
	bctx := ctx
	if s.cfg.BatchTimeout > 0 {
		var cancel context.CancelFunc
		bctx, cancel = context.WithTimeout(ctx, s.cfg.BatchTimeout)
		defer cancel()
	}
	degraded := false
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				log.Printf("server: assigner %s panicked: %v", s.cfg.Assigner.Name(), rec)
				degraded = true
			}
		}()
		pairs = assign.Do(bctx, s.cfg.Assigner, tasks, workers, s.tick)
	}()
	if bctx.Err() != nil && ctx.Err() == nil {
		degraded = true // deadline hit, not a client hang-up: fall back
	}
	if degraded {
		s.degradedC.Inc()
		pairs = (assign.Greedy{}).Assign(tasks, workers, s.tick)
	}
	return pairs
}

// safeServerForecast isolates one worker's predictor: a panic or a
// non-finite forecast yields nil, and the caller degrades that worker — and
// only that worker — to a stand-still prediction.
func safeServerForecast(m *predict.WorkerModel, trace []geo.Point, horizon int) (pred []geo.Point) {
	defer func() {
		if rec := recover(); rec != nil {
			pred = nil
		}
	}()
	pred = m.PredictFuture(trace, horizon)
	for _, pt := range pred {
		if math.IsNaN(pt.X) || math.IsNaN(pt.Y) || math.IsInf(pt.X, 0) || math.IsInf(pt.Y, 0) {
			return nil
		}
	}
	return pred
}

// AdvanceTick moves the platform clock forward one tick and expires
// overdue tasks. The background ticker of cmd/tampserver calls this; tests
// and manual deployments use POST /api/tick.
func (s *Server) AdvanceTick() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	s.expireLocked()
	return s.tick
}

// RunBatch executes one assignment batch programmatically, returning the
// number of offers made.
func (s *Server) RunBatch() int {
	return s.RunBatchContext(context.Background())
}

// RunBatchContext is RunBatch under an explicit context; cancellation
// abandons the batch without making offers.
func (s *Server) RunBatchContext(ctx context.Context) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runBatchLocked(ctx)
}

// ListenAndServe serves the platform API on addr until ctx is cancelled,
// then drains in-flight requests through http.Server.Shutdown. When tick is
// positive a background ticker advances the platform clock and runs one
// assignment batch per interval (the batch-mode loop of Fig. 1); the ticker
// stops with ctx. Request handlers inherit ctx as their base context, so
// cancelling it also cancels in-flight batch pools.
func (s *Server) ListenAndServe(ctx context.Context, addr string, tick time.Duration) error {
	srv := &http.Server{
		Addr:        addr,
		Handler:     s,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	if tick > 0 {
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					s.AdvanceTick()
					s.RunBatchContext(ctx)
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		<-errc // joins the serve goroutine (ErrServerClosed after Shutdown)
		return err
	case err := <-errc:
		return err
	}
}

// --- metrics ---

type metricsResponse struct {
	Tick     int `json:"tick"`
	Tasks    int `json:"tasks"`
	Assigned int `json:"assigned"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Expired  int `json:"expired"`
	Workers  int `json:"workers"`
	// Degraded-mode accounting: requests answered 500 after a recovered
	// handler panic, batches that fell back to the greedy assigner, and
	// forecasts degraded to stand-still.
	Panics          int64 `json:"panics"`
	DegradedBatches int   `json:"degradedBatches"`
	PredFallbacks   int   `json:"predFallbacks"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The JSON view reads the same registry series the Prometheus endpoint
	// exports; only the shape differs (it predates /metrics and clients
	// depend on it).
	writeJSON(w, http.StatusOK, metricsResponse{
		Tick: s.tick, Tasks: len(s.tasks),
		Assigned: int(s.offersC.Value()), Accepted: int(s.acceptsC.Value()),
		Rejected: int(s.rejectsC.Value()), Expired: int(s.expiredC.Value()),
		Workers: len(s.workers),
		Panics:  s.panicsC.Value(), DegradedBatches: int(s.degradedC.Value()),
		PredFallbacks: int(s.fallbackC.Value()),
	})
}

func trailingID(path, prefix string) (int, bool) {
	rest := strings.TrimPrefix(path, prefix)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	id, err := strconv.Atoi(rest)
	return id, err == nil
}
