package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/fault"
	"github.com/spatialcrowd/tamp/internal/predict"
)

// offerSetup registers one worker, posts one task near its trace, runs a
// batch, and returns the resulting task and offer.
func offerSetup(t *testing.T, c *client, deadline int) (taskResponse, offerResponse) {
	t.Helper()
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	var task taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 18, Y: 10, Deadline: deadline}, &task)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d, want 1", batch.Offers)
	}
	var offers []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers)
	if len(offers) != 1 {
		t.Fatalf("worker offers = %+v", offers)
	}
	return task, offers[0]
}

// TestOfferOutstandingAtExpiry: the deadline tick fires while an offer is
// still pending. The task expires, the offer is retracted, the worker is
// matchable again, and a late accept on the dead offer cannot resurrect the
// task.
func TestOfferOutstandingAtExpiry(t *testing.T) {
	c := newClient(t, testConfig())
	task, off := offerSetup(t, c, 6)
	for i := 0; i < 7; i++ {
		c.do("POST", "/api/tick", nil, nil)
	}
	var got taskResponse
	c.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != TaskExpired {
		t.Fatalf("offered task after deadline = %+v", got)
	}
	// The retracted offer is gone; the late accept must not land.
	if code := c.do("POST", fmt.Sprintf("/api/offers/%d/accept", off.OfferID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("late accept on expired offer: status %d, want 404", code)
	}
	c.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != TaskExpired {
		t.Fatalf("late accept resurrected the task: %+v", got)
	}
	// The worker's offer slot is free: a fresh task can be offered.
	var task2 taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 16, Y: 10, Deadline: 40}, &task2)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("worker still blocked by a retracted offer: %+v", batch)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.Accepted != 0 || m.Expired != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestDeleteOfferedTaskRetractsOffer: DELETE on a task in the offered state
// cancels it AND withdraws the outstanding offer, so the offer can no
// longer be accepted and the worker is immediately matchable.
func TestDeleteOfferedTaskRetractsOffer(t *testing.T) {
	c := newClient(t, testConfig())
	task, off := offerSetup(t, c, 40)
	var cancelled taskResponse
	if code := c.do("DELETE", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}
	if cancelled.Status != TaskCancelled {
		t.Fatalf("status after cancel = %s", cancelled.Status)
	}
	if code := c.do("POST", fmt.Sprintf("/api/offers/%d/accept", off.OfferID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("accept on cancelled task's offer: status %d, want 404", code)
	}
	var got taskResponse
	c.do("GET", fmt.Sprintf("/api/tasks/%d", task.ID), nil, &got)
	if got.Status != TaskCancelled {
		t.Fatalf("accept flipped a cancelled task: %+v", got)
	}
	// Worker free again.
	var task2 taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 16, Y: 10, Deadline: 40}, &task2)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("worker still blocked after task cancellation: %+v", batch)
	}
}

// TestDoubleAccept: the second accept of the same offer must fail and must
// not double-count the acceptance.
func TestDoubleAccept(t *testing.T) {
	c := newClient(t, testConfig())
	_, off := offerSetup(t, c, 40)
	if code := c.do("POST", fmt.Sprintf("/api/offers/%d/accept", off.OfferID), nil, nil); code != http.StatusOK {
		t.Fatalf("first accept status %d", code)
	}
	if code := c.do("POST", fmt.Sprintf("/api/offers/%d/accept", off.OfferID), nil, nil); code != http.StatusNotFound {
		t.Fatalf("second accept status %d, want 404", code)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.Accepted != 1 {
		t.Fatalf("accepted = %d after double accept, want 1", m.Accepted)
	}
}

// TestPanicRecoveryMiddleware: a panicking handler is answered with a JSON
// 500, the panic is counted in /api/metrics, and the server keeps serving.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Same-package test hook: mount a deliberately broken route behind the
	// middleware.
	s.mux.HandleFunc("/api/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	c := &client{t: t, srv: ts}

	var errResp map[string]string
	if code := c.do("GET", "/api/boom", nil, &errResp); code != http.StatusInternalServerError {
		t.Fatalf("panicking route status %d, want 500", code)
	}
	if errResp["error"] == "" {
		t.Fatalf("500 body = %v, want JSON error", errResp)
	}
	// Server still alive and counting.
	var m metricsResponse
	if code := c.do("GET", "/api/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics after panic: status %d", code)
	}
	if m.Panics != 1 {
		t.Fatalf("panics = %d, want 1", m.Panics)
	}
}

// TestPanickingModelDegradesWorkerNotBatch: a predictor that panics inside
// the batch pool degrades its worker to a stand-still forecast; the batch
// still produces offers and the fallback is counted.
func TestPanickingModelDegradesWorkerNotBatch(t *testing.T) {
	cfg := testConfig()
	cfg.Models = map[int]*predict.WorkerModel{
		1: {WorkerID: 1, Model: &fault.PanicModel{}, SeqIn: 3, SeqOut: 1},
	}
	c := newClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	// Task at the worker's stand-still location is feasible without a model.
	c.do("POST", "/api/tasks", taskRequest{X: 15, Y: 10, Deadline: 40}, nil)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d, want 1 from the degraded worker", batch.Offers)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.PredFallbacks == 0 {
		t.Fatal("predictor fallback not counted")
	}
	if m.Panics != 0 {
		t.Fatalf("model panic leaked to the middleware: %+v", m)
	}
}

// stallAssigner blocks until its context is done, then returns a bogus
// partial plan — exactly what a degraded batch must discard.
type stallAssigner struct{}

func (stallAssigner) Name() string { return "Stall" }
func (stallAssigner) Assign(tasks []assign.Task, workers []assign.Worker, tick int) []assign.Pair {
	return nil
}
func (stallAssigner) AssignContext(ctx context.Context, tasks []assign.Task, workers []assign.Worker, tick int) []assign.Pair {
	<-ctx.Done()
	return []assign.Pair{{Task: 0, Worker: 0}}
}

// TestBatchDeadlineFallsBackToGreedy: when the primary assigner blows the
// batch deadline, its partial plan is discarded, the greedy fallback makes
// the offers, and the degraded batch is counted.
func TestBatchDeadlineFallsBackToGreedy(t *testing.T) {
	cfg := testConfig()
	cfg.Assigner = stallAssigner{}
	cfg.BatchTimeout = 20 * time.Millisecond
	c := newClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	c.do("POST", "/api/tasks", taskRequest{X: 15, Y: 10, Deadline: 40}, nil)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("degraded batch offers = %d, want 1 from greedy", batch.Offers)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.DegradedBatches != 1 {
		t.Fatalf("degradedBatches = %d, want 1", m.DegradedBatches)
	}
}

// panicAssigner dies mid-matching; the batch must degrade, not the process.
type panicAssigner struct{}

func (panicAssigner) Name() string { return "Panic" }
func (panicAssigner) Assign([]assign.Task, []assign.Worker, int) []assign.Pair {
	panic("assigner bug")
}

func TestPanickingAssignerFallsBackToGreedy(t *testing.T) {
	cfg := testConfig()
	cfg.Assigner = panicAssigner{}
	c := newClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	c.do("POST", "/api/tasks", taskRequest{X: 15, Y: 10, Deadline: 40}, nil)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d, want 1 from greedy after assigner panic", batch.Offers)
	}
	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.DegradedBatches != 1 || m.Panics != 0 {
		t.Fatalf("metrics = %+v; want degradedBatches=1 and no middleware panics", m)
	}
}

// TestRequestBodyCap: oversized request bodies are refused, not buffered.
func TestRequestBodyCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 64
	c := newClient(t, cfg)
	huge := map[string]string{"junk": strings.Repeat("x", 4096)}
	if code := c.do("POST", "/api/tasks", huge, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized body status %d, want 400", code)
	}
	// Normal-size requests still work.
	if code := c.do("POST", "/api/tasks", taskRequest{X: 1, Y: 1, Deadline: 5}, nil); code != http.StatusCreated {
		t.Fatalf("small body status %d", code)
	}
}

// TestRequestTimeoutCancelsBatch: the per-request deadline cancels in-flight
// batch work instead of hanging the handler forever.
func TestRequestTimeoutCancelsBatch(t *testing.T) {
	cfg := testConfig()
	cfg.Assigner = stallAssigner{}
	cfg.RequestTimeout = 30 * time.Millisecond
	c := newClient(t, cfg)
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	c.do("POST", "/api/tasks", taskRequest{X: 15, Y: 10, Deadline: 40}, nil)
	done := make(chan batchResponse, 1)
	go func() {
		var batch batchResponse
		c.do("POST", "/api/batch", nil, &batch)
		done <- batch
	}()
	select {
	case batch := <-done:
		// The cancelled batch makes no offers (the plan may be partial).
		if batch.Offers != 0 {
			t.Fatalf("cancelled batch made %d offers", batch.Offers)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch request hung past the request timeout")
	}
}

// TestListenAndServeShutdownLeaksNoGoroutines: a full server lifecycle —
// start, serve a request, cancel — must return every goroutine it started
// (ticker loop, serve loop, in-flight handlers).
func TestListenAndServeShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		s, err := New(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		errc := make(chan error, 1)
		go func() { errc <- s.ListenAndServe(ctx, "127.0.0.1:0", time.Millisecond) }()
		// Let the ticker fire a few times, then shut down.
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			if err != nil && err != http.ErrServerClosed {
				t.Fatalf("shutdown error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
	// Goroutine counts are noisy (finalizers, the test framework); poll
	// until the count returns to the baseline neighborhood.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d after=%d\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
