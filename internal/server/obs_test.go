package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// fetchText GETs a non-JSON endpoint and returns status, content type, body.
func fetchText(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestMetricsEndpointMirrorsJSON drives the full protocol once and checks
// that GET /metrics exports the same counts /api/metrics reports — both
// views read the same registry series.
func TestMetricsEndpointMirrorsJSON(t *testing.T) {
	c := newClient(t, testConfig())
	c.do("POST", "/api/workers", workerRequest{ID: 1, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
	walkWorker(c, 1, 6, 10, 10)
	var task taskResponse
	c.do("POST", "/api/tasks", taskRequest{X: 18, Y: 10, Deadline: 30}, &task)
	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers != 1 {
		t.Fatalf("offers = %d, want 1", batch.Offers)
	}
	var offers []offerResponse
	c.do("GET", "/api/workers/1/offers", nil, &offers)
	c.do("POST", fmt.Sprintf("/api/offers/%d/accept", offers[0].OfferID), nil, nil)

	status, ctype, body := fetchText(t, c.srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE tamp_server_offers_total counter",
		"tamp_server_offers_total 1",
		"tamp_server_accepts_total 1",
		"tamp_server_rejects_total 0",
		"tamp_server_batches_total 1",
		"# TYPE tamp_server_batch_seconds histogram",
		"tamp_server_batch_seconds_count 1",
		`tamp_server_faults_total{kind="panic"} 0`,
		`tamp_server_faults_total{kind="degraded_batch"} 0`,
		`tamp_server_faults_total{kind="pred_fallback"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
	// The batch ran through the server's registry, so the assignment phase
	// spans must have recorded there too.
	if !strings.Contains(body, `tamp_phase_seconds_count{phase="assign.ppi"} 1`) {
		t.Errorf("/metrics missing assign.ppi span\nbody:\n%s", body)
	}

	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.Assigned != 1 || m.Accepted != 1 || m.Rejected != 0 {
		t.Fatalf("JSON metrics diverged from registry: %+v", m)
	}
}

// TestBatchWorkspaceReuseReportsWarmCold drives two non-empty batches and
// checks /api/metrics accounts for both in the warm/cold split — proof the
// server threads ONE long-lived assignment workspace through every batch
// (a per-batch workspace would leave the server's counters at zero).
func TestBatchWorkspaceReuseReportsWarmCold(t *testing.T) {
	c := newClient(t, testConfig())
	for id := 1; id <= 2; id++ {
		c.do("POST", "/api/workers", workerRequest{ID: id, DetourKM: 8, Speed: 1, MR: 0.8}, nil)
		walkWorker(c, id, 6, 10, 10+float64(id))
	}
	c.do("POST", "/api/tasks", taskRequest{X: 18, Y: 11, Deadline: 40}, nil)
	c.do("POST", "/api/tasks", taskRequest{X: 18, Y: 12, Deadline: 40}, nil)

	var batch batchResponse
	c.do("POST", "/api/batch", nil, &batch)
	if batch.Offers == 0 {
		t.Fatal("first batch made no offers")
	}
	// Decline everything so the next batch sees the same open tasks and free
	// workers (minus the excluded pairs) — another non-empty stage-1 solve.
	for id := 1; id <= 2; id++ {
		var offers []offerResponse
		c.do("GET", fmt.Sprintf("/api/workers/%d/offers", id), nil, &offers)
		for _, o := range offers {
			c.do("POST", fmt.Sprintf("/api/offers/%d/reject", o.OfferID), nil, nil)
		}
	}
	c.do("POST", "/api/batch", nil, &batch)

	var m metricsResponse
	c.do("GET", "/api/metrics", nil, &m)
	if m.WarmBatches+m.ColdBatches != 2 {
		t.Fatalf("warm+cold = %d+%d, want 2 batches accounted in one workspace: %+v",
			m.WarmBatches, m.ColdBatches, m)
	}
}

// TestPprofGating checks /debug/pprof/ is absent by default and mounted
// only when Config.EnablePprof is set.
func TestPprofGating(t *testing.T) {
	off := newClient(t, testConfig())
	if status, _, _ := fetchText(t, off.srv.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof off: status = %d, want 404", status)
	}

	cfg := testConfig()
	cfg.EnablePprof = true
	on := newClient(t, cfg)
	status, _, body := fetchText(t, on.srv.URL+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("pprof on: status = %d, want 200", status)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index body unexpected:\n%s", body)
	}
}
