package geo

import "math"

// DensityIndex counts historical spatial-task locations per grid cell and
// answers "how many historical tasks fell within radius r of point p"
// queries. It backs the task-assignment-oriented loss weight f_w (Eq. 7),
// which needs |{τ : dis(τ, l_i) < d^q}| for every trajectory point l_i.
//
// Counting is done at cell granularity: a task contributes to the count of
// every cell whose centre lies within the query radius of the query cell's
// centre. This keeps queries O(r²) with no per-task scan, which matters
// because the loss is evaluated inside the training loop.
type DensityIndex struct {
	grid   Grid
	counts []int // per-cell task counts
	total  int
}

// NewDensityIndex returns an empty index over g.
func NewDensityIndex(g Grid) *DensityIndex {
	return &DensityIndex{grid: g, counts: make([]int, g.NumCells())}
}

// Add records one historical task at location p.
func (d *DensityIndex) Add(p Point) {
	d.counts[d.grid.CellIndex(p)]++
	d.total++
}

// AddAll records every location in ps.
func (d *DensityIndex) AddAll(ps []Point) {
	for _, p := range ps {
		d.Add(p)
	}
}

// Total returns the number of tasks recorded.
func (d *DensityIndex) Total() int { return d.total }

// CountWithin returns the number of recorded tasks whose cell centre lies
// within radius r (in cells) of p.
func (d *DensityIndex) CountWithin(p Point, r float64) int {
	if r <= 0 {
		return 0
	}
	col, row := d.grid.CellOf(p)
	ir := int(math.Ceil(r)) + 1
	n := 0
	for dr := -ir; dr <= ir; dr++ {
		rr := row + dr
		if rr < 0 || rr >= d.grid.Rows {
			continue
		}
		for dc := -ir; dc <= ir; dc++ {
			cc := col + dc
			if cc < 0 || cc >= d.grid.Cols {
				continue
			}
			if d.grid.CellCenter(cc, rr).Dist(p) <= r {
				n += d.counts[rr*d.grid.Cols+cc]
			}
		}
	}
	return n
}

// Density returns the mean number of tasks per unit disc of radius r,
// the ρ^t term of Eq. 7 (tasks per circular unit space). It is computed as
// total tasks scaled by the ratio of the disc area to the grid area, and is
// never smaller than 1 so the weight ratio in Eq. 7 stays bounded.
func (d *DensityIndex) Density(r float64) float64 {
	b := d.grid.Bounds()
	area := b.Width() * b.Height()
	if area <= 0 || d.total == 0 {
		return 1
	}
	rho := float64(d.total) * math.Pi * r * r / area
	if rho < 1 {
		return 1
	}
	return rho
}
