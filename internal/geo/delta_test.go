package geo

import (
	"context"
	"math/rand"
	"slices"
	"testing"
)

// mirrorState is the oracle for Update tests: the plain envelope set the
// index should currently represent, maintained alongside the deltas.
type mirrorState struct {
	envs []BBox
	has  []bool
}

func newMirror(envs []BBox) *mirrorState {
	m := &mirrorState{envs: slices.Clone(envs), has: make([]bool, len(envs))}
	for i := range m.has {
		m.has[i] = true
	}
	return m
}

func (m *mirrorState) apply(deltas []EnvDelta) {
	for _, d := range deltas {
		id := int(d.ID)
		for id >= len(m.envs) {
			m.envs = append(m.envs, BBox{})
			m.has = append(m.has, false)
		}
		m.envs[id], m.has[id] = d.Env, d.Has
	}
}

// frozenFill rebuilds the index's buckets from scratch under the SAME grid
// geometry (bounds, cell size, oversize cut) as ix, over ix's current
// envelope state. This is the oracle for the delta protocol: Update must
// leave the buckets exactly as a from-scratch fill would.
func frozenFill(t *testing.T, ix *GridIndex) *GridIndex {
	t.Helper()
	c := &GridIndex{
		bounds:      ix.bounds,
		cell:        ix.cell,
		cols:        ix.cols,
		rows:        ix.rows,
		oversizeCut: ix.oversizeCut,
		n:           ix.n,
		envs:        slices.Clone(ix.envs[:ix.n]),
		has:         slices.Clone(ix.has[:ix.n]),
		over:        make([]bool, ix.n),
		epoch:       1,
	}
	if err := c.fillFrozen(context.Background(), 1); err != nil {
		t.Fatalf("fillFrozen: %v", err)
	}
	c.built = true
	return c
}

func sameBuckets(t *testing.T, got, want *GridIndex, label string) {
	t.Helper()
	if got.cols != want.cols || got.rows != want.rows {
		t.Fatalf("%s: dims %dx%d vs %dx%d", label, got.cols, got.rows, want.cols, want.rows)
	}
	for c := 0; c < got.cols*got.rows; c++ {
		g, w := got.bucketAt(c), want.bucketAt(c)
		if !slices.Equal(g, w) {
			t.Fatalf("%s: cell %d bucket %v, frozen rebuild has %v", label, c, g, w)
		}
	}
	if !slices.Equal(got.Overflow(), want.Overflow()) {
		t.Fatalf("%s: overflow %v, frozen rebuild has %v", label, got.Overflow(), want.Overflow())
	}
	for i := 0; i < got.n; i++ {
		if got.has[i] != want.has[i] || got.over[i] != want.over[i] {
			t.Fatalf("%s: id %d state has=%v over=%v, want has=%v over=%v",
				label, i, got.has[i], got.over[i], want.has[i], want.over[i])
		}
	}
}

// randDeltas mutates a random subset of ids: mostly small moves, some
// removals, some additions of brand-new ids past the current range, and the
// occasional giant envelope that must be routed to the overflow list.
func randDeltas(rng *rand.Rand, m *mirrorState, maxNew int) []EnvDelta {
	n := len(m.envs)
	k := 1 + rng.Intn(n/4+1)
	perm := rng.Perm(n)
	var deltas []EnvDelta
	for _, id := range perm[:k] {
		d := EnvDelta{ID: int32(id)}
		switch {
		case rng.Float64() < 0.15: // remove
		case rng.Float64() < 0.08: // heavy-tailed envelope → overflow
			x, y := rng.Float64()*100, rng.Float64()*60
			r := 30 + rng.Float64()*40
			d.Env, d.Has = BBox{Min: Pt(x-r, y-r), Max: Pt(x+r, y+r)}, true
		default: // move
			x, y := rng.Float64()*100, rng.Float64()*60
			rx, ry := rng.Float64()*4, rng.Float64()*4
			d.Env, d.Has = BBox{Min: Pt(x-rx, y-ry), Max: Pt(x+rx, y+ry)}, true
		}
		deltas = append(deltas, d)
	}
	for a := 0; a < maxNew; a++ {
		if rng.Float64() < 0.5 {
			continue
		}
		x, y := rng.Float64()*100, rng.Float64()*60
		deltas = append(deltas, EnvDelta{
			ID:  int32(len(m.envs) + a),
			Env: BBox{Min: Pt(x-1, y-1), Max: Pt(x+1, y+1)},
			Has: true,
		})
	}
	return deltas
}

// The delta-protocol property: after any sequence of Updates, every bucket
// and the overflow list are exactly what a from-scratch fill of the updated
// envelope set under the frozen geometry produces.
func TestUpdateMatchesFrozenRebuild(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		envs := randEnvelopes(60+rng.Intn(300), seed+100)
		m := newMirror(envs)
		var ix GridIndex
		buildOver(t, &ix, envs, 0)
		for step := 0; step < 6; step++ {
			deltas := randDeltas(rng, m, 3)
			m.apply(deltas)
			if _, _, ok := ix.Update(deltas); !ok {
				// Over the patch threshold: the caller's contract is a full
				// rebuild over the updated envelope set.
				err := ix.Build(context.Background(), len(m.envs), 1, func(i int) (BBox, bool) {
					return m.envs[i], m.has[i]
				})
				if err != nil {
					t.Fatalf("seed %d step %d: rebuild: %v", seed, step, err)
				}
				continue
			}
			sameBuckets(t, &ix, frozenFill(t, &ix), "after update")

			// Black-box superset check against the mirror: every indexed id
			// whose envelope contains a query point must be discoverable via
			// Candidates ∪ Overflow.
			for q := 0; q < 200; q++ {
				p := Pt(rng.Float64()*120-10, rng.Float64()*80-10)
				cand := ix.Candidates(p)
				ovf := ix.Overflow()
				for id := range m.envs {
					if !m.has[id] || !m.envs[id].Contains(p) {
						continue
					}
					id32 := int32(id)
					if !slices.Contains(cand, id32) && !slices.Contains(ovf, id32) {
						t.Fatalf("seed %d step %d: id %d contains %v but missing from candidates %v and overflow %v",
							seed, step, id, p, cand, ovf)
					}
				}
			}
		}
	}
}

// A rejected Update must leave the index bit-identical to before the call.
func TestUpdateRejectedLeavesIndexUntouched(t *testing.T) {
	envs := randEnvelopes(200, 42)
	var ix GridIndex
	buildOver(t, &ix, envs, 0)
	before := frozenFill(t, &ix)

	// Move every id to a fresh location: touches nearly every cell, which
	// must trip the half-grid threshold.
	rng := rand.New(rand.NewSource(43))
	deltas := make([]EnvDelta, len(envs))
	for i := range deltas {
		x, y := rng.Float64()*100, rng.Float64()*60
		deltas[i] = EnvDelta{ID: int32(i), Env: BBox{Min: Pt(x-3, y-3), Max: Pt(x+3, y+3)}, Has: true}
	}
	if _, _, ok := ix.Update(deltas); ok {
		t.Skip("full-churn update unexpectedly under threshold; nothing to assert")
	}
	sameBuckets(t, &ix, before, "after rejected update")
}

// Update must be insensitive to delta order: buckets are sorted sets.
func TestUpdateOrderIndependent(t *testing.T) {
	envs := randEnvelopes(150, 7)
	var a, b GridIndex
	buildOver(t, &a, envs, 0)
	buildOver(t, &b, envs, 0)

	rng := rand.New(rand.NewSource(8))
	m := newMirror(envs)
	deltas := randDeltas(rng, m, 2)
	shuffled := slices.Clone(deltas)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	_, _, okA := a.Update(deltas)
	_, _, okB := b.Update(shuffled)
	if okA != okB {
		t.Fatalf("ok mismatch: %v vs %v", okA, okB)
	}
	if !okA {
		t.Skip("update over threshold for this seed")
	}
	sameBuckets(t, &a, &b, "shuffled deltas")
}

// An id updated to a heavy-tailed envelope must migrate to the overflow
// list (and stay discoverable), then migrate back on a later update.
func TestUpdateOverflowMigration(t *testing.T) {
	envs := randEnvelopes(100, 11)
	var ix GridIndex
	buildOver(t, &ix, envs, 0)
	if len(ix.Overflow()) != 0 {
		t.Fatalf("uniform envelopes should not overflow, got %v", ix.Overflow())
	}

	giant := BBox{Min: Pt(-50, -50), Max: Pt(150, 110)}
	_, changed, ok := ix.Update([]EnvDelta{{ID: 5, Env: giant, Has: true}})
	if !ok {
		t.Fatalf("giant-envelope update rejected")
	}
	if !changed {
		t.Fatalf("overflow change not reported")
	}
	if !slices.Contains(ix.Overflow(), 5) {
		t.Fatalf("id 5 not on overflow list: %v", ix.Overflow())
	}
	for c := 0; c < ix.cols*ix.rows; c++ {
		if slices.Contains(ix.bucketAt(c), 5) {
			t.Fatalf("id 5 still bucketed in cell %d after migrating to overflow", c)
		}
	}

	_, changed, ok = ix.Update([]EnvDelta{{ID: 5, Env: envs[5], Has: true}})
	if !ok || !changed {
		t.Fatalf("migration back rejected (ok=%v changed=%v)", ok, changed)
	}
	if slices.Contains(ix.Overflow(), 5) {
		t.Fatalf("id 5 still on overflow list after shrinking: %v", ix.Overflow())
	}
	sameBuckets(t, &ix, frozenFill(t, &ix), "after round trip")
}

// Build must invalidate every overlay in O(1): a patched index rebuilt over
// different envelopes shows no trace of the patches.
func TestBuildInvalidatesOverlays(t *testing.T) {
	envs := randEnvelopes(120, 21)
	var ix GridIndex
	buildOver(t, &ix, envs, 0)
	if _, _, ok := ix.Update([]EnvDelta{{ID: 3, Env: BBox{Min: Pt(0, 0), Max: Pt(2, 2)}, Has: true}}); !ok {
		t.Fatalf("small update rejected")
	}

	envs2 := randEnvelopes(80, 22)
	buildOver(t, &ix, envs2, 0)
	var fresh GridIndex
	buildOver(t, &fresh, envs2, 0)
	sameBuckets(t, &ix, frozenFill(t, &fresh), "rebuild after patches")
}
