package geo

import (
	"context"
	"math"
	"slices"
	"sync/atomic"

	"github.com/spatialcrowd/tamp/internal/par"
)

// GridIndex is a two-level cell-bucket spatial index over axis-aligned
// envelopes: each id is inserted into every grid cell its envelope overlaps,
// and a point query returns the ids bucketed in the cell containing the
// point. Callers pad envelopes by their query radius up front (a reach disk
// of radius r around a point set becomes the point bbox expanded by r), so
// Candidates is a single-cell lookup returning a superset of the ids whose
// padded envelope contains the query point — exact predicates filter the
// rest.
//
// The second level is the overflow list: envelopes whose half-extent is far
// above the batch's typical value (or that would cover an excessive number
// of cells) are kept off the grid entirely and returned by Overflow for
// every query. Without it, a handful of heavy-tailed detour envelopes would
// inflate the mean half-extent that picks the cell size, coarsening every
// bucket; with it, the grid is sized for the typical envelope and the few
// giants cost each query a short sorted-merge instead. Callers must
// consider Candidates ∪ Overflow the candidate set.
//
// The index is rebuilt per batch with Build, which reuses the receiver's
// internal slices: steady-state rebuilds do not grow allocations. Build fans
// out on the par pool but the resulting structure is bit-identical at every
// parallelism level (per-cell buckets are sorted ascending), so consumers
// that iterate candidates in bucket order stay deterministic.
//
// Between full Builds, Update patches the index in place from envelope
// deltas: only the cells the old and new envelopes cover are re-derived,
// into an epoch-versioned overlay (one epoch per Build; a Build invalidates
// every overlay in O(1) by bumping the epoch). Per-tick maintenance cost is
// therefore proportional to churn, not fleet size.
//
// A GridIndex is single-writer: Build and Update must not race with
// Candidates, but once built or patched, Candidates is safe for concurrent
// readers.
type GridIndex struct {
	bounds      BBox
	cell        float64
	cols, rows  int
	built       bool
	oversizeCut float64 // half-extent above which an envelope overflows (frozen per Build)

	n    int // ids tracked (grows via Update; reset by Build)
	envs []BBox
	has  []bool
	over []bool // id is on the overflow list, not the grid

	counts  []int32
	starts  []int32
	cursors []int32
	entries []int32

	overflow []int32 // sorted ids visible to every query

	// Epoch-versioned per-cell overlays written by Update: a cell whose
	// overlayVer matches the current epoch reads its bucket from the arena
	// instead of the base CSR. Build bumps the epoch, invalidating every
	// overlay at once without touching them.
	epoch      uint32
	overlayVer []uint32
	overlayOff []int32
	overlayLen []int32
	arena      []int32

	// Update scratch (see delta.go).
	touched   []int32
	cellStamp []uint32
	cellLocal []int32
	stampGen  uint32
	remStamp  []uint32
	remGen    uint32
	addCount  []int32
	addStart  []int32
	addList   []int32
	ovScratch []int32
}

// maxIndexCells caps the grid resolution so degenerate inputs (one huge
// envelope next to many tiny ones) cannot blow up rebuild cost or memory.
const maxIndexCells = 1 << 18

// overflowFactor is the half-extent multiple of the batch mean above which
// an envelope is routed to the overflow list instead of the grid.
const overflowFactor = 4.0

// maxCoverCells caps how many cells a single grid-resident envelope may
// occupy; wider envelopes overflow even when their half-extent passes the
// factor test (the geometry was chosen before per-envelope coverage is
// known, so this is the insertion-time backstop).
const maxCoverCells = 2048

// Build (re)constructs the index over n envelopes. envelope(i) returns the
// padded envelope of id i, or ok=false to leave i out of the index entirely
// (ids with no queryable extent). Envelopes with non-finite coordinates are
// skipped defensively — callers that need such ids visible must fall back to
// a full scan.
//
// On a ctx error the partially built index is marked invalid (every query
// returns nil) and the error is returned; the caller's plan is already being
// cancelled.
func (ix *GridIndex) Build(ctx context.Context, n, parallelism int, envelope func(i int) (BBox, bool)) error {
	ix.built = false
	ix.cols, ix.rows = 0, 0
	ix.epoch++ // lazily invalidates every overlay from the previous epoch
	ix.arena = ix.arena[:0]
	ix.overflow = ix.overflow[:0]
	ix.n = n
	ix.envs = growBBox(ix.envs, n)
	ix.has = growBool(ix.has, n)
	ix.over = growBool(ix.over, n)
	if n == 0 {
		ix.built = true
		return ctx.Err()
	}
	if err := par.ForEach(ctx, n, parallelism, func(i int) error {
		ix.envs[i], ix.has[i] = envelope(i)
		ix.over[i] = false
		return nil
	}); err != nil {
		return err
	}

	// Validation plus the mean half-extent, reduced sequentially in index
	// order so the grid geometry is parallelism-independent.
	var (
		sumHalf float64
		kept    int
	)
	for i := 0; i < n; i++ {
		if !ix.has[i] {
			continue
		}
		e := ix.envs[i]
		if !finiteBox(e) || e.Min.X > e.Max.X || e.Min.Y > e.Max.Y {
			ix.has[i] = false
			continue
		}
		sumHalf += halfExtent(e)
		kept++
	}
	if kept == 0 {
		// Nothing indexable: a valid, empty index (all queries miss).
		ix.built = true
		return ctx.Err()
	}

	// Oversize classification: the cut is a multiple of the all-envelope
	// mean, then bounds and the cell-size statistic are re-derived over the
	// grid-resident population only, so heavy-tailed envelopes stop
	// coarsening cell size for everyone.
	ix.oversizeCut = overflowFactor * (sumHalf / float64(kept))
	var (
		bounds   BBox
		any      bool
		sumGrid  float64
		keptGrid int
	)
	for i := 0; i < n; i++ {
		if !ix.has[i] || halfExtent(ix.envs[i]) > ix.oversizeCut {
			continue
		}
		e := ix.envs[i]
		if !any {
			bounds, any = e, true
		} else {
			bounds.Min.X = math.Min(bounds.Min.X, e.Min.X)
			bounds.Min.Y = math.Min(bounds.Min.Y, e.Min.Y)
			bounds.Max.X = math.Max(bounds.Max.X, e.Max.X)
			bounds.Max.Y = math.Max(bounds.Max.Y, e.Max.Y)
		}
		sumGrid += halfExtent(e)
		keptGrid++
	}
	if keptGrid == 0 {
		// Every envelope is oversize: a gridless index where the overflow
		// list is the whole candidate set.
		for i := 0; i < n; i++ {
			if ix.has[i] {
				ix.over[i] = true
				ix.overflow = append(ix.overflow, int32(i))
			}
		}
		ix.built = true
		return ctx.Err()
	}
	ix.bounds = bounds

	// Cell size: the mean grid-resident half-extent keeps the typical
	// envelope on ~3×3 cells (cheap insertion) while a query cell holds only
	// nearby ids. Resolution is clamped relative to the id count — finer
	// grids would spend more time zeroing buckets than they save on queries.
	w, h := bounds.Width(), bounds.Height()
	cell := sumGrid / float64(keptGrid)
	if cell <= 0 || math.IsNaN(cell) {
		cell = math.Max(math.Max(w, h), 1)
	}
	limit := 8 * keptGrid
	if limit < 64 {
		limit = 64
	}
	if limit > maxIndexCells {
		limit = maxIndexCells
	}
	cols := int(w/cell) + 1
	rows := int(h/cell) + 1
	if cols*rows > limit {
		scale := math.Sqrt(float64(cols*rows) / float64(limit))
		cell *= scale
		cols = int(w/cell) + 1
		rows = int(h/cell) + 1
		for cols*rows > limit { // float edge cases: coarsen until under
			cell *= 2
			cols = int(w/cell) + 1
			rows = int(h/cell) + 1
		}
	}
	ix.cell, ix.cols, ix.rows = cell, cols, rows

	if err := ix.fillFrozen(ctx, parallelism); err != nil {
		return err
	}
	ix.built = true
	return nil
}

// fillFrozen classifies overflow membership and fills the CSR buckets under
// the already-chosen grid geometry (bounds, cell, cols, rows, oversizeCut)
// from ix.envs/ix.has. Build calls it after geometry selection; the
// incremental-maintenance property tests call it directly on a clone with
// frozen geometry to prove Update-patched buckets match a from-scratch fill.
func (ix *GridIndex) fillFrozen(ctx context.Context, parallelism int) error {
	n := ix.n
	cols := ix.cols

	// Final overflow classification: the half-extent cut plus the
	// insertion-time coverage cap (computable only now that cell size is
	// fixed). Sequential, in id order, so the overflow list is sorted.
	ix.overflow = ix.overflow[:0]
	for i := 0; i < n; i++ {
		if !ix.has[i] {
			ix.over[i] = false
			continue
		}
		ix.over[i] = ix.oversized(ix.envs[i])
		if ix.over[i] {
			ix.overflow = append(ix.overflow, int32(i))
		}
	}

	// CSR fill: count per cell (atomic), prefix-sum, slot ids (atomic
	// cursors), then sort each bucket ascending so the structure — and every
	// iteration over it — is identical at any parallelism level.
	cells := ix.cols * ix.rows
	ix.counts = growInt32(ix.counts, cells)
	for i := range ix.counts {
		ix.counts[i] = 0
	}
	if err := par.ForEach(ctx, n, parallelism, func(i int) error {
		if !ix.has[i] || ix.over[i] {
			return nil
		}
		c0, r0, c1, r1 := ix.cellRange(ix.envs[i])
		for r := r0; r <= r1; r++ {
			base := r * cols
			for c := c0; c <= c1; c++ {
				atomic.AddInt32(&ix.counts[base+c], 1)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	ix.starts = growInt32(ix.starts, cells+1)
	var total int32
	for i := 0; i < cells; i++ {
		ix.starts[i] = total
		total += ix.counts[i]
	}
	ix.starts[cells] = total
	ix.cursors = growInt32(ix.cursors, cells)
	copy(ix.cursors, ix.starts[:cells])
	ix.entries = growInt32(ix.entries, int(total))
	if err := par.ForEach(ctx, n, parallelism, func(i int) error {
		if !ix.has[i] || ix.over[i] {
			return nil
		}
		c0, r0, c1, r1 := ix.cellRange(ix.envs[i])
		for r := r0; r <= r1; r++ {
			base := r * cols
			for c := c0; c <= c1; c++ {
				slot := atomic.AddInt32(&ix.cursors[base+c], 1) - 1
				ix.entries[slot] = int32(i)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := par.ForEach(ctx, cells, parallelism, func(c int) error {
		if b := ix.entries[ix.starts[c]:ix.starts[c+1]]; len(b) > 1 {
			slices.Sort(b)
		}
		return nil
	}); err != nil {
		return err
	}

	// Per-cell overlay bookkeeping for the Update path. Freshly covered
	// cells come from grow zeroed (epoch starts above zero), and stale
	// values from earlier epochs never match the current one.
	ix.overlayVer = growUint32(ix.overlayVer, cells)
	ix.overlayOff = growInt32(ix.overlayOff, cells)
	ix.overlayLen = growInt32(ix.overlayLen, cells)
	return nil
}

// oversized reports whether e belongs on the overflow list under the frozen
// geometry: its half-extent is far above the batch mean, or it would occupy
// more grid cells than the coverage cap allows.
func (ix *GridIndex) oversized(e BBox) bool {
	if halfExtent(e) > ix.oversizeCut {
		return true
	}
	if ix.cols == 0 {
		return false
	}
	c0, r0, c1, r1 := ix.cellRange(e)
	return (c1-c0+1)*(r1-r0+1) > maxCoverCells
}

func halfExtent(e BBox) float64 {
	return (e.Max.X - e.Min.X + e.Max.Y - e.Min.Y) / 4
}

// Candidates returns the ids whose envelope overlaps the cell containing p,
// in ascending id order. The result aliases the index's internal storage:
// it is valid until the next Build or Update and must not be mutated. It is
// a superset of the grid-resident ids whose envelope contains p; points
// outside the indexed bounds clamp to the nearest cell (any extra ids are
// filtered by the caller's exact predicate). Oversize ids are NOT included —
// callers must merge Overflow into every query's candidate set.
func (ix *GridIndex) Candidates(p Point) []int32 {
	c := ix.CellOf(p)
	if c < 0 {
		return nil
	}
	return ix.bucketAt(c)
}

// Overflow returns the ids held off the grid because their envelopes are
// oversize, in ascending id order; they are candidates for every query. The
// result aliases internal storage, valid until the next Build or Update.
func (ix *GridIndex) Overflow() []int32 {
	if !ix.built {
		return nil
	}
	return ix.overflow
}

// CellOf returns the grid cell index containing p (clamped to the grid), or
// -1 when the index is unbuilt, empty, or p has a NaN coordinate.
func (ix *GridIndex) CellOf(p Point) int {
	if !ix.built || ix.cols == 0 || math.IsNaN(p.X) || math.IsNaN(p.Y) {
		return -1
	}
	c := clampInt(int((p.X-ix.bounds.Min.X)/ix.cell), 0, ix.cols-1)
	r := clampInt(int((p.Y-ix.bounds.Min.Y)/ix.cell), 0, ix.rows-1)
	return r*ix.cols + c
}

// Bucket returns cell c's id bucket (ascending, read-only, valid until the
// next Build or Update). Out-of-range cells — including the -1 CellOf returns
// for NaN points or a gridless index — yield an empty bucket, so callers can
// chain CellOf straight into Bucket.
func (ix *GridIndex) Bucket(c int) []int32 {
	if !ix.built || c < 0 || c >= ix.cols*ix.rows {
		return nil
	}
	return ix.bucketAt(c)
}

// bucketAt resolves cell c's bucket through the overlay: a cell patched in
// the current epoch reads from the arena, everything else from the base CSR.
func (ix *GridIndex) bucketAt(c int) []int32 {
	if ix.overlayVer[c] == ix.epoch {
		off := ix.overlayOff[c]
		return ix.arena[off : off+ix.overlayLen[c]]
	}
	return ix.entries[ix.starts[c]:ix.starts[c+1]]
}

// Dims reports the grid resolution of the last Build (0×0 when empty).
func (ix *GridIndex) Dims() (cols, rows int) { return ix.cols, ix.rows }

// CellSize reports the cell edge length of the last Build.
func (ix *GridIndex) CellSize() float64 { return ix.cell }

// Entries reports the total number of (cell, id) slots in the base CSR,
// i.e. the index's memory footprint in bucket entries (overlay patches and
// the overflow list excluded).
func (ix *GridIndex) Entries() int {
	if !ix.built || ix.cols == 0 {
		return 0
	}
	return int(ix.starts[ix.cols*ix.rows])
}

// cellRange returns the inclusive cell-index rectangle covered by e, clamped
// to the grid. The same subtract-divide-truncate arithmetic as CellOf
// guarantees any point inside e queries a cell within this range.
func (ix *GridIndex) cellRange(e BBox) (c0, r0, c1, r1 int) {
	c0 = clampInt(int((e.Min.X-ix.bounds.Min.X)/ix.cell), 0, ix.cols-1)
	r0 = clampInt(int((e.Min.Y-ix.bounds.Min.Y)/ix.cell), 0, ix.rows-1)
	c1 = clampInt(int((e.Max.X-ix.bounds.Min.X)/ix.cell), 0, ix.cols-1)
	r1 = clampInt(int((e.Max.Y-ix.bounds.Min.Y)/ix.cell), 0, ix.rows-1)
	return c0, r0, c1, r1
}

func finiteBox(b BBox) bool {
	return finite(b.Min.X) && finite(b.Min.Y) && finite(b.Max.X) && finite(b.Max.Y)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func growBBox(s []BBox, n int) []BBox {
	if cap(s) < n {
		ns := make([]BBox, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		ns := make([]bool, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growUint32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		ns := make([]uint32, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}
