package geo

import (
	"context"
	"math"
	"slices"
	"sync/atomic"

	"github.com/spatialcrowd/tamp/internal/par"
)

// GridIndex is a uniform cell-bucket spatial index over axis-aligned
// envelopes: each id is inserted into every grid cell its envelope overlaps,
// and a point query returns the ids bucketed in the cell containing the
// point. Callers pad envelopes by their query radius up front (a reach disk
// of radius r around a point set becomes the point bbox expanded by r), so
// Candidates is a single-cell lookup returning a superset of the ids whose
// padded envelope contains the query point — exact predicates filter the
// rest.
//
// The index is rebuilt per batch with Build, which reuses the receiver's
// internal slices: steady-state rebuilds do not grow allocations. Build fans
// out on the par pool but the resulting structure is bit-identical at every
// parallelism level (per-cell buckets are sorted ascending), so consumers
// that iterate candidates in bucket order stay deterministic.
//
// A GridIndex is single-writer: Build must not race with Candidates, but
// once built, Candidates is safe for concurrent readers.
type GridIndex struct {
	bounds     BBox
	cell       float64
	cols, rows int
	built      bool

	envs    []BBox
	has     []bool
	counts  []int32
	starts  []int32
	cursors []int32
	entries []int32
}

// maxIndexCells caps the grid resolution so degenerate inputs (one huge
// envelope next to many tiny ones) cannot blow up rebuild cost or memory.
const maxIndexCells = 1 << 18

// Build (re)constructs the index over n envelopes. envelope(i) returns the
// padded envelope of id i, or ok=false to leave i out of the index entirely
// (ids with no queryable extent). Envelopes with non-finite coordinates are
// skipped defensively — callers that need such ids visible must fall back to
// a full scan.
//
// On a ctx error the partially built index is marked invalid (every query
// returns nil) and the error is returned; the caller's plan is already being
// cancelled.
func (ix *GridIndex) Build(ctx context.Context, n, parallelism int, envelope func(i int) (BBox, bool)) error {
	ix.built = false
	ix.cols, ix.rows = 0, 0
	ix.envs = growBBox(ix.envs, n)
	ix.has = growBool(ix.has, n)
	if n == 0 {
		ix.built = true
		return ctx.Err()
	}
	if err := par.ForEach(ctx, n, parallelism, func(i int) error {
		ix.envs[i], ix.has[i] = envelope(i)
		return nil
	}); err != nil {
		return err
	}

	// Bounds union and mean half-extent, reduced sequentially in index order
	// so the grid geometry is parallelism-independent.
	var (
		bounds  BBox
		any     bool
		sumHalf float64
		kept    int
	)
	for i := 0; i < n; i++ {
		if !ix.has[i] {
			continue
		}
		e := ix.envs[i]
		if !finiteBox(e) || e.Min.X > e.Max.X || e.Min.Y > e.Max.Y {
			ix.has[i] = false
			continue
		}
		if !any {
			bounds, any = e, true
		} else {
			bounds.Min.X = math.Min(bounds.Min.X, e.Min.X)
			bounds.Min.Y = math.Min(bounds.Min.Y, e.Min.Y)
			bounds.Max.X = math.Max(bounds.Max.X, e.Max.X)
			bounds.Max.Y = math.Max(bounds.Max.Y, e.Max.Y)
		}
		sumHalf += (e.Max.X - e.Min.X + e.Max.Y - e.Min.Y) / 4
		kept++
	}
	if !any {
		// Nothing indexable: a valid, empty index (all queries miss).
		ix.built = true
		return ctx.Err()
	}
	ix.bounds = bounds

	// Cell size: the mean envelope half-extent keeps the typical envelope on
	// ~3×3 cells (cheap insertion) while a query cell holds only nearby ids.
	// Resolution is clamped relative to the id count — finer grids would
	// spend more time zeroing buckets than they save on queries.
	w, h := bounds.Width(), bounds.Height()
	cell := sumHalf / float64(kept)
	if cell <= 0 || math.IsNaN(cell) {
		cell = math.Max(math.Max(w, h), 1)
	}
	limit := 8 * kept
	if limit < 64 {
		limit = 64
	}
	if limit > maxIndexCells {
		limit = maxIndexCells
	}
	cols := int(w/cell) + 1
	rows := int(h/cell) + 1
	if cols*rows > limit {
		scale := math.Sqrt(float64(cols*rows) / float64(limit))
		cell *= scale
		cols = int(w/cell) + 1
		rows = int(h/cell) + 1
		for cols*rows > limit { // float edge cases: coarsen until under
			cell *= 2
			cols = int(w/cell) + 1
			rows = int(h/cell) + 1
		}
	}
	ix.cell, ix.cols, ix.rows = cell, cols, rows
	cells := cols * rows

	// CSR fill: count per cell (atomic), prefix-sum, slot ids (atomic
	// cursors), then sort each bucket ascending so the structure — and every
	// iteration over it — is identical at any parallelism level.
	ix.counts = growInt32(ix.counts, cells)
	for i := range ix.counts {
		ix.counts[i] = 0
	}
	if err := par.ForEach(ctx, n, parallelism, func(i int) error {
		if !ix.has[i] {
			return nil
		}
		c0, r0, c1, r1 := ix.cellRange(ix.envs[i])
		for r := r0; r <= r1; r++ {
			base := r * cols
			for c := c0; c <= c1; c++ {
				atomic.AddInt32(&ix.counts[base+c], 1)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	ix.starts = growInt32(ix.starts, cells+1)
	var total int32
	for i := 0; i < cells; i++ {
		ix.starts[i] = total
		total += ix.counts[i]
	}
	ix.starts[cells] = total
	ix.cursors = growInt32(ix.cursors, cells)
	copy(ix.cursors, ix.starts[:cells])
	ix.entries = growInt32(ix.entries, int(total))
	if err := par.ForEach(ctx, n, parallelism, func(i int) error {
		if !ix.has[i] {
			return nil
		}
		c0, r0, c1, r1 := ix.cellRange(ix.envs[i])
		for r := r0; r <= r1; r++ {
			base := r * cols
			for c := c0; c <= c1; c++ {
				slot := atomic.AddInt32(&ix.cursors[base+c], 1) - 1
				ix.entries[slot] = int32(i)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := par.ForEach(ctx, cells, parallelism, func(c int) error {
		if b := ix.entries[ix.starts[c]:ix.starts[c+1]]; len(b) > 1 {
			slices.Sort(b)
		}
		return nil
	}); err != nil {
		return err
	}
	ix.built = true
	return nil
}

// Candidates returns the ids whose envelope overlaps the cell containing p,
// in ascending id order. The result aliases the index's internal storage:
// it is valid until the next Build and must not be mutated. It is a superset
// of the ids whose envelope contains p; points outside the indexed bounds
// clamp to the nearest cell (any extra ids are filtered by the caller's
// exact predicate).
func (ix *GridIndex) Candidates(p Point) []int32 {
	if !ix.built || ix.cols == 0 {
		return nil
	}
	c := clampInt(int((p.X-ix.bounds.Min.X)/ix.cell), 0, ix.cols-1)
	r := clampInt(int((p.Y-ix.bounds.Min.Y)/ix.cell), 0, ix.rows-1)
	i := r*ix.cols + c
	return ix.entries[ix.starts[i]:ix.starts[i+1]]
}

// Dims reports the grid resolution of the last Build (0×0 when empty).
func (ix *GridIndex) Dims() (cols, rows int) { return ix.cols, ix.rows }

// CellSize reports the cell edge length of the last Build.
func (ix *GridIndex) CellSize() float64 { return ix.cell }

// Entries reports the total number of (cell, id) slots, i.e. the index's
// memory footprint in bucket entries.
func (ix *GridIndex) Entries() int {
	if !ix.built || ix.cols == 0 {
		return 0
	}
	return int(ix.starts[ix.cols*ix.rows])
}

// cellRange returns the inclusive cell-index rectangle covered by e, clamped
// to the grid. The same subtract-divide-truncate arithmetic as Candidates
// guarantees any point inside e queries a cell within this range.
func (ix *GridIndex) cellRange(e BBox) (c0, r0, c1, r1 int) {
	c0 = clampInt(int((e.Min.X-ix.bounds.Min.X)/ix.cell), 0, ix.cols-1)
	r0 = clampInt(int((e.Min.Y-ix.bounds.Min.Y)/ix.cell), 0, ix.rows-1)
	c1 = clampInt(int((e.Max.X-ix.bounds.Min.X)/ix.cell), 0, ix.cols-1)
	r1 = clampInt(int((e.Max.Y-ix.bounds.Min.Y)/ix.cell), 0, ix.rows-1)
	return c0, r0, c1, r1
}

func finiteBox(b BBox) bool {
	return finite(b.Min.X) && finite(b.Min.Y) && finite(b.Max.X) && finite(b.Max.Y)
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func growBBox(s []BBox, n int) []BBox {
	if cap(s) < n {
		return make([]BBox, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
