package geo

import "slices"

// EnvDelta describes one id's new envelope state for GridIndex.Update:
// Has=true moves or adds the id with the given envelope, Has=false removes
// it from the index. Each id must appear at most once per Update call.
type EnvDelta struct {
	ID  int32
	Env BBox
	Has bool
}

// Patch thresholds: an Update that would touch more than half the grid, or
// grow the overlay arena past a small multiple of the base CSR, reports
// ok=false so the caller rebuilds — patching most of the index costs more
// than a fresh parallel Build, and the arena (which only grows between
// Builds) must stay bounded.
const arenaSlack = 4096

// Update patches the index in place from envelope deltas, under the grid
// geometry frozen by the last Build: only the cells covered by each delta's
// old and new envelopes are re-derived, into the current epoch's overlay,
// so the cost is proportional to churn rather than index size. The
// resulting buckets are exactly those a from-scratch fill of the updated
// envelope set under the same frozen geometry would produce (the
// incremental-maintenance property tests assert this), which keeps every
// downstream plan bit-identical to the rebuild path.
//
// It returns the sorted cell indexes whose buckets changed (aliasing
// internal scratch — valid until the next Update or Build), whether the
// overflow list changed, and ok. When ok=false the index was not modified
// in any way and the caller must fall back to Build: the delta set exceeded
// the patch thresholds, or the index is unbuilt/gridless. Deltas whose new
// envelope is oversize under the frozen geometry are routed to the overflow
// list, exactly as Build would.
//
// Update must not race with Candidates; like Build, it is a writer.
func (ix *GridIndex) Update(deltas []EnvDelta) (touched []int32, overflowChanged, ok bool) {
	if !ix.built || ix.cols == 0 {
		return nil, false, false
	}
	cells := ix.cols * ix.rows
	ix.cellStamp = growUint32(ix.cellStamp, cells)
	ix.cellLocal = growInt32Keep(ix.cellLocal, cells)

	// Pass 1 — classify every delta and count the distinct touched cells and
	// total bucket insertions, without mutating the index, so the fallback
	// decision can be taken before any damage is done. Stamps double as the
	// cell → local-slot map for the per-cell addition lists built below.
	ix.stampGen++
	ix.touched = ix.touched[:0]
	addTotal := 0
	maxID := -1
	for _, d := range deltas {
		id := int(d.ID)
		if id < 0 {
			return nil, false, false
		}
		if id > maxID {
			maxID = id
		}
		oldHas, oldOver := ix.idState(id)
		if oldHas && !oldOver {
			ix.stampEnvelope(ix.envs[id])
		}
		newHas, newOver := ix.classify(d)
		if newHas && !newOver {
			c0, r0, c1, r1 := ix.cellRange(d.Env)
			addTotal += (c1 - c0 + 1) * (r1 - r0 + 1)
			ix.stampEnvelope(d.Env)
		}
	}
	if 2*len(ix.touched) > cells {
		return nil, false, false
	}
	projected := len(ix.arena) + addTotal
	for _, c := range ix.touched {
		projected += len(ix.bucketAt(int(c)))
	}
	if projected > 4*len(ix.entries)+arenaSlack {
		return nil, false, false
	}

	// Pass 2 — apply. Grow the id-state arrays first (new ids may extend
	// them; the exposed gap must read as absent), then stamp every
	// grid-resident delta id for removal from its old buckets.
	if maxID >= ix.n {
		newN := maxID + 1
		ix.envs = growBBox(ix.envs, newN)
		ix.has = growBool(ix.has, newN)
		ix.over = growBool(ix.over, newN)
		for i := ix.n; i < newN; i++ {
			ix.has[i], ix.over[i] = false, false
		}
		ix.n = newN
	}
	ix.remStamp = growUint32(ix.remStamp, ix.n)
	ix.remGen++
	for _, d := range deltas {
		id := int(d.ID)
		if ix.has[id] && !ix.over[id] {
			ix.remStamp[id] = ix.remGen
		}
	}

	// Per-cell addition lists (CSR over the touched cells, via the stamp
	// map). Entry order within a cell follows delta order, but ids are
	// unique and every rebuilt bucket is sorted, so the result does not
	// depend on how the caller ordered the deltas.
	slices.Sort(ix.touched)
	for k, c := range ix.touched {
		ix.cellLocal[c] = int32(k)
	}
	nt := len(ix.touched)
	ix.addCount = growInt32(ix.addCount, nt)
	for i := range ix.addCount {
		ix.addCount[i] = 0
	}
	for _, d := range deltas {
		if newHas, newOver := ix.classify(d); !newHas || newOver {
			continue
		}
		c0, r0, c1, r1 := ix.cellRange(d.Env)
		for r := r0; r <= r1; r++ {
			base := r * ix.cols
			for c := c0; c <= c1; c++ {
				ix.addCount[ix.cellLocal[base+c]]++
			}
		}
	}
	ix.addStart = growInt32(ix.addStart, nt+1)
	var total int32
	for i := 0; i < nt; i++ {
		ix.addStart[i] = total
		total += ix.addCount[i]
		ix.addCount[i] = 0 // reused as the fill cursor
	}
	ix.addStart[nt] = total
	ix.addList = growInt32(ix.addList, int(total))
	for _, d := range deltas {
		if newHas, newOver := ix.classify(d); !newHas || newOver {
			continue
		}
		c0, r0, c1, r1 := ix.cellRange(d.Env)
		for r := r0; r <= r1; r++ {
			base := r * ix.cols
			for c := c0; c <= c1; c++ {
				k := ix.cellLocal[base+c]
				ix.addList[ix.addStart[k]+ix.addCount[k]] = d.ID
				ix.addCount[k]++
			}
		}
	}

	// Rebuild each touched cell into a fresh arena segment: survivors from
	// the current bucket (base or prior overlay) minus the removal-stamped
	// ids, merged with this cell's additions, ascending. Survivors are
	// already sorted, so only the (typically tiny) addition run needs a sort
	// before the linear merge; the two are disjoint because every
	// grid-resident delta id was removal-stamped above. Reading an old arena
	// segment while appending is safe — append never overwrites live prefix
	// data, and on reallocation the old backing array stays intact.
	for k, c := range ix.touched {
		adds := ix.addList[ix.addStart[k]:ix.addStart[k+1]]
		if len(adds) > 1 {
			slices.Sort(adds)
		}
		off := int32(len(ix.arena))
		ai := 0
		for _, id := range ix.bucketAt(int(c)) {
			if ix.remStamp[id] != ix.remGen {
				for ai < len(adds) && adds[ai] < id {
					ix.arena = append(ix.arena, adds[ai])
					ai++
				}
				ix.arena = append(ix.arena, id)
			}
		}
		ix.arena = append(ix.arena, adds[ai:]...)
		ix.overlayOff[c] = off
		ix.overlayLen[c] = int32(len(ix.arena)) - off
		ix.overlayVer[c] = ix.epoch
	}

	// Commit the per-id state and collect overflow membership changes.
	ovAdd := ix.ovScratch[:0]
	ovRemoved := false
	ix.remGen++ // reuse the stamp array for overflow-list removals
	for _, d := range deltas {
		id := int(d.ID)
		newHas, newOver := ix.classify(d)
		if ix.over[id] && !newOver {
			ix.remStamp[id] = ix.remGen
			ovRemoved = true
		} else if newOver && !ix.over[id] {
			ovAdd = append(ovAdd, d.ID)
		}
		ix.envs[id] = d.Env
		ix.has[id] = newHas
		ix.over[id] = newOver
	}
	overflowChanged = ovRemoved || len(ovAdd) > 0
	if overflowChanged {
		keep := ix.overflow[:0]
		for _, id := range ix.overflow {
			if ix.remStamp[id] != ix.remGen {
				keep = append(keep, id)
			}
		}
		ix.overflow = append(keep, ovAdd...)
		slices.Sort(ix.overflow)
	}
	ix.ovScratch = ovAdd[:0]
	return ix.touched, overflowChanged, true
}

// idState reports whether id is currently indexed and, if so, whether it
// lives on the overflow list; ids beyond the tracked range are absent.
func (ix *GridIndex) idState(id int) (has, over bool) {
	if id >= ix.n {
		return false, false
	}
	return ix.has[id], ix.over[id]
}

// classify normalizes a delta the way Build validates envelopes: non-finite
// or inverted boxes are treated as absent, and present envelopes are routed
// to the grid or the overflow list under the frozen geometry.
func (ix *GridIndex) classify(d EnvDelta) (has, over bool) {
	if !d.Has || !finiteBox(d.Env) || d.Env.Min.X > d.Env.Max.X || d.Env.Min.Y > d.Env.Max.Y {
		return false, false
	}
	return true, ix.oversized(d.Env)
}

// stampEnvelope marks every cell covered by e as touched in the current
// stamp generation, appending first-seen cells to ix.touched.
func (ix *GridIndex) stampEnvelope(e BBox) {
	c0, r0, c1, r1 := ix.cellRange(e)
	for r := r0; r <= r1; r++ {
		base := r * ix.cols
		for c := c0; c <= c1; c++ {
			if ix.cellStamp[base+c] != ix.stampGen {
				ix.cellStamp[base+c] = ix.stampGen
				ix.touched = append(ix.touched, int32(base+c))
			}
		}
	}
}

// growInt32Keep grows s to n preserving contents (unlike growInt32, whose
// callers always overwrite the slice).
func growInt32Keep(s []int32, n int) []int32 {
	if cap(s) < n {
		ns := make([]int32, n)
		copy(ns, s)
		return ns
	}
	return s[:n]
}
