package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-2, 0), Pt(2, 0), 4},
		{Pt(0, -1), Pt(0, 5), 6},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := tc.p.DistSq(tc.q); !almostEq(got, tc.want*tc.want, 1e-9) {
			t.Errorf("DistSq(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestPointDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.IsInf(d1, 1) && math.IsInf(d2, 1) {
			return true // overflow on extreme inputs; still symmetric
		}
		return almostEq(d1, d2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestPointVectorOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := q.Norm(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestKMConversionRoundTrip(t *testing.T) {
	f := func(km float64) bool {
		if math.IsNaN(km) || math.IsInf(km, 0) || math.Abs(km) > 1e300 {
			return true // km/CellKM would overflow
		}
		return almostEq(CellsToKM(KMToCells(km)), km, math.Abs(km)*1e-12+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxContains(t *testing.T) {
	b := BBox{Min: Pt(0, 0), Max: Pt(10, 5)}
	if !b.Contains(Pt(0, 0)) {
		t.Error("min corner should be contained")
	}
	if b.Contains(Pt(10, 5)) {
		t.Error("max corner should be excluded")
	}
	if !b.Contains(Pt(9.999, 4.999)) {
		t.Error("interior point should be contained")
	}
	if b.Contains(Pt(-0.001, 2)) {
		t.Error("outside point should be excluded")
	}
}

func TestBBoxClampAlwaysInside(t *testing.T) {
	b := BBox{Min: Pt(0, 0), Max: Pt(100, 50)}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		return b.Contains(b.Clamp(Pt(x, y)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxGeometry(t *testing.T) {
	b := BBox{Min: Pt(2, 3), Max: Pt(12, 7)}
	if b.Width() != 10 || b.Height() != 4 {
		t.Errorf("Width/Height = %v/%v", b.Width(), b.Height())
	}
	if b.Center() != Pt(7, 5) {
		t.Errorf("Center = %v", b.Center())
	}
}

func TestGridCellOf(t *testing.T) {
	g := DefaultGrid
	tests := []struct {
		p        Point
		col, row int
	}{
		{Pt(0, 0), 0, 0},
		{Pt(0.99, 0.99), 0, 0},
		{Pt(1, 1), 1, 1},
		{Pt(99.5, 49.5), 99, 49},
		{Pt(-5, -5), 0, 0},     // clamped
		{Pt(500, 500), 99, 49}, // clamped
	}
	for _, tc := range tests {
		col, row := g.CellOf(tc.p)
		if col != tc.col || row != tc.row {
			t.Errorf("CellOf(%v) = (%d,%d), want (%d,%d)", tc.p, col, row, tc.col, tc.row)
		}
	}
}

func TestGridCellIndexBijective(t *testing.T) {
	g := Grid{Cols: 7, Rows: 3}
	seen := map[int]bool{}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			idx := g.CellIndex(g.CellCenter(c, r))
			if seen[idx] {
				t.Fatalf("duplicate index %d for cell (%d,%d)", idx, c, r)
			}
			seen[idx] = true
			if idx < 0 || idx >= g.NumCells() {
				t.Fatalf("index %d out of range", idx)
			}
		}
	}
	if len(seen) != g.NumCells() {
		t.Errorf("got %d distinct indexes, want %d", len(seen), g.NumCells())
	}
}

func TestGridBounds(t *testing.T) {
	b := DefaultGrid.Bounds()
	if b.Width() != 100 || b.Height() != 50 {
		t.Errorf("bounds = %v", b)
	}
}

func TestPOITypeString(t *testing.T) {
	for ty := POIType(0); ty < NumPOITypes; ty++ {
		if s := ty.String(); s == "" || s[0] == 'p' && s != "poi" && len(s) > 3 && s[:4] == "poi(" {
			t.Errorf("POIType(%d) has fallback string %q", ty, s)
		}
	}
	if s := POIType(99).String(); s != "poi(99)" {
		t.Errorf("unknown POI type string = %q", s)
	}
}

func TestDensityIndexCounts(t *testing.T) {
	g := Grid{Cols: 20, Rows: 20}
	d := NewDensityIndex(g)
	// Ten tasks in cell (5,5), one far away.
	for i := 0; i < 10; i++ {
		d.Add(Pt(5.5, 5.5))
	}
	d.Add(Pt(18.5, 18.5))
	if d.Total() != 11 {
		t.Fatalf("Total = %d", d.Total())
	}
	if got := d.CountWithin(Pt(5.5, 5.5), 1); got != 10 {
		t.Errorf("CountWithin near cluster = %d, want 10", got)
	}
	if got := d.CountWithin(Pt(5.5, 5.5), 30); got != 11 {
		t.Errorf("CountWithin whole grid = %d, want 11", got)
	}
	if got := d.CountWithin(Pt(0.5, 18.5), 1); got != 0 {
		t.Errorf("CountWithin empty corner = %d, want 0", got)
	}
}

func TestDensityIndexZeroRadius(t *testing.T) {
	d := NewDensityIndex(Grid{Cols: 4, Rows: 4})
	d.Add(Pt(1.5, 1.5))
	if got := d.CountWithin(Pt(1.5, 1.5), 0); got != 0 {
		t.Errorf("zero radius count = %d", got)
	}
}

func TestDensityIndexDensity(t *testing.T) {
	g := Grid{Cols: 10, Rows: 10}
	d := NewDensityIndex(g)
	if rho := d.Density(2); rho != 1 {
		t.Errorf("empty density = %v, want floor 1", rho)
	}
	for i := 0; i < 1000; i++ {
		d.Add(Pt(float64(i%10)+0.5, float64(i/10%10)+0.5))
	}
	want := 1000 * math.Pi * 4 / 100
	if rho := d.Density(2); !almostEq(rho, want, 1e-9) {
		t.Errorf("density = %v, want %v", rho, want)
	}
}

func TestDensityIndexMonotoneInRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := Grid{Cols: 30, Rows: 30}
	d := NewDensityIndex(g)
	for i := 0; i < 500; i++ {
		d.Add(Pt(rng.Float64()*30, rng.Float64()*30))
	}
	q := Pt(15, 15)
	prev := 0
	for r := 1.0; r <= 20; r++ {
		n := d.CountWithin(q, r)
		if n < prev {
			t.Fatalf("count not monotone: r=%v n=%d prev=%d", r, n, prev)
		}
		prev = n
	}
}
