// Package geo provides the spatial primitives used throughout TAMP:
// points, distances, bounding boxes, the discrete city grid the paper maps
// trajectories onto, and points of interest (POIs) used by the spatial
// similarity kernel.
//
// All coordinates are expressed in grid cells. The paper divides the city
// into a 100×50 grid; one cell corresponds to CellKM kilometres, so
// kilometre-denominated quantities such as a worker's detour budget convert
// via KMToCells / CellsToKM.
package geo

import (
	"fmt"
	"math"
)

// CellKM is the physical edge length of one grid cell in kilometres.
// With the default 100×50 grid this makes the city 20 km × 10 km, roughly
// the extent of the Porto metropolitan area used in the paper.
const CellKM = 0.2

// Point is a location in continuous grid coordinates.
type Point struct {
	X float64 // longitude axis, in cells
	Y float64 // latitude axis, in cells
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q in cells.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Norm returns the Euclidean norm of p treated as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// KMToCells converts a kilometre distance to grid cells.
func KMToCells(km float64) float64 { return km / CellKM }

// CellsToKM converts a grid-cell distance to kilometres.
func CellsToKM(cells float64) float64 { return cells * CellKM }

// BBox is an axis-aligned bounding box, inclusive of Min, exclusive of Max.
type BBox struct {
	Min, Max Point
}

// Contains reports whether p lies inside b.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X < b.Max.X && p.Y >= b.Min.Y && p.Y < b.Max.Y
}

// Clamp returns p restricted to the interior of b.
func (b BBox) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, b.Min.X), math.Nextafter(b.Max.X, b.Min.X)),
		Y: math.Min(math.Max(p.Y, b.Min.Y), math.Nextafter(b.Max.Y, b.Min.Y)),
	}
}

// Width returns the horizontal extent of b in cells.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of b in cells.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the midpoint of b.
func (b BBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

// Grid is the discrete city grid. The paper's experiments divide the area
// into 100×50 cells indexed as (latitude_i, longitude_i); here cells are
// indexed (col, row) with col in [0, Cols) and row in [0, Rows).
type Grid struct {
	Cols, Rows int
}

// DefaultGrid is the 100×50 grid used in the paper's experiments.
var DefaultGrid = Grid{Cols: 100, Rows: 50}

// Bounds returns the bounding box covered by g in cell coordinates.
func (g Grid) Bounds() BBox {
	return BBox{Min: Point{0, 0}, Max: Point{float64(g.Cols), float64(g.Rows)}}
}

// CellOf returns the (col, row) index of the cell containing p,
// clamped to the grid.
func (g Grid) CellOf(p Point) (col, row int) {
	col = clampInt(int(math.Floor(p.X)), 0, g.Cols-1)
	row = clampInt(int(math.Floor(p.Y)), 0, g.Rows-1)
	return col, row
}

// CellIndex returns a single flattened index for the cell containing p.
func (g Grid) CellIndex(p Point) int {
	col, row := g.CellOf(p)
	return row*g.Cols + col
}

// NumCells returns the total number of cells in the grid.
func (g Grid) NumCells() int { return g.Cols * g.Rows }

// CellCenter returns the centre point of cell (col, row).
func (g Grid) CellCenter(col, row int) Point {
	return Point{float64(col) + 0.5, float64(row) + 0.5}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// POIType classifies a point of interest. The spatial similarity kernel
// (Eq. 1) treats POIs of different types as less similar.
type POIType int

// POI categories available in the synthetic city maps.
const (
	POIResidential POIType = iota
	POIBusiness
	POIRetail
	POIRestaurant
	POITransport
	POILeisure
	NumPOITypes // number of categories; keep last
)

// String implements fmt.Stringer.
func (t POIType) String() string {
	switch t {
	case POIResidential:
		return "residential"
	case POIBusiness:
		return "business"
	case POIRetail:
		return "retail"
	case POIRestaurant:
		return "restaurant"
	case POITransport:
		return "transport"
	case POILeisure:
		return "leisure"
	default:
		return fmt.Sprintf("poi(%d)", int(t))
	}
}

// POI is a typed point of interest, the v = ⟨x, y, a⟩ tuple of §III-B.
type POI struct {
	Loc  Point
	Type POIType
}
