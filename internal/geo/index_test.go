package geo

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func randEnvelopes(n int, seed int64) []BBox {
	rng := rand.New(rand.NewSource(seed))
	envs := make([]BBox, n)
	for i := range envs {
		x, y := rng.Float64()*100, rng.Float64()*60
		rx, ry := rng.Float64()*4, rng.Float64()*4
		envs[i] = BBox{Min: Pt(x-rx, y-ry), Max: Pt(x+rx, y+ry)}
	}
	return envs
}

func buildOver(t *testing.T, ix *GridIndex, envs []BBox, parallelism int) {
	t.Helper()
	err := ix.Build(context.Background(), len(envs), parallelism, func(i int) (BBox, bool) {
		return envs[i], true
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
}

// Candidates must contain every id whose envelope contains the query point
// (it may contain more — the caller's exact predicate filters those).
func TestGridIndexSupersetProperty(t *testing.T) {
	envs := randEnvelopes(300, 1)
	var ix GridIndex
	buildOver(t, &ix, envs, 0)
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 1000; q++ {
		p := Pt(rng.Float64()*110-5, rng.Float64()*70-5)
		got := ix.Candidates(p)
		for i, e := range envs {
			if p.X < e.Min.X || p.X > e.Max.X || p.Y < e.Min.Y || p.Y > e.Max.Y {
				continue
			}
			found := false
			for _, id := range got {
				if int(id) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("query %v: envelope %d (%v) contains the point but is missing from candidates", p, i, e)
			}
		}
	}
}

func TestGridIndexCandidatesAscending(t *testing.T) {
	envs := randEnvelopes(200, 3)
	var ix GridIndex
	buildOver(t, &ix, envs, 0)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 200; q++ {
		p := Pt(rng.Float64()*100, rng.Float64()*60)
		got := ix.Candidates(p)
		for k := 1; k < len(got); k++ {
			if got[k-1] >= got[k] {
				t.Fatalf("bucket for %v not strictly ascending: %v", p, got)
			}
		}
	}
}

// The structure — not just query answers — must be identical at every
// parallelism level, because assignment plans iterate buckets in order.
func TestGridIndexParallelismIndependent(t *testing.T) {
	envs := randEnvelopes(500, 5)
	var seq, par8 GridIndex
	buildOver(t, &seq, envs, 1)
	buildOver(t, &par8, envs, 8)
	if seq.cols != par8.cols || seq.rows != par8.rows || seq.cell != par8.cell {
		t.Fatalf("geometry differs: %dx%d cell %v vs %dx%d cell %v",
			seq.cols, seq.rows, seq.cell, par8.cols, par8.rows, par8.cell)
	}
	if !reflect.DeepEqual(seq.starts[:seq.cols*seq.rows+1], par8.starts[:par8.cols*par8.rows+1]) {
		t.Fatal("cell starts differ between parallelism 1 and 8")
	}
	if !reflect.DeepEqual(seq.entries[:seq.Entries()], par8.entries[:par8.Entries()]) {
		t.Fatal("entries differ between parallelism 1 and 8")
	}
}

func TestGridIndexEmptyAndSkipped(t *testing.T) {
	var ix GridIndex
	if err := ix.Build(context.Background(), 0, 0, func(int) (BBox, bool) { return BBox{}, true }); err != nil {
		t.Fatalf("empty Build: %v", err)
	}
	if got := ix.Candidates(Pt(1, 1)); len(got) != 0 {
		t.Fatalf("empty index returned candidates %v", got)
	}
	// All ids skipped: also a valid empty index.
	if err := ix.Build(context.Background(), 10, 0, func(int) (BBox, bool) { return BBox{}, false }); err != nil {
		t.Fatalf("all-skipped Build: %v", err)
	}
	if got := ix.Candidates(Pt(0, 0)); len(got) != 0 {
		t.Fatalf("all-skipped index returned candidates %v", got)
	}
}

func TestGridIndexNonFiniteEnvelopesSkipped(t *testing.T) {
	inf := math.Inf(1)
	envs := []BBox{
		{Min: Pt(0, 0), Max: Pt(1, 1)},
		{Min: Pt(math.NaN(), 0), Max: Pt(1, 1)},
		{Min: Pt(0, 0), Max: Pt(inf, 1)},
		{Min: Pt(2, 2), Max: Pt(3, 3)},
	}
	// Repeat builds to cover scratch reuse across shapes.
	var ix GridIndex
	for round := 0; round < 3; round++ {
		buildOver(t, &ix, envs, 0)
		for _, id := range ix.Candidates(Pt(0.5, 0.5)) {
			if id == 1 || id == 2 {
				t.Fatalf("non-finite envelope %d leaked into the index", id)
			}
		}
		got := ix.Candidates(Pt(0.5, 0.5))
		if len(got) == 0 || got[0] != 0 {
			t.Fatalf("finite envelope 0 missing from its own cell: %v", got)
		}
	}
}

func TestGridIndexCancelledBuildInvalidates(t *testing.T) {
	envs := randEnvelopes(100, 7)
	var ix GridIndex
	buildOver(t, &ix, envs, 0)
	if len(ix.Candidates(Pt(50, 30))) == 0 && ix.Entries() == 0 {
		t.Fatal("expected a populated index before cancellation")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	err := ix.Build(cancelled, len(envs), 0, func(i int) (BBox, bool) { return envs[i], true })
	if err == nil {
		t.Fatal("Build on a cancelled ctx should report the ctx error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := ix.Candidates(Pt(50, 30)); got != nil {
		t.Fatalf("cancelled build left a queryable index: %v", got)
	}
}

// Rebuilding over progressively smaller inputs must not leak stale entries
// from earlier, larger builds.
func TestGridIndexRebuildShrinks(t *testing.T) {
	var ix GridIndex
	for _, n := range []int{400, 50, 17} {
		envs := randEnvelopes(n, int64(n))
		buildOver(t, &ix, envs, 4)
		rng := rand.New(rand.NewSource(int64(n) + 1))
		for q := 0; q < 100; q++ {
			p := Pt(rng.Float64()*100, rng.Float64()*60)
			for _, id := range ix.Candidates(p) {
				if int(id) >= n {
					t.Fatalf("n=%d: stale id %d from a previous build", n, id)
				}
			}
		}
	}
}
