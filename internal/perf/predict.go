package perf

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/spatialcrowd/tamp/internal/assign"
	"github.com/spatialcrowd/tamp/internal/dataset"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/nn"
	"github.com/spatialcrowd/tamp/internal/platform"
	"github.com/spatialcrowd/tamp/internal/predict"
	"github.com/spatialcrowd/tamp/internal/traj"
)

const predictNote = "Prediction-engine costs (forecast cache, batched kernels, allocation-free rollouts); baseline is the replaced path (recompute-every-call forecasts, per-sample streamed gradients), measured interleaved with the current side so each ratio compares adjacent observations. Batched-vs-streamed gradient headroom is bounded by the sigmoid/tanh share of step time (~half), which both paths pay identically; batching removes most of the remaining weight-streaming half."

const (
	predictHorizon = 8
	predictBatch   = 16
)

// predictModel builds the benchmark predictor at the production shape
// (hidden 16, SeqIn 5 — the internal/nn benchmark workload).
func predictModel(seed int64) *predict.WorkerModel {
	return &predict.WorkerModel{
		WorkerID: 1,
		Model:    nn.NewSeq2Seq(predict.InputDims, 2, 16, rand.New(rand.NewSource(seed))),
		Norm:     traj.Normalizer{CenterX: 50, CenterY: 50, Scale: 50},
		SeqIn:    5,
		SeqOut:   1,
	}
}

func predictTrace(seed int64, n int) []geo.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geo.Point, n)
	x, y := rng.Float64()*100, rng.Float64()*100
	for i := range out {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		out[i] = geo.Pt(x, y)
	}
	return out
}

func uniformBatch(seed int64, n int) []nn.Sample {
	rng := rand.New(rand.NewSource(seed))
	batch := make([]nn.Sample, n)
	for i := range batch {
		batch[i] = randSample(rng, predict.InputDims, 2, 5, 1)
	}
	return batch
}

// stationaryWorkload is the end-to-end benchmark scenario: the
// check-in-style workload (long dwells) with every test-day fix snapped to
// a 1-cell grid, the way quantized GPS reports repeat bit-for-bit while a
// worker idles at a POI. Built once — training dominates setup — and shared
// by the cached and uncached measurements, which is safe because simulation
// never mutates the models.
var stationaryOnce struct {
	sync.Once
	w      *dataset.Workload
	models map[int]*predict.WorkerModel
	err    error
}

func stationaryWorkload() (*dataset.Workload, map[int]*predict.WorkerModel, error) {
	o := &stationaryOnce
	o.Do(func() {
		p := dataset.Defaults(dataset.Workload2)
		p.NumWorkers = 16
		p.NewWorkers = 0
		p.TrainDays = 2
		p.TestDays = 1
		p.TicksPerDay = 80
		p.NumTestTasks = 200
		p.NumPOIs = 60
		o.w = dataset.Generate(p)
		for wi := range o.w.Workers {
			for di := range o.w.Workers[wi].TestDays {
				pts := o.w.Workers[wi].TestDays[di].Points
				for i, q := range pts {
					pts[i] = geo.Pt(math.Round(q.X), math.Round(q.Y))
				}
			}
		}
		var res *predict.Result
		res, o.err = predict.Train(context.Background(), o.w,
			predict.Options{SeqIn: 5, SeqOut: 1, Hidden: 8, MetaIters: 6, Seed: 2})
		if o.err == nil {
			o.models = res.Models
		}
	})
	return o.w, o.models, o.err
}

func measureSimulate(name string, disableCache bool) (Result, error) {
	w, models, err := stationaryWorkload()
	if err != nil {
		return Result{}, err
	}
	run := platform.Run{
		Workload: w, Models: models,
		Assigner:             assign.PPI{A: predict.DefaultMatchRadius},
		DisableForecastCache: disableCache,
	}
	if !disableCache {
		// Long-lived cache, the server pattern: steady-state iterations run
		// warm instead of re-paying the first pass's misses every time.
		run.Forecasts = predict.NewForecastCache(0)
	}
	r := measure(name, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := run.Simulate(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, nil
}

// predictSpec pairs one benchmark's production path with the path the
// engine replaced. Keeping both closures in one spec lets the fresh-file
// writer measure them adjacent in time, so neighbor noise — which drifts
// over seconds on shared machines — hits both sides of the speedup ratio
// roughly equally instead of poisoning one.
type predictSpec struct {
	name    string
	current func(b *testing.B)
	oracle  func(b *testing.B)
}

// predictSpecs builds the micro-benchmark suite (everything except the
// end-to-end simulate pair, which needs the trained workload).
//
// The oracle sides are the replaced paths: the allocating PredictFuture for
// the Into variant, recompute-every-tick for the cache hit, and the
// per-sample streamed gradient loop — the exact fallback BatchGrad still
// takes for ragged batches, which the repo's equivalence tests hold
// bit-identical to the batched kernels.
func predictSpecs() []predictSpec {
	wm := predictModel(1)
	trace := predictTrace(1, 32)
	at := geo.Pt(42, 17)
	still := []geo.Point{at, at, at, at, at}
	lstm := nn.NewSeq2Seq(predict.InputDims, 2, 16, rand.New(rand.NewSource(1)))
	gru := nn.NewGRUSeq2Seq(predict.InputDims, 2, 16, rand.New(rand.NewSource(1)))
	batch := uniformBatch(3, predictBatch)

	cache := predict.NewForecastCache(0)
	cache.Forecast(wm, still, predictHorizon) // warm: the steady-state hit is what serving pays

	streamed := func(m interface {
		Grad([][]float64, [][]float64, nn.Loss, nn.Vector) float64
	}, grad nn.Vector) {
		grad.Zero()
		for i := range batch {
			m.Grad(batch[i].In, batch[i].Out, nn.MSE{}, grad)
		}
		grad.Scale(1 / float64(len(batch)))
	}

	return []predictSpec{
		{
			name: "PredictFuture",
			current: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					wm.PredictFuture(trace, predictHorizon)
				}
			},
			oracle: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					wm.PredictFuture(trace, predictHorizon)
				}
			},
		},
		{
			name: "PredictFutureInto",
			current: func(b *testing.B) {
				dst := make([]geo.Point, 0, predictHorizon)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dst = wm.PredictFutureInto(dst[:0], trace, predictHorizon)
				}
			},
			oracle: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					wm.PredictFuture(trace, predictHorizon)
				}
			},
		},
		{
			name: "ForecastCacheHit",
			current: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cache.Forecast(wm, still, predictHorizon)
				}
			},
			oracle: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					wm.PredictFuture(still, predictHorizon)
				}
			},
		},
		{
			name: "BatchGradLSTM_B16",
			current: func(b *testing.B) {
				grad := nn.NewVector(lstm.NumParams())
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					lstm.BatchGrad(batch, nn.MSE{}, grad)
				}
			},
			oracle: func(b *testing.B) {
				grad := nn.NewVector(lstm.NumParams())
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					streamed(lstm, grad)
				}
			},
		},
		{
			name: "BatchGradGRU_B16",
			current: func(b *testing.B) {
				grad := nn.NewVector(gru.NumParams())
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					gru.BatchGrad(batch, nn.MSE{}, grad)
				}
			},
			oracle: func(b *testing.B) {
				grad := nn.NewVector(gru.NumParams())
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					streamed(gru, grad)
				}
			},
		},
	}
}

// RunPredict executes the prediction-engine suite on the production path:
// memoized forecasts, the allocation-free rollout, and the batched GEMM
// kernels.
func RunPredict() ([]Result, error) {
	var results []Result
	for _, sp := range predictSpecs() {
		results = append(results, measure(sp.name, sp.current))
	}
	sim, err := measureSimulate("SimulateStationary", false)
	if err != nil {
		return nil, err
	}
	return append(results, sim), nil
}

// RunPredictOracle executes the same suite along the paths the engine
// replaced — recompute-every-call forecasts and per-sample streamed
// gradients — producing the Baseline of a fresh BENCH_predict.json, so the
// speedup the cache and the batched kernels buy is pinned in the artifact.
func RunPredictOracle() ([]Result, error) {
	var results []Result
	for _, sp := range predictSpecs() {
		results = append(results, measure(sp.name, sp.oracle))
	}
	sim, err := measureSimulate("SimulateStationary", true)
	if err != nil {
		return nil, err
	}
	return append(results, sim), nil
}

// WritePredictJSON measures the production suite and writes path in the
// BENCH_nn.json schema. An existing file keeps its Baseline (and Note); a
// fresh file additionally runs the replaced-path oracle and records it as
// the Baseline — measured interleaved with the production side, each pair
// back to back, so the recorded speedups are ratios between adjacent
// observations rather than between two distant noise regimes.
func WritePredictJSON(path string) (File, error) {
	if prev, err := LoadFile(path); err == nil && len(prev.Baseline) > 0 {
		cur, err := RunPredict()
		if err != nil {
			return File{}, err
		}
		return WritePredictJSONWith(path, cur)
	}
	var base, cur []Result
	for _, sp := range predictSpecs() {
		base = append(base, measure(sp.name, sp.oracle))
		cur = append(cur, measure(sp.name, sp.current))
	}
	ob, err := measureSimulate("SimulateStationary", true)
	if err != nil {
		return File{}, err
	}
	oc, err := measureSimulate("SimulateStationary", false)
	if err != nil {
		return File{}, err
	}
	f := File{
		Note:     predictNote,
		GoOS:     runtime.GOOS,
		GoArch:   runtime.GOARCH,
		Baseline: append(base, ob),
		Current:  append(cur, oc),
	}
	return f, writeFile(path, f)
}

// WritePredictJSONWith is WritePredictJSON for an already-measured run, so
// one suite execution can feed both the regression check and the artifact.
func WritePredictJSONWith(path string, cur []Result) (File, error) {
	f := File{
		Note:   predictNote,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
	}
	if prev, err := LoadFile(path); err == nil && len(prev.Baseline) > 0 {
		f.Baseline = prev.Baseline
		if prev.Note != "" {
			f.Note = prev.Note
		}
	}
	if f.Baseline == nil {
		oracle, err := RunPredictOracle()
		if err != nil {
			return File{}, err
		}
		f.Baseline = oracle
	}
	f.Current = cur
	return f, writeFile(path, f)
}
