package perf

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"github.com/spatialcrowd/tamp/internal/assign"
)

// assignScales mirrors the BenchmarkAssignPPI/BenchmarkAssignKM sub-benchmark
// shapes (internal/assign/bench_test.go): square batches whose area grows
// with the worker count, so spatial density stays constant and the indexed
// path's advantage over the all-pairs scan is what the numbers show.
var assignScales = []struct {
	name   string
	nT, nW int
}{
	{"500x500", 500, 500},
	{"2000x2000", 2000, 2000},
	{"5000x5000", 5000, 5000},
}

const assignNote = "Batch assignment costs (spatial index + sparse KM); baseline is the brute-force all-pairs scan the index replaced — compare current against it."

func measureAssign(name string, a assign.Assigner, nT, nW int) Result {
	tasks, workers := assign.ScaleScenario(nT, nW, 7)
	ctx := assign.WithWorkspace(context.Background(), assign.NewWorkspace())
	return measure(name, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			assign.Do(ctx, a, tasks, workers, 0)
		}
	})
}

// RunAssign executes the assignment benchmark suite on the indexed
// (production) path: PPI and plain KM at each scale.
func RunAssign() []Result {
	return runAssign(false)
}

// measureAssignIncremental times one steady-state Session tick at the given
// churn percentage. The session and churner live outside the measure closure,
// so testing.Benchmark's b.N escalations keep driving the same warmed session
// rather than rebuilding it; the timer excludes the churn generation itself,
// matching BenchmarkAssignIncremental.
func measureAssignIncremental(name string, nT, nW, churnPct int) Result {
	tasks, workers := assign.ScaleScenario(nT, nW, 7)
	s := assign.NewSession(assign.PPI{A: 0.5})
	for i := range workers {
		s.UpsertWorker(workers[i])
	}
	for i := range tasks {
		s.UpsertTask(tasks[i])
	}
	ctx := context.Background()
	s.Assign(ctx, 0) // cold tick: build index, caches, checkpoints
	ch := assign.NewChurner(99, s)
	frac := float64(churnPct) / 100
	return measure(name, func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ch.Tick(s, frac)
			b.StartTimer()
			s.Assign(ctx, 0)
		}
	})
}

// RunAssignIncremental benchmarks the incremental Session at each scale and
// churn level. With big set it appends one 100000x100000 low-churn datapoint
// — artifact runs only; the regression guard tolerates names present on one
// side, so CI never pays for it.
func RunAssignIncremental(churns []int, big bool) []Result {
	if len(churns) == 0 {
		churns = []int{0, 1, 10}
	}
	var results []Result
	for _, s := range assignScales {
		for _, churn := range churns {
			results = append(results, measureAssignIncremental(
				fmt.Sprintf("AssignIncremental_%s_churn%d", s.name, churn), s.nT, s.nW, churn))
		}
	}
	if big {
		results = append(results, measureAssignIncremental(
			"AssignIncremental_100000x100000_churn1", 100000, 100000, 1))
	}
	return results
}

// RunAssignOracle executes the same suite with BruteForce set — the
// all-pairs scan the repo's equivalence tests hold up as the oracle. It
// seeds the Baseline of a fresh BENCH_assign.json so the committed file
// records indexed-vs-brute, not indexed-vs-indexed.
func RunAssignOracle() []Result {
	return runAssign(true)
}

func runAssign(brute bool) []Result {
	var results []Result
	for _, s := range assignScales {
		results = append(results,
			measureAssign(fmt.Sprintf("AssignPPI_%s", s.name), assign.PPI{A: 0.5, BruteForce: brute}, s.nT, s.nW),
			measureAssign(fmt.Sprintf("AssignKM_%s", s.name), assign.KM{BruteForce: brute}, s.nT, s.nW),
		)
	}
	return results
}

// WriteAssignJSON measures the indexed suite and writes path in the same
// schema as BENCH_nn.json. An existing file keeps its Baseline (and Note);
// a fresh file additionally runs the brute-force oracle and records it as
// the Baseline, so the speedup the index buys is pinned in the artifact.
func WriteAssignJSON(path string) (File, error) {
	return WriteAssignJSONWith(path, RunAssign())
}

// WriteAssignJSONWith is WriteAssignJSON for an already-measured run, so one
// suite execution can feed both the regression check and the artifact file.
func WriteAssignJSONWith(path string, cur []Result) (File, error) {
	f := File{
		Note:   assignNote,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
	}
	if prev, err := LoadFile(path); err == nil && len(prev.Baseline) > 0 {
		f.Baseline = prev.Baseline
		if prev.Note != "" {
			f.Note = prev.Note
		}
	}
	if f.Baseline == nil {
		f.Baseline = RunAssignOracle()
	}
	f.Current = cur
	return f, writeFile(path, f)
}
