package perf

import (
	"strings"
	"testing"
)

func baseFile() File {
	return File{Baseline: []Result{
		{Name: "Seq2SeqPredict", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "AdamStep", NsPerOp: 500, AllocsPerOp: 0},
	}}
}

func TestCheckWithinTolerancePasses(t *testing.T) {
	cur := []Result{
		{Name: "Seq2SeqPredict", NsPerOp: 1200, AllocsPerOp: 0}, // +20% < 25%
		{Name: "AdamStep", NsPerOp: 400, AllocsPerOp: 0},
	}
	report, ok := CheckAgainst(baseFile(), cur, 0.25)
	if !ok {
		t.Fatalf("expected pass, got failure:\n%s", report)
	}
}

func TestCheckTimeRegressionFails(t *testing.T) {
	cur := []Result{
		{Name: "Seq2SeqPredict", NsPerOp: 1300, AllocsPerOp: 0}, // +30% > 25%
		{Name: "AdamStep", NsPerOp: 500, AllocsPerOp: 0},
	}
	report, ok := CheckAgainst(baseFile(), cur, 0.25)
	if ok {
		t.Fatal("expected time regression to fail the check")
	}
	if !strings.Contains(report, "REGRESSION: ns/op") {
		t.Fatalf("report missing ns/op verdict:\n%s", report)
	}
}

func TestCheckAllocRegressionFailsRegardlessOfTolerance(t *testing.T) {
	cur := []Result{
		{Name: "Seq2SeqPredict", NsPerOp: 900, AllocsPerOp: 1},
		{Name: "AdamStep", NsPerOp: 500, AllocsPerOp: 0},
	}
	report, ok := CheckAgainst(baseFile(), cur, 10)
	if ok {
		t.Fatal("expected alloc regression to fail the check")
	}
	if !strings.Contains(report, "REGRESSION: allocs/op 1 > 0") {
		t.Fatalf("report missing allocs verdict:\n%s", report)
	}
}

func TestCheckNewBenchmarkDoesNotFail(t *testing.T) {
	cur := []Result{
		{Name: "Seq2SeqPredict", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "AdamStep", NsPerOp: 500, AllocsPerOp: 0},
		{Name: "BrandNewKernel", NsPerOp: 9999, AllocsPerOp: 7},
	}
	report, ok := CheckAgainst(baseFile(), cur, 0.25)
	if !ok {
		t.Fatalf("a benchmark without a baseline must not fail the check:\n%s", report)
	}
	if !strings.Contains(report, "new (no baseline)") {
		t.Fatalf("report missing new-benchmark note:\n%s", report)
	}
}
