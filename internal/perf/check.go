package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// LoadFile reads a BENCH_nn.json written by WriteJSON.
func LoadFile(path string) (File, error) {
	var f File
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return f, nil
}

// CheckAgainst compares a fresh run against the committed baseline: a
// benchmark regresses when its ns/op exceeds baseline·(1+tolerance) or its
// allocs/op grew at all (the alloc-free contract is exact, not statistical).
// Benchmarks present on only one side are reported but never fail the
// check, so adding a kernel doesn't break CI until its baseline lands.
// The report is meant for humans; ok gates the process exit code.
func CheckAgainst(f File, cur []Result, tolerance float64) (report string, ok bool) {
	base := map[string]Result{}
	for _, r := range f.Baseline {
		base[r.Name] = r
	}
	ok = true
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s %12s %12s  verdict\n",
		"benchmark", "base ns/op", "now ns/op", "ratio", "base allocs", "now allocs")
	for _, r := range cur {
		bl, have := base[r.Name]
		if !have {
			fmt.Fprintf(&b, "%-20s %14s %14.0f %8s %12s %12d  new (no baseline)\n",
				r.Name, "-", r.NsPerOp, "-", "-", r.AllocsPerOp)
			continue
		}
		delete(base, r.Name)
		ratio := r.NsPerOp / bl.NsPerOp
		verdict := "ok"
		if r.NsPerOp > bl.NsPerOp*(1+tolerance) {
			verdict = fmt.Sprintf("REGRESSION: ns/op +%.0f%% > +%.0f%% tolerance", (ratio-1)*100, tolerance*100)
			ok = false
		}
		if r.AllocsPerOp > bl.AllocsPerOp {
			verdict = fmt.Sprintf("REGRESSION: allocs/op %d > %d", r.AllocsPerOp, bl.AllocsPerOp)
			ok = false
		}
		fmt.Fprintf(&b, "%-20s %14.0f %14.0f %7.2fx %12d %12d  %s\n",
			r.Name, bl.NsPerOp, r.NsPerOp, ratio, bl.AllocsPerOp, r.AllocsPerOp, verdict)
	}
	for name := range base {
		fmt.Fprintf(&b, "%-20s  baseline only — not run\n", name)
	}
	return b.String(), ok
}
