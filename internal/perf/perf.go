// Package perf is the benchmark-gated performance harness for the NN hot
// path: it runs the kernel benchmarks programmatically (testing.Benchmark),
// records ns/op and allocs/op, and persists them to a JSON file that keeps
// the first recorded run as the regression baseline. `make bench` refreshes
// the file; reviewers diff Current against Baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/spatialcrowd/tamp/internal/nn"
)

// Result is one benchmark's measured cost.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the on-disk schema of BENCH_nn.json. Baseline is written once —
// the first time the file is created — and preserved by later runs, so the
// delta from the pre-workspace kernels stays visible in the repo.
type File struct {
	Note     string   `json:"note"`
	GoOS     string   `json:"goos"`
	GoArch   string   `json:"goarch"`
	Baseline []Result `json:"baseline"`
	Current  []Result `json:"current"`
}

func randSample(rng *rand.Rand, inDim, outDim, seqIn, seqOut int) nn.Sample {
	var s nn.Sample
	for i := 0; i < seqIn; i++ {
		row := make([]float64, inDim)
		for d := range row {
			row[d] = rng.NormFloat64() * 0.5
		}
		s.In = append(s.In, row)
	}
	for i := 0; i < seqOut; i++ {
		row := make([]float64, outDim)
		for d := range row {
			row[d] = rng.NormFloat64() * 0.5
		}
		s.Out = append(s.Out, row)
	}
	return s
}

// measureRounds is how many times measure re-runs each benchmark. The
// minimum over rounds is kept: scheduler and neighbor noise only ever adds
// time, so the smallest observation is the closest to the true cost and is
// far more stable run-to-run than any single observation.
const measureRounds = 5

func measure(name string, f func(b *testing.B)) Result {
	best := testing.Benchmark(f)
	bestNs := float64(best.T.Nanoseconds()) / float64(best.N)
	for i := 1; i < measureRounds; i++ {
		r := testing.Benchmark(f)
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < bestNs {
			best, bestNs = r, ns
		}
	}
	return Result{
		Name:        name,
		NsPerOp:     bestNs,
		AllocsPerOp: best.AllocsPerOp(),
		BytesPerOp:  best.AllocedBytesPerOp(),
	}
}

// Run executes the hot-path benchmark suite: Predict and Grad for both
// architectures, plus the Adam step. The workloads mirror the
// internal/nn benchmarks (hidden 16, seqIn 5, seqOut 1).
func Run() []Result {
	newSample := func() nn.Sample {
		return randSample(rand.New(rand.NewSource(1)), 4, 2, 5, 1)
	}
	lstm := nn.NewSeq2Seq(4, 2, 16, rand.New(rand.NewSource(1)))
	gru := nn.NewGRUSeq2Seq(4, 2, 16, rand.New(rand.NewSource(1)))
	s := newSample()

	results := []Result{
		measure("Seq2SeqPredict", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lstm.Predict(s.In, 1)
			}
		}),
		measure("Seq2SeqGrad", func(b *testing.B) {
			grad := nn.NewVector(lstm.NumParams())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				grad.Zero()
				lstm.Grad(s.In, s.Out, nn.MSE{}, grad)
			}
		}),
		measure("GRUSeq2SeqPredict", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gru.Predict(s.In, 1)
			}
		}),
		measure("GRUSeq2SeqGrad", func(b *testing.B) {
			grad := nn.NewVector(gru.NumParams())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				grad.Zero()
				gru.Grad(s.In, s.Out, nn.MSE{}, grad)
			}
		}),
		measure("AdamStep", func(b *testing.B) {
			w := nn.RandomVector(4096, 0.1, rand.New(rand.NewSource(1)))
			g := nn.RandomVector(4096, 0.1, rand.New(rand.NewSource(2)))
			opt := nn.NewAdam(0.001)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt.Step(w, g)
			}
		}),
	}
	return results
}

// WriteJSON runs the suite and writes path, preserving an existing file's
// Baseline (and Note); a fresh file records the run as both baseline and
// current.
func WriteJSON(path string) (File, error) {
	return WriteJSONWith(path, Run())
}

// WriteJSONWith is WriteJSON for an already-measured run, so one suite
// execution can feed both the regression check and the artifact file.
func WriteJSONWith(path string, cur []Result) (File, error) {
	f := File{
		Note:   "NN hot-path kernel costs; baseline is preserved across runs — compare current against it.",
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
	}
	if raw, err := os.ReadFile(path); err == nil {
		var prev File
		if err := json.Unmarshal(raw, &prev); err == nil && len(prev.Baseline) > 0 {
			f.Baseline = prev.Baseline
			if prev.Note != "" {
				f.Note = prev.Note
			}
		}
	}
	if f.Baseline == nil {
		f.Baseline = cur
	}
	f.Current = cur
	return f, writeFile(path, f)
}

// writeFile persists a bench File as indented JSON with a trailing newline,
// the format both BENCH_nn.json and BENCH_assign.json are committed in.
func writeFile(path string, f File) error {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}

// Format renders the file as an aligned before/after table.
func Format(f File) string {
	base := map[string]Result{}
	for _, r := range f.Baseline {
		base[r.Name] = r
	}
	s := fmt.Sprintf("%-20s %14s %14s %12s %12s\n", "benchmark", "base ns/op", "now ns/op", "base allocs", "now allocs")
	for _, r := range f.Current {
		b, ok := base[r.Name]
		if !ok {
			b = r
		}
		s += fmt.Sprintf("%-20s %14.0f %14.0f %12d %12d\n",
			r.Name, b.NsPerOp, r.NsPerOp, b.AllocsPerOp, r.AllocsPerOp)
	}
	return s
}
