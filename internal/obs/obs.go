// Package obs is the repo's dependency-free observability core: a
// concurrent-safe registry of counters, gauges, and fixed-bucket histograms;
// lightweight hierarchical phase spans that ride the context.Context already
// threaded through the pipeline (see span.go); and a Prometheus-text-format
// exporter (see expo.go).
//
// Design constraints, in order:
//
//   - Updating a metric handle is lock-free (a single atomic op, zero
//     allocations), so instrumentation can sit on per-batch and per-iteration
//     paths without moving the benchmarks. Handle *lookup* takes the registry
//     lock and allocates the series key — resolve handles once, outside hot
//     loops.
//   - The registry clock is injectable (SetClock), so span timings and the
//     exporter output are deterministic under test.
//   - No dependencies beyond the standard library: obs sits below every other
//     internal package (nn, assign, platform, server all may import it).
//
// The NN kernel hot path (Predict/Grad/Adam.Step) is deliberately left
// uninstrumented: it is gated at 0 allocs/op and sub-microsecond latencies
// where even a time.Now pair is visible. Stage-level timings (meta
// iterations, optimizer steps, assignment batches) capture its cost in
// aggregate instead.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing int64. The zero value is ready to
// use; handles obtained from a Registry are shared and safe for concurrent
// update.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d via a CAS loop, so concurrent Adds never lose updates.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets (Prometheus
// semantics: bucket le=b counts observations ≤ b; an implicit +Inf bucket
// catches the rest). Observe is a binary search plus two atomic ops.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefSecondsBuckets spans the latencies this codebase actually produces:
// sub-microsecond kernel steps up through minute-scale training phases.
var DefSecondsBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60,
}

// DefRequestBuckets resolves the millisecond band where HTTP request
// latencies live — the serving tier (router hops, shard round-trips, load
// generator percentiles) needs finer steps there than DefSecondsBuckets and
// nothing above a few seconds.
var DefRequestBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// metric kinds, also the TYPE strings of the Prometheus exposition.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family groups every series sharing one metric name (they must share a
// kind, and for histograms, bucket bounds).
type family struct {
	name   string
	kind   string
	help   string
	bounds []float64      // histograms only
	series map[string]any // rendered label block → *Counter / *Gauge / *Histogram
}

// Registry is a concurrent-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry.
type Registry struct {
	clock atomic.Pointer[func() time.Time]

	mu       sync.Mutex
	families map[string]*family

	// phase memoizes the per-path PhaseMetric series: spans close on
	// per-batch paths, where the general lookup (label-key building under
	// mu) would rival the measured work.
	phaseMu sync.RWMutex
	phase   map[string]*Histogram

	memoMu sync.RWMutex
	memo   map[string]any
}

// NewRegistry returns an empty registry running on the real clock.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		phase:    map[string]*Histogram{},
		memo:     map[string]any{},
	}
}

// Default is the process-wide fallback registry used when no registry is
// attached to the context (see WithRegistry).
var Default = NewRegistry()

// SetClock replaces the registry's time source — spans and timed helpers
// read through it, so tests inject a deterministic clock here.
func (r *Registry) SetClock(now func() time.Time) { r.clock.Store(&now) }

// Now returns the registry's current time (the injected clock when set).
func (r *Registry) Now() time.Time {
	if f := r.clock.Load(); f != nil {
		return (*f)()
	}
	return time.Now()
}

// Counter returns the counter series for name+labels, creating it on first
// use. It panics if name is already registered with a different kind —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return getOrCreate(r, name, kindCounter, nil, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return getOrCreate(r, name, kindGauge, nil, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for name+labels, creating it on
// first use with the given ascending bucket upper bounds. Later calls for an
// existing series ignore bounds (the family's first registration wins).
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	return getOrCreate(r, name, kindHistogram, bounds, labels, func() any {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Int64, len(bounds)+1)
		return h
	}).(*Histogram)
}

// Memo returns the registry-scoped value under key, building it on first
// use. It exists for call sites that receive the registry once per call
// (e.g. per assignment batch) but want to resolve a bundle of labelled
// handles only once per registry: a memo hit is a read-lock and a map
// lookup, no allocation. Concurrent first calls may run build more than
// once; one result wins and handle construction is idempotent, so that is
// benign.
func (r *Registry) Memo(key string, build func(*Registry) any) any {
	r.memoMu.RLock()
	v, ok := r.memo[key]
	r.memoMu.RUnlock()
	if ok {
		return v
	}
	built := build(r)
	r.memoMu.Lock()
	if v, ok = r.memo[key]; !ok {
		r.memo[key] = built
		v = built
	}
	r.memoMu.Unlock()
	return v
}

// phaseHistogram is the span-close fast path: Histogram(PhaseMetric, ...)
// for the given path, memoized per path.
func (r *Registry) phaseHistogram(path string) *Histogram {
	r.phaseMu.RLock()
	h := r.phase[path]
	r.phaseMu.RUnlock()
	if h != nil {
		return h
	}
	h = r.Histogram(PhaseMetric, DefSecondsBuckets, L("phase", path))
	r.phaseMu.Lock()
	r.phase[path] = h
	r.phaseMu.Unlock()
	return h
}

// SetHelp attaches a HELP line to a metric family (created lazily if the
// family does not exist yet the help is remembered once it does).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

func getOrCreate(r *Registry, name, kind string, bounds []float64, labels []Label, make_ func() any) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if kind == kindHistogram && !sort.Float64sAreSorted(bounds) {
			panic(fmt.Sprintf("obs: histogram %q bucket bounds not ascending", name))
		}
		f = &family{
			name: name, kind: kind, bounds: bounds,
			series: map[string]any{},
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	m, ok := f.series[key]
	if !ok {
		if kind == kindHistogram {
			// All series of one histogram family share the family's bounds so
			// the exposition stays well-formed.
			h := &Histogram{bounds: f.bounds}
			h.counts = make([]atomic.Int64, len(f.bounds)+1)
			m = h
		} else {
			m = make_()
		}
		f.series[key] = m
	}
	return m
}

// labelKey renders labels sorted by key into the canonical
// {k1="v1",k2="v2"} block ("" for no labels), which doubles as the series
// map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
