package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic time source: every Now() call advances it by
// a fixed step, so span durations are exact functions of the call sequence.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{t: time.Unix(0, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// TestSpanNestingAndTiming drives nested spans on an injected clock and
// checks both the hierarchical paths and the exact recorded durations.
func TestSpanNestingAndTiming(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock(time.Second)
	r.SetClock(clock.Now)
	ctx := WithRegistry(context.Background(), r)

	// Clock sequence (1s per Now call):
	//   t=1 train start, t=2 meta start, t=3 meta end, t=4 train end.
	trainCtx, endTrain := Span(ctx, "train")
	if got := CurrentPhase(trainCtx); got != "train" {
		t.Fatalf("phase = %q, want train", got)
	}
	metaCtx, endMeta := Span(trainCtx, "meta")
	if got := CurrentPhase(metaCtx); got != "train/meta" {
		t.Fatalf("phase = %q, want train/meta", got)
	}
	endMeta()
	endTrain()

	meta := r.Histogram(PhaseMetric, DefSecondsBuckets, L("phase", "train/meta"))
	if meta.Count() != 1 || meta.Sum() != 1 {
		t.Fatalf("train/meta: count=%d sum=%v, want 1 and 1s", meta.Count(), meta.Sum())
	}
	train := r.Histogram(PhaseMetric, DefSecondsBuckets, L("phase", "train"))
	if train.Count() != 1 || train.Sum() != 3 {
		t.Fatalf("train: count=%d sum=%v, want 1 and 3s", train.Count(), train.Sum())
	}
}

// TestSpanSiblingsShareParentPath: two children of the same span land in
// distinct series under the same parent prefix.
func TestSpanSiblingsShareParentPath(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock(time.Millisecond)
	r.SetClock(clock.Now)
	ctx := WithRegistry(context.Background(), r)

	simCtx, endSim := Span(ctx, "sim")
	Time(simCtx, "assign", func() {})
	Time(simCtx, "adapt", func() {})
	endSim()

	for _, phase := range []string{"sim", "sim/assign", "sim/adapt"} {
		h := r.Histogram(PhaseMetric, DefSecondsBuckets, L("phase", phase))
		if h.Count() != 1 {
			t.Fatalf("phase %q count = %d, want 1", phase, h.Count())
		}
	}
}

// TestSpanUsesContextRegistry: spans must record into the registry attached
// to the context, not the process Default.
func TestSpanUsesContextRegistry(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock(time.Second)
	r.SetClock(clock.Now)
	before := Default.Dump()

	ctx := WithRegistry(context.Background(), r)
	_, end := Span(ctx, "isolated")
	end()

	h := r.Histogram(PhaseMetric, DefSecondsBuckets, L("phase", "isolated"))
	if h.Count() != 1 {
		t.Fatalf("isolated span not recorded in ctx registry")
	}
	if after := Default.Dump(); after != before {
		t.Fatal("span leaked into Default registry")
	}
}

// TestRegistryFromFallsBackToDefault pins the contract instrumentation
// sites rely on: a bare context resolves to the Default registry.
func TestRegistryFromFallsBackToDefault(t *testing.T) {
	if RegistryFrom(context.Background()) != Default {
		t.Fatal("bare context should resolve to Default")
	}
	r := NewRegistry()
	if RegistryFrom(WithRegistry(context.Background(), r)) != r {
		t.Fatal("attached registry not resolved")
	}
}
