package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter handle from many goroutines;
// under -race this doubles as the data-race check for the lock-free update
// path.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestGaugeAddConcurrent checks the CAS loop loses no updates.
func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

// TestHistogramConcurrent checks bucket counts, total count, and sum under
// concurrent observation.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5) // ≤ 1 bucket
				h.Observe(3)   // ≤ 4 bucket
				h.Observe(100) // +Inf bucket
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != int64(workers*per*3) {
		t.Fatalf("count = %d, want %d", got, workers*per*3)
	}
	if got, want := h.Sum(), float64(workers*per)*(0.5+3+100); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	n := int64(workers * per)
	for i, want := range []int64{n, 0, n, n} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

// TestHistogramBucketEdges pins the ≤ (le) bucket semantics: a value equal
// to a bound lands in that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edges", []float64{1, 2})
	h.Observe(1) // exactly on the first bound
	h.Observe(2) // exactly on the second
	h.Observe(2.1)
	for i, want := range []int64{1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d = %d, want %d", i, got, want)
		}
	}
}

// TestSameSeriesSharedHandle verifies that identical (name, labels) requests
// return the same underlying metric regardless of label order.
func TestSameSeriesSharedHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("same series should share one handle")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared handle out of sync: %d", b.Value())
	}
	if c := r.Counter("x_total", L("a", "1"), L("b", "3")); c == a {
		t.Fatal("different labels must be a different series")
	}
}

// TestKindMismatchPanics: re-registering a name under another kind is a
// programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected panic on kind mismatch")
		}
		if !strings.Contains(rec.(string), "registered as counter") {
			t.Fatalf("unexpected panic message: %v", rec)
		}
	}()
	r.Gauge("m")
}

// TestConcurrentGetOrCreate races many goroutines resolving the same and
// distinct series; every same-series handle must converge.
func TestConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total").Inc()
				r.Histogram("lat", DefSecondsBuckets, L("w", string(rune('a'+w%4)))).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 16*200 {
		t.Fatalf("shared_total = %d, want %d", got, 16*200)
	}
}

func TestMemoBuildsOnceAndShares(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	results := make([]any, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Memo("bundle", func(r *Registry) any {
				return r.Counter("memo_total")
			})
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("Memo returned different values for the same key")
		}
	}
	// Distinct registries must not share memo entries.
	r2 := NewRegistry()
	if r2.Memo("bundle", func(r *Registry) any { return r.Counter("memo_total") }) == results[0] {
		t.Fatal("Memo leaked across registries")
	}
}
