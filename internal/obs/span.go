package obs

import (
	"context"
	"time"
)

// PhaseMetric is the histogram family every finished span records into; the
// span's hierarchical path becomes the series' phase label.
const PhaseMetric = "tamp_phase_seconds"

type registryKey struct{}
type spanKey struct{}

// WithRegistry attaches a registry to the context. Every instrumentation
// site in the pipeline resolves its registry through RegistryFrom, so one
// WithRegistry at the top of a run routes all of its metrics — counters,
// histograms, and spans — to that registry.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFrom returns the registry attached to ctx, or Default when none
// (or a nil registry) was attached. It never returns nil.
func RegistryFrom(ctx context.Context) *Registry {
	if r, ok := ctx.Value(registryKey{}).(*Registry); ok && r != nil {
		return r
	}
	return Default
}

// span is one in-flight phase measurement. Spans nest through the context:
// a child's path is parent-path + "/" + name, so the recorded series form a
// wall-time hierarchy ("predict.train/meta.train", "sim/assign.ppi", ...).
type span struct {
	path  string
	start time.Time
	reg   *Registry
}

// Span starts a phase measurement named name under ctx's current span (if
// any) and returns the child context plus an end function. Calling end
// records the elapsed wall time into the PhaseMetric histogram of ctx's
// registry, labelled with the span's hierarchical path. end is safe to call
// exactly once, typically via defer:
//
//	ctx, end := obs.Span(ctx, "meta.train")
//	defer end()
//
// Span names must come from a bounded set (phase names, not per-item IDs) —
// each distinct path creates one histogram series.
func Span(ctx context.Context, name string) (context.Context, func()) {
	reg := RegistryFrom(ctx)
	path := name
	if parent, ok := ctx.Value(spanKey{}).(*span); ok {
		path = parent.path + "/" + name
	}
	s := &span{path: path, start: reg.Now(), reg: reg}
	return context.WithValue(ctx, spanKey{}, s), func() {
		d := reg.Now().Sub(s.start).Seconds()
		reg.phaseHistogram(s.path).Observe(d)
	}
}

// CurrentPhase returns the hierarchical path of ctx's innermost span, or ""
// outside any span. Used by tests and debug logging.
func CurrentPhase(ctx context.Context) string {
	if s, ok := ctx.Value(spanKey{}).(*span); ok {
		return s.path
	}
	return ""
}

// Time measures one function call as a leaf span (the returned context of
// Span is discarded — fn cannot start children). Convenience for phases
// that are a single call.
func Time(ctx context.Context, name string, fn func()) {
	_, end := Span(ctx, name)
	fn()
	end()
}
