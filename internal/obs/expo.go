package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// famSnapshot is one family captured under the registry lock; metric values
// are still read atomically at render time.
type famSnapshot struct {
	name, kind, help string
	keys             []string
	series           []any
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// sorted by label block, so the output is deterministic — the golden tests
// and `tampsim -metrics` both rely on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	snaps := make([]famSnapshot, 0, len(r.families))
	for name, f := range r.families {
		s := famSnapshot{name: name, kind: f.kind, help: f.help}
		s.keys = make([]string, 0, len(f.series))
		for k := range f.series {
			s.keys = append(s.keys, k)
		}
		sort.Strings(s.keys)
		s.series = make([]any, len(s.keys))
		for i, k := range s.keys {
			s.series[i] = f.series[k]
		}
		snaps = append(snaps, s)
	}
	r.mu.Unlock()
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].name < snaps[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range snaps {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')
		for i, k := range f.keys {
			switch m := f.series[i].(type) {
			case *Counter:
				bw.WriteString(f.name)
				bw.WriteString(k)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(m.Value(), 10))
				bw.WriteByte('\n')
			case *Gauge:
				bw.WriteString(f.name)
				bw.WriteString(k)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(m.Value()))
				bw.WriteByte('\n')
			case *Histogram:
				writeHistogram(bw, f.name, k, m)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets, then
// _sum and _count.
func writeHistogram(bw *bufio.Writer, name, labelBlock string, h *Histogram) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(bw, name, labelBlock, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	writeBucket(bw, name, labelBlock, "+Inf", cum)

	bw.WriteString(name)
	bw.WriteString("_sum")
	bw.WriteString(labelBlock)
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(h.Sum()))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	bw.WriteString(labelBlock)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(h.Count(), 10))
	bw.WriteByte('\n')
}

// writeBucket emits one `name_bucket{...,le="bound"} cum` line, splicing le
// into an existing label block when the series already has labels.
func writeBucket(bw *bufio.Writer, name, labelBlock, le string, cum int64) {
	bw.WriteString(name)
	bw.WriteString("_bucket")
	if labelBlock == "" {
		bw.WriteString(`{le="`)
		bw.WriteString(le)
		bw.WriteString(`"}`)
	} else {
		bw.WriteString(strings.TrimSuffix(labelBlock, "}"))
		bw.WriteString(`,le="`)
		bw.WriteString(le)
		bw.WriteString(`"}`)
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// Dump returns the full Prometheus text exposition as a string — the
// end-of-run summary printed by `tampsim -metrics` and `tampbench -metrics`.
func (r *Registry) Dump() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns the GET /metrics endpoint serving the registry in
// Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
