package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the full text exposition for a registry holding
// every metric kind, label shapes included. Any format drift — ordering,
// float rendering, bucket cumulation — fails here before a scraper sees it.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	clock := newFakeClock(250 * time.Millisecond)
	r.SetClock(clock.Now)

	r.Counter("tamp_sim_offers_total").Add(42)
	r.Counter("tamp_faults_total", L("kind", "dropped_report")).Add(3)
	r.Counter("tamp_faults_total", L("kind", "offline_tick")).Add(7)
	r.SetHelp("tamp_faults_total", "Degraded-mode events absorbed by the platform.")
	r.Gauge("tamp_pred_mr").Set(0.8125)

	h := r.Histogram("tamp_batch_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(50)

	// One span on the injected clock: starts at t=250ms, ends at t=500ms.
	ctx := WithRegistry(context.Background(), r)
	_, end := Span(ctx, "sim")
	end()

	want := strings.Join([]string{
		`# TYPE tamp_batch_seconds histogram`,
		`tamp_batch_seconds_bucket{le="0.01"} 1`,
		`tamp_batch_seconds_bucket{le="0.1"} 3`,
		`tamp_batch_seconds_bucket{le="1"} 3`,
		`tamp_batch_seconds_bucket{le="+Inf"} 4`,
		`tamp_batch_seconds_sum 50.105`,
		`tamp_batch_seconds_count 4`,
		`# HELP tamp_faults_total Degraded-mode events absorbed by the platform.`,
		`# TYPE tamp_faults_total counter`,
		`tamp_faults_total{kind="dropped_report"} 3`,
		`tamp_faults_total{kind="offline_tick"} 7`,
		`# TYPE tamp_phase_seconds histogram`,
		`tamp_phase_seconds_bucket{phase="sim",le="1e-06"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="1e-05"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="0.0001"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="0.001"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="0.01"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="0.05"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="0.1"} 0`,
		`tamp_phase_seconds_bucket{phase="sim",le="0.5"} 1`,
		`tamp_phase_seconds_bucket{phase="sim",le="1"} 1`,
		`tamp_phase_seconds_bucket{phase="sim",le="5"} 1`,
		`tamp_phase_seconds_bucket{phase="sim",le="15"} 1`,
		`tamp_phase_seconds_bucket{phase="sim",le="60"} 1`,
		`tamp_phase_seconds_bucket{phase="sim",le="+Inf"} 1`,
		`tamp_phase_seconds_sum{phase="sim"} 0.25`,
		`tamp_phase_seconds_count{phase="sim"} 1`,
		`# TYPE tamp_pred_mr gauge`,
		`tamp_pred_mr 0.8125`,
		`# TYPE tamp_sim_offers_total counter`,
		`tamp_sim_offers_total 42`,
	}, "\n") + "\n"

	if got := r.Dump(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHandler serves the registry over HTTP and checks content type and a
// counter line round-trip.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("body missing counter: %s", body)
	}

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/metrics", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", resp2.StatusCode)
	}
}

// TestLabelEscaping: label values with quotes, backslashes, and newlines
// must render escaped per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", L("v", "a\"b\\c\nd")).Inc()
	got := r.Dump()
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(got, want) {
		t.Fatalf("escaping wrong:\n%s", got)
	}
}
