package meta

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/spatialcrowd/tamp/internal/ckpt"
	"github.com/spatialcrowd/tamp/internal/cluster"
	"github.com/spatialcrowd/tamp/internal/nn"
	"github.com/spatialcrowd/tamp/internal/sim"
)

// runCkptGTTAML runs one GTTAML training with a fixed workload and seed.
// dir != "" enables checkpointing; interruptAfter > 0 cancels the run's
// context right after that many snapshots have been written (an exact
// checkpoint boundary).
func runCkptGTTAML(t *testing.T, dir string, interruptAfter int) (*Trained, error) {
	t.Helper()
	tasks := makeTasks(10, rand.New(rand.NewSource(5)))
	src := ckpt.NewSource(11)
	rng := rand.New(src)
	cfg := DefaultConfig(rng)
	cfg.Hidden = 6
	cfg.MetaIters = 10
	cfg.TaskBatch = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if dir != "" {
		saves := 0
		cfg.Checkpoint = &CheckpointConfig{
			Dir: dir, Every: 3, Source: src,
			OnCheckpoint: func(string, int) {
				saves++
				if interruptAfter > 0 && saves == interruptAfter {
					cancel()
				}
			},
			OnError: func(scope string, err error) { t.Errorf("checkpoint %s: %v", scope, err) },
		}
	}
	ccfg := cluster.Config{
		K: 2, Gamma: 0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.9},
		UseGame:    true,
		Rng:        rng,
	}
	return TrainGTTAML(ctx, tasks, cfg, ccfg)
}

// fingerprint flattens every trained initialization in the tree plus the
// reported loss and one adapted worker model into a single vector for exact
// comparison.
func fingerprint(tr *Trained) nn.Vector {
	var out nn.Vector
	tr.Tree.PostOrder(func(n *cluster.TreeNode) { out = append(out, n.Theta...) })
	out = append(out, tr.MeanLoss)
	out = append(out, tr.AdaptedModelRNG(0, rand.New(rand.NewSource(9))).Weights()...)
	return out
}

func requireSameFingerprint(t *testing.T, name string, got, want nn.Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: fingerprint length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: fingerprint[%d] = %v, want %v (exact)", name, i, got[i], want[i])
		}
	}
}

// TestCheckpointKillAndResumeBitIdentical is the acceptance check: training
// interrupted at an arbitrary checkpoint boundary and resumed produces
// exactly — not approximately — the weights, loss, and downstream adapted
// models of an uninterrupted run.
func TestCheckpointKillAndResumeBitIdentical(t *testing.T) {
	ref, err := runCkptGTTAML(t, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(ref)

	// Checkpointing alone must not perturb the result.
	full, err := runCkptGTTAML(t, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	requireSameFingerprint(t, "checkpointed-uninterrupted", fingerprint(full), want)

	// Kill at several different snapshot boundaries (mid warm-up pass, mid
	// leaf training), then resume from disk.
	for _, killAt := range []int{1, 3, 5} {
		dir := t.TempDir()
		if _, err := runCkptGTTAML(t, dir, killAt); err == nil {
			t.Fatalf("killAt=%d: interrupted run returned no error", killAt)
		}
		files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
		if len(files) == 0 {
			t.Fatalf("killAt=%d: no checkpoints on disk", killAt)
		}
		resumed, err := runCkptGTTAML(t, dir, 0)
		if err != nil {
			t.Fatalf("killAt=%d: resume: %v", killAt, err)
		}
		requireSameFingerprint(t, "resumed", fingerprint(resumed), want)
	}
}

// TestCheckpointIgnoresIncompatibleSnapshot: a corrupt or foreign snapshot
// must be skipped (train from scratch), not trusted.
func TestCheckpointIgnoresIncompatibleSnapshot(t *testing.T) {
	ref, err := runCkptGTTAML(t, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Torn/garbage file under a scope the run will use.
	if err := os.WriteFile(filepath.Join(dir, "root_warm.ckpt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := runCkptGTTAMLQuiet(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	requireSameFingerprint(t, "after-corrupt-ckpt", fingerprint(tr), fingerprint(ref))
}

// runCkptGTTAMLQuiet is runCkptGTTAML with OnError silenced (corruption is
// expected in the test above).
func runCkptGTTAMLQuiet(t *testing.T, dir string) (*Trained, error) {
	t.Helper()
	tasks := makeTasks(10, rand.New(rand.NewSource(5)))
	src := ckpt.NewSource(11)
	rng := rand.New(src)
	cfg := DefaultConfig(rng)
	cfg.Hidden = 6
	cfg.MetaIters = 10
	cfg.TaskBatch = 4
	cfg.Checkpoint = &CheckpointConfig{Dir: dir, Every: 3, Source: src}
	ccfg := cluster.Config{
		K: 2, Gamma: 0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.9},
		UseGame:    true,
		Rng:        rng,
	}
	return TrainGTTAML(context.Background(), tasks, cfg, ccfg)
}
