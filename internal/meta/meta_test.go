package meta

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/spatialcrowd/tamp/internal/cluster"
	"github.com/spatialcrowd/tamp/internal/geo"
	"github.com/spatialcrowd/tamp/internal/nn"
	"github.com/spatialcrowd/tamp/internal/sim"
)

// makeTask builds a synthetic learning task for one worker. Archetype 0
// workers live in the lower-left quadrant moving right; archetype 1 workers
// live in the upper-right moving up. Distinct regions make Sim_d separate
// the archetypes; distinct dynamics make per-cluster meta-training pay off.
func makeTask(workerID, archetype int, rng *rand.Rand, nSamples int) *LearningTask {
	task := &LearningTask{WorkerID: workerID}
	var cx, cy, vx, vy float64
	var poiType geo.POIType
	switch archetype {
	case 0:
		cx, cy, vx, vy = -0.5, -0.5, 0.06, 0
		poiType = geo.POIRetail
	default:
		cx, cy, vx, vy = 0.5, 0.5, 0, 0.06
		poiType = geo.POIBusiness
	}
	for i := 0; i < nSamples; i++ {
		x := cx + rng.NormFloat64()*0.1
		y := cy + rng.NormFloat64()*0.1
		var s nn.Sample
		for k := 0; k < 4; k++ {
			p := []float64{x + vx*float64(k), y + vy*float64(k)}
			s.In = append(s.In, p)
			task.Features.Points = append(task.Features.Points, geo.Pt(p[0], p[1]))
		}
		s.Out = append(s.Out, []float64{x + vx*4, y + vy*4})
		if i%2 == 0 {
			task.Support = append(task.Support, s)
		} else {
			task.Query = append(task.Query, s)
		}
	}
	task.Features.POIs = []geo.POI{{Loc: geo.Pt(cx, cy), Type: poiType}}
	return task
}

func makeTasks(n int, rng *rand.Rand) []*LearningTask {
	tasks := make([]*LearningTask, n)
	for i := range tasks {
		tasks[i] = makeTask(i, i%2, rng, 16)
	}
	return tasks
}

func testConfig(rng *rand.Rand) Config {
	cfg := DefaultConfig(rng)
	cfg.Hidden = 8
	cfg.MetaIters = 12
	cfg.TaskBatch = 4
	return cfg
}

func TestAdaptReducesSupportLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := testConfig(rng)
	task := makeTask(0, 0, rng, 20)
	m := cfg.NewModel()
	before := m.BatchLoss(task.Support, cfg.Loss)
	path := Adapt(m, task, 5, cfg.AdaptLR, cfg.Loss, cfg.ClipNorm)
	after := m.BatchLoss(task.Support, cfg.Loss)
	if after >= before {
		t.Errorf("adapt did not reduce loss: %v -> %v", before, after)
	}
	if len(path) != 5 {
		t.Errorf("path length = %d, want 5", len(path))
	}
	for _, g := range path {
		if len(g) != m.NumParams() {
			t.Errorf("gradient length = %d", len(g))
		}
	}
}

func TestComputeLearningPathsSharedInit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := testConfig(rng)
	tasks := makeTasks(4, rng)
	init := cfg.NewModel().Weights().Clone()
	if err := ComputeLearningPaths(context.Background(), tasks, cfg, init); err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if len(task.Features.Path) != cfg.AdaptSteps {
			t.Fatalf("path steps = %d", len(task.Features.Path))
		}
	}
	// Same-archetype tasks should have more similar learning paths than
	// cross-archetype ones.
	same := sim.LearningPathSim(tasks[0].Features.Path, tasks[2].Features.Path)
	cross := sim.LearningPathSim(tasks[0].Features.Path, tasks[1].Features.Path)
	if same <= cross {
		t.Errorf("same-archetype path sim %v <= cross %v", same, cross)
	}
}

func TestMetaTrainImprovesAdaptation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := testConfig(rng)
	cfg.MetaIters = 40
	var tasks []*LearningTask
	for i := 0; i < 8; i++ {
		tasks = append(tasks, makeTask(i, 0, rng, 16))
	}
	m := cfg.NewModel()
	theta := m.Weights().Clone()

	// Baseline: adapt from the random initialization.
	hold := makeTask(99, 0, rng, 16)
	m.SetWeights(theta)
	Adapt(m, hold, cfg.AdaptSteps, cfg.AdaptLR, cfg.Loss, cfg.ClipNorm)
	baseline := QueryLoss(m, hold, cfg.Loss)

	MetaTrain(context.Background(), theta, tasks, cfg)

	m.SetWeights(theta)
	Adapt(m, hold, cfg.AdaptSteps, cfg.AdaptLR, cfg.Loss, cfg.ClipNorm)
	trained := QueryLoss(m, hold, cfg.Loss)
	if trained >= baseline {
		t.Errorf("meta-training did not help held-out adaptation: %v -> %v", baseline, trained)
	}
}

func TestMetaTrainEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig(rng)
	theta := cfg.NewModel().Weights().Clone()
	if got := MetaTrain(context.Background(), theta, nil, cfg); got != 0 {
		t.Errorf("empty MetaTrain = %v", got)
	}
	cfg.MetaIters = 0
	if got := MetaTrain(context.Background(), theta, makeTasks(2, rng), cfg); got != 0 {
		t.Errorf("zero-iteration MetaTrain = %v", got)
	}
}

func TestTAMLFillsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testConfig(rng)
	tasks := makeTasks(8, rng)
	root := &cluster.TreeNode{Members: []int{0, 1, 2, 3, 4, 5, 6, 7}, Level: -1}
	c0 := &cluster.TreeNode{Members: []int{0, 2, 4, 6}, Parent: root, Level: 0}
	c1 := &cluster.TreeNode{Members: []int{1, 3, 5, 7}, Parent: root, Level: 0}
	root.Children = []*cluster.TreeNode{c0, c1}

	init := cfg.NewModel().Weights().Clone()
	loss := TAML(context.Background(), root, tasks, cfg, init)
	if loss <= 0 {
		t.Errorf("TAML loss = %v", loss)
	}
	for _, n := range root.Nodes() {
		if n.Theta == nil {
			t.Fatal("node left without Theta")
		}
		if len(n.Theta) != len(init) {
			t.Fatal("Theta length mismatch")
		}
	}
	// Parent θ must equal the mean of children θ (Reptile step from the
	// shared start).
	want := nn.Mean([]nn.Vector{c0.Theta, c1.Theta})
	for i := range want {
		if math.Abs(root.Theta[i]-want[i]) > 1e-9 {
			t.Fatal("root Theta is not the mean of children")
		}
	}
	// Children diverge toward their own archetypes.
	diff := c0.Theta.Clone()
	diff.Axpy(-1, c1.Theta)
	if diff.Norm() < 1e-6 {
		t.Error("children thetas identical; no specialization")
	}
}

func TestTrainMAML(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig(rng)
	tasks := makeTasks(6, rng)
	tr, err := TrainMAML(context.Background(), tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algorithm != AlgMAML {
		t.Errorf("algorithm = %q", tr.Algorithm)
	}
	if !tr.Tree.IsLeaf() {
		t.Error("MAML tree should be a single node")
	}
	for i := range tasks {
		if tr.LeafFor(i) != tr.Tree {
			t.Errorf("task %d not mapped to root", i)
		}
		if len(tr.InitFor(i)) == 0 {
			t.Errorf("task %d has empty init", i)
		}
	}
	m := tr.AdaptedModel(0)
	if m == nil || m.NumParams() == 0 {
		t.Fatal("AdaptedModel failed")
	}
}

func TestTrainMAMLEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainMAML(context.Background(), nil, testConfig(rng)); err == nil {
		t.Error("expected error for no tasks")
	}
	if _, err := TrainCTML(context.Background(), nil, testConfig(rng)); err == nil {
		t.Error("expected error for no tasks")
	}
	if _, err := TrainGTTAML(context.Background(), nil, testConfig(rng), cluster.DefaultConfig(rng)); err == nil {
		t.Error("expected error for no tasks")
	}
}

func TestTrainCTML(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig(rng)
	tasks := makeTasks(10, rng)
	tr, err := TrainCTML(context.Background(), tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algorithm != AlgCTML {
		t.Errorf("algorithm = %q", tr.Algorithm)
	}
	// Every task must map to exactly one leaf.
	seen := map[int]bool{}
	for _, leaf := range tr.Tree.Leaves() {
		for _, m := range leaf.Members {
			if seen[m] {
				t.Fatalf("task %d in two leaves", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(tasks) {
		t.Errorf("leaves cover %d tasks, want %d", len(seen), len(tasks))
	}
}

func TestTrainGTTAMLSeparatesArchetypes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := testConfig(rng)
	tasks := makeTasks(12, rng)
	ccfg := cluster.Config{
		K:          2,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.9},
		UseGame:    true,
		Rng:        rng,
	}
	tr, err := TrainGTTAML(context.Background(), tasks, cfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algorithm != AlgGTTAML {
		t.Errorf("algorithm = %q", tr.Algorithm)
	}
	// The two archetypes live far apart; the first split should separate
	// them cleanly.
	if len(tr.Tree.Children) != 2 {
		t.Fatalf("root children = %d, want 2\n%s", len(tr.Tree.Children), tr.Tree)
	}
	for _, c := range tr.Tree.Children {
		arch := c.Members[0] % 2
		for _, m := range c.Members[1:] {
			if m%2 != arch {
				t.Errorf("cluster mixes archetypes: %v", c.Members)
			}
		}
	}
	// Per-task inits exist and differ across archetypes.
	i0, i1 := tr.InitFor(0), tr.InitFor(1)
	diff := i0.Clone()
	diff.Axpy(-1, i1)
	if diff.Norm() < 1e-9 {
		t.Error("archetype inits identical")
	}
}

func TestTrainGTTAMLGTVariantName(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := testConfig(rng)
	cfg.MetaIters = 4
	tasks := makeTasks(6, rng)
	ccfg := cluster.Config{
		K:          2,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.9},
		UseGame:    false,
		Rng:        rng,
	}
	tr, err := TrainGTTAML(context.Background(), tasks, cfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Algorithm != AlgGTTAMLGT {
		t.Errorf("algorithm = %q, want %q", tr.Algorithm, AlgGTTAMLGT)
	}
}

func TestPlaceNewFindsRightCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := testConfig(rng)
	cfg.MetaIters = 6
	tasks := makeTasks(10, rng)
	ccfg := cluster.Config{
		K:          2,
		Gamma:      0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.9},
		UseGame:    true,
		Rng:        rng,
	}
	tr, err := TrainGTTAML(context.Background(), tasks, cfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	newcomer := makeTask(100, 0, rng, 16)
	node := tr.PlaceNew(&newcomer.Features)
	if node == nil || node.Theta == nil {
		t.Fatal("PlaceNew returned nothing")
	}
	// The chosen node should be dominated by archetype-0 tasks.
	arch0 := 0
	for _, m := range node.Members {
		if m%2 == 0 {
			arch0++
		}
	}
	if arch0*2 <= len(node.Members) {
		t.Errorf("placement node has %d/%d archetype-0 tasks", arch0, len(node.Members))
	}
	model := tr.AdaptNew(newcomer)
	if model == nil {
		t.Fatal("AdaptNew failed")
	}
}

func TestPlaceNewWithoutMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := testConfig(rng)
	cfg.MetaIters = 2
	tasks := makeTasks(4, rng)
	tr, err := TrainMAML(context.Background(), tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &sim.Features{}
	if node := tr.PlaceNew(f); node != tr.Tree {
		t.Error("metric-less placement should return the root")
	}
}

// TestGTTAMLBeatsMAMLOnHeldOut is the headline behavioural claim of §IV-B
// Table V in miniature: with two distinct mobility archetypes, clustering
// before meta-training yields better post-adaptation query loss than plain
// MAML, evaluated on the training workers' query sets.
func TestGTTAMLBeatsMAMLOnHeldOut(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := testConfig(rng)
	cfg.MetaIters = 30
	tasks := makeTasks(12, rng)

	maml, err := TrainMAML(context.Background(), tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cluster.Config{
		K: 2, Gamma: 0.2,
		Metrics:    []sim.Metric{sim.Distribution},
		Thresholds: []float64{0.9},
		UseGame:    true,
		Rng:        rng,
	}
	gttaml, err := TrainGTTAML(context.Background(), tasks, cfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	evalQuery := func(tr *Trained) float64 {
		var sum float64
		for i, task := range tasks {
			m := tr.AdaptedModel(i)
			sum += QueryLoss(m, task, cfg.Loss)
		}
		return sum / float64(len(tasks))
	}
	lm, lg := evalQuery(maml), evalQuery(gttaml)
	if lg >= lm {
		t.Errorf("GTTAML loss %v not better than MAML loss %v", lg, lm)
	}
}

// TestMetaTrainParallelBitIdentical enforces the determinism contract of
// internal/par: per-task query gradients are index-addressed and reduced in
// sample order, and shard models draw from a detached RNG, so MetaTrain
// produces bit-identical weights at every parallelism level.
func TestMetaTrainParallelBitIdentical(t *testing.T) {
	tasksOf := func() []*LearningTask {
		return makeTasks(8, rand.New(rand.NewSource(77)))
	}
	run := func(par int) nn.Vector {
		cfg := testConfig(rand.New(rand.NewSource(5)))
		cfg.MetaIters = 6
		cfg.Parallelism = par
		theta := cfg.NewModel().Weights().Clone()
		MetaTrain(context.Background(), theta, tasksOf(), cfg)
		return theta
	}
	a := run(1)
	for _, par := range []int{1, 2, 4, 8} {
		b := run(par)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("parallelism %d diverges from serial at weight %d: %v != %v",
					par, i, a[i], b[i])
			}
		}
	}
}

// TestMetaTrainCancellation: a cancelled context stops meta-training at an
// iteration boundary instead of running all MetaIters.
func TestMetaTrainCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := testConfig(rng)
	cfg.MetaIters = 1 << 30 // far more than a test should ever run
	tasks := makeTasks(4, rng)
	theta := cfg.NewModel().Weights().Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	MetaTrain(ctx, theta, tasks, cfg) // must return promptly, not hang
}
